package alem_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/alem/alem"
)

// TestFacadeEndToEnd exercises the public API exactly the way the README
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	d, err := alem.LoadDataset("beer", 1.0, 42)
	if err != nil {
		t.Fatal(err)
	}
	pool := alem.NewPool(d)
	if pool.Len() == 0 {
		t.Fatal("empty pool")
	}
	res := alem.Run(pool, alem.NewRandomForest(20, 1), alem.ForestQBC{},
		alem.NewPerfectOracle(d), alem.Config{Seed: 1, TargetF1: 0.99})
	if res.Curve.BestF1() < 0.9 {
		t.Errorf("quickstart best F1 = %.3f, want >= 0.9", res.Curve.BestF1())
	}
}

func TestFacadeProfilesAndMetrics(t *testing.T) {
	if n := len(alem.DatasetProfiles()); n != 10 {
		t.Errorf("profiles = %d, want 10", n)
	}
	if n := len(alem.SimilarityMetrics()); n != 21 {
		t.Errorf("metrics = %d, want 21", n)
	}
	if n := len(alem.ExperimentIDs()); n != 15 {
		t.Errorf("experiments = %d, want 15 (2 tables + 13 figures)", n)
	}
}

func TestFacadeRunExperiment(t *testing.T) {
	var buf bytes.Buffer
	opts := alem.ExperimentOptions{Scale: 0.02, MaxLabels: 60, Runs: 1, Seed: 3}
	rep, err := alem.RunExperiment("table1", opts, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "table1" {
		t.Errorf("report id = %q", rep.ID)
	}
	if !strings.Contains(buf.String(), "abt-buy") {
		t.Error("report output missing dataset rows")
	}
	if _, err := alem.RunExperiment("nope", opts, nil); err == nil {
		t.Error("RunExperiment accepted unknown id")
	}
}

func TestFacadeEnsembleAndInterp(t *testing.T) {
	d, err := alem.LoadDataset("dblp-acm", 0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	pool := alem.NewPool(d)
	ens := alem.RunEnsemble(pool, alem.NewPerfectOracle(d), alem.EnsembleConfig{
		Config:   alem.Config{Seed: 9, MaxLabels: 200},
		Factory:  alem.SVMFactory,
		Selector: alem.MarginSelector{},
	})
	if ens.Curve.BestF1() <= 0 {
		t.Error("ensemble produced no useful model")
	}

	forest := alem.NewRandomForest(5, 9)
	alem.Run(pool, forest, alem.ForestQBC{}, alem.NewPerfectOracle(d),
		alem.Config{Seed: 9, MaxLabels: 100})
	if alem.ForestAtoms(forest) == 0 {
		t.Error("trained forest has zero DNF atoms")
	}
	if len(alem.ForestToDNF(forest)) == 0 {
		t.Error("trained forest converted to empty DNF")
	}
}

func TestFacadeBoolPipeline(t *testing.T) {
	d, err := alem.LoadDataset("dblp-acm", 0.03, 4)
	if err != nil {
		t.Fatal(err)
	}
	pool := alem.NewBoolPool(d)
	ext := alem.NewBoolFeatureExtractor(d.Left.Schema)
	model := alem.NewRuleModel(ext)
	res := alem.Run(pool, model, alem.LFPLFN{}, alem.NewPerfectOracle(d), alem.Config{Seed: 4})
	if res.Curve.BestF1() < 0.5 {
		t.Errorf("rules best F1 = %.3f, want >= 0.5 on clean data", res.Curve.BestF1())
	}
	if model.NumAtoms() == 0 {
		t.Error("no rules learned")
	}
}

func TestFacadePersistenceAndMatcher(t *testing.T) {
	d, err := alem.LoadDataset("beer", 1.0, 55)
	if err != nil {
		t.Fatal(err)
	}
	pool := alem.NewPool(d)
	forest := alem.NewRandomForest(10, 55)
	alem.Run(pool, forest, alem.ForestQBC{}, alem.NewPerfectOracle(d),
		alem.Config{Seed: 55, TargetF1: 0.99})

	// Unified artifact: one file carries the forest plus its pipeline.
	var buf bytes.Buffer
	if err := alem.SaveModel(&buf, forest, alem.ModelMeta{
		Schema:         d.Left.Schema,
		BlockThreshold: d.BlockThreshold,
		Dataset:        "beer",
	}); err != nil {
		t.Fatal(err)
	}
	art, err := alem.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if art.Kind != alem.KindRandomForest || art.Meta.Features != alem.FloatFeatures {
		t.Fatalf("artifact kind=%s features=%s", art.Kind, art.Meta.Features)
	}
	fresh, err := alem.LoadDataset("beer", 1.0, 56)
	if err != nil {
		t.Fatal(err)
	}
	pairs, candidates, err := art.Matcher().Match(context.Background(), fresh.Left, fresh.Right)
	if err != nil {
		t.Fatal(err)
	}
	if candidates == 0 || len(pairs) == 0 {
		t.Fatalf("deployed model matched %d of %d candidates", len(pairs), candidates)
	}
	for _, p := range pairs {
		if p.Confidence < 0 || p.Confidence > 1 {
			t.Fatalf("pair %s/%s confidence %v outside [0,1]", p.LeftID, p.RightID, p.Confidence)
		}
	}

	// The serve facade mounts the same artifact over HTTP.
	srv := alem.NewMatchServer(art, alem.MatchServerConfig{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Legacy bare-learner persistence still round-trips.
	buf.Reset()
	if err := forest.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := alem.LoadRandomForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.PredictAll(pool.X); len(got) != len(pool.X) {
		t.Fatalf("legacy forest predicted %d of %d", len(got), len(pool.X))
	}
}

func TestFacadeAblationIDs(t *testing.T) {
	if n := len(alem.AblationIDs()); n != 18 {
		t.Errorf("ablations = %d, want 18", n)
	}
	for _, id := range alem.AblationIDs() {
		if !strings.HasPrefix(id, "ablation-") && id != "summary" {
			t.Errorf("unexpected ablation id %q", id)
		}
	}
}

func TestFacadeWrapperSmoke(t *testing.T) {
	d, err := alem.LoadDataset("beer", 1.0, 66)
	if err != nil {
		t.Fatal(err)
	}
	// Blocking variants.
	if res := alem.BlockThreshold(d, 0.3); len(res.Pairs) == 0 {
		t.Error("BlockThreshold found nothing at 0.3")
	}
	if res := alem.SortedNeighborhoodBlock(d, "beer_name", 8); len(res.Pairs) == 0 {
		t.Error("SortedNeighborhoodBlock found nothing")
	}
	// Corpus-aware features.
	c := alem.CorpusOf(d)
	if c.NumDocs() != len(d.Left.Rows)+len(d.Right.Rows) {
		t.Errorf("corpus docs = %d", c.NumDocs())
	}
	if len(alem.ExtendedMetrics(c)) != 4 {
		t.Error("ExtendedMetrics != 4")
	}
	ext := alem.NewExtendedExtractor(d.Left.Schema, c)
	if ext.Dim() != len(d.Left.Schema)*25 {
		t.Errorf("extended dim = %d", ext.Dim())
	}
	if pool := alem.NewExtendedPool(d); len(pool.X[0]) != ext.Dim() {
		t.Error("extended pool dim mismatch")
	}
	if c2 := alem.NewCorpus([]string{"a b", "b c"}); c2.NumDocs() != 2 {
		t.Error("NewCorpus")
	}
	// Diagnostics.
	if rep := alem.Diagnose(d); rep.PostBlockingPairs == 0 || rep.Separation() <= 0 {
		t.Error("Diagnose produced an empty or non-separating report")
	}
	// Evaluation + oracle wrappers.
	conf := alem.EvaluatePredictions([]bool{true, false}, []bool{true, true})
	if conf.TP != 1 || conf.FN != 1 {
		t.Errorf("EvaluatePredictions = %+v", conf)
	}
	mv := alem.NewMajorityVoteOracle(alem.NewNoisyOracle(d, 0.3, 1), 3)
	mv.Label(alem.PairKey{L: 0, R: 0})
	if mv.Queries() != 3 {
		t.Errorf("majority-vote queries = %d", mv.Queries())
	}
	// Learner persistence wrappers.
	var buf bytes.Buffer
	svm := alem.NewSVM(1)
	svm.Train([]alem.FeatureVector{{0.9}, {0.1}}, []bool{true, false})
	if err := svm.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := alem.LoadSVM(&buf); err != nil {
		t.Error(err)
	}
	nn := alem.NeuralNetFactory(4)(2)
	nn.Train([]alem.FeatureVector{{0.9}, {0.1}}, []bool{true, false})
	buf.Reset()
	if err := nn.(*alem.NeuralNet).SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := alem.LoadNeuralNet(&buf); err != nil {
		t.Error(err)
	}
	bext := alem.NewBoolFeatureExtractor(d.Left.Schema)
	rm := alem.NewRuleModel(bext)
	buf.Reset()
	if err := rm.SaveJSON(&buf, bext.Dim()); err != nil {
		t.Fatal(err)
	}
	if _, err := alem.LoadRuleModel(&buf, bext); err != nil {
		t.Error(err)
	}
}
