// Resumablerun: drive active learning through the Session engine —
// observe per-iteration events, checkpoint the run to disk half-way, and
// resume it in a "second process" to the identical curve an
// uninterrupted run would have produced.
//
// This is the workflow for expensive labeling campaigns: a crashed or
// cancelled run costs none of the Oracle labels already paid for.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"github.com/alem/alem"
)

func main() {
	d, err := alem.LoadDataset("beer", 1.0, 42)
	if err != nil {
		log.Fatal(err)
	}
	pool := alem.NewPool(d)
	cfg := alem.Config{Seed: 1, MaxLabels: 150}

	// Phase 1: run a few iterations, then checkpoint. An observer prints
	// the event stream as it happens.
	session, err := alem.NewSession(pool, alem.NewSVM(1), alem.MarginSelector{},
		alem.NewPerfectOracle(d), cfg)
	if err != nil {
		log.Fatal(err)
	}
	session.AddObserver(alem.ObserverFunc(func(e alem.Event) {
		if ed, ok := e.(alem.EvalDone); ok {
			fmt.Printf("  iter %d: labels=%d F1=%.3f\n", ed.Iteration, ed.Point.Labels, ed.Point.F1)
		}
	}))
	fmt.Println("first process: 5 iterations, then checkpoint")
	for i := 0; i < 5; i++ {
		if done, err := session.Step(context.Background()); done || err != nil {
			log.Fatalf("run ended early: done=%v err=%v", done, err)
		}
	}

	// Serialize the checkpoint. In a real deployment this is a file; a
	// buffer keeps the example self-contained.
	var checkpoint bytes.Buffer
	if err := session.Snapshot().Encode(&checkpoint); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d bytes\n\n", checkpoint.Len())

	// Phase 2: "another process" reloads the checkpoint. The learner is
	// freshly constructed with the same constructor seed; Restore replays
	// its training history so the model picks up exactly where it left
	// off.
	sn, err := alem.ReadSessionSnapshot(&checkpoint)
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := alem.RestoreSession(pool, alem.NewSVM(1), alem.MarginSelector{},
		alem.NewPerfectOracle(d), sn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("second process: resuming from the checkpoint")
	res, err := resumed.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed run: %d labels, best F1 %.3f, stopped because %s\n",
		res.LabelsUsed, res.Curve.BestF1(), res.Reason)

	// The resumed curve is identical to an uninterrupted run's.
	uninterrupted := alem.Run(pool, alem.NewSVM(1), alem.MarginSelector{},
		alem.NewPerfectOracle(d), cfg)
	identical := len(res.Curve) == len(uninterrupted.Curve)
	for i := 0; identical && i < len(res.Curve); i++ {
		identical = res.Curve[i].F1 == uninterrupted.Curve[i].F1
	}
	fmt.Printf("identical to an uninterrupted run: %v\n", identical)
}
