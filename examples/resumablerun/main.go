// Resumablerun: drive active learning through the Session engine with
// crash-safe persistence — an atomic snapshot on disk plus a label
// write-ahead log — then "kill" the process mid-run and resume it in a
// second process to the identical curve an uninterrupted run produces.
//
// This is the workflow for expensive labeling campaigns: a crashed or
// cancelled run costs none of the Oracle labels already paid for. The
// snapshot is written with temp+fsync+rename so a reader never sees a
// torn file, and the WAL records every granted label the instant it is
// paid for, so even labels granted after the last snapshot survive.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/alem/alem"
)

func main() {
	d, err := alem.LoadDataset("beer", 1.0, 42)
	if err != nil {
		log.Fatal(err)
	}
	pool := alem.NewPool(d)
	cfg := alem.Config{Seed: 1, MaxLabels: 150}

	dir, err := os.MkdirTemp("", "resumablerun")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckptPath := filepath.Join(dir, "session.ckpt")
	walPath := filepath.Join(dir, "labels.wal")

	// Phase 1: the "first process". Every granted label goes to the WAL
	// as it is paid for; a snapshot is written atomically at iteration 3.
	// The process then runs two more iterations — whose labels exist only
	// in the WAL — before dying without warning.
	oracle := alem.NewPerfectOracle(d)
	session, err := alem.NewFallibleSession(pool, alem.NewSVM(1), alem.MarginSelector{},
		alem.WrapOracle(oracle), cfg)
	if err != nil {
		log.Fatal(err)
	}
	wal, _, err := alem.OpenLabelWAL(walPath)
	if err != nil {
		log.Fatal(err)
	}
	session.SetLabelSink(wal)
	session.AddObserver(alem.ObserverFunc(func(e alem.Event) {
		if ed, ok := e.(alem.EvalDone); ok {
			fmt.Printf("  iter %d: labels=%d F1=%.3f\n", ed.Iteration, ed.Point.Labels, ed.Point.F1)
		}
	}))
	fmt.Println("first process: snapshot at iteration 3, killed after iteration 5")
	for i := 0; i < 5; i++ {
		if done, err := session.Step(context.Background()); done || err != nil {
			log.Fatalf("run ended early: done=%v err=%v", done, err)
		}
		if i == 2 {
			if err := alem.WriteFileAtomic(ckptPath, session.Snapshot().Encode); err != nil {
				log.Fatal(err)
			}
		}
	}
	// Simulated kill: the session object is abandoned with labels granted
	// after the snapshot. Only the WAL's fsync'd records remember them.
	paidBeforeCrash := oracle.Queries()
	wal.Close()
	fmt.Printf("crashed with %d labels paid, snapshot at iteration 3 on disk\n\n", paidBeforeCrash)

	// Phase 2: the "second process" reloads the snapshot and replays the
	// WAL. Labels granted after the snapshot are served from the journal
	// when the resumed run re-selects their pairs — the oracle is never
	// asked for them again.
	f, err := os.Open(ckptPath)
	if err != nil {
		log.Fatal(err)
	}
	sn, err := alem.ReadSessionSnapshot(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	wal2, records, err := alem.OpenLabelWAL(walPath)
	if err != nil {
		log.Fatal(err)
	}
	defer wal2.Close()
	oracle2 := alem.NewPerfectOracle(d)
	resumed, err := alem.RestoreSessionWithWAL(pool, alem.NewSVM(1), alem.MarginSelector{},
		alem.WrapOracle(oracle2), sn, records)
	if err != nil {
		log.Fatal(err)
	}
	resumed.SetLabelSink(wal2)
	fmt.Printf("second process: resuming from snapshot (%d labels) + WAL (%d records)\n",
		len(sn.Labeled), len(records))
	res, err := resumed.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed run: %d labels, best F1 %.3f, stopped because %s\n",
		res.LabelsUsed, res.Curve.BestF1(), res.Reason)

	// The resumed curve is identical to an uninterrupted run's, and no
	// label was paid for twice: the second process's oracle answered only
	// the queries beyond what the WAL already held.
	uninterrupted := alem.Run(pool, alem.NewSVM(1), alem.MarginSelector{},
		alem.NewPerfectOracle(d), cfg)
	identical := len(res.Curve) == len(uninterrupted.Curve)
	for i := 0; identical && i < len(res.Curve); i++ {
		identical = res.Curve[i].F1 == uninterrupted.Curve[i].F1
	}
	fmt.Printf("identical to an uninterrupted run: %v\n", identical)
	fmt.Printf("labels paid: %d before the crash + %d after = %d total (no label paid twice)\n",
		paidBeforeCrash, oracle2.Queries(), paidBeforeCrash+oracle2.Queries())
}
