// Interpretable rules: learns concise monotone-DNF matching rules with
// the LFP/LFN heuristic (§4.3) on a clean publication dataset and prints
// the learned DNF — the paper's §6.3 argument that rules trade a little
// F1 for a model a human can read, validate and debug.
package main

import (
	"fmt"
	"log"

	"github.com/alem/alem"
)

func main() {
	d, err := alem.LoadDataset("dblp-acm", 0.1, 5)
	if err != nil {
		log.Fatal(err)
	}
	pool := alem.NewBoolPool(d)
	fmt.Printf("dblp-acm: %d candidate pairs, %d Boolean atoms per pair\n\n",
		pool.Len(), len(pool.X[0]))

	ext := alem.NewBoolFeatureExtractor(d.Left.Schema)
	model := alem.NewRuleModel(ext)
	res := alem.Run(pool, model, alem.LFPLFN{}, alem.NewPerfectOracle(d), alem.Config{Seed: 5})

	fmt.Printf("terminated after %d labels (no LFPs/LFNs left)\n", res.LabelsUsed)
	fmt.Printf("progressive F1 %.3f, #DNF atoms %d\n\n", res.Curve.FinalF1(), model.NumAtoms())
	fmt.Println("learned rule ensemble:")
	fmt.Println(model)

	// Contrast with a random forest's DNF size on the same pool.
	fpool := alem.NewPool(d)
	forest := alem.NewRandomForest(10, 5)
	fres := alem.Run(fpool, forest, alem.ForestQBC{}, alem.NewPerfectOracle(d),
		alem.Config{Seed: 5, MaxLabels: 300})
	fmt.Printf("\nfor comparison, Trees(10) reaches F1 %.3f but its DNF has %d atoms\n",
		fres.Curve.BestF1(), alem.ForestAtoms(forest))
	fmt.Println("(Fig. 18a: rules are 2-3 orders of magnitude more concise).")
}
