// Quickstart: load a dataset, build the post-blocking pool, run active
// learning with the paper's best combination — a random forest with
// learner-aware QBC — and watch progressive F1 climb with #labels.
package main

import (
	"fmt"
	"log"

	"github.com/alem/alem"
)

func main() {
	// Generate the Beer dataset stand-in at full paper scale (~450
	// post-blocking pairs) and block+featurize it.
	d, err := alem.LoadDataset("beer", 1.0, 42)
	if err != nil {
		log.Fatal(err)
	}
	pool := alem.NewPool(d)
	fmt.Printf("dataset %s: %d candidate pairs after blocking, skew %.3f\n",
		d.Name, pool.Len(), pool.Skew())

	// Active learning: Trees(20) + learner-aware QBC, perfect Oracle,
	// seed set of 30 labels, batches of 10, stop at near-perfect F1.
	forest := alem.NewRandomForest(20, 1)
	res := alem.Run(pool, forest, alem.ForestQBC{}, alem.NewPerfectOracle(d), alem.Config{
		Seed:     1,
		TargetF1: 0.99,
	})

	fmt.Println("\n#labels  progressive F1")
	for _, p := range res.Curve {
		fmt.Printf("%7d  %.3f\n", p.Labels, p.F1)
	}
	fmt.Printf("\nbest F1 %.3f with %d labels (convergence at %d labels)\n",
		res.Curve.BestF1(), res.LabelsUsed, res.Curve.ConvergenceLabels(0.01))
}
