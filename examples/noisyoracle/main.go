// Noisy Oracle: emulates crowd-sourced labeling (§6.2) — the Oracle
// flips each label with a fixed probability and no majority voting
// corrects it. Shows how tree-ensemble quality degrades with noise, and
// how active selection compares against random (supervised) selection
// under the same noise.
package main

import (
	"fmt"
	"log"

	"github.com/alem/alem"
)

func main() {
	d, err := alem.LoadDataset("amazon-bestbuy", 1.0, 11)
	if err != nil {
		log.Fatal(err)
	}
	pool := alem.NewPool(d)
	fmt.Printf("amazon-bestbuy: %d candidate pairs, skew %.3f\n\n", pool.Len(), pool.Skew())

	fmt.Println("noise   active trees F1   supervised trees F1")
	for _, noise := range []float64{0, 0.10, 0.20, 0.30, 0.40} {
		active := alem.Run(pool, alem.NewRandomForest(20, 11), alem.ForestQBC{},
			alem.NewNoisyOracle(d, noise, 11), alem.Config{Seed: 11})
		supervised := alem.Run(pool, alem.NewRandomForest(20, 11), alem.RandomSelector{},
			alem.NewNoisyOracle(d, noise, 11), alem.Config{Seed: 11})
		fmt.Printf("%4.0f%%   %15.3f   %19.3f\n",
			noise*100, active.Curve.FinalF1(), supervised.Curve.FinalF1())
	}

	fmt.Println("\nexpected: graceful degradation with noise; the active-vs-supervised gap")
	fmt.Println("narrows as noise grows (paper Figs. 14-15, 17).")
}
