// Product matching: the paper's motivating hard case. Compares example
// selectors on a linear SVM over the Abt-Buy stand-in — learner-agnostic
// QBC vs margin vs margin with the §5.1 blocking-dimension optimization —
// reporting both quality and the selection-latency breakdown.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/alem/alem"
)

func main() {
	d, err := alem.LoadDataset("abt-buy", 0.25, 7)
	if err != nil {
		log.Fatal(err)
	}
	pool := alem.NewPool(d)
	fmt.Printf("abt-buy: %d candidate pairs, %d feature dims, skew %.3f\n\n",
		pool.Len(), len(alem.SimilarityMetrics())*len(d.Left.Schema), pool.Skew())

	cfg := alem.Config{Seed: 7, MaxLabels: 400}
	type variant struct {
		name string
		sel  alem.Selector
	}
	for _, v := range []variant{
		{"QBC(10)", alem.QBC{B: 10, Factory: alem.SVMFactory}},
		{"Margin(all dims)", alem.MarginSelector{}},
		{"Margin(1 blocking dim)", alem.BlockedMargin{TopK: 1}},
	} {
		res := alem.Run(pool, alem.NewSVM(7), v.sel, alem.NewPerfectOracle(d), cfg)
		var committee, scoring time.Duration
		for _, p := range res.Curve {
			committee += p.CommitteeCreateTime
			scoring += p.ScoreTime
		}
		fmt.Printf("%-24s best F1 %.3f  labels %4d  committee %8v  scoring %8v\n",
			v.name, res.Curve.BestF1(), res.LabelsUsed,
			committee.Round(time.Millisecond), scoring.Round(time.Millisecond))
	}

	fmt.Println("\nexpected: all three reach similar F1; margin pays no committee cost;")
	fmt.Println("the blocking dimension cuts scoring time further (paper §5.1, Fig. 10-11).")
}
