// Publication dedup: Cora-style duplicate citation clusters, matched
// with the §5.2 active ensemble — several high-precision linear
// classifiers accepted incrementally (τ = 0.85), each claiming the
// matches it covers — compared with a single margin-trained SVM.
package main

import (
	"fmt"
	"log"

	"github.com/alem/alem"
)

func main() {
	d, err := alem.LoadDataset("cora", 0.05, 3)
	if err != nil {
		log.Fatal(err)
	}
	pool := alem.NewPool(d)
	fmt.Printf("cora: %d candidate pairs (dedup clusters), skew %.3f\n\n", pool.Len(), pool.Skew())

	single := alem.Run(pool, alem.NewSVM(3), alem.MarginSelector{}, alem.NewPerfectOracle(d),
		alem.Config{Seed: 3, MaxLabels: 500})
	fmt.Printf("single SVM + margin:      best F1 %.3f (labels %d)\n",
		single.Curve.BestF1(), single.LabelsUsed)

	ens := alem.RunEnsemble(pool, alem.NewPerfectOracle(d), alem.EnsembleConfig{
		Config:   alem.Config{Seed: 3, MaxLabels: 500},
		Tau:      0.85,
		Factory:  alem.SVMFactory,
		Selector: alem.MarginSelector{},
	})
	fmt.Printf("active ensemble (τ=0.85): best F1 %.3f (labels %d, accepted SVMs %d)\n",
		ens.Curve.BestF1(), ens.LabelsUsed, ens.Accepted)

	fmt.Println("\neach accepted classifier claims its predicted matches and the next one")
	fmt.Println("is learned on the uncovered remainder — recall grows union by union (§5.2).")
}
