// Custom learner: the framework's plug-and-play extension point as a
// runnable example (see TUTORIAL.md §1). Defines a deliberately simple
// "mean-similarity threshold" classifier inline, gives it a margin, and
// runs it under margin selection and QBC without touching the framework.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/alem/alem"
)

// thresholdLearner predicts "match" when the mean of all similarity
// features exceeds a threshold fitted on the labeled data. It is weaker
// than any of the paper's four families — which is exactly the point:
// anything with Train/Predict slots in.
type thresholdLearner struct {
	threshold float64
	trained   bool
}

func (t *thresholdLearner) Name() string { return "mean-threshold" }

func mean(x alem.FeatureVector) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Train picks the threshold midway between the class means.
func (t *thresholdLearner) Train(X []alem.FeatureVector, y []bool) {
	var posSum, negSum float64
	var pos, neg int
	for i, x := range X {
		if y[i] {
			posSum += mean(x)
			pos++
		} else {
			negSum += mean(x)
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		t.trained = false
		return
	}
	t.threshold = (posSum/float64(pos) + negSum/float64(neg)) / 2
	t.trained = true
}

func (t *thresholdLearner) Predict(x alem.FeatureVector) bool {
	return t.trained && mean(x) > t.threshold
}

func (t *thresholdLearner) PredictAll(X []alem.FeatureVector) []bool {
	out := make([]bool, len(X))
	for i, x := range X {
		out[i] = t.Predict(x)
	}
	return out
}

// Margin makes the learner compatible with margin-based selection: the
// distance of the mean similarity from the threshold.
func (t *thresholdLearner) Margin(x alem.FeatureVector) float64 {
	if !t.trained {
		return 0
	}
	return math.Abs(mean(x) - t.threshold)
}

func main() {
	d, err := alem.LoadDataset("dblp-acm", 0.1, 8)
	if err != nil {
		log.Fatal(err)
	}
	pool := alem.NewPool(d)
	fmt.Printf("dblp-acm: %d candidate pairs\n\n", pool.Len())

	// The custom learner under three selectors — zero framework changes.
	factory := func(int64) alem.Learner { return &thresholdLearner{} }
	for _, v := range []struct {
		name string
		sel  alem.Selector
	}{
		{"margin", alem.MarginSelector{}},
		{"QBC(10)", alem.QBC{B: 10, Factory: factory}},
		{"random", alem.RandomSelector{}},
	} {
		res := alem.Run(pool, &thresholdLearner{}, v.sel, alem.NewPerfectOracle(d),
			alem.Config{Seed: 8, MaxLabels: 300})
		fmt.Printf("%-8s best F1 %.3f  (labels to converge %d)\n",
			v.name, res.Curve.BestF1(), res.Curve.ConvergenceLabels(0.01))
	}
	fmt.Println("\na ten-line learner composes with every learner-agnostic selector;")
	fmt.Println("adding Margin() unlocked the learner-aware ones (TUTORIAL.md §1).")
}
