// Custom dataset: the downstream-user path. Brings your own two tables
// (written here as CSV for the demo, exactly the layout `alemgen`
// exports), imports them, and runs the full pipeline — blocking,
// featurization, active learning — against your own labeled matches.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/alem/alem"
)

func main() {
	dir, err := os.MkdirTemp("", "alem-custom")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Your catalog and your supplier's feed, with a handful of known
	// matches (the seed ground truth an Oracle would provide).
	writeFile(dir, "left.csv", `id,name,price
L0,sonixx wireless speaker xr200,49.99
L1,veltron compact digital camera,129.00
L2,quantix mechanical gaming keyboard,89.50
L3,lumina 4k ultra hd monitor,299.99
L4,maxtor portable ssd drive 1tb,119.00
`)
	writeFile(dir, "right.csv", `id,name,price
R0,sonixx speaker wireless xr-200,$47.50
R1,veltron digital camera compact zoom,125
R2,quantix keyboard mechanical rgb,92.00
R3,brightline office paper shredder,59.99
R4,maxtor ssd portable drive,115.00
`)
	writeFile(dir, "matches.csv", `left_id,right_id
L0,R0
L1,R1
L2,R2
L4,R4
`)

	d, err := alem.ImportDataset("my-catalog", dir, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported %d + %d records, %d known matches\n",
		len(d.Left.Rows), len(d.Right.Rows), d.NumMatches())

	// Blocking prunes the obvious non-matches from the 25-pair product.
	// The indexed generator only touches pairs surfaced by posting-list
	// probes and is cancellable mid-build.
	idx := alem.NewCandidateIndex(d, alem.CandidateIndexOptions{})
	res, err := alem.GenerateCandidates(context.Background(), idx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blocking: %d of %d pairs survive\n", len(res.Pairs), d.TotalPairs())

	// Featurize one pair to see what the learners consume.
	ext := alem.NewFeatureExtractor(d.Left.Schema)
	v := ext.Extract(d.Left.Rows[0], d.Right.Rows[0])
	fmt.Printf("\npair (L0, R0) features (%d dims), a few:\n", len(v))
	for _, i := range []int{0, 4, 11, 21, 25, 32} {
		fmt.Printf("  %-28s %.3f\n", ext.DimName(i), v[i])
	}

	// Full active-learning run on the candidate pool.
	pool := alem.NewPool(d)
	run := alem.Run(pool, alem.NewRandomForest(10, 1), alem.ForestQBC{},
		alem.NewPerfectOracle(d), alem.Config{SeedLabels: 4, BatchSize: 2})
	fmt.Printf("\nactive learning on %d candidates: final F1 %.3f with %d labels\n",
		pool.Len(), run.Curve.FinalF1(), run.LabelsUsed)
}

func writeFile(dir, name, content string) {
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
}
