// Dedup clusters: the final step of a deduplication pipeline. Trains a
// matcher on Cora-style duplicate citation clusters, then resolves the
// pairwise predictions into entities via transitive closure — repairing
// matches the pairwise model missed and exposing the precision/recall
// trade of closure.
package main

import (
	"fmt"
	"log"

	"github.com/alem/alem"
)

func main() {
	d, err := alem.LoadDataset("cora", 0.04, 21)
	if err != nil {
		log.Fatal(err)
	}
	pool := alem.NewPool(d)
	fmt.Printf("cora: %d candidate pairs in clusters of duplicate citations\n", pool.Len())

	forest := alem.NewRandomForest(10, 21)
	res := alem.Run(pool, forest, alem.ForestQBC{}, alem.NewPerfectOracle(d),
		alem.Config{Seed: 21, MaxLabels: 250})
	fmt.Printf("trained Trees(10): pairwise progressive F1 %.3f (%d labels)\n\n",
		res.Curve.FinalF1(), res.LabelsUsed)

	// Pairwise predictions -> entity clusters.
	var edges []alem.MatchEdge
	for i, x := range pool.X {
		if forest.Predict(x) {
			edges = append(edges, alem.MatchEdge{L: pool.Pairs[i].L, R: pool.Pairs[i].R})
		}
	}
	clusters := alem.ClusterMatches(len(d.Left.Rows), len(d.Right.Rows), edges)
	fmt.Printf("%d predicted match edges resolve into %d entities\n",
		len(edges), clusters.NumClusters())

	// Measure what transitive closure bought (and cost).
	var truth []alem.MatchEdge
	for i, p := range pool.Pairs {
		if pool.Truth[i] {
			truth = append(truth, alem.MatchEdge{L: p.L, R: p.R})
		}
	}
	p, r, f1 := clusters.PairwiseMetrics(truth, len(d.Left.Rows), len(d.Right.Rows))
	fmt.Printf("cluster-level precision %.3f recall %.3f F1 %.3f\n", p, r, f1)
	fmt.Println("\nclosure repairs missed pairs inside components (recall up) at the")
	fmt.Println("risk of propagating a bad edge through a whole component (precision).")
}
