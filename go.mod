module github.com/alem/alem

go 1.22
