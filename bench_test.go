// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§6). Each benchmark runs the corresponding experiment
// driver and, once per process, prints the reproduced rows/series so
// that `go test -bench . | tee bench_output.txt` captures the full
// reproduction next to the timing numbers.
//
// Experiment size is controlled by the ALEM_SCALE / ALEM_MAXLABELS /
// ALEM_RUNS / ALEM_SEED environment variables (see EXPERIMENTS.md);
// defaults keep the whole suite laptop-runnable. Micro-benchmarks for
// the substrates (similarity functions, blocking, learner training)
// follow the experiment benchmarks.
package alem_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"github.com/alem/alem"
)

var printOnce sync.Map // experiment id -> *sync.Once

func runExperimentBench(b *testing.B, id string) {
	b.Helper()
	opts := alem.DefaultExperimentOptions()
	for i := 0; i < b.N; i++ {
		rep, err := alem.RunExperiment(id, opts, nil)
		if err != nil {
			b.Fatal(err)
		}
		onceAny, _ := printOnce.LoadOrStore(id, &sync.Once{})
		onceAny.(*sync.Once).Do(func() {
			fmt.Println()
			rep.WriteTo(os.Stdout, opts.Verbose)
		})
	}
}

// Table 1: dataset details (paper vs generated).
func BenchmarkTable1(b *testing.B) { runExperimentBench(b, "table1") }

// Fig. 8: QBC vs margin per classifier, Abt-Buy.
func BenchmarkFigure8(b *testing.B) { runExperimentBench(b, "fig8") }

// Fig. 9: QBC vs margin per classifier, Cora.
func BenchmarkFigure9(b *testing.B) { runExperimentBench(b, "fig9") }

// Fig. 10: example-selection latency breakdown, Cora.
func BenchmarkFigure10(b *testing.B) { runExperimentBench(b, "fig10") }

// Fig. 11: blocking dimensions and active ensembles on SVMs.
func BenchmarkFigure11(b *testing.B) { runExperimentBench(b, "fig11") }

// Fig. 12: best selector per classifier, progressive F1.
func BenchmarkFigure12(b *testing.B) { runExperimentBench(b, "fig12") }

// Fig. 13: best selector per classifier, user wait time.
func BenchmarkFigure13(b *testing.B) { runExperimentBench(b, "fig13") }

// Table 2: best progressive F1 + #labels vs the paper's numbers.
func BenchmarkTable2(b *testing.B) { runExperimentBench(b, "table2") }

// Fig. 14: noisy Oracles on Abt-Buy.
func BenchmarkFigure14(b *testing.B) { runExperimentBench(b, "fig14") }

// Fig. 15: noisy Oracles on the Magellan/DeepMatcher datasets.
func BenchmarkFigure15(b *testing.B) { runExperimentBench(b, "fig15") }

// Fig. 16: active vs supervised vs DeepMatcher proxy.
func BenchmarkFigure16(b *testing.B) { runExperimentBench(b, "fig16") }

// Fig. 17: active vs supervised trees under noise.
func BenchmarkFigure17(b *testing.B) { runExperimentBench(b, "fig17") }

// Fig. 18: interpretability — DNF atoms and tree depth.
func BenchmarkFigure18(b *testing.B) { runExperimentBench(b, "fig18") }

// Fig. 19: rules on the social-media dataset.
func BenchmarkFigure19(b *testing.B) { runExperimentBench(b, "fig19") }

// ---- substrate micro-benchmarks ----

func BenchmarkSimilarityMetrics(b *testing.B) {
	a := "sonixx wireless bluetooth speaker portable"
	c := "sonix wirelss speaker bluetooth portable edition"
	for _, m := range alem.SimilarityMetrics() {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Compare(a, c)
			}
		})
	}
}

func BenchmarkBlocking(b *testing.B) {
	d, err := alem.LoadDataset("abt-buy", 0.25, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := alem.NewCandidateIndex(d, alem.CandidateIndexOptions{})
		if _, err := alem.GenerateCandidates(context.Background(), idx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeatureExtraction(b *testing.B) {
	d, err := alem.LoadDataset("abt-buy", 0.1, 1)
	if err != nil {
		b.Fatal(err)
	}
	res, err := alem.GenerateCandidates(context.Background(),
		alem.NewCandidateIndex(d, alem.CandidateIndexOptions{}))
	if err != nil {
		b.Fatal(err)
	}
	ext := alem.NewFeatureExtractor(d.Left.Schema)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := res.Pairs[i%len(res.Pairs)]
		ext.Extract(d.Left.Rows[p.L], d.Right.Rows[p.R])
	}
}

func trainingData(n, dim int, seed int64) ([]alem.FeatureVector, []bool) {
	r := rand.New(rand.NewSource(seed))
	X := make([]alem.FeatureVector, 0, n)
	y := make([]bool, 0, n)
	for i := 0; i < n; i++ {
		pos := i%2 == 0
		base := 0.2
		if pos {
			base = 0.8
		}
		v := make(alem.FeatureVector, dim)
		for j := range v {
			v[j] = base + r.Float64()*0.2 - 0.1
		}
		X = append(X, v)
		y = append(y, pos)
	}
	return X, y
}

func BenchmarkSVMTrain(b *testing.B) {
	X, y := trainingData(500, 63, 1)
	for i := 0; i < b.N; i++ {
		s := alem.NewSVM(int64(i))
		s.Train(X, y)
	}
}

func BenchmarkForestTrain(b *testing.B) {
	X, y := trainingData(500, 63, 2)
	for i := 0; i < b.N; i++ {
		f := alem.NewRandomForest(10, int64(i))
		f.Train(X, y)
	}
}

func BenchmarkNeuralNetTrain(b *testing.B) {
	X, y := trainingData(200, 63, 3)
	for i := 0; i < b.N; i++ {
		n := alem.NewNeuralNet(16, int64(i))
		n.Train(X, y)
	}
}

func BenchmarkForestPredict(b *testing.B) {
	X, y := trainingData(500, 63, 4)
	f := alem.NewRandomForest(20, 1)
	f.Train(X, y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(X[i%len(X)])
	}
}

func BenchmarkMarginScoring(b *testing.B) {
	X, y := trainingData(2000, 63, 5)
	s := alem.NewSVM(1)
	s.Train(X[:200], y[:200])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Margin(X[i%len(X)])
	}
}

// BenchmarkSessionIteration measures one full train→evaluate→select→label
// step of the Session engine (SVM + margin, beer at paper scale) — the
// per-iteration overhead the engine adds over the monolithic loop is what
// this guards.
func BenchmarkSessionIteration(b *testing.B) {
	d, err := alem.LoadDataset("beer", 1.0, 1)
	if err != nil {
		b.Fatal(err)
	}
	pool := alem.NewPool(d)
	o := alem.NewPerfectOracle(d)
	newSession := func() *alem.Session {
		s, err := alem.NewSession(pool, alem.NewSVM(1), alem.MarginSelector{}, o,
			alem.Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	s := newSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done, err := s.Step(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if done {
			b.StopTimer()
			s = newSession()
			b.StartTimer()
		}
	}
}

// ---- ablation benchmarks (design-choice sweeps, see DESIGN.md) ----

func BenchmarkAblationCommittee(b *testing.B) { runExperimentBench(b, "ablation-committee") }
func BenchmarkAblationBatch(b *testing.B)     { runExperimentBench(b, "ablation-batch") }
func BenchmarkAblationSeedSet(b *testing.B)   { runExperimentBench(b, "ablation-seedset") }
func BenchmarkAblationTau(b *testing.B)       { runExperimentBench(b, "ablation-tau") }
func BenchmarkAblationBlockDims(b *testing.B) { runExperimentBench(b, "ablation-blockdims") }
func BenchmarkAblationTrees(b *testing.B)     { runExperimentBench(b, "ablation-trees") }
func BenchmarkAblationPlugin(b *testing.B)    { runExperimentBench(b, "ablation-plugin") }
func BenchmarkAblationIWAL(b *testing.B)      { runExperimentBench(b, "ablation-iwal") }
func BenchmarkAblationFeatures(b *testing.B)  { runExperimentBench(b, "ablation-features") }
func BenchmarkAblationTreeBlock(b *testing.B) { runExperimentBench(b, "ablation-treeblock") }
func BenchmarkAblationMajority(b *testing.B)  { runExperimentBench(b, "ablation-majority") }

// Fig. 2: the learner/selector compatibility grid.
func BenchmarkFigure2(b *testing.B)             { runExperimentBench(b, "fig2") }
func BenchmarkAblationClassWeight(b *testing.B) { runExperimentBench(b, "ablation-classweight") }
func BenchmarkAblationNNEnsemble(b *testing.B)  { runExperimentBench(b, "ablation-nnensemble") }

// Summary: the paper's four questions in one table.
func BenchmarkSummary(b *testing.B)           { runExperimentBench(b, "summary") }
func BenchmarkAblationStability(b *testing.B) { runExperimentBench(b, "ablation-stability") }
