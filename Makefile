# Development targets. `make check` is the full pre-merge gate: static
# vetting, a clean build of every package, and the test suite under the
# race detector (the Session engine's cancellation paths are concurrent).

GO ?= go

.PHONY: check vet build test race bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x .
