# Development targets. `make check` is the full pre-merge gate: static
# vetting, a clean build of every package, the test suite under the race
# detector (the Session engine's cancellation paths are concurrent), the
# coverage ratchet, and a short fuzz smoke over every parser target.

GO ?= go

# Coverage ratchet for the engine package. Raise after a PR that durably
# lifts internal/core coverage; never lower it to absorb a regression.
COVER_FLOOR_CORE ?= 88.3

.PHONY: check vet build test race cover fuzz bench bench-json bench-ratchet chaos serve-smoke equiv

check: vet build race equiv bench-ratchet cover fuzz chaos serve-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

# Per-package coverage plus the internal/core floor (see scripts/cover.sh).
cover:
	GO="$(GO)" COVER_FLOOR_CORE="$(COVER_FLOOR_CORE)" sh scripts/cover.sh

# 10s-per-target fuzz smoke over the artifact loader, WAL recovery and
# CSV import (see scripts/fuzz_smoke.sh; FUZZTIME=1m for longer runs).
fuzz:
	GO="$(GO)" sh scripts/fuzz_smoke.sh

# Bit-identity gates, under the race detector: every paper selector
# against its frozen pre-refactor implementation plus the
# serial-vs-parallel pins and the batched-oracle-vs-per-pair pins
# (internal/core), and the indexed candidate generator against the
# brute-force blocking reference, including incremental Add and
# shard-count sweeps (internal/blocking). `race` already covers these;
# the dedicated target keeps the refactor contracts visible and quick to
# re-run on their own.
equiv:
	$(GO) test -race -count=1 -run 'CompositionEquivalence|SerialParallelEquivalent|WorkerInvariant|BatchOracleEquivalence' ./internal/core/
	$(GO) test -race -count=1 -run 'IndexEquivalence|BruteForce|HotTokenRecall|ThresholdBoundary' ./internal/blocking/

bench:
	$(GO) test -bench . -benchtime 1x .

# Zero-alloc hot-path ratchets, run under plain `go test` (they skip
# under -race, so the `race` target alone never exercises them): the
# per-metric Compare and extractor/scoring allocs/op budgets, the
# string-vs-interned 30% reduction floor, the warmed Candidates budget
# and the constant-allocs training fit — plus the bit-identity pins the
# ratchets rely on, and a -benchtime=1x smoke over the paired scoring
# benchmarks so a broken benchmark fails `make check` rather than the
# next BENCH run.
bench-ratchet:
	$(GO) test -count=1 -run 'AllocRatchet|AllocReduction|AllocSteadyState|AllocsConstantPerFit|QGramLowerOnce|TokenSetMetricEquivalence|TFIDFTokenSetEquivalence|TFIDFCosineDeterministic|InternQGramsMatchesTokens|SoundexCodeEquivalence|ExtractPairsMatchesExtract|ScoreAllInternedMatchesString|TrainMatchesLegacy|KnownCacheAcrossAdds|LowerJoinKeyEquivalence|SortedNeighborhoodDeterministic' \
		./internal/textsim/ ./internal/feature/ ./internal/match/ ./internal/blocking/ ./internal/neural/
	$(GO) test -count=1 -run '^$$' -bench 'MatcherScoreAll' -benchtime=1x -benchmem ./internal/match/

# Selector serial/parallel pairs, blocking naive/indexed pairs and the
# matcher string/interned pairs → BENCH_9.json (ns/op, allocs/op,
# per-path speedups at this machine's GOMAXPROCS, the algorithmic
# indexed-vs-naive speedup, and the interned-path alloc reductions with
# their 30% ratchet). Requires an effective GOMAXPROCS of at least 2.
bench-json:
	GO="$(GO)" sh scripts/bench_json.sh BENCH_9.json

# Seeded fault-injection suite: kill/resume bit-identity, oracle stall
# termination, panic containment, breaker lifecycle, hot model swaps
# under load, corrupt-artifact swap rejection, per-tenant admission
# isolation — all deterministic (seeded faults, gated learners).
chaos:
	$(GO) test -race -run Chaos ./...

# End-to-end train → save → serve → hot-swap loop: builds almatch +
# almserve + almload, trains two small models, serves one on a random
# port, hits /healthz and /v1/match, swaps to the second mid-traffic
# asserting zero non-2xx, and asserts SIGTERM drains cleanly.
serve-smoke:
	GO="$(GO)" sh scripts/serve_smoke.sh
