# Development targets. `make check` is the full pre-merge gate: static
# vetting, a clean build of every package, and the test suite under the
# race detector (the Session engine's cancellation paths are concurrent).

GO ?= go

.PHONY: check vet build test race bench bench-json chaos serve-smoke

check: vet build race chaos serve-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x .

# Serial/parallel selector benchmark pairs → BENCH_4.json (ns/op,
# allocs/op, and per-path speedup at this machine's GOMAXPROCS).
bench-json:
	GO="$(GO)" sh scripts/bench_json.sh BENCH_4.json

# Seeded fault-injection suite: kill/resume bit-identity, oracle stall
# termination, panic containment, breaker lifecycle — all replayable
# because every fault pattern is a pure function of its seed.
chaos:
	$(GO) test -race -run Chaos ./...

# End-to-end train → save → serve loop: builds almatch + almserve,
# trains a small model, serves it on a random port, hits /healthz and
# /v1/match, and asserts SIGTERM drains cleanly.
serve-smoke:
	GO="$(GO)" sh scripts/serve_smoke.sh
