package alem_test

import (
	"fmt"

	"github.com/alem/alem"
)

// ExampleRun demonstrates the paper's headline combination — a random
// forest with learner-aware QBC — reaching near-perfect progressive F1
// on a small product dataset.
func ExampleRun() {
	d, _ := alem.LoadDataset("beer", 1.0, 42)
	pool := alem.NewPool(d)
	res := alem.Run(pool, alem.NewRandomForest(20, 1), alem.ForestQBC{},
		alem.NewPerfectOracle(d), alem.Config{Seed: 1, TargetF1: 0.99})
	fmt.Printf("best F1 %.2f with %d labels\n", res.Curve.BestF1(), res.LabelsUsed)
	// Output: best F1 1.00 with 90 labels
}

// ExampleSimilarityMetrics shows the 21-function similarity library the
// feature extractor is built on.
func ExampleSimilarityMetrics() {
	fmt.Println(len(alem.SimilarityMetrics()), "metrics")
	m := alem.SimilarityMetrics()[4] // jaro_winkler
	fmt.Printf("%s(%q, %q) = %.2f\n", m.Name(), "sonixx", "sonix", m.Compare("sonixx", "sonix"))
	// Output:
	// 21 metrics
	// jaro_winkler("sonixx", "sonix") = 0.97
}

// ExampleNewBoolFeatureExtractor shows the Boolean atoms the rule
// learner consumes.
func ExampleNewBoolFeatureExtractor() {
	ext := alem.NewBoolFeatureExtractor([]string{"name", "price"})
	fmt.Println(ext.Dim(), "atoms")
	fmt.Println(ext.Atom(0))
	fmt.Println(ext.Atom(ext.Dim() - 1))
	// Output:
	// 60 atoms
	// identity(name) >= 0.1
	// jaccard(price) >= 1.0
}

// ExampleClusterMatches shows transitive closure over predicted matches.
func ExampleClusterMatches() {
	// L0-R0 and L1-R0 chain into one entity; L2/R1 stay singletons.
	c := alem.ClusterMatches(3, 2, []alem.MatchEdge{{L: 0, R: 0}, {L: 1, R: 0}})
	fmt.Println("entities:", c.NumClusters())
	fmt.Println("L0~L1:", c.SameCluster(
		alem.ClusterNode{Side: 0, Row: 0}, alem.ClusterNode{Side: 0, Row: 1}))
	// Output:
	// entities: 3
	// L0~L1: true
}
