// Package alem is a unified active-learning benchmark framework for
// entity matching (EM): a Go reproduction of Meduri, Popa, Sen and
// Sarwat, "A Comprehensive Benchmark Framework for Active Learning
// Methods in Entity Matching", SIGMOD 2020.
//
// The framework mixes and matches learners (linear SVM, feed-forward
// neural network, random forest, monotone-DNF rules) with example
// selectors (learner-agnostic QBC, learner-aware QBC, margin, LFP/LFN),
// adds the paper's two enhancements (blocking dimensions for margin
// scoring, incrementally learned active ensembles), and regenerates every
// table and figure of the paper's evaluation on synthetic stand-ins for
// its ten datasets.
//
// Quick start:
//
//	d, _ := alem.LoadDataset("abt-buy", 0.1, 42)
//	pool := alem.NewPool(d)
//	res := alem.Run(pool, alem.NewRandomForest(20, 1), alem.ForestQBC{},
//	    alem.NewPerfectOracle(d), alem.Config{MaxLabels: 500})
//	fmt.Println(res.Curve.BestF1())
//
// The package is a thin facade over the internal packages; everything a
// downstream user needs is re-exported here.
package alem

import (
	"context"
	"io"

	"github.com/alem/alem/internal/blocking"
	"github.com/alem/alem/internal/cluster"
	"github.com/alem/alem/internal/core"
	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/diag"
	"github.com/alem/alem/internal/eval"
	"github.com/alem/alem/internal/experiments"
	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/interp"
	"github.com/alem/alem/internal/linear"
	"github.com/alem/alem/internal/match"
	"github.com/alem/alem/internal/model"
	"github.com/alem/alem/internal/neural"
	"github.com/alem/alem/internal/obs"
	"github.com/alem/alem/internal/oracle"
	"github.com/alem/alem/internal/resilience"
	"github.com/alem/alem/internal/rules"
	"github.com/alem/alem/internal/serve"
	"github.com/alem/alem/internal/textsim"
	"github.com/alem/alem/internal/tree"
)

// Datasets and blocking.
type (
	// Dataset is a two-table EM instance with generator-side ground truth.
	Dataset = dataset.Dataset
	// Table is one relation of a Dataset.
	Table = dataset.Table
	// Record is one row of a Table.
	Record = dataset.Record
	// PairKey identifies a candidate record pair.
	PairKey = dataset.PairKey
	// DatasetProfile couples a synthetic generator with the paper's
	// Table 1 statistics.
	DatasetProfile = dataset.Profile
	// BlockingResult holds post-blocking candidate pairs and blocking
	// recall.
	BlockingResult = blocking.Result
	// CandidateGenerator is the candidate-generation contract: build an
	// index over the right table, stream further records in with Add, and
	// enumerate candidate pairs under a context.
	CandidateGenerator = blocking.CandidateGenerator
	// CandidateIndex is the indexed generator: sharded inverted posting
	// lists with prefix and size filters, built in parallel and
	// incrementally extendable.
	CandidateIndex = blocking.CandidateIndex
	// CandidateIndexOptions sizes a CandidateIndex (threshold, shards,
	// workers); the zero value takes the dataset's defaults.
	CandidateIndexOptions = blocking.IndexOptions
	// CandidateIndexStats reports index shape and the probe → size-filter
	// → verify → keep funnel.
	CandidateIndexStats = blocking.IndexStats
)

// ErrIndexNotBuilt is returned by generator Add/Candidates before Build.
var ErrIndexNotBuilt = blocking.ErrNotBuilt

// NewCandidateIndex returns an unbuilt candidate index over d; call
// Build (or GenerateCandidates) before Add or Candidates.
func NewCandidateIndex(d *Dataset, opts CandidateIndexOptions) *CandidateIndex {
	return blocking.NewCandidateIndex(d, opts)
}

// NewNaiveGenerator returns the Cartesian reference generator — the
// specification CandidateIndex is pinned against, useful for testing
// custom thresholds.
func NewNaiveGenerator(d *Dataset, threshold float64) CandidateGenerator {
	return blocking.NewNaive(d, threshold)
}

// GenerateCandidates builds gen and enumerates its candidates in one
// cancellable call.
func GenerateCandidates(ctx context.Context, gen CandidateGenerator) (*BlockingResult, error) {
	return blocking.Generate(ctx, gen)
}

// LoadDataset generates the named dataset profile at the given scale
// (1.0 ≈ the paper's post-blocking sizes) and seed. Known names:
// abt-buy, amazon-google, dblp-acm, dblp-scholar, cora, walmart-amazon,
// amazon-bestbuy, beer, baby-products, social-media.
func LoadDataset(name string, scale float64, seed int64) (*Dataset, error) {
	return dataset.Load(name, scale, seed)
}

// DatasetProfiles lists the ten built-in dataset profiles.
func DatasetProfiles() []DatasetProfile { return dataset.Profiles() }

// ImportDataset reads a dataset previously written by (*Dataset).Export
// (left.csv, right.csv, matches.csv in dir).
func ImportDataset(name, dir string, blockThreshold float64) (*Dataset, error) {
	return dataset.Import(name, dir, blockThreshold)
}

// ReadTableCSV parses a single table in the CSV layout Export writes
// (id column followed by the schema columns).
func ReadTableCSV(name string, r io.Reader) (*Table, error) {
	return dataset.ReadCSV(name, r)
}

// Block applies the offline token-Jaccard blocking step at the dataset's
// profile threshold. The result is bit-identical to the indexed API.
//
// Deprecated: Block remains for convenience but cannot be cancelled and
// exposes no index statistics. New code should use
// GenerateCandidates(ctx, NewCandidateIndex(d, CandidateIndexOptions{})).
func Block(d *Dataset) *BlockingResult { return blocking.Block(d) }

// BlockThreshold is Block with an explicit Jaccard threshold.
//
// Deprecated: like Block, kept as a one-shot wrapper; use
// NewCandidateIndex with CandidateIndexOptions.Threshold instead.
func BlockThreshold(d *Dataset, threshold float64) *BlockingResult {
	return blocking.BlockThreshold(d, threshold)
}

// SortedNeighborhoodBlock is the classic merge/purge alternative to
// threshold blocking: sort both tables by a key attribute (empty =
// whole record) and take cross-table pairs within a sliding window.
func SortedNeighborhoodBlock(d *Dataset, keyAttr string, window int) *BlockingResult {
	return blocking.SortedNeighborhood(d, keyAttr, window)
}

// Feature extraction.
type (
	// FeatureVector is a dense float feature vector.
	FeatureVector = feature.Vector
	// FeatureExtractor computes the 21-similarity-function float vectors.
	FeatureExtractor = feature.Extractor
	// BoolFeatureExtractor computes thresholded Boolean atoms for rules.
	BoolFeatureExtractor = feature.BoolExtractor
	// Atom is one Boolean rule predicate, sim(attr) >= threshold.
	Atom = feature.Atom
	// Metric is a normalized string-similarity function.
	Metric = textsim.Metric
	// Corpus carries document-frequency statistics for the TF-IDF style
	// extended metrics.
	Corpus = textsim.Corpus
)

// NewCorpus indexes documents for the corpus-aware extended metrics.
func NewCorpus(docs []string) *Corpus { return textsim.NewCorpus(docs) }

// ExtendedMetrics returns the corpus-aware and numeric metrics beyond
// the standard 21 (TF-IDF cosine, SoftTFIDF, numeric, generalized
// Jaccard).
func ExtendedMetrics(c *Corpus) []Metric { return textsim.Extended(c) }

// CorpusOf builds the corpus over every record of both tables.
func CorpusOf(d *Dataset) *Corpus { return feature.CorpusOf(d) }

// NewExtendedExtractor builds a 25-metric extractor (standard 21 plus
// the extended set weighted over c).
func NewExtendedExtractor(schema []string, c *Corpus) *FeatureExtractor {
	return feature.NewExtendedExtractor(schema, c)
}

// NewExtendedPool is NewPool with the extended 25-metric feature set.
func NewExtendedPool(d *Dataset) *Pool { return core.NewExtendedPool(d) }

// NewFeatureExtractor builds the standard extractor (21 metrics × attrs).
func NewFeatureExtractor(schema []string) *FeatureExtractor {
	return feature.NewExtractor(schema)
}

// NewBoolFeatureExtractor builds the rule-learner extractor (3 metrics ×
// thresholds 0.1..1.0 × attrs).
func NewBoolFeatureExtractor(schema []string) *BoolFeatureExtractor {
	return feature.NewBoolExtractor(schema)
}

// SimilarityMetrics returns the 21 similarity functions of the feature
// extractor.
func SimilarityMetrics() []Metric { return textsim.All() }

// Framework core.
type (
	// Pool is the post-blocking candidate universe of one run.
	Pool = core.Pool
	// Learner is the base learner interface (Fig. 2).
	Learner = core.Learner
	// MarginLearner exposes a confidence margin (SVMs, neural nets).
	MarginLearner = core.MarginLearner
	// VoteLearner is a learner-aware committee (random forests).
	VoteLearner = core.VoteLearner
	// Factory creates fresh learners for QBC committees.
	Factory = core.Factory
	// Selector is the example-selector interface (Fig. 2).
	Selector = core.Selector
	// SelectContext carries a selector invocation's inputs and timings.
	SelectContext = core.SelectContext
	// Config is one run's protocol (seed set 30, batch 10, ...).
	Config = core.Config
	// Result is one run's outcome.
	Result = core.Result
	// EnsembleConfig configures the §5.2 active ensemble.
	EnsembleConfig = core.EnsembleConfig
	// EnsembleResult is an ensemble run's outcome.
	EnsembleResult = core.EnsembleResult

	// QBC is learner-agnostic query-by-committee.
	QBC = core.QBC
	// ForestQBC is learner-aware QBC over a forest's own trees.
	ForestQBC = core.ForestQBC
	// MarginSelector picks the smallest-margin examples.
	MarginSelector = core.Margin
	// BlockedMargin is margin with §5.1 blocking dimensions.
	BlockedMargin = core.BlockedMargin
	// LFPLFN is the rule learner's heuristic selector.
	LFPLFN = core.LFPLFN
	// RandomSelector picks uniformly (supervised baseline).
	RandomSelector = core.Random
	// IWALSelector is the simplified importance-weighted selector the
	// paper's related work (§2) discusses — an extension included so its
	// label overhead can be measured.
	IWALSelector = core.IWAL
	// BlockedForestQBC is ForestQBC with mined-DNF blocking, the §5
	// sketch for tree-based selection realized as an extension.
	BlockedForestQBC = core.BlockedForestQBC

	// Scorer is the informativeness half of a selection strategy
	// (pool → per-pair scores on the deterministic parallel substrate).
	Scorer = core.Scorer
	// Picker is the batch-query half (scores + features → batch).
	Picker = core.Picker
	// ScoredSet is a Scorer's output: candidates with aligned scores,
	// higher = more informative.
	ScoredSet = core.ScoredSet
	// ComposedSelector glues any Scorer to any Picker into a Selector.
	ComposedSelector = core.ComposedSelector
	// MarginScorer scores by negated |margin| — the uncertainty half of
	// margin selection, reusable under any Picker.
	MarginScorer = core.MarginScorer
	// VoteScorer scores by committee/forest vote variance — ForestQBC's
	// uncertainty half, reusable under any Picker.
	VoteScorer = core.VoteScorer
	// KCenterPicker is greedy k-center (core-set) diverse batch picking.
	KCenterPicker = core.KCenterPicker
	// ScoredClusterPicker samples score-weighted across feature-space
	// clusters of near-duplicate candidates.
	ScoredClusterPicker = core.ScoredClusterPicker
	// SelectorSpec is one selector-registry entry (name, help text,
	// constructor).
	SelectorSpec = core.SelectorSpec
	// SelectorParams carries the tunables registry constructors accept.
	SelectorParams = core.SelectorParams
	// IncompatibleError reports a selector composed with a learner it
	// cannot serve; it wraps ErrIncompatibleSelector.
	IncompatibleError = core.IncompatibleError
)

// ErrIncompatibleSelector is the sentinel selector/learner mismatch
// errors wrap; NewSession and Config validation return it when e.g.
// LFPLFN is composed with a non-rule learner.
var ErrIncompatibleSelector = core.ErrIncompatibleSelector

// Selectors returns every registered selection strategy (paper set,
// extensions, and diversity-aware Scorer×Picker recombinations).
func Selectors() []SelectorSpec { return core.Selectors() }

// NewSelector constructs a registered selection strategy by -selector
// name; unknown names error with the registered list attached.
func NewSelector(name string, p SelectorParams) (Selector, error) {
	return core.NewSelector(name, p)
}

// FormatSelectorList renders the selector registry the way the CLIs'
// -list-selectors flag prints it.
func FormatSelectorList() string { return core.FormatSelectorList() }

// ValidateSelection checks a (learner, selector) pair up front the same
// way session construction does, returning a typed *IncompatibleError
// (wrapping ErrIncompatibleSelector) on a mismatch.
func ValidateSelection(l Learner, s Selector) error { return core.ValidateSelection(l, s) }

// Evaluation modes.
const (
	// Progressive evaluates on all post-blocking pairs (progressive F1).
	Progressive = core.Progressive
	// HeldOut evaluates on a held-out 20% split.
	HeldOut = core.HeldOut
)

// NewPool blocks and featurizes a dataset with the standard extractor.
func NewPool(d *Dataset) *Pool { return core.NewPool(d) }

// NewPoolContext is NewPool with cancellable candidate generation.
func NewPoolContext(ctx context.Context, d *Dataset) (*Pool, error) {
	return core.NewPoolContext(ctx, d)
}

// NewBoolPool blocks and featurizes a dataset with Boolean atoms (rules).
func NewBoolPool(d *Dataset) *Pool { return core.NewBoolPool(d) }

// NewPoolFromVectors builds a pool from raw vectors and labels.
func NewPoolFromVectors(X []FeatureVector, truth []bool) *Pool {
	return core.NewPoolFromVectors(X, truth)
}

// Run executes one active-learning run (Fig. 1a).
func Run(pool *Pool, l Learner, s Selector, o Oracle, cfg Config) *Result {
	return core.Run(pool, l, s, o, cfg)
}

// RunEnsemble executes active learning with an incrementally grown
// high-precision ensemble (§5.2).
func RunEnsemble(pool *Pool, o Oracle, cfg EnsembleConfig) *EnsembleResult {
	return core.RunEnsemble(pool, o, cfg)
}

// RunEnsembleContext is RunEnsemble with cancellation and observers.
func RunEnsembleContext(ctx context.Context, pool *Pool, o Oracle,
	cfg EnsembleConfig, observers ...Observer) (*EnsembleResult, error) {
	return core.RunEnsembleContext(ctx, pool, o, cfg, observers...)
}

// Session engine: the decomposed, cancellable, observable form of the
// Fig. 1a loop. Run is a thin wrapper over it; construct a Session
// directly for context cancellation, the typed event stream, or
// checkpoint/resume.
type (
	// Session is one active-learning run as an explicit state machine.
	Session = core.Session
	// SessionSnapshot is a serializable checkpoint of a Session.
	SessionSnapshot = core.Snapshot
	// StopReason explains why a run terminated.
	StopReason = core.StopReason
	// Observer receives a Session's typed event stream.
	Observer = core.Observer
	// ObserverFunc adapts a function to Observer.
	ObserverFunc = core.ObserverFunc
	// Event is one notification from the stream; concrete types follow.
	Event = core.Event
	// IterationStart opens one train→evaluate→select→label iteration.
	IterationStart = core.IterationStart
	// TrainDone closes the train phase.
	TrainDone = core.TrainDone
	// EvalDone closes the evaluate phase and carries the curve point.
	EvalDone = core.EvalDone
	// BatchSelected closes the select phase.
	BatchSelected = core.BatchSelected
	// PhaseDone is the uniform per-phase timing span (seed, train,
	// evaluate, select, label) behind run manifests.
	PhaseDone = core.PhaseDone
	// CandidateAccepted reports an ensemble acceptance (§5.2).
	CandidateAccepted = core.CandidateAccepted
	// OracleFault reports a labeling query that failed after retries;
	// the pair is requeued and the run continues on the granted labels.
	OracleFault = core.OracleFault
	// RunEnd closes the run with its StopReason.
	RunEnd = core.RunEnd
	// CurveBuilder accumulates curve points incrementally.
	CurveBuilder = eval.CurveBuilder
	// EventLog renders the event stream as a timestamped trace.
	EventLog = diag.EventLog
)

// Stop reasons.
const (
	// StopNone: the run has not terminated yet.
	StopNone = core.StopNone
	// StopBudget: the MaxLabels budget is exhausted.
	StopBudget = core.StopBudget
	// StopPoolExhausted: no unlabeled candidates remain.
	StopPoolExhausted = core.StopPoolExhausted
	// StopTargetF1: the evaluated F1 reached Config.TargetF1.
	StopTargetF1 = core.StopTargetF1
	// StopStability: predictions stabilized for StabilityWindow iterations.
	StopStability = core.StopStability
	// StopSelectorEmpty: the selector returned no examples.
	StopSelectorEmpty = core.StopSelectorEmpty
	// StopCancelled: the run's context was cancelled.
	StopCancelled = core.StopCancelled
	// StopOracleFailed: labeling stalled — every query in a round failed
	// even after retries, so the run kept its partial model and stopped.
	StopOracleFailed = core.StopOracleFailed
	// StopBudgetExhausted: the Config.MaxDollars budget can no longer
	// afford the next answer at the labeler's worst-case price.
	StopBudgetExhausted = core.StopBudgetExhausted
)

// NewSession validates cfg and prepares a run without starting it.
func NewSession(pool *Pool, l Learner, s Selector, o Oracle, cfg Config) (*Session, error) {
	return core.NewSession(pool, l, s, o, cfg)
}

// RestoreSession rebuilds a Session from a snapshot; see
// core.Restore for the learner-state contract.
func RestoreSession(pool *Pool, l Learner, s Selector, o Oracle, sn *SessionSnapshot) (*Session, error) {
	return core.Restore(pool, l, s, o, sn)
}

// ReadSessionSnapshot deserializes a snapshot written by
// (*SessionSnapshot).Encode.
func ReadSessionSnapshot(r io.Reader) (*SessionSnapshot, error) {
	return core.ReadSnapshot(r)
}

// NewCurveObserver adapts a CurveBuilder to the event stream.
func NewCurveObserver(b *CurveBuilder) Observer { return core.NewCurveObserver(b) }

// NewEventLog returns an EventLog writing to w.
func NewEventLog(w io.Writer) *EventLog { return diag.NewEventLog(w) }

// Observability: the unified metrics-and-tracing layer (internal/obs).
// A Trace collects the Session's PhaseDone spans; serialized as JSONL it
// is a run manifest (`almatch -trace run.jsonl`), and aldiag summarizes
// one back into a per-phase table. MetricsRegistry is the same
// dependency-free registry the MatchServer renders on /metrics.
type (
	// Trace accumulates spans and reads/writes JSONL run manifests.
	Trace = obs.Trace
	// TraceSpan is one recorded phase execution.
	TraceSpan = obs.Span
	// TracePhaseSummary is one phase's aggregate across a manifest.
	TracePhaseSummary = obs.PhaseSummary
	// MetricsRegistry registers counters/gauges/histograms and renders
	// them in the Prometheus text exposition format.
	MetricsRegistry = obs.Registry
)

// NewTrace returns an empty trace.
func NewTrace() *Trace { return obs.NewTrace() }

// NewTraceObserver adapts a Trace to the Session event stream: every
// PhaseDone event becomes one manifest span.
func NewTraceObserver(tr *Trace) Observer { return core.NewTraceObserver(tr) }

// ReadTraceManifest parses a JSONL run manifest written by
// (*Trace).WriteManifest.
func ReadTraceManifest(r io.Reader) ([]TraceSpan, error) { return obs.ReadManifest(r) }

// SummarizeTrace aggregates manifest spans per phase, ordered by total
// wall time.
func SummarizeTrace(spans []TraceSpan) []TracePhaseSummary { return obs.Summarize(spans) }

// WriteTraceSummary renders the human-readable per-phase table aldiag
// prints for a manifest.
func WriteTraceSummary(w io.Writer, spans []TraceSpan) { obs.WriteSummary(w, spans) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// RegisterBlockingMetrics exposes the process-wide candidate-index
// counters (builds, adds, postings, filter funnel) on r; the MatchServer
// registers them on its own /metrics registry automatically.
func RegisterBlockingMetrics(r *MetricsRegistry) { blocking.RegisterMetrics(r) }

// Learners.
type (
	// SVM is the linear classifier (§4.2.1).
	SVM = linear.SVM
	// NeuralNet is the non-convex non-linear classifier (§4.2.2).
	NeuralNet = neural.Net
	// RandomForest is the tree-based classifier (§4.1.1).
	RandomForest = tree.Forest
	// DecisionTree is one CART tree of a forest.
	DecisionTree = tree.Tree
	// RuleModel is the monotone-DNF rule learner (§4.3).
	RuleModel = rules.Model
	// Rule is one conjunction of a RuleModel's DNF.
	Rule = rules.Rule
)

// NewSVM returns a linear SVM with benchmark defaults.
func NewSVM(seed int64) *SVM { return linear.NewSVM(seed) }

// NewNeuralNet returns the paper's feed-forward network (one hidden
// layer, batch norm, dropout) with the given hidden width.
func NewNeuralNet(hidden int, seed int64) *NeuralNet { return neural.NewNet(hidden, seed) }

// NewRandomForest returns a forest with the given committee size
// (Corleone settings: unlimited depth, log2(Dim+1) features per split).
func NewRandomForest(trees int, seed int64) *RandomForest { return tree.NewForest(trees, seed) }

// NewRuleModel returns a monotone-DNF rule learner over ext's atoms.
func NewRuleModel(ext *BoolFeatureExtractor) *RuleModel { return rules.NewModel(ext) }

// SVMFactory builds SVMs for QBC committees.
func SVMFactory(seed int64) Learner { return linear.NewSVM(seed) }

// NeuralNetFactory builds networks of the given width for QBC committees.
func NeuralNetFactory(hidden int) Factory {
	return func(seed int64) Learner { return neural.NewNet(hidden, seed) }
}

// Model persistence: the unified artifact couples a trained learner
// with everything needed to reapply it — schema, blocking threshold,
// featurization pipeline, and (for extended features) the training-time
// corpus statistics. One file, self-describing, loadable by kind.
type (
	// ModelArtifact is a loaded model plus its deployment metadata.
	ModelArtifact = model.Artifact
	// ModelMeta is the deployment metadata saved alongside a learner.
	ModelMeta = model.Meta
	// ModelKind tags which learner family an artifact holds.
	ModelKind = model.Kind
	// Featurization names a feature pipeline (float, bool, extended).
	Featurization = match.Featurization
)

// Model kinds.
const (
	// KindSVM tags a linear SVM artifact.
	KindSVM = model.KindSVM
	// KindNeuralNet tags a feed-forward network artifact.
	KindNeuralNet = model.KindNeuralNet
	// KindRandomForest tags a random-forest artifact.
	KindRandomForest = model.KindRandomForest
	// KindRules tags a monotone-DNF rules artifact.
	KindRules = model.KindRules
)

// Featurization pipelines.
const (
	// FloatFeatures is the standard 21-metric float pipeline.
	FloatFeatures = match.FloatFeatures
	// BoolFeatures is the thresholded Boolean-atom pipeline (rules).
	BoolFeatures = match.BoolFeatures
	// ExtendedFeatures is the 25-metric corpus-aware pipeline.
	ExtendedFeatures = match.ExtendedFeatures
)

// ParseFeaturization parses "float", "bool" or "extended".
func ParseFeaturization(s string) (Featurization, error) {
	return match.ParseFeaturization(s)
}

// SaveModel writes learner plus meta as one self-describing artifact.
// Meta.Schema is required; everything else defaults sensibly.
func SaveModel(w io.Writer, l Learner, meta ModelMeta) error {
	return model.Save(w, l, meta)
}

// LoadModel reads an artifact written by SaveModel, rebuilds its feature
// pipeline, and validates learner dimensionality against it.
func LoadModel(r io.Reader) (*ModelArtifact, error) { return model.Load(r) }

// LoadSVM reads an SVM written by (*SVM).SaveJSON.
//
// Deprecated: bare-learner files carry no schema or pipeline metadata.
// Use SaveModel / LoadModel for new code; this remains for old files.
func LoadSVM(r io.Reader) (*SVM, error) { return linear.LoadJSON(r) }

// LoadNeuralNet reads a network written by (*NeuralNet).SaveJSON.
//
// Deprecated: bare-learner files carry no schema or pipeline metadata.
// Use SaveModel / LoadModel for new code; this remains for old files.
func LoadNeuralNet(r io.Reader) (*NeuralNet, error) { return neural.LoadJSON(r) }

// LoadRandomForest reads a forest written by (*RandomForest).SaveJSON.
//
// Deprecated: bare-learner files carry no schema or pipeline metadata.
// Use SaveModel / LoadModel for new code; this remains for old files.
func LoadRandomForest(r io.Reader) (*RandomForest, error) { return tree.LoadJSON(r) }

// LoadRuleModel reads a DNF written by (*RuleModel).SaveJSON, re-binding
// it to ext (same schema and thresholds as at training time).
//
// Deprecated: bare-learner files carry no schema or pipeline metadata.
// Use SaveModel / LoadModel for new code; this remains for old files.
func LoadRuleModel(r io.Reader, ext *BoolFeatureExtractor) (*RuleModel, error) {
	return rules.LoadJSON(r, ext)
}

// Deployment.
type (
	// Matcher applies a trained learner to fresh table pairs, running
	// the same blocking + featurization pipeline end to end.
	Matcher = match.Matcher
	// MatchedPair is one predicted match, by record IDs.
	MatchedPair = match.Pair

	// MatchServer serves a ModelArtifact over HTTP: POST /v1/match,
	// POST /v1/score (batched through a bounded worker pool),
	// GET /v1/models, GET /healthz, GET /metrics. See cmd/almserve.
	MatchServer = serve.Server
	// MatchServerConfig sizes a MatchServer (workers, batching, timeouts,
	// per-tenant admission, registry admin routes).
	MatchServerConfig = serve.Config

	// ModelRegistry is the server's versioned model store: Publish
	// validates a new version, Activate flips the default alias with one
	// atomic pointer store (zero dropped requests), Remove drains a
	// retired version on its own pool. Reach it via (*MatchServer).Models.
	ModelRegistry = serve.Registry
	// RegistryModelInfo is one registry entry's public state, as served
	// by GET /v1/models and embedded per model in /healthz.
	RegistryModelInfo = serve.ModelInfo

	// ServeRequestDone is emitted on the event stream per HTTP request.
	ServeRequestDone = serve.RequestDone
	// ServeStart is emitted when the server's listener binds.
	ServeStart = serve.ServerStart
	// ServeDrainStart is emitted when graceful shutdown begins.
	ServeDrainStart = serve.DrainStart
	// ServeStop is emitted when shutdown completes.
	ServeStop = serve.ServerStop
	// ServeModelPublished is emitted when a model version is published.
	ServeModelPublished = serve.ModelPublished
	// ServeModelActivated is emitted when the default alias flips.
	ServeModelActivated = serve.ModelActivated
	// ServeModelSwapFailed is emitted when a publish is rejected; the
	// serving version is untouched and /healthz turns degraded.
	ServeModelSwapFailed = serve.ModelSwapFailed
)

// BootModelVersion is the version id NewMatchServer (and almserve's
// -model flag) publishes its boot artifact under.
const BootModelVersion = serve.BootVersion

// Registry errors, re-exported for errors.Is against admin API results.
var (
	// ErrModelSwapRejected wraps every failed publish: the artifact did
	// not validate or the version id was unusable; nothing was applied.
	ErrModelSwapRejected = serve.ErrSwapRejected
	// ErrNoActiveModel: the registry holds no activated version.
	ErrNoActiveModel = serve.ErrNoActiveModel
	// ErrUnknownModelVersion: a request named a version id the registry
	// does not hold.
	ErrUnknownModelVersion = serve.ErrUnknownModel
	// ErrInvalidModelArtifact is the model loader's typed rejection for
	// truncated, garbage, or drifted artifacts; it rides inside
	// ErrModelSwapRejected chains.
	ErrInvalidModelArtifact = model.ErrInvalidArtifact
)

// NewMatchServer builds an HTTP matching service over a loaded artifact.
// Observers receive the serve event vocabulary (ServeRequestDone, ...)
// through the same stream Session uses.
func NewMatchServer(art *ModelArtifact, cfg MatchServerConfig, observers ...Observer) *MatchServer {
	return serve.New(art, cfg, observers...)
}

// NewMultiModelServer builds an HTTP matching service with an empty
// model registry: publish versions through (*MatchServer).Models (or the
// admin POST /v1/models route when cfg.EnableAdmin is set) and activate
// one to start serving. Until then model routes answer 503 and /healthz
// reports degraded.
func NewMultiModelServer(cfg MatchServerConfig, observers ...Observer) *MatchServer {
	return serve.NewMulti(cfg, observers...)
}

// Oracles.
type (
	// Oracle labels pairs on demand and counts queries.
	Oracle = oracle.Oracle
	// PerfectOracle answers from ground truth.
	PerfectOracle = oracle.Perfect
	// NoisyOracle flips labels with a fixed probability (§6.2).
	NoisyOracle = oracle.Noisy
)

// NewPerfectOracle answers every query from ground truth.
func NewPerfectOracle(d *Dataset) *PerfectOracle { return oracle.NewPerfect(d) }

// NewNoisyOracle flips the true label with the given probability.
func NewNoisyOracle(d *Dataset, noise float64, seed int64) *NoisyOracle {
	return oracle.NewNoisy(d, noise, seed)
}

// NewMajorityVoteOracle wraps an Oracle with k-worker majority voting,
// the crowd label-correction the paper's noise model deliberately omits.
func NewMajorityVoteOracle(inner Oracle, k int) Oracle {
	return oracle.NewMajorityVote(inner, k)
}

// Resilience: fault-tolerant labeling, crash-safe checkpoints, and
// overload protection. Real labeling back ends (crowds, APIs, humans on
// call) fail; these types let a Session survive transient faults, resume
// a killed run bit-identically from a snapshot plus label WAL, and let a
// MatchServer shed load instead of collapsing.
type (
	// FallibleOracle is an Oracle whose queries can fail: labeling is an
	// RPC to a human or service, so Label takes a context and returns an
	// error alongside the label.
	FallibleOracle = resilience.FallibleOracle
	// RetryPolicy bounds retries with exponential backoff and jitter.
	RetryPolicy = resilience.RetryPolicy
	// RetryOracle wraps a FallibleOracle with a RetryPolicy.
	RetryOracle = resilience.Retrier
	// FaultConfig parameterizes deterministic fault injection.
	FaultConfig = resilience.FaultConfig
	// FaultyOracle injects seeded, replayable faults for chaos testing.
	FaultyOracle = resilience.FaultyOracle
	// LabelWAL is the append-only, fsync-per-record label log that makes
	// resumed runs replay granted labels instead of re-paying for them.
	LabelWAL = resilience.LabelWAL
	// LabelRecord is one granted label in a LabelWAL.
	LabelRecord = resilience.LabelRecord
	// LabelSink receives each granted label as it is paid for.
	LabelSink = core.LabelSink
	// StatefulOracle is an oracle whose label decisions consume RNG
	// draws (NoisyOracle); snapshots capture and restore its position.
	StatefulOracle = oracle.Stateful
	// CircuitBreaker trips after consecutive failures and sheds load
	// until a cooldown probe succeeds; MatchServer runs one internally.
	CircuitBreaker = resilience.Breaker
	// CircuitBreakerConfig sizes a CircuitBreaker.
	CircuitBreakerConfig = resilience.BreakerConfig
	// TokenBucket is a burst-then-steady-rate admission limiter; its
	// Allow also reports how long a denied caller should back off.
	TokenBucket = resilience.TokenBucket
	// TenantLimiter keys TokenBuckets by tenant id with a bounded table
	// (stalest-evicted); MatchServer runs one when TenantRate is set.
	TenantLimiter = resilience.TenantLimiter
)

// Resilience errors.
var (
	// ErrOracleExhausted wraps the final error once a RetryOracle's
	// attempt budget is spent on a pair.
	ErrOracleExhausted = resilience.ErrOracleExhausted
	// ErrInjected marks failures manufactured by a FaultyOracle.
	ErrInjected = resilience.ErrInjected
	// ErrLabelingStalled reports a labeling round in which every query
	// failed; the Session stops with StopOracleFailed.
	ErrLabelingStalled = core.ErrLabelingStalled
)

// WrapOracle adapts an infallible Oracle to the FallibleOracle
// interface (its Label never fails, only honors ctx cancellation).
func WrapOracle(o Oracle) FallibleOracle { return resilience.Wrap(o) }

// NewRetryOracle wraps inner with bounded, jittered retries. A zero
// policy gets defaults (4 attempts, 50ms base delay doubling to 2s).
func NewRetryOracle(inner FallibleOracle, policy RetryPolicy, seed int64) *RetryOracle {
	return resilience.NewRetrier(inner, policy, seed)
}

// NewFaultyOracle wraps inner with deterministic seeded fault
// injection: the same seed yields the same per-pair fault pattern
// regardless of call interleaving, so chaos tests are replayable.
func NewFaultyOracle(inner FallibleOracle, cfg FaultConfig, seed int64) *FaultyOracle {
	return resilience.NewFaultyOracle(inner, cfg, seed)
}

// NewCircuitBreaker builds a standalone breaker (MatchServer wires its
// own; this is for callers guarding other dependencies).
func NewCircuitBreaker(cfg CircuitBreakerConfig) *CircuitBreaker {
	return resilience.NewBreaker(cfg)
}

// NewTokenBucket builds a standalone rate limiter admitting `rate`
// calls per second after an initial burst of `burst`.
func NewTokenBucket(rate float64, burst int) *TokenBucket {
	return resilience.NewTokenBucket(rate, burst, nil)
}

// NewTenantLimiter builds a per-tenant admission table; each tenant id
// gets its own TokenBucket (burst <= 0 defaults to twice the rate).
func NewTenantLimiter(rate float64, burst int) *TenantLimiter {
	return resilience.NewTenantLimiter(rate, burst, nil)
}

// OpenLabelWAL opens (or creates) a label write-ahead log, replaying
// its intact prefix and truncating any torn tail from a crash
// mid-append. Wire the WAL into a Session with SetLabelSink; pass the
// replayed records to RestoreSessionWithWAL on resume.
func OpenLabelWAL(path string) (*LabelWAL, []LabelRecord, error) {
	return resilience.OpenLabelWAL(path)
}

// WriteFileAtomic writes a file via temp + fsync + rename so readers
// never observe a torn write — the way checkpoints should hit disk.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	return resilience.WriteFileAtomic(path, write)
}

// NewFallibleSession is NewSession over a FallibleOracle: failed
// queries emit OracleFault events and requeue their pairs, the run
// trains on whatever labels were granted, and a fully failed round
// stops with StopOracleFailed instead of spinning.
func NewFallibleSession(pool *Pool, l Learner, s Selector, fo FallibleOracle, cfg Config) (*Session, error) {
	return core.NewFallibleSession(pool, l, s, fo, cfg)
}

// RestoreSessionWithWAL is RestoreSession plus replay of labels granted
// after the snapshot was taken: WAL records beyond the snapshot are
// served from cache when the resumed run re-selects their pairs, so a
// killed process pays for no label twice and reproduces the
// uninterrupted run bit-identically.
func RestoreSessionWithWAL(pool *Pool, l Learner, s Selector, fo FallibleOracle,
	sn *SessionSnapshot, wal []LabelRecord) (*Session, error) {
	return core.RestoreWithWAL(pool, l, s, fo, sn, wal)
}

// Costly oracles: batched labelers that charge per answer, abstain, and
// take wall-clock time — the LLM/crowd labeling regime — plus the dollar
// budgets, cost ledger and transfer warm-start that go with them.
type (
	// BatchOracle labels whole batches in one call; answers are priced
	// and may abstain or fail per pair.
	BatchOracle = oracle.BatchOracle
	// OracleAnswer is one pair's outcome in a batch: a verdict, its
	// billed cost, or a per-pair error.
	OracleAnswer = oracle.Answer
	// OracleVerdict is a batch labeler's three-way answer.
	OracleVerdict = oracle.Verdict
	// PriceTable is a batch labeler's per-answer price list.
	PriceTable = oracle.PriceTable
	// LLMSimConfig parameterizes the simulated LLM labeler.
	LLMSimConfig = oracle.LLMSimConfig
	// SimulatedLLMOracle is a deterministic, seeded stand-in for an LLM
	// labeling API: priced answers, abstentions, failures, latency.
	SimulatedLLMOracle = oracle.SimulatedLLMOracle
	// CostLedger is a Session's running bill: answers bought, the
	// label/abstain split, and dollars spent.
	CostLedger = core.CostLedger
	// OracleBatchDone reports one completed batch-labeling call with its
	// answer mix, cost and latency.
	OracleBatchDone = core.OracleBatchDone
)

// Batch labeler verdicts.
const (
	// VerdictNonMatch answers "different entities".
	VerdictNonMatch = oracle.VerdictNonMatch
	// VerdictMatch answers "same entity".
	VerdictMatch = oracle.VerdictMatch
	// VerdictAbstain declines to answer; billed, requeued until the
	// abstain cutoff retires the pair.
	VerdictAbstain = oracle.VerdictAbstain
)

// DefaultAbstainCutoff is the per-pair abstention limit when
// Config.AbstainCutoff is zero.
const DefaultAbstainCutoff = core.DefaultAbstainCutoff

// ErrSimulated marks failures injected by a SimulatedLLMOracle.
var ErrSimulated = oracle.ErrSimulated

// NewSimulatedLLMOracle builds the seeded simulated LLM labeler over a
// dataset's ground truth. Identical (dataset, cfg, seed) yields an
// identical answer stream regardless of batch interleaving.
func NewSimulatedLLMOracle(d *Dataset, cfg LLMSimConfig, seed int64) *SimulatedLLMOracle {
	return oracle.NewSimulatedLLM(d, cfg, seed)
}

// BatchedOracle adapts a per-pair Oracle to the BatchOracle interface:
// free, never abstains, never fails — and bit-identical to the per-pair
// path (the equivalence suite pins this).
func BatchedOracle(inner Oracle) BatchOracle { return oracle.Batched(inner) }

// BatchOfOracle adapts a FallibleOracle to the BatchOracle interface,
// mapping per-pair errors to per-answer errors.
func BatchOfOracle(fo FallibleOracle) BatchOracle { return resilience.BatchOf(fo) }

// NewBatchSession is NewSession over a BatchOracle: labels are bought in
// one priced call per iteration, abstentions are billed and requeued up
// to Config.AbstainCutoff, and Config.MaxDollars bounds total spend
// (the run stops with StopBudgetExhausted when the next answer could
// overdraw it).
func NewBatchSession(pool *Pool, l Learner, s Selector, bo BatchOracle, cfg Config) (*Session, error) {
	return core.NewBatchSession(pool, l, s, bo, cfg)
}

// RestoreBatchSessionWithWAL resumes a batch-oracle run from a snapshot
// plus label WAL: answers the dead process paid for — labels and billed
// abstentions alike — are replayed from the WAL, never re-bought, and
// the restored ledger matches the uninterrupted run to the cent.
func RestoreBatchSessionWithWAL(pool *Pool, l Learner, s Selector, bo BatchOracle,
	sn *SessionSnapshot, wal []LabelRecord) (*Session, error) {
	return core.RestoreBatchWithWAL(pool, l, s, bo, sn, wal)
}

// RegisterOracleMetrics exposes the process-wide labeling-cost counters
// (batches, answer mix, microdollars billed) on a metrics registry; the
// match server's /metrics includes them automatically.
func RegisterOracleMetrics(r *MetricsRegistry) { oracle.RegisterMetrics(r) }

// Evaluation.
type (
	// Confusion is a binary confusion matrix.
	Confusion = eval.Confusion
	// CurvePoint is one iteration's measurement.
	CurvePoint = eval.Point
	// Curve is a per-iteration measurement sequence.
	Curve = eval.Curve
)

// EvaluatePredictions compares predictions against truth.
func EvaluatePredictions(pred, truth []bool) Confusion { return eval.Evaluate(pred, truth) }

// Interpretability (§6.3).
type (
	// DNFPredicate is one atom of a tree-derived DNF.
	DNFPredicate = interp.Predicate
	// DNFConjunction is one clause of a tree-derived DNF.
	DNFConjunction = interp.Conjunction
)

// ForestToDNF converts a trained forest to DNF clauses.
func ForestToDNF(f *RandomForest) []DNFConjunction { return interp.ForestToDNF(f) }

// ForestAtoms counts the forest's DNF atoms (the Fig. 18a metric).
func ForestAtoms(f *RandomForest) int { return interp.ForestAtoms(f) }

// DiagnosticReport summarizes a dataset's post-blocking feature
// geometry: per-attribute class separation and similarity histograms.
type DiagnosticReport = diag.Report

// Diagnose blocks and featurizes a dataset and reports how separable its
// matches are from its non-matches — the difficulty view behind the
// synthetic profile calibration.
func Diagnose(d *Dataset) *DiagnosticReport { return diag.Analyze(d) }

// Clustering: dedup post-processing (predicted matches -> entities).
type (
	// Clusters groups records into resolved entities.
	Clusters = cluster.Clusters
	// ClusterNode identifies a record (side 0 = left table, 1 = right).
	ClusterNode = cluster.Node
	// MatchEdge is one predicted match between left and right records.
	MatchEdge = cluster.Edge
)

// ClusterMatches builds entity clusters as connected components over
// predicted match edges.
func ClusterMatches(nLeft, nRight int, edges []MatchEdge) *Clusters {
	return cluster.Connected(nLeft, nRight, edges)
}

// Experiments: the paper's tables and figures.
type (
	// ExperimentOptions size an experiment run.
	ExperimentOptions = experiments.Options
	// ExperimentReport is a reproduced table or figure.
	ExperimentReport = experiments.Report
)

// ExperimentIDs lists every reproducible table/figure id.
func ExperimentIDs() []string { return experiments.IDs() }

// AblationIDs lists the extension experiments: design-choice sweeps and
// the plug-in learner demonstration.
func AblationIDs() []string { return experiments.AblationIDs() }

// DefaultExperimentOptions returns defaults with ALEM_* env overrides.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// RunExperiment runs one experiment by id (e.g. "table2", "fig12") and
// writes its report to w.
func RunExperiment(id string, opts ExperimentOptions, w io.Writer) (*ExperimentReport, error) {
	driver, err := experiments.Get(id)
	if err != nil {
		return nil, err
	}
	rep, err := driver(opts)
	if err != nil {
		return nil, err
	}
	if w != nil {
		rep.WriteTo(w, opts.Verbose)
	}
	return rep, nil
}
