package diag

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/alem/alem/internal/core"
	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/eval"
	"github.com/alem/alem/internal/feature"
)

func TestEventLogRendersStream(t *testing.T) {
	var buf bytes.Buffer
	clock := time.Unix(0, 0)
	l := newEventLog(&buf, func() time.Time { return clock })

	clock = clock.Add(5 * time.Millisecond)
	l.Observe(core.IterationStart{Iteration: 0, LabelsUsed: 30, PoolRemaining: 470})
	l.Observe(core.TrainDone{Iteration: 0, Labels: 30, Elapsed: 2 * time.Millisecond})
	l.Observe(core.EvalDone{Iteration: 0, Point: eval.Point{Labels: 30, F1: 0.51, Precision: 0.6, Recall: 0.44}})
	l.Observe(core.BatchSelected{Iteration: 0, Batch: []int{1, 2, 3}})
	l.Observe(core.CandidateAccepted{Iteration: 0, Accepted: 1})
	l.Observe(core.RunEnd{Iterations: 1, LabelsUsed: 40, Reason: core.StopBudget})

	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6:\n%s", len(lines), out)
	}
	for _, want := range []string{
		"iter   0  start      labels=30 pool=470",
		"train      n=30",
		"F1=0.5100",
		"select     batch=3",
		"accepted classifier #1",
		"run end: label budget exhausted after 1 iterations, 40 labels",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Relative timestamps, not wall-clock ones.
	if !strings.Contains(lines[0], "[     5ms]") {
		t.Errorf("first line lacks the 5ms relative timestamp: %q", lines[0])
	}
}

// Minimal stand-ins: a learner that predicts by first-feature threshold
// and an Oracle answering from pool truth, enough to drive a real
// Session without importing the learner packages.
type stubLearner struct{}

func (stubLearner) Name() string                       { return "stub" }
func (stubLearner) Train(X []feature.Vector, y []bool) {}
func (stubLearner) Predict(x feature.Vector) bool      { return x[0] > 0.5 }
func (s stubLearner) PredictAll(X []feature.Vector) []bool {
	out := make([]bool, len(X))
	for i, x := range X {
		out[i] = s.Predict(x)
	}
	return out
}

type stubOracle struct{ pool *core.Pool }

func (o stubOracle) Label(p dataset.PairKey) bool {
	for i, q := range o.pool.Pairs {
		if q == p {
			return o.pool.Truth[i]
		}
	}
	return false
}
func (stubOracle) Queries() int { return 0 }

func randVectors(n int, seed int64) []feature.Vector {
	r := rand.New(rand.NewSource(seed))
	out := make([]feature.Vector, n)
	for i := range out {
		out[i] = feature.Vector{r.Float64(), r.Float64()}
	}
	return out
}

func alternating(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = i%2 == 0
	}
	return out
}

// TestEventLogObservesLiveSession wires the log into a real run and
// checks it sees every phase.
func TestEventLogObservesLiveSession(t *testing.T) {
	var buf bytes.Buffer
	pool := core.NewPoolFromVectors(randVectors(300, 9), alternating(300))
	s, err := core.NewSession(pool, stubLearner{}, core.Random{}, stubOracle{pool}, core.Config{
		Seed: 9, MaxLabels: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.AddObserver(NewEventLog(&buf))
	if _, err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"start", "train", "eval", "select", "run end"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("live log missing %q phase", want)
		}
	}
}
