// Package diag inspects an EM dataset's difficulty: how separable are
// matches from non-matches in the feature space the learners see? It
// summarizes per-attribute mean similarities by class and renders an
// ASCII histogram of mean-similarity distributions — the diagnostic view
// used to calibrate the synthetic dataset profiles against Table 1.
package diag

import (
	"context"
	"fmt"
	"io"
	"strings"

	"github.com/alem/alem/internal/blocking"
	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/feature"
)

// Report summarizes a dataset's post-blocking feature geometry.
type Report struct {
	Dataset           string
	PostBlockingPairs int
	Skew              float64
	MatchesKept       int
	MatchesTotal      int
	// AttrSeparation holds, per attribute, the mean of the 21 similarity
	// features for matches and non-matches.
	AttrSeparation []AttrStats
	// MatchHist / NonMatchHist bucket the per-pair mean similarity into
	// ten [0,1] bins.
	MatchHist    [10]int
	NonMatchHist [10]int
	// Index is the candidate-index shape and filter funnel of the
	// blocking pass that produced the pairs above.
	Index blocking.IndexStats
}

// AttrStats is one attribute's class-conditional mean similarity.
type AttrStats struct {
	Attr          string
	MatchMean     float64
	NonMatchMean  float64
	NullRateLeft  float64
	NullRateRight float64
}

// Analyze blocks and featurizes the dataset, then computes the report.
func Analyze(d *dataset.Dataset) *Report {
	idx := blocking.NewCandidateIndex(d, blocking.IndexOptions{})
	res, err := blocking.Generate(context.Background(), idx)
	if err != nil {
		// Unreachable: generation fails only by cancellation and the
		// background context never cancels.
		panic(fmt.Sprintf("diag: uncancellable blocking failed: %v", err))
	}
	ext := feature.NewExtractor(d.Left.Schema)
	X := ext.ExtractPairs(d, res.Pairs)

	r := &Report{
		Dataset:           d.Name,
		PostBlockingPairs: len(res.Pairs),
		Skew:              res.Skew(d),
		MatchesKept:       res.MatchesKept,
		MatchesTotal:      res.MatchesTotal,
		Index:             idx.Stats(),
	}
	nAttrs := len(d.Left.Schema)
	perAttr := 0
	if nAttrs > 0 && len(X) > 0 {
		perAttr = len(X[0]) / nAttrs
	}
	sums := make([][2]float64, nAttrs) // [attr][class]
	counts := [2]int{}
	for i, v := range X {
		cls := 0
		if d.IsMatch(res.Pairs[i]) {
			cls = 1
		}
		counts[cls]++
		var total float64
		for a := 0; a < nAttrs; a++ {
			var s float64
			for k := 0; k < perAttr; k++ {
				s += v[a*perAttr+k]
			}
			s /= float64(perAttr)
			sums[a][cls] += s
			total += s
		}
		total /= float64(nAttrs)
		bin := int(total * 10)
		if bin > 9 {
			bin = 9
		}
		if cls == 1 {
			r.MatchHist[bin]++
		} else {
			r.NonMatchHist[bin]++
		}
	}
	for a := 0; a < nAttrs; a++ {
		st := AttrStats{Attr: d.Left.Schema[a]}
		if counts[1] > 0 {
			st.MatchMean = sums[a][1] / float64(counts[1])
		}
		if counts[0] > 0 {
			st.NonMatchMean = sums[a][0] / float64(counts[0])
		}
		st.NullRateLeft = nullRate(d.Left, a)
		st.NullRateRight = nullRate(d.Right, a)
		r.AttrSeparation = append(r.AttrSeparation, st)
	}
	return r
}

func nullRate(t *dataset.Table, attr int) float64 {
	if len(t.Rows) == 0 {
		return 0
	}
	n := 0
	for _, row := range t.Rows {
		if row.Values[attr] == "" {
			n++
		}
	}
	return float64(n) / float64(len(t.Rows))
}

// Separation is the headline difficulty number: the gap between the
// match and non-match mean similarities averaged over attributes. Values
// near 0 mean the classes overlap (hard); values near 1 mean trivially
// separable.
func (r *Report) Separation() float64 {
	if len(r.AttrSeparation) == 0 {
		return 0
	}
	var s float64
	for _, a := range r.AttrSeparation {
		s += a.MatchMean - a.NonMatchMean
	}
	return s / float64(len(r.AttrSeparation))
}

// Print renders the report, including ASCII histograms.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "dataset %s: %d post-blocking pairs, skew %.3f, matches kept %d/%d\n",
		r.Dataset, r.PostBlockingPairs, r.Skew, r.MatchesKept, r.MatchesTotal)
	fmt.Fprintf(w, "candidate index: %d tokens, %d postings in %d shards; probed %d, size-filtered %d, verified %d, kept %d\n",
		r.Index.Tokens, r.Index.Postings, r.Index.Shards,
		r.Index.Probed, r.Index.SizeSkipped, r.Index.Verified, r.Index.Kept)
	fmt.Fprintf(w, "class separation %.3f (match-mean minus non-match-mean similarity)\n\n", r.Separation())
	fmt.Fprintf(w, "%-20s %11s %14s %11s %11s\n", "attribute", "match mean", "non-match mean", "null left", "null right")
	for _, a := range r.AttrSeparation {
		fmt.Fprintf(w, "%-20s %11.3f %14.3f %10.0f%% %10.0f%%\n",
			a.Attr, a.MatchMean, a.NonMatchMean, a.NullRateLeft*100, a.NullRateRight*100)
	}
	fmt.Fprintf(w, "\nmean-similarity distribution (rows are [0.0-0.1) ... [0.9-1.0]):\n")
	fmt.Fprintf(w, "%-10s %-32s %s\n", "bin", "matches", "non-matches")
	maxM, maxN := 1, 1
	for i := 0; i < 10; i++ {
		if r.MatchHist[i] > maxM {
			maxM = r.MatchHist[i]
		}
		if r.NonMatchHist[i] > maxN {
			maxN = r.NonMatchHist[i]
		}
	}
	for i := 0; i < 10; i++ {
		fmt.Fprintf(w, "[%.1f-%.1f)  %-32s %s\n", float64(i)/10, float64(i+1)/10,
			bar(r.MatchHist[i], maxM, 30), bar(r.NonMatchHist[i], maxN, 30))
	}
}

// bar renders n scaled against max into a width-character bar.
func bar(n, max, width int) string {
	if n == 0 {
		return ""
	}
	w := n * width / max
	if w == 0 {
		w = 1
	}
	return strings.Repeat("#", w) + fmt.Sprintf(" %d", n)
}
