package diag

import (
	"bytes"
	"strings"
	"testing"

	"github.com/alem/alem/internal/dataset"
)

func TestAnalyzeBeer(t *testing.T) {
	d, err := dataset.Load("beer", 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(d)
	if r.PostBlockingPairs == 0 {
		t.Fatal("no post-blocking pairs")
	}
	if len(r.AttrSeparation) != len(d.Left.Schema) {
		t.Fatalf("attr stats = %d, want %d", len(r.AttrSeparation), len(d.Left.Schema))
	}
	// Matches must be more similar than non-matches overall.
	if r.Separation() <= 0 {
		t.Errorf("separation = %v, want > 0", r.Separation())
	}
	for _, a := range r.AttrSeparation {
		if a.MatchMean < 0 || a.MatchMean > 1 || a.NonMatchMean < 0 || a.NonMatchMean > 1 {
			t.Errorf("attr %s means outside [0,1]: %+v", a.Attr, a)
		}
	}
	// Histograms account for every pair.
	total := 0
	for i := 0; i < 10; i++ {
		total += r.MatchHist[i] + r.NonMatchHist[i]
	}
	if total != r.PostBlockingPairs {
		t.Errorf("histogram total %d != %d pairs", total, r.PostBlockingPairs)
	}
}

func TestReportWriteTo(t *testing.T) {
	d, err := dataset.Load("beer", 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Analyze(d).Print(&buf)
	out := buf.String()
	for _, want := range []string{"beer_name", "class separation", "[0.9-1.0]", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestHardDatasetsOverlapMoreThanCleanOnes(t *testing.T) {
	hard, err := dataset.Load("abt-buy", 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := dataset.Load("dblp-acm", 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	hs := Analyze(hard).Separation()
	cs := Analyze(clean).Separation()
	if hs >= cs {
		t.Errorf("abt-buy separation %.3f not below dblp-acm %.3f (difficulty ordering)", hs, cs)
	}
}

func TestBar(t *testing.T) {
	if bar(0, 10, 30) != "" {
		t.Error("zero count should render empty")
	}
	if got := bar(10, 10, 30); !strings.HasPrefix(got, strings.Repeat("#", 30)) {
		t.Errorf("full bar = %q", got)
	}
	if got := bar(1, 1000, 30); !strings.HasPrefix(got, "#") {
		t.Errorf("tiny nonzero bar should show at least one #: %q", got)
	}
}
