package diag

import (
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/alem/alem/internal/core"
)

// EventLog is a core.Observer that renders a Session's event stream as a
// human-readable, timestamped trace — the diagnostic companion to the
// live progress lines in the CLIs. One line per event, relative
// timestamps since the log was created, so a slow phase is visible as a
// gap between its start and done lines.
//
// EventLog serializes writes with a mutex, so one log may observe
// several concurrent runs (interleaved lines, consistent formatting).
type EventLog struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
	now   func() time.Time
}

// NewEventLog returns an EventLog writing to w.
func NewEventLog(w io.Writer) *EventLog {
	return newEventLog(w, time.Now)
}

// newEventLog injects the clock for deterministic tests.
func newEventLog(w io.Writer, now func() time.Time) *EventLog {
	return &EventLog{w: w, start: now(), now: now}
}

// Observe implements core.Observer.
func (l *EventLog) Observe(e core.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	elapsed := l.now().Sub(l.start).Round(time.Millisecond)
	switch ev := e.(type) {
	case core.IterationStart:
		fmt.Fprintf(l.w, "[%8s] iter %3d  start      labels=%d pool=%d\n",
			elapsed, ev.Iteration, ev.LabelsUsed, ev.PoolRemaining)
	case core.TrainDone:
		fmt.Fprintf(l.w, "[%8s] iter %3d  train      n=%d in %s\n",
			elapsed, ev.Iteration, ev.Labels, ev.Elapsed.Round(time.Microsecond))
	case core.EvalDone:
		fmt.Fprintf(l.w, "[%8s] iter %3d  eval       F1=%.4f P=%.4f R=%.4f in %s\n",
			elapsed, ev.Iteration, ev.Point.F1, ev.Point.Precision, ev.Point.Recall,
			ev.Elapsed.Round(time.Microsecond))
	case core.BatchSelected:
		fmt.Fprintf(l.w, "[%8s] iter %3d  select     batch=%d committee=%s score=%s\n",
			elapsed, ev.Iteration, len(ev.Batch),
			ev.CommitteeCreate.Round(time.Microsecond), ev.Score.Round(time.Microsecond))
	case core.OracleBatchDone:
		fmt.Fprintf(l.w, "[%8s] iter %3d  batch      pairs=%d labels=%d abstain=%d fail=%d retired=%d cost=$%.4f spent=$%.4f in %s\n",
			elapsed, ev.Iteration, ev.Pairs, ev.Labels, ev.Abstains, ev.Failures,
			ev.Retired, ev.Cost, ev.Spent, ev.Elapsed.Round(time.Microsecond))
	case core.OracleFault:
		fmt.Fprintf(l.w, "[%8s] iter %3d  fault      pair (%d,%d) requeued: %v\n",
			elapsed, ev.Iteration, ev.Pair.L, ev.Pair.R, ev.Err)
	case core.CandidateAccepted:
		fmt.Fprintf(l.w, "[%8s] iter %3d  ensemble   accepted classifier #%d\n",
			elapsed, ev.Iteration, ev.Accepted)
	case core.RunEnd:
		fmt.Fprintf(l.w, "[%8s] run end: %s after %d iterations, %d labels\n",
			elapsed, ev.Reason, ev.Iterations, ev.LabelsUsed)
	case core.PhaseDone:
		// Timing spans duplicate what the phase-specific lines above
		// already show; they are collected by trace observers, not logged.
	default:
		// Events from outside core (embedding core.ExternalEvent) supply
		// their own one-line rendering; anything else falls back to %T.
		if el, ok := e.(interface{ EventLine() string }); ok {
			fmt.Fprintf(l.w, "[%8s] %s\n", elapsed, el.EventLine())
			break
		}
		fmt.Fprintf(l.w, "[%8s] %T%+v\n", elapsed, e, e)
	}
}
