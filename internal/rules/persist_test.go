package rules

import (
	"bytes"
	"strings"
	"testing"

	"github.com/alem/alem/internal/feature"
)

func TestRulesSaveLoadRoundTrip(t *testing.T) {
	X, y := singleAtomData()
	ext := testExtractor()
	m := NewModel(ext)
	m.Train(X, y)
	var buf bytes.Buffer
	if err := m.SaveJSON(&buf, ext.Dim()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(&buf, ext)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		if got.Predict(x) != m.Predict(x) {
			t.Fatalf("prediction %d differs after round trip", i)
		}
	}
	if got.NumAtoms() != m.NumAtoms() {
		t.Errorf("atoms %d != original %d", got.NumAtoms(), m.NumAtoms())
	}
	if got.String() != m.String() {
		t.Errorf("rendered DNF differs:\n%s\nvs\n%s", got.String(), m.String())
	}
}

func TestRulesLoadRejectsDimMismatch(t *testing.T) {
	X, y := singleAtomData()
	ext := testExtractor()
	m := NewModel(ext)
	m.Train(X, y)
	var buf bytes.Buffer
	if err := m.SaveJSON(&buf, ext.Dim()); err != nil {
		t.Fatal(err)
	}
	other := feature.NewBoolExtractor([]string{"a", "b"}) // different dim
	if _, err := LoadJSON(&buf, other); err == nil {
		t.Error("LoadJSON accepted an extractor with mismatched dimensionality")
	}
}

func TestRulesLoadRejectsOutOfRangeAtom(t *testing.T) {
	ext := testExtractor()
	bad := `{"min_precision":0.85,"max_atoms":4,"dim":30,"rules":[[999]]}`
	if _, err := LoadJSON(strings.NewReader(bad), ext); err == nil {
		t.Error("LoadJSON accepted an out-of-range atom index")
	}
	if _, err := LoadJSON(strings.NewReader("{"), ext); err == nil {
		t.Error("LoadJSON accepted truncated JSON")
	}
}
