// Package rules implements the benchmark's rule-based learner (§4.3,
// after Qian et al.): entity-matching rules expressed as monotone DNF
// formulas — disjunctions of conjunctive rules over Boolean atoms of the
// form sim(attr) ≥ τ — learned greedily to high precision, together with
// the Likely-False-Positive / Likely-False-Negative example-selection
// heuristic.
//
// Rule models consume the 0/1 vectors produced by feature.BoolExtractor:
// a coordinate ≥ 0.5 means the corresponding atom holds.
package rules

import (
	"sort"
	"strings"

	"github.com/alem/alem/internal/feature"
)

// Rule is a conjunction of atoms, identified by Boolean feature indices.
type Rule struct {
	Atoms []int
}

// Covers reports whether x satisfies every atom of the rule. An empty
// rule covers everything.
func (r Rule) Covers(x feature.Vector) bool {
	for _, a := range r.Atoms {
		if x[a] < 0.5 {
			return false
		}
	}
	return true
}

// Model is a monotone DNF classifier: an example matches if any learned
// conjunctive rule covers it.
type Model struct {
	// MinPrecision is the labeled-data precision a conjunction must reach
	// to be accepted into the DNF (high-precision rules per §5.2).
	MinPrecision float64
	// MaxAtoms caps conjunction length, keeping rules concise (§6.3).
	MaxAtoms int

	rules []Rule
	atoms func(i int) feature.Atom
}

// NewModel builds a rule learner whose atoms are described by ext. The
// default acceptance precision is 0.85, matching the paper's ensemble
// threshold τ.
func NewModel(ext *feature.BoolExtractor) *Model {
	return &Model{MinPrecision: 0.85, MaxAtoms: 4, atoms: ext.Atom}
}

// Name implements the learner interface.
func (m *Model) Name() string { return "dnf-rules" }

// Rules returns the learned conjunctions.
func (m *Model) Rules() []Rule { return m.rules }

// MinDim returns a lower bound on the Boolean feature dimensionality the
// DNF was learned over: one past the largest atom index any rule tests.
// Deployment-time validation requires the extractor to be at least this
// wide (the exact width lives in the saved artifact).
func (m *Model) MinDim() int {
	d := 0
	for _, r := range m.rules {
		for _, a := range r.Atoms {
			d = max(d, a+1)
		}
	}
	return d
}

// NumAtoms counts atoms in the DNF with repetition — the interpretability
// metric of §6.3 (inverse interpretability, Singh et al.).
func (m *Model) NumAtoms() int {
	n := 0
	for _, r := range m.rules {
		n += len(r.Atoms)
	}
	return n
}

// String renders the DNF the way the paper prints rule ensembles.
func (m *Model) String() string {
	if len(m.rules) == 0 {
		return "<empty DNF>"
	}
	var sb strings.Builder
	for i, r := range m.rules {
		if i > 0 {
			sb.WriteString("\n∨\n")
		}
		for j, a := range r.Atoms {
			if j > 0 {
				sb.WriteString(" ∧ ")
			}
			sb.WriteString(m.atoms(a).String())
		}
	}
	return sb.String()
}

// Train relearns the DNF from scratch on the labeled 0/1 vectors using
// greedy set cover: repeatedly learn the conjunction with the best
// precision on the still-uncovered positives, accept it if it clears
// MinPrecision, and remove the positives it covers.
func (m *Model) Train(X []feature.Vector, y []bool) {
	m.rules = nil
	if len(X) == 0 {
		return
	}
	var positives, negatives []int
	for i, yi := range y {
		if yi {
			positives = append(positives, i)
		} else {
			negatives = append(negatives, i)
		}
	}
	uncovered := append([]int(nil), positives...)
	for len(uncovered) > 0 && len(m.rules) < 32 {
		rule, prec, covered := m.learnConjunction(X, uncovered, negatives)
		if rule == nil || prec < m.MinPrecision || len(covered) == 0 {
			break
		}
		m.rules = append(m.rules, *rule)
		remaining := uncovered[:0]
		cov := make(map[int]struct{}, len(covered))
		for _, i := range covered {
			cov[i] = struct{}{}
		}
		for _, i := range uncovered {
			if _, ok := cov[i]; !ok {
				remaining = append(remaining, i)
			}
		}
		uncovered = remaining
	}
}

// learnConjunction greedily grows one conjunction: each step adds the
// atom with the best Laplace-smoothed precision over the currently
// covered (uncovered-positive, negative) sets, until no negatives remain
// covered, MaxAtoms is reached, or no atom improves precision.
func (m *Model) learnConjunction(X []feature.Vector, positives, negatives []int) (*Rule, float64, []int) {
	dim := len(X[0])
	coveredPos := append([]int(nil), positives...)
	coveredNeg := append([]int(nil), negatives...)
	var rule Rule

	precision := func(p, n int) float64 {
		return (float64(p) + 1) / (float64(p+n) + 2)
	}
	current := precision(len(coveredPos), len(coveredNeg))

	for len(rule.Atoms) < m.MaxAtoms && len(coveredNeg) > 0 {
		bestAtom, bestPrec, bestPosCov := -1, current, 0
		for a := 0; a < dim; a++ {
			if containsInt(rule.Atoms, a) {
				continue
			}
			var p, n int
			for _, i := range coveredPos {
				if X[i][a] >= 0.5 {
					p++
				}
			}
			if p == 0 {
				continue
			}
			for _, i := range coveredNeg {
				if X[i][a] >= 0.5 {
					n++
				}
			}
			prec := precision(p, n)
			if prec > bestPrec+1e-12 || (prec > bestPrec-1e-12 && p > bestPosCov) {
				bestAtom, bestPrec, bestPosCov = a, prec, p
			}
		}
		if bestAtom < 0 {
			break
		}
		rule.Atoms = append(rule.Atoms, bestAtom)
		coveredPos = filterCovered(X, bestAtom, coveredPos)
		coveredNeg = filterCovered(X, bestAtom, coveredNeg)
		current = precision(len(coveredPos), len(coveredNeg))
	}
	if len(rule.Atoms) == 0 || len(coveredPos) == 0 {
		return nil, 0, nil
	}
	exact := float64(len(coveredPos)) / float64(len(coveredPos)+len(coveredNeg))
	return &rule, exact, coveredPos
}

func filterCovered(X []feature.Vector, atom int, idx []int) []int {
	out := make([]int, 0, len(idx))
	for _, i := range idx {
		if X[i][atom] >= 0.5 {
			out = append(out, i)
		}
	}
	return out
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Predict labels x as matching if any rule covers it. An empty DNF
// predicts non-match everywhere.
func (m *Model) Predict(x feature.Vector) bool {
	for _, r := range m.rules {
		if r.Covers(x) {
			return true
		}
	}
	return false
}

// PredictAll classifies a batch.
func (m *Model) PredictAll(X []feature.Vector) []bool {
	out := make([]bool, len(X))
	for i, x := range X {
		out[i] = m.Predict(x)
	}
	return out
}

// simScore is the fraction of true atoms in x — the feature-similarity
// heuristic LFP/LFN ranks candidates by: a predicted match with few true
// atoms is a likely false positive, a rule-minus match with many true
// atoms is a likely false negative.
func simScore(x feature.Vector) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		if v >= 0.5 {
			s++
		}
	}
	return s / float64(len(x))
}

// SelectLFPLFN implements the §4.3 heuristic. From the unlabeled indices
// it returns up to k examples: likely false positives (covered by the
// DNF but with low feature similarity) interleaved with likely false
// negatives (covered by some Rule-Minus relaxation but not the full DNF,
// with high feature similarity). An empty result signals that no LFPs or
// LFNs remain, the paper's early-termination condition for rule learning.
func (m *Model) SelectLFPLFN(X []feature.Vector, unlabeled []int, k int) []int {
	return m.SelectLFPLFNCancel(X, unlabeled, k, nil)
}

// cancelCheckStride bounds how many unlabeled examples are scored
// between polls of the cancellation hook, mirroring the core engine's
// stride so SIGINT/deadline latency stays small on large pools.
const cancelCheckStride = 64

// SelectLFPLFNCancel is SelectLFPLFN with a cooperative cancellation
// hook: cancelled (nil-safe) is polled every cancelCheckStride examples,
// and a true return abandons scoring with a nil batch — the engine
// discards the batch of a cancelled iteration, so a partial result is
// never recorded.
func (m *Model) SelectLFPLFNCancel(X []feature.Vector, unlabeled []int, k int, cancelled func() bool) []int {
	if len(m.rules) == 0 || k <= 0 {
		return nil
	}
	rank, ok := m.RankLFPLFN(X, unlabeled, cancelled)
	if !ok || len(rank) == 0 {
		return nil
	}
	if k > len(rank) {
		k = len(rank)
	}
	return rank[:k]
}

// RankLFPLFN returns the FULL LFP/LFN interleaved ranking of the
// unlabeled pool — every likely false positive and likely false negative
// in the §4.3 order (LFPs ascending by similarity interleaved with LFNs
// descending), with no batch cap. The interleaving is prefix-stable:
// for any k, the first k entries are exactly SelectLFPLFN's batch, which
// is what lets core express LFP/LFN as a rank-valued informativeness
// score composable with any deterministic picker. The second result is
// false iff the cancellation hook (nil-safe, polled every
// cancelCheckStride examples) fired, distinguishing an abandoned scan
// from a genuinely empty ranking — the paper's rule-learning
// early-termination condition.
func (m *Model) RankLFPLFN(X []feature.Vector, unlabeled []int, cancelled func() bool) ([]int, bool) {
	if len(m.rules) == 0 {
		return nil, true
	}
	var lfps, lfns []scored
	for n, i := range unlabeled {
		if cancelled != nil && n%cancelCheckStride == 0 && cancelled() {
			return nil, false
		}
		x := X[i]
		if m.Predict(x) {
			lfps = append(lfps, scored{i, simScore(x)})
			continue
		}
		// Rule-Minus: drop one atom from some rule; if the relaxed rule
		// covers x, it is a candidate missed match.
		if m.coveredByRuleMinus(x) {
			lfns = append(lfns, scored{i, simScore(x)})
		}
	}
	// LFPs ascending by similarity (most suspicious first), LFNs
	// descending (most match-like first).
	sortScored(lfps, true)
	sortScored(lfns, false)
	out := make([]int, 0, len(lfps)+len(lfns))
	for li, fi := 0, 0; li < len(lfps) || fi < len(lfns); {
		if li < len(lfps) {
			out = append(out, lfps[li].idx)
			li++
		}
		if fi < len(lfns) {
			out = append(out, lfns[fi].idx)
			fi++
		}
	}
	return out, true
}

func (m *Model) coveredByRuleMinus(x feature.Vector) bool {
	for _, r := range m.rules {
		if len(r.Atoms) < 2 {
			continue
		}
		for drop := range r.Atoms {
			ok := true
			for j, a := range r.Atoms {
				if j == drop {
					continue
				}
				if x[a] < 0.5 {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
	}
	return false
}

type scored struct {
	idx   int
	score float64
}

// sortScored sorts by score (ascending or descending) with index as the
// deterministic tie-break.
func sortScored(s []scored, asc bool) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].score != s[j].score {
			if asc {
				return s[i].score < s[j].score
			}
			return s[i].score > s[j].score
		}
		return s[i].idx < s[j].idx
	})
}
