package rules

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/alem/alem/internal/feature"
)

// modelState is the serialized form of a learned DNF. Atom indices are
// meaningful only relative to the BoolExtractor schema the model was
// trained with, so the schema's dimensionality is stored for validation.
type modelState struct {
	MinPrecision float64 `json:"min_precision"`
	MaxAtoms     int     `json:"max_atoms"`
	Dim          int     `json:"dim"`
	Rules        [][]int `json:"rules"`
}

// SaveJSON writes the learned DNF for later reuse. dim is the Boolean
// feature dimensionality of the extractor the model was trained with.
func (m *Model) SaveJSON(w io.Writer, dim int) error {
	st := modelState{MinPrecision: m.MinPrecision, MaxAtoms: m.MaxAtoms, Dim: dim}
	for _, r := range m.rules {
		st.Rules = append(st.Rules, r.Atoms)
	}
	if err := json.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("rules: encoding model: %w", err)
	}
	return nil
}

// LoadJSON reads a model written by SaveJSON, re-binding it to ext,
// which must have the same dimensionality as the extractor the model was
// trained with (same schema, metrics and thresholds).
func LoadJSON(r io.Reader, ext *feature.BoolExtractor) (*Model, error) {
	var st modelState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("rules: decoding model: %w", err)
	}
	if ext.Dim() != st.Dim {
		return nil, fmt.Errorf("rules: extractor dim %d does not match saved dim %d", ext.Dim(), st.Dim)
	}
	m := NewModel(ext)
	m.MinPrecision, m.MaxAtoms = st.MinPrecision, st.MaxAtoms
	for _, atoms := range st.Rules {
		for _, a := range atoms {
			if a < 0 || a >= st.Dim {
				return nil, fmt.Errorf("rules: atom index %d out of range [0,%d)", a, st.Dim)
			}
		}
		m.rules = append(m.rules, Rule{Atoms: atoms})
	}
	return m, nil
}
