package rules

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/feature"
)

// boolVec converts a bit pattern to the 0/1 feature.Vector the model
// consumes.
func boolVec(bits ...int) feature.Vector {
	v := make(feature.Vector, len(bits))
	for i, b := range bits {
		v[i] = float64(b)
	}
	return v
}

// singleAtomData: atom 0 perfectly separates the classes; atoms 1, 2 are
// noise.
func singleAtomData() ([]feature.Vector, []bool) {
	X := []feature.Vector{
		boolVec(1, 0, 1), boolVec(1, 1, 0), boolVec(1, 0, 0), boolVec(1, 1, 1),
		boolVec(0, 1, 1), boolVec(0, 0, 1), boolVec(0, 1, 0), boolVec(0, 0, 0),
	}
	y := []bool{true, true, true, true, false, false, false, false}
	return X, y
}

func testExtractor() *feature.BoolExtractor {
	return feature.NewBoolExtractor([]string{"name"})
}

func TestModelLearnsSingleAtom(t *testing.T) {
	X, y := singleAtomData()
	m := NewModel(testExtractor())
	m.Train(X, y)
	if len(m.Rules()) == 0 {
		t.Fatal("no rules learned on separable data")
	}
	for i, x := range X {
		if m.Predict(x) != y[i] {
			t.Errorf("Predict(%v) = %v, want %v", x, m.Predict(x), y[i])
		}
	}
	// One atom suffices.
	if m.NumAtoms() != 1 {
		t.Errorf("NumAtoms = %d, want 1 (concise rule)", m.NumAtoms())
	}
}

func TestModelLearnsDisjunction(t *testing.T) {
	// Positives satisfy atom 0 OR atom 1; negatives neither.
	X := []feature.Vector{
		boolVec(1, 0, 0), boolVec(1, 0, 1), boolVec(0, 1, 0), boolVec(0, 1, 1),
		boolVec(0, 0, 1), boolVec(0, 0, 0), boolVec(0, 0, 1), boolVec(0, 0, 0),
	}
	y := []bool{true, true, true, true, false, false, false, false}
	m := NewModel(testExtractor())
	m.Train(X, y)
	if len(m.Rules()) < 2 {
		t.Fatalf("rules = %d, want >= 2 (disjunction)", len(m.Rules()))
	}
	for i, x := range X {
		if m.Predict(x) != y[i] {
			t.Errorf("Predict(%v) = %v, want %v", x, m.Predict(x), y[i])
		}
	}
}

func TestModelLearnsConjunction(t *testing.T) {
	// Positive iff atoms 0 AND 1 both hold.
	X := []feature.Vector{
		boolVec(1, 1, 0), boolVec(1, 1, 1),
		boolVec(1, 0, 0), boolVec(0, 1, 1), boolVec(0, 0, 0), boolVec(1, 0, 1),
	}
	y := []bool{true, true, false, false, false, false}
	m := NewModel(testExtractor())
	m.Train(X, y)
	for i, x := range X {
		if m.Predict(x) != y[i] {
			t.Errorf("Predict(%v) = %v, want %v", x, m.Predict(x), y[i])
		}
	}
}

func TestModelPrecisionGate(t *testing.T) {
	// No atom reaches 0.99 precision; with a strict gate nothing should
	// be learned.
	X := []feature.Vector{
		boolVec(1), boolVec(1), boolVec(1), boolVec(1),
		boolVec(1), boolVec(0), boolVec(0), boolVec(0),
	}
	y := []bool{true, true, true, false, false, false, false, false}
	m := NewModel(testExtractor())
	m.MinPrecision = 0.99
	m.Train(X, y)
	if len(m.Rules()) != 0 {
		t.Errorf("learned %d rules despite precision gate", len(m.Rules()))
	}
	if m.Predict(boolVec(1)) {
		t.Error("empty DNF must predict non-match")
	}
}

func TestModelEmptyTraining(t *testing.T) {
	m := NewModel(testExtractor())
	m.Train(nil, nil)
	if m.Predict(boolVec(1, 1, 1)) {
		t.Error("untrained model predicted match")
	}
	if m.NumAtoms() != 0 {
		t.Error("untrained model has atoms")
	}
	if got := m.String(); got != "<empty DNF>" {
		t.Errorf("String = %q", got)
	}
}

func TestModelString(t *testing.T) {
	X, y := singleAtomData()
	m := NewModel(testExtractor())
	m.Train(X, y)
	s := m.String()
	if !strings.Contains(s, ">=") {
		t.Errorf("String() = %q, want rendered atoms", s)
	}
}

func TestSelectLFPPicksLowSimilarityPredictedMatches(t *testing.T) {
	X, y := singleAtomData()
	m := NewModel(testExtractor())
	m.Train(X, y) // DNF = atom0
	// Unlabeled pool: two predicted matches, one with low overall
	// similarity (the LFP), plus clear non-matches.
	pool := []feature.Vector{
		boolVec(1, 1, 1), // predicted match, high sim
		boolVec(1, 0, 0), // predicted match, LOW sim -> LFP first
		boolVec(0, 0, 0), // non-match, not covered by rule-minus (single-atom rule)
	}
	idx := []int{0, 1, 2}
	sel := m.SelectLFPLFN(pool, idx, 2)
	if len(sel) == 0 {
		t.Fatal("no examples selected")
	}
	if sel[0] != 1 {
		t.Errorf("first selection = %d, want 1 (lowest-similarity predicted match)", sel[0])
	}
}

func TestSelectLFNViaRuleMinus(t *testing.T) {
	// Conjunction atoms {0,1}. An example with atom0 only is covered by
	// the rule-minus (drop atom1) and has moderate similarity -> LFN.
	X := []feature.Vector{
		boolVec(1, 1, 0), boolVec(1, 1, 1),
		boolVec(1, 0, 0), boolVec(0, 1, 1), boolVec(0, 0, 0), boolVec(1, 0, 1),
	}
	y := []bool{true, true, false, false, false, false}
	m := NewModel(testExtractor())
	m.Train(X, y)
	pool := []feature.Vector{
		boolVec(1, 0, 1), // rule-minus covered (atom0 holds, atom1 dropped)
		boolVec(0, 0, 0), // nothing
	}
	sel := m.SelectLFPLFN(pool, []int{0, 1}, 2)
	found := false
	for _, s := range sel {
		if s == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("rule-minus candidate not selected: %v", sel)
	}
	for _, s := range sel {
		if s == 1 {
			t.Error("selected an example covered by neither DNF nor rule-minus")
		}
	}
}

func TestSelectLFPLFNEmptyOnNoCandidates(t *testing.T) {
	X, y := singleAtomData()
	m := NewModel(testExtractor())
	m.Train(X, y)
	pool := []feature.Vector{boolVec(0, 1, 1), boolVec(0, 0, 1)}
	if sel := m.SelectLFPLFN(pool, []int{0, 1}, 5); len(sel) != 0 {
		t.Errorf("selected %v from a pool with no LFPs/LFNs (termination condition)", sel)
	}
	// Untrained model also selects nothing.
	m2 := NewModel(testExtractor())
	if sel := m2.SelectLFPLFN(pool, []int{0, 1}, 5); len(sel) != 0 {
		t.Errorf("untrained model selected %v", sel)
	}
}

func TestModelOnGeneratedDataset(t *testing.T) {
	// End-to-end sanity: rules learned on a clean publication dataset
	// should reach decent training F1.
	d, err := dataset.Load("dblp-acm", 0.03, 3)
	if err != nil {
		t.Fatal(err)
	}
	ext := feature.NewBoolExtractor(d.Left.Schema)
	pairs := d.Matches()
	// Add an equal number of non-matching pairs.
	neg := 0
	for l := 0; l < len(d.Left.Rows) && neg < len(pairs); l++ {
		for r := 0; r < len(d.Right.Rows) && neg < len(pairs); r++ {
			p := dataset.PairKey{L: l, R: r}
			if !d.IsMatch(p) {
				pairs = append(pairs, p)
				neg++
			}
		}
	}
	X := make([]feature.Vector, len(pairs))
	y := make([]bool, len(pairs))
	for i, p := range pairs {
		bv := ext.Extract(d.Left.Rows[p.L], d.Right.Rows[p.R])
		v := make(feature.Vector, len(bv))
		for j, b := range bv {
			if b {
				v[j] = 1
			}
		}
		X[i] = v
		y[i] = d.IsMatch(p)
	}
	m := NewModel(ext)
	m.Train(X, y)
	if len(m.Rules()) == 0 {
		t.Fatal("no rules learned on dblp-acm sample")
	}
	tp, fp, fn := 0, 0, 0
	for i, x := range X {
		pred := m.Predict(x)
		switch {
		case pred && y[i]:
			tp++
		case pred && !y[i]:
			fp++
		case !pred && y[i]:
			fn++
		}
	}
	f1 := 2 * float64(tp) / float64(2*tp+fp+fn)
	if f1 < 0.6 {
		t.Errorf("training F1 = %.3f, want >= 0.6 on a clean dataset", f1)
	}
}

// TestDNFMonotonicity: the model is a MONOTONE DNF — turning an atom
// from false to true can never flip a prediction from match to
// non-match.
func TestDNFMonotonicity(t *testing.T) {
	X, y := singleAtomData()
	m := NewModel(testExtractor())
	m.Train(X, y)
	r := rand.New(rand.NewSource(8))
	prop := func(bits uint8) bool {
		x := boolVec(int(bits>>0&1), int(bits>>1&1), int(bits>>2&1))
		if !m.Predict(x) {
			return true
		}
		// Raise a random false coordinate to true; prediction must stay.
		up := append(feature.Vector(nil), x...)
		idx := r.Intn(len(up))
		up[idx] = 1
		return m.Predict(up)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTrainIdempotent(t *testing.T) {
	// Training twice on the same data yields the same DNF (greedy cover
	// is deterministic).
	X, y := singleAtomData()
	a := NewModel(testExtractor())
	a.Train(X, y)
	s1 := a.String()
	a.Train(X, y)
	if a.String() != s1 {
		t.Errorf("retraining changed the DNF:\n%s\nvs\n%s", s1, a.String())
	}
}

func TestMaxAtomsHonored(t *testing.T) {
	// Force a long conjunction need: positives require atoms 0..4 all set.
	var X []feature.Vector
	var y []bool
	for i := 0; i < 32; i++ {
		v := boolVec(i&1, (i>>1)&1, (i>>2)&1, (i>>3)&1, (i>>4)&1)
		X = append(X, v)
		y = append(y, i == 31)
	}
	m := NewModel(testExtractor())
	m.MaxAtoms = 2
	m.MinPrecision = 0 // accept whatever precision the cap allows
	m.Train(X, y)
	for _, r := range m.Rules() {
		if len(r.Atoms) > 2 {
			t.Fatalf("rule %v exceeds MaxAtoms=2", r.Atoms)
		}
	}
}

func TestMinPrecisionZeroLearnsSomething(t *testing.T) {
	X, y := singleAtomData()
	m := NewModel(testExtractor())
	m.MinPrecision = 0
	m.Train(X, y)
	if len(m.Rules()) == 0 {
		t.Error("MinPrecision=0 learned nothing on separable data")
	}
}

func TestSelectLFPLFNCancelAbortsScoring(t *testing.T) {
	X, y := singleAtomData()
	m := NewModel(testExtractor())
	m.Train(X, y) // DNF = atom0
	pool := []feature.Vector{
		boolVec(1, 1, 1), boolVec(1, 0, 0), boolVec(0, 0, 0),
	}
	idx := []int{0, 1, 2}
	// Sanity: without cancellation this pool yields candidates.
	if sel := m.SelectLFPLFNCancel(pool, idx, 2, nil); len(sel) == 0 {
		t.Fatal("uncancelled selection returned nothing")
	}
	if sel := m.SelectLFPLFNCancel(pool, idx, 2, func() bool { return false }); len(sel) == 0 {
		t.Fatal("selection with a live context returned nothing")
	}
	// A cancellation that has already fired aborts with a nil batch
	// before any example is scored.
	if sel := m.SelectLFPLFNCancel(pool, idx, 2, func() bool { return true }); sel != nil {
		t.Fatalf("cancelled selection returned %v, want nil", sel)
	}
}
