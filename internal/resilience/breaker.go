package resilience

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: traffic flows; failures are being counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is shed until the cooldown expires.
	BreakerOpen
	// BreakerHalfOpen: one probe request is allowed through; its outcome
	// closes or re-opens the circuit.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig sizes a Breaker. The zero value picks the defaults
// documented per field.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// circuit (default 5).
	FailureThreshold int
	// Cooldown is how long the circuit stays open before a half-open
	// probe is allowed (default 10s).
	Cooldown time.Duration
	// Now is the clock, injectable for tests (default time.Now).
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a consecutive-failure circuit breaker: FailureThreshold
// failures in a row open it, shedding all traffic for Cooldown; then a
// single half-open probe decides whether to close it again. The serving
// layer wraps it around the matcher so a wedged or panicking model sheds
// load with fast 429s instead of stacking up doomed requests.
//
// Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool

	opens int64
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may proceed and whether that request
// holds the circuit's single half-open probe. While open it admits
// nothing until the cooldown expires, then admits exactly one probe;
// further requests are shed until the probe is settled. A caller
// admitted with probe=true MUST settle it — Record an outcome, or
// Release it when the request's fate said nothing about downstream
// health (client error, disconnect) — or the half-open state wedges and
// sheds traffic forever.
func (b *Breaker) Allow() (admit, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			return true, true
		}
		return false, false
	case BreakerHalfOpen:
		if b.probing {
			return false, false // a probe is already in flight
		}
		b.probing = true
		return true, true
	}
	return false, false
}

// Release abandons an admitted half-open probe without judging the
// model: the circuit stays half-open and the next Allow admits a fresh
// probe. For probe holders whose request died on something unrelated to
// downstream health. Harmless if Record already settled the probe.
func (b *Breaker) Release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// Record reports a request outcome: nil is a success, anything else a
// failure. Callers should only record outcomes that reflect downstream
// health (timeouts, panics, internal errors), not client mistakes.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		switch b.state {
		case BreakerClosed, BreakerHalfOpen:
			b.state = BreakerClosed
			b.fails = 0
			b.probing = false
		case BreakerOpen:
			// Late success from a request admitted before the trip; the
			// cooldown stands, mirroring the late-failure case below.
		}
		return
	}
	switch b.state {
	case BreakerHalfOpen:
		b.open()
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.open()
		}
	case BreakerOpen:
		// Late failure from a request admitted before the trip; the
		// circuit is already open.
	}
}

// open must be called with b.mu held.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.Now()
	b.fails = 0
	b.probing = false
	b.opens++
}

// State returns the current position, advancing open→half-open if the
// cooldown has expired (so metrics and health checks see the same state
// a request would).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// RetryAfter is the time until the next half-open probe would be
// admitted: the Retry-After hint served with shed responses. Zero when
// the circuit is not open.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	rem := b.cfg.Cooldown - b.cfg.Now().Sub(b.openedAt)
	if rem < 0 {
		return 0
	}
	return rem
}

// Opens reports how many times the circuit has tripped.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
