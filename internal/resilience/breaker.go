package resilience

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: traffic flows; failures are being counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is shed until the cooldown expires.
	BreakerOpen
	// BreakerHalfOpen: one probe request is allowed through; its outcome
	// closes or re-opens the circuit.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig sizes a Breaker. The zero value picks the defaults
// documented per field.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// circuit (default 5).
	FailureThreshold int
	// Cooldown is how long the circuit stays open before a half-open
	// probe is allowed (default 10s).
	Cooldown time.Duration
	// Now is the clock, injectable for tests (default time.Now).
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a consecutive-failure circuit breaker: FailureThreshold
// failures in a row open it, shedding all traffic for Cooldown; then a
// single half-open probe decides whether to close it again. The serving
// layer wraps it around the matcher so a wedged or panicking model sheds
// load with fast 429s instead of stacking up doomed requests.
//
// Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool

	opens int64
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may proceed. While open it returns
// false until the cooldown expires, then admits exactly one half-open
// probe; further requests are shed until Record settles the probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			return true
		}
		return false
	case BreakerHalfOpen:
		if b.probing {
			return false // a probe is already in flight
		}
		b.probing = true
		return true
	}
	return false
}

// Record reports a request outcome: nil is a success, anything else a
// failure. Callers should only record outcomes that reflect downstream
// health (timeouts, panics, internal errors), not client mistakes.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.state = BreakerClosed
		b.fails = 0
		b.probing = false
		return
	}
	switch b.state {
	case BreakerHalfOpen:
		b.open()
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.open()
		}
	case BreakerOpen:
		// Late failure from a request admitted before the trip; the
		// circuit is already open.
	}
}

// open must be called with b.mu held.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.Now()
	b.fails = 0
	b.probing = false
	b.opens++
}

// State returns the current position, advancing open→half-open if the
// cooldown has expired (so metrics and health checks see the same state
// a request would).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// RetryAfter is the time until the next half-open probe would be
// admitted: the Retry-After hint served with shed responses. Zero when
// the circuit is not open.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	rem := b.cfg.Cooldown - b.cfg.Now().Sub(b.openedAt)
	if rem < 0 {
		return 0
	}
	return rem
}

// Opens reports how many times the circuit has tripped.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
