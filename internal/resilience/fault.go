package resilience

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"github.com/alem/alem/internal/dataset"
)

// ErrInjected marks an error produced by the fault injector; chaos tests
// match it with errors.Is to separate injected faults from real ones.
var ErrInjected = errors.New("resilience: injected fault")

// FaultConfig shapes a FaultyOracle's failure behavior. The zero value
// injects nothing.
type FaultConfig struct {
	// TransientRate is the probability in [0, 1] that any single attempt
	// fails with a transient error.
	TransientRate float64
	// Latency is added to every successful attempt (0: none). Chaos
	// tests keep it at 0 or microseconds; soak runs use realistic values.
	Latency time.Duration
	// OutageAfter / OutageFor, when OutageFor > 0, hard-fail every
	// attempt in the call-count window
	// [OutageAfter, OutageAfter+OutageFor) — a labeler that goes down
	// and comes back. The window is counted on the injector's own
	// attempt counter, so unlike transient faults it is not stable
	// across a Snapshot+WAL resume; align outages with checkpoint
	// boundaries when asserting bit-identical resume.
	OutageAfter int
	OutageFor   int
}

// FaultyOracle wraps a FallibleOracle with deterministic, seeded fault
// injection. Each transient-fault decision is a pure function of
// (seed, pair, that pair's attempt ordinal): two injectors built with
// the same seed, driven with the same per-pair attempt sequence, make
// identical decisions — which is what lets the chaos suite assert a
// killed-and-resumed run is bit-identical to an uninterrupted one.
//
// The per-pair attempt ordinals are process-local state. A resumed
// process replays WAL-cached labels without re-attempting them, which is
// safe (a granted pair is never queried again), so decisions stay
// aligned as long as no pair exhausted its retry budget before the
// checkpoint (an exhausted pair would be re-queried later with a reset
// ordinal). Chaos tests assert Retrier.Exhausted() == 0 to pin that
// precondition.
//
// Faults fire BEFORE the inner oracle is consulted, so failed attempts
// never advance the inner labeler's query count or RNG state.
type FaultyOracle struct {
	inner FallibleOracle
	cfg   FaultConfig
	seed  int64

	mu       sync.Mutex
	attempts map[dataset.PairKey]int // per-pair attempt ordinals
	calls    int                     // total attempts, drives the outage window
	injected int
}

// NewFaultyOracle wraps inner with seeded fault injection.
func NewFaultyOracle(inner FallibleOracle, cfg FaultConfig, seed int64) *FaultyOracle {
	return &FaultyOracle{inner: inner, cfg: cfg, seed: seed, attempts: map[dataset.PairKey]int{}}
}

// Label implements FallibleOracle.
func (f *FaultyOracle) Label(ctx context.Context, p dataset.PairKey) (bool, error) {
	f.mu.Lock()
	f.calls++
	call := f.calls
	f.attempts[p]++
	attempt := f.attempts[p]
	f.mu.Unlock()

	if f.cfg.OutageFor > 0 && call > f.cfg.OutageAfter && call <= f.cfg.OutageAfter+f.cfg.OutageFor {
		f.fault()
		return false, fmt.Errorf("%w: labeler outage (call %d)", ErrInjected, call)
	}
	if f.cfg.TransientRate > 0 && faultDraw(f.seed, p, attempt) < f.cfg.TransientRate {
		f.fault()
		return false, fmt.Errorf("%w: transient labeler error (pair %d,%d attempt %d)",
			ErrInjected, p.L, p.R, attempt)
	}
	if f.cfg.Latency > 0 {
		timer := time.NewTimer(f.cfg.Latency)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return false, ctx.Err()
		}
	}
	return f.inner.Label(ctx, p)
}

func (f *FaultyOracle) fault() {
	f.mu.Lock()
	f.injected++
	f.mu.Unlock()
}

// faultDraw maps (seed, pair, attempt) to a uniform [0, 1) value via
// FNV-1a — cheap, stable across processes, and independent of how calls
// for different pairs interleave.
func faultDraw(seed int64, p dataset.PairKey, attempt int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range []uint64{uint64(seed), uint64(p.L), uint64(p.R), uint64(attempt)} {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Queries implements FallibleOracle: the attempts that reached the inner
// labeler.
func (f *FaultyOracle) Queries() int { return f.inner.Queries() }

// Injected reports how many faults have been injected so far.
func (f *FaultyOracle) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Calls reports the total attempts seen (successful or faulted).
func (f *FaultyOracle) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// UnwrapOracle exposes the wrapped oracle for StatefulOf.
func (f *FaultyOracle) UnwrapOracle() any { return f.inner }
