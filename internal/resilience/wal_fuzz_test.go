package resilience

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzScanWAL pins the WAL's durability contract against arbitrary tail
// corruption: given a log holding acknowledged labels followed by any
// bytes a crash could have left behind, recovery must never panic and
// must never lose an acknowledged record. Either OpenLabelWAL refuses
// the file outright, or it returns every acknowledged label (the fuzz
// tail may legitimately extend the sequence if it happens to decode as
// valid next-in-sequence records) and leaves a file that re-opens to the
// identical state — recovery must be idempotent across re-crashes.
func FuzzScanWAL(f *testing.F) {
	f.Add(0, []byte{})
	f.Add(3, []byte("{\"seq\":9}"))                            // out-of-sequence intact tail line
	f.Add(2, []byte("{\"seq\":3,\"index\":7,\"label\":true"))  // torn: no newline
	f.Add(1, []byte("{\"seq\":2,\"index\":1,\"label\":true}\n{garbage")) // valid extension then tear
	f.Add(4, []byte("\x00\xff\x00binary junk"))
	f.Fuzz(func(t *testing.T, acked int, tail []byte) {
		if acked < 0 || acked > 64 {
			return
		}
		path := filepath.Join(t.TempDir(), "labels.wal")
		w, records, err := OpenLabelWAL(path)
		if err != nil {
			t.Fatalf("fresh WAL: %v", err)
		}
		if len(records) != 0 {
			t.Fatalf("fresh WAL replayed %d records", len(records))
		}
		for i := 1; i <= acked; i++ {
			if err := w.Append(i, i*3, i%2 == 0); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		}
		w.Close()

		// The crash: arbitrary bytes land after the acknowledged records.
		fh, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		fh.Write(tail)
		fh.Close()

		w2, got, err := OpenLabelWAL(path)
		if err != nil {
			// Refusing a corrupt file is allowed; silently dropping
			// acknowledged labels is not, and is checked on the accept path.
			return
		}
		if len(got) < acked {
			t.Fatalf("recovery lost acknowledged labels: %d of %d survive", len(got), acked)
		}
		for i := 0; i < acked; i++ {
			want := LabelRecord{Seq: i + 1, Index: (i + 1) * 3, Label: (i+1)%2 == 0}
			if got[i] != want {
				t.Fatalf("record %d = %+v, want %+v", i, got[i], want)
			}
		}
		w2.Close()

		// Re-crash immediately: the truncated file must re-open to the
		// identical record set with no error.
		w3, again, err := OpenLabelWAL(path)
		if err != nil {
			t.Fatalf("re-opening recovered WAL: %v", err)
		}
		defer w3.Close()
		if len(again) != len(got) {
			t.Fatalf("recovery not idempotent: %d then %d records", len(got), len(again))
		}
		for i := range got {
			if again[i] != got[i] {
				t.Fatalf("record %d changed across re-open: %+v vs %+v", i, got[i], again[i])
			}
		}
	})
}
