// Package resilience is the framework's fault-tolerance layer: it models
// labelers that fail (FallibleOracle), makes those failures reproducible
// (FaultyOracle, a seeded deterministic fault injector), bounds them
// (Retrier: exponential backoff with jitter, per-attempt timeouts, a
// typed exhaustion error), and contains them (Breaker, the circuit
// breaker the serving layer wraps around the matcher).
//
// It also owns the durability primitives the checkpointing story builds
// on: LabelWAL, an fsync'd append-only log of granted labels, and
// WriteFileAtomic, the temp-file + fsync + rename discipline that keeps
// snapshots crash-consistent. core.Session wires these together so a
// killed process resumes bit-identically from Snapshot + WAL replay.
//
// The paper's benchmark (§3, §6.2) assumes an Oracle that always
// answers; this package is the production counterpart, where the labeler
// is a remote crowd or LLM endpoint that times out, errors and
// rate-limits.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/oracle"
)

// FallibleOracle is the failure-aware labeler interface: unlike
// oracle.Oracle, Label takes a context and can fail. Implementations
// must be safe to call sequentially from one goroutine; the Session
// engine never issues concurrent label queries.
type FallibleOracle interface {
	// Label returns the label of a pair, or an error when the labeler
	// timed out, rate-limited or is down. Implementations should honor
	// ctx cancellation promptly.
	Label(ctx context.Context, p dataset.PairKey) (bool, error)
	// Queries returns how many label requests reached the underlying
	// labeler (the paper's #labels cost metric).
	Queries() int
}

// ErrOracleExhausted is returned (wrapped, with the final attempt's
// error) by Retrier.Label once MaxAttempts have failed. Callers match it
// with errors.Is.
var ErrOracleExhausted = errors.New("resilience: oracle retries exhausted")

// infallible adapts a classic oracle.Oracle to the fallible interface.
// The only failure it can report is context cancellation, checked before
// the query so a cancelled run never pays for another label.
type infallible struct {
	inner oracle.Oracle
}

// Wrap lifts an infallible oracle.Oracle into the FallibleOracle
// interface.
func Wrap(o oracle.Oracle) FallibleOracle { return &infallible{inner: o} }

// Label implements FallibleOracle.
func (w *infallible) Label(ctx context.Context, p dataset.PairKey) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return w.inner.Label(p), nil
}

// Queries implements FallibleOracle.
func (w *infallible) Queries() int { return w.inner.Queries() }

// UnwrapOracle exposes the wrapped oracle for StatefulOf.
func (w *infallible) UnwrapOracle() any { return w.inner }

// StatefulOf walks an oracle wrapper chain (anything exposing
// UnwrapOracle() any) looking for an oracle.Stateful implementation —
// the hook Snapshot/Restore use to capture a Noisy oracle's RNG position
// through however many resilience layers wrap it.
func StatefulOf(o any) (oracle.Stateful, bool) {
	for o != nil {
		if st, ok := o.(oracle.Stateful); ok {
			return st, true
		}
		u, ok := o.(interface{ UnwrapOracle() any })
		if !ok {
			return nil, false
		}
		o = u.UnwrapOracle()
	}
	return nil, false
}

// RetryPolicy bounds how hard a Retrier leans on a failing labeler.
// The zero value picks the defaults documented per field.
type RetryPolicy struct {
	// MaxAttempts is the total tries per label query, first included
	// (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 50ms);
	// each further attempt doubles it (Multiplier) up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
	// Multiplier is the backoff growth factor (default 2).
	Multiplier float64
	// Jitter is the uniform random fraction added to each backoff, in
	// [0, 1] (default 0.2): delay * (1 + Jitter*U). Jitter decorrelates
	// retry storms; it never changes which attempt succeeds, so
	// deterministic replays are unaffected.
	Jitter float64
	// PerAttemptTimeout, when positive, bounds each attempt with its own
	// context deadline (default 0: the query's context is the only bound).
	PerAttemptTimeout time.Duration
	// Sleep overrides the backoff clock, for tests (nil: a real timer
	// that races ctx.Done, so a cancelled run never waits out a backoff).
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.2
	}
	return p
}

// Retrier wraps a FallibleOracle with bounded retries: transient
// failures are re-attempted with exponential backoff and jitter; once
// the budget is spent Label returns ErrOracleExhausted (wrapped with the
// final error) so the Session can requeue the pair instead of aborting
// the run. Context errors are never retried — a cancelled run must stop
// immediately, and a deadline that already fired cannot succeed later.
type Retrier struct {
	inner  FallibleOracle
	policy RetryPolicy
	rng    *rand.Rand
	mu     sync.Mutex // guards rng (jitter draws only; never affects outcomes)

	retries   int
	exhausted int
}

// NewRetrier wraps inner with the policy. seed drives only the backoff
// jitter, so it has no effect on which queries succeed.
func NewRetrier(inner FallibleOracle, policy RetryPolicy, seed int64) *Retrier {
	return &Retrier{inner: inner, policy: policy.withDefaults(), rng: rand.New(rand.NewSource(seed))}
}

// Label implements FallibleOracle with retry.
func (r *Retrier) Label(ctx context.Context, p dataset.PairKey) (bool, error) {
	var lastErr error
	delay := r.policy.BaseDelay
	for attempt := 1; attempt <= r.policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			r.retries++
			if !r.backoff(ctx, delay) {
				return false, ctx.Err()
			}
			delay = time.Duration(float64(delay) * r.policy.Multiplier)
			if delay > r.policy.MaxDelay {
				delay = r.policy.MaxDelay
			}
		}
		actx, cancel := ctx, context.CancelFunc(func() {})
		if r.policy.PerAttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, r.policy.PerAttemptTimeout)
		}
		lab, err := r.inner.Label(actx, p)
		cancel()
		if err == nil {
			return lab, nil
		}
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		lastErr = err
	}
	r.exhausted++
	return false, fmt.Errorf("%w after %d attempts on pair (%d,%d): %w",
		ErrOracleExhausted, r.policy.MaxAttempts, p.L, p.R, lastErr)
}

// backoff sleeps the jittered delay, returning false if ctx fired first.
func (r *Retrier) backoff(ctx context.Context, delay time.Duration) bool {
	r.mu.Lock()
	jittered := time.Duration(float64(delay) * (1 + r.policy.Jitter*r.rng.Float64()))
	r.mu.Unlock()
	if r.policy.Sleep != nil {
		r.policy.Sleep(jittered)
		return ctx.Err() == nil
	}
	timer := time.NewTimer(jittered)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Queries implements FallibleOracle.
func (r *Retrier) Queries() int { return r.inner.Queries() }

// Retries reports how many extra attempts the policy has paid so far.
func (r *Retrier) Retries() int { return r.retries }

// Exhausted reports how many label queries burned their whole budget.
func (r *Retrier) Exhausted() int { return r.exhausted }

// UnwrapOracle exposes the wrapped oracle for StatefulOf.
func (r *Retrier) UnwrapOracle() any { return r.inner }
