package resilience

import (
	"context"

	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/oracle"
)

// batchFallible adapts a per-pair FallibleOracle chain to the
// oracle.BatchOracle contract: each pair is answered by one inner Label
// call in submission order, a per-pair error becomes Answer.Err (the
// engine requeues the pair), and a context error aborts the batch with
// the acknowledged prefix. Answers carry zero cost — pricing belongs to
// genuinely billed oracles, not the resilience plumbing.
type batchFallible struct {
	inner FallibleOracle
}

// BatchOf lifts a FallibleOracle — typically a Retrier over a
// FaultyOracle, the PR-3 fault chain — into the BatchOracle interface,
// so the batched engine path rides the existing retry/fault/WAL
// plumbing unchanged.
func BatchOf(fo FallibleOracle) oracle.BatchOracle { return &batchFallible{inner: fo} }

// LabelBatch implements oracle.BatchOracle.
func (b *batchFallible) LabelBatch(ctx context.Context, pairs []dataset.PairKey) ([]oracle.Answer, error) {
	out := make([]oracle.Answer, 0, len(pairs))
	for _, p := range pairs {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		lab, err := b.inner.Label(ctx, p)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return out, cerr
			}
			out = append(out, oracle.Answer{Err: err})
			continue
		}
		v := oracle.VerdictNonMatch
		if lab {
			v = oracle.VerdictMatch
		}
		out = append(out, oracle.Answer{Verdict: v})
	}
	return out, nil
}

// Queries implements oracle.BatchOracle.
func (b *batchFallible) Queries() int { return b.inner.Queries() }

// MaxAnswerCost implements oracle.Priced: the resilience chain is free.
func (b *batchFallible) MaxAnswerCost() float64 { return 0 }

// UnwrapOracle exposes the wrapped chain for StatefulOf.
func (b *batchFallible) UnwrapOracle() any { return b.inner }
