package resilience

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for deterministic refill tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestTokenBucketBurstThenRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewTokenBucket(2, 3, clk.now) // 2 tokens/s, burst 3

	// The bucket starts full: the whole burst is admitted back to back.
	for i := 0; i < 3; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("burst request %d denied on a full bucket", i)
		}
	}
	ok, retry := b.Allow()
	if ok {
		t.Fatal("request admitted past the burst with no time elapsed")
	}
	// At 2 tokens/s an empty bucket accrues its next token in 500ms.
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retry hint = %v, want in (0, 500ms]", retry)
	}

	// Refill is continuous: half a second buys exactly one token.
	clk.advance(500 * time.Millisecond)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("request denied after refill interval")
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("second request admitted after a single-token refill")
	}

	// Refill never overfills past the burst.
	clk.advance(time.Hour)
	if got := b.Tokens(); got != 3 {
		t.Fatalf("tokens after long idle = %v, want burst cap 3", got)
	}
}

func TestTokenBucketDefensiveDefaults(t *testing.T) {
	// Nonsense sizing must degrade to a working limiter, not a bucket
	// that admits nothing (or panics dividing by a zero rate).
	b := NewTokenBucket(-1, 0, nil)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("defaulted bucket denied its first request")
	}
	if ok, retry := b.Allow(); ok || retry <= 0 {
		t.Fatalf("defaulted bucket: ok=%v retry=%v, want denial with a positive hint", ok, retry)
	}
}

func TestTenantLimiterIsolation(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := NewTenantLimiter(1, 1, clk.now)

	// Tenant "hot" spends its bucket; tenant "calm" is unaffected — the
	// whole point of per-tenant admission.
	if ok, _ := l.Allow("hot"); !ok {
		t.Fatal("hot tenant denied its first request")
	}
	if ok, _ := l.Allow("hot"); ok {
		t.Fatal("hot tenant admitted past its bucket")
	}
	if ok, _ := l.Allow("calm"); !ok {
		t.Fatal("calm tenant starved by the hot one")
	}
	// The anonymous tenant ("" key) is just another bucket.
	if ok, _ := l.Allow(""); !ok {
		t.Fatal("anonymous tenant denied its first request")
	}
}

func TestTenantLimiterEvictsStalest(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := NewTenantLimiter(1, 1, clk.now)
	l.SetMaxTenants(2)

	l.Allow("a")
	clk.advance(time.Second)
	l.Allow("b")
	clk.advance(time.Second)
	// Map is at cap; "c" evicts the tenant idle longest ("a").
	l.Allow("c")
	if got := l.Tenants(); got != 2 {
		t.Fatalf("tenants after eviction = %d, want 2", got)
	}
	// "a" returns with a fresh (full) bucket: eviction errs toward
	// admission, never toward locking a tenant out.
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("evicted tenant not re-admitted with a fresh bucket")
	}
}
