package resilience

import (
	"math"
	"sync"
	"time"
)

// TokenBucket is a classic refill-on-read rate limiter: the bucket
// holds up to Burst tokens, refills at Rate tokens per second, and each
// admitted request spends one. It is the admission primitive the
// serving layer runs per tenant, so one hot client degrades to fast
// 429s instead of starving everyone sharing the fleet.
//
// Safe for concurrent use.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewTokenBucket returns a full bucket admitting a sustained rate of
// rate requests per second with bursts of up to burst. rate must be
// positive; burst below 1 is raised to 1 (a bucket that can never hold
// a whole token would never admit anything). The now hook injects a
// clock for tests; nil means time.Now.
func NewTokenBucket(rate float64, burst int, now func() time.Time) *TokenBucket {
	if rate <= 0 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	b := &TokenBucket{rate: rate, burst: float64(burst), now: now}
	b.tokens = b.burst
	b.last = now()
	return b
}

// Allow spends one token if the bucket holds one. When it does not,
// retry reports how long until the next token accrues — the value the
// serving layer rounds up into a Retry-After header.
func (b *TokenBucket) Allow() (ok bool, retry time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := 1 - b.tokens
	return false, time.Duration(math.Ceil(need / b.rate * float64(time.Second)))
}

// refill must be called with b.mu held.
func (b *TokenBucket) refill() {
	now := b.now()
	elapsed := now.Sub(b.last).Seconds()
	if elapsed <= 0 {
		return
	}
	b.last = now
	b.tokens += elapsed * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Tokens reports the current token count (after refill) — a test and
// metrics convenience, not part of the admission path.
func (b *TokenBucket) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	return b.tokens
}

// TenantLimiter multiplexes one TokenBucket per tenant key, creating
// buckets lazily on first sight. The tenant universe is untrusted input
// (a header), so the map is capped: past maxTenants the stalest bucket
// — the one idle longest — is evicted to make room. An evicted tenant
// that returns simply starts over with a full bucket, which errs toward
// admission, never toward a livelock.
//
// Safe for concurrent use.
type TenantLimiter struct {
	rate  float64
	burst int
	now   func() time.Time

	mu         sync.Mutex
	buckets    map[string]*tenantBucket
	maxTenants int
}

type tenantBucket struct {
	b        *TokenBucket
	lastSeen time.Time
}

// DefaultMaxTenants caps the per-tenant bucket map when
// NewTenantLimiter is given no explicit cap.
const DefaultMaxTenants = 4096

// NewTenantLimiter returns a limiter granting each tenant an
// independent bucket of rate requests per second with bursts of burst.
// burst <= 0 defaults to twice the sustained rate (rounded up, minimum
// 1) so short spikes ride through. The now hook injects a clock for
// tests; nil means time.Now.
func NewTenantLimiter(rate float64, burst int, now func() time.Time) *TenantLimiter {
	if burst <= 0 {
		burst = int(math.Ceil(2 * rate))
		if burst < 1 {
			burst = 1
		}
	}
	if now == nil {
		now = time.Now
	}
	return &TenantLimiter{
		rate:       rate,
		burst:      burst,
		now:        now,
		buckets:    make(map[string]*tenantBucket),
		maxTenants: DefaultMaxTenants,
	}
}

// SetMaxTenants overrides the bucket-map cap (tests shrink it to
// exercise eviction). Values below 1 are ignored.
func (l *TenantLimiter) SetMaxTenants(n int) {
	if n < 1 {
		return
	}
	l.mu.Lock()
	l.maxTenants = n
	l.mu.Unlock()
}

// Allow spends one token from tenant's bucket, creating it on first
// sight. retry is the time until the tenant's next token when denied.
func (l *TenantLimiter) Allow(tenant string) (ok bool, retry time.Duration) {
	l.mu.Lock()
	tb, found := l.buckets[tenant]
	if !found {
		if len(l.buckets) >= l.maxTenants {
			l.evictStalest()
		}
		tb = &tenantBucket{b: NewTokenBucket(l.rate, l.burst, l.now)}
		l.buckets[tenant] = tb
	}
	tb.lastSeen = l.now()
	l.mu.Unlock()
	// The bucket has its own lock; admission for one tenant never holds
	// the map lock while another tenant is being admitted.
	return tb.b.Allow()
}

// Tenants reports how many tenants currently hold buckets.
func (l *TenantLimiter) Tenants() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// evictStalest must be called with l.mu held.
func (l *TenantLimiter) evictStalest() {
	var stalest string
	var when time.Time
	first := true
	for k, tb := range l.buckets {
		if first || tb.lastSeen.Before(when) {
			stalest, when, first = k, tb.lastSeen, false
		}
	}
	if !first {
		delete(l.buckets, stalest)
	}
}
