package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/alem/alem/internal/dataset"
)

// stubOracle answers from a fixed map and counts queries.
type stubOracle struct {
	labels  map[dataset.PairKey]bool
	queries int
}

func (s *stubOracle) Label(ctx context.Context, p dataset.PairKey) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	s.queries++
	return s.labels[p], nil
}

func (s *stubOracle) Queries() int { return s.queries }

// flakyOracle fails the first failures calls, then succeeds.
type flakyOracle struct {
	failures int
	calls    int
}

func (f *flakyOracle) Label(ctx context.Context, p dataset.PairKey) (bool, error) {
	f.calls++
	if f.calls <= f.failures {
		return false, fmt.Errorf("boom %d", f.calls)
	}
	return true, nil
}

func (f *flakyOracle) Queries() int { return f.calls }

func noSleep(time.Duration) {}

func TestRetrierRecoversFromTransientFailures(t *testing.T) {
	inner := &flakyOracle{failures: 3}
	r := NewRetrier(inner, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Nanosecond, Sleep: noSleep}, 1)
	lab, err := r.Label(context.Background(), dataset.PairKey{L: 1, R: 2})
	if err != nil || !lab {
		t.Fatalf("Label = (%v, %v), want (true, nil)", lab, err)
	}
	if r.Retries() != 3 {
		t.Errorf("Retries = %d, want 3", r.Retries())
	}
	if r.Exhausted() != 0 {
		t.Errorf("Exhausted = %d, want 0", r.Exhausted())
	}
}

func TestRetrierExhaustsBudget(t *testing.T) {
	inner := &flakyOracle{failures: 100}
	r := NewRetrier(inner, RetryPolicy{MaxAttempts: 4, BaseDelay: time.Nanosecond, Sleep: noSleep}, 1)
	_, err := r.Label(context.Background(), dataset.PairKey{L: 7, R: 9})
	if !errors.Is(err, ErrOracleExhausted) {
		t.Fatalf("err = %v, want ErrOracleExhausted", err)
	}
	if inner.calls != 4 {
		t.Errorf("inner saw %d attempts, want 4", inner.calls)
	}
	if r.Exhausted() != 1 {
		t.Errorf("Exhausted = %d, want 1", r.Exhausted())
	}
	// The final error's cause is preserved.
	if got := err.Error(); got == "" || !errors.Is(err, ErrOracleExhausted) {
		t.Errorf("error %q lost its cause", got)
	}
}

func TestRetrierHonorsCancellation(t *testing.T) {
	inner := &flakyOracle{failures: 100}
	ctx, cancel := context.WithCancel(context.Background())
	r := NewRetrier(inner, RetryPolicy{MaxAttempts: 10, BaseDelay: time.Nanosecond,
		Sleep: func(time.Duration) { cancel() }}, 1)
	_, err := r.Label(ctx, dataset.PairKey{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if inner.calls != 1 {
		t.Errorf("inner saw %d attempts after cancel, want 1", inner.calls)
	}
}

// TestFaultInjectorDeterministic pins the replay contract: two injectors
// with the same seed make identical decisions for the same per-pair
// attempt sequence, regardless of interleaving with other pairs.
func TestFaultInjectorDeterministic(t *testing.T) {
	mkInner := func() *stubOracle {
		return &stubOracle{labels: map[dataset.PairKey]bool{}}
	}
	cfg := FaultConfig{TransientRate: 0.3}
	a := NewFaultyOracle(mkInner(), cfg, 99)
	b := NewFaultyOracle(mkInner(), cfg, 99)

	// Drive a with pairs 0..19 in order; drive b with the same pairs in
	// a different interleaving. Per-pair outcomes must match exactly.
	outcome := func(f *FaultyOracle, p dataset.PairKey) []bool {
		var outs []bool
		for i := 0; i < 4; i++ {
			_, err := f.Label(context.Background(), p)
			outs = append(outs, err == nil)
		}
		return outs
	}
	resA := map[int][]bool{}
	for i := 0; i < 20; i++ {
		resA[i] = outcome(a, dataset.PairKey{L: i, R: i + 1})
	}
	resB := map[int][]bool{}
	for i := 19; i >= 0; i-- {
		resB[i] = outcome(b, dataset.PairKey{L: i, R: i + 1})
	}
	faults := 0
	for i := 0; i < 20; i++ {
		for j := range resA[i] {
			if resA[i][j] != resB[i][j] {
				t.Fatalf("pair %d attempt %d: %v vs %v", i, j, resA[i][j], resB[i][j])
			}
			if !resA[i][j] {
				faults++
			}
		}
	}
	if faults == 0 {
		t.Error("30%% fault rate injected nothing across 80 attempts")
	}
	if a.Injected() != faults {
		t.Errorf("Injected = %d, want %d", a.Injected(), faults)
	}
}

func TestFaultInjectorOutageWindow(t *testing.T) {
	inner := &stubOracle{labels: map[dataset.PairKey]bool{}}
	f := NewFaultyOracle(inner, FaultConfig{OutageAfter: 3, OutageFor: 2}, 1)
	var errs []bool
	for i := 0; i < 7; i++ {
		_, err := f.Label(context.Background(), dataset.PairKey{L: i, R: i})
		errs = append(errs, err != nil)
	}
	want := []bool{false, false, false, true, true, false, false}
	for i := range want {
		if errs[i] != want[i] {
			t.Fatalf("call %d: failed=%v, want %v (outage window [4,5])", i+1, errs[i], want[i])
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: 10 * time.Second,
		Now: func() time.Time { return now }})

	if ok, probe := b.Allow(); !ok || probe || b.State() != BreakerClosed {
		t.Fatal("new breaker is not closed")
	}
	boom := errors.New("boom")
	b.Record(boom)
	b.Record(boom)
	if b.State() != BreakerClosed {
		t.Fatal("breaker opened below threshold")
	}
	b.Record(boom)
	if ok, _ := b.Allow(); b.State() != BreakerOpen || ok {
		t.Fatalf("state=%v after 3 failures, want open and shedding", b.State())
	}
	if ra := b.RetryAfter(); ra != 10*time.Second {
		t.Errorf("RetryAfter = %v, want 10s", ra)
	}
	if b.Opens() != 1 {
		t.Errorf("Opens = %d, want 1", b.Opens())
	}

	// Cooldown expires: exactly one probe is admitted.
	now = now.Add(11 * time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state=%v after cooldown, want half-open", b.State())
	}
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatal("half-open breaker refused the probe, or did not flag it")
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Failed probe re-opens; successful probe closes.
	b.Record(boom)
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not re-open the circuit")
	}
	now = now.Add(11 * time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("second probe refused")
	}
	b.Record(nil)
	if ok, probe := b.Allow(); b.State() != BreakerClosed || !ok || probe {
		t.Fatal("successful probe did not close the circuit")
	}
	if b.Opens() != 2 {
		t.Errorf("Opens = %d, want 2", b.Opens())
	}
}

// TestBreakerReleaseFreesWedgedProbe pins the probe-leak fix: a probe
// holder whose request died on something unrelated to model health
// (client error, disconnect) releases the slot instead of recording, and
// the next request is admitted as a fresh probe — the half-open state
// can no longer shed traffic forever.
func TestBreakerReleaseFreesWedgedProbe(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second,
		Now: func() time.Time { return now }})
	b.Record(errors.New("boom"))
	now = now.Add(2 * time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatal("probe not admitted after cooldown")
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("second probe admitted while the first is unsettled")
	}
	b.Release()
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatal("released probe slot was not re-admitted")
	}
	b.Record(nil)
	if b.State() != BreakerClosed {
		t.Fatal("fresh probe success did not close the circuit")
	}
}

// TestBreakerIgnoresLateSuccessWhileOpen: a success from a request
// admitted before the trip must not close an open circuit early — the
// cooldown stands, mirroring how late failures are ignored.
func TestBreakerIgnoresLateSuccessWhileOpen(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: 10 * time.Second,
		Now: func() time.Time { return now }})
	b.Record(errors.New("boom"))
	b.Record(nil)
	if b.State() != BreakerOpen {
		t.Fatalf("state=%v after late success, want the cooldown to stand", b.State())
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("open breaker admitted traffic after a late success")
	}
}

func TestLabelWALAppendReopenReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.wal")
	w, records, err := OpenLabelWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 {
		t.Fatalf("fresh WAL has %d records", len(records))
	}
	for i := 1; i <= 5; i++ {
		if err := w.Append(i, 100+i, i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	// Idempotent replay: re-appending seq 3 is a no-op.
	if err := w.Append(3, 999, true); err != nil {
		t.Fatalf("idempotent re-append failed: %v", err)
	}
	// A gap is corruption, not replay.
	if err := w.Append(8, 1, true); err == nil {
		t.Fatal("out-of-sequence append accepted")
	}
	w.Close()

	w2, records, err := OpenLabelWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(records) != 5 {
		t.Fatalf("reopened WAL has %d records, want 5", len(records))
	}
	for i, rec := range records {
		if rec.Seq != i+1 || rec.Index != 101+i || rec.Label != ((i+1)%2 == 0) {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
	if w2.LastSeq() != 5 {
		t.Errorf("LastSeq = %d, want 5", w2.LastSeq())
	}
	// Appending continues the sequence.
	if err := w2.Append(6, 200, true); err != nil {
		t.Fatal(err)
	}
}

func TestLabelWALRecoversTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.wal")
	w, _, err := OpenLabelWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := w.Append(i, i, true); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Simulate a crash mid-append: a torn, undecodable final line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":4,"index":9,"lab`)
	f.Close()

	w2, records, err := OpenLabelWAL(path)
	if err != nil {
		t.Fatalf("torn tail surfaced as error: %v", err)
	}
	defer w2.Close()
	if len(records) != 3 {
		t.Fatalf("recovered %d records, want the 3 intact ones", len(records))
	}
	// The torn bytes are gone: the next append reuses seq 4 cleanly and
	// a further reopen sees 4 intact records.
	if err := w2.Append(4, 9, false); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, records, err = OpenLabelWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 || records[3].Seq != 4 || records[3].Index != 9 {
		t.Fatalf("after recovery+append got %+v", records)
	}
}

// TestLabelWALTornTailMissingNewline pins the subtler torn write: the
// crash lost only the trailing '\n', so the final line decodes cleanly
// but is unterminated. It must be discarded as torn — counting it once
// made validLen exceed the file size, so the "truncate" extended the
// file with a NUL and a later reopen silently dropped acknowledged
// records that had landed after it.
func TestLabelWALTornTailMissingNewline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.wal")
	w, _, err := OpenLabelWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := w.Append(i, i, true); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	intact, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":4,"index":9,"label":true}`)
	f.Close()

	w2, records, err := OpenLabelWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("recovered %d records, want the 3 terminated ones", len(records))
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != intact.Size() {
		t.Fatalf("file size %d after recovery, want %d (truncated, not extended)", fi.Size(), intact.Size())
	}
	// Appends land where the torn bytes were and survive reopen intact.
	if err := w2.Append(4, 9, false); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, records, err = OpenLabelWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 || records[3].Seq != 4 || records[3].Index != 9 || records[3].Label {
		t.Fatalf("after recovery+append got %+v", records)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// A failed write leaves the previous content untouched and no temp
	// litter behind.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("gar"))
		return errors.New("write exploded")
	}); err == nil {
		t.Fatal("failed write not reported")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1" {
		t.Fatalf("content = %q after failed overwrite, want v1", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter left behind: %v", entries)
	}
}

// TestWriteFileAtomicOverwriteAndErrors completes the atomicity
// coverage: a successful overwrite fully replaces the old content, a
// missing parent directory fails cleanly before any write, and
// concurrent writers racing the same path each land a complete file —
// the final content is one writer's payload in full, never a splice.
func TestWriteFileAtomicOverwriteAndErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	write := func(content string) error {
		return WriteFileAtomic(path, func(w io.Writer) error {
			_, err := w.Write([]byte(content))
			return err
		})
	}
	if err := write("v1"); err != nil {
		t.Fatal(err)
	}
	if err := write("version-two"); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "version-two" {
		t.Fatalf("content after overwrite = %q, want version-two", got)
	}

	missing := filepath.Join(dir, "no-such-dir", "state.json")
	if err := WriteFileAtomic(missing, func(w io.Writer) error { return nil }); err == nil {
		t.Fatal("write into a missing directory not reported")
	}

	const writers = 8
	var wg sync.WaitGroup
	payloads := make(map[string]bool, writers)
	for i := 0; i < writers; i++ {
		content := strings.Repeat(string(rune('a'+i)), 64)
		payloads[content] = true
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := write(content); err != nil {
				t.Errorf("concurrent write: %v", err)
			}
		}()
	}
	wg.Wait()
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !payloads[string(got)] {
		t.Fatalf("final content %q is not any writer's full payload — torn write", got)
	}
}

func TestStatefulOfUnwrapsChains(t *testing.T) {
	// A plain stub exposes no state; wrapping it should not invent one.
	base := Wrap(pairCounter{})
	if _, ok := StatefulOf(base); ok {
		t.Fatal("stateless oracle reported stateful")
	}
	chained := NewRetrier(NewFaultyOracle(base, FaultConfig{}, 1),
		RetryPolicy{Sleep: noSleep}, 1)
	if _, ok := StatefulOf(chained); ok {
		t.Fatal("stateless chain reported stateful")
	}
}

// pairCounter is a minimal oracle.Oracle for wrap tests.
type pairCounter struct{}

func (pairCounter) Label(dataset.PairKey) bool { return true }
func (pairCounter) Queries() int               { return 0 }
