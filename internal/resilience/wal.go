package resilience

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// LabelRecord is one acknowledged Oracle answer in the write-ahead log:
// the answer's position in the cumulative acknowledged sequence
// (1-based), its pool index, and the label the Oracle returned. The WAL
// is the durable record of answers paid for between checkpoints;
// Snapshot + WAL replay together reconstruct a killed run's exact
// labeled set — and, for priced batch oracles, its exact cost ledger.
//
// Verdict and Cost extend the record for batch oracles: Verdict is
// "abstain" for a billed abstention (Label is meaningless then) and
// empty for an ordinary label; Cost is the dollars billed for the
// answer. Both are omitted when zero, so the records a classic per-pair
// session writes are byte-identical to the pre-batch format.
type LabelRecord struct {
	Seq     int     `json:"seq"`
	Index   int     `json:"index"`
	Label   bool    `json:"label"`
	Verdict string  `json:"verdict,omitempty"`
	Cost    float64 `json:"cost,omitempty"`
}

// Abstained reports whether the record is a billed abstention rather
// than a granted label.
func (r LabelRecord) Abstained() bool { return r.Verdict == "abstain" }

// LabelWAL is an append-only, fsync-per-append label log in JSON-lines
// format. Appends are idempotent by sequence number, so replaying a
// resumed run over a WAL that already holds its labels is a no-op — the
// property that makes Snapshot+WAL resume safe to re-crash.
//
// LabelWAL implements core.LabelSink. Safe for concurrent use, though
// the Session engine appends from a single goroutine.
type LabelWAL struct {
	mu      sync.Mutex
	f       *os.File
	lastSeq int
	appends int64
}

// OpenLabelWAL opens (creating if absent) the WAL at path and returns
// the valid records already present. A torn final line — the signature
// of a crash mid-append — is detected, logged out of existence (the file
// is truncated back to the last intact record) and does not surface as
// an error: losing the torn record is indistinguishable from crashing a
// moment earlier.
func OpenLabelWAL(path string) (*LabelWAL, []LabelRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("resilience: opening label WAL: %w", err)
	}
	records, validLen, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("resilience: truncating torn WAL tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &LabelWAL{f: f}
	if n := len(records); n > 0 {
		w.lastSeq = records[n-1].Seq
	}
	return w, records, nil
}

// scanWAL reads records until EOF or the first undecodable or
// unterminated line, returning the intact records and the byte length of
// the intact prefix. Only '\n'-terminated lines count as intact: Append
// always writes the newline with the record, so a final line without one
// is a torn tail from a crash mid-write even when its bytes happen to
// decode — counting it would make validLen exceed the file size and turn
// the truncate into an extend.
func scanWAL(f *os.File) ([]LabelRecord, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, fmt.Errorf("resilience: reading label WAL: %w", err)
	}
	var (
		records  []LabelRecord
		validLen int64
		lastSeq  int
	)
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn tail: the final append never got its newline
		}
		var rec LabelRecord
		if err := json.Unmarshal(data[:nl], &rec); err != nil {
			break // torn or corrupt tail: keep the intact prefix
		}
		if rec.Seq != lastSeq+1 {
			return nil, 0, fmt.Errorf("resilience: label WAL is out of sequence: record %d follows %d",
				rec.Seq, lastSeq)
		}
		lastSeq = rec.Seq
		records = append(records, rec)
		validLen += int64(nl) + 1
		data = data[nl+1:]
	}
	return records, validLen, nil
}

// Append durably logs one granted label. Records at or below the last
// logged sequence are skipped (idempotent replay); the next record must
// extend the sequence by exactly one. Each append is fsync'd before
// returning, so a label the Session considers granted survives a crash.
func (w *LabelWAL) Append(seq, index int, label bool) error {
	return w.AppendRecord(LabelRecord{Seq: seq, Index: index, Label: label})
}

// AppendRecord is Append for full records — the entry point batch
// sessions use to journal billed abstentions and per-answer costs
// alongside ordinary labels. The idempotence and fsync discipline are
// identical to Append's.
func (w *LabelWAL) AppendRecord(rec LabelRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if rec.Seq <= w.lastSeq {
		return nil
	}
	if rec.Seq != w.lastSeq+1 {
		return fmt.Errorf("resilience: label WAL append out of sequence: %d after %d", rec.Seq, w.lastSeq)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("resilience: appending to label WAL: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("resilience: syncing label WAL: %w", err)
	}
	w.lastSeq = rec.Seq
	w.appends++
	return nil
}

// LastSeq returns the highest sequence number durably logged.
func (w *LabelWAL) LastSeq() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq
}

// Appends reports how many records this handle has written (replayed
// no-ops excluded).
func (w *LabelWAL) Appends() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appends
}

// Close releases the underlying file. Append after Close fails.
func (w *LabelWAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
