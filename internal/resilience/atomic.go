package resilience

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
)

// WriteFileAtomic writes a file with the temp-file + fsync + rename
// discipline: write calls produce the content into a temporary file in
// the destination directory, the file is fsync'd and closed, then
// renamed over path, and finally the directory is fsync'd so the rename
// itself is durable. A reader (or a crashed writer restarting) sees
// either the old complete file or the new complete file, never a
// truncated hybrid — the property core.ReadSnapshot depends on.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("resilience: creating temp file for %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("resilience: writing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("resilience: syncing %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("resilience: closing temp file for %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resilience: renaming into %s: %w", path, err)
	}
	if err = syncDir(dir); err != nil {
		return fmt.Errorf("resilience: syncing directory of %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Windows cannot fsync directories; the rename is still atomic there.
func syncDir(dir string) error {
	if runtime.GOOS == "windows" {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
