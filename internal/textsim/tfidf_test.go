package textsim

import (
	"math"
	"testing"
)

func testCorpus() *Corpus {
	return NewCorpus([]string{
		"sonixx wireless speaker black",
		"sonixx wired speaker black",
		"sonixx compact camera black",
		"veltron zx9 camera black",
		"quantix keyboard black",
		"sonixx subwoofer black",
	})
}

func TestCorpusStats(t *testing.T) {
	c := testCorpus()
	if c.NumDocs() != 6 {
		t.Fatalf("NumDocs = %d, want 6", c.NumDocs())
	}
	// "black" appears in every doc; "zx9" in one; unseen tokens max out.
	if !(c.IDF("black") < c.IDF("speaker")) {
		t.Error("ubiquitous token should have lower IDF than mid-frequency token")
	}
	if !(c.IDF("zx9") > c.IDF("sonixx")) {
		t.Error("rare token should have higher IDF than frequent brand")
	}
	if !(c.IDF("neverseen") >= c.IDF("zx9")) {
		t.Error("unseen token should have maximal IDF")
	}
}

func TestTFIDFCosineDownweightsStopTokens(t *testing.T) {
	c := testCorpus()
	m := TFIDFCosine{Corpus: c}
	plain := Cosine{}
	// Two records sharing only the ubiquitous token "black": TF-IDF
	// should score them much lower than plain cosine does.
	a, b := "quantix keyboard black", "veltron zx9 camera black"
	if m.Compare(a, b) >= plain.Compare(a, b) {
		t.Errorf("TFIDF %.3f should be below plain cosine %.3f on stop-token overlap",
			m.Compare(a, b), plain.Compare(a, b))
	}
	// Identical strings still score 1.
	if s := m.Compare(a, a); math.Abs(s-1) > 1e-12 {
		t.Errorf("TFIDF self-similarity = %v", s)
	}
	if s := m.Compare("", ""); s != 1 {
		t.Errorf("TFIDF empty/empty = %v", s)
	}
	if s := m.Compare(a, ""); s != 0 {
		t.Errorf("TFIDF vs empty = %v", s)
	}
}

func TestTFIDFCosineNilCorpusFallsBack(t *testing.T) {
	m := TFIDFCosine{}
	if m.Compare("a b", "a b") != (Cosine{}).Compare("a b", "a b") {
		t.Error("nil-corpus TFIDF should fall back to plain cosine")
	}
}

func TestSoftTFIDFToleratesTypos(t *testing.T) {
	c := testCorpus()
	soft := SoftTFIDF{Corpus: c}
	hard := TFIDFCosine{Corpus: c}
	// Typo in the discriminative token: soft matching keeps the score up.
	a, b := "sonixx wireless speaker", "sonix wireless speaker"
	if soft.Compare(a, b) <= hard.Compare(a, b) {
		t.Errorf("SoftTFIDF %.3f should exceed exact TFIDF %.3f under typos",
			soft.Compare(a, b), hard.Compare(a, b))
	}
	if s := soft.Compare(a, a); s < 0.999 {
		t.Errorf("SoftTFIDF self-similarity = %v", s)
	}
	// Symmetry.
	if d := soft.Compare(a, b) - soft.Compare(b, a); math.Abs(d) > 1e-12 {
		t.Errorf("SoftTFIDF asymmetric by %v", d)
	}
}

func TestNumericSim(t *testing.T) {
	n := NumericSim{}
	if s := n.Compare("100", "100.00"); s != 1 {
		t.Errorf("equal values = %v, want 1", s)
	}
	if s := n.Compare("$100", "90"); math.Abs(s-0.9) > 1e-9 {
		t.Errorf("100 vs 90 = %v, want 0.9", s)
	}
	if s := n.Compare("100", "-100"); s != 0 {
		t.Errorf("opposite signs = %v, want 0 (clamped)", s)
	}
	if s := n.Compare("0", "0"); s != 1 {
		t.Errorf("zero vs zero = %v, want 1", s)
	}
	// Non-numeric falls back to string similarity.
	if s := n.Compare("call for price", "call for price"); s != 1 {
		t.Errorf("non-numeric identical = %v, want 1", s)
	}
	if s := n.Compare("abc", "xyz"); s != 0 {
		t.Errorf("non-numeric disjoint = %v, want 0", s)
	}
}

func TestExtendedMetricsSatisfyInvariants(t *testing.T) {
	c := testCorpus()
	for _, m := range Extended(c) {
		for _, pair := range [][2]string{
			{"sonixx speaker", "sonixx speaker"},
			{"sonixx speaker", "veltron camera"},
			{"", ""},
			{"x", ""},
			{"49.99", "47.50"},
		} {
			s := m.Compare(pair[0], pair[1])
			if s < 0 || s > 1+1e-9 {
				t.Errorf("%s(%q,%q) = %v outside [0,1]", m.Name(), pair[0], pair[1], s)
			}
			if d := s - m.Compare(pair[1], pair[0]); math.Abs(d) > 1e-9 {
				t.Errorf("%s asymmetric on %v", m.Name(), pair)
			}
		}
	}
}

// TestTokenMetricEquivalence pins the fast token path to the string path
// for every TokenMetric implementation.
func TestTokenMetricEquivalence(t *testing.T) {
	pairs := [][2]string{
		{"sonixx wireless speaker", "sonix wireless speaker portable"},
		{"a b c", "c b a"},
		{"one", "two"},
		{"", ""},
		{"x", ""},
		{"a a b", "a b b"},
		{"The, Quick. Brown!", "quick brown fox"},
	}
	tok := Whitespace{}
	count := 0
	for _, m := range append(All(), GeneralizedJaccard{}) {
		tm, ok := m.(TokenMetric)
		if !ok {
			continue
		}
		count++
		for _, p := range pairs {
			want := m.Compare(p[0], p[1])
			got := tm.CompareTokens(tok.Tokens(p[0]), tok.Tokens(p[1]))
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("%s: CompareTokens(%q,%q) = %v, Compare = %v",
					m.Name(), p[0], p[1], got, want)
			}
		}
	}
	if count < 8 {
		t.Errorf("only %d TokenMetric implementations, want >= 8", count)
	}
}
