package textsim

import (
	"math"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %.4f, want %.4f (±%.4f)", msg, got, want, tol)
	}
}

func TestAllReturns21Metrics(t *testing.T) {
	metrics := All()
	if len(metrics) != 21 {
		t.Fatalf("All() returned %d metrics, want 21 (paper §3)", len(metrics))
	}
	seen := map[string]bool{}
	for _, m := range metrics {
		if m.Name() == "" {
			t.Errorf("metric %T has empty name", m)
		}
		if seen[m.Name()] {
			t.Errorf("duplicate metric name %q", m.Name())
		}
		seen[m.Name()] = true
	}
}

func TestForRules(t *testing.T) {
	rm := ForRules()
	if len(rm) != 3 {
		t.Fatalf("ForRules() returned %d metrics, want 3", len(rm))
	}
	want := []string{"identity", "jaro_winkler", "jaccard"}
	for i, m := range rm {
		if m.Name() != want[i] {
			t.Errorf("ForRules()[%d] = %q, want %q", i, m.Name(), want[i])
		}
	}
}

func TestByName(t *testing.T) {
	if m := ByName("jaccard"); m == nil || m.Name() != "jaccard" {
		t.Errorf("ByName(jaccard) = %v", m)
	}
	if m := ByName("generalized_jaccard"); m == nil {
		t.Error("ByName(generalized_jaccard) = nil, want metric")
	}
	if m := ByName("nope"); m != nil {
		t.Errorf("ByName(nope) = %v, want nil", m)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity{}
	cases := []struct {
		a, b string
		want float64
	}{
		{"abc", "abc", 1},
		{"ABC", "abc", 1},
		{"  a  b ", "a b", 1},
		{"a,b", "a b", 1},
		{"abc", "abd", 0},
		{"", "", 1},
		{"x", "", 0},
	}
	for _, c := range cases {
		if got := id.Compare(c.a, c.b); got != c.want {
			t.Errorf("Identity(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshtein(t *testing.T) {
	lv := Levenshtein{}
	approx(t, lv.Compare("kitten", "sitting"), 1-3.0/7, 1e-9, "kitten/sitting")
	approx(t, lv.Compare("abc", "abc"), 1, 0, "equal")
	approx(t, lv.Compare("", ""), 1, 0, "both empty")
	approx(t, lv.Compare("abc", ""), 0, 0, "one empty")
	approx(t, lv.Compare("a", "b"), 0, 0, "single sub")
}

func TestDamerauLevenshtein(t *testing.T) {
	dl := DamerauLevenshtein{}
	// Transposition counts as one edit: "ca" vs "ac".
	approx(t, dl.Compare("ca", "ac"), 0.5, 1e-9, "transposition")
	// Plain Levenshtein would need two edits.
	approx(t, Levenshtein{}.Compare("ca", "ac"), 0, 1e-9, "lev transposition")
	approx(t, dl.Compare("abcdef", "abcdfe"), 1-1.0/6, 1e-9, "tail transposition")
	approx(t, dl.Compare("", ""), 1, 0, "both empty")
}

func TestJaro(t *testing.T) {
	j := Jaro{}
	// Classic textbook values.
	approx(t, j.Compare("MARTHA", "MARHTA"), 0.9444, 1e-3, "martha")
	approx(t, j.Compare("DIXON", "DICKSONX"), 0.7667, 1e-3, "dixon")
	approx(t, j.Compare("abc", "abc"), 1, 0, "equal")
	approx(t, j.Compare("abc", "xyz"), 0, 0, "disjoint")
}

func TestJaroWinkler(t *testing.T) {
	jw := JaroWinkler{}
	approx(t, jw.Compare("MARTHA", "MARHTA"), 0.9611, 1e-3, "martha")
	approx(t, jw.Compare("DWAYNE", "DUANE"), 0.84, 1e-2, "dwayne")
	if jw.Compare("prefix_same", "prefix_diff") <= (Jaro{}).Compare("prefix_same", "prefix_diff") {
		t.Error("Jaro-Winkler should boost shared prefixes above Jaro")
	}
}

func TestNeedlemanWunsch(t *testing.T) {
	nw := NeedlemanWunsch{}
	approx(t, nw.Compare("abc", "abc"), 1, 0, "equal")
	approx(t, nw.Compare("", ""), 1, 0, "both empty")
	approx(t, nw.Compare("abc", ""), 0, 0, "one empty")
	if s := nw.Compare("abcdef", "abcxef"); s <= 0 || s >= 1 {
		t.Errorf("NW(abcdef,abcxef) = %v, want in (0,1)", s)
	}
	approx(t, nw.Compare("abc", "xyz"), 0, 0, "all mismatch clamps to 0")
}

func TestSmithWaterman(t *testing.T) {
	sw := SmithWaterman{}
	approx(t, sw.Compare("abc", "abc"), 1, 0, "equal")
	// Shared local region normalized by the shorter string.
	approx(t, sw.Compare("xxabcxx", "abc"), 1, 1e-9, "embedded")
	approx(t, sw.Compare("abc", "xyz"), 0, 0, "disjoint")
}

func TestSmithWatermanGotoh(t *testing.T) {
	swg := SmithWatermanGotoh{}
	sw := SmithWaterman{}
	// Cheaper gaps mean a gapped alignment scores at least as high.
	a, b := "hello world program", "hello program"
	if swg.Compare(a, b) < sw.Compare(a, b)-1e-9 {
		t.Errorf("SWG (%v) should be >= SW (%v) with cheaper gaps",
			swg.Compare(a, b), sw.Compare(a, b))
	}
	approx(t, swg.Compare("abc", "abc"), 1, 0, "equal")
}

func TestLongestCommonSubsequence(t *testing.T) {
	lcs := LongestCommonSubsequence{}
	approx(t, lcs.Compare("ABCBDAB", "BDCAB"), 4.0/7, 1e-9, "textbook")
	approx(t, lcs.Compare("abc", "abc"), 1, 0, "equal")
	approx(t, lcs.Compare("abc", "xyz"), 0, 0, "disjoint")
}

func TestLongestCommonSubstring(t *testing.T) {
	l := LongestCommonSubstring{}
	approx(t, l.Compare("abcdxyz", "xyzabcd"), 4.0/7, 1e-9, "abcd run")
	approx(t, l.Compare("abc", "abc"), 1, 0, "equal")
	approx(t, l.Compare("", "x"), 0, 0, "one empty")
}

func TestQGram(t *testing.T) {
	q := QGram{}
	approx(t, q.Compare("abc", "abc"), 1, 0, "equal")
	approx(t, q.Compare("", ""), 1, 0, "both empty")
	approx(t, q.Compare("abc", ""), 0, 0, "one empty")
	if s := q.Compare("nike air max", "nike airmax"); s <= 0.3 {
		t.Errorf("QGram near-duplicates = %v, want > 0.3", s)
	}
}

func TestJaccard(t *testing.T) {
	j := Jaccard{}
	approx(t, j.Compare("a b c", "b c d"), 2.0/4, 1e-9, "2 of 4")
	approx(t, j.Compare("a b", "a b"), 1, 0, "equal")
	approx(t, j.Compare("a", "b"), 0, 0, "disjoint")
	// Case and duplicate insensitivity.
	approx(t, j.Compare("A a b", "a b"), 1, 1e-9, "dup + case")
}

func TestJaccardTokens(t *testing.T) {
	approx(t, JaccardTokens([]string{"a", "b"}, []string{"b", "c"}), 1.0/3, 1e-9, "tokens")
	approx(t, JaccardTokens(nil, nil), 1, 0, "both nil")
	approx(t, JaccardTokens([]string{"a"}, nil), 0, 0, "one nil")
}

func TestDice(t *testing.T) {
	d := Dice{}
	approx(t, d.Compare("a b c", "b c d"), 2*2.0/6, 1e-9, "2 shared of 3+3")
	approx(t, d.Compare("x", "x"), 1, 0, "equal")
}

func TestSimonWhite(t *testing.T) {
	sw := SimonWhite{}
	approx(t, sw.Compare("healed", "healed"), 1, 1e-9, "equal")
	// Classic Simon White example: sealed vs healed share 4 of 5+5 bigrams.
	approx(t, sw.Compare("healed", "sealed"), 0.8, 1e-9, "healed/sealed")
	approx(t, sw.Compare("", ""), 1, 0, "both empty")
}

func TestCosine(t *testing.T) {
	c := Cosine{}
	approx(t, c.Compare("a b", "a b"), 1, 1e-9, "equal")
	approx(t, c.Compare("a b", "c d"), 0, 1e-9, "disjoint")
	approx(t, c.Compare("a b c d", "a b"), 2/math.Sqrt(8), 1e-9, "partial")
}

func TestOverlap(t *testing.T) {
	o := Overlap{}
	// Containment scores 1.
	approx(t, o.Compare("nike air max 90", "air max"), 1, 1e-9, "containment")
	approx(t, o.Compare("a b", "c d"), 0, 0, "disjoint")
}

func TestMatchingCoefficient(t *testing.T) {
	m := MatchingCoefficient{}
	approx(t, m.Compare("a b c d", "a b"), 0.5, 1e-9, "half")
	approx(t, m.Compare("a", "a"), 1, 0, "equal")
}

func TestBlockDistance(t *testing.T) {
	bd := BlockDistance{}
	approx(t, bd.Compare("a b", "a b"), 1, 1e-9, "equal")
	approx(t, bd.Compare("a b", "a c"), 0.5, 1e-9, "half")
	approx(t, bd.Compare("a a b", "a b"), 1-1.0/5, 1e-9, "multiset count")
}

func TestEuclidean(t *testing.T) {
	e := Euclidean{}
	approx(t, e.Compare("a b", "a b"), 1, 1e-9, "equal")
	if s := e.Compare("a b", "c d"); s <= 0 || s >= 0.5 {
		t.Errorf("Euclidean disjoint = %v, want in (0, 0.5)", s)
	}
}

func TestGeneralizedJaccard(t *testing.T) {
	gj := GeneralizedJaccard{}
	j := Jaccard{}
	// Token typos: soft matching should beat exact Jaccard.
	a, b := "apple iphone charger", "aple iphone chargr"
	if gj.Compare(a, b) <= j.Compare(a, b) {
		t.Errorf("GeneralizedJaccard (%v) should exceed Jaccard (%v) on token typos",
			gj.Compare(a, b), j.Compare(a, b))
	}
	approx(t, gj.Compare("a b", "a b"), 1, 1e-9, "equal")
}

func TestMongeElkan(t *testing.T) {
	me := MongeElkan{}
	approx(t, me.Compare("paul johnson", "paul johnson"), 1, 1e-9, "equal")
	if s := me.Compare("paul johnson", "johson paule"); s < 0.7 {
		t.Errorf("MongeElkan fuzzy reorder = %v, want >= 0.7", s)
	}
	// Symmetry by construction.
	a, b := "ibm research almaden", "almaden ibm"
	approx(t, me.Compare(a, b), me.Compare(b, a), 1e-12, "symmetric")
}

func TestSoundex(t *testing.T) {
	s := Soundex{}
	approx(t, s.Compare("Robert", "Rupert"), 1, 1e-9, "classic same code R163")
	if got := soundexCode("Robert"); got != "R163" {
		t.Errorf("soundexCode(Robert) = %q, want R163", got)
	}
	if got := soundexCode("Tymczak"); got != "T522" {
		t.Errorf("soundexCode(Tymczak) = %q, want T522", got)
	}
	if got := soundexCode("Pfister"); got != "P236" {
		t.Errorf("soundexCode(Pfister) = %q, want P236 (NARA rules)", got)
	}
	if got := soundexCode("Honeyman"); got != "H555" {
		t.Errorf("soundexCode(Honeyman) = %q, want H555", got)
	}
	approx(t, s.Compare("", ""), 1, 0, "both empty")
	approx(t, s.Compare("abc", ""), 0, 0, "one empty")
}
