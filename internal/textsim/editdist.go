package textsim

// Character-level (edit-distance style) similarity metrics.
//
// Every metric here runs on pooled scratch buffers (pool.go): the rune
// conversions and DP rows are borrowed for the duration of one Compare
// call and fully (re)initialized before use, so the pooled path is
// bit-identical to the historical make-per-call implementation.

// Levenshtein is edit-distance similarity: 1 - dist/max(len(a), len(b)).
type Levenshtein struct{}

// Name implements Metric.
func (Levenshtein) Name() string { return "levenshtein" }

// Compare implements Metric.
func (Levenshtein) Compare(a, b string) float64 {
	sc := getScratch()
	defer putScratch(sc)
	sc.ra = runesInto(sc.ra, a)
	sc.rb = runesInto(sc.rb, b)
	ra, rb := sc.ra, sc.rb
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	d := levenshteinDist(sc, ra, rb)
	return 1 - float64(d)/float64(max(len(ra), len(rb)))
}

// levenshteinDist computes the classic edit distance with two rolling rows
// borrowed from sc.
func levenshteinDist(sc *scratch, a, b []rune) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	sc.ia = growInts(sc.ia, len(b)+1)
	sc.ib = growInts(sc.ib, len(b)+1)
	prev, cur := sc.ia, sc.ib
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// DamerauLevenshtein is like Levenshtein but also counts transposition of
// two adjacent characters as a single edit (the common typo class in
// product titles).
type DamerauLevenshtein struct{}

// Name implements Metric.
func (DamerauLevenshtein) Name() string { return "damerau_levenshtein" }

// Compare implements Metric.
func (DamerauLevenshtein) Compare(a, b string) float64 {
	sc := getScratch()
	defer putScratch(sc)
	sc.ra = runesInto(sc.ra, a)
	sc.rb = runesInto(sc.rb, b)
	ra, rb := sc.ra, sc.rb
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	// Three rolling rows: i-2, i-1, i.
	n := len(rb) + 1
	sc.ia = growInts(sc.ia, n)
	sc.ib = growInts(sc.ib, n)
	sc.ic = growInts(sc.ic, n)
	r2, r1, r0 := sc.ia, sc.ib, sc.ic
	for j := 0; j < n; j++ {
		r1[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		r0[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			r0[j] = min(r1[j]+1, r0[j-1]+1, r1[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				r0[j] = min(r0[j], r2[j-2]+1)
			}
		}
		r2, r1, r0 = r1, r0, r2
	}
	d := r1[len(rb)]
	return 1 - float64(d)/float64(max(len(ra), len(rb)))
}

// Jaro measures common characters within a sliding window plus
// transpositions; well-suited to short strings such as person names.
type Jaro struct{}

// Name implements Metric.
func (Jaro) Name() string { return "jaro" }

// Compare implements Metric.
func (Jaro) Compare(a, b string) float64 {
	sc := getScratch()
	defer putScratch(sc)
	sc.ra = runesInto(sc.ra, a)
	sc.rb = runesInto(sc.rb, b)
	return jaroSim(sc, sc.ra, sc.rb)
}

// jaroSim computes Jaro similarity using sc's match-flag buffers; the
// flags are cleared here because the algorithm reads them before first
// write, unlike the DP rows above which are fully written first.
func jaroSim(sc *scratch, a, b []rune) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	window := max(len(a), len(b))/2 - 1
	if window < 0 {
		window = 0
	}
	sc.ba = growBools(sc.ba, len(a))
	sc.bb = growBools(sc.bb, len(b))
	aMatch, bMatch := sc.ba, sc.bb
	clear(aMatch)
	clear(bMatch)
	matches := 0
	for i := range a {
		lo := max(0, i-window)
		hi := min(i+window+1, len(b))
		for j := lo; j < hi; j++ {
			if !bMatch[j] && a[i] == b[j] {
				aMatch[i], bMatch[j] = true, true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	trans := 0
	j := 0
	for i := range a {
		if !aMatch[i] {
			continue
		}
		for !bMatch[j] {
			j++
		}
		if a[i] != b[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(len(a)) + m/float64(len(b)) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler boosts Jaro for strings sharing a common prefix (up to 4
// runes) with the standard scaling factor 0.1. It is one of the three
// metrics supported by the rule-based learner (§3).
type JaroWinkler struct{}

// Name implements Metric.
func (JaroWinkler) Name() string { return "jaro_winkler" }

// Compare implements Metric.
func (JaroWinkler) Compare(a, b string) float64 {
	sc := getScratch()
	defer putScratch(sc)
	sc.ra = runesInto(sc.ra, a)
	sc.rb = runesInto(sc.rb, b)
	ra, rb := sc.ra, sc.rb
	j := jaroSim(sc, ra, rb)
	prefix := 0
	for prefix < min(4, len(ra), len(rb)) && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// NeedlemanWunsch is global-alignment similarity with match +1,
// mismatch -1, gap -1, normalized so that identical strings score 1 and
// strings with a non-positive alignment score 0.
type NeedlemanWunsch struct{}

// Name implements Metric.
func (NeedlemanWunsch) Name() string { return "needleman_wunsch" }

// Compare implements Metric.
func (NeedlemanWunsch) Compare(a, b string) float64 {
	sc := getScratch()
	defer putScratch(sc)
	sc.ra = runesInto(sc.ra, a)
	sc.rb = runesInto(sc.rb, b)
	ra, rb := sc.ra, sc.rb
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	sc.ia = growInts(sc.ia, len(rb)+1)
	sc.ib = growInts(sc.ib, len(rb)+1)
	prev, cur := sc.ia, sc.ib
	for j := range prev {
		prev[j] = -j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = -i
		for j := 1; j <= len(rb); j++ {
			sub := -1
			if ra[i-1] == rb[j-1] {
				sub = 1
			}
			cur[j] = max(prev[j-1]+sub, prev[j]-1, cur[j-1]-1)
		}
		prev, cur = cur, prev
	}
	score := prev[len(rb)]
	if score <= 0 {
		return 0
	}
	return float64(score) / float64(max(len(ra), len(rb)))
}

// SmithWaterman is local-alignment similarity with match +1, mismatch -1,
// gap -1, normalized by the best possible local score min(len(a), len(b)).
// It rewards strings sharing a long common region regardless of
// surrounding noise (e.g. a model number embedded in a long title).
type SmithWaterman struct{}

// Name implements Metric.
func (SmithWaterman) Name() string { return "smith_waterman" }

// Compare implements Metric.
func (SmithWaterman) Compare(a, b string) float64 {
	return smithWatermanStrings(a, b, -1, -1)
}

// SmithWatermanGotoh is Smith-Waterman with cheaper gap extension
// (open -1, extend -0.5 approximated by a constant -0.5 gap), tolerating
// longer gaps such as dropped words.
type SmithWatermanGotoh struct{}

// Name implements Metric.
func (SmithWatermanGotoh) Name() string { return "smith_waterman_gotoh" }

// Compare implements Metric.
func (SmithWatermanGotoh) Compare(a, b string) float64 {
	return smithWatermanStrings(a, b, -0.5, -1)
}

func smithWatermanStrings(a, b string, gap, mismatch float64) float64 {
	sc := getScratch()
	defer putScratch(sc)
	sc.ra = runesInto(sc.ra, a)
	sc.rb = runesInto(sc.rb, b)
	return smithWaterman(sc, sc.ra, sc.rb, gap, mismatch)
}

// smithWaterman computes normalized local alignment with the given gap and
// mismatch penalties (match is +1).
func smithWaterman(sc *scratch, a, b []rune, gap, mismatch float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sc.fa = growFloats(sc.fa, len(b)+1)
	sc.fb = growFloats(sc.fb, len(b)+1)
	prev, cur := sc.fa, sc.fb
	for j := range prev {
		prev[j] = 0
	}
	best := 0.0
	for i := 1; i <= len(a); i++ {
		cur[0] = 0
		for j := 1; j <= len(b); j++ {
			sub := mismatch
			if a[i-1] == b[j-1] {
				sub = 1
			}
			v := prev[j-1] + sub
			if w := prev[j] + gap; w > v {
				v = w
			}
			if w := cur[j-1] + gap; w > v {
				v = w
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
	}
	return best / float64(min(len(a), len(b)))
}
