package textsim

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// tokenSetMetrics is every corpus-free metric with an interned fast
// path; the equivalence suite walks it so adding an implementation
// without a pin is impossible (see TestTokenSetMetricCoverage). The
// corpus-bound TF-IDF metrics are pinned by TestTFIDFTokenSetEquivalence.
func tokenSetMetrics() []TokenSetMetric {
	return []TokenSetMetric{
		Jaccard{}, Dice{}, Cosine{}, Overlap{}, MatchingCoefficient{},
		BlockDistance{}, Euclidean{}, MongeElkan{}, GeneralizedJaccard{},
		Identity{}, QGram{}, SimonWhite{}, Soundex{},
	}
}

// internWords is a vocabulary with deliberate collisions, near-typos
// (for the soft metrics' Jaro-Winkler inner loops), unicode and
// mixed-width tokens.
var internWords = []string{
	"apple", "appel", "apples", "samsung", "galaxy", "galaxxy", "s21",
	"ultra", "128gb", "черный", "schwarz", "noir", "télé", "tele",
	"世界", "世", "pro", "max", "mini", "a", "b", "the",
}

func randomTokenDoc(rng *rand.Rand, maxLen int) string {
	n := rng.Intn(maxLen + 1)
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += internWords[rng.Intn(len(internWords))]
	}
	return s
}

// checkTokenSetEquivalence interns both docs with m's declared tokenizer
// and pins CompareTokenSets bit-identical to Compare (and, for word
// metrics, to CompareTokens).
func checkTokenSetEquivalence(t *testing.T, dict *Dict, m TokenSetMetric, a, b string) {
	t.Helper()
	tok := m.InternTokenizer()
	sa, sb := GetTokenSet(), GetTokenSet()
	dict.InternValue(tok, a, sa)
	dict.InternValue(tok, b, sb)
	got := m.CompareTokenSets(sa, sb)
	wantCompare := m.Compare(a, b)
	if math.Float64bits(got) != math.Float64bits(wantCompare) {
		t.Fatalf("%s(%q, %q): CompareTokenSets=%v Compare=%v", m.Name(), a, b, got, wantCompare)
	}
	if tm, ok := m.(TokenMetric); ok {
		wantTokens := tm.CompareTokens(tok.Tokens(a), tok.Tokens(b))
		if math.Float64bits(got) != math.Float64bits(wantTokens) {
			t.Fatalf("%s(%q, %q): CompareTokenSets=%v CompareTokens=%v", m.Name(), a, b, got, wantTokens)
		}
	}
	sa.Release()
	sb.Release()
}

// TestTokenSetMetricEquivalence pins CompareTokenSets bit-identical to
// Compare (and CompareTokens where implemented) across randomized token
// multisets, including duplicate-heavy, unicode and empty inputs.
func TestTokenSetMetricEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dict := NewDict()
	docs := make([]string, 0, 400)
	for i := 0; i < 396; i++ {
		docs = append(docs, randomTokenDoc(rng, 8))
	}
	// Forced edge cases.
	docs = append(docs, "", "the the the the", "apple apple appel", "世界 世 世界")
	for _, m := range tokenSetMetrics() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			for i := 0; i+1 < len(docs); i += 2 {
				checkTokenSetEquivalence(t, dict, m, docs[i], docs[i+1])
			}
		})
	}
}

// TestTFIDFTokenSetEquivalence is the corpus-bound counterpart: the
// TF-IDF metrics' interned paths must be bit-identical to their (now
// deterministic) string paths under a real document-frequency corpus.
func TestTFIDFTokenSetEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	docs := make([]string, 0, 200)
	for i := 0; i < 196; i++ {
		docs = append(docs, randomTokenDoc(rng, 8))
	}
	docs = append(docs, "", "the the the the", "apple apple appel", "世界 世 世界")
	c := NewCorpus(docs)
	dict := NewDict()
	cases := []struct {
		label string
		m     TokenSetMetric
	}{
		{"tfidf_cosine", TFIDFCosine{Corpus: c}},
		{"soft_tfidf", SoftTFIDF{Corpus: c}},
		{"tfidf_cosine_nil_corpus", TFIDFCosine{}}, // fallback paths
		{"soft_tfidf_nil_corpus", SoftTFIDF{}},
	}
	for _, tc := range cases {
		m := tc.m
		t.Run(tc.label, func(t *testing.T) {
			for i := 0; i+1 < len(docs); i += 2 {
				checkTokenSetEquivalence(t, dict, m, docs[i], docs[i+1])
			}
		})
	}
}

// TestTFIDFCosineDeterministic pins the latent-bug fix: TF-IDF cosine
// historically accumulated non-integer weights in map iteration order,
// so repeated calls on the same inputs could differ in the last bit.
// The score must now be a pure function of its inputs.
func TestTFIDFCosineDeterministic(t *testing.T) {
	c := NewCorpus([]string{
		"samsung galaxy s21 ultra", "samsung galaxy note", "apple iphone pro",
		"galaxy ultra 128gb black", "the the the", "pro max mini",
	})
	m := TFIDFCosine{Corpus: c}
	a := "samsung galaxy s21 ultra 128gb black pro"
	b := "galaxy samsung note pro max the black"
	want := math.Float64bits(m.Compare(a, b))
	for i := 0; i < 200; i++ {
		if got := math.Float64bits(m.Compare(a, b)); got != want {
			t.Fatalf("call %d: Compare changed bits: %x vs %x", i, got, want)
		}
	}
}

// TestTokenSetMetricCoverage asserts the interned fast path covers every
// metric it should: all TokenMetrics, the gram-profile and phonetic
// metrics, identity, and the corpus-weighted metrics — so a new metric
// cannot silently fall off the batch extractor's zero-alloc path.
func TestTokenSetMetricCoverage(t *testing.T) {
	all := append(All(), Extended(NewCorpus(nil))...)
	wantInterned := map[string]bool{
		"identity": true, "qgram": true, "jaccard": true, "dice": true,
		"simon_white": true, "cosine": true, "overlap": true,
		"matching_coefficient": true, "block_distance": true,
		"euclidean": true, "monge_elkan": true, "soundex": true,
		"generalized_jaccard": true, "tfidf_cosine": true, "soft_tfidf": true,
	}
	for _, m := range all {
		_, isTok := m.(TokenMetric)
		_, isSet := m.(TokenSetMetric)
		if isTok && !isSet {
			t.Errorf("metric %s implements TokenMetric but not TokenSetMetric (interned path)", m.Name())
		}
		if wantInterned[m.Name()] && !isSet {
			t.Errorf("metric %s fell off the interned fast path", m.Name())
		}
	}
}

// TestInternTokensRepresentation checks the TokenSet invariants the
// metrics rely on: ascending distinct IDs, aligned multiplicities that
// sum to the token count, and Distinct in first-seen order.
func TestInternTokensRepresentation(t *testing.T) {
	dict := NewDict()
	ts := GetTokenSet()
	defer ts.Release()
	toks := []string{"b", "a", "b", "c", "a", "b"}
	dict.InternTokens(toks, ts)
	if ts.Len() != 6 {
		t.Fatalf("Len = %d, want 6", ts.Len())
	}
	if len(ts.IDs) != 3 || len(ts.Counts) != 3 {
		t.Fatalf("IDs/Counts = %v/%v, want 3 distinct", ts.IDs, ts.Counts)
	}
	total := 0
	for i := range ts.IDs {
		if i > 0 && ts.IDs[i] <= ts.IDs[i-1] {
			t.Fatalf("IDs not strictly ascending: %v", ts.IDs)
		}
		total += int(ts.Counts[i])
	}
	if total != 6 {
		t.Fatalf("Counts sum = %d, want 6", total)
	}
	want := []string{"b", "a", "c"}
	if len(ts.Distinct) != len(want) {
		t.Fatalf("Distinct = %v, want %v", ts.Distinct, want)
	}
	for i := range want {
		if ts.Distinct[i] != want[i] {
			t.Fatalf("Distinct = %v, want %v (first-seen order)", ts.Distinct, want)
		}
	}
	// Re-interning different content into the same pooled set must fully
	// overwrite it.
	dict.InternTokens([]string{"z"}, ts)
	if ts.Len() != 1 || len(ts.IDs) != 1 || len(ts.Distinct) != 1 || ts.Distinct[0] != "z" {
		t.Fatalf("reused TokenSet kept stale state: %+v", ts)
	}
}

func TestDictInternStable(t *testing.T) {
	d := NewDict()
	a := d.Intern("apple")
	b := d.Intern("banana")
	if a == b {
		t.Fatalf("distinct tokens got the same id %d", a)
	}
	if got := d.Intern("apple"); got != a {
		t.Fatalf("re-Intern changed id: %d then %d", a, got)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
}

// TestQGramLowerOnceEquivalence pins the single-pass decode-and-lower
// q-gram tokenizer against the historical two-allocation form
// []rune(strings.ToLower(s)) on mixed-case, unicode and invalid-UTF-8
// input, padded and unpadded (the satellite regression for the
// double-lowering bug).
func TestQGramLowerOnceEquivalence(t *testing.T) {
	legacy := func(q int, pad bool, s string) []string {
		// Frozen pre-fix implementation.
		r := []rune(strings.ToLower(s))
		if pad && len(r) > 0 {
			padded := make([]rune, 0, len(r)+2*(q-1))
			for i := 0; i < q-1; i++ {
				padded = append(padded, '#')
			}
			padded = append(padded, r...)
			for i := 0; i < q-1; i++ {
				padded = append(padded, '$')
			}
			r = padded
		}
		if len(r) < q {
			if len(r) == 0 {
				return nil
			}
			return []string{string(r)}
		}
		out := make([]string, 0, len(r)-q+1)
		for i := 0; i+q <= len(r); i++ {
			out = append(out, string(r[i:i+q]))
		}
		return out
	}
	inputs := []string{
		"", "A", "AB", "ABC", "Hello World", "MIXED case Input",
		"ПрИвЕт", "İstanbul", "ẞharp", "Tele\xffVision", "世界World",
		"already lowered input", "ÅNGSTRÖM", "ǅungla",
	}
	for _, q := range []int{0, 1, 2, 3, 4} {
		for _, pad := range []bool{false, true} {
			tok := QGramTokenizer{Q: q, Pad: pad}
			qq := q
			if qq <= 0 {
				qq = 3
			}
			for _, s := range inputs {
				got := tok.Tokens(s)
				want := legacy(qq, pad, s)
				if len(got) != len(want) {
					t.Fatalf("q=%d pad=%v %q: got %d grams %v, want %d %v", q, pad, s, len(got), got, len(want), want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("q=%d pad=%v %q: gram %d = %q, want %q", q, pad, s, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestCorpusIDFPrecomputed pins the precomputed IDF table against the
// historical per-call formula for seen and unseen tokens, including
// after a JSON round-trip (artifact decode path).
func TestCorpusIDFPrecomputed(t *testing.T) {
	c := NewCorpus([]string{"apple banana", "apple pie", "cherry pie pie", ""})
	check := func(c *Corpus, label string) {
		t.Helper()
		for _, tok := range []string{"apple", "banana", "pie", "cherry", "unseen-token", ""} {
			want := math.Log(float64(c.docs+1) / float64(c.df[tok]+1))
			got := c.IDF(tok)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: IDF(%q) = %v, want %v", label, tok, got, want)
			}
		}
	}
	check(c, "built")
	blob, err := c.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Corpus
	if err := back.UnmarshalJSON(blob); err != nil {
		t.Fatal(err)
	}
	check(&back, "round-tripped")
	if back.NumDocs() != c.NumDocs() {
		t.Fatalf("docs = %d, want %d", back.NumDocs(), c.NumDocs())
	}
}

// TestCompareAllocRatchet is the allocs/op ratchet for the pooled
// per-pair scoring path: steady-state Compare and CompareTokenSets calls
// must stay within a small fixed allocation budget. It runs under plain
// `go test` (and `make bench-ratchet`), so a pooling regression fails
// the build, not just the benchmark harness.
func TestCompareAllocRatchet(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation behaviour differs under the race detector")
	}
	a := "Samsung Galaxy S21 Ultra 128GB Phantom Black"
	b := "Samsung Galaxy S21 Ultra 5G (128 GB) - Schwarz"
	cases := []struct {
		name   string
		budget float64 // average allocs per op; slack for pool refills after GC
		run    func()
	}{
		{"levenshtein", 0.5, func() { (Levenshtein{}).Compare(a, b) }},
		{"damerau_levenshtein", 0.5, func() { (DamerauLevenshtein{}).Compare(a, b) }},
		{"jaro", 0.5, func() { (Jaro{}).Compare(a, b) }},
		{"jaro_winkler", 0.5, func() { (JaroWinkler{}).Compare(a, b) }},
		{"needleman_wunsch", 0.5, func() { (NeedlemanWunsch{}).Compare(a, b) }},
		{"smith_waterman", 0.5, func() { (SmithWaterman{}).Compare(a, b) }},
		{"smith_waterman_gotoh", 0.5, func() { (SmithWatermanGotoh{}).Compare(a, b) }},
		{"lcs_subsequence", 0.5, func() { (LongestCommonSubsequence{}).Compare(a, b) }},
		{"lcs_substring", 0.5, func() { (LongestCommonSubstring{}).Compare(a, b) }},
	}
	dict := NewDict()
	for _, m := range tokenSetMetrics() {
		m := m
		sa, sb := GetTokenSet(), GetTokenSet()
		dict.InternValue(m.InternTokenizer(), a, sa)
		dict.InternValue(m.InternTokenizer(), b, sb)
		budget := 0.5
		if m.Name() == "monge_elkan" || m.Name() == "generalized_jaccard" {
			// Inner Jaro-Winkler borrows nested scratch per token pair;
			// keep a little more slack for pool churn.
			budget = 1.0
		}
		cases = append(cases, struct {
			name   string
			budget float64
			run    func()
		}{"tokenset_" + m.Name(), budget, func() { m.CompareTokenSets(sa, sb) }})
	}
	// The q-gram interning path itself must be allocation-free once the
	// dictionary has seen the grams (steady-state record ingestion).
	{
		ts := GetTokenSet()
		dict.InternQGrams(b, 3, true, ts) // warm the dictionary and buffers
		cases = append(cases, struct {
			name   string
			budget float64
			run    func()
		}{"intern_qgrams", 0.5, func() { dict.InternQGrams(b, 3, true, ts) }})
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if avg := testing.AllocsPerRun(200, tc.run); avg > tc.budget {
				t.Fatalf("allocs/op = %.2f, ratchet budget %.2f", avg, tc.budget)
			}
		})
	}
}

// TestInternQGramsMatchesTokens pins the gram-string-free interning path
// against interning the materialized QGramTokenizer output into the same
// dictionary: the id/count multisets must be identical slices.
func TestInternQGramsMatchesTokens(t *testing.T) {
	inputs := []string{
		"", "A", "AB", "ABC", "Hello World", "MIXED case Input",
		"ПрИвЕт", "İstanbul", "ẞharp", "Tele\xffVision", "世界World",
		"already lowered input", "ÅNGSTRÖM", "ǅungla", "ab", "a b a b",
	}
	for _, q := range []int{0, 1, 2, 3, 4} {
		for _, pad := range []bool{false, true} {
			dict := NewDict()
			tok := QGramTokenizer{Q: q, Pad: pad}
			for _, s := range inputs {
				want, got := GetTokenSet(), GetTokenSet()
				dict.InternTokens(tok.Tokens(s), want)
				dict.InternQGrams(s, q, pad, got)
				if got.Len() != want.Len() {
					t.Fatalf("q=%d pad=%v %q: Len=%d, want %d", q, pad, s, got.Len(), want.Len())
				}
				if len(got.IDs) != len(want.IDs) {
					t.Fatalf("q=%d pad=%v %q: %d distinct ids, want %d", q, pad, s, len(got.IDs), len(want.IDs))
				}
				for i := range got.IDs {
					if got.IDs[i] != want.IDs[i] || got.Counts[i] != want.Counts[i] {
						t.Fatalf("q=%d pad=%v %q: multiset mismatch at %d: (%d,%d) vs (%d,%d)",
							q, pad, s, i, got.IDs[i], got.Counts[i], want.IDs[i], want.Counts[i])
					}
				}
				want.Release()
				got.Release()
			}
		}
	}
}

// TestSoundexCodeEquivalence pins the allocation-free per-rune soundex
// encoder against the frozen historical form, which upper-cased the
// whole string first and walked its bytes — including the tricky runes
// where the two could plausibly diverge (ſ→S, µ→Μ, invalid UTF-8).
func TestSoundexCodeEquivalence(t *testing.T) {
	legacy := func(s string) string {
		s = strings.ToUpper(s)
		var first byte
		var rest []byte
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c < 'A' || c > 'Z' {
				if first != 0 {
					break
				}
				continue
			}
			if first == 0 {
				first = c
			} else {
				rest = append(rest, c)
			}
		}
		if first == 0 {
			return ""
		}
		code := []byte{first}
		prev := soundexDigit(first)
		for _, c := range rest {
			d := soundexDigit(c)
			switch {
			case d == 0:
				if c != 'H' && c != 'W' {
					prev = 0
				}
			case d != prev:
				code = append(code, '0'+d)
				prev = d
			}
			if len(code) == 4 {
				break
			}
		}
		for len(code) < 4 {
			code = append(code, '0')
		}
		return string(code)
	}
	inputs := []string{
		"", "Robert", "Tymczak", "Pfister", "Honeyman", "Kopcke", "Koepcke",
		"  two words here", "123 Main", "ſharp", "µmeter", "Kſ", "世界",
		"Tele\xffVision", "ÅNGSTRÖM", "o'brien", "McDONALD", "a",
	}
	for _, s := range inputs {
		if got, want := soundexCode(s), legacy(s); got != want {
			t.Fatalf("soundexCode(%q) = %q, legacy = %q", s, got, want)
		}
	}
}

// TestPooledCompareMatchesGolden re-runs a few fixed-value checks after
// hammering the pool from many goroutines, guarding against scratch
// state leaking between concurrent Compare calls.
func TestPooledCompareConcurrent(t *testing.T) {
	type pairCase struct {
		m    Metric
		a, b string
	}
	var cases []pairCase
	rng := rand.New(rand.NewSource(7))
	mets := All()
	for i := 0; i < 64; i++ {
		cases = append(cases, pairCase{
			m: mets[rng.Intn(len(mets))],
			a: randomTokenDoc(rng, 6),
			b: randomTokenDoc(rng, 6),
		})
	}
	want := make([]float64, len(cases))
	for i, c := range cases {
		want[i] = c.m.Compare(c.a, c.b)
	}
	const goroutines = 8
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			for iter := 0; iter < 50; iter++ {
				for i, c := range cases {
					if got := c.m.Compare(c.a, c.b); math.Float64bits(got) != math.Float64bits(want[i]) {
						errc <- fmt.Errorf("%s(%q,%q) = %v, want %v", c.m.Name(), c.a, c.b, got, want[i])
						return
					}
				}
			}
			errc <- nil
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
