package textsim

import "math"

// Token-based (set and multiset) similarity metrics. All use the
// Whitespace tokenizer unless stated otherwise.

// Jaccard is |A∩B| / |A∪B| over word token sets. It is one of the three
// metrics supported by the rule-based learner (§3) and the metric used by
// the offline blocking step (§6).
type Jaccard struct{}

// Name implements Metric.
func (Jaccard) Name() string { return "jaccard" }

// Compare implements Metric.
func (Jaccard) Compare(a, b string) float64 {
	return JaccardTokens(Whitespace{}.Tokens(a), Whitespace{}.Tokens(b))
}

// JaccardTokens computes Jaccard similarity over pre-tokenized inputs. The
// blocking package uses it directly to avoid re-tokenizing records.
func JaccardTokens(ta, tb []string) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	sa, sb := set(ta), set(tb)
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return float64(inter) / float64(union)
}

// Dice is the Sørensen-Dice coefficient 2|A∩B| / (|A|+|B|) over token sets.
type Dice struct{}

// Name implements Metric.
func (Dice) Name() string { return "dice" }

// Compare implements Metric.
func (Dice) Compare(a, b string) float64 {
	ta, tb := Whitespace{}.Tokens(a), Whitespace{}.Tokens(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	sa, sb := set(ta), set(tb)
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	return 2 * float64(inter) / float64(len(sa)+len(sb))
}

// SimonWhite is the quantitative Dice coefficient over padded character
// bigram multisets — robust to token-order changes and minor typos at once.
type SimonWhite struct{}

// Name implements Metric.
func (SimonWhite) Name() string { return "simon_white" }

// Compare implements Metric.
func (SimonWhite) Compare(a, b string) float64 {
	tok := QGramTokenizer{Q: 2, Pad: false}
	ca := counts(tok.Tokens(a))
	cb := counts(tok.Tokens(b))
	if len(ca) == 0 && len(cb) == 0 {
		return 1
	}
	if len(ca) == 0 || len(cb) == 0 {
		return 0
	}
	inter, total := 0, 0
	for g, na := range ca {
		inter += min(na, cb[g])
		total += na
	}
	for _, nb := range cb {
		total += nb
	}
	return 2 * float64(inter) / float64(total)
}

// Cosine is cosine similarity between token-count vectors.
type Cosine struct{}

// Name implements Metric.
func (Cosine) Name() string { return "cosine" }

// Compare implements Metric.
func (Cosine) Compare(a, b string) float64 {
	ca := counts(Whitespace{}.Tokens(a))
	cb := counts(Whitespace{}.Tokens(b))
	if len(ca) == 0 && len(cb) == 0 {
		return 1
	}
	if len(ca) == 0 || len(cb) == 0 {
		return 0
	}
	var dot, na, nb float64
	for t, x := range ca {
		dot += float64(x * cb[t])
		na += float64(x * x)
	}
	for _, y := range cb {
		nb += float64(y * y)
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Overlap is the overlap coefficient |A∩B| / min(|A|, |B|) over token sets;
// it scores 1 whenever one token set contains the other (e.g. a short title
// embedded in a long one).
type Overlap struct{}

// Name implements Metric.
func (Overlap) Name() string { return "overlap" }

// Compare implements Metric.
func (Overlap) Compare(a, b string) float64 {
	ta, tb := Whitespace{}.Tokens(a), Whitespace{}.Tokens(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	sa, sb := set(ta), set(tb)
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	return float64(inter) / float64(min(len(sa), len(sb)))
}

// MatchingCoefficient is |A∩B| / max(|A|, |B|) over token sets.
type MatchingCoefficient struct{}

// Name implements Metric.
func (MatchingCoefficient) Name() string { return "matching_coefficient" }

// Compare implements Metric.
func (MatchingCoefficient) Compare(a, b string) float64 {
	ta, tb := Whitespace{}.Tokens(a), Whitespace{}.Tokens(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	sa, sb := set(ta), set(tb)
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	return float64(inter) / float64(max(len(sa), len(sb)))
}

// BlockDistance is L1 (city-block) similarity between token-count vectors:
// 1 - L1(a,b) / (|a| + |b|).
type BlockDistance struct{}

// Name implements Metric.
func (BlockDistance) Name() string { return "block_distance" }

// Compare implements Metric.
func (BlockDistance) Compare(a, b string) float64 {
	ta, tb := Whitespace{}.Tokens(a), Whitespace{}.Tokens(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	ca, cb := counts(ta), counts(tb)
	diff := 0
	for t, x := range ca {
		diff += abs(x - cb[t])
	}
	for t, y := range cb {
		if _, ok := ca[t]; !ok {
			diff += y
		}
	}
	return 1 - float64(diff)/float64(len(ta)+len(tb))
}

// Euclidean is L2 similarity between token-count vectors:
// 1 - ||a-b|| / (||a|| + ||b||), which lies in [0,1] by the triangle
// inequality.
type Euclidean struct{}

// Name implements Metric.
func (Euclidean) Name() string { return "euclidean" }

// Compare implements Metric.
func (Euclidean) Compare(a, b string) float64 {
	ta, tb := Whitespace{}.Tokens(a), Whitespace{}.Tokens(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	ca, cb := counts(ta), counts(tb)
	var dd, na, nb float64
	for t, x := range ca {
		d := float64(x - cb[t])
		dd += d * d
		na += float64(x * x)
	}
	for t, y := range cb {
		if _, ok := ca[t]; !ok {
			dd += float64(y * y)
		}
		nb += float64(y * y)
	}
	denom := math.Sqrt(na) + math.Sqrt(nb)
	if denom == 0 {
		return 1
	}
	return 1 - math.Sqrt(dd)/denom
}

// GeneralizedJaccard is soft Jaccard: tokens from A and B are greedily
// matched when their Jaro-Winkler similarity is at least 0.8, and the
// matched mass replaces the exact intersection in the Jaccard formula. It
// tolerates token-level typos that break exact Jaccard.
type GeneralizedJaccard struct{}

// Name implements Metric.
func (GeneralizedJaccard) Name() string { return "generalized_jaccard" }

// Compare implements Metric. Greedy soft matching depends on the
// direction it walks, so the score is symmetrized over both directions.
func (g GeneralizedJaccard) Compare(a, b string) float64 {
	ta, tb := Whitespace{}.Tokens(a), Whitespace{}.Tokens(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	sa := setSlice(ta)
	sb := setSlice(tb)
	return (softJaccardDirected(sa, sb) + softJaccardDirected(sb, sa)) / 2
}

func softJaccardDirected(sa, sb []string) float64 {
	jw := JaroWinkler{}
	sc := getScratch()
	defer putScratch(sc)
	sc.ba = growBools(sc.ba, len(sb))
	used := sc.ba
	clear(used)
	var matched float64
	for _, x := range sa {
		bestJ, bestSim := -1, 0.0
		for j, y := range sb {
			if used[j] {
				continue
			}
			if s := jw.Compare(x, y); s > bestSim {
				bestSim, bestJ = s, j
			}
		}
		if bestJ >= 0 && bestSim >= 0.8 {
			used[bestJ] = true
			matched += bestSim
		}
	}
	union := float64(len(sa)+len(sb)) - matched
	if union <= 0 {
		return 1
	}
	return matched / union
}

// MongeElkan is the symmetrized Monge-Elkan measure with Jaro-Winkler as
// the inner metric: for each token of one string take the best inner
// similarity against the other string's tokens, average, and symmetrize.
type MongeElkan struct{}

// Name implements Metric.
func (MongeElkan) Name() string { return "monge_elkan" }

// Compare implements Metric.
func (MongeElkan) Compare(a, b string) float64 {
	ta, tb := Whitespace{}.Tokens(a), Whitespace{}.Tokens(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	return (mongeElkanDirected(ta, tb) + mongeElkanDirected(tb, ta)) / 2
}

func mongeElkanDirected(ta, tb []string) float64 {
	jw := JaroWinkler{}
	var sum float64
	for _, x := range ta {
		best := 0.0
		for _, y := range tb {
			if s := jw.Compare(x, y); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(ta))
}

// setSlice deduplicates tokens preserving first-seen order.
func setSlice(tokens []string) []string {
	seen := make(map[string]struct{}, len(tokens))
	out := tokens[:0:0]
	for _, t := range tokens {
		if _, ok := seen[t]; !ok {
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	return out
}
