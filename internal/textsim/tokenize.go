// Package textsim implements the string-similarity substrate used by the
// feature extractor: 21 similarity functions equivalent to the Java
// Simmetrics library referenced by the paper (§3), plus the tokenizers they
// depend on. Every metric returns a score in [0, 1], where 1 means the two
// strings are identical under that metric's notion of similarity.
//
// The package is pure and allocation-conscious: metrics are stateless values
// and safe for concurrent use.
package textsim

import (
	"strings"
	"unicode"
)

// Tokenizer splits a string into tokens. Implementations must be stateless
// and safe for concurrent use.
type Tokenizer interface {
	// Tokens returns the token multiset of s, in order of occurrence.
	Tokens(s string) []string
}

// Whitespace tokenizes on Unicode whitespace and punctuation boundaries,
// lower-casing each token. It is the default word tokenizer for token-based
// metrics and for the offline blocking step.
type Whitespace struct{}

// Tokens implements Tokenizer.
func (Whitespace) Tokens(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return unicode.IsSpace(r) || unicode.IsPunct(r)
	})
}

// QGramTokenizer produces overlapping character q-grams. When Pad is true
// the string is padded with Q-1 leading and trailing sentinel runes so that
// boundary characters participate in Q grams each, matching the Simmetrics
// QGram3Extended behaviour.
type QGramTokenizer struct {
	Q   int
	Pad bool
}

// Tokens implements Tokenizer.
//
// The string is lowered exactly once, rune by rune, while it is decoded
// — the historical implementation allocated an intermediate lowered
// string ([]rune(strings.ToLower(s))) and re-lowered input that callers
// had already lowered; the single decode-and-lower pass produces the
// identical rune sequence (strings.ToLower applies unicode.ToLower per
// rune, and both forms decode invalid UTF-8 to U+FFFD), pinned by
// TestQGramLowerOnceEquivalence. When padding is requested the sentinel
// capacity is reserved up front so padding never reallocates.
func (t QGramTokenizer) Tokens(s string) []string {
	q := t.Q
	if q <= 0 {
		q = 3
	}
	pad := 0
	if t.Pad {
		pad = q - 1
	}
	r := make([]rune, 0, len(s)+2*pad)
	for i := 0; i < pad; i++ {
		r = append(r, '#')
	}
	n := len(r)
	for _, c := range s {
		r = append(r, unicode.ToLower(c))
	}
	if len(r) == n {
		// Empty input: no padding either, matching the historical
		// behaviour of padding only non-empty strings.
		r = r[:0]
	} else {
		for i := 0; i < pad; i++ {
			r = append(r, '$')
		}
	}
	if len(r) < q {
		if len(r) == 0 {
			return nil
		}
		return []string{string(r)}
	}
	out := make([]string, 0, len(r)-q+1)
	for i := 0; i+q <= len(r); i++ {
		out = append(out, string(r[i:i+q]))
	}
	return out
}

// WordShingle produces shingles of N consecutive whitespace tokens. It is
// used by dataset profiles that key blocking on multi-word names.
type WordShingle struct{ N int }

// Tokens implements Tokenizer.
func (t WordShingle) Tokens(s string) []string {
	n := t.N
	if n <= 0 {
		n = 2
	}
	words := Whitespace{}.Tokens(s)
	if len(words) < n {
		if len(words) == 0 {
			return nil
		}
		return []string{strings.Join(words, " ")}
	}
	out := make([]string, 0, len(words)-n+1)
	for i := 0; i+n <= len(words); i++ {
		out = append(out, strings.Join(words[i:i+n], " "))
	}
	return out
}

// counts folds a token slice into a multiset representation.
func counts(tokens []string) map[string]int {
	m := make(map[string]int, len(tokens))
	for _, t := range tokens {
		m[t]++
	}
	return m
}

// set folds a token slice into a set representation.
func set(tokens []string) map[string]struct{} {
	m := make(map[string]struct{}, len(tokens))
	for _, t := range tokens {
		m[t] = struct{}{}
	}
	return m
}
