package textsim

import "sync"

// Scratch-buffer pooling for the per-pair similarity hot path.
//
// The feature extractor applies 21 metrics to every attribute pair of
// every candidate pair; before pooling, each edit-distance style metric
// allocated two rune conversions plus two or three DP rows per call, and
// the Jaro family allocated two match-flag slices — the dominant
// allocation source in profile after tokenization. A scratch value holds
// every buffer one Compare call can need; callers borrow one from a
// sync.Pool, slice what they need, and return it.
//
// Ownership rule: a scratch is owned by exactly one Compare call from
// get to put. Nested metric calls (Monge-Elkan and soft-TFIDF invoke
// Jaro-Winkler per token pair) borrow their *own* scratch — the pool
// hands them a second value — so buffers are never shared downward.
// Nothing borrowed from a scratch may escape the call that borrowed it;
// every buffer is (re)initialized by its borrower before use, so a
// recycled value can never leak state between pairs.
type scratch struct {
	ra, rb []rune    // rune conversions of the two inputs
	ia, ib []int     // integer DP rows (Levenshtein, LCS, Needleman-Wunsch)
	ic     []int     // third integer row (Damerau transposition window)
	fa, fb []float64 // float DP rows (Smith-Waterman)
	ba, bb []bool    // match flags (Jaro)
	bs     []byte    // byte workspace (q-gram interning)
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch  { return scratchPool.Get().(*scratch) }
func putScratch(s *scratch) { scratchPool.Put(s) }

// growRunes returns buf resized to hold n runes, reallocating only when
// capacity is short. Contents are unspecified; callers overwrite.
func growRunes(buf []rune, n int) []rune {
	if cap(buf) < n {
		return make([]rune, n, n+n/2+8)
	}
	return buf[:n]
}

func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n, n+n/2+8)
	}
	return buf[:n]
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n, n+n/2+8)
	}
	return buf[:n]
}

func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n, n+n/2+8)
	}
	return buf[:n]
}

// appendRunes decodes s into buf[:0], equivalent to []rune(s) (invalid
// UTF-8 bytes decode to U+FFFD in both forms) without allocating when
// buf has capacity.
func appendRunes(buf []rune, s string) []rune {
	buf = buf[:0]
	for _, r := range s {
		buf = append(buf, r)
	}
	return buf
}

// runesInto fills dst from s, growing it as needed, and returns the
// slice holding exactly the runes of s.
func runesInto(dst []rune, s string) []rune {
	if cap(dst) < len(s) {
		dst = make([]rune, 0, len(s)+8)
	}
	return appendRunes(dst, s)
}
