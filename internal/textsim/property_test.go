package textsim

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// randomString draws a printable ASCII string biased toward word-like
// content so token metrics see non-trivial inputs.
func randomString(r *rand.Rand) string {
	words := r.Intn(5)
	var sb strings.Builder
	for w := 0; w <= words; w++ {
		if w > 0 {
			sb.WriteByte(' ')
		}
		n := r.Intn(8)
		for i := 0; i <= n; i++ {
			sb.WriteByte(byte('a' + r.Intn(26)))
		}
	}
	return sb.String()
}

// TestMetricProperties checks, for every metric in the registry, the three
// invariants the feature extractor relies on: range [0,1], reflexivity
// (sim(a,a)=1) and symmetry (sim(a,b)=sim(b,a)).
func TestMetricProperties(t *testing.T) {
	metrics := append(All(), GeneralizedJaccard{})
	for _, m := range metrics {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			cfg := &quick.Config{
				MaxCount: 200,
				Values: func(args []reflect.Value, r *rand.Rand) {
					args[0] = reflect.ValueOf(randomString(r))
					args[1] = reflect.ValueOf(randomString(r))
				},
			}
			prop := func(a, b string) bool {
				s := m.Compare(a, b)
				if s < 0 || s > 1+1e-12 {
					t.Logf("%s(%q,%q) = %v out of [0,1]", m.Name(), a, b, s)
					return false
				}
				if refl := m.Compare(a, a); refl != 1 && refl < 1-1e-12 {
					t.Logf("%s(%q,%q) = %v, want 1 (reflexivity)", m.Name(), a, a, refl)
					return false
				}
				ba := m.Compare(b, a)
				if diff := s - ba; diff > 1e-9 || diff < -1e-9 {
					t.Logf("%s asymmetric: (%q,%q)=%v vs %v", m.Name(), a, b, s, ba)
					return false
				}
				return true
			}
			if err := quick.Check(prop, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestTokenizerProperties checks tokenizers never panic and produce
// lower-case tokens.
func TestTokenizerProperties(t *testing.T) {
	toks := []Tokenizer{
		Whitespace{},
		QGramTokenizer{Q: 2},
		QGramTokenizer{Q: 3, Pad: true},
		WordShingle{N: 2},
	}
	for _, tok := range toks {
		tok := tok
		prop := func(s string) bool {
			for _, tk := range tok.Tokens(s) {
				if tk == "" {
					return false
				}
				if tk != strings.ToLower(tk) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%T: %v", tok, err)
		}
	}
}

func TestQGramTokenizer(t *testing.T) {
	tok := QGramTokenizer{Q: 3, Pad: true}
	got := tok.Tokens("ab")
	// Padded: ##ab$$ -> ##a, #ab, ab$, b$$.
	want := []string{"##a", "#ab", "ab$", "b$$"}
	if len(got) != len(want) {
		t.Fatalf("Tokens(ab) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Tokens(ab)[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if n := len((QGramTokenizer{Q: 3}).Tokens("hello")); n != 3 {
		t.Errorf("unpadded trigrams of hello = %d, want 3", n)
	}
	if got := (QGramTokenizer{Q: 3}).Tokens("ab"); len(got) != 1 || got[0] != "ab" {
		t.Errorf("short string tokens = %v, want [ab]", got)
	}
	if got := (QGramTokenizer{}).Tokens(""); got != nil {
		t.Errorf("empty string tokens = %v, want nil", got)
	}
}

func TestWhitespaceTokenizer(t *testing.T) {
	got := Whitespace{}.Tokens("Hello, World!  foo-bar")
	want := []string{"hello", "world", "foo", "bar"}
	if len(got) != len(want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestWordShingle(t *testing.T) {
	got := WordShingle{N: 2}.Tokens("a b c")
	want := []string{"a b", "b c"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("shingles = %v, want %v", got, want)
	}
	if got := (WordShingle{N: 3}).Tokens("a b"); len(got) != 1 || got[0] != "a b" {
		t.Errorf("short shingles = %v, want [a b]", got)
	}
}
