package textsim

import (
	"testing"
	"unicode/utf8"
)

// FuzzMetrics drives every metric with arbitrary byte strings: no metric
// may panic, return NaN-like garbage, leave [0,1], or break symmetry.
func FuzzMetrics(f *testing.F) {
	f.Add("sonixx wireless speaker", "sonix wirelss speaker")
	f.Add("", "")
	f.Add("a", "")
	f.Add("ab", "ba")
	f.Add("ünïcødé tèxt", "unicode text")
	f.Add("$49.99", "49")
	f.Add("    ", "\t\n")
	f.Add("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", "a")
	metrics := append(All(), GeneralizedJaccard{}, NumericSim{})
	f.Fuzz(func(t *testing.T, a, b string) {
		if !utf8.ValidString(a) || !utf8.ValidString(b) {
			t.Skip()
		}
		if len(a) > 256 || len(b) > 256 {
			t.Skip() // keep quadratic metrics bounded
		}
		for _, m := range metrics {
			s := m.Compare(a, b)
			if s != s { // NaN
				t.Fatalf("%s(%q,%q) = NaN", m.Name(), a, b)
			}
			if s < 0 || s > 1+1e-9 {
				t.Fatalf("%s(%q,%q) = %v outside [0,1]", m.Name(), a, b, s)
			}
			back := m.Compare(b, a)
			if diff := s - back; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s asymmetric: %v vs %v", m.Name(), s, back)
			}
		}
	})
}

// FuzzTokenizers drives the tokenizers with arbitrary input.
func FuzzTokenizers(f *testing.F) {
	f.Add("hello world")
	f.Add("")
	f.Add("a-b_c.d,e")
	f.Add("ünïcødé")
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 1024 {
			t.Skip()
		}
		for _, tok := range []Tokenizer{
			Whitespace{}, QGramTokenizer{Q: 3, Pad: true}, WordShingle{N: 2},
		} {
			for _, w := range tok.Tokens(s) {
				if w == "" {
					t.Fatalf("%T produced an empty token from %q", tok, s)
				}
			}
		}
	})
}

// FuzzSoundex checks the phonetic encoder on arbitrary input.
func FuzzSoundex(f *testing.F) {
	f.Add("Robert")
	f.Add("")
	f.Add("12345")
	f.Add("Pfister-Honeyman")
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 512 {
			t.Skip()
		}
		code := soundexCode(s)
		if code == "" {
			return // no alphabetic content
		}
		if len(code) != 4 {
			t.Fatalf("soundexCode(%q) = %q, want 4 chars", s, code)
		}
		if code[0] < 'A' || code[0] > 'Z' {
			t.Fatalf("soundexCode(%q) = %q, want leading letter", s, code)
		}
		for _, c := range code[1:] {
			if c < '0' || c > '6' {
				t.Fatalf("soundexCode(%q) = %q, want digits 0-6", s, code)
			}
		}
	})
}
