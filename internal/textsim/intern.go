package textsim

import (
	"slices"
	"sync"
	"unicode"
	"unicode/utf8"
)

// Token interning: tokenize each record once, map its tokens to dense
// int32 ids against a shared dictionary, and run the token-set metrics
// on sorted id/count pairs instead of per-pair string maps. The feature
// extractor applies ~10 token metrics per attribute pair; before
// interning, every one of them folded both token slices into freshly
// allocated map[string]int / map[string]struct{} values per pair. The
// interned representation computes the identical integer intersection,
// union and count statistics with merge walks over sorted []int32, which
// allocate nothing.
//
// Scores are bit-identical to the string path by construction: every
// statistic the metrics consume (intersection sizes, multiplicity dot
// products, token counts) is an integer that does not depend on id
// assignment, and the final float expressions are verbatim the same.
// TestTokenSetMetricEquivalence pins this for every metric.

// Dict interns token strings to dense int32 ids. It is safe for
// concurrent use; ids are assigned in first-Intern order, but no score
// depends on id values, so concurrent interning never changes results.
type Dict struct {
	mu  sync.RWMutex
	ids map[string]int32
}

// NewDict returns an empty dictionary.
func NewDict() *Dict { return &Dict{ids: make(map[string]int32)} }

// Len returns the number of interned tokens.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.ids)
}

// Intern returns the id of t, assigning the next dense id on first sight.
func (d *Dict) Intern(t string) int32 {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[t]; ok {
		return id
	}
	id = int32(len(d.ids))
	d.ids[t] = id
	return id
}

// internBytes is Intern for a byte-slice view of a token. The map reads
// convert without allocating; only inserting a brand-new token copies b
// into a string key.
func (d *Dict) internBytes(b []byte) int32 {
	d.mu.RLock()
	id, ok := d.ids[string(b)]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[string(b)]; ok {
		return id
	}
	id = int32(len(d.ids))
	d.ids[string(b)] = id
	return id
}

// TokenSet is the interned form of one attribute value's token multiset:
// everything a TokenSetMetric needs, computed once per record instead of
// once per candidate pair. Build one with Dict.InternValue (or
// InternTokens / InternQGrams directly); reuse via GetTokenSet/Release.
// Two TokenSets are only comparable when interned against the same Dict.
type TokenSet struct {
	// Toks holds the tokens in occurrence order (Monge-Elkan walks it,
	// Identity compares it). The q-gram interning path leaves it empty —
	// gram metrics consume only IDs/Counts.
	Toks []string
	// Distinct holds the distinct tokens in first-seen order, mirroring
	// setSlice — generalized Jaccard's greedy soft matching is order
	// sensitive, so the interned path must present tokens identically.
	Distinct []string
	// DistinctIDs and DistinctCounts are the interned id and multiplicity
	// of each Distinct token, aligned with Distinct (the TF-IDF metrics
	// accumulate weights in first-seen order for determinism).
	DistinctIDs    []int32
	DistinctCounts []int32
	// IDs holds the distinct interned ids in ascending order, and Counts
	// the aligned multiplicities; together they are the multiset.
	IDs    []int32
	Counts []int32

	n     int     // total token count (with duplicates)
	idseq []int32 // per-token ids in occurrence order (Identity walks it)
	taken []bool  // scratch: per-distinct first-seen marks
}

// Len returns the total token count (with duplicates), matching
// len(tokens) on the string path.
func (ts *TokenSet) Len() int { return ts.n }

var tokenSetPool = sync.Pool{New: func() any { return new(TokenSet) }}

// GetTokenSet borrows a TokenSet from the package pool.
func GetTokenSet() *TokenSet { return tokenSetPool.Get().(*TokenSet) }

// Release returns ts to the pool. The caller must not touch ts (or any
// slice read from it) afterwards; the next borrower overwrites it.
func (ts *TokenSet) Release() { tokenSetPool.Put(ts) }

// InternTokens fills ts from a token slice produced by the Whitespace
// tokenizer (or any tokenizer — the ids are dictionary-relative). It
// reuses ts's backing arrays, so a pooled TokenSet reaches zero
// steady-state allocations.
func (d *Dict) InternTokens(toks []string, ts *TokenSet) {
	ts.Toks = append(ts.Toks[:0], toks...)
	ts.idseq = ts.idseq[:0]
	for _, t := range toks {
		ts.idseq = append(ts.idseq, d.Intern(t))
	}
	ts.n = len(toks)
	ts.finishMultiset()
	// Distinct tokens in first-seen order: mark each id's slot in the
	// sorted IDs the first time its token appears.
	w := len(ts.IDs)
	if cap(ts.taken) < w {
		ts.taken = make([]bool, w)
	}
	ts.taken = ts.taken[:w]
	clear(ts.taken)
	ts.Distinct = ts.Distinct[:0]
	ts.DistinctIDs = ts.DistinctIDs[:0]
	ts.DistinctCounts = ts.DistinctCounts[:0]
	for i, t := range ts.Toks {
		slot := searchInt32(ts.IDs, ts.idseq[i])
		if !ts.taken[slot] {
			ts.taken[slot] = true
			ts.Distinct = append(ts.Distinct, t)
			ts.DistinctIDs = append(ts.DistinctIDs, ts.IDs[slot])
			ts.DistinctCounts = append(ts.DistinctCounts, ts.Counts[slot])
		}
	}
}

// finishMultiset sorts a copy of the interned id sequence and run-length
// encodes it into the (id, count) multiset representation.
func (ts *TokenSet) finishMultiset() {
	ts.IDs = append(ts.IDs[:0], ts.idseq...)
	sortInt32(ts.IDs)
	ts.Counts = ts.Counts[:0]
	w := 0
	for r := 0; r < len(ts.IDs); r++ {
		if w > 0 && ts.IDs[r] == ts.IDs[w-1] {
			ts.Counts[w-1]++
			continue
		}
		ts.IDs[w] = ts.IDs[r]
		ts.Counts = append(ts.Counts, 1)
		w++
	}
	ts.IDs = ts.IDs[:w]
}

// InternQGrams interns the q-gram token multiset of s into ts without
// materializing the gram strings: the lowered, padded form of s is built
// once in a pooled byte buffer and each gram is looked up in the
// dictionary through a byte-slice view (the compiler elides the string
// conversion on map reads), so only a gram's first-ever sighting across
// the dictionary's lifetime allocates its key. The gram multiset is
// exactly QGramTokenizer{Q: q, Pad: pad}.Tokens(s) —
// TestInternQGramsMatchesTokens pins the representation — but ts.Toks
// and ts.Distinct are left empty: the gram metrics (QGram, SimonWhite)
// consume only the id/count multiset.
func (d *Dict) InternQGrams(s string, q int, pad bool, ts *TokenSet) {
	if q <= 0 {
		q = 3
	}
	p := 0
	if pad {
		p = q - 1
	}
	sc := getScratch()
	defer putScratch(sc)
	// Build the lowered, padded byte form, tracking rune-start offsets in
	// an int scratch row (offs has one extra entry pointing past the end).
	bs := sc.bs[:0]
	offs := sc.ia[:0]
	for i := 0; i < p; i++ {
		offs = append(offs, len(bs))
		bs = append(bs, '#')
	}
	n0 := len(bs)
	for _, c := range s {
		offs = append(offs, len(bs))
		bs = utf8.AppendRune(bs, unicode.ToLower(c))
	}
	if len(bs) == n0 {
		// Empty input: no padding either, matching the tokenizer's
		// behaviour of padding only non-empty strings.
		bs, offs = bs[:0], offs[:0]
	} else {
		for i := 0; i < p; i++ {
			offs = append(offs, len(bs))
			bs = append(bs, '$')
		}
	}
	offs = append(offs, len(bs))
	sc.bs, sc.ia = bs, offs

	runes := len(offs) - 1
	ts.Toks = ts.Toks[:0]
	ts.Distinct = ts.Distinct[:0]
	ts.DistinctIDs = ts.DistinctIDs[:0]
	ts.DistinctCounts = ts.DistinctCounts[:0]
	ts.idseq = ts.idseq[:0]
	if runes == 0 {
		ts.n = 0
		ts.IDs, ts.Counts = ts.IDs[:0], ts.Counts[:0]
		return
	}
	if runes < q {
		// Shorter than one gram: the whole string is the single token.
		ts.idseq = append(ts.idseq, d.internBytes(bs))
		ts.n = 1
		ts.finishMultiset()
		return
	}
	for i := 0; i+q <= runes; i++ {
		ts.idseq = append(ts.idseq, d.internBytes(bs[offs[i]:offs[i+q]]))
	}
	ts.n = runes - q + 1
	ts.finishMultiset()
}

// InternValue tokenizes s with tok and interns the result into ts,
// routing q-gram tokenizers through the gram-string-free fast path.
func (d *Dict) InternValue(tok Tokenizer, s string, ts *TokenSet) {
	if qt, ok := tok.(QGramTokenizer); ok {
		d.InternQGrams(s, qt.Q, qt.Pad, ts)
		return
	}
	d.InternTokens(tok.Tokens(s), ts)
}

// sortInt32 sorts ascending; small inputs (the common case: one
// attribute value's distinct tokens) use insertion sort, larger ones the
// generic sort — both allocation-free.
func sortInt32(a []int32) {
	if len(a) <= 24 {
		for i := 1; i < len(a); i++ {
			v := a[i]
			j := i - 1
			for j >= 0 && a[j] > v {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = v
		}
		return
	}
	slices.Sort(a)
}

// searchInt32 returns the index of v in ascending-sorted a; v must be
// present.
func searchInt32(a []int32, v int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// intersectDistinct returns |A∩B| over the distinct ids of two sets.
func intersectDistinct(a, b *TokenSet) int {
	i, j, n := 0, 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		switch {
		case a.IDs[i] < b.IDs[j]:
			i++
		case a.IDs[i] > b.IDs[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// multisetL1 returns the L1 distance Σ|count_a(t) - count_b(t)| between
// the two multisets.
func multisetL1(a, b *TokenSet) int {
	diff := 0
	i, j := 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		switch {
		case a.IDs[i] < b.IDs[j]:
			diff += int(a.Counts[i])
			i++
		case a.IDs[i] > b.IDs[j]:
			diff += int(b.Counts[j])
			j++
		default:
			diff += abs(int(a.Counts[i]) - int(b.Counts[j]))
			i++
			j++
		}
	}
	for ; i < len(a.IDs); i++ {
		diff += int(a.Counts[i])
	}
	for ; j < len(b.IDs); j++ {
		diff += int(b.Counts[j])
	}
	return diff
}

// multisetIntersect returns Σ min(count_a(t), count_b(t)), the multiset
// intersection size.
func multisetIntersect(a, b *TokenSet) int {
	inter := 0
	i, j := 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		switch {
		case a.IDs[i] < b.IDs[j]:
			i++
		case a.IDs[i] > b.IDs[j]:
			j++
		default:
			inter += min(int(a.Counts[i]), int(b.Counts[j]))
			i++
			j++
		}
	}
	return inter
}

// findInt32 returns the index of v in ascending-sorted a, or -1.
func findInt32(a []int32, v int32) int {
	lo := searchInt32(a, v)
	if lo < len(a) && a[lo] == v {
		return lo
	}
	return -1
}

// TokenSetMetric is the interned fast path: metrics that can score a
// pair from the two records' interned TokenSets, with no per-pair token
// processing at all. CompareTokenSets must be bit-identical to Compare
// when the sets were interned from InternTokenizer()'s tokens of the raw
// values — TestTokenSetMetricEquivalence pins every implementation.
type TokenSetMetric interface {
	Metric
	// InternTokenizer returns the tokenizer whose token multiset
	// CompareTokenSets consumes; the batch extractor interns one TokenSet
	// per (attribute value, tokenizer), shared by all metrics that
	// declare that tokenizer.
	InternTokenizer() Tokenizer
	CompareTokenSets(a, b *TokenSet) float64
}

// InternTokenizer implements TokenSetMetric for the word-token metrics.
func (Jaccard) InternTokenizer() Tokenizer             { return Whitespace{} }
func (Dice) InternTokenizer() Tokenizer                { return Whitespace{} }
func (Cosine) InternTokenizer() Tokenizer              { return Whitespace{} }
func (Overlap) InternTokenizer() Tokenizer             { return Whitespace{} }
func (MatchingCoefficient) InternTokenizer() Tokenizer { return Whitespace{} }
func (BlockDistance) InternTokenizer() Tokenizer       { return Whitespace{} }
func (Euclidean) InternTokenizer() Tokenizer           { return Whitespace{} }
func (MongeElkan) InternTokenizer() Tokenizer          { return Whitespace{} }
func (GeneralizedJaccard) InternTokenizer() Tokenizer  { return Whitespace{} }
func (Identity) InternTokenizer() Tokenizer            { return Whitespace{} }

// InternTokenizer implements TokenSetMetric: the gram metrics consume
// character q-gram profiles rather than word tokens.
func (QGram) InternTokenizer() Tokenizer      { return QGramTokenizer{Q: 3, Pad: true} }
func (SimonWhite) InternTokenizer() Tokenizer { return QGramTokenizer{Q: 2, Pad: false} }

// CompareTokenSets implements TokenSetMetric. The normalized forms
// Identity.Compare checks are equal iff the token sequences are equal
// elementwise (tokens never contain spaces, so the space-join is
// injective); the interned id sequence decides that without touching
// the strings.
func (Identity) CompareTokenSets(a, b *TokenSet) float64 {
	if len(a.idseq) != len(b.idseq) {
		return 0
	}
	for i, id := range a.idseq {
		if id != b.idseq[i] {
			return 0
		}
	}
	return 1
}

// CompareTokenSets implements TokenSetMetric over padded trigram
// profiles; the L1 statistic is an integer, so the merge walk is
// bit-identical to the historical map fold.
func (QGram) CompareTokenSets(a, b *TokenSet) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	return 1 - float64(multisetL1(a, b))/float64(a.Len()+b.Len())
}

// CompareTokenSets implements TokenSetMetric over unpadded bigram
// profiles (quantitative Dice).
func (SimonWhite) CompareTokenSets(a, b *TokenSet) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	return 2 * float64(multisetIntersect(a, b)) / float64(a.Len()+b.Len())
}

// CompareTokenSets implements TokenSetMetric.
func (Jaccard) CompareTokenSets(a, b *TokenSet) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	inter := intersectDistinct(a, b)
	union := len(a.IDs) + len(b.IDs) - inter
	return float64(inter) / float64(union)
}

// CompareTokenSets implements TokenSetMetric.
func (Dice) CompareTokenSets(a, b *TokenSet) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	inter := intersectDistinct(a, b)
	return 2 * float64(inter) / float64(len(a.IDs)+len(b.IDs))
}

// CompareTokenSets implements TokenSetMetric.
func (Overlap) CompareTokenSets(a, b *TokenSet) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	inter := intersectDistinct(a, b)
	return float64(inter) / float64(min(len(a.IDs), len(b.IDs)))
}

// CompareTokenSets implements TokenSetMetric.
func (MatchingCoefficient) CompareTokenSets(a, b *TokenSet) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	inter := intersectDistinct(a, b)
	return float64(inter) / float64(max(len(a.IDs), len(b.IDs)))
}

// CompareTokenSets implements TokenSetMetric. The dot product and norms
// are integer sums, so accumulating them over the sorted merge instead
// of map iteration order changes nothing: integer-valued float64 sums
// are exact and therefore order-independent.
func (Cosine) CompareTokenSets(a, b *TokenSet) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	var dot, na, nb float64
	i, j := 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		switch {
		case a.IDs[i] < b.IDs[j]:
			na += float64(int(a.Counts[i]) * int(a.Counts[i]))
			i++
		case a.IDs[i] > b.IDs[j]:
			nb += float64(int(b.Counts[j]) * int(b.Counts[j]))
			j++
		default:
			dot += float64(int(a.Counts[i]) * int(b.Counts[j]))
			na += float64(int(a.Counts[i]) * int(a.Counts[i]))
			nb += float64(int(b.Counts[j]) * int(b.Counts[j]))
			i++
			j++
		}
	}
	for ; i < len(a.IDs); i++ {
		na += float64(int(a.Counts[i]) * int(a.Counts[i]))
	}
	for ; j < len(b.IDs); j++ {
		nb += float64(int(b.Counts[j]) * int(b.Counts[j]))
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (sqrt(na) * sqrt(nb))
}

// CompareTokenSets implements TokenSetMetric.
func (BlockDistance) CompareTokenSets(a, b *TokenSet) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	return 1 - float64(multisetL1(a, b))/float64(a.Len()+b.Len())
}

// CompareTokenSets implements TokenSetMetric.
func (Euclidean) CompareTokenSets(a, b *TokenSet) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	var dd, na, nb float64
	i, j := 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		switch {
		case a.IDs[i] < b.IDs[j]:
			x := int(a.Counts[i])
			dd += float64(x * x)
			na += float64(x * x)
			i++
		case a.IDs[i] > b.IDs[j]:
			y := int(b.Counts[j])
			dd += float64(y * y)
			nb += float64(y * y)
			j++
		default:
			x, y := int(a.Counts[i]), int(b.Counts[j])
			d := x - y
			dd += float64(d * d)
			na += float64(x * x)
			nb += float64(y * y)
			i++
			j++
		}
	}
	for ; i < len(a.IDs); i++ {
		x := int(a.Counts[i])
		dd += float64(x * x)
		na += float64(x * x)
	}
	for ; j < len(b.IDs); j++ {
		y := int(b.Counts[j])
		dd += float64(y * y)
		nb += float64(y * y)
	}
	denom := sqrt(na) + sqrt(nb)
	if denom == 0 {
		return 1
	}
	return 1 - sqrt(dd)/denom
}

// CompareTokenSets implements TokenSetMetric. Monge-Elkan consumes the
// token strings themselves (its inner metric is Jaro-Winkler), so the
// interned win here is only the amortized tokenization.
func (MongeElkan) CompareTokenSets(a, b *TokenSet) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	return (mongeElkanDirected(a.Toks, b.Toks) + mongeElkanDirected(b.Toks, a.Toks)) / 2
}

// CompareTokenSets implements TokenSetMetric. The greedy soft matching
// walks Distinct, which preserves the string path's first-seen order.
func (g GeneralizedJaccard) CompareTokenSets(a, b *TokenSet) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	return (softJaccardDirected(a.Distinct, b.Distinct) + softJaccardDirected(b.Distinct, a.Distinct)) / 2
}
