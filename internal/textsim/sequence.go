package textsim

// Subsequence / substring / q-gram profile metrics.

// LongestCommonSubsequence is LCS length normalized by the longer string.
type LongestCommonSubsequence struct{}

// Name implements Metric.
func (LongestCommonSubsequence) Name() string { return "lcs_subsequence" }

// Compare implements Metric.
func (LongestCommonSubsequence) Compare(a, b string) float64 {
	sc := getScratch()
	defer putScratch(sc)
	sc.ra = runesInto(sc.ra, a)
	sc.rb = runesInto(sc.rb, b)
	ra, rb := sc.ra, sc.rb
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	sc.ia = growInts(sc.ia, len(rb)+1)
	sc.ib = growInts(sc.ib, len(rb)+1)
	prev, cur := sc.ia, sc.ib
	clear(prev)
	cur[0] = 0
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			if ra[i-1] == rb[j-1] {
				cur[j] = prev[j-1] + 1
			} else {
				cur[j] = max(prev[j], cur[j-1])
			}
		}
		prev, cur = cur, prev
	}
	return float64(prev[len(rb)]) / float64(max(len(ra), len(rb)))
}

// LongestCommonSubstring is the length of the longest contiguous shared
// run normalized by the longer string.
type LongestCommonSubstring struct{}

// Name implements Metric.
func (LongestCommonSubstring) Name() string { return "lcs_substring" }

// Compare implements Metric.
func (LongestCommonSubstring) Compare(a, b string) float64 {
	sc := getScratch()
	defer putScratch(sc)
	sc.ra = runesInto(sc.ra, a)
	sc.rb = runesInto(sc.rb, b)
	ra, rb := sc.ra, sc.rb
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	sc.ia = growInts(sc.ia, len(rb)+1)
	sc.ib = growInts(sc.ib, len(rb)+1)
	prev, cur := sc.ia, sc.ib
	clear(prev)
	cur[0] = 0
	best := 0
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			if ra[i-1] == rb[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return float64(best) / float64(max(len(ra), len(rb)))
}

// QGram compares padded character trigram profiles: 1 minus the L1
// distance between the profiles divided by the total number of trigrams.
type QGram struct{}

// Name implements Metric.
func (QGram) Name() string { return "qgram" }

// Compare implements Metric.
func (QGram) Compare(a, b string) float64 {
	tok := QGramTokenizer{Q: 3, Pad: true}
	ta, tb := tok.Tokens(a), tok.Tokens(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	ca, cb := counts(ta), counts(tb)
	diff := 0
	for g, na := range ca {
		diff += abs(na - cb[g])
	}
	for g, nb := range cb {
		if _, ok := ca[g]; !ok {
			diff += nb
		}
	}
	return 1 - float64(diff)/float64(len(ta)+len(tb))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
