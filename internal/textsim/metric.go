package textsim

// Metric is a normalized string-similarity function. Compare returns a
// score in [0, 1]; 1 means identical under the metric. Implementations are
// stateless values, safe for concurrent use.
type Metric interface {
	Name() string
	Compare(a, b string) float64
}

// Identity is exact (case-insensitive, trimmed) string equality: 1 or 0.
// It is one of the three metrics supported by the rule-based learner (§3).
type Identity struct{}

// Name implements Metric.
func (Identity) Name() string { return "identity" }

// Compare implements Metric.
func (Identity) Compare(a, b string) float64 {
	if normalizeIdentity(a) == normalizeIdentity(b) {
		return 1
	}
	return 0
}

func normalizeIdentity(s string) string {
	tokens := Whitespace{}.Tokens(s)
	out := make([]byte, 0, len(s))
	for i, t := range tokens {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, t...)
	}
	return string(out)
}

// All returns the 21 similarity functions applied to every aligned
// attribute pair by the feature extractor (§3), in a fixed, documented
// order. Feature dimension i*21+k corresponds to attribute pair i and
// metric All()[k].
func All() []Metric {
	return []Metric{
		Identity{},
		Levenshtein{},
		DamerauLevenshtein{},
		Jaro{},
		JaroWinkler{},
		NeedlemanWunsch{},
		SmithWaterman{},
		SmithWatermanGotoh{},
		LongestCommonSubsequence{},
		LongestCommonSubstring{},
		QGram{},
		Jaccard{},
		Dice{},
		SimonWhite{},
		Cosine{},
		Overlap{},
		MatchingCoefficient{},
		BlockDistance{},
		Euclidean{},
		MongeElkan{},
		Soundex{},
	}
}

// ForRules returns the three metrics the rule-based learner supports (§3):
// equality (identity), Jaro-Winkler and Jaccard.
func ForRules() []Metric {
	return []Metric{Identity{}, JaroWinkler{}, Jaccard{}}
}

// ByName returns the metric with the given Name from All() plus
// GeneralizedJaccard, or nil if unknown.
func ByName(name string) Metric {
	for _, m := range All() {
		if m.Name() == name {
			return m
		}
	}
	if g := (GeneralizedJaccard{}); g.Name() == name {
		return g
	}
	return nil
}
