package textsim

import (
	"encoding/json"
	"fmt"
)

// corpusState is the serialized form of a Corpus. The document-frequency
// table is part of a trained model: corpus-aware metrics (TF-IDF cosine,
// SoftTFIDF) score deployment-time pairs with the *training* statistics,
// which cannot be recomputed from the fresh tables.
type corpusState struct {
	Docs int            `json:"docs"`
	DF   map[string]int `json:"df"`
}

// MarshalJSON implements json.Marshaler so a Corpus can travel inside a
// saved model artifact.
func (c *Corpus) MarshalJSON() ([]byte, error) {
	return json.Marshal(corpusState{Docs: c.docs, DF: c.df})
}

// UnmarshalJSON implements json.Unmarshaler, restoring the statistics a
// MarshalJSON'd corpus carried.
func (c *Corpus) UnmarshalJSON(data []byte) error {
	var st corpusState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("textsim: decoding corpus: %w", err)
	}
	if st.Docs < 0 {
		return fmt.Errorf("textsim: decoding corpus: negative document count %d", st.Docs)
	}
	c.docs = st.Docs
	c.df = st.DF
	if c.df == nil {
		c.df = map[string]int{}
	}
	c.tok = Whitespace{}
	// A decoded corpus must be as ready as a built one: the precomputed
	// IDF table is derived state, rebuilt here rather than persisted.
	c.finalize()
	return nil
}
