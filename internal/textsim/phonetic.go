package textsim

import "strings"

// Soundex compares American Soundex codes of the two strings' first words
// with Jaro-Winkler, mirroring the Simmetrics SoundexSimilarity wrapper.
// It is forgiving of spelling variants that preserve pronunciation
// ("Kopcke" vs "Koepcke").
type Soundex struct{}

// Name implements Metric.
func (Soundex) Name() string { return "soundex" }

// Compare implements Metric.
func (Soundex) Compare(a, b string) float64 {
	ca, cb := soundexCode(a), soundexCode(b)
	if ca == "" && cb == "" {
		return 1
	}
	if ca == "" || cb == "" {
		return 0
	}
	return JaroWinkler{}.Compare(ca, cb)
}

// soundexCode computes the 4-character American Soundex code of the first
// alphabetic word in s; non-ASCII letters are skipped.
func soundexCode(s string) string {
	s = strings.ToUpper(s)
	var first byte
	var rest []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 'A' || c > 'Z' {
			if first != 0 {
				break // stop at end of first word
			}
			continue
		}
		if first == 0 {
			first = c
		} else {
			rest = append(rest, c)
		}
	}
	if first == 0 {
		return ""
	}
	code := []byte{first}
	prev := soundexDigit(first)
	for _, c := range rest {
		d := soundexDigit(c)
		switch {
		case d == 0:
			// h, w do not reset the previous digit; vowels do.
			if c != 'H' && c != 'W' {
				prev = 0
			}
		case d != prev:
			code = append(code, '0'+d)
			prev = d
		}
		if len(code) == 4 {
			break
		}
	}
	for len(code) < 4 {
		code = append(code, '0')
	}
	return string(code)
}

func soundexDigit(c byte) byte {
	switch c {
	case 'B', 'F', 'P', 'V':
		return 1
	case 'C', 'G', 'J', 'K', 'Q', 'S', 'X', 'Z':
		return 2
	case 'D', 'T':
		return 3
	case 'L':
		return 4
	case 'M', 'N':
		return 5
	case 'R':
		return 6
	}
	return 0
}
