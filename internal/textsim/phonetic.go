package textsim

import "unicode"

// Soundex compares American Soundex codes of the two strings' first words
// with Jaro-Winkler, mirroring the Simmetrics SoundexSimilarity wrapper.
// It is forgiving of spelling variants that preserve pronunciation
// ("Kopcke" vs "Koepcke").
type Soundex struct{}

// Name implements Metric.
func (Soundex) Name() string { return "soundex" }

// Compare implements Metric.
func (Soundex) Compare(a, b string) float64 {
	ca, oka := soundexCode4(a)
	cb, okb := soundexCode4(b)
	if !oka && !okb {
		return 1
	}
	if !oka || !okb {
		return 0
	}
	return JaroWinkler{}.Compare(string(ca[:]), string(cb[:]))
}

// InternTokenizer implements TokenSetMetric: the "token multiset" of a
// value under Soundex is its single phonetic code (or nothing when the
// value has no alphabetic content), so the batch extractor computes each
// record's code once instead of once per candidate pair.
func (Soundex) InternTokenizer() Tokenizer { return soundexTokenizer{} }

// CompareTokenSets implements TokenSetMetric.
func (Soundex) CompareTokenSets(a, b *TokenSet) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	return JaroWinkler{}.Compare(a.Toks[0], b.Toks[0])
}

// soundexTokenizer emits the Soundex code of a value as its only token.
type soundexTokenizer struct{}

// Tokens implements Tokenizer.
func (soundexTokenizer) Tokens(s string) []string {
	c, ok := soundexCode4(s)
	if !ok {
		return nil
	}
	return []string{string(c[:])}
}

// soundexCode computes the 4-character American Soundex code of the first
// alphabetic word in s, or "" when there is none.
func soundexCode(s string) string {
	c, ok := soundexCode4(s)
	if !ok {
		return ""
	}
	return string(c[:])
}

// soundexCode4 is the allocation-free form of soundexCode. It upper-cases
// per rune while decoding — equivalent to walking the bytes of
// strings.ToUpper(s), because ToUpper applies unicode.ToUpper per rune
// and every non-ASCII result falls outside A-Z either way — and encodes
// into a fixed 4-byte buffer. Non-ASCII-alphabetic runes are skipped
// before the first letter and terminate the word after it.
func soundexCode4(s string) (code [4]byte, ok bool) {
	n := 0
	var prev byte
	for _, r := range s {
		r = unicode.ToUpper(r)
		if r < 'A' || r > 'Z' {
			if n > 0 {
				break // stop at end of first word
			}
			continue
		}
		c := byte(r)
		if n == 0 {
			code[0] = c
			n = 1
			prev = soundexDigit(c)
			continue
		}
		d := soundexDigit(c)
		switch {
		case d == 0:
			// h, w do not reset the previous digit; vowels do.
			if c != 'H' && c != 'W' {
				prev = 0
			}
		case d != prev:
			code[n] = '0' + d
			n++
			prev = d
		}
		if n == 4 {
			break
		}
	}
	if n == 0 {
		return code, false
	}
	for ; n < 4; n++ {
		code[n] = '0'
	}
	return code, true
}

func soundexDigit(c byte) byte {
	switch c {
	case 'B', 'F', 'P', 'V':
		return 1
	case 'C', 'G', 'J', 'K', 'Q', 'S', 'X', 'Z':
		return 2
	case 'D', 'T':
		return 3
	case 'L':
		return 4
	case 'M', 'N':
		return 5
	case 'R':
		return 6
	}
	return 0
}
