package textsim

import (
	"math"
	"strconv"
	"strings"
)

// Corpus holds document-frequency statistics over a record collection,
// enabling the corpus-weighted metrics (TF-IDF cosine, SoftTFIDF) that
// EM systems like Magellan offer beyond the 21 per-pair functions. Build
// one with NewCorpus; it is immutable afterwards and safe for concurrent
// use.
type Corpus struct {
	docs int
	df   map[string]int
	tok  Tokenizer
}

// NewCorpus indexes the given documents (typically the concatenated
// attribute values of every record on both sides of an EM instance).
func NewCorpus(docs []string) *Corpus {
	c := &Corpus{df: make(map[string]int), tok: Whitespace{}}
	for _, d := range docs {
		c.docs++
		seen := map[string]struct{}{}
		for _, t := range c.tok.Tokens(d) {
			if _, ok := seen[t]; ok {
				continue
			}
			seen[t] = struct{}{}
			c.df[t]++
		}
	}
	return c
}

// NumDocs returns the number of indexed documents.
func (c *Corpus) NumDocs() int { return c.docs }

// IDF returns the smoothed inverse document frequency of a token.
// Unseen tokens get the maximum IDF.
func (c *Corpus) IDF(token string) float64 {
	return math.Log(float64(c.docs+1) / float64(c.df[token]+1))
}

// TFIDFCosine is cosine similarity between TF-IDF-weighted token
// vectors: tokens frequent across the corpus (stop words, shared brand
// names) contribute little, rare discriminative tokens dominate.
type TFIDFCosine struct {
	Corpus *Corpus
}

// Name implements Metric.
func (TFIDFCosine) Name() string { return "tfidf_cosine" }

// Compare implements Metric.
func (m TFIDFCosine) Compare(a, b string) float64 {
	if m.Corpus == nil {
		return Cosine{}.Compare(a, b)
	}
	wa := m.weights(a)
	wb := m.weights(b)
	if len(wa) == 0 && len(wb) == 0 {
		return 1
	}
	if len(wa) == 0 || len(wb) == 0 {
		return 0
	}
	var dot, na, nb float64
	for t, x := range wa {
		dot += x * wb[t]
		na += x * x
	}
	for _, y := range wb {
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

func (m TFIDFCosine) weights(s string) map[string]float64 {
	counts := map[string]float64{}
	for _, t := range (Whitespace{}).Tokens(s) {
		counts[t]++
	}
	for t := range counts {
		counts[t] *= m.Corpus.IDF(t)
	}
	return counts
}

// SoftTFIDF is Cohen, Ravikumar & Fienberg's hybrid metric: TF-IDF
// weighting over tokens matched softly by Jaro-Winkler at threshold θ
// (0.9 in the original paper), symmetrized. It scores typo'd rare tokens
// almost as highly as exact ones.
type SoftTFIDF struct {
	Corpus    *Corpus
	Threshold float64
}

// Name implements Metric.
func (SoftTFIDF) Name() string { return "soft_tfidf" }

// Compare implements Metric.
func (m SoftTFIDF) Compare(a, b string) float64 {
	if m.Corpus == nil {
		return GeneralizedJaccard{}.Compare(a, b)
	}
	th := m.Threshold
	if th == 0 {
		th = 0.9
	}
	ta := setSlice((Whitespace{}).Tokens(a))
	tb := setSlice((Whitespace{}).Tokens(b))
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	return (m.directed(ta, tb, th) + m.directed(tb, ta, th)) / 2
}

func (m SoftTFIDF) directed(ta, tb []string, th float64) float64 {
	jw := JaroWinkler{}
	var num, denom float64
	for _, x := range ta {
		wx := m.Corpus.IDF(x)
		denom += wx * wx
		best, bestTok := 0.0, ""
		for _, y := range tb {
			if s := jw.Compare(x, y); s > best {
				best, bestTok = s, y
			}
		}
		if best >= th {
			num += wx * m.Corpus.IDF(bestTok) * best
		}
	}
	var denomB float64
	for _, y := range tb {
		wy := m.Corpus.IDF(y)
		denomB += wy * wy
	}
	if denom == 0 || denomB == 0 {
		return 0
	}
	return num / (math.Sqrt(denom) * math.Sqrt(denomB))
}

// NumericSim compares two numeric strings by relative difference:
// 1 − |a−b| / max(|a|, |b|), clamped to [0,1]; non-numeric inputs fall
// back to Levenshtein. Price and measurement attributes benefit from it
// where string metrics see "49.99" vs "47.50" as near-disjoint.
type NumericSim struct{}

// Name implements Metric.
func (NumericSim) Name() string { return "numeric" }

// Compare implements Metric.
func (NumericSim) Compare(a, b string) float64 {
	va, oka := parseNumeric(a)
	vb, okb := parseNumeric(b)
	if !oka || !okb {
		return Levenshtein{}.Compare(a, b)
	}
	if va == vb {
		return 1
	}
	den := math.Max(math.Abs(va), math.Abs(vb))
	if den == 0 {
		return 1
	}
	sim := 1 - math.Abs(va-vb)/den
	if sim < 0 {
		return 0
	}
	return sim
}

func parseNumeric(s string) (float64, bool) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), "$"))
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

// Extended returns the corpus-aware and numeric metrics beyond the
// standard 21, bound to the given corpus. The feature extractor accepts
// them via NewExtractorWithMetrics.
func Extended(c *Corpus) []Metric {
	return []Metric{
		TFIDFCosine{Corpus: c},
		SoftTFIDF{Corpus: c},
		NumericSim{},
		GeneralizedJaccard{},
	}
}
