package textsim

import (
	"math"
	"strconv"
	"strings"
)

// Corpus holds document-frequency statistics over a record collection,
// enabling the corpus-weighted metrics (TF-IDF cosine, SoftTFIDF) that
// EM systems like Magellan offer beyond the 21 per-pair functions. Build
// one with NewCorpus; it is immutable afterwards and safe for concurrent
// use.
//
// The IDF table is precomputed once, when the corpus is built (or
// decoded from a model artifact): corpus statistics never change after
// construction, so recomputing log((N+1)/(df+1)) per token per pair —
// as the metrics historically did — was pure hot-path waste. IDF is now
// one map lookup. The precomputed values use the verbatim historical
// expression, so scores are bit-identical.
type Corpus struct {
	docs int
	df   map[string]int
	tok  Tokenizer

	idf    map[string]float64 // precomputed per-token IDF
	unseen float64            // IDF of a token absent from the corpus
}

// NewCorpus indexes the given documents (typically the concatenated
// attribute values of every record on both sides of an EM instance).
func NewCorpus(docs []string) *Corpus {
	c := &Corpus{df: make(map[string]int), tok: Whitespace{}}
	seen := map[string]struct{}{}
	for _, d := range docs {
		c.docs++
		clear(seen)
		for _, t := range c.tok.Tokens(d) {
			if _, ok := seen[t]; ok {
				continue
			}
			seen[t] = struct{}{}
			c.df[t]++
		}
	}
	c.finalize()
	return c
}

// finalize precomputes the IDF table from the document frequencies. It
// must be called whenever docs/df are (re)established — construction and
// artifact decoding — and never afterwards: the corpus is immutable once
// built, which is what makes the table safe to share lock-free across
// every scoring goroutine.
func (c *Corpus) finalize() {
	c.idf = make(map[string]float64, len(c.df))
	for t, df := range c.df {
		c.idf[t] = math.Log(float64(c.docs+1) / float64(df+1))
	}
	c.unseen = math.Log(float64(c.docs+1) / float64(0+1))
}

// NumDocs returns the number of indexed documents.
func (c *Corpus) NumDocs() int { return c.docs }

// IDF returns the smoothed inverse document frequency of a token.
// Unseen tokens get the maximum IDF.
func (c *Corpus) IDF(token string) float64 {
	if v, ok := c.idf[token]; ok {
		return v
	}
	return c.unseen
}

// TFIDFCosine is cosine similarity between TF-IDF-weighted token
// vectors: tokens frequent across the corpus (stop words, shared brand
// names) contribute little, rare discriminative tokens dominate.
type TFIDFCosine struct {
	Corpus *Corpus
}

// Name implements Metric.
func (TFIDFCosine) Name() string { return "tfidf_cosine" }

// Compare implements Metric.
//
// The weighted dot product and norms accumulate in the tokens'
// first-seen order. The historical implementation folded the weights
// into maps and accumulated in map iteration order, which Go randomizes
// per call — and because TF-IDF weights are not integers, the
// floating-point sums picked up different last-bit rounding on every
// invocation: the one metric in the suite whose score was not a pure
// function of its inputs. Deterministic accumulation order fixes that
// (TestTFIDFCosineDeterministic), and first-seen order is what the
// interned CompareTokenSets path reproduces.
func (m TFIDFCosine) Compare(a, b string) float64 {
	if m.Corpus == nil {
		return Cosine{}.Compare(a, b)
	}
	ta := (Whitespace{}).Tokens(a)
	tb := (Whitespace{}).Tokens(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	da, ca := distinctCounts(ta)
	db, cb := distinctCounts(tb)
	wb := make(map[string]float64, len(db))
	for k, t := range db {
		wb[t] = float64(cb[k]) * m.Corpus.IDF(t)
	}
	var dot, na, nb float64
	for k, t := range da {
		x := float64(ca[k]) * m.Corpus.IDF(t)
		na += x * x
		if y, ok := wb[t]; ok {
			dot += x * y
		}
	}
	for k, t := range db {
		y := float64(cb[k]) * m.Corpus.IDF(t)
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// InternTokenizer implements TokenSetMetric.
func (TFIDFCosine) InternTokenizer() Tokenizer { return Whitespace{} }

// CompareTokenSets implements TokenSetMetric: identical accumulation
// order to Compare (first-seen distinct tokens), with the b-side weight
// found through a binary search on interned ids instead of a map.
func (m TFIDFCosine) CompareTokenSets(a, b *TokenSet) float64 {
	if m.Corpus == nil {
		return Cosine{}.CompareTokenSets(a, b)
	}
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	var dot, na, nb float64
	for k, t := range a.Distinct {
		w := m.Corpus.IDF(t)
		x := float64(a.DistinctCounts[k]) * w
		na += x * x
		if j := findInt32(b.IDs, a.DistinctIDs[k]); j >= 0 {
			// Same token string on both sides, hence the same IDF.
			y := float64(b.Counts[j]) * w
			dot += x * y
		}
	}
	for k, t := range b.Distinct {
		y := float64(b.DistinctCounts[k]) * m.Corpus.IDF(t)
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// distinctCounts returns the distinct tokens in first-seen order and
// their multiplicities.
func distinctCounts(tokens []string) ([]string, []int) {
	idx := make(map[string]int, len(tokens))
	out := make([]string, 0, len(tokens))
	cnt := make([]int, 0, len(tokens))
	for _, t := range tokens {
		if i, ok := idx[t]; ok {
			cnt[i]++
			continue
		}
		idx[t] = len(out)
		out = append(out, t)
		cnt = append(cnt, 1)
	}
	return out, cnt
}

// SoftTFIDF is Cohen, Ravikumar & Fienberg's hybrid metric: TF-IDF
// weighting over tokens matched softly by Jaro-Winkler at threshold θ
// (0.9 in the original paper), symmetrized. It scores typo'd rare tokens
// almost as highly as exact ones.
type SoftTFIDF struct {
	Corpus    *Corpus
	Threshold float64
}

// Name implements Metric.
func (SoftTFIDF) Name() string { return "soft_tfidf" }

// Compare implements Metric.
func (m SoftTFIDF) Compare(a, b string) float64 {
	if m.Corpus == nil {
		return GeneralizedJaccard{}.Compare(a, b)
	}
	th := m.Threshold
	if th == 0 {
		th = 0.9
	}
	ta := setSlice((Whitespace{}).Tokens(a))
	tb := setSlice((Whitespace{}).Tokens(b))
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	return (m.directed(ta, tb, th) + m.directed(tb, ta, th)) / 2
}

// InternTokenizer implements TokenSetMetric.
func (SoftTFIDF) InternTokenizer() Tokenizer { return Whitespace{} }

// CompareTokenSets implements TokenSetMetric. The directed walks consume
// the distinct tokens in first-seen order, which is exactly what
// setSlice produced on the string path, so scores are bit-identical.
func (m SoftTFIDF) CompareTokenSets(a, b *TokenSet) float64 {
	if m.Corpus == nil {
		return GeneralizedJaccard{}.CompareTokenSets(a, b)
	}
	th := m.Threshold
	if th == 0 {
		th = 0.9
	}
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	return (m.directed(a.Distinct, b.Distinct, th) + m.directed(b.Distinct, a.Distinct, th)) / 2
}

func (m SoftTFIDF) directed(ta, tb []string, th float64) float64 {
	jw := JaroWinkler{}
	var num, denom float64
	for _, x := range ta {
		wx := m.Corpus.IDF(x)
		denom += wx * wx
		best, bestTok := 0.0, ""
		for _, y := range tb {
			if s := jw.Compare(x, y); s > best {
				best, bestTok = s, y
			}
		}
		if best >= th {
			num += wx * m.Corpus.IDF(bestTok) * best
		}
	}
	var denomB float64
	for _, y := range tb {
		wy := m.Corpus.IDF(y)
		denomB += wy * wy
	}
	if denom == 0 || denomB == 0 {
		return 0
	}
	return num / (math.Sqrt(denom) * math.Sqrt(denomB))
}

// NumericSim compares two numeric strings by relative difference:
// 1 − |a−b| / max(|a|, |b|), clamped to [0,1]; non-numeric inputs fall
// back to Levenshtein. Price and measurement attributes benefit from it
// where string metrics see "49.99" vs "47.50" as near-disjoint.
type NumericSim struct{}

// Name implements Metric.
func (NumericSim) Name() string { return "numeric" }

// Compare implements Metric.
func (NumericSim) Compare(a, b string) float64 {
	va, oka := parseNumeric(a)
	vb, okb := parseNumeric(b)
	if !oka || !okb {
		return Levenshtein{}.Compare(a, b)
	}
	if va == vb {
		return 1
	}
	den := math.Max(math.Abs(va), math.Abs(vb))
	if den == 0 {
		return 1
	}
	sim := 1 - math.Abs(va-vb)/den
	if sim < 0 {
		return 0
	}
	return sim
}

func parseNumeric(s string) (float64, bool) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), "$"))
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

// Extended returns the corpus-aware and numeric metrics beyond the
// standard 21, bound to the given corpus. The feature extractor accepts
// them via NewExtractorWithMetrics.
func Extended(c *Corpus) []Metric {
	return []Metric{
		TFIDFCosine{Corpus: c},
		SoftTFIDF{Corpus: c},
		NumericSim{},
		GeneralizedJaccard{},
	}
}
