package textsim

import "math"

// TokenMetric is the fast path for word-token metrics: the caller
// tokenizes each attribute value once and reuses the tokens across every
// metric that can consume them. The feature extractor applies 21 metrics
// per attribute pair; without this, each of the ~10 token-set metrics
// re-tokenizes both strings.
//
// CompareTokens must equal Compare on the same inputs when the tokens
// come from the Whitespace tokenizer — TestTokenMetricEquivalence pins
// that down for every implementation.
type TokenMetric interface {
	Metric
	CompareTokens(ta, tb []string) float64
}

// CompareTokens implements TokenMetric.
func (Jaccard) CompareTokens(ta, tb []string) float64 { return JaccardTokens(ta, tb) }

// CompareTokens implements TokenMetric.
func (Dice) CompareTokens(ta, tb []string) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	sa, sb := set(ta), set(tb)
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	return 2 * float64(inter) / float64(len(sa)+len(sb))
}

// CompareTokens implements TokenMetric.
func (Cosine) CompareTokens(ta, tb []string) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	return cosineCounts(counts(ta), counts(tb))
}

// CompareTokens implements TokenMetric.
func (Overlap) CompareTokens(ta, tb []string) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	sa, sb := set(ta), set(tb)
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	return float64(inter) / float64(min(len(sa), len(sb)))
}

// CompareTokens implements TokenMetric.
func (MatchingCoefficient) CompareTokens(ta, tb []string) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	sa, sb := set(ta), set(tb)
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	return float64(inter) / float64(max(len(sa), len(sb)))
}

// CompareTokens implements TokenMetric.
func (BlockDistance) CompareTokens(ta, tb []string) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	ca, cb := counts(ta), counts(tb)
	diff := 0
	for t, x := range ca {
		diff += abs(x - cb[t])
	}
	for t, y := range cb {
		if _, ok := ca[t]; !ok {
			diff += y
		}
	}
	return 1 - float64(diff)/float64(len(ta)+len(tb))
}

// CompareTokens implements TokenMetric.
func (Euclidean) CompareTokens(ta, tb []string) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	return euclideanCounts(counts(ta), counts(tb))
}

// CompareTokens implements TokenMetric.
func (MongeElkan) CompareTokens(ta, tb []string) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	return (mongeElkanDirected(ta, tb) + mongeElkanDirected(tb, ta)) / 2
}

// CompareTokens implements TokenMetric.
func (g GeneralizedJaccard) CompareTokens(ta, tb []string) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	sa := setSlice(ta)
	sb := setSlice(tb)
	return (softJaccardDirected(sa, sb) + softJaccardDirected(sb, sa)) / 2
}

// cosineCounts and euclideanCounts hold the arithmetic shared by the
// string and token entry points.
func cosineCounts(ca, cb map[string]int) float64 {
	var dot, na, nb float64
	for t, x := range ca {
		dot += float64(x * cb[t])
		na += float64(x * x)
	}
	for _, y := range cb {
		nb += float64(y * y)
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (sqrt(na) * sqrt(nb))
}

func euclideanCounts(ca, cb map[string]int) float64 {
	var dd, na, nb float64
	for t, x := range ca {
		d := float64(x - cb[t])
		dd += d * d
		na += float64(x * x)
	}
	for t, y := range cb {
		if _, ok := ca[t]; !ok {
			dd += float64(y * y)
		}
		nb += float64(y * y)
	}
	denom := sqrt(na) + sqrt(nb)
	if denom == 0 {
		return 1
	}
	return 1 - sqrt(dd)/denom
}

func sqrt(x float64) float64 { return math.Sqrt(x) }
