package eval

// CurveBuilder accumulates Points into a Curve incrementally, one
// iteration at a time. It is the eval-side adapter for the core engine's
// event stream (core.NewCurveObserver feeds it every EvalDone point), but
// works equally for any producer that measures iterations as they happen:
// the builder gives consumers a live view of the curve — BestF1,
// convergence labels — while the run is still in flight.
//
// The zero value is ready to use. A CurveBuilder is not safe for
// concurrent use; the engine calls observers synchronously, so none is
// needed there.
type CurveBuilder struct {
	curve Curve
}

// Add appends one iteration's measurement.
func (b *CurveBuilder) Add(p Point) {
	b.curve = append(b.curve, p)
}

// Len reports how many points have been added.
func (b *CurveBuilder) Len() int {
	return len(b.curve)
}

// Curve returns a copy of the accumulated curve, safe to retain across
// further Add calls.
func (b *CurveBuilder) Curve() Curve {
	return append(Curve(nil), b.curve...)
}

// Last returns the most recent point, or a zero Point when empty.
func (b *CurveBuilder) Last() Point {
	if len(b.curve) == 0 {
		return Point{}
	}
	return b.curve[len(b.curve)-1]
}
