package eval

import "testing"

func TestCurveBuilder(t *testing.T) {
	var b CurveBuilder
	if b.Len() != 0 {
		t.Fatalf("zero builder has %d points", b.Len())
	}
	if got := b.Last(); got != (Point{}) {
		t.Fatalf("empty Last = %+v, want zero Point", got)
	}
	b.Add(Point{Labels: 30, F1: 0.5})
	b.Add(Point{Labels: 40, F1: 0.7})
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if got := b.Last(); got.Labels != 40 || got.F1 != 0.7 {
		t.Fatalf("Last = %+v", got)
	}
	// Curve methods work on the accumulated prefix mid-run.
	if got := b.Curve().BestF1(); got != 0.7 {
		t.Fatalf("BestF1 = %v, want 0.7", got)
	}
	// The returned curve is a copy: later Adds must not alias into it.
	snapshot := b.Curve()
	b.Add(Point{Labels: 50, F1: 0.9})
	if len(snapshot) != 2 {
		t.Fatal("Curve() result grew after a later Add")
	}
	if b.Len() != 3 || b.Curve().FinalF1() != 0.9 {
		t.Fatalf("builder state after third Add: len=%d final=%v", b.Len(), b.Curve().FinalF1())
	}
}
