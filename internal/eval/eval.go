// Package eval implements the benchmark's Evaluator component (§3): label
// quality (precision/recall/F1 and the paper's progressive F1), latency
// accounting split the way the paper splits it (training time, committee
// creation time, example scoring time), and the #labels-to-convergence
// metric.
package eval

import "time"

// Confusion is a binary confusion matrix over the matching class.
type Confusion struct {
	TP, FP, FN, TN int
}

// Evaluate compares predictions against truth.
func Evaluate(pred, truth []bool) Confusion {
	var c Confusion
	for i := range truth {
		switch {
		case pred[i] && truth[i]:
			c.TP++
		case pred[i] && !truth[i]:
			c.FP++
		case !pred[i] && truth[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Precision is TP / (TP + FP); 0 when nothing is predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP / (TP + FN); 0 when there are no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Point is one active-learning iteration's measurement: the x-axis of
// every curve in the paper is the cumulative number of labeled examples.
type Point struct {
	Labels    int
	F1        float64
	Precision float64
	Recall    float64
	// Latency breakdown for this iteration (§3 "Latency").
	TrainTime           time.Duration
	CommitteeCreateTime time.Duration
	ScoreTime           time.Duration
	// Model-complexity metrics for the interpretability experiments
	// (Fig. 18); zero when not applicable to the learner.
	DNFAtoms int
	Depth    int
	// Spent is the cumulative dollars billed by a priced batch oracle
	// when this point was recorded — the x-axis of F1-per-dollar curves.
	// Zero (and omitted from serialized curves) for free oracles.
	Spent float64 `json:",omitempty"`
}

// SelectionTime is committee creation plus example scoring — the paper's
// "example selection time".
func (p Point) SelectionTime() time.Duration {
	return p.CommitteeCreateTime + p.ScoreTime
}

// UserWaitTime is training plus example selection — the per-iteration
// wait the paper plots in Fig. 13.
func (p Point) UserWaitTime() time.Duration {
	return p.TrainTime + p.SelectionTime()
}

// Curve is the sequence of per-iteration points of one run.
type Curve []Point

// BestF1 returns the maximum F1 along the curve.
func (c Curve) BestF1() float64 {
	best := 0.0
	for _, p := range c {
		if p.F1 > best {
			best = p.F1
		}
	}
	return best
}

// FinalF1 returns the last point's F1, 0 for an empty curve.
func (c Curve) FinalF1() float64 {
	if len(c) == 0 {
		return 0
	}
	return c[len(c)-1].F1
}

// ConvergenceLabels implements the #labels metric (§3): the minimum
// number of labeled examples after which the F1-score stays within eps of
// its convergent (final) value — i.e. adding more labels no longer changes
// the quality of the model.
func (c Curve) ConvergenceLabels(eps float64) int {
	if len(c) == 0 {
		return 0
	}
	conv := c[len(c)-1].F1
	labels := c[len(c)-1].Labels
	for i := len(c) - 1; i >= 0; i-- {
		if c[i].F1 < conv-eps || c[i].F1 > conv+eps {
			break
		}
		labels = c[i].Labels
	}
	return labels
}

// AverageCurves averages the F1 values of several runs point-by-point
// (truncating to the shortest), the 5-seed averaging protocol of the
// noisy-Oracle experiments (§6.2). Latencies are averaged as well.
func AverageCurves(curves []Curve) Curve {
	if len(curves) == 0 {
		return nil
	}
	n := len(curves[0])
	for _, c := range curves[1:] {
		if len(c) < n {
			n = len(c)
		}
	}
	out := make(Curve, n)
	for i := 0; i < n; i++ {
		var f1, prec, rec float64
		var tt, ct, st time.Duration
		for _, c := range curves {
			f1 += c[i].F1
			prec += c[i].Precision
			rec += c[i].Recall
			tt += c[i].TrainTime
			ct += c[i].CommitteeCreateTime
			st += c[i].ScoreTime
		}
		k := time.Duration(len(curves))
		nc := float64(len(curves))
		out[i] = Point{
			Labels:              curves[0][i].Labels,
			F1:                  f1 / nc,
			Precision:           prec / nc,
			Recall:              rec / nc,
			TrainTime:           tt / k,
			CommitteeCreateTime: ct / k,
			ScoreTime:           st / k,
		}
	}
	return out
}

// AULC is the area under the F1-vs-labels learning curve, normalized by
// the label span so it lies in [0,1] — the label-efficiency summary
// common in active-learning comparisons: two methods with the same final
// F1 can differ widely in how quickly they got there.
func (c Curve) AULC() float64 {
	if len(c) < 2 {
		if len(c) == 1 {
			return c[0].F1
		}
		return 0
	}
	var area float64
	for i := 1; i < len(c); i++ {
		dx := float64(c[i].Labels - c[i-1].Labels)
		area += dx * (c[i].F1 + c[i-1].F1) / 2
	}
	span := float64(c[len(c)-1].Labels - c[0].Labels)
	if span == 0 {
		return c[0].F1
	}
	return area / span
}
