package eval

import (
	"math"
	"testing"
	"time"
)

func TestEvaluateConfusion(t *testing.T) {
	pred := []bool{true, true, false, false, true}
	truth := []bool{true, false, true, false, true}
	c := Evaluate(pred, truth)
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Errorf("confusion = %+v, want TP2 FP1 FN1 TN1", c)
	}
	if got := c.Precision(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("recall = %v", got)
	}
	if got := c.F1(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("f1 = %v", got)
	}
}

func TestMetricsDegenerate(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Error("empty confusion should yield zero metrics")
	}
	all := Confusion{TP: 5}
	if all.F1() != 1 {
		t.Errorf("perfect confusion F1 = %v, want 1", all.F1())
	}
	noPos := Evaluate([]bool{false, false}, []bool{false, false})
	if noPos.F1() != 0 {
		t.Error("no-positive dataset should have F1 0 without predictions")
	}
}

func TestPointLatencyComposition(t *testing.T) {
	p := Point{
		TrainTime:           2 * time.Second,
		CommitteeCreateTime: 3 * time.Second,
		ScoreTime:           5 * time.Second,
	}
	if p.SelectionTime() != 8*time.Second {
		t.Errorf("SelectionTime = %v", p.SelectionTime())
	}
	if p.UserWaitTime() != 10*time.Second {
		t.Errorf("UserWaitTime = %v", p.UserWaitTime())
	}
}

func TestCurveBestAndFinal(t *testing.T) {
	c := Curve{{Labels: 30, F1: 0.2}, {Labels: 40, F1: 0.9}, {Labels: 50, F1: 0.85}}
	if c.BestF1() != 0.9 {
		t.Errorf("BestF1 = %v", c.BestF1())
	}
	if c.FinalF1() != 0.85 {
		t.Errorf("FinalF1 = %v", c.FinalF1())
	}
	var empty Curve
	if empty.BestF1() != 0 || empty.FinalF1() != 0 {
		t.Error("empty curve metrics should be 0")
	}
}

func TestConvergenceLabels(t *testing.T) {
	c := Curve{
		{Labels: 30, F1: 0.2},
		{Labels: 40, F1: 0.5},
		{Labels: 50, F1: 0.89},
		{Labels: 60, F1: 0.90},
		{Labels: 70, F1: 0.91},
		{Labels: 80, F1: 0.90},
	}
	// Final = 0.90; with eps 0.02 convergence starts at 50 (0.89 within eps).
	if got := c.ConvergenceLabels(0.02); got != 50 {
		t.Errorf("ConvergenceLabels = %d, want 50", got)
	}
	// Tight eps: 0.91 at 70 labels falls outside ±0.005 of the final
	// 0.90, so the run-in shrinks to the last point.
	if got := c.ConvergenceLabels(0.005); got != 80 {
		t.Errorf("tight ConvergenceLabels = %d, want 80", got)
	}
	var empty Curve
	if empty.ConvergenceLabels(0.01) != 0 {
		t.Error("empty curve convergence should be 0")
	}
	flat := Curve{{Labels: 30, F1: 0.7}}
	if flat.ConvergenceLabels(0.01) != 30 {
		t.Error("single-point curve converges at its own label count")
	}
}

func TestAverageCurves(t *testing.T) {
	a := Curve{{Labels: 30, F1: 0.4, TrainTime: time.Second}, {Labels: 40, F1: 0.8}}
	b := Curve{{Labels: 30, F1: 0.6, TrainTime: 3 * time.Second}, {Labels: 40, F1: 1.0}, {Labels: 50, F1: 1.0}}
	avg := AverageCurves([]Curve{a, b})
	if len(avg) != 2 {
		t.Fatalf("len = %d, want 2 (truncated to shortest)", len(avg))
	}
	if math.Abs(avg[0].F1-0.5) > 1e-12 || math.Abs(avg[1].F1-0.9) > 1e-12 {
		t.Errorf("averaged F1s = %v, %v", avg[0].F1, avg[1].F1)
	}
	if avg[0].TrainTime != 2*time.Second {
		t.Errorf("averaged train time = %v", avg[0].TrainTime)
	}
	if AverageCurves(nil) != nil {
		t.Error("AverageCurves(nil) should be nil")
	}
}

func TestAULC(t *testing.T) {
	// Constant curve: AULC equals the constant.
	flat := Curve{{Labels: 30, F1: 0.8}, {Labels: 50, F1: 0.8}, {Labels: 70, F1: 0.8}}
	if got := flat.AULC(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("flat AULC = %v, want 0.8", got)
	}
	// Linear ramp 0 -> 1: area is 0.5.
	ramp := Curve{{Labels: 0, F1: 0}, {Labels: 100, F1: 1}}
	if got := ramp.AULC(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ramp AULC = %v, want 0.5", got)
	}
	// Fast learner beats slow learner with the same endpoints.
	fast := Curve{{Labels: 0, F1: 0}, {Labels: 10, F1: 0.9}, {Labels: 100, F1: 0.9}}
	slow := Curve{{Labels: 0, F1: 0}, {Labels: 90, F1: 0.1}, {Labels: 100, F1: 0.9}}
	if fast.AULC() <= slow.AULC() {
		t.Errorf("fast AULC %v not above slow %v", fast.AULC(), slow.AULC())
	}
	// Degenerate curves.
	if (Curve{}).AULC() != 0 {
		t.Error("empty AULC should be 0")
	}
	if got := (Curve{{Labels: 30, F1: 0.6}}).AULC(); got != 0.6 {
		t.Errorf("single-point AULC = %v, want its F1", got)
	}
	same := Curve{{Labels: 30, F1: 0.4}, {Labels: 30, F1: 0.6}}
	if got := same.AULC(); got != 0.4 {
		t.Errorf("zero-span AULC = %v, want first F1", got)
	}
}
