package feature

import (
	"strings"
	"testing"

	"github.com/alem/alem/internal/dataset"
)

func pairRecords() (dataset.Record, dataset.Record) {
	l := dataset.Record{ID: "L0", Values: []string{"sonixx wireless speaker", "29.99"}}
	r := dataset.Record{ID: "R0", Values: []string{"sonixx wireless speaker", "29.99"}}
	return l, r
}

func TestExtractorDim(t *testing.T) {
	e := NewExtractor([]string{"name", "price"})
	if e.Dim() != 42 {
		t.Errorf("Dim = %d, want 2*21 = 42", e.Dim())
	}
	e3 := NewExtractor([]string{"a", "b", "c"})
	if e3.Dim() != 63 {
		t.Errorf("Dim = %d, want 63 (Abt-Buy-like 3 attrs)", e3.Dim())
	}
}

func TestExtractIdenticalPairIsAllOnes(t *testing.T) {
	e := NewExtractor([]string{"name", "price"})
	l, r := pairRecords()
	v := e.Extract(l, r)
	if len(v) != e.Dim() {
		t.Fatalf("vector len %d, want %d", len(v), e.Dim())
	}
	for i, x := range v {
		if x < 0.999 {
			t.Errorf("dim %d (%s) = %v, want 1 for identical records", i, e.DimName(i), x)
		}
	}
}

func TestExtractNullsScoreZero(t *testing.T) {
	e := NewExtractor([]string{"name", "price"})
	l := dataset.Record{Values: []string{"sonixx speaker", ""}}
	r := dataset.Record{Values: []string{"sonixx speaker", "29.99"}}
	v := e.Extract(l, r)
	// All 21 price dims must be exactly 0 (§3 null handling).
	for i := 21; i < 42; i++ {
		if v[i] != 0 {
			t.Errorf("null attr dim %d = %v, want 0", i, v[i])
		}
	}
	// Name dims unaffected.
	if v[0] != 1 {
		t.Errorf("identity(name) = %v, want 1", v[0])
	}
}

func TestExtractRange(t *testing.T) {
	e := NewExtractor([]string{"name"})
	l := dataset.Record{Values: []string{"veltron compact camera"}}
	r := dataset.Record{Values: []string{"veltron camera kit zoom"}}
	for i, x := range e.Extract(l, r) {
		if x < 0 || x > 1 {
			t.Errorf("dim %d (%s) = %v outside [0,1]", i, e.DimName(i), x)
		}
	}
}

func TestExtractDimMatchesFullVector(t *testing.T) {
	e := NewExtractor([]string{"name", "price"})
	l := dataset.Record{Values: []string{"sonixx wireless speaker", "31.00"}}
	r := dataset.Record{Values: []string{"sonix wireless speakers", "29.99"}}
	full := e.Extract(l, r)
	for i := range full {
		if got := e.ExtractDim(l, r, i); got != full[i] {
			t.Errorf("ExtractDim(%d) = %v, want %v", i, got, full[i])
		}
	}
}

func TestDimName(t *testing.T) {
	e := NewExtractor([]string{"name", "price"})
	if got := e.DimName(0); got != "identity(name)" {
		t.Errorf("DimName(0) = %q, want identity(name)", got)
	}
	if got := e.DimName(21); got != "identity(price)" {
		t.Errorf("DimName(21) = %q, want identity(price)", got)
	}
	if !strings.Contains(e.DimName(11), "jaccard") {
		t.Errorf("DimName(11) = %q, want a jaccard dim", e.DimName(11))
	}
}

func TestExtractPairsParallelMatchesSequential(t *testing.T) {
	d, err := dataset.Load("beer", 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	pairs := d.Matches()
	e := NewExtractor(d.Left.Schema)
	par := e.ExtractPairs(d, pairs)
	for i, p := range pairs {
		seq := e.Extract(d.Left.Rows[p.L], d.Right.Rows[p.R])
		for j := range seq {
			if par[i][j] != seq[j] {
				t.Fatalf("pair %d dim %d: parallel %v != sequential %v", i, j, par[i][j], seq[j])
			}
		}
	}
}

func TestBoolExtractorDim(t *testing.T) {
	e := NewBoolExtractor([]string{"name", "price"})
	if e.Dim() != 2*3*10 {
		t.Errorf("Dim = %d, want 60", e.Dim())
	}
}

func TestBoolExtractorAtoms(t *testing.T) {
	e := NewBoolExtractor([]string{"name", "price"})
	a0 := e.Atom(0)
	if a0.Attr != "name" || a0.Metric != "identity" || a0.Threshold != 0.1 {
		t.Errorf("Atom(0) = %+v", a0)
	}
	last := e.Atom(e.Dim() - 1)
	if last.Attr != "price" || last.Metric != "jaccard" || last.Threshold != 1.0 {
		t.Errorf("Atom(last) = %+v", last)
	}
	if got := a0.String(); got != "identity(name) >= 0.1" {
		t.Errorf("Atom String = %q", got)
	}
}

func TestBoolExtractorMonotoneInThreshold(t *testing.T) {
	e := NewBoolExtractor([]string{"name"})
	l := dataset.Record{Values: []string{"sonixx wireless speaker"}}
	r := dataset.Record{Values: []string{"sonixx wired speaker"}}
	v := e.Extract(l, r)
	// Within each metric block, true bits must be a prefix: sim >= 0.5
	// implies sim >= 0.4.
	for m := 0; m < 3; m++ {
		seenFalse := false
		for t10 := 0; t10 < 10; t10++ {
			bit := v[m*10+t10]
			if bit && seenFalse {
				t.Fatalf("metric %d: non-monotone threshold bits %v", m, v[m*10:m*10+10])
			}
			if !bit {
				seenFalse = true
			}
		}
	}
}

func TestBoolExtractorNullAllFalse(t *testing.T) {
	e := NewBoolExtractor([]string{"name"})
	l := dataset.Record{Values: []string{""}}
	r := dataset.Record{Values: []string{"anything"}}
	for i, b := range e.Extract(l, r) {
		if b {
			t.Errorf("null attr atom %d (%s) = true, want false", i, e.Atom(i))
		}
	}
}

func TestBoolExtractorIdenticalAllTrue(t *testing.T) {
	e := NewBoolExtractor([]string{"name"})
	l := dataset.Record{Values: []string{"sonixx speaker"}}
	v := e.Extract(l, l)
	for i, b := range v {
		if !b {
			t.Errorf("identical pair atom %d (%s) = false, want true", i, e.Atom(i))
		}
	}
}

func TestBoolExtractPairs(t *testing.T) {
	d, err := dataset.Load("beer", 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	pairs := d.Matches()
	e := NewBoolExtractor(d.Left.Schema)
	got := e.ExtractPairs(d, pairs)
	if len(got) != len(pairs) {
		t.Fatalf("len = %d, want %d", len(got), len(pairs))
	}
	for i, p := range pairs {
		seq := e.Extract(d.Left.Rows[p.L], d.Right.Rows[p.R])
		for j := range seq {
			if got[i][j] != seq[j] {
				t.Fatalf("pair %d atom %d mismatch", i, j)
			}
		}
	}
}

func TestExtractFastPathMatchesSlowPath(t *testing.T) {
	// The Extract fast path (shared tokens) must produce identical
	// vectors to calling every metric's string Compare directly.
	d, err := dataset.Load("abt-buy", 0.02, 77)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExtractor(d.Left.Schema)
	for li := 0; li < 10 && li < len(d.Left.Rows); li++ {
		for ri := 0; ri < 5 && ri < len(d.Right.Rows); ri++ {
			got := e.Extract(d.Left.Rows[li], d.Right.Rows[ri])
			for i := range got {
				if want := e.ExtractDim(d.Left.Rows[li], d.Right.Rows[ri], i); got[i] != want {
					t.Fatalf("pair (%d,%d) dim %d (%s): fast %v != slow %v",
						li, ri, i, e.DimName(i), got[i], want)
				}
			}
		}
	}
}
