package feature

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/textsim"
)

// equivDataset builds a mixed-case/unicode dataset with nulls, duplicate
// tokens and records that appear in many pairs — the shapes the interned
// path optimizes and therefore must reproduce exactly.
func equivDataset(tb testing.TB) (*dataset.Dataset, []dataset.PairKey) {
	tb.Helper()
	schema := []string{"name", "maker", "price"}
	rng := rand.New(rand.NewSource(42))
	words := []string{
		"Samsung", "Galaxy", "S21", "ULTRA", "ultra", "128GB", "Phone",
		"Téléphone", "черный", "schwarz", "世界", "Pro", "pro", "Max", "(5G)",
	}
	val := func() string {
		n := rng.Intn(6)
		s := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				s += " "
			}
			s += words[rng.Intn(len(words))]
		}
		return s
	}
	mkTable := func(name string, rows int) *dataset.Table {
		t := &dataset.Table{Name: name, Schema: schema}
		for i := 0; i < rows; i++ {
			vals := []string{val(), val(), fmt.Sprintf("%d.99", rng.Intn(500))}
			if rng.Intn(6) == 0 {
				vals[rng.Intn(3)] = "" // nulls exercise the zero-block path
			}
			t.Rows = append(t.Rows, dataset.Record{ID: fmt.Sprintf("%s-%d", name, i), Values: vals})
		}
		return t
	}
	left := mkTable("L", 30)
	right := mkTable("R", 40)
	d := dataset.NewDataset("equiv", left, right, nil, 0.2)
	var pairs []dataset.PairKey
	for l := 0; l < len(left.Rows); l++ {
		for r := 0; r < len(right.Rows); r += 1 + rng.Intn(4) {
			pairs = append(pairs, dataset.PairKey{L: l, R: r})
		}
	}
	return d, pairs
}

// TestExtractPairsMatchesExtract pins the interned batched path
// bit-identical to the per-pair string path at worker counts {1, 2, 8},
// for the standard and extended metric sets.
func TestExtractPairsMatchesExtract(t *testing.T) {
	d, pairs := equivDataset(t)
	corpus := CorpusOf(d)
	extractors := map[string]*Extractor{
		"standard": NewExtractor(d.Left.Schema),
		"extended": NewExtendedExtractor(d.Left.Schema, corpus),
	}
	for name, e := range extractors {
		e := e
		t.Run(name, func(t *testing.T) {
			want := make([]Vector, len(pairs))
			for i, p := range pairs {
				want[i] = e.Extract(d.Left.Rows[p.L], d.Right.Rows[p.R])
			}
			for _, workers := range []int{1, 2, 8} {
				got := e.ExtractPairsWorkers(d, pairs, workers)
				if len(got) != len(want) {
					t.Fatalf("workers=%d: %d vectors, want %d", workers, len(got), len(want))
				}
				for i := range got {
					if len(got[i]) != len(want[i]) {
						t.Fatalf("workers=%d pair %d: dim %d, want %d", workers, i, len(got[i]), len(want[i]))
					}
					for j := range got[i] {
						if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
							t.Fatalf("workers=%d pair %d dim %d (%s): interned=%v string=%v",
								workers, i, j, e.DimName(j), got[i][j], want[i][j])
						}
					}
				}
			}
		})
	}
}

// TestExtractPairsVectorsIndependent guards the flat-backing layout: the
// returned vectors must not alias each other even under append growth.
func TestExtractPairsVectorsIndependent(t *testing.T) {
	d, pairs := equivDataset(t)
	e := NewExtractor(d.Left.Schema)
	X := e.ExtractPairsWorkers(d, pairs, 2)
	if len(X) < 2 {
		t.Fatal("need at least two vectors")
	}
	// Appending to one vector must not clobber its neighbour (the flat
	// slices are capacity-capped).
	before := make(Vector, len(X[1]))
	copy(before, X[1])
	_ = append(X[0], 12345)
	for j := range X[1] {
		if X[1][j] != before[j] {
			t.Fatalf("append to X[0] corrupted X[1][%d]", j)
		}
	}
}

// TestExtractPairsCustomMetricSet checks the no-interned-metric path: an
// extractor over plain metrics only must still work and match Extract.
func TestExtractPairsCustomMetricSet(t *testing.T) {
	d, pairs := equivDataset(t)
	e := NewExtractorWithMetrics(d.Left.Schema, []textsim.Metric{textsim.Levenshtein{}, textsim.Identity{}})
	got := e.ExtractPairsWorkers(d, pairs, 2)
	for i, p := range pairs {
		want := e.Extract(d.Left.Rows[p.L], d.Right.Rows[p.R])
		for j := range want {
			if math.Float64bits(got[i][j]) != math.Float64bits(want[j]) {
				t.Fatalf("pair %d dim %d: %v != %v", i, j, got[i][j], want[j])
			}
		}
	}
}

// TestExtractPairsAllocRatchet is the featurization allocs/op ratchet:
// the interned batch path must stay under a fixed per-pair allocation
// budget. The historical per-pair string path paid ~25 map and slice
// allocations per token-metric block per pair; the interned path
// amortizes tokenization per record and scores with zero per-pair
// allocations, leaving only the flat vector array, the TokenSet build
// for touched rows, and fixed bookkeeping.
func TestExtractPairsAllocRatchet(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation behaviour differs under the race detector")
	}
	d, pairs := equivDataset(t)
	e := NewExtractor(d.Left.Schema)
	e.ExtractPairsWorkers(d, pairs, 1) // warm pools
	avg := testing.AllocsPerRun(20, func() {
		e.ExtractPairsWorkers(d, pairs, 1)
	})
	perPair := avg / float64(len(pairs))
	// Budget: ≤ 2 allocations per pair on average (tokenization of
	// touched rows + pooled-set refills amortize across pairs; the old
	// path measured >200/pair). Generous enough to be stable, tight
	// enough that any per-pair map allocation regression trips it.
	if perPair > 2.0 {
		t.Fatalf("allocs per pair = %.2f (total %.0f over %d pairs), ratchet budget 2.0",
			perPair, avg, len(pairs))
	}
}
