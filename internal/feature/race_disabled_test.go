//go:build !race

package feature

// raceEnabled reports whether the race detector is active; the
// allocation ratchets skip under it because instrumentation changes
// allocation behaviour.
const raceEnabled = false
