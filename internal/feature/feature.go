// Package feature converts candidate record pairs into the feature vectors
// consumed by the learners (§3 "Feature Extractor").
//
// Float features: every metric in textsim.All() (21 functions) applied to
// every aligned attribute pair, giving Dim = #attrs × 21 — e.g. 63
// dimensions for Abt-Buy's 3 attributes, 189 for Cora's 9, matching the
// 62/83/188-dimension figures the paper quotes up to its dropped constant
// column.
//
// Boolean features: the rule learner supports only equality, Jaro-Winkler
// and Jaccard (§3); each is discretized over thresholds 0.1..1.0 into
// Boolean atoms of the form  sim(attr) ≥ τ.
//
// If either attribute value of a pair is null the similarity evaluates to
// 0 (§3).
package feature

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/textsim"
)

// Vector is a dense float feature vector.
type Vector []float64

// Extractor computes float feature vectors for record pairs.
type Extractor struct {
	schema  []string
	metrics []textsim.Metric
}

// NewExtractor builds the standard extractor: all 21 metrics per attribute.
func NewExtractor(schema []string) *Extractor {
	return &Extractor{schema: schema, metrics: textsim.All()}
}

// NewExtractorWithMetrics builds an extractor over a custom metric set.
func NewExtractorWithMetrics(schema []string, metrics []textsim.Metric) *Extractor {
	return &Extractor{schema: schema, metrics: metrics}
}

// NewExtendedExtractor builds the extended extractor: the standard 21
// metrics plus the corpus-aware and numeric ones (TF-IDF cosine,
// SoftTFIDF, numeric similarity, generalized Jaccard), 25 per attribute.
// An extension beyond the paper's feature set; the ablation-features
// experiment measures its effect.
func NewExtendedExtractor(schema []string, c *textsim.Corpus) *Extractor {
	return &Extractor{schema: schema, metrics: append(textsim.All(), textsim.Extended(c)...)}
}

// CorpusOf builds the document-frequency corpus over every record of
// both tables (the statistics TF-IDF style metrics weight tokens by).
func CorpusOf(d *dataset.Dataset) *textsim.Corpus {
	docs := make([]string, 0, len(d.Left.Rows)+len(d.Right.Rows))
	for _, r := range d.Left.Rows {
		docs = append(docs, strings.Join(r.Values, " "))
	}
	for _, r := range d.Right.Rows {
		docs = append(docs, strings.Join(r.Values, " "))
	}
	return textsim.NewCorpus(docs)
}

// Dim returns the feature dimensionality: #attrs × #metrics.
func (e *Extractor) Dim() int { return len(e.schema) * len(e.metrics) }

// DimName returns a human-readable name for dimension i, e.g.
// "jaccard(name)". Blocking-dimension diagnostics (§5.1) use it.
func (e *Extractor) DimName(i int) string {
	a := i / len(e.metrics)
	m := i % len(e.metrics)
	return fmt.Sprintf("%s(%s)", e.metrics[m].Name(), e.schema[a])
}

// Extract computes the feature vector of one record pair. Word tokens
// are computed once per attribute value and shared across every metric
// that supports the textsim.TokenMetric fast path.
func (e *Extractor) Extract(left, right dataset.Record) Vector {
	v := make(Vector, 0, e.Dim())
	tok := textsim.Whitespace{}
	for a := range e.schema {
		lv, rv := left.Values[a], right.Values[a]
		if lv == "" || rv == "" {
			for range e.metrics {
				v = append(v, 0)
			}
			continue
		}
		var lt, rt []string
		tokenized := false
		for _, m := range e.metrics {
			if tm, ok := m.(textsim.TokenMetric); ok {
				if !tokenized {
					lt, rt = tok.Tokens(lv), tok.Tokens(rv)
					tokenized = true
				}
				v = append(v, tm.CompareTokens(lt, rt))
				continue
			}
			v = append(v, m.Compare(lv, rv))
		}
	}
	return v
}

// ExtractDim computes only dimension i of the pair's feature vector; the
// §5.1 blocking optimization uses it to probe blocking dimensions without
// building the full vector.
func (e *Extractor) ExtractDim(left, right dataset.Record, i int) float64 {
	a := i / len(e.metrics)
	m := i % len(e.metrics)
	lv, rv := left.Values[a], right.Values[a]
	if lv == "" || rv == "" {
		return 0
	}
	return e.metrics[m].Compare(lv, rv)
}

// ExtractPairs featurizes a set of candidate pairs in parallel, preserving
// order. This is the one-time featurization pass that precedes active
// learning.
func (e *Extractor) ExtractPairs(d *dataset.Dataset, pairs []dataset.PairKey) []Vector {
	out := make([]Vector, len(pairs))
	nWorkers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (len(pairs) + nWorkers - 1) / nWorkers
	for w := 0; w < nWorkers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, len(pairs))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				p := pairs[i]
				out[i] = e.Extract(d.Left.Rows[p.L], d.Right.Rows[p.R])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// Atom is one Boolean rule predicate: Metric(Attr) ≥ Threshold (§3, §6.3).
type Atom struct {
	Attr      string
	Metric    string
	Threshold float64
}

// String renders the atom the way the paper prints rules, e.g.
// "JaccardSim(name) >= 0.4".
func (a Atom) String() string {
	return fmt.Sprintf("%s(%s) >= %.1f", a.Metric, a.Attr, a.Threshold)
}

// BoolExtractor computes Boolean atom vectors for the rule learner.
type BoolExtractor struct {
	schema     []string
	metrics    []textsim.Metric
	thresholds []float64
}

// NewBoolExtractor builds the rule-learner extractor: the three supported
// metrics discretized on thresholds 0.1, 0.2, ..., 1.0.
func NewBoolExtractor(schema []string) *BoolExtractor {
	ths := make([]float64, 0, 10)
	for t := 1; t <= 10; t++ {
		ths = append(ths, float64(t)/10)
	}
	return &BoolExtractor{schema: schema, metrics: textsim.ForRules(), thresholds: ths}
}

// Dim returns #attrs × #metrics × #thresholds.
func (e *BoolExtractor) Dim() int {
	return len(e.schema) * len(e.metrics) * len(e.thresholds)
}

// Atom describes Boolean dimension i.
func (e *BoolExtractor) Atom(i int) Atom {
	perAttr := len(e.metrics) * len(e.thresholds)
	a := i / perAttr
	rest := i % perAttr
	m := rest / len(e.thresholds)
	t := rest % len(e.thresholds)
	return Atom{Attr: e.schema[a], Metric: e.metrics[m].Name(), Threshold: e.thresholds[t]}
}

// Extract computes the Boolean atom vector of one record pair. Atoms over
// null attributes are false (similarity 0 never reaches a threshold).
func (e *BoolExtractor) Extract(left, right dataset.Record) []bool {
	out := make([]bool, 0, e.Dim())
	for a := range e.schema {
		lv, rv := left.Values[a], right.Values[a]
		for _, m := range e.metrics {
			sim := 0.0
			if lv != "" && rv != "" {
				sim = m.Compare(lv, rv)
			}
			for _, th := range e.thresholds {
				out = append(out, sim >= th)
			}
		}
	}
	return out
}

// ExtractPairs featurizes candidate pairs into Boolean vectors in
// parallel, preserving order.
func (e *BoolExtractor) ExtractPairs(d *dataset.Dataset, pairs []dataset.PairKey) [][]bool {
	out := make([][]bool, len(pairs))
	nWorkers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (len(pairs) + nWorkers - 1) / nWorkers
	for w := 0; w < nWorkers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, len(pairs))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				p := pairs[i]
				out[i] = e.Extract(d.Left.Rows[p.L], d.Right.Rows[p.R])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
