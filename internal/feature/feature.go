// Package feature converts candidate record pairs into the feature vectors
// consumed by the learners (§3 "Feature Extractor").
//
// Float features: every metric in textsim.All() (21 functions) applied to
// every aligned attribute pair, giving Dim = #attrs × 21 — e.g. 63
// dimensions for Abt-Buy's 3 attributes, 189 for Cora's 9, matching the
// 62/83/188-dimension figures the paper quotes up to its dropped constant
// column.
//
// Boolean features: the rule learner supports only equality, Jaro-Winkler
// and Jaccard (§3); each is discretized over thresholds 0.1..1.0 into
// Boolean atoms of the form  sim(attr) ≥ τ.
//
// If either attribute value of a pair is null the similarity evaluates to
// 0 (§3).
package feature

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/textsim"
)

// Vector is a dense float feature vector.
type Vector []float64

// compiledMetric caches the interface assertions of one metric so the
// per-pair loop never type-switches: tsm is non-nil for metrics with the
// interned TokenSet fast path (tokIdx then indexes the extractor's
// tokenizer list), tm for the token-slice fast path.
type compiledMetric struct {
	m      textsim.Metric
	tm     textsim.TokenMetric
	tsm    textsim.TokenSetMetric
	tokIdx int
}

// Extractor computes float feature vectors for record pairs.
type Extractor struct {
	schema   []string
	metrics  []textsim.Metric
	compiled []compiledMetric
	// tokenizers holds the distinct InternTokenizer()s of the interned
	// metrics; ExtractPairs builds one TokenSet per (touched attribute
	// value, tokenizer), shared by every metric declaring that tokenizer.
	tokenizers []textsim.Tokenizer
	// dict interns tokens across the extractor's lifetime, so repeated
	// ExtractPairs calls (the serving path) only pay dictionary inserts
	// for genuinely new vocabulary. Ids never influence scores, so growth
	// across calls is harmless; memory is bounded by vocabulary size.
	dict *textsim.Dict
}

func newExtractor(schema []string, metrics []textsim.Metric) *Extractor {
	e := &Extractor{schema: schema, metrics: metrics, dict: textsim.NewDict()}
	e.compiled = make([]compiledMetric, len(metrics))
	tokIdx := map[textsim.Tokenizer]int{}
	for i, m := range metrics {
		cm := compiledMetric{m: m}
		if tm, ok := m.(textsim.TokenMetric); ok {
			cm.tm = tm
		}
		if tsm, ok := m.(textsim.TokenSetMetric); ok {
			cm.tsm = tsm
			tk := tsm.InternTokenizer()
			idx, seen := tokIdx[tk]
			if !seen {
				idx = len(e.tokenizers)
				tokIdx[tk] = idx
				e.tokenizers = append(e.tokenizers, tk)
			}
			cm.tokIdx = idx
		}
		e.compiled[i] = cm
	}
	return e
}

// NewExtractor builds the standard extractor: all 21 metrics per attribute.
func NewExtractor(schema []string) *Extractor {
	return newExtractor(schema, textsim.All())
}

// NewExtractorWithMetrics builds an extractor over a custom metric set.
func NewExtractorWithMetrics(schema []string, metrics []textsim.Metric) *Extractor {
	return newExtractor(schema, metrics)
}

// NewExtendedExtractor builds the extended extractor: the standard 21
// metrics plus the corpus-aware and numeric ones (TF-IDF cosine,
// SoftTFIDF, numeric similarity, generalized Jaccard), 25 per attribute.
// An extension beyond the paper's feature set; the ablation-features
// experiment measures its effect.
func NewExtendedExtractor(schema []string, c *textsim.Corpus) *Extractor {
	return newExtractor(schema, append(textsim.All(), textsim.Extended(c)...))
}

// CorpusOf builds the document-frequency corpus over every record of
// both tables (the statistics TF-IDF style metrics weight tokens by).
func CorpusOf(d *dataset.Dataset) *textsim.Corpus {
	docs := make([]string, 0, len(d.Left.Rows)+len(d.Right.Rows))
	for _, r := range d.Left.Rows {
		docs = append(docs, strings.Join(r.Values, " "))
	}
	for _, r := range d.Right.Rows {
		docs = append(docs, strings.Join(r.Values, " "))
	}
	return textsim.NewCorpus(docs)
}

// Dim returns the feature dimensionality: #attrs × #metrics.
func (e *Extractor) Dim() int { return len(e.schema) * len(e.metrics) }

// DimName returns a human-readable name for dimension i, e.g.
// "jaccard(name)". Blocking-dimension diagnostics (§5.1) use it.
func (e *Extractor) DimName(i int) string {
	a := i / len(e.metrics)
	m := i % len(e.metrics)
	return fmt.Sprintf("%s(%s)", e.metrics[m].Name(), e.schema[a])
}

// Extract computes the feature vector of one record pair. Word tokens
// are computed once per attribute value and shared across every metric
// that supports the textsim.TokenMetric fast path.
func (e *Extractor) Extract(left, right dataset.Record) Vector {
	v := make(Vector, 0, e.Dim())
	tok := textsim.Whitespace{}
	for a := range e.schema {
		lv, rv := left.Values[a], right.Values[a]
		if lv == "" || rv == "" {
			for range e.metrics {
				v = append(v, 0)
			}
			continue
		}
		var lt, rt []string
		tokenized := false
		for _, m := range e.metrics {
			if tm, ok := m.(textsim.TokenMetric); ok {
				if !tokenized {
					lt, rt = tok.Tokens(lv), tok.Tokens(rv)
					tokenized = true
				}
				v = append(v, tm.CompareTokens(lt, rt))
				continue
			}
			v = append(v, m.Compare(lv, rv))
		}
	}
	return v
}

// ExtractDim computes only dimension i of the pair's feature vector; the
// §5.1 blocking optimization uses it to probe blocking dimensions without
// building the full vector.
func (e *Extractor) ExtractDim(left, right dataset.Record, i int) float64 {
	a := i / len(e.metrics)
	m := i % len(e.metrics)
	lv, rv := left.Values[a], right.Values[a]
	if lv == "" || rv == "" {
		return 0
	}
	return e.metrics[m].Compare(lv, rv)
}

// ExtractPairs featurizes a set of candidate pairs in parallel, preserving
// order. This is the one-time featurization pass that precedes active
// learning and the per-request featurization the serving layer pays.
//
// It is the interned hot path: every record attribute value touched by
// the pair set is tokenized and interned into a textsim.TokenSet exactly
// once (a record appearing in k candidate pairs historically paid k
// tokenizations per token metric), all result vectors share one flat
// float64 backing array (one allocation instead of one per pair), and
// the TokenSets are pooled. Output is bit-identical to calling Extract
// per pair — TestExtractPairsMatchesExtract pins it at worker counts
// {1, 2, 8}.
func (e *Extractor) ExtractPairs(d *dataset.Dataset, pairs []dataset.PairKey) []Vector {
	return e.ExtractPairsWorkers(d, pairs, runtime.GOMAXPROCS(0))
}

// ExtractPairsWorkers is ExtractPairs with an explicit worker bound
// (zero or negative means GOMAXPROCS, one forces the serial path).
func (e *Extractor) ExtractPairsWorkers(d *dataset.Dataset, pairs []dataset.PairKey, workers int) []Vector {
	n := len(pairs)
	out := make([]Vector, n)
	if n == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	dim := e.Dim()
	flat := make([]float64, n*dim)

	var leftSets, rightSets [][]*textsim.TokenSet
	nt := len(e.tokenizers)
	if nt > 0 {
		leftSets = e.internRows(d.Left, leftRowsOf(pairs, len(d.Left.Rows)), workers)
		rightSets = e.internRows(d.Right, rightRowsOf(pairs, len(d.Right.Rows)), workers)
		defer releaseRowSets(leftSets)
		defer releaseRowSets(rightSets)
	}

	parDo(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := pairs[i]
			row := flat[i*dim : (i+1)*dim : (i+1)*dim]
			out[i] = row
			left, right := d.Left.Rows[p.L], d.Right.Rows[p.R]
			var lsets, rsets []*textsim.TokenSet
			if nt > 0 {
				lsets, rsets = leftSets[p.L], rightSets[p.R]
			}
			k := 0
			for a := range e.schema {
				lv, rv := left.Values[a], right.Values[a]
				if lv == "" || rv == "" {
					// Null semantics (§3): the flat backing is zeroed, so
					// the whole attribute block is already 0.
					k += len(e.compiled)
					continue
				}
				for ci := range e.compiled {
					cm := &e.compiled[ci]
					if cm.tsm != nil {
						row[k] = cm.tsm.CompareTokenSets(lsets[a*nt+cm.tokIdx], rsets[a*nt+cm.tokIdx])
					} else {
						row[k] = cm.m.Compare(lv, rv)
					}
					k++
				}
			}
		}
	})
	return out
}

// leftRowsOf / rightRowsOf collect the distinct row indices a pair set
// touches on each side, in ascending order.
func leftRowsOf(pairs []dataset.PairKey, n int) []int {
	return distinctRows(pairs, n, func(p dataset.PairKey) int { return p.L })
}

func rightRowsOf(pairs []dataset.PairKey, n int) []int {
	return distinctRows(pairs, n, func(p dataset.PairKey) int { return p.R })
}

func distinctRows(pairs []dataset.PairKey, n int, side func(dataset.PairKey) int) []int {
	seen := make([]bool, n)
	rows := make([]int, 0, min(n, len(pairs)))
	for _, p := range pairs {
		if r := side(p); !seen[r] {
			seen[r] = true
			rows = append(rows, r)
		}
	}
	sort.Ints(rows)
	return rows
}

// internRows tokenizes and interns each needed row's attribute values
// once per tokenizer, in parallel over the row list; sets[r] is indexed
// [attr*len(tokenizers)+tokIdx]. Empty values get nil sets; the
// extraction loop never consults them (null attributes short-circuit).
func (e *Extractor) internRows(t *dataset.Table, rows []int, workers int) [][]*textsim.TokenSet {
	sets := make([][]*textsim.TokenSet, len(t.Rows))
	nt := len(e.tokenizers)
	parDo(len(rows), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := rows[i]
			rs := make([]*textsim.TokenSet, len(e.schema)*nt)
			for a := range e.schema {
				v := t.Rows[r].Values[a]
				if v == "" {
					continue
				}
				for ti, tok := range e.tokenizers {
					ts := textsim.GetTokenSet()
					e.dict.InternValue(tok, v, ts)
					rs[a*nt+ti] = ts
				}
			}
			sets[r] = rs
		}
	})
	return sets
}

func releaseRowSets(sets [][]*textsim.TokenSet) {
	for _, rs := range sets {
		for _, ts := range rs {
			if ts != nil {
				ts.Release()
			}
		}
	}
}

// parDo runs body over [0, n) in at most workers contiguous chunks,
// mirroring the chunking the blocking and core packages use.
func parDo(n, workers int, body func(lo, hi int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, n)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Atom is one Boolean rule predicate: Metric(Attr) ≥ Threshold (§3, §6.3).
type Atom struct {
	Attr      string
	Metric    string
	Threshold float64
}

// String renders the atom the way the paper prints rules, e.g.
// "JaccardSim(name) >= 0.4".
func (a Atom) String() string {
	return fmt.Sprintf("%s(%s) >= %.1f", a.Metric, a.Attr, a.Threshold)
}

// BoolExtractor computes Boolean atom vectors for the rule learner.
type BoolExtractor struct {
	schema     []string
	metrics    []textsim.Metric
	thresholds []float64
}

// NewBoolExtractor builds the rule-learner extractor: the three supported
// metrics discretized on thresholds 0.1, 0.2, ..., 1.0.
func NewBoolExtractor(schema []string) *BoolExtractor {
	ths := make([]float64, 0, 10)
	for t := 1; t <= 10; t++ {
		ths = append(ths, float64(t)/10)
	}
	return &BoolExtractor{schema: schema, metrics: textsim.ForRules(), thresholds: ths}
}

// Dim returns #attrs × #metrics × #thresholds.
func (e *BoolExtractor) Dim() int {
	return len(e.schema) * len(e.metrics) * len(e.thresholds)
}

// Atom describes Boolean dimension i.
func (e *BoolExtractor) Atom(i int) Atom {
	perAttr := len(e.metrics) * len(e.thresholds)
	a := i / perAttr
	rest := i % perAttr
	m := rest / len(e.thresholds)
	t := rest % len(e.thresholds)
	return Atom{Attr: e.schema[a], Metric: e.metrics[m].Name(), Threshold: e.thresholds[t]}
}

// Extract computes the Boolean atom vector of one record pair. Atoms over
// null attributes are false (similarity 0 never reaches a threshold).
func (e *BoolExtractor) Extract(left, right dataset.Record) []bool {
	out := make([]bool, 0, e.Dim())
	for a := range e.schema {
		lv, rv := left.Values[a], right.Values[a]
		for _, m := range e.metrics {
			sim := 0.0
			if lv != "" && rv != "" {
				sim = m.Compare(lv, rv)
			}
			for _, th := range e.thresholds {
				out = append(out, sim >= th)
			}
		}
	}
	return out
}

// ExtractPairs featurizes candidate pairs into Boolean vectors in
// parallel, preserving order.
func (e *BoolExtractor) ExtractPairs(d *dataset.Dataset, pairs []dataset.PairKey) [][]bool {
	out := make([][]bool, len(pairs))
	parDo(len(pairs), runtime.GOMAXPROCS(0), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := pairs[i]
			out[i] = e.Extract(d.Left.Rows[p.L], d.Right.Rows[p.R])
		}
	})
	return out
}
