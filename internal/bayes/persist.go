package bayes

import (
	"encoding/json"
	"fmt"
	"io"
)

// nbState is the serialized form of a trained classifier.
type nbState struct {
	VarSmoothing float64      `json:"var_smoothing"`
	LogPrior     [2]float64   `json:"log_prior"`
	Mean         [2][]float64 `json:"mean"`
	Var          [2][]float64 `json:"var"`
}

// SaveJSON writes the trained model for later reuse.
func (nb *NaiveBayes) SaveJSON(w io.Writer) error {
	if !nb.trained {
		return fmt.Errorf("bayes: cannot save an untrained model")
	}
	st := nbState{VarSmoothing: nb.VarSmoothing, LogPrior: nb.logPrior, Mean: nb.mean, Var: nb.vari}
	if err := json.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("bayes: encoding model: %w", err)
	}
	return nil
}

// LoadJSON reads a model written by SaveJSON.
func LoadJSON(r io.Reader) (*NaiveBayes, error) {
	var st nbState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("bayes: decoding model: %w", err)
	}
	nb := New()
	nb.VarSmoothing = st.VarSmoothing
	nb.logPrior, nb.mean, nb.vari = st.LogPrior, st.Mean, st.Var
	nb.trained = true
	return nb, nil
}
