// Package bayes implements a Gaussian naive Bayes classifier. It is not
// one of the paper's four benchmarked learner families, but it is the
// other classic QBC committee member in the EM literature (Sarawagi &
// Bhamidipaty, KDD 2002 — cited in the paper's §1), and the framework's
// plug-and-play claim is best demonstrated by plugging in a learner the
// paper did NOT evaluate: NaiveBayes satisfies core.Learner and
// core.MarginLearner and composes with QBC, margin and the active
// ensemble without framework changes.
package bayes

import (
	"math"

	"github.com/alem/alem/internal/feature"
)

// NaiveBayes is a Gaussian naive Bayes binary classifier. Construct with
// New.
type NaiveBayes struct {
	// VarSmoothing is added to every per-feature variance to keep
	// log-densities finite on constant features.
	VarSmoothing float64

	trained    bool
	logPrior   [2]float64
	mean, vari [2][]float64
}

// New returns a classifier with default smoothing.
func New() *NaiveBayes { return &NaiveBayes{VarSmoothing: 1e-4} }

// Name implements the learner interface.
func (nb *NaiveBayes) Name() string { return "naive-bayes" }

// Train fits per-class feature means and variances from scratch.
func (nb *NaiveBayes) Train(X []feature.Vector, y []bool) {
	nb.trained = false
	if len(X) == 0 {
		return
	}
	dim := len(X[0])
	var count [2]int
	for c := 0; c < 2; c++ {
		nb.mean[c] = make([]float64, dim)
		nb.vari[c] = make([]float64, dim)
	}
	for i, x := range X {
		c := classOf(y[i])
		count[c]++
		for j, v := range x {
			nb.mean[c][j] += v
		}
	}
	for c := 0; c < 2; c++ {
		if count[c] == 0 {
			continue
		}
		for j := range nb.mean[c] {
			nb.mean[c][j] /= float64(count[c])
		}
	}
	for i, x := range X {
		c := classOf(y[i])
		for j, v := range x {
			d := v - nb.mean[c][j]
			nb.vari[c][j] += d * d
		}
	}
	total := float64(len(X))
	for c := 0; c < 2; c++ {
		if count[c] == 0 {
			// Unseen class: uniform fallback keeps predictions defined.
			nb.logPrior[c] = math.Inf(-1)
			for j := range nb.vari[c] {
				nb.vari[c][j] = 1
			}
			continue
		}
		nb.logPrior[c] = math.Log(float64(count[c]) / total)
		for j := range nb.vari[c] {
			nb.vari[c][j] = nb.vari[c][j]/float64(count[c]) + nb.VarSmoothing
		}
	}
	nb.trained = true
}

func classOf(match bool) int {
	if match {
		return 1
	}
	return 0
}

// logLikelihood returns log P(x | class) + log prior.
func (nb *NaiveBayes) logLikelihood(x feature.Vector, c int) float64 {
	ll := nb.logPrior[c]
	for j, v := range x {
		variance := nb.vari[c][j]
		d := v - nb.mean[c][j]
		ll += -0.5*math.Log(2*math.Pi*variance) - d*d/(2*variance)
	}
	return ll
}

// Margin returns |log P(match|x) − log P(non-match|x)|, a confidence
// margin compatible with margin-based selection.
func (nb *NaiveBayes) Margin(x feature.Vector) float64 {
	if !nb.trained {
		return 0
	}
	return math.Abs(nb.logLikelihood(x, 1) - nb.logLikelihood(x, 0))
}

// Predict labels x as matching when the match posterior dominates.
func (nb *NaiveBayes) Predict(x feature.Vector) bool {
	if !nb.trained {
		return false
	}
	return nb.logLikelihood(x, 1) > nb.logLikelihood(x, 0)
}

// PredictAll classifies a batch.
func (nb *NaiveBayes) PredictAll(X []feature.Vector) []bool {
	out := make([]bool, len(X))
	for i, x := range X {
		out[i] = nb.Predict(x)
	}
	return out
}
