package bayes

import (
	"math"
	"math/rand"
	"testing"

	"github.com/alem/alem/internal/feature"
)

func gaussianData(n int, seed int64) ([]feature.Vector, []bool) {
	r := rand.New(rand.NewSource(seed))
	X := make([]feature.Vector, 0, n)
	y := make([]bool, 0, n)
	for i := 0; i < n; i++ {
		pos := i%2 == 0
		mu := 0.2
		if pos {
			mu = 0.8
		}
		X = append(X, feature.Vector{mu + r.NormFloat64()*0.1, mu + r.NormFloat64()*0.1})
		y = append(y, pos)
	}
	return X, y
}

func TestNaiveBayesSeparable(t *testing.T) {
	X, y := gaussianData(400, 1)
	nb := New()
	nb.Train(X, y)
	ok := 0
	for i, x := range X {
		if nb.Predict(x) == y[i] {
			ok++
		}
	}
	if acc := float64(ok) / float64(len(X)); acc < 0.97 {
		t.Errorf("accuracy %.3f, want >= 0.97 on well-separated Gaussians", acc)
	}
}

func TestNaiveBayesUntrained(t *testing.T) {
	nb := New()
	if nb.Predict(feature.Vector{1, 2}) {
		t.Error("untrained NB should predict negative")
	}
	if nb.Margin(feature.Vector{1, 2}) != 0 {
		t.Error("untrained NB margin should be 0")
	}
	nb.Train(nil, nil)
	if nb.Predict(feature.Vector{1, 2}) {
		t.Error("NB trained on empty data should predict negative")
	}
}

func TestNaiveBayesMarginGeometry(t *testing.T) {
	X, y := gaussianData(400, 2)
	nb := New()
	nb.Train(X, y)
	mid := nb.Margin(feature.Vector{0.5, 0.5})
	pos := nb.Margin(feature.Vector{0.8, 0.8})
	neg := nb.Margin(feature.Vector{0.2, 0.2})
	if mid >= pos || mid >= neg {
		t.Errorf("margin(mid)=%.3f not below margin(pos)=%.3f / margin(neg)=%.3f", mid, pos, neg)
	}
}

func TestNaiveBayesSingleClass(t *testing.T) {
	X := []feature.Vector{{0.5}, {0.6}, {0.4}}
	y := []bool{true, true, true}
	nb := New()
	nb.Train(X, y)
	if !nb.Predict(feature.Vector{0.5}) {
		t.Error("all-positive training should predict positive near the data")
	}
	if m := nb.Margin(feature.Vector{0.5}); math.IsNaN(m) {
		t.Error("single-class margin is NaN")
	}
}

func TestNaiveBayesConstantFeature(t *testing.T) {
	// Zero-variance feature must not produce infinite densities.
	X := []feature.Vector{{1, 0.2}, {1, 0.8}, {1, 0.1}, {1, 0.9}}
	y := []bool{false, true, false, true}
	nb := New()
	nb.Train(X, y)
	for _, x := range X {
		if m := nb.Margin(x); math.IsNaN(m) || math.IsInf(m, 0) {
			t.Fatalf("margin(%v) = %v", x, m)
		}
	}
	if !nb.Predict(feature.Vector{1, 0.85}) {
		t.Error("high second feature should predict positive")
	}
}

func TestNaiveBayesPriorEffect(t *testing.T) {
	// Heavily skewed classes: prior should pull ambiguous points to the
	// majority class.
	var X []feature.Vector
	var y []bool
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 900; i++ {
		X = append(X, feature.Vector{0.5 + r.NormFloat64()*0.3})
		y = append(y, false)
	}
	for i := 0; i < 100; i++ {
		X = append(X, feature.Vector{0.5 + r.NormFloat64()*0.3})
		y = append(y, true)
	}
	nb := New()
	nb.Train(X, y)
	if nb.Predict(feature.Vector{0.5}) {
		t.Error("ambiguous point should go to the 9:1 majority class")
	}
}

func TestNaiveBayesPredictAll(t *testing.T) {
	X, y := gaussianData(100, 4)
	nb := New()
	nb.Train(X, y)
	all := nb.PredictAll(X)
	for i, x := range X {
		if all[i] != nb.Predict(x) {
			t.Fatalf("PredictAll[%d] mismatch", i)
		}
	}
}
