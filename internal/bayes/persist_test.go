package bayes

import (
	"bytes"
	"strings"
	"testing"
)

func TestNaiveBayesSaveLoadRoundTrip(t *testing.T) {
	X, y := gaussianData(200, 71)
	nb := New()
	nb.Train(X, y)
	var buf bytes.Buffer
	if err := nb.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X {
		if got.Predict(x) != nb.Predict(x) {
			t.Fatal("prediction differs after round trip")
		}
		if got.Margin(x) != nb.Margin(x) {
			t.Fatal("margin differs after round trip")
		}
	}
}

func TestNaiveBayesSaveUntrainedFails(t *testing.T) {
	var buf bytes.Buffer
	if err := New().SaveJSON(&buf); err == nil {
		t.Error("SaveJSON accepted an untrained model")
	}
}

func TestNaiveBayesLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadJSON(strings.NewReader("x")); err == nil {
		t.Error("LoadJSON accepted garbage")
	}
}
