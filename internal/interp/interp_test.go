package interp

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/tree"
)

// stump: f0 <= 0.5 -> non-match, else match.
func stump() *tree.Tree {
	return &tree.Tree{Root: &tree.Node{
		Feature: 0, Threshold: 0.5,
		Left:  &tree.Node{Leaf: true, Label: false},
		Right: &tree.Node{Leaf: true, Label: true},
	}}
}

func TestTreeToDNFStump(t *testing.T) {
	dnf := TreeToDNF(stump())
	if len(dnf) != 1 {
		t.Fatalf("clauses = %d, want 1", len(dnf))
	}
	if len(dnf[0]) != 1 {
		t.Fatalf("atoms = %d, want 1", len(dnf[0]))
	}
	p := dnf[0][0]
	if p.Feature != 0 || p.Threshold != 0.5 || p.Leq {
		t.Errorf("predicate = %+v, want f0 > 0.5", p)
	}
	if NumAtoms(dnf) != 1 {
		t.Errorf("NumAtoms = %d, want 1", NumAtoms(dnf))
	}
}

func TestTreeToDNFDeeper(t *testing.T) {
	// (f0 > 0.5 AND f1 <= 0.3) OR (f0 <= 0.5 AND f2 > 0.7)
	tr := &tree.Tree{Root: &tree.Node{
		Feature: 0, Threshold: 0.5,
		Left: &tree.Node{
			Feature: 2, Threshold: 0.7,
			Left:  &tree.Node{Leaf: true, Label: false},
			Right: &tree.Node{Leaf: true, Label: true},
		},
		Right: &tree.Node{
			Feature: 1, Threshold: 0.3,
			Left:  &tree.Node{Leaf: true, Label: true},
			Right: &tree.Node{Leaf: true, Label: false},
		},
	}}
	dnf := TreeToDNF(tr)
	if len(dnf) != 2 {
		t.Fatalf("clauses = %d, want 2", len(dnf))
	}
	if NumAtoms(dnf) != 4 {
		t.Errorf("NumAtoms = %d, want 4", NumAtoms(dnf))
	}
}

func TestDNFSemanticsMatchTree(t *testing.T) {
	// Property: for a trained forest, the DNF must agree with the trees'
	// own predictions on every probe.
	r := rand.New(rand.NewSource(1))
	var X []feature.Vector
	var y []bool
	for i := 0; i < 200; i++ {
		a, b := r.Float64(), r.Float64()
		X = append(X, feature.Vector{a, b})
		y = append(y, a > 0.5 != (b > 0.5))
	}
	f := tree.NewForest(5, 1)
	f.Train(X, y)
	for _, tr := range f.Trees() {
		dnf := TreeToDNF(tr)
		for i := 0; i < 100; i++ {
			x := feature.Vector{r.Float64(), r.Float64()}
			if got, want := EvalDNF(dnf, x), tr.Predict(x); got != want {
				t.Fatalf("DNF(%v) = %v, tree = %v", x, got, want)
			}
		}
	}
}

func TestForestAtomsGrowWithTrees(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var X []feature.Vector
	var y []bool
	for i := 0; i < 300; i++ {
		a, b := r.Float64(), r.Float64()
		X = append(X, feature.Vector{a, b})
		y = append(y, a+b > 1)
	}
	small := tree.NewForest(2, 2)
	small.Train(X, y)
	big := tree.NewForest(20, 2)
	big.Train(X, y)
	if ForestAtoms(big) <= ForestAtoms(small) {
		t.Errorf("atoms: Trees(20)=%d not above Trees(2)=%d (Fig. 18a shape)",
			ForestAtoms(big), ForestAtoms(small))
	}
}

func TestPureLeafTree(t *testing.T) {
	leaf := &tree.Tree{Root: &tree.Node{Leaf: true, Label: true}}
	dnf := TreeToDNF(leaf)
	if len(dnf) != 1 || len(dnf[0]) != 0 {
		t.Fatalf("pure-positive leaf DNF = %v, want one empty clause", dnf)
	}
	if !EvalDNF(dnf, []float64{0}) {
		t.Error("empty clause should match everything")
	}
	negLeaf := &tree.Tree{Root: &tree.Node{Leaf: true, Label: false}}
	if got := TreeToDNF(negLeaf); len(got) != 0 {
		t.Errorf("pure-negative leaf DNF = %v, want empty", got)
	}
	if TreeToDNF(nil) != nil {
		t.Error("nil tree should give nil DNF")
	}
}

func TestFormatDNF(t *testing.T) {
	dnf := TreeToDNF(stump())
	s := FormatDNF(dnf, nil)
	if !strings.Contains(s, "f0 > 0.500") {
		t.Errorf("FormatDNF = %q", s)
	}
	named := FormatDNF(dnf, func(i int) string { return "jaccard(name)" })
	if !strings.Contains(named, "jaccard(name) > 0.500") {
		t.Errorf("named FormatDNF = %q", named)
	}
	if got := FormatDNF(nil, nil); got != "<empty DNF>" {
		t.Errorf("empty FormatDNF = %q", got)
	}
}

func TestMineBlockingDNFRecall(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var X []feature.Vector
	var y []bool
	for i := 0; i < 400; i++ {
		match := r.Float64() < 0.25
		base := 0.2
		if match {
			base = 0.8
		}
		X = append(X, feature.Vector{base + r.Float64()*0.15, base + r.Float64()*0.15})
		y = append(y, match)
	}
	f := tree.NewForest(10, 3)
	f.Train(X, y)
	raw := make([][]float64, len(X))
	for i := range X {
		raw[i] = X[i]
	}
	dnf := MineBlockingDNF(f, raw, y, 0.95)
	if len(dnf) == 0 {
		t.Fatal("no blocking DNF mined")
	}
	// The mined DNF must cover >= 95% of positives...
	pos, covered := 0, 0
	for i := range X {
		if !y[i] {
			continue
		}
		pos++
		if EvalDNF(dnf, raw[i]) {
			covered++
		}
	}
	if float64(covered) < 0.95*float64(pos) {
		t.Errorf("mined DNF covers %d/%d positives, want >= 95%%", covered, pos)
	}
	// ...and actually prune a meaningful share of negatives.
	neg, admitted := 0, 0
	for i := range X {
		if y[i] {
			continue
		}
		neg++
		if EvalDNF(dnf, raw[i]) {
			admitted++
		}
	}
	if admitted >= neg {
		t.Error("mined DNF admits every negative; it blocks nothing")
	}
}

func TestMineBlockingDNFNoPositives(t *testing.T) {
	f := tree.NewForest(3, 4)
	f.Train([]feature.Vector{{0.1}, {0.2}}, []bool{false, false})
	if got := MineBlockingDNF(f, [][]float64{{0.1}, {0.2}}, []bool{false, false}, 0.9); got != nil {
		t.Errorf("mined %v from a no-positive set", got)
	}
}
