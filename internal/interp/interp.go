// Package interp implements the interpretability metric of §6.3 (after
// Singh et al.): a model's interpretability is inversely proportional to
// the number of atoms in its DNF representation. Rule models report their
// atom count directly; random forests are converted to DNF by walking
// every root-to-positive-leaf path — each path is a conjunction of
// predicates, the disjunction over all such paths (over all trees) is the
// forest's DNF. Per the paper, DNFs are NOT optimized into more concise
// Boolean forms, and overlapping atoms are counted with repetition.
package interp

import (
	"fmt"
	"sort"
	"strings"

	"github.com/alem/alem/internal/tree"
)

// Predicate is one atom of a tree-derived DNF: feature ≤ threshold or
// feature > threshold.
type Predicate struct {
	Feature   int
	Threshold float64
	Leq       bool
}

// String renders the predicate. The optional dimension namer (may be nil)
// maps feature indices to names such as "jaccard(name)".
func (p Predicate) String() string { return p.Format(nil) }

// Format renders the predicate using the given dimension namer.
func (p Predicate) Format(dimName func(int) string) string {
	name := fmt.Sprintf("f%d", p.Feature)
	if dimName != nil {
		name = dimName(p.Feature)
	}
	op := ">"
	if p.Leq {
		op = "<="
	}
	return fmt.Sprintf("%s %s %.3f", name, op, p.Threshold)
}

// Conjunction is one DNF clause: a root-to-positive-leaf path.
type Conjunction []Predicate

// TreeToDNF converts a decision tree into the disjunction of its
// positive-leaf paths.
func TreeToDNF(t *tree.Tree) []Conjunction {
	if t == nil || t.Root == nil {
		return nil
	}
	var out []Conjunction
	var walk func(n *tree.Node, path Conjunction)
	walk = func(n *tree.Node, path Conjunction) {
		if n.Leaf {
			if n.Label {
				out = append(out, append(Conjunction(nil), path...))
			}
			return
		}
		walk(n.Left, append(path, Predicate{Feature: n.Feature, Threshold: n.Threshold, Leq: true}))
		walk(n.Right, append(path, Predicate{Feature: n.Feature, Threshold: n.Threshold, Leq: false}))
	}
	walk(t.Root, nil)
	return out
}

// ForestToDNF converts a whole forest: the union of its trees' DNFs.
func ForestToDNF(f *tree.Forest) []Conjunction {
	var out []Conjunction
	for _, t := range f.Trees() {
		out = append(out, TreeToDNF(t)...)
	}
	return out
}

// NumAtoms counts the atoms of a DNF with repetition (§6.3).
func NumAtoms(dnf []Conjunction) int {
	n := 0
	for _, c := range dnf {
		n += len(c)
	}
	return n
}

// ForestAtoms is the Fig. 18a metric: total atoms in the forest's DNF.
func ForestAtoms(f *tree.Forest) int { return NumAtoms(ForestToDNF(f)) }

// FormatDNF renders a DNF for human inspection.
func FormatDNF(dnf []Conjunction, dimName func(int) string) string {
	if len(dnf) == 0 {
		return "<empty DNF>"
	}
	var sb strings.Builder
	for i, c := range dnf {
		if i > 0 {
			sb.WriteString("\n∨\n")
		}
		if len(c) == 0 {
			sb.WriteString("TRUE")
			continue
		}
		for j, p := range c {
			if j > 0 {
				sb.WriteString(" ∧ ")
			}
			sb.WriteString(p.Format(dimName))
		}
	}
	return sb.String()
}

// MineBlockingDNF extracts a high-recall blocking predicate from a
// trained forest, the Corleone idea the paper's §2 describes (forests
// are interpretable enough to mine blocking functions from). Clauses of
// the forest's DNF are ranked by how many labeled positives they cover
// relative to the negatives they admit, and greedily added until the
// union covers at least targetRecall of the labeled positives. The §5
// sketch — "blocking during example selection for tree-based models is
// trivial: execute the blocking predicate on all unlabeled examples" —
// is realized by evaluating the returned DNF as a pruning filter.
func MineBlockingDNF(f *tree.Forest, X [][]float64, y []bool, targetRecall float64) []Conjunction {
	var positives, negatives []int
	for i, yi := range y {
		if yi {
			positives = append(positives, i)
		} else {
			negatives = append(negatives, i)
		}
	}
	if len(positives) == 0 {
		return nil
	}
	type scoredClause struct {
		c        Conjunction
		pos, neg int
	}
	var clauses []scoredClause
	for _, c := range ForestToDNF(f) {
		if len(c) == 0 {
			continue // a TRUE clause blocks nothing
		}
		sc := scoredClause{c: c}
		for _, i := range positives {
			if clauseCovers(c, X[i]) {
				sc.pos++
			}
		}
		if sc.pos == 0 {
			continue
		}
		for _, i := range negatives {
			if clauseCovers(c, X[i]) {
				sc.neg++
			}
		}
		clauses = append(clauses, sc)
	}
	// Highest positive-coverage first; fewer admitted negatives breaks
	// ties (more selective blocking).
	sort.Slice(clauses, func(a, b int) bool {
		if clauses[a].pos != clauses[b].pos {
			return clauses[a].pos > clauses[b].pos
		}
		return clauses[a].neg < clauses[b].neg
	})
	covered := make([]bool, len(X))
	coveredPos := 0
	var out []Conjunction
	for _, sc := range clauses {
		gained := false
		for _, i := range positives {
			if !covered[i] && clauseCovers(sc.c, X[i]) {
				covered[i] = true
				coveredPos++
				gained = true
			}
		}
		if !gained {
			continue
		}
		out = append(out, sc.c)
		if float64(coveredPos) >= targetRecall*float64(len(positives)) {
			break
		}
	}
	return out
}

func clauseCovers(c Conjunction, x []float64) bool {
	for _, p := range c {
		if p.Leq {
			if !(x[p.Feature] <= p.Threshold) {
				return false
			}
		} else if !(x[p.Feature] > p.Threshold) {
			return false
		}
	}
	return true
}

// EvalDNF applies a tree-derived DNF to a vector; used to verify the
// conversion is semantics-preserving.
func EvalDNF(dnf []Conjunction, x []float64) bool {
	for _, c := range dnf {
		ok := true
		for _, p := range c {
			if p.Leq {
				if !(x[p.Feature] <= p.Threshold) {
					ok = false
					break
				}
			} else if !(x[p.Feature] > p.Threshold) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
