// Package obs is the framework's unified observability layer: a
// dependency-free metrics registry with canonical Prometheus text
// rendering, and lightweight span tracing that turns a run's phase
// timings into a JSONL manifest.
//
// The paper's contribution is a *benchmark* — comparable, reproducible
// measurements of learner×selector combinations — so measurement is not
// an afterthought here: the AL engine reports per-phase spans through
// this package (core.NewTraceObserver), the serving layer sources its
// /metrics endpoint from a Registry, and the CLIs write and summarize
// run manifests. Everything is stdlib-only so the package can sit below
// every other layer of the stack.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a process's metric families and renders them in the
// Prometheus text exposition format. Metric registration is typically
// done once at construction time; observation methods on the returned
// handles are lock-free (atomics), so hot paths pay no registry lock.
//
// Rendering is canonical: families sort by name, series sort by label
// values, so consecutive scrapes of an idle process are byte-identical
// and diffs are meaningful.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family is one named metric with HELP/TYPE metadata and its series.
type family struct {
	name    string
	help    string
	typ     string // "counter" or "gauge" or "histogram"
	labels  []string
	buckets []float64

	mu     sync.Mutex
	series map[string]metric // keyed by joined label values
	order  []string          // insertion keys, sorted at render

	// fn, when set, makes this a callback family: the value is computed
	// at scrape time (breaker state, queue depths, derived rates).
	fn func() float64
	// intFn renders without a decimal point (callback counters).
	intFn func() int64
}

type metric interface {
	write(w io.Writer, fam *family, labelValues []string)
}

func (r *Registry) family(name, help, typ string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, typ, f.typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, buckets: buckets,
		series: map[string]metric{}}
	r.families[name] = f
	return f
}

func (f *family) get(key string, mk func() metric) metric {
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.series[key]
	if !ok {
		m = mk()
		f.series[key] = m
		f.order = append(f.order, key)
	}
	return m
}

// ---- counters ----

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics; this is
// not enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, fam *family, lv []string) {
	fmt.Fprintf(w, "%s%s %d\n", fam.name, renderLabels(fam.labels, lv), c.v.Load())
}

// Counter registers (or returns the existing) unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, "counter", nil, nil)
	return f.get("", func() metric { return &Counter{} }).(*Counter)
}

// CounterFunc registers a callback counter whose value is read at scrape
// time — for counts owned by another subsystem (the breaker's trip
// count, the matcher's cache statistics).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	f := r.family(name, help, "counter", nil, nil)
	f.intFn = fn
}

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.family(name, help, "counter", labelNames, nil)}
}

// With returns the counter for the given label values (created on first
// use), which must match the family's label names in count and order.
func (v *CounterVec) With(labelValues ...string) *Counter {
	if len(labelValues) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.f.name, len(v.f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	return v.f.get(key, func() metric { return &Counter{} }).(*Counter)
}

// ---- gauges ----

// Gauge is a metric that can go up and down, stored as float64 bits so
// Add never loses a concurrent increment.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by delta (CAS loop; safe concurrently).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, fam *family, lv []string) {
	fmt.Fprintf(w, "%s%s %g\n", fam.name, renderLabels(fam.labels, lv), g.Value())
}

// Gauge registers (or returns the existing) unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, "gauge", nil, nil)
	return f.get("", func() metric { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a callback gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, "gauge", nil, nil)
	f.fn = fn
}

// ---- histograms ----

// Histogram is a fixed-bucket distribution with atomic counters; the sum
// is float64 bits CAS-updated so concurrent observes never lose an
// increment. Buckets render cumulatively at scrape, per the Prometheus
// exposition format.
type Histogram struct {
	buckets []float64
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns how many values have been observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) write(w io.Writer, fam *family, lv []string) {
	// Bucket series carry the family labels plus the "le" bound.
	names := make([]string, 0, len(fam.labels)+1)
	names = append(names, fam.labels...)
	names = append(names, "le")
	values := make([]string, len(names))
	copy(values, lv)
	cum := int64(0)
	for i, ub := range h.buckets {
		cum += h.counts[i].Load()
		values[len(values)-1] = fmt.Sprintf("%g", ub)
		fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, renderLabels(names, values), cum)
	}
	values[len(values)-1] = "+Inf"
	fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, renderLabels(names, values), h.count.Load())
	fmt.Fprintf(w, "%s_sum%s %g\n", fam.name, renderLabels(fam.labels, lv), h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", fam.name, renderLabels(fam.labels, lv), h.count.Load())
}

// Histogram registers (or returns the existing) unlabeled histogram with
// the given bucket upper bounds (ascending, +Inf implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, "histogram", nil, buckets)
	return f.get("", func() metric {
		return &Histogram{buckets: buckets, counts: make([]atomic.Int64, len(buckets))}
	}).(*Histogram)
}

// HistogramVec is a family of histograms partitioned by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, "histogram", labelNames, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if len(labelValues) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.f.name, len(v.f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	return v.f.get(key, func() metric {
		return &Histogram{buckets: v.f.buckets, counts: make([]atomic.Int64, len(v.f.buckets))}
	}).(*Histogram)
}

// ---- rendering ----

func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, values[i])
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every registered family in the text exposition
// format: families sorted by name, each preceded by its HELP and TYPE
// lines, series sorted by label values.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		switch {
		case f.intFn != nil:
			fmt.Fprintf(w, "%s %d\n", f.name, f.intFn())
		case f.fn != nil:
			fmt.Fprintf(w, "%s %g\n", f.name, f.fn())
		default:
			f.mu.Lock()
			keys := append([]string(nil), f.order...)
			f.mu.Unlock()
			sort.Strings(keys)
			for _, key := range keys {
				f.mu.Lock()
				m := f.series[key]
				f.mu.Unlock()
				var lv []string
				if key != "" || len(f.labels) > 0 {
					lv = strings.Split(key, "\x00")
				}
				m.write(w, f, lv)
			}
		}
	}
}
