package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one timed unit of work in a run manifest: a session phase
// (seed/train/evaluate/select/label), one iteration of it, how long it
// took, and a small bag of numeric attributes (labels spent, batch
// size, worker count). Spans are deliberately flat — a manifest is a
// JSONL file with one span per line, so it can be streamed, appended
// to, grepped, and summarized without loading a tree.
type Span struct {
	// Name is the phase or operation name, e.g. "train".
	Name string `json:"name"`
	// Iteration is the zero-based engine iteration the span belongs to
	// (-1 for spans outside the iteration loop, like "seed").
	Iteration int `json:"iteration"`
	// StartMS is the span's start offset in milliseconds since the trace
	// began.
	StartMS float64 `json:"start_ms"`
	// WallMS is the span's wall-clock duration in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Attrs carries numeric attributes: "labels" (cumulative), "labels_delta"
	// (granted during the span), "batch", "workers", "pool_remaining".
	Attrs map[string]float64 `json:"attrs,omitempty"`
}

// Trace collects spans in memory as a run executes. It is safe for
// concurrent use (several sessions may share one trace; their spans
// interleave). The zero value is not ready — use NewTrace.
type Trace struct {
	mu    sync.Mutex
	start time.Time
	now   func() time.Time
	spans []Span
}

// NewTrace returns a trace whose span offsets are measured from now.
func NewTrace() *Trace { return newTrace(time.Now) }

// newTrace injects the clock for deterministic tests.
func newTrace(now func() time.Time) *Trace {
	return &Trace{start: now(), now: now}
}

// Record appends a span that ended now and lasted wall. Attrs is taken
// as-is (not copied); callers must not mutate it afterwards.
func (t *Trace) Record(name string, iteration int, wall time.Duration, attrs map[string]float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.now().Sub(t.start)
	t.spans = append(t.spans, Span{
		Name:      name,
		Iteration: iteration,
		StartMS:   durMS(end - wall),
		WallMS:    durMS(wall),
		Attrs:     attrs,
	})
}

func durMS(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// Spans returns a copy of the collected spans, in record order.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Len reports how many spans have been recorded.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// WriteManifest renders the trace as a JSONL run manifest: one span per
// line, in record order. The format is append-friendly and partial
// files (a crashed run) remain parseable line by line.
func (t *Trace) WriteManifest(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Spans() {
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("obs: encoding manifest span: %w", err)
		}
	}
	return nil
}

// ReadManifest parses a JSONL run manifest written by WriteManifest.
// Blank lines are skipped; a malformed line is an error (manifests are
// machine-written — silence would hide truncation bugs).
func ReadManifest(r io.Reader) ([]Span, error) {
	var spans []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, fmt.Errorf("obs: manifest line %d: %w", line, err)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading manifest: %w", err)
	}
	return spans, nil
}

// PhaseSummary aggregates every span of one name: where a run spent its
// time and labels.
type PhaseSummary struct {
	Name        string
	Count       int
	TotalMS     float64
	MeanMS      float64
	MaxMS       float64
	LabelsDelta float64 // total labels granted in spans of this phase
	Batch       float64 // total batch size across spans
}

// Summarize aggregates spans per name, ordered by descending total wall
// time — the "where did the run spend its time" view aldiag renders.
func Summarize(spans []Span) []PhaseSummary {
	byName := map[string]*PhaseSummary{}
	var order []string
	for _, s := range spans {
		ps, ok := byName[s.Name]
		if !ok {
			ps = &PhaseSummary{Name: s.Name}
			byName[s.Name] = ps
			order = append(order, s.Name)
		}
		ps.Count++
		ps.TotalMS += s.WallMS
		if s.WallMS > ps.MaxMS {
			ps.MaxMS = s.WallMS
		}
		ps.LabelsDelta += s.Attrs["labels_delta"]
		ps.Batch += s.Attrs["batch"]
	}
	out := make([]PhaseSummary, 0, len(order))
	for _, n := range order {
		ps := byName[n]
		if ps.Count > 0 {
			ps.MeanMS = ps.TotalMS / float64(ps.Count)
		}
		out = append(out, *ps)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TotalMS > out[j].TotalMS })
	return out
}

// WriteSummary renders a phase summary table for humans: one row per
// phase, ordered by total wall time, plus a totals row.
func WriteSummary(w io.Writer, spans []Span) {
	sums := Summarize(spans)
	iters := -1
	var totalMS, totalLabels float64
	for _, s := range spans {
		if s.Iteration > iters {
			iters = s.Iteration
		}
	}
	for _, ps := range sums {
		totalMS += ps.TotalMS
		totalLabels += ps.LabelsDelta
	}
	fmt.Fprintf(w, "run manifest: %d spans, %d iterations, %.1f ms traced, %.0f labels\n\n",
		len(spans), iters+1, totalMS, totalLabels)
	fmt.Fprintf(w, "%-10s %7s %12s %10s %10s %8s %8s\n",
		"phase", "spans", "total ms", "mean ms", "max ms", "labels", "batch")
	for _, ps := range sums {
		fmt.Fprintf(w, "%-10s %7d %12.2f %10.3f %10.3f %8.0f %8.0f\n",
			ps.Name, ps.Count, ps.TotalMS, ps.MeanMS, ps.MaxMS, ps.LabelsDelta, ps.Batch)
	}
}
