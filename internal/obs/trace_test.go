package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTraceRecordAndOffsets(t *testing.T) {
	clock := time.Unix(0, 0)
	tr := newTrace(func() time.Time { return clock })
	clock = clock.Add(10 * time.Millisecond)
	tr.Record("train", 0, 4*time.Millisecond, map[string]float64{"labels": 30})
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Name != "train" || s.Iteration != 0 {
		t.Errorf("span identity %+v", s)
	}
	if s.WallMS != 4 {
		t.Errorf("WallMS = %g, want 4", s.WallMS)
	}
	if s.StartMS != 6 { // ended at 10ms, lasted 4ms
		t.Errorf("StartMS = %g, want 6", s.StartMS)
	}
	if s.Attrs["labels"] != 30 {
		t.Errorf("attrs %v", s.Attrs)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	tr := NewTrace()
	tr.Record("seed", -1, time.Millisecond, map[string]float64{"labels_delta": 30})
	tr.Record("train", 0, 2*time.Millisecond, nil)
	tr.Record("evaluate", 0, 3*time.Millisecond, map[string]float64{"workers": 2})

	var buf bytes.Buffer
	if err := tr.WriteManifest(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Fatalf("manifest has %d lines, want 3:\n%s", got, buf.String())
	}
	spans, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := tr.Spans()
	if len(spans) != len(orig) {
		t.Fatalf("round-trip lost spans: %d vs %d", len(spans), len(orig))
	}
	for i := range spans {
		if spans[i].Name != orig[i].Name || spans[i].Iteration != orig[i].Iteration {
			t.Errorf("span %d = %+v, want %+v", i, spans[i], orig[i])
		}
	}
	if spans[2].Attrs["workers"] != 2 {
		t.Errorf("span 2 attrs %v", spans[2].Attrs)
	}
}

func TestReadManifestRejectsGarbage(t *testing.T) {
	if _, err := ReadManifest(strings.NewReader("{\"name\":\"ok\",\"iteration\":0}\nnot json\n")); err == nil {
		t.Error("ReadManifest accepted a malformed line")
	}
	spans, err := ReadManifest(strings.NewReader("\n\n"))
	if err != nil || len(spans) != 0 {
		t.Errorf("blank manifest: spans=%v err=%v", spans, err)
	}
}

func TestSummarizeAggregatesPerPhase(t *testing.T) {
	spans := []Span{
		{Name: "train", Iteration: 0, WallMS: 2},
		{Name: "train", Iteration: 1, WallMS: 4},
		{Name: "evaluate", Iteration: 0, WallMS: 10},
		{Name: "label", Iteration: 0, WallMS: 1, Attrs: map[string]float64{"labels_delta": 10, "batch": 10}},
	}
	sums := Summarize(spans)
	if len(sums) != 3 {
		t.Fatalf("got %d summaries, want 3", len(sums))
	}
	// Ordered by descending total wall time.
	if sums[0].Name != "evaluate" || sums[1].Name != "train" {
		t.Errorf("order %v %v, want evaluate then train", sums[0].Name, sums[1].Name)
	}
	tr := sums[1]
	if tr.Count != 2 || tr.TotalMS != 6 || tr.MeanMS != 3 || tr.MaxMS != 4 {
		t.Errorf("train summary %+v", tr)
	}
	for _, ps := range sums {
		if ps.Name == "label" && (ps.LabelsDelta != 10 || ps.Batch != 10) {
			t.Errorf("label summary %+v", ps)
		}
	}

	var buf bytes.Buffer
	WriteSummary(&buf, spans)
	out := buf.String()
	for _, want := range []string{"4 spans", "2 iterations", "10 labels", "evaluate", "train"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
