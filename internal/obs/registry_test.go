package obs

import (
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

func TestCounterRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "A test counter.")
	c.Inc()
	c.Add(2)
	out := render(r)
	for _, want := range []string{
		"# HELP test_total A test counter.",
		"# TYPE test_total counter",
		"test_total 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 3 {
		t.Errorf("Value = %d, want 3", c.Value())
	}
}

func TestCounterVecLabelsAndSorting(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "Requests.", "route", "code")
	v.With("/b", "500").Inc()
	v.With("/a", "200").Add(2)
	v.With("/a", "200").Inc() // same series, not a new one
	out := render(r)
	aIdx := strings.Index(out, `req_total{route="/a",code="200"} 3`)
	bIdx := strings.Index(out, `req_total{route="/b",code="500"} 1`)
	if aIdx < 0 || bIdx < 0 {
		t.Fatalf("missing series:\n%s", out)
	}
	if aIdx > bIdx {
		t.Errorf("series not sorted by label values:\n%s", out)
	}
}

func TestGaugeSetAddAndFunc(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "Queue depth.")
	g.Set(5)
	g.Add(-2)
	r.GaugeFunc("derived", "Computed at scrape.", func() float64 { return 0.25 })
	r.CounterFunc("ticks_total", "Callback counter.", func() int64 { return 7 })
	out := render(r)
	for _, want := range []string{"depth 3", "derived 0.25", "ticks_total 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100) // over the top bucket: only +Inf counts it
	out := render(r)
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="10"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 100.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramVecSeparatesSeries(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("dur_seconds", "Duration.", []float64{1}, "route")
	v.With("/x").Observe(0.5)
	v.With("/y").Observe(2)
	out := render(r)
	for _, want := range []string{
		`dur_seconds_bucket{route="/x",le="1"} 1`,
		`dur_seconds_bucket{route="/y",le="1"} 0`,
		`dur_seconds_bucket{route="/y",le="+Inf"} 1`,
		`dur_seconds_count{route="/x"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFamiliesSortedAndIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "Last.")
	r.Counter("aaa_total", "First.")
	if c1, c2 := r.Counter("aaa_total", "First."), r.Counter("aaa_total", "ignored"); c1 != c2 {
		t.Error("re-registering a counter returned a different handle")
	}
	out := render(r)
	if strings.Index(out, "aaa_total") > strings.Index(out, "zzz_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering the same name with a different type did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x_total", "counter")
	r.Gauge("x_total", "gauge")
}

// TestConcurrentObservation hammers every metric type from several
// goroutines while scraping; run under -race this is the registry's
// soundness check, and the final counts must be exact.
func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", []float64{0.5})
	v := r.CounterVec("v_total", "v", "k")
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.1)
				v.With("a").Inc()
			}
		}()
	}
	for i := 0; i < 10; i++ {
		render(r)
	}
	wg.Wait()
	if c.Value() != workers*each {
		t.Errorf("counter = %d, want %d", c.Value(), workers*each)
	}
	if g.Value() != workers*each {
		t.Errorf("gauge = %g, want %d", g.Value(), workers*each)
	}
	if h.Count() != workers*each {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*each)
	}
}
