// Package cluster turns pairwise match predictions into entity clusters —
// the standard post-processing step of a deduplication pipeline (Cora in
// the benchmark is exactly this shape): predicted matches induce a graph
// over records, and connected components are the resolved entities.
// Pairwise classifiers routinely produce non-transitive predictions
// (A≈B, B≈C, A≉C); clustering reconciles them, and cluster-level metrics
// quantify what the reconciliation cost or gained.
package cluster

import "sort"

// Node identifies a record: side 0 is the left table, 1 the right.
type Node struct {
	Side int
	Row  int
}

// Clusters groups nodes into resolved entities.
type Clusters struct {
	// Members lists each cluster's nodes, every cluster sorted, clusters
	// ordered by their smallest node. Singletons are included.
	Members [][]Node
	byNode  map[Node]int
}

// Edge is one predicted match between a left and a right record.
type Edge struct {
	L, R int
}

// Connected builds clusters as connected components over the predicted
// match edges, with every record in [0,nLeft) × [0,nRight) present
// (unmatched records become singletons).
func Connected(nLeft, nRight int, edges []Edge) *Clusters {
	parent := make(map[Node]Node, nLeft+nRight)
	var find func(Node) Node
	find = func(x Node) Node {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b Node) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i := 0; i < nLeft; i++ {
		find(Node{0, i})
	}
	for i := 0; i < nRight; i++ {
		find(Node{1, i})
	}
	for _, e := range edges {
		union(Node{0, e.L}, Node{1, e.R})
	}

	groups := map[Node][]Node{}
	for n := range parent {
		root := find(n)
		groups[root] = append(groups[root], n)
	}
	c := &Clusters{byNode: make(map[Node]int, nLeft+nRight)}
	for _, members := range groups {
		sort.Slice(members, func(i, j int) bool { return nodeLess(members[i], members[j]) })
		c.Members = append(c.Members, members)
	}
	sort.Slice(c.Members, func(i, j int) bool {
		return nodeLess(c.Members[i][0], c.Members[j][0])
	})
	for ci, members := range c.Members {
		for _, n := range members {
			c.byNode[n] = ci
		}
	}
	return c
}

// Components is the single-set counterpart of Connected: it partitions
// the nodes 0..n-1 into connected components over undirected edges
// {a, b}. Every node appears (isolated nodes become singletons), each
// component is sorted ascending, and components are ordered by their
// smallest node — fully deterministic, independent of edge order. The
// selection layer uses it to group near-duplicate candidate pairs in
// feature space before diversity-aware batch sampling; edges whose
// endpoints fall outside [0, n) are ignored.
func Components(n int, edges [][2]int) [][]int {
	if n <= 0 {
		return nil
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			continue
		}
		ra, rb := find(a), find(b)
		if ra != rb {
			// Root at the smaller index so the representative is stable.
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	groups := make(map[int][]int, n)
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		members := groups[r]
		sort.Ints(members)
		out = append(out, members)
	}
	return out
}

func nodeLess(a, b Node) bool {
	if a.Side != b.Side {
		return a.Side < b.Side
	}
	return a.Row < b.Row
}

// SameCluster reports whether two nodes were resolved to one entity.
func (c *Clusters) SameCluster(a, b Node) bool {
	ca, oka := c.byNode[a]
	cb, okb := c.byNode[b]
	return oka && okb && ca == cb
}

// NumClusters returns the number of resolved entities (including
// singletons).
func (c *Clusters) NumClusters() int { return len(c.Members) }

// ClusterOf returns the cluster index of a node, or -1 if unknown.
func (c *Clusters) ClusterOf(n Node) int {
	if ci, ok := c.byNode[n]; ok {
		return ci
	}
	return -1
}

// PairwiseMetrics scores the clustering against ground-truth match
// pairs: a cross-table pair counts as predicted-positive when both
// records share a cluster. Transitive closure can both repair missed
// pairs (recall up) and propagate errors (precision down); this metric
// makes the trade measurable.
func (c *Clusters) PairwiseMetrics(truth []Edge, nLeft, nRight int) (precision, recall, f1 float64) {
	truthSet := make(map[Edge]bool, len(truth))
	for _, e := range truth {
		truthSet[e] = true
	}
	tp, fp, fn := 0, 0, 0
	// Enumerate cross-table pairs cluster by cluster for predicted
	// positives; count missed truth separately.
	for _, members := range c.Members {
		var lefts, rights []int
		for _, n := range members {
			if n.Side == 0 {
				lefts = append(lefts, n.Row)
			} else {
				rights = append(rights, n.Row)
			}
		}
		for _, l := range lefts {
			for _, r := range rights {
				if truthSet[Edge{l, r}] {
					tp++
				} else {
					fp++
				}
			}
		}
	}
	for _, e := range truth {
		if !c.SameCluster(Node{0, e.L}, Node{1, e.R}) {
			fn++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return
}
