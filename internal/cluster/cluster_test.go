// External test package: the test drives a full core.Session to produce
// predictions worth clustering, and core itself now imports cluster for
// the diversity-aware batch pickers — an in-package test would be an
// import cycle.
package cluster_test

import (
	"testing"

	. "github.com/alem/alem/internal/cluster"

	"github.com/alem/alem/internal/core"
	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/oracle"
	"github.com/alem/alem/internal/tree"
)

func TestConnectedBasics(t *testing.T) {
	// L0-R0, L1-R0 -> one cluster {L0, L1, R0}; everything else singleton.
	c := Connected(3, 2, []Edge{{0, 0}, {1, 0}})
	if !c.SameCluster(Node{0, 0}, Node{0, 1}) {
		t.Error("L0 and L1 should be transitively clustered via R0")
	}
	if !c.SameCluster(Node{0, 0}, Node{1, 0}) {
		t.Error("L0 and R0 should share a cluster")
	}
	if c.SameCluster(Node{0, 0}, Node{0, 2}) {
		t.Error("L2 should be a singleton")
	}
	// 5 records, 3 in one cluster -> 3 clusters total.
	if c.NumClusters() != 3 {
		t.Errorf("NumClusters = %d, want 3", c.NumClusters())
	}
}

func TestConnectedNoEdges(t *testing.T) {
	c := Connected(2, 2, nil)
	if c.NumClusters() != 4 {
		t.Errorf("NumClusters = %d, want 4 singletons", c.NumClusters())
	}
	if c.ClusterOf(Node{0, 0}) == c.ClusterOf(Node{1, 0}) {
		t.Error("distinct singletons share a cluster id")
	}
	if c.ClusterOf(Node{0, 99}) != -1 {
		t.Error("unknown node should report -1")
	}
}

func TestConnectedDeterministicOrder(t *testing.T) {
	a := Connected(4, 4, []Edge{{3, 1}, {0, 0}, {2, 1}})
	b := Connected(4, 4, []Edge{{0, 0}, {2, 1}, {3, 1}})
	if a.NumClusters() != b.NumClusters() {
		t.Fatal("edge order changed the clustering")
	}
	for i := range a.Members {
		if len(a.Members[i]) != len(b.Members[i]) {
			t.Fatal("edge order changed cluster ordering")
		}
		for j := range a.Members[i] {
			if a.Members[i][j] != b.Members[i][j] {
				t.Fatal("edge order changed member ordering")
			}
		}
	}
}

func TestComponentsGrouping(t *testing.T) {
	// 0-2 and 4-5 connect; 9 and -1 are out of range and silently
	// dropped. Components come back ordered by smallest member, members
	// ascending.
	got := Components(6, [][2]int{{0, 2}, {4, 5}, {9, 1}, {-1, 3}})
	want := [][]int{{0, 2}, {1}, {3}, {4, 5}}
	if len(got) != len(want) {
		t.Fatalf("Components = %v, want %v", got, want)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("component %d = %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("component %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
	if c := Components(0, [][2]int{{0, 1}}); c != nil {
		t.Errorf("Components(0, ...) = %v, want nil", c)
	}
	// Edge order must not change the result.
	a := Components(5, [][2]int{{3, 4}, {1, 3}, {0, 2}})
	b := Components(5, [][2]int{{0, 2}, {3, 4}, {1, 3}})
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("edge order changed components: %v vs %v", a, b)
			}
		}
	}
}

func TestPairwiseMetricsExact(t *testing.T) {
	truth := []Edge{{0, 0}, {1, 1}}
	c := Connected(2, 2, truth)
	p, r, f1 := c.PairwiseMetrics(truth, 2, 2)
	if p != 1 || r != 1 || f1 != 1 {
		t.Errorf("perfect clustering metrics = %v %v %v", p, r, f1)
	}
}

func TestPairwiseMetricsTransitiveClosureEffects(t *testing.T) {
	// Truth: L0-R0 and L1-R1 are separate entities. Predictions chain
	// L0-R0, L1-R0 -> the component also implies L1-R0 (fp) and misses
	// nothing it was given, but L1-R1 is absent (fn).
	truth := []Edge{{0, 0}, {1, 1}}
	c := Connected(2, 2, []Edge{{0, 0}, {1, 0}})
	p, r, _ := c.PairwiseMetrics(truth, 2, 2)
	if p >= 1 {
		t.Errorf("precision = %v, want < 1 (L1-R0 is a false positive)", p)
	}
	if r >= 1 {
		t.Errorf("recall = %v, want < 1 (L1-R1 missed)", r)
	}
}

func TestClusteringRepairsMissedPairsOnCora(t *testing.T) {
	// End-to-end: on a dedup dataset with duplicate clusters, transitive
	// closure over a trained model's predictions should recover some
	// matches the pairwise model missed (recall(clusters) >=
	// recall(pairwise)).
	d, err := dataset.Load("cora", 0.03, 19)
	if err != nil {
		t.Fatal(err)
	}
	pool := core.NewPool(d)
	f := tree.NewForest(10, 19)
	core.Run(pool, f, core.ForestQBC{}, oracle.NewPerfect(d), core.Config{
		Seed: 19, MaxLabels: 200,
	})
	var predicted []Edge
	tp, fn := 0, 0
	for i, x := range pool.X {
		if f.Predict(x) {
			predicted = append(predicted, Edge{pool.Pairs[i].L, pool.Pairs[i].R})
		}
	}
	var truth []Edge
	for i, p := range pool.Pairs {
		if pool.Truth[i] {
			truth = append(truth, Edge{p.L, p.R})
		}
	}
	c := Connected(len(d.Left.Rows), len(d.Right.Rows), predicted)
	for i, p := range pool.Pairs {
		if !pool.Truth[i] {
			continue
		}
		if c.SameCluster(Node{0, p.L}, Node{1, p.R}) {
			tp++
		} else {
			fn++
		}
	}
	clusterRecall := float64(tp) / float64(tp+fn)
	// Pairwise recall of the raw model on the same pairs.
	ptp, pfn := 0, 0
	for i, x := range pool.X {
		if !pool.Truth[i] {
			continue
		}
		if f.Predict(x) {
			ptp++
		} else {
			pfn++
		}
	}
	pairRecall := float64(ptp) / float64(ptp+pfn)
	if clusterRecall < pairRecall-1e-9 {
		t.Errorf("cluster recall %.3f below pairwise recall %.3f (closure can only add)",
			clusterRecall, pairRecall)
	}
	_, _, f1 := c.PairwiseMetrics(truth, len(d.Left.Rows), len(d.Right.Rows))
	if f1 <= 0 {
		t.Error("cluster-level F1 is zero")
	}
}
