package linear

import (
	"math"
	"math/rand"
	"testing"

	"github.com/alem/alem/internal/feature"
)

// separableData builds a linearly separable 2-D problem: positives around
// (0.9, 0.9), negatives around (0.1, 0.1).
func separableData(n int, seed int64) ([]feature.Vector, []bool) {
	r := rand.New(rand.NewSource(seed))
	X := make([]feature.Vector, 0, n)
	y := make([]bool, 0, n)
	for i := 0; i < n; i++ {
		pos := i%2 == 0
		c := 0.1
		if pos {
			c = 0.9
		}
		X = append(X, feature.Vector{c + r.Float64()*0.08 - 0.04, c + r.Float64()*0.08 - 0.04})
		y = append(y, pos)
	}
	return X, y
}

func accuracy(s *SVM, X []feature.Vector, y []bool) float64 {
	ok := 0
	for i, x := range X {
		if s.Predict(x) == y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(X))
}

func TestSVMSeparable(t *testing.T) {
	X, y := separableData(200, 1)
	s := NewSVM(1)
	s.Train(X, y)
	if acc := accuracy(s, X, y); acc < 0.99 {
		t.Errorf("training accuracy %.3f on separable data, want >= 0.99", acc)
	}
}

func TestSVMMarginGeometry(t *testing.T) {
	X, y := separableData(200, 2)
	s := NewSVM(2)
	s.Train(X, y)
	// A point on the decision boundary midline should have a smaller
	// margin than cluster centers.
	mid := s.Margin(feature.Vector{0.5, 0.5})
	pos := s.Margin(feature.Vector{0.9, 0.9})
	neg := s.Margin(feature.Vector{0.1, 0.1})
	if mid >= pos || mid >= neg {
		t.Errorf("margin(mid)=%.3f not below margin(pos)=%.3f and margin(neg)=%.3f", mid, pos, neg)
	}
	if s.Margin(feature.Vector{0.5, 0.5}) < 0 {
		t.Error("margin must be non-negative")
	}
}

func TestSVMEmptyTraining(t *testing.T) {
	s := NewSVM(1)
	s.Train(nil, nil)
	if s.Predict(feature.Vector{1, 2}) {
		t.Error("untrained SVM should predict negative (decision 0)")
	}
	if s.Margin(feature.Vector{1, 2}) != 0 {
		t.Error("untrained SVM margin should be 0")
	}
}

func TestSVMDeterministicGivenSeed(t *testing.T) {
	X, y := separableData(100, 3)
	a, b := NewSVM(7), NewSVM(7)
	a.Train(X, y)
	b.Train(X, y)
	for j := range a.Weights() {
		if a.Weights()[j] != b.Weights()[j] {
			t.Fatalf("weight %d differs across same-seed runs", j)
		}
	}
	if a.Bias() != b.Bias() {
		t.Error("bias differs across same-seed runs")
	}
}

func TestSVMSingleClassDegenerate(t *testing.T) {
	// All positive labels: every prediction should be positive.
	X := []feature.Vector{{0.5, 0.5}, {0.6, 0.4}, {0.4, 0.6}}
	y := []bool{true, true, true}
	s := NewSVM(1)
	s.Train(X, y)
	if !s.Predict(feature.Vector{0.5, 0.5}) {
		t.Error("SVM trained on all-positive data should predict positive near data")
	}
}

func TestSVMWeightsOrientation(t *testing.T) {
	// Only dimension 0 is informative; |w0| must dominate |w1|.
	r := rand.New(rand.NewSource(4))
	var X []feature.Vector
	var y []bool
	for i := 0; i < 300; i++ {
		pos := i%2 == 0
		x0 := 0.1
		if pos {
			x0 = 0.9
		}
		X = append(X, feature.Vector{x0, r.Float64()})
		y = append(y, pos)
	}
	s := NewSVM(4)
	s.Train(X, y)
	w := s.Weights()
	if math.Abs(w[0]) <= math.Abs(w[1]) {
		t.Errorf("informative dim weight %.3f not above noise dim %.3f", w[0], w[1])
	}
}

func TestSVMClone(t *testing.T) {
	s := NewSVM(1)
	s.Lambda = 0.5
	s.Epochs = 7
	c := s.Clone(2)
	if c.Lambda != 0.5 || c.Epochs != 7 {
		t.Error("Clone lost hyper-parameters")
	}
	if c.Weights() != nil {
		t.Error("Clone should be untrained")
	}
}

func TestSVMRetrainResets(t *testing.T) {
	X1, y1 := separableData(100, 5)
	s := NewSVM(5)
	s.Train(X1, y1)
	// Retrain with flipped labels; predictions must flip too.
	flipped := make([]bool, len(y1))
	for i := range y1 {
		flipped[i] = !y1[i]
	}
	s.Train(X1, flipped)
	if acc := accuracy(s, X1, flipped); acc < 0.99 {
		t.Errorf("accuracy after retraining with flipped labels = %.3f", acc)
	}
}

func TestSVMPosWeightShiftsRecall(t *testing.T) {
	// Skewed data (10% positive) with overlap: up-weighting positives
	// must raise recall relative to the unweighted model.
	r := rand.New(rand.NewSource(6))
	var X []feature.Vector
	var y []bool
	for i := 0; i < 1000; i++ {
		pos := i%10 == 0
		mu := 0.35
		if pos {
			mu = 0.65
		}
		X = append(X, feature.Vector{mu + r.NormFloat64()*0.18, mu + r.NormFloat64()*0.18})
		y = append(y, pos)
	}
	recall := func(s *SVM) float64 {
		tp, fn := 0, 0
		for i, x := range X {
			if !y[i] {
				continue
			}
			if s.Predict(x) {
				tp++
			} else {
				fn++
			}
		}
		return float64(tp) / float64(tp+fn)
	}
	plain := NewSVM(6)
	plain.Train(X, y)
	weighted := NewSVM(6)
	weighted.PosWeight = 6
	weighted.Train(X, y)
	if recall(weighted) <= recall(plain) {
		t.Errorf("PosWeight=6 recall %.3f not above unweighted %.3f",
			recall(weighted), recall(plain))
	}
}

func TestSVMClonePreservesPosWeight(t *testing.T) {
	s := NewSVM(1)
	s.PosWeight = 3
	if c := s.Clone(2); c.PosWeight != 3 {
		t.Errorf("Clone lost PosWeight: %v", c.PosWeight)
	}
}
