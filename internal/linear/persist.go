package linear

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
)

// svmState is the serialized form of a trained SVM.
type svmState struct {
	Lambda    float64   `json:"lambda"`
	Epochs    int       `json:"epochs"`
	PosWeight float64   `json:"pos_weight,omitempty"`
	Weights   []float64 `json:"weights"`
	Bias      float64   `json:"bias"`
}

// SaveJSON writes the trained model (hyper-parameters, weights, bias) so
// it can be reused without relearning — the "reusable EM model" the
// paper's §2 motivates active learning with.
func (s *SVM) SaveJSON(w io.Writer) error {
	st := svmState{Lambda: s.Lambda, Epochs: s.Epochs, PosWeight: s.PosWeight, Weights: s.w, Bias: s.b}
	if err := json.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("linear: encoding SVM: %w", err)
	}
	return nil
}

// LoadJSON reads a model written by SaveJSON. The loaded model predicts
// immediately; retraining reinitializes it.
func LoadJSON(r io.Reader) (*SVM, error) {
	var st svmState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("linear: decoding SVM: %w", err)
	}
	s := NewSVM(0)
	s.Lambda, s.Epochs, s.PosWeight = st.Lambda, st.Epochs, st.PosWeight
	s.w, s.b = st.Weights, st.Bias
	s.rand = rand.New(rand.NewSource(0))
	return s, nil
}
