package linear

import (
	"bytes"
	"strings"
	"testing"

	"github.com/alem/alem/internal/feature"
)

func TestSVMSaveLoadRoundTrip(t *testing.T) {
	X, y := separableData(200, 41)
	s := NewSVM(41)
	s.Train(X, y)
	var buf bytes.Buffer
	if err := s.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X {
		if got.Predict(x) != s.Predict(x) {
			t.Fatalf("prediction differs after round trip on %v", x)
		}
		if got.Margin(x) != s.Margin(x) {
			t.Fatalf("margin differs after round trip on %v", x)
		}
	}
	if got.Lambda != s.Lambda || got.Epochs != s.Epochs {
		t.Error("hyper-parameters lost in round trip")
	}
}

func TestSVMLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadJSON(strings.NewReader("not json")); err == nil {
		t.Error("LoadJSON accepted garbage")
	}
}

func TestSVMLoadedModelRetrains(t *testing.T) {
	X, y := separableData(100, 42)
	s := NewSVM(42)
	s.Train(X, y)
	var buf bytes.Buffer
	if err := s.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded model must be fully functional, including retraining.
	flipped := make([]bool, len(y))
	for i := range y {
		flipped[i] = !y[i]
	}
	got.Train(X, flipped)
	ok := 0
	for i, x := range X {
		if got.Predict(x) == flipped[i] {
			ok++
		}
	}
	if float64(ok)/float64(len(X)) < 0.95 {
		t.Error("loaded model failed to retrain")
	}
}

func TestSVMSaveUntrained(t *testing.T) {
	var buf bytes.Buffer
	s := NewSVM(1)
	if err := s.SaveJSON(&buf); err != nil {
		t.Fatalf("saving an untrained SVM should produce an empty model, got %v", err)
	}
	got, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Predict(feature.Vector{1, 2}) {
		t.Error("untrained round trip should predict negative")
	}
}
