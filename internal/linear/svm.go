// Package linear implements the linear classifier of the benchmark: a
// binary soft-margin SVM trained in the primal with Pegasos-style
// stochastic sub-gradient descent on hinge loss. The paper's linear
// learner (§4.2.1, Weka SMO) exposes exactly the surface needed by the
// framework — a weight vector, a bias, and a margin |w·x + b| used both
// by margin-based example selection and by the §5.1 blocking-dimension
// optimization — and this implementation provides the same surface.
package linear

import (
	"math"
	"math/rand"

	"github.com/alem/alem/internal/feature"
)

// SVM is a binary linear classifier. The zero value is not usable; call
// NewSVM.
type SVM struct {
	// Lambda is the L2 regularization strength.
	Lambda float64
	// Epochs is the number of passes over the training set.
	Epochs int
	// PosWeight scales the loss of positive (matching) examples; values
	// above 1 counter the class skew pervasive in EM candidate pools
	// (§2 notes skew is why plain accuracy objectives fail for EM).
	// 0 or 1 means unweighted.
	PosWeight float64

	w    []float64
	b    float64
	rand *rand.Rand
}

// NewSVM returns an SVM with the benchmark's default hyper-parameters.
// The seed controls example shuffling only.
func NewSVM(seed int64) *SVM {
	return &SVM{Lambda: 1e-4, Epochs: 60, rand: rand.New(rand.NewSource(seed))}
}

// Name implements the learner interface.
func (s *SVM) Name() string { return "linear-svm" }

// Train fits the classifier to the labeled vectors. Training is done from
// scratch on every call, matching the benchmark protocol of retraining on
// the cumulative labeled set each active learning iteration.
func (s *SVM) Train(X []feature.Vector, y []bool) {
	if len(X) == 0 {
		s.w, s.b = nil, 0
		return
	}
	dim := len(X[0])
	// Bias as a weight on an implicit constant-1 feature, so the same
	// sub-gradient step and L2 shrink apply to it.
	s.w = make([]float64, dim)
	s.b = 0
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t := 1.0
	for epoch := 0; epoch < s.Epochs; epoch++ {
		s.rand.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			eta := 1 / (s.Lambda * (t + 100))
			t++
			yi := -1.0
			if y[i] {
				yi = 1
			}
			score := s.decision(X[i])
			shrink := 1 - eta*s.Lambda
			for j := range s.w {
				s.w[j] *= shrink
			}
			s.b *= shrink
			if yi*score < 1 {
				step := eta * yi
				if y[i] && s.PosWeight > 1 {
					step *= s.PosWeight
				}
				for j, xj := range X[i] {
					s.w[j] += step * xj
				}
				s.b += step
			}
		}
	}
}

func (s *SVM) decision(x feature.Vector) float64 {
	d := s.b
	for j, xj := range x {
		d += s.w[j] * xj
	}
	return d
}

// DecisionValue returns w·x + b (signed).
func (s *SVM) DecisionValue(x feature.Vector) float64 {
	if s.w == nil {
		return 0
	}
	return s.decision(x)
}

// Margin returns |w·x + b|, the distance proxy used by margin-based
// example selection (§4.2.1): the sign is ignored because ambiguous
// examples are selected from both classes.
func (s *SVM) Margin(x feature.Vector) float64 { return math.Abs(s.DecisionValue(x)) }

// Predict classifies one vector.
func (s *SVM) Predict(x feature.Vector) bool { return s.DecisionValue(x) > 0 }

// PredictAll classifies a batch.
func (s *SVM) PredictAll(X []feature.Vector) []bool {
	out := make([]bool, len(X))
	for i, x := range X {
		out[i] = s.Predict(x)
	}
	return out
}

// Weights returns the learned weight vector (not a copy). The §5.1
// blocking optimization reads it to find the top-K |weight| dimensions.
func (s *SVM) Weights() []float64 { return s.w }

// Bias returns the learned bias term.
func (s *SVM) Bias() float64 { return s.b }

// Dim returns the feature dimensionality the model was trained on, or 0
// for an untrained model. Deployment-time schema validation uses it to
// reject extractors that do not reproduce the training feature space.
func (s *SVM) Dim() int { return len(s.w) }

// Clone returns an untrained copy with the same hyper-parameters and an
// independent RNG derived from seed; QBC committees use it to train B
// classifiers on bootstrap resamples.
func (s *SVM) Clone(seed int64) *SVM {
	return &SVM{Lambda: s.Lambda, Epochs: s.Epochs, PosWeight: s.PosWeight,
		rand: rand.New(rand.NewSource(seed))}
}
