package model

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/linear"
)

// validArtifactBytes builds a well-formed artifact to seed the fuzzer:
// a tiny SVM trained at the dimensionality the one-attribute float
// pipeline implies, so mutations explore the space near real files
// instead of bouncing off the envelope checks immediately.
func validArtifactBytes(tb testing.TB) []byte {
	tb.Helper()
	schema := []string{"name"}
	dim := feature.NewExtractor(schema).Dim()
	r := rand.New(rand.NewSource(1))
	X := make([]feature.Vector, 40)
	y := make([]bool, 40)
	for i := range X {
		v := make(feature.Vector, dim)
		for j := range v {
			v[j] = r.Float64()
		}
		X[i] = v
		y[i] = i%2 == 0
	}
	svm := linear.NewSVM(1)
	svm.Train(X, y)
	var buf bytes.Buffer
	if err := Save(&buf, svm, Meta{Schema: schema}); err != nil {
		tb.Fatalf("building seed artifact: %v", err)
	}
	return buf.Bytes()
}

// FuzzLoadModel asserts the artifact loader's safety contract: arbitrary
// bytes — truncated files, bit-flipped envelopes, hostile JSON — must
// come back as an error, never a panic or a successfully "loaded" model
// that violates its own invariants. Artifacts are the trust boundary
// between training and serving (almserve loads whatever file it is
// pointed at), so the loader is the right place to be paranoid.
func FuzzLoadModel(f *testing.F) {
	valid := validArtifactBytes(f)
	f.Add(valid)
	f.Add([]byte("{}"))
	f.Add([]byte(`{"format":"alem-model","version":1}`))
	f.Add([]byte(`{"format":"alem-model","version":1,"kind":"svm","meta":{"schema":["a"]}}`))
	if len(valid) > 10 {
		f.Add(valid[:len(valid)/2]) // truncated file
		mutated := bytes.Replace(valid, []byte(`"svm"`), []byte(`"rules"`), 1)
		f.Add(mutated) // kind/payload mismatch
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		art, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A load that claims success must hand back a usable artifact.
		if art.Learner == nil {
			t.Fatal("Load succeeded with a nil learner")
		}
		if art.Dim <= 0 {
			t.Fatalf("Load succeeded with non-positive dim %d", art.Dim)
		}
		if len(art.Meta.Schema) == 0 {
			t.Fatal("Load succeeded with an empty schema")
		}
	})
}
