package model

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/alem/alem/internal/blocking"
	"github.com/alem/alem/internal/core"
	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/linear"
	"github.com/alem/alem/internal/match"
	"github.com/alem/alem/internal/neural"
	"github.com/alem/alem/internal/rules"
	"github.com/alem/alem/internal/textsim"
	"github.com/alem/alem/internal/tree"
)

// fixture is a blocked + featurized beer instance shared across tests.
type fixture struct {
	d     *dataset.Dataset
	pairs []dataset.PairKey
	X     []feature.Vector // standard 21-metric vectors
	Xb    []feature.Vector // Boolean atom vectors as 0/1 floats
	y     []bool
}

var (
	fixOnce sync.Once
	fix     fixture
)

func beerFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		d, err := dataset.Load("beer", 1.0, 11)
		if err != nil {
			panic(err)
		}
		res, err := blocking.Generate(context.Background(),
			blocking.NewCandidateIndex(d, blocking.IndexOptions{}))
		if err != nil {
			panic(err)
		}
		ext := feature.NewExtractor(d.Left.Schema)
		X := ext.ExtractPairs(d, res.Pairs)
		bext := feature.NewBoolExtractor(d.Left.Schema)
		bits := bext.ExtractPairs(d, res.Pairs)
		Xb := make([]feature.Vector, len(bits))
		for i, row := range bits {
			v := make(feature.Vector, len(row))
			for j, b := range row {
				if b {
					v[j] = 1
				}
			}
			Xb[i] = v
		}
		y := make([]bool, len(res.Pairs))
		for i, p := range res.Pairs {
			y[i] = d.IsMatch(p)
		}
		fix = fixture{d: d, pairs: res.Pairs, X: X, Xb: Xb, y: y}
	})
	return &fix
}

// roundTrip saves and reloads a learner, then checks the reloaded
// artifact reproduces the original's predictions on the training pool.
func roundTrip(t *testing.T, l core.Learner, meta Meta, wantKind Kind, X []feature.Vector) *Artifact {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, l, meta); err != nil {
		t.Fatalf("Save: %v", err)
	}
	a, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if a.Kind != wantKind {
		t.Errorf("kind = %q, want %q", a.Kind, wantKind)
	}
	if a.Meta.BlockThreshold != meta.BlockThreshold {
		t.Errorf("block threshold = %v, want %v", a.Meta.BlockThreshold, meta.BlockThreshold)
	}
	if a.Meta.Features != meta.Features {
		t.Errorf("featurization = %v, want %v", a.Meta.Features, meta.Features)
	}
	if len(a.Meta.Schema) != len(meta.Schema) {
		t.Errorf("schema = %v, want %v", a.Meta.Schema, meta.Schema)
	}
	want := l.PredictAll(X)
	got := a.Learner.PredictAll(X)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("prediction %d diverged after round trip: %v vs %v", i, want[i], got[i])
		}
	}
	return a
}

func TestRoundTripSVM(t *testing.T) {
	fx := beerFixture(t)
	svm := linear.NewSVM(11)
	svm.Train(fx.X, fx.y)
	meta := Meta{Schema: fx.d.Left.Schema, BlockThreshold: fx.d.BlockThreshold,
		Dataset: "beer", Labels: len(fx.y)}
	a := roundTrip(t, svm, meta, KindSVM, fx.X)
	if a.Meta.Dataset != "beer" || a.Meta.Labels != len(fx.y) {
		t.Errorf("provenance lost: %+v", a.Meta)
	}
	if a.Dim != len(fx.X[0]) {
		t.Errorf("dim = %d, want %d", a.Dim, len(fx.X[0]))
	}
}

func TestRoundTripNeuralNet(t *testing.T) {
	fx := beerFixture(t)
	net := neural.NewNet(8, 11)
	net.Train(fx.X, fx.y)
	meta := Meta{Schema: fx.d.Left.Schema, BlockThreshold: fx.d.BlockThreshold}
	roundTrip(t, net, meta, KindNeuralNet, fx.X)
}

func TestRoundTripRandomForest(t *testing.T) {
	fx := beerFixture(t)
	f := tree.NewForest(10, 11)
	f.Train(fx.X, fx.y)
	meta := Meta{Schema: fx.d.Left.Schema, BlockThreshold: fx.d.BlockThreshold}
	a := roundTrip(t, f, meta, KindRandomForest, fx.X)

	// The artifact alone must produce a working matcher on fresh tables.
	fresh, err := dataset.Load("beer", 1.0, 12)
	if err != nil {
		t.Fatal(err)
	}
	pairs, candidates, err := a.Matcher().Match(context.Background(), fresh.Left, fresh.Right)
	if err != nil {
		t.Fatal(err)
	}
	if candidates == 0 || len(pairs) == 0 {
		t.Errorf("artifact matcher predicted %d of %d candidates", len(pairs), candidates)
	}
}

func TestRoundTripRules(t *testing.T) {
	fx := beerFixture(t)
	bext := feature.NewBoolExtractor(fx.d.Left.Schema)
	m := rules.NewModel(bext)
	m.Train(fx.Xb, fx.y)
	if len(m.Rules()) == 0 {
		t.Skip("no rules learned on this fixture")
	}
	meta := Meta{Schema: fx.d.Left.Schema, BlockThreshold: fx.d.BlockThreshold,
		Features: match.BoolFeatures}
	roundTrip(t, m, meta, KindRules, fx.Xb)

	// Rules demand bool featurization; saving them as float must fail.
	var buf bytes.Buffer
	if err := Save(&buf, m, Meta{Schema: fx.d.Left.Schema}); err == nil {
		t.Error("Save accepted a rule model with float featurization")
	}
}

func TestRoundTripExtendedCorpus(t *testing.T) {
	fx := beerFixture(t)
	corpus := feature.CorpusOf(fx.d)
	ext := feature.NewExtendedExtractor(fx.d.Left.Schema, corpus)
	X := ext.ExtractPairs(fx.d, fx.pairs)
	svm := linear.NewSVM(11)
	svm.Train(X, fx.y)

	meta := Meta{Schema: fx.d.Left.Schema, BlockThreshold: fx.d.BlockThreshold,
		Features: match.ExtendedFeatures, Corpus: corpus}
	a := roundTrip(t, svm, meta, KindSVM, X)
	if a.Meta.Corpus == nil {
		t.Fatal("corpus lost in round trip")
	}
	// The restored corpus must weight tokens identically: re-extract with
	// it and compare vectors. Tolerance, not equality — TF-IDF cosine
	// accumulates over map iteration order, so even back-to-back
	// extractions with the same corpus differ in the last ulps.
	ext2 := feature.NewExtendedExtractor(fx.d.Left.Schema, a.Meta.Corpus)
	X2 := ext2.ExtractPairs(fx.d, fx.pairs)
	for i := range X {
		for j := range X[i] {
			if diff := X[i][j] - X2[i][j]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("vector %d dim %d: %v != %v after corpus round trip", i, j, X[i][j], X2[i][j])
			}
		}
	}
	if a.Meta.Corpus.NumDocs() != corpus.NumDocs() {
		t.Errorf("corpus docs = %d, want %d", a.Meta.Corpus.NumDocs(), corpus.NumDocs())
	}

	// Extended without a corpus is rejected at save time.
	var buf bytes.Buffer
	err := Save(&buf, svm, Meta{Schema: fx.d.Left.Schema, Features: match.ExtendedFeatures})
	if err == nil {
		t.Error("Save accepted extended featurization without a corpus")
	}
}

func TestSaveRejectsDimMismatch(t *testing.T) {
	fx := beerFixture(t)
	svm := linear.NewSVM(1)
	svm.Train([]feature.Vector{{1, 0}, {0, 1}}, []bool{true, false})
	var buf bytes.Buffer
	err := Save(&buf, svm, Meta{Schema: fx.d.Left.Schema})
	if err == nil {
		t.Fatal("Save accepted a learner whose dim contradicts the schema")
	}
	if !strings.Contains(err.Error(), "2-dim") {
		t.Errorf("error %q does not name the trained dimensionality", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      "not json at all",
		"wrong format":  `{"format":"something-else","version":1}`,
		"wrong version": `{"format":"alem-model","version":99}`,
		"no schema":     `{"format":"alem-model","version":1,"kind":"linear-svm","featurization":"float","learner":{}}`,
		"bad kind":      `{"format":"alem-model","version":1,"kind":"nope","schema":["a"],"featurization":"float","dim":21,"learner":{}}`,
		"bad feats":     `{"format":"alem-model","version":1,"kind":"linear-svm","schema":["a"],"featurization":"nope","dim":21,"learner":{}}`,
	}
	for name, raw := range cases {
		if _, err := Load(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: Load accepted %q", name, raw)
		}
	}
}

// TestLoadErrorsAreTypedInvalidArtifact pins the contract the serving
// registry's hot-swap path depends on: every way an artifact can fail
// to load — truncated mid-stream, garbage, drifted pipeline — surfaces
// through the single typed ErrInvalidArtifact sentinel, so callers can
// distinguish "the offered model is bad" from I/O faults with errors.Is
// instead of string matching. And a rejected Load returns a nil
// artifact: there is no partially-applied model to leak into serving.
func TestLoadErrorsAreTypedInvalidArtifact(t *testing.T) {
	fx := beerFixture(t)
	svm := linear.NewSVM(11)
	svm.Train(fx.X, fx.y)
	var buf bytes.Buffer
	if err := Save(&buf, svm, Meta{Schema: fx.d.Left.Schema}); err != nil {
		t.Fatal(err)
	}
	valid := strings.TrimRight(buf.String(), "\n")

	cases := map[string]string{
		"truncated early":     valid[:10],
		"truncated mid-body":  valid[:len(valid)/2],
		"truncated last byte": valid[:len(valid)-1],
		"garbage":             "\x00\xffnot a model at all",
		"wrong format":        `{"format":"something-else","version":1}`,
		"wrong version":       `{"format":"alem-model","version":99}`,
		"no schema":           `{"format":"alem-model","version":1,"kind":"linear-svm","featurization":"float","learner":{}}`,
		"unknown kind":        `{"format":"alem-model","version":1,"kind":"nope","schema":["a"],"featurization":"float","dim":21,"learner":{}}`,
		"learner garbage":     strings.Replace(valid, `"learner"`, `"learner_gone"`, 1),
	}
	for name, raw := range cases {
		art, err := Load(strings.NewReader(raw))
		if err == nil {
			t.Errorf("%s: Load accepted the artifact", name)
			continue
		}
		if !errors.Is(err, ErrInvalidArtifact) {
			t.Errorf("%s: error %v does not wrap ErrInvalidArtifact", name, err)
		}
		if art != nil {
			t.Errorf("%s: rejected Load returned a non-nil artifact", name)
		}
	}
}

// TestLoadRejectsDriftedMetricSet guards the self-description: if the
// build's metric pipeline no longer reproduces the artifact's recorded
// dims/metrics, loading must fail instead of mispredicting.
func TestLoadRejectsDriftedMetricSet(t *testing.T) {
	fx := beerFixture(t)
	svm := linear.NewSVM(11)
	svm.Train(fx.X, fx.y)
	var buf bytes.Buffer
	if err := Save(&buf, svm, Meta{Schema: fx.d.Left.Schema}); err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(buf.String(), `"dim": `+itoa(len(fx.X[0])), `"dim": 7`, 1)
	if tampered == buf.String() {
		t.Fatal("tampering failed; envelope layout changed?")
	}
	if _, err := Load(strings.NewReader(tampered)); err == nil {
		t.Error("Load accepted an artifact whose dim does not match the pipeline")
	}
}

func itoa(n int) string {
	var b []byte
	if n == 0 {
		return "0"
	}
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// corpusJSONRoundTrip exercises the textsim corpus persistence directly.
func TestCorpusJSONRoundTrip(t *testing.T) {
	c := textsim.NewCorpus([]string{"pale ale brewery", "ipa brewery", "stout"})
	var buf bytes.Buffer
	data, err := c.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(data)
	var c2 textsim.Corpus
	if err := c2.UnmarshalJSON(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	for _, tok := range []string{"brewery", "ipa", "unseen-token"} {
		if c.IDF(tok) != c2.IDF(tok) {
			t.Errorf("IDF(%q) = %v, want %v", tok, c2.IDF(tok), c.IDF(tok))
		}
	}
}
