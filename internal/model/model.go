// Package model defines the framework's unified model artifact: one
// self-describing JSON envelope that captures everything needed to take
// a learner trained by active learning and serve it against fresh
// tables — the learner's parameters *and* the pipeline configuration
// (schema, blocking threshold, featurization mode, metric list, corpus
// statistics) that deployment must reproduce bit-for-bit.
//
// Before this envelope existed, callers hand-wired four disjoint Load*
// entry points plus out-of-band threshold and featurization knowledge;
// a forgotten flag silently mispredicted. A saved artifact now fully
// determines serving-time behaviour: internal/serve and cmd/almserve
// start from a file path and nothing else.
package model

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/alem/alem/internal/core"
	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/linear"
	"github.com/alem/alem/internal/match"
	"github.com/alem/alem/internal/neural"
	"github.com/alem/alem/internal/rules"
	"github.com/alem/alem/internal/textsim"
	"github.com/alem/alem/internal/tree"
)

// Format tags the envelope so other JSON files fail fast with a clear
// error instead of a half-decoded learner.
const Format = "alem-model"

// Version is the current envelope version. Loaders reject versions they
// do not know rather than guess.
const Version = 1

// ErrInvalidArtifact is the sentinel every Load failure wraps: a
// truncated file, garbage bytes, an unknown version, a drifted metric
// set — anything that means the bytes do not yield a usable model.
// Callers swapping models at runtime branch on it with errors.Is to
// tell "this artifact is bad, keep serving the old one" apart from I/O
// plumbing errors, and Load never returns a partially-applied Artifact
// alongside it.
var ErrInvalidArtifact = errors.New("invalid model artifact")

// invalidf builds a Load rejection: the formatted reason, wrapping
// ErrInvalidArtifact so errors.Is works across every rejection path.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("model: %w: %s", ErrInvalidArtifact, fmt.Sprintf(format, args...))
}

// Kind identifies the learner family inside an artifact. Values match
// the learners' Name() methods.
type Kind string

const (
	KindSVM          Kind = "linear-svm"
	KindNeuralNet    Kind = "neural-net"
	KindRandomForest Kind = "random-forest"
	KindRules        Kind = "dnf-rules"
)

// Meta is the pipeline configuration saved alongside the learner: the
// part of a "model" that is not weights. Everything deployment needs to
// reproduce the training-time feature space lives here.
type Meta struct {
	// Schema is the attribute list (and order) the feature extractor was
	// built from.
	Schema []string
	// BlockThreshold is the offline token-Jaccard blocking threshold.
	BlockThreshold float64
	// Features selects the featurization pipeline.
	Features match.Featurization
	// Corpus carries training-time document-frequency statistics;
	// required when Features is ExtendedFeatures.
	Corpus *textsim.Corpus
	// Dataset optionally records the training dataset name (provenance).
	Dataset string
	// Labels optionally records how many Oracle labels training spent.
	Labels int
}

// envelope is the on-disk JSON form.
type envelope struct {
	Format         string          `json:"format"`
	Version        int             `json:"version"`
	Kind           Kind            `json:"kind"`
	Schema         []string        `json:"schema"`
	BlockThreshold float64         `json:"block_threshold"`
	Featurization  string          `json:"featurization"`
	Metrics        []string        `json:"metrics"`
	Dim            int             `json:"dim"`
	Corpus         *textsim.Corpus `json:"corpus,omitempty"`
	Dataset        string          `json:"dataset,omitempty"`
	Labels         int             `json:"labels,omitempty"`
	Learner        json.RawMessage `json:"learner"`
}

// Artifact is a loaded model: the learner plus its pipeline metadata,
// validated against each other.
type Artifact struct {
	Kind    Kind
	Learner core.Learner
	Meta    Meta
	// Dim is the feature dimensionality of the training pipeline.
	Dim int
}

// Matcher builds the deployment matcher the artifact describes; no
// additional pipeline configuration is needed.
func (a *Artifact) Matcher() *match.Matcher {
	return &match.Matcher{
		Learner:        a.Learner,
		BlockThreshold: a.Meta.BlockThreshold,
		Features:       a.Meta.Features,
		Corpus:         a.Meta.Corpus,
	}
}

// Save writes the unified artifact for a trained learner. It rejects
// unsupported learner types, a missing corpus for extended featurization
// and a learner whose feature space contradicts the schema — the same
// validation loading performs, so a file that saved cleanly loads
// cleanly.
func Save(w io.Writer, l core.Learner, meta Meta) error {
	if l == nil {
		return fmt.Errorf("model: nil learner")
	}
	if len(meta.Schema) == 0 {
		return fmt.Errorf("model: Meta.Schema is required (the extractor is rebuilt from it at load time)")
	}
	dim, metrics, err := pipelineInfo(meta)
	if err != nil {
		return fmt.Errorf("model: %w", err)
	}
	if err := match.ValidateDim(l, dim); err != nil {
		return fmt.Errorf("model: %w", err)
	}

	var kind Kind
	var buf bytes.Buffer
	switch v := l.(type) {
	case *linear.SVM:
		kind, err = KindSVM, v.SaveJSON(&buf)
	case *neural.Net:
		kind, err = KindNeuralNet, v.SaveJSON(&buf)
	case *tree.Forest:
		kind, err = KindRandomForest, v.SaveJSON(&buf)
	case *rules.Model:
		if meta.Features != match.BoolFeatures {
			return fmt.Errorf("model: the rule learner requires bool featurization, got %s", meta.Features)
		}
		kind, err = KindRules, v.SaveJSON(&buf, dim)
	default:
		return fmt.Errorf("model: unsupported learner type %T (want SVM, neural net, random forest or rule model)", l)
	}
	if err != nil {
		return err
	}

	env := envelope{
		Format:         Format,
		Version:        Version,
		Kind:           kind,
		Schema:         meta.Schema,
		BlockThreshold: meta.BlockThreshold,
		Featurization:  meta.Features.String(),
		Metrics:        metrics,
		Dim:            dim,
		Dataset:        meta.Dataset,
		Labels:         meta.Labels,
		Learner:        json.RawMessage(bytes.TrimSpace(buf.Bytes())),
	}
	if meta.Features == match.ExtendedFeatures {
		env.Corpus = meta.Corpus
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(env); err != nil {
		return fmt.Errorf("model: encoding artifact: %w", err)
	}
	return nil
}

// Load reads an artifact written by Save, rebuilds the learner, and
// validates that the stored pipeline still produces the feature space
// the learner was trained on (a metric added or removed since the file
// was written is a hard error, not a silent misprediction).
func Load(r io.Reader) (*Artifact, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, invalidf("decoding artifact: %v", err)
	}
	if env.Format != Format {
		return nil, invalidf("not a model artifact (format %q, want %q); legacy single-learner files load via the deprecated Load* helpers", env.Format, Format)
	}
	if env.Version != Version {
		return nil, invalidf("unsupported artifact version %d (this build reads %d)", env.Version, Version)
	}
	feats, err := match.ParseFeaturization(env.Featurization)
	if err != nil {
		return nil, invalidf("%v", err)
	}
	if len(env.Schema) == 0 {
		return nil, invalidf("artifact has no schema")
	}
	if feats == match.ExtendedFeatures && env.Corpus == nil {
		return nil, invalidf("extended featurization but no corpus in the artifact")
	}

	meta := Meta{
		Schema:         env.Schema,
		BlockThreshold: env.BlockThreshold,
		Features:       feats,
		Corpus:         env.Corpus,
		Dataset:        env.Dataset,
		Labels:         env.Labels,
	}
	dim, metrics, err := pipelineInfo(meta)
	if err != nil {
		return nil, invalidf("%v", err)
	}
	if dim != env.Dim {
		return nil, invalidf("artifact expects %d feature dims but this build's %s pipeline produces %d (metric set changed?)", env.Dim, feats, dim)
	}
	if len(env.Metrics) != 0 && !equalStrings(env.Metrics, metrics) {
		return nil, invalidf("artifact metric list %v does not match this build's %s pipeline %v", env.Metrics, feats, metrics)
	}

	var l core.Learner
	lr := bytes.NewReader(env.Learner)
	switch env.Kind {
	case KindSVM:
		l, err = linear.LoadJSON(lr)
	case KindNeuralNet:
		l, err = neural.LoadJSON(lr)
	case KindRandomForest:
		l, err = tree.LoadJSON(lr)
	case KindRules:
		if feats != match.BoolFeatures {
			return nil, invalidf("rule-model artifact with %s featurization", feats)
		}
		l, err = rules.LoadJSON(lr, feature.NewBoolExtractor(env.Schema))
	default:
		return nil, invalidf("unknown learner kind %q", env.Kind)
	}
	if err != nil {
		return nil, invalidf("loading %s learner: %v", env.Kind, err)
	}
	if err := match.ValidateDim(l, dim); err != nil {
		return nil, invalidf("%v", err)
	}
	return &Artifact{Kind: env.Kind, Learner: l, Meta: meta, Dim: dim}, nil
}

// pipelineInfo computes the feature dimensionality and metric-name list
// of the featurization pipeline meta describes.
func pipelineInfo(meta Meta) (int, []string, error) {
	switch meta.Features {
	case match.FloatFeatures:
		return feature.NewExtractor(meta.Schema).Dim(), metricNames(textsim.All()), nil
	case match.ExtendedFeatures:
		if meta.Corpus == nil {
			return 0, nil, fmt.Errorf("extended featurization requires Meta.Corpus")
		}
		ext := feature.NewExtendedExtractor(meta.Schema, meta.Corpus)
		return ext.Dim(), metricNames(append(textsim.All(), textsim.Extended(meta.Corpus)...)), nil
	case match.BoolFeatures:
		return feature.NewBoolExtractor(meta.Schema).Dim(), metricNames(textsim.ForRules()), nil
	}
	return 0, nil, fmt.Errorf("unknown featurization %v", meta.Features)
}

func metricNames(ms []textsim.Metric) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Name()
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
