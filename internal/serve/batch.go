package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/alem/alem/internal/core"
	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/match"
)

// ErrDraining is returned by submit once the pool has begun shutting
// down; handlers translate it to 503 so load balancers retry elsewhere.
var ErrDraining = errors.New("serve: server is draining")

// scoreJob is one /v1/score request's work unit.
type scoreJob struct {
	ctx  context.Context
	vecs []feature.Vector
	out  chan scoreResult // buffered 1: delivery never blocks a worker
}

type scoreResult struct {
	scores []float64
	err    error
}

// scorePool is a bounded worker pool with request batching: concurrent
// /v1/score requests are coalesced into merged batches so the learner is
// driven with large contiguous runs instead of per-request crumbs, and
// at most Workers batches ever execute concurrently. The intake queue is
// bounded, so overload turns into backpressure (submit blocks) and then
// deadline errors, never unbounded memory.
type scorePool struct {
	learner  core.Learner
	maxBatch int
	linger   time.Duration

	jobs   chan *scoreJob
	workCh chan []*scoreJob
	wg     sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	// Batching statistics: reuse hits are jobs that rode along in a batch
	// opened by an earlier job — the pool-reuse rate /metrics reports.
	jobsTotal    atomic.Int64
	batchesTotal atomic.Int64
	vectorsTotal atomic.Int64
}

func newScorePool(l core.Learner, workers, maxBatch, queueDepth int, linger time.Duration) *scorePool {
	p := &scorePool{
		learner:  l,
		maxBatch: maxBatch,
		linger:   linger,
		jobs:     make(chan *scoreJob, queueDepth),
		workCh:   make(chan []*scoreJob, workers),
	}
	p.wg.Add(1 + workers)
	go p.collect()
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// submit enqueues a job, blocking for queue space (backpressure) until
// the job's deadline expires or the pool drains.
func (p *scorePool) submit(j *scoreJob) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrDraining
	}
	select {
	case p.jobs <- j:
		return nil
	case <-j.ctx.Done():
		return j.ctx.Err()
	}
}

// depth reports how many jobs are waiting in the intake queue — the
// signal the load-shedding watermark reads.
func (p *scorePool) depth() int { return len(p.jobs) }

// close stops intake and waits for every accepted job to be answered.
// It is the drain step of graceful shutdown, called after the HTTP
// server has stopped accepting connections.
func (p *scorePool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}

// collect merges queued jobs into batches: a batch opens with the first
// job and admits more until it holds maxBatch vectors or the linger
// window closes. Under load batches fill instantly; when idle a lone
// request pays at most linger of extra latency (zero when linger is 0).
func (p *scorePool) collect() {
	defer func() {
		close(p.workCh)
		p.wg.Done()
	}()
	for {
		j, ok := <-p.jobs
		if !ok {
			return
		}
		batch := []*scoreJob{j}
		n := len(j.vecs)
		if p.linger > 0 && n < p.maxBatch {
			timer := time.NewTimer(p.linger)
		fill:
			for n < p.maxBatch {
				select {
				case j2, ok := <-p.jobs:
					if !ok {
						timer.Stop()
						p.dispatch(batch)
						return
					}
					batch = append(batch, j2)
					n += len(j2.vecs)
				case <-timer.C:
					break fill
				}
			}
			timer.Stop()
		} else {
			// Opportunistically absorb whatever is already queued.
		absorb:
			for n < p.maxBatch {
				select {
				case j2, ok := <-p.jobs:
					if !ok {
						p.dispatch(batch)
						return
					}
					batch = append(batch, j2)
					n += len(j2.vecs)
				default:
					break absorb
				}
			}
		}
		p.dispatch(batch)
	}
}

func (p *scorePool) dispatch(batch []*scoreJob) {
	p.batchesTotal.Add(1)
	p.jobsTotal.Add(int64(len(batch)))
	p.workCh <- batch
}

// worker scores one merged batch at a time. Jobs whose context expired
// while queued are answered with their context error without spending
// learner time; the rest are scored as one contiguous run.
func (p *scorePool) worker() {
	defer p.wg.Done()
	for batch := range p.workCh {
		live := batch[:0]
		for _, j := range batch {
			if err := j.ctx.Err(); err != nil {
				j.out <- scoreResult{err: err}
				continue
			}
			live = append(live, j)
		}
		if len(live) == 0 {
			continue
		}
		merged := make([]feature.Vector, 0, totalVecs(live))
		for _, j := range live {
			merged = append(merged, j.vecs...)
		}
		p.vectorsTotal.Add(int64(len(merged)))
		scores, err := p.scoreBatch(merged)
		off := 0
		for _, j := range live {
			if err != nil {
				j.out <- scoreResult{err: err}
				continue
			}
			j.out <- scoreResult{scores: scores[off : off+len(j.vecs) : off+len(j.vecs)]}
			off += len(j.vecs)
		}
	}
}

// scoreBatch runs the learner over one merged batch, containing panics:
// a learner that blows up on some input must fail that batch's jobs with
// 500s, not take the whole worker (and with it the process) down.
func (p *scorePool) scoreBatch(merged []feature.Vector) (scores []float64, err error) {
	defer func() {
		if rv := recover(); rv != nil {
			scores, err = nil, fmt.Errorf("serve: learner panic while scoring: %v", rv)
		}
	}()
	return match.ScoreAll(context.Background(), p.learner, merged)
}

func totalVecs(jobs []*scoreJob) int {
	n := 0
	for _, j := range jobs {
		n += len(j.vecs)
	}
	return n
}

// totals reports the pool's batching statistics. The server sums these
// across every registry version (plus retired accumulators) at scrape
// time, keeping the dispatch path free of registry traffic.
func (p *scorePool) totals() (jobs, batches, vectors int64) {
	return p.jobsTotal.Load(), p.batchesTotal.Load(), p.vectorsTotal.Load()
}
