// Package serve is the framework's HTTP serving layer: it exposes a
// trained model artifact (internal/model) as a small JSON-over-HTTP
// matching service — the production face of the "reusable EM model"
// §2 of the paper argues active learning amortizes across EM instances.
//
// Routes:
//
//	POST /v1/match   two tables in, predicted pairs with confidence out
//	POST /v1/score   pre-featurized vectors in, match scores out (batched)
//	GET  /healthz    liveness plus model identity
//	GET  /metrics    Prometheus text: request counts, latency histograms,
//	                 in-flight gauge, batching and extractor reuse rates
//
// The server is production-shaped: per-request deadlines, a bounded
// worker pool that coalesces concurrent score requests into merged
// batches, graceful drain of in-flight work on shutdown, and structured
// request logging through the core event vocabulary.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"github.com/alem/alem/internal/core"
	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/match"
	"github.com/alem/alem/internal/model"
	"github.com/alem/alem/internal/resilience"
)

// Config sizes the server. The zero value serves on an OS-assigned port
// with sensible defaults; see the field comments for what each knob
// bounds.
type Config struct {
	// Addr is the listen address, e.g. ":8080". Empty binds
	// 127.0.0.1:0 (an OS-assigned port, reported by Addr()).
	Addr string
	// Workers bounds concurrent learner batches (default GOMAXPROCS).
	Workers int
	// MaxBatch caps the vectors merged into one score batch (default 256).
	MaxBatch int
	// Linger is how long an under-filled batch waits for company
	// (default 2ms; negative disables waiting but still coalesces
	// already-queued requests).
	Linger time.Duration
	// QueueDepth bounds queued score jobs before submit blocks
	// (default 4×Workers).
	QueueDepth int
	// RequestTimeout is the per-request deadline (default 30s).
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 15s).
	DrainTimeout time.Duration
	// MaxBodyBytes caps request bodies (default 64 MiB — match requests
	// carry whole tables).
	MaxBodyBytes int64
	// BreakerThreshold is the consecutive model-failure count (timeouts,
	// panics, internal errors) that opens the circuit breaker around the
	// matcher (default 5). While open, model routes shed with 429 and a
	// Retry-After hint instead of queueing doomed work.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before a single
	// probe request is let through (default 10s).
	BreakerCooldown time.Duration
	// ShedWatermark sheds /v1/score requests with 429 once the score
	// queue holds this many jobs (0, the default, disables shedding and
	// relies on submit backpressure alone). Set it below QueueDepth to
	// turn overload into fast rejections rather than queue-long waits.
	ShedWatermark int
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: the profile endpoints are unauthenticated and a CPU
	// profile holds a request open for its whole sampling window, so they
	// are opt-in (almserve -pprof) and bypass the request-timeout
	// middleware that would otherwise cut profiles short.
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.Linger == 0 {
		c.Linger = 2 * time.Millisecond
	}
	if c.Linger < 0 {
		c.Linger = 0
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	return c
}

// Server serves one loaded model artifact. Create with New; run with
// ListenAndServe, or mount Handler on a listener of your own (tests use
// httptest).
type Server struct {
	cfg       Config
	art       *model.Artifact
	matcher   *match.Matcher
	pool      *scorePool
	met       *metrics
	breaker   *resilience.Breaker
	observers []core.Observer

	ready    chan struct{}
	addr     atomic.Pointer[net.TCPAddr]
	draining atomic.Bool
	total    atomic.Int64
}

// New builds a Server for the artifact. Observers receive the serve
// event stream (RequestDone per request, ServerStart/DrainStart/
// ServerStop around the lifecycle).
func New(art *model.Artifact, cfg Config, observers ...core.Observer) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		art:     art,
		matcher: art.Matcher(),
		pool:    newScorePool(art.Learner, cfg.Workers, cfg.MaxBatch, cfg.QueueDepth, cfg.Linger),
		met:     newMetrics(),
		breaker: resilience.NewBreaker(resilience.BreakerConfig{
			FailureThreshold: cfg.BreakerThreshold,
			Cooldown:         cfg.BreakerCooldown,
		}),
		observers: observers,
		ready:     make(chan struct{}),
	}
	// Breaker, pool and matcher statistics live in their own components;
	// they join the scrape as registry callbacks so /metrics stays one
	// rendering pass over one registry.
	reg := s.met.reg
	reg.GaugeFunc("alem_breaker_state",
		"Circuit breaker position (0 closed, 1 open, 2 half-open).",
		func() float64 { return float64(s.breaker.State()) })
	reg.CounterFunc("alem_breaker_opens_total",
		"Times the circuit breaker has tripped.", s.breaker.Opens)
	s.pool.registerMetrics(reg)
	reg.CounterFunc("alem_matcher_extractor_reuse_hits_total",
		"Match calls that reused the cached extractor.",
		func() int64 { hits, _ := s.matcher.ExtractorReuse(); return int64(hits) })
	reg.CounterFunc("alem_matcher_extractor_reuse_misses_total",
		"Match calls that built a fresh extractor.",
		func() int64 { _, misses := s.matcher.ExtractorReuse(); return int64(misses) })
	return s
}

func (s *Server) emit(e core.Event) {
	for _, o := range s.observers {
		o.Observe(e)
	}
}

// Close drains the score pool. ListenAndServe calls it on the way out;
// callers that mount Handler on their own listener (tests) should defer
// it. Safe to call more than once.
func (s *Server) Close() { s.pool.close() }

// Ready is closed once the listener is bound; Addr is valid after it.
func (s *Server) Ready() <-chan struct{} { return s.ready }

// Addr returns the bound listen address ("" before Ready).
func (s *Server) Addr() string {
	if a := s.addr.Load(); a != nil {
		return a.String()
	}
	return ""
}

// ListenAndServe binds the configured address and serves until ctx is
// cancelled (typically by SIGTERM), then shuts down gracefully: the
// listener closes, in-flight requests drain within DrainTimeout, and
// the score pool finishes every accepted job before the call returns.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		s.pool.close()
		return fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
	}
	s.addr.Store(ln.Addr().(*net.TCPAddr))
	start := time.Now()
	s.emit(ServerStart{Addr: s.Addr(), Model: string(s.art.Kind), Dim: s.art.Dim})
	close(s.ready)

	hs := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		s.pool.close()
		return err
	case <-ctx.Done():
	}

	s.draining.Store(true)
	s.emit(DrainStart{InFlight: int(s.met.inFlight.Load())})
	shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err = hs.Shutdown(shutCtx)
	// Handlers have returned (or the drain budget is spent); now drain
	// the batching pool so no accepted score job is dropped.
	s.pool.close()
	s.emit(ServerStop{Requests: s.total.Load(), Uptime: time.Since(start)})
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("serve: drain timeout after %s: %w", s.cfg.DrainTimeout, err)
	}
	return err
}

// Handler returns the server's route tree, instrumented with deadlines,
// body limits, metrics and request logging. It is exported so tests can
// drive the server through httptest without a real listener.
//
// With Config.EnablePprof the net/http/pprof endpoints are mounted under
// /debug/pprof/, routed before the instrumentation middleware: profile
// requests legitimately outlive RequestTimeout and must not feed the
// request metrics or the breaker.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/match", s.handleMatch)
	mux.HandleFunc("POST /v1/score", s.handleScore)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	h := s.instrument(mux)
	if !s.cfg.EnablePprof {
		return h
	}
	debug := http.NewServeMux()
	debug.HandleFunc("/debug/pprof/", pprof.Index)
	debug.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	debug.HandleFunc("/debug/pprof/profile", pprof.Profile)
	debug.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	debug.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/debug/pprof/") {
			debug.ServeHTTP(w, r)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// instrument wraps the mux with the cross-cutting serving concerns:
// in-flight accounting, per-request deadlines, body caps, panic
// containment, the request counter/latency metrics, and one RequestDone
// event per request.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.inFlight.Add(1)
		defer s.met.inFlight.Add(-1)
		s.total.Add(1)

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		func() {
			// A panicking handler (a sick model blowing up in Predict) is
			// contained to its request: counted, fed to the breaker so
			// repeated panics trip it, and answered with 500 — instead of
			// net/http tearing down the connection with no metrics trace.
			// Only model-route panics reach the breaker: a bug in /healthz
			// or /metrics says nothing about the model and must not shed
			// healthy match/score traffic.
			defer func() {
				if rv := recover(); rv != nil {
					s.met.panics.Add(1)
					if isModelRoute(r.URL.Path) {
						s.breaker.Record(fmt.Errorf("serve: handler panic: %v", rv))
					}
					rec.status = http.StatusInternalServerError
					if !rec.wroteHeader {
						writeError(rec, http.StatusInternalServerError, "internal error: handler panic")
					}
				}
			}()
			next.ServeHTTP(rec, r)
		}()

		elapsed := time.Since(start)
		route := r.URL.Path
		s.met.observe(route, rec.status, elapsed.Seconds())
		s.emit(RequestDone{
			Method: r.Method, Route: route, Status: rec.status,
			Bytes: rec.bytes, Elapsed: elapsed, Remote: r.RemoteAddr,
		})
	})
}

// isModelRoute reports whether the path exercises the model — the only
// routes whose outcomes (including panics) feed the circuit breaker.
func isModelRoute(path string) bool {
	return path == "/v1/match" || path == "/v1/score"
}

type statusRecorder struct {
	http.ResponseWriter
	status      int
	bytes       int
	wroteHeader bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wroteHeader = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wroteHeader = true
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// Wire types.

type tableJSON struct {
	Name   string    `json:"name,omitempty"`
	Schema []string  `json:"schema"`
	Rows   []rowJSON `json:"rows"`
}

type rowJSON struct {
	ID     string   `json:"id"`
	Values []string `json:"values"`
}

type matchRequest struct {
	Left  tableJSON `json:"left"`
	Right tableJSON `json:"right"`
}

type pairJSON struct {
	LeftID     string  `json:"left_id"`
	RightID    string  `json:"right_id"`
	Confidence float64 `json:"confidence"`
}

type matchResponse struct {
	Pairs      []pairJSON `json:"pairs"`
	Candidates int        `json:"candidates"`
	ElapsedMS  float64    `json:"elapsed_ms"`
}

type scoreRequest struct {
	Vectors [][]float64 `json:"vectors"`
}

type scoreResponse struct {
	Scores  []float64 `json:"scores"`
	Matches []bool    `json:"matches"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// statusFor maps pipeline errors to HTTP: deadline → 504, client cancel
// or drain → 503.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// breakerAdmission is one admitted model-route request's obligation to
// the circuit breaker: if the request holds the half-open probe, it must
// be settled on every exit path. Handlers defer finish() immediately
// after admission; record() feeds a health-relevant outcome, and any
// path that exits without recording (bad JSON, schema mismatch, client
// disconnect — outcomes that say nothing about the model) releases the
// probe in finish() so the breaker can never wedge half-open.
type breakerAdmission struct {
	b       *resilience.Breaker
	probe   bool
	settled bool
}

func (a *breakerAdmission) record(err error) {
	a.settled = true
	a.b.Record(err)
}

func (a *breakerAdmission) finish() {
	if a.probe && !a.settled {
		a.b.Release()
	}
}

// admitModel runs breaker admission for a model route. Shed requests are
// answered with 429 + Retry-After — the breaker's remaining cooldown,
// floored to one second so well-behaved clients always back off a little
// — and ok=false. Admitted requests get an admission whose finish()
// the handler must defer.
func (s *Server) admitModel(w http.ResponseWriter) (adm *breakerAdmission, ok bool) {
	admit, probe := s.breaker.Allow()
	if !admit {
		s.met.shed.Add(1)
		retry := int(s.breaker.RetryAfter().Round(time.Second).Seconds())
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retry))
		writeError(w, http.StatusTooManyRequests,
			"model circuit open after repeated failures; retry in %ds", retry)
		return nil, false
	}
	return &breakerAdmission{b: s.breaker, probe: probe}, true
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	adm, ok := s.admitModel(w)
	if !ok {
		return
	}
	defer adm.finish()
	var req matchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding match request: %v", err)
		return
	}
	left, err := toTable("left", req.Left)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	right, err := toTable("right", req.Right)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The artifact's schema is the contract: reject tables that do not
	// reproduce the training-time attribute list.
	if !sameSchema(left.Schema, s.art.Meta.Schema) || !sameSchema(right.Schema, s.art.Meta.Schema) {
		writeError(w, http.StatusBadRequest,
			"schema mismatch: model was trained on %v", s.art.Meta.Schema)
		return
	}

	start := time.Now()
	pairs, candidates, err := s.matcher.Match(r.Context(), left, right)
	if err != nil {
		if ctxErr := r.Context().Err(); ctxErr != nil {
			s.met.timeouts.Add(1)
			adm.record(ctxErr)
			writeError(w, statusFor(ctxErr), "match aborted: %v", ctxErr)
			return
		}
		writeError(w, http.StatusBadRequest, "match: %v", err)
		return
	}
	adm.record(nil)
	resp := matchResponse{
		Pairs:      make([]pairJSON, len(pairs)),
		Candidates: candidates,
		ElapsedMS:  float64(time.Since(start).Microseconds()) / 1e3,
	}
	for i, p := range pairs {
		resp.Pairs[i] = pairJSON{LeftID: p.LeftID, RightID: p.RightID, Confidence: p.Confidence}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	adm, ok := s.admitModel(w)
	if !ok {
		return
	}
	defer adm.finish()
	// Load shedding: once the score queue is past the watermark, a new
	// request would only wait out most of its deadline in line — reject
	// it immediately so the client can retry elsewhere.
	if s.cfg.ShedWatermark > 0 && s.pool.depth() >= s.cfg.ShedWatermark {
		s.met.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"score queue over watermark (%d queued); retry shortly", s.pool.depth())
		return
	}
	var req scoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding score request: %v", err)
		return
	}
	if len(req.Vectors) == 0 {
		writeError(w, http.StatusBadRequest, "no vectors in score request")
		return
	}
	vecs := make([]feature.Vector, len(req.Vectors))
	for i, v := range req.Vectors {
		if len(v) != s.art.Dim {
			writeError(w, http.StatusBadRequest,
				"vector %d has %d dims, model expects %d", i, len(v), s.art.Dim)
			return
		}
		vecs[i] = v
	}

	job := &scoreJob{ctx: r.Context(), vecs: vecs, out: make(chan scoreResult, 1)}
	if err := s.pool.submit(job); err != nil {
		if errors.Is(err, ErrDraining) {
			s.met.rejected.Add(1)
		} else {
			s.met.timeouts.Add(1)
		}
		writeError(w, statusFor(err), "score rejected: %v", err)
		return
	}
	select {
	case res := <-job.out:
		if res.err != nil {
			if errors.Is(res.err, context.DeadlineExceeded) {
				s.met.timeouts.Add(1)
			}
			if statusFor(res.err) == http.StatusInternalServerError ||
				errors.Is(res.err, context.DeadlineExceeded) {
				adm.record(res.err)
			}
			writeError(w, statusFor(res.err), "score failed: %v", res.err)
			return
		}
		adm.record(nil)
		resp := scoreResponse{Scores: res.scores, Matches: make([]bool, len(vecs))}
		for i, v := range vecs {
			resp.Matches[i] = s.art.Learner.Predict(v)
		}
		writeJSON(w, http.StatusOK, resp)
	case <-r.Context().Done():
		s.met.timeouts.Add(1)
		writeError(w, statusFor(r.Context().Err()), "score aborted: %v", r.Context().Err())
	}
}

// handleHealthz reports liveness plus degradation: "ok" becomes
// "degraded" while draining or while the breaker is away from closed.
// The response stays 200 — the process is alive and can still answer —
// so orchestrators keep it in rotation for the probe but dashboards and
// load balancers reading the body can route around it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	breaker := s.breaker.State()
	status := "ok"
	if s.draining.Load() || breaker != resilience.BreakerClosed {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    status,
		"model":     s.art.Kind,
		"dim":       s.art.Dim,
		"schema":    s.art.Meta.Schema,
		"features":  s.art.Meta.Features.String(),
		"in_flight": s.met.inFlight.Load(),
		"draining":  s.draining.Load(),
		"breaker":   breaker.String(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.reg.WritePrometheus(w)
}

func toTable(name string, t tableJSON) (*dataset.Table, error) {
	if len(t.Schema) == 0 {
		return nil, fmt.Errorf("%s table has no schema", name)
	}
	out := &dataset.Table{Name: name, Schema: t.Schema, Rows: make([]dataset.Record, len(t.Rows))}
	if t.Name != "" {
		out.Name = t.Name
	}
	for i, r := range t.Rows {
		if len(r.Values) != len(t.Schema) {
			return nil, fmt.Errorf("%s table row %d has %d values for %d schema attributes",
				name, i, len(r.Values), len(t.Schema))
		}
		out.Rows[i] = dataset.Record{ID: r.ID, Values: r.Values}
	}
	return out, nil
}

func sameSchema(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
