// Package serve is the framework's HTTP serving layer: it exposes
// trained model artifacts (internal/model) as a small JSON-over-HTTP
// matching service — the production face of the "reusable EM model"
// §2 of the paper argues active learning amortizes across EM instances.
//
// Routes:
//
//	POST /v1/match            two tables in, predicted pairs with confidence out
//	POST /v1/score            pre-featurized vectors in, match scores out (batched)
//	GET  /v1/models           the model registry: versions, active alias, health
//	POST /v1/models           publish a new version (admin; ?id=, ?activate=)
//	POST /v1/models/{id}/activate  flip the default alias (admin)
//	DELETE /v1/models/{id}    retire a non-active version (admin)
//	GET  /healthz             liveness plus per-model readiness
//	GET  /metrics             Prometheus text: request counts, latency histograms,
//	                          swap/admission counters, batching and reuse rates
//
// The server is production-shaped: a versioned model registry with
// zero-downtime hot swap (atomic alias flip; in-flight work drains on
// the old version's own pool), per-tenant token-bucket admission,
// per-request deadlines, bounded worker pools that coalesce concurrent
// score requests into merged batches, graceful drain of in-flight work
// on shutdown, and structured request logging through the core event
// vocabulary.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/alem/alem/internal/core"
	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/model"
	"github.com/alem/alem/internal/resilience"
)

// Config sizes the server. The zero value serves on an OS-assigned port
// with sensible defaults; see the field comments for what each knob
// bounds.
type Config struct {
	// Addr is the listen address, e.g. ":8080". Empty binds
	// 127.0.0.1:0 (an OS-assigned port, reported by Addr()).
	Addr string
	// Workers bounds concurrent learner batches per model version
	// (default GOMAXPROCS).
	Workers int
	// MaxBatch caps the vectors merged into one score batch (default 256).
	MaxBatch int
	// Linger is how long an under-filled batch waits for company
	// (default 2ms; negative disables waiting but still coalesces
	// already-queued requests).
	Linger time.Duration
	// QueueDepth bounds queued score jobs per model version before
	// submit blocks (default 4×Workers).
	QueueDepth int
	// RequestTimeout is the per-request deadline (default 30s).
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 15s).
	DrainTimeout time.Duration
	// MaxBodyBytes caps request bodies (default 64 MiB — match requests
	// carry whole tables, and published artifacts carry corpora).
	MaxBodyBytes int64
	// BreakerThreshold is the consecutive model-failure count (timeouts,
	// panics, internal errors) that opens the circuit breaker around a
	// model version (default 5). While open, that version sheds with 429
	// and a Retry-After hint instead of queueing doomed work.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before a single
	// probe request is let through (default 10s).
	BreakerCooldown time.Duration
	// ShedWatermark sheds /v1/score requests with 429 once the resolved
	// version's score queue holds this many jobs (0, the default,
	// disables shedding and relies on submit backpressure alone). Set it
	// below QueueDepth to turn overload into fast rejections rather than
	// queue-long waits.
	ShedWatermark int
	// TenantRate grants each tenant (X-Alem-Tenant header or ?tenant=)
	// an independent token bucket of this many model-route requests per
	// second; a tenant past its bucket degrades to 429 + Retry-After
	// instead of starving everyone else. 0, the default, disables
	// per-tenant admission. Requests naming no tenant share one
	// anonymous bucket.
	TenantRate float64
	// TenantBurst is the per-tenant bucket size (default 2×TenantRate,
	// minimum 1). Ignored when TenantRate is 0.
	TenantBurst int
	// EnableAdmin mounts the mutating registry routes (publish /
	// activate / remove model versions). Off by default: they are
	// unauthenticated, so opt in (almserve -admin) and bind a private
	// address. GET /v1/models is always available.
	EnableAdmin bool
	// ModelsDir, when set, is where admin-published artifacts are
	// persisted (atomically, via temp+fsync+rename) so a restart
	// reloads the same fleet. Empty keeps published models in memory
	// only.
	ModelsDir string
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: the profile endpoints are unauthenticated and a CPU
	// profile holds a request open for its whole sampling window, so they
	// are opt-in (almserve -pprof) and bypass the request-timeout
	// middleware that would otherwise cut profiles short.
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.Linger == 0 {
		c.Linger = 2 * time.Millisecond
	}
	if c.Linger < 0 {
		c.Linger = 0
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	return c
}

// Server serves the versioned model registry. Create with New (one
// boot artifact) or NewMulti (empty registry, publish before or after
// start); run with ListenAndServe, or mount Handler on a listener of
// your own (tests use httptest).
type Server struct {
	cfg       Config
	models    *Registry
	met       *metrics
	tenants   *resilience.TenantLimiter
	observers []core.Observer

	ready    chan struct{}
	addr     atomic.Pointer[net.TCPAddr]
	draining atomic.Bool
	total    atomic.Int64
}

// BootVersion is the version id New assigns the artifact it is given.
const BootVersion = "v1"

// New builds a Server with art published and activated as version
// BootVersion — the single-model path cmd/almserve -model takes.
// Observers receive the serve event stream (RequestDone per request,
// ServerStart/DrainStart/ServerStop around the lifecycle, and the
// ModelPublished/ModelActivated/ModelSwapFailed registry vocabulary).
func New(art *model.Artifact, cfg Config, observers ...core.Observer) *Server {
	s := NewMulti(cfg, observers...)
	if err := s.models.Publish(BootVersion, art); err != nil {
		// A loaded artifact is already validated; only nil reaches here,
		// and serving nothing was never an option for this constructor.
		panic(fmt.Sprintf("serve: boot publish: %v", err))
	}
	s.models.Activate(BootVersion)
	return s
}

// NewMulti builds a Server over an empty model registry: publish and
// activate versions through (*Server).Models() or the admin routes.
// Until a version is activated, model routes answer 503 and /healthz
// reports degraded (alive, routable, serving nothing).
func NewMulti(cfg Config, observers ...core.Observer) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		met:       newMetrics(),
		observers: observers,
		ready:     make(chan struct{}),
	}
	s.models = newRegistry(cfg, s.emit)
	if cfg.TenantRate > 0 {
		s.tenants = resilience.NewTenantLimiter(cfg.TenantRate, cfg.TenantBurst, nil)
	}
	// Registry, pool and matcher statistics live in their own components;
	// they join the scrape as registry callbacks so /metrics stays one
	// rendering pass over one registry. Pool and breaker series are
	// summed across model versions (plus retired accumulators) so the
	// counters survive swaps monotonically.
	reg := s.met.reg
	reg.GaugeFunc("alem_breaker_state",
		"Active model's circuit-breaker position (0 closed, 1 open, 2 half-open).",
		func() float64 {
			if b := s.models.activeBreaker(); b != nil {
				return float64(b.State())
			}
			return 0
		})
	reg.CounterFunc("alem_breaker_opens_total",
		"Times any model version's circuit breaker has tripped.", s.models.breakerOpens)
	reg.GaugeFunc("alem_models_loaded",
		"Model versions currently held by the registry.",
		func() float64 { return float64(s.models.Len()) })
	reg.CounterFunc("alem_model_swaps_total",
		"Default-alias activations (hot swaps).", s.models.swaps.Load)
	reg.CounterFunc("alem_model_swap_failures_total",
		"Model publishes rejected by validation.", s.models.swapFailures.Load)
	reg.CounterFunc("alem_score_requests_total",
		"Score jobs accepted by the batching pools.",
		func() int64 { j, _, _ := s.models.poolTotals(); return j })
	reg.CounterFunc("alem_score_batches_total",
		"Merged batches executed by the worker pools.",
		func() int64 { _, b, _ := s.models.poolTotals(); return b })
	reg.CounterFunc("alem_score_vectors_total",
		"Feature vectors scored.",
		func() int64 { _, _, v := s.models.poolTotals(); return v })
	reg.GaugeFunc("alem_score_batch_reuse_rate",
		"Fraction of score jobs that coalesced into an already-open batch.",
		func() float64 {
			jobs, batches, _ := s.models.poolTotals()
			if jobs == 0 {
				return 0
			}
			return 1 - float64(batches)/float64(jobs)
		})
	reg.CounterFunc("alem_matcher_extractor_reuse_hits_total",
		"Match calls that reused a cached extractor.",
		func() int64 { hits, _ := s.models.extractorReuse(); return hits })
	reg.CounterFunc("alem_matcher_extractor_reuse_misses_total",
		"Match calls that built a fresh extractor.",
		func() int64 { _, misses := s.models.extractorReuse(); return misses })
	return s
}

// Models is the server's model registry: publish, activate and retire
// versions programmatically (the admin HTTP routes drive the same
// methods).
func (s *Server) Models() *Registry { return s.models }

func (s *Server) emit(e core.Event) {
	for _, o := range s.observers {
		o.Observe(e)
	}
}

// Close drains every model version's score pool. ListenAndServe calls
// it on the way out; callers that mount Handler on their own listener
// (tests) should defer it. Safe to call more than once.
func (s *Server) Close() { s.models.Close() }

// Ready is closed once the listener is bound; Addr is valid after it.
func (s *Server) Ready() <-chan struct{} { return s.ready }

// Addr returns the bound listen address ("" before Ready).
func (s *Server) Addr() string {
	if a := s.addr.Load(); a != nil {
		return a.String()
	}
	return ""
}

// ListenAndServe binds the configured address and serves until ctx is
// cancelled (typically by SIGTERM), then shuts down gracefully: the
// listener closes, in-flight requests drain within DrainTimeout, and
// every model version's score pool finishes every accepted job before
// the call returns.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		s.models.Close()
		return fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
	}
	s.addr.Store(ln.Addr().(*net.TCPAddr))
	start := time.Now()
	kind, dim := "none", 0
	if e := s.models.current.Load(); e != nil {
		kind, dim = string(e.art.Kind), e.art.Dim
	}
	s.emit(ServerStart{Addr: s.Addr(), Model: kind, Dim: dim})
	close(s.ready)

	hs := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		s.models.Close()
		return err
	case <-ctx.Done():
	}

	s.draining.Store(true)
	s.emit(DrainStart{InFlight: int(s.met.inFlight.Load())})
	shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err = hs.Shutdown(shutCtx)
	// Handlers have returned (or the drain budget is spent); now drain
	// the batching pools so no accepted score job is dropped.
	s.models.Close()
	s.emit(ServerStop{Requests: s.total.Load(), Uptime: time.Since(start)})
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("serve: drain timeout after %s: %w", s.cfg.DrainTimeout, err)
	}
	return err
}

// Handler returns the server's route tree, instrumented with deadlines,
// body limits, metrics and request logging. It is exported so tests can
// drive the server through httptest without a real listener.
//
// The mutating registry routes exist only with Config.EnableAdmin; the
// read-only GET /v1/models is always mounted. With Config.EnablePprof
// the net/http/pprof endpoints are mounted under /debug/pprof/, routed
// before the instrumentation middleware: profile requests legitimately
// outlive RequestTimeout and must not feed the request metrics or the
// breaker.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/match", s.handleMatch)
	mux.HandleFunc("POST /v1/score", s.handleScore)
	mux.HandleFunc("GET /v1/models", s.handleModelsList)
	if s.cfg.EnableAdmin {
		mux.HandleFunc("POST /v1/models", s.handleModelPublish)
		mux.HandleFunc("POST /v1/models/{id}/activate", s.handleModelActivate)
		mux.HandleFunc("DELETE /v1/models/{id}", s.handleModelRemove)
	}
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	h := s.instrument(mux)
	if !s.cfg.EnablePprof {
		return h
	}
	debug := http.NewServeMux()
	debug.HandleFunc("/debug/pprof/", pprof.Index)
	debug.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	debug.HandleFunc("/debug/pprof/profile", pprof.Profile)
	debug.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	debug.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/debug/pprof/") {
			debug.ServeHTTP(w, r)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// breakerSlot carries the model version a request resolved, so the
// panic-recover middleware can feed the right version's breaker.
// Handlers bind it after acquiring an entry; a model-route panic before
// resolution falls back to the active version's breaker.
type breakerSlot struct{ b *resilience.Breaker }

type breakerSlotKey struct{}

func bindBreaker(r *http.Request, b *resilience.Breaker) {
	if slot, ok := r.Context().Value(breakerSlotKey{}).(*breakerSlot); ok {
		slot.b = b
	}
}

// instrument wraps the mux with the cross-cutting serving concerns:
// in-flight accounting, per-request deadlines, body caps, panic
// containment, the request counter/latency metrics, and one RequestDone
// event per request.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.inFlight.Add(1)
		defer s.met.inFlight.Add(-1)
		s.total.Add(1)

		slot := &breakerSlot{}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(context.WithValue(ctx, breakerSlotKey{}, slot))
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		func() {
			// A panicking handler (a sick model blowing up in Predict) is
			// contained to its request: counted, fed to the breaker so
			// repeated panics trip it, and answered with 500 — instead of
			// net/http tearing down the connection with no metrics trace.
			// Only model-route panics reach a breaker: a bug in /healthz
			// or /metrics says nothing about any model and must not shed
			// healthy match/score traffic. The breaker belongs to the
			// version the handler resolved; a panic before resolution is
			// charged to the active version.
			defer func() {
				if rv := recover(); rv != nil {
					s.met.panics.Add(1)
					if isModelRoute(r.URL.Path) {
						b := slot.b
						if b == nil {
							b = s.models.activeBreaker()
						}
						if b != nil {
							b.Record(fmt.Errorf("serve: handler panic: %v", rv))
						}
					}
					rec.status = http.StatusInternalServerError
					if !rec.wroteHeader {
						writeError(rec, http.StatusInternalServerError, "internal error: handler panic")
					}
				}
			}()
			next.ServeHTTP(rec, r)
		}()

		elapsed := time.Since(start)
		route := r.URL.Path
		s.met.observe(route, rec.status, elapsed.Seconds())
		s.emit(RequestDone{
			Method: r.Method, Route: route, Status: rec.status,
			Bytes: rec.bytes, Elapsed: elapsed, Remote: r.RemoteAddr,
		})
	})
}

// isModelRoute reports whether the path exercises a model — the only
// routes whose outcomes (including panics) feed a circuit breaker.
func isModelRoute(path string) bool {
	return path == "/v1/match" || path == "/v1/score"
}

type statusRecorder struct {
	http.ResponseWriter
	status      int
	bytes       int
	wroteHeader bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wroteHeader = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wroteHeader = true
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// Wire types.

type tableJSON struct {
	Name   string    `json:"name,omitempty"`
	Schema []string  `json:"schema"`
	Rows   []rowJSON `json:"rows"`
}

type rowJSON struct {
	ID     string   `json:"id"`
	Values []string `json:"values"`
}

type matchRequest struct {
	Left  tableJSON `json:"left"`
	Right tableJSON `json:"right"`
}

type pairJSON struct {
	LeftID     string  `json:"left_id"`
	RightID    string  `json:"right_id"`
	Confidence float64 `json:"confidence"`
}

type matchResponse struct {
	Pairs      []pairJSON `json:"pairs"`
	Candidates int        `json:"candidates"`
	ElapsedMS  float64    `json:"elapsed_ms"`
}

type scoreRequest struct {
	Vectors [][]float64 `json:"vectors"`
}

type scoreResponse struct {
	Scores  []float64 `json:"scores"`
	Matches []bool    `json:"matches"`
}

// errorResponse is every non-2xx body. Reason is set on 429s so clients
// and dashboards can tell the admission layers apart without parsing
// prose: "tenant" (per-tenant bucket), "shed" (queue over watermark),
// "breaker" (circuit open).
type errorResponse struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

// Shed reasons, pinned by TestShedResponsesConsistent.
const (
	ShedReasonTenant  = "tenant"
	ShedReasonShed    = "shed"
	ShedReasonBreaker = "breaker"
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeShed answers a 429 the uniform way every admission layer must:
// Retry-After header (whole seconds, at least 1) plus a JSON body
// naming the reason.
func writeShed(w http.ResponseWriter, reason string, retry time.Duration, format string, args ...any) {
	secs := int(retry.Round(time.Second).Seconds())
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, errorResponse{
		Error:  fmt.Sprintf(format, args...) + fmt.Sprintf("; retry in %ds", secs),
		Reason: reason,
	})
}

// statusFor maps pipeline errors to HTTP: deadline → 504, client cancel
// or drain → 503.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// tenantFor extracts the admission key: the X-Alem-Tenant header, else
// the tenant query parameter, else "" — the shared anonymous bucket.
func tenantFor(r *http.Request) string {
	if t := r.Header.Get("X-Alem-Tenant"); t != "" {
		return t
	}
	return r.URL.Query().Get("tenant")
}

// modelParam extracts the requested version id: the X-Alem-Model
// header, else the model query parameter, else "" — the default alias.
func modelParam(r *http.Request) string {
	if m := r.Header.Get("X-Alem-Model"); m != "" {
		return m
	}
	return r.URL.Query().Get("model")
}

// admitTenant is the first admission layer on model routes: each tenant
// spends from its own token bucket, so one hot tenant degrades to fast
// 429s instead of starving the fleet. Always admits when per-tenant
// admission is not configured.
func (s *Server) admitTenant(w http.ResponseWriter, r *http.Request) bool {
	if s.tenants == nil {
		return true
	}
	tenant := tenantFor(r)
	ok, retry := s.tenants.Allow(tenant)
	if ok {
		return true
	}
	s.met.shed.Add(1)
	s.met.tenant.Add(1)
	name := tenant
	if name == "" {
		name = "(anonymous)"
	}
	writeShed(w, ShedReasonTenant, retry, "tenant %s over its request rate", name)
	return false
}

// resolveModel resolves the request's model id against the registry and
// pins the version for the request's lifetime; callers must defer the
// returned release. Unknown ids answer 404, an empty registry 503.
func (s *Server) resolveModel(w http.ResponseWriter, r *http.Request) (*modelEntry, func(), bool) {
	e, release, err := s.models.acquire(modelParam(r))
	if err != nil {
		if errors.Is(err, ErrNoActiveModel) {
			writeError(w, http.StatusServiceUnavailable, "no active model version; publish and activate one")
		} else {
			writeError(w, http.StatusNotFound, "%v", err)
		}
		return nil, nil, false
	}
	bindBreaker(r, e.breaker)
	return e, release, true
}

// breakerAdmission is one admitted model-route request's obligation to
// its version's circuit breaker: if the request holds the half-open
// probe, it must be settled on every exit path. Handlers defer finish()
// immediately after admission; record() feeds a health-relevant
// outcome, and any path that exits without recording (bad JSON, schema
// mismatch, client disconnect — outcomes that say nothing about the
// model) releases the probe in finish() so the breaker can never wedge
// half-open.
type breakerAdmission struct {
	b       *resilience.Breaker
	probe   bool
	settled bool
}

func (a *breakerAdmission) record(err error) {
	a.settled = true
	a.b.Record(err)
}

func (a *breakerAdmission) finish() {
	if a.probe && !a.settled {
		a.b.Release()
	}
}

// admitModel runs breaker admission for a resolved model version. Shed
// requests are answered with 429 + Retry-After — the breaker's
// remaining cooldown — and ok=false. Admitted requests get an admission
// whose finish() the handler must defer.
func (s *Server) admitModel(w http.ResponseWriter, e *modelEntry) (adm *breakerAdmission, ok bool) {
	admit, probe := e.breaker.Allow()
	if !admit {
		s.met.shed.Add(1)
		writeShed(w, ShedReasonBreaker, e.breaker.RetryAfter(),
			"model %q circuit open after repeated failures", e.id)
		return nil, false
	}
	return &breakerAdmission{b: e.breaker, probe: probe}, true
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	// Admission order: tenant bucket → breaker (matches take no queue, so
	// no watermark layer here).
	if !s.admitTenant(w, r) {
		return
	}
	e, release, ok := s.resolveModel(w, r)
	if !ok {
		return
	}
	defer release()
	adm, ok := s.admitModel(w, e)
	if !ok {
		return
	}
	defer adm.finish()
	var req matchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding match request: %v", err)
		return
	}
	left, err := toTable("left", req.Left)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	right, err := toTable("right", req.Right)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The artifact's schema is the contract: reject tables that do not
	// reproduce the training-time attribute list.
	if !sameSchema(left.Schema, e.art.Meta.Schema) || !sameSchema(right.Schema, e.art.Meta.Schema) {
		writeError(w, http.StatusBadRequest,
			"schema mismatch: model %q was trained on %v", e.id, e.art.Meta.Schema)
		return
	}

	start := time.Now()
	pairs, candidates, err := e.matcher.Match(r.Context(), left, right)
	if err != nil {
		if ctxErr := r.Context().Err(); ctxErr != nil {
			s.met.timeouts.Add(1)
			adm.record(ctxErr)
			writeError(w, statusFor(ctxErr), "match aborted: %v", ctxErr)
			return
		}
		writeError(w, http.StatusBadRequest, "match: %v", err)
		return
	}
	adm.record(nil)
	resp := matchResponse{
		Pairs:      make([]pairJSON, len(pairs)),
		Candidates: candidates,
		ElapsedMS:  float64(time.Since(start).Microseconds()) / 1e3,
	}
	for i, p := range pairs {
		resp.Pairs[i] = pairJSON{LeftID: p.LeftID, RightID: p.RightID, Confidence: p.Confidence}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	// Admission order: tenant bucket → shed watermark → breaker. The
	// tenant layer is first so a hot tenant is told to back off before it
	// can influence shared-queue or breaker signals; the watermark reads
	// the resolved version's own queue.
	if !s.admitTenant(w, r) {
		return
	}
	e, release, ok := s.resolveModel(w, r)
	if !ok {
		return
	}
	defer release()
	// Load shedding: once the score queue is past the watermark, a new
	// request would only wait out most of its deadline in line — reject
	// it immediately so the client can retry elsewhere.
	if s.cfg.ShedWatermark > 0 && e.pool.depth() >= s.cfg.ShedWatermark {
		s.met.shed.Add(1)
		writeShed(w, ShedReasonShed, time.Second,
			"score queue over watermark (%d queued)", e.pool.depth())
		return
	}
	adm, ok := s.admitModel(w, e)
	if !ok {
		return
	}
	defer adm.finish()
	var req scoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding score request: %v", err)
		return
	}
	if len(req.Vectors) == 0 {
		writeError(w, http.StatusBadRequest, "no vectors in score request")
		return
	}
	vecs := make([]feature.Vector, len(req.Vectors))
	for i, v := range req.Vectors {
		if len(v) != e.art.Dim {
			writeError(w, http.StatusBadRequest,
				"vector %d has %d dims, model %q expects %d", i, len(v), e.id, e.art.Dim)
			return
		}
		vecs[i] = v
	}

	job := &scoreJob{ctx: r.Context(), vecs: vecs, out: make(chan scoreResult, 1)}
	if err := e.pool.submit(job); err != nil {
		if errors.Is(err, ErrDraining) {
			s.met.rejected.Add(1)
		} else {
			s.met.timeouts.Add(1)
		}
		writeError(w, statusFor(err), "score rejected: %v", err)
		return
	}
	select {
	case res := <-job.out:
		if res.err != nil {
			if errors.Is(res.err, context.DeadlineExceeded) {
				s.met.timeouts.Add(1)
			}
			if statusFor(res.err) == http.StatusInternalServerError ||
				errors.Is(res.err, context.DeadlineExceeded) {
				adm.record(res.err)
			}
			writeError(w, statusFor(res.err), "score failed: %v", res.err)
			return
		}
		adm.record(nil)
		resp := scoreResponse{Scores: res.scores, Matches: make([]bool, len(vecs))}
		for i, v := range vecs {
			resp.Matches[i] = e.art.Learner.Predict(v)
		}
		writeJSON(w, http.StatusOK, resp)
	case <-r.Context().Done():
		s.met.timeouts.Add(1)
		writeError(w, statusFor(r.Context().Err()), "score aborted: %v", r.Context().Err())
	}
}

// Registry routes.

// modelsResponse is the GET /v1/models body.
type modelsResponse struct {
	Active string      `json:"active"`
	Models []ModelInfo `json:"models"`
}

func (s *Server) handleModelsList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, modelsResponse{
		Active: s.models.Current(),
		Models: s.models.List(),
	})
}

// publishResponse is the POST /v1/models body.
type publishResponse struct {
	ID           string `json:"id"`
	Kind         string `json:"kind"`
	Dim          int    `json:"dim"`
	Activated    bool   `json:"activated"`
	Previous     string `json:"previous,omitempty"`
	PersistError string `json:"persist_error,omitempty"`
}

// handleModelPublish is the admin hot-swap entry point: the request
// body is a model artifact (alem.SaveModel output), ?id= names the
// version, ?activate=true flips the default alias in the same call. A
// body that fails validation is a rejected swap: 400, nothing applied,
// the serving version untouched, /healthz degraded until the next
// successful activation.
func (s *Server) handleModelPublish(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, "missing id query parameter (POST /v1/models?id=v2)")
		return
	}
	// Buffer the body (already capped by MaxBytesReader): validation
	// consumes it once and ModelsDir persistence needs the same bytes.
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading artifact body: %v", err)
		return
	}
	art, err := s.models.PublishReader(id, bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := publishResponse{ID: id, Kind: string(art.Kind), Dim: art.Dim}
	if s.cfg.ModelsDir != "" {
		// Persistence is best-effort and never un-publishes: the version
		// is serving from memory either way, and the response says
		// whether a restart will see it.
		err := resilience.WriteFileAtomic(filepath.Join(s.cfg.ModelsDir, id+".json"),
			func(f io.Writer) error { _, err := f.Write(body); return err })
		if err != nil {
			resp.PersistError = err.Error()
		}
	}
	if activate, _ := strconv.ParseBool(r.URL.Query().Get("activate")); activate {
		prev, err := s.models.Activate(id)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "published but failed to activate: %v", err)
			return
		}
		resp.Activated, resp.Previous = true, prev
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleModelActivate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	prev, err := s.models.Activate(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"active": id, "previous": prev})
}

func (s *Server) handleModelRemove(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.models.Remove(id); err != nil {
		status := http.StatusConflict
		if errors.Is(err, ErrUnknownModel) {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"removed": id})
}

// handleHealthz reports liveness plus degradation, now per model: the
// top-level status is "degraded" (not dead — the response stays 200 so
// orchestrators keep the process in rotation) while draining, while the
// last swap was rejected, while the active version's breaker is away
// from closed, or while no version is active at all. The models map
// carries each version's own readiness so dashboards can see a sick
// canary next to a healthy active version.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	activeID := s.models.Current()
	swapErr := s.models.LastSwapError()
	infos := s.models.List()
	models := make(map[string]any, len(infos))
	var activeInfo *ModelInfo
	for i := range infos {
		in := infos[i]
		models[in.ID] = map[string]any{
			"kind":      in.Kind,
			"dim":       in.Dim,
			"active":    in.Active,
			"breaker":   in.Breaker,
			"in_flight": in.InFlight,
		}
		if in.Active {
			activeInfo = &infos[i]
		}
	}
	status := "ok"
	degraded := s.draining.Load() || swapErr != nil || activeInfo == nil ||
		activeInfo.Breaker != resilience.BreakerClosed.String()
	if degraded {
		status = "degraded"
	}
	body := map[string]any{
		"status":    status,
		"active":    activeID,
		"models":    models,
		"in_flight": s.met.inFlight.Load(),
		"draining":  s.draining.Load(),
	}
	if swapErr != nil {
		body["last_swap_error"] = swapErr.Error()
	}
	// Legacy top-level identity of the active version, kept for scrapers
	// predating the registry.
	if e := s.models.current.Load(); e != nil {
		body["model"] = e.art.Kind
		body["dim"] = e.art.Dim
		body["schema"] = e.art.Meta.Schema
		body["features"] = e.art.Meta.Features.String()
		body["breaker"] = e.breaker.State().String()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.reg.WritePrometheus(w)
}

func toTable(name string, t tableJSON) (*dataset.Table, error) {
	if len(t.Schema) == 0 {
		return nil, fmt.Errorf("%s table has no schema", name)
	}
	out := &dataset.Table{Name: name, Schema: t.Schema, Rows: make([]dataset.Record, len(t.Rows))}
	if t.Name != "" {
		out.Name = t.Name
	}
	for i, r := range t.Rows {
		if len(r.Values) != len(t.Schema) {
			return nil, fmt.Errorf("%s table row %d has %d values for %d schema attributes",
				name, i, len(r.Values), len(t.Schema))
		}
		out.Rows[i] = dataset.Record{ID: r.ID, Values: r.Values}
	}
	return out, nil
}

func sameSchema(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
