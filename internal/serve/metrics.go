package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// metrics is the server's observability surface, rendered on /metrics in
// the Prometheus text exposition format. Everything is lock-free on the
// hot path (atomic counters); the registry lock only guards lazy
// creation of per-route series.
type metrics struct {
	mu       sync.Mutex
	requests map[routeCode]*atomic.Int64 // request counts by route and status
	latency  map[string]*histogram       // request latency by route
	inFlight atomic.Int64
	rejected atomic.Int64 // requests refused while draining
	timeouts atomic.Int64 // requests that hit their deadline
	shed     atomic.Int64 // requests shed with 429 (breaker open or queue over watermark)
	panics   atomic.Int64 // handler panics contained by the recover middleware
}

type routeCode struct {
	route string
	code  int
}

func newMetrics() *metrics {
	return &metrics{
		requests: map[routeCode]*atomic.Int64{},
		latency:  map[string]*histogram{},
	}
}

func (m *metrics) observe(route string, code int, seconds float64) {
	m.mu.Lock()
	c, ok := m.requests[routeCode{route, code}]
	if !ok {
		c = &atomic.Int64{}
		m.requests[routeCode{route, code}] = c
	}
	h, ok := m.latency[route]
	if !ok {
		h = newHistogram()
		m.latency[route] = h
	}
	m.mu.Unlock()
	c.Add(1)
	h.observe(seconds)
}

// latencyBuckets are the histogram upper bounds in seconds, chosen to
// resolve both sub-millisecond score calls and multi-second match calls.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram with atomic counters;
// the sum is stored as float64 bits CAS-updated so concurrent observes
// never lose an increment.
type histogram struct {
	counts  []atomic.Int64 // one per bucket, cumulative rendering at scrape
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBuckets))}
}

func (h *histogram) observe(v float64) {
	for i, ub := range latencyBuckets {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// write renders the registry in Prometheus text format. Series are
// sorted so scrapes are deterministic and diffable.
func (m *metrics) write(w io.Writer, extra func(io.Writer)) {
	m.mu.Lock()
	codes := make([]routeCode, 0, len(m.requests))
	for rc := range m.requests {
		codes = append(codes, rc)
	}
	routes := make([]string, 0, len(m.latency))
	for r := range m.latency {
		routes = append(routes, r)
	}
	m.mu.Unlock()
	sort.Slice(codes, func(i, j int) bool {
		if codes[i].route != codes[j].route {
			return codes[i].route < codes[j].route
		}
		return codes[i].code < codes[j].code
	})
	sort.Strings(routes)

	fmt.Fprintln(w, "# HELP alem_http_requests_total Requests served, by route and status code.")
	fmt.Fprintln(w, "# TYPE alem_http_requests_total counter")
	for _, rc := range codes {
		m.mu.Lock()
		c := m.requests[rc]
		m.mu.Unlock()
		fmt.Fprintf(w, "alem_http_requests_total{route=%q,code=\"%d\"} %d\n", rc.route, rc.code, c.Load())
	}

	fmt.Fprintln(w, "# HELP alem_http_request_duration_seconds Request latency, by route.")
	fmt.Fprintln(w, "# TYPE alem_http_request_duration_seconds histogram")
	for _, r := range routes {
		m.mu.Lock()
		h := m.latency[r]
		m.mu.Unlock()
		cum := int64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "alem_http_request_duration_seconds_bucket{route=%q,le=\"%g\"} %d\n", r, ub, cum)
		}
		fmt.Fprintf(w, "alem_http_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r, h.count.Load())
		fmt.Fprintf(w, "alem_http_request_duration_seconds_sum{route=%q} %g\n", r, math.Float64frombits(h.sumBits.Load()))
		fmt.Fprintf(w, "alem_http_request_duration_seconds_count{route=%q} %d\n", r, h.count.Load())
	}

	fmt.Fprintln(w, "# HELP alem_http_in_flight_requests Requests currently being served.")
	fmt.Fprintln(w, "# TYPE alem_http_in_flight_requests gauge")
	fmt.Fprintf(w, "alem_http_in_flight_requests %d\n", m.inFlight.Load())

	fmt.Fprintln(w, "# HELP alem_http_requests_rejected_total Requests refused while draining.")
	fmt.Fprintln(w, "# TYPE alem_http_requests_rejected_total counter")
	fmt.Fprintf(w, "alem_http_requests_rejected_total %d\n", m.rejected.Load())

	fmt.Fprintln(w, "# HELP alem_http_request_timeouts_total Requests that exceeded their deadline.")
	fmt.Fprintln(w, "# TYPE alem_http_request_timeouts_total counter")
	fmt.Fprintf(w, "alem_http_request_timeouts_total %d\n", m.timeouts.Load())

	fmt.Fprintln(w, "# HELP alem_http_requests_shed_total Requests shed with 429 (breaker open or queue over watermark).")
	fmt.Fprintln(w, "# TYPE alem_http_requests_shed_total counter")
	fmt.Fprintf(w, "alem_http_requests_shed_total %d\n", m.shed.Load())

	fmt.Fprintln(w, "# HELP alem_http_panics_total Handler panics contained by the recover middleware.")
	fmt.Fprintln(w, "# TYPE alem_http_panics_total counter")
	fmt.Fprintf(w, "alem_http_panics_total %d\n", m.panics.Load())

	if extra != nil {
		extra(w)
	}
}
