package serve

import (
	"strconv"
	"sync/atomic"

	"github.com/alem/alem/internal/blocking"
	"github.com/alem/alem/internal/obs"
	"github.com/alem/alem/internal/oracle"
)

// latencyBuckets are the histogram upper bounds in seconds, chosen to
// resolve both sub-millisecond score calls and multi-second match calls.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// metrics is the server's observability surface, backed by the shared
// internal/obs registry and rendered on /metrics in the Prometheus text
// exposition format. The series names predate the registry and are part
// of the scrape contract — TestMetricsEndpoint pins every one — so the
// migration kept each name and label set stable while replacing the
// hand-rolled rendering. Everything stays lock-free on the hot path;
// the registry lock only guards lazy creation of per-route series.
type metrics struct {
	reg      *obs.Registry
	requests *obs.CounterVec   // request counts by route and status
	latency  *obs.HistogramVec // request latency by route
	inFlight atomic.Int64      // gauge source; also read by healthz and drain
	rejected *obs.Counter      // requests refused while draining
	timeouts *obs.Counter      // requests that hit their deadline
	shed     *obs.Counter      // requests shed with 429 (any reason)
	tenant   *obs.Counter      // 429s issued by per-tenant admission
	panics   *obs.Counter      // handler panics contained by the recover middleware
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg: reg,
		requests: reg.CounterVec("alem_http_requests_total",
			"Requests served, by route and status code.", "route", "code"),
		latency: reg.HistogramVec("alem_http_request_duration_seconds",
			"Request latency, by route.", latencyBuckets, "route"),
		rejected: reg.Counter("alem_http_requests_rejected_total",
			"Requests refused while draining."),
		timeouts: reg.Counter("alem_http_request_timeouts_total",
			"Requests that exceeded their deadline."),
		shed: reg.Counter("alem_http_requests_shed_total",
			"Requests shed with 429 (tenant limit, queue over watermark, or breaker open)."),
		tenant: reg.Counter("alem_http_requests_tenant_limited_total",
			"Requests shed with 429 by per-tenant token-bucket admission."),
		panics: reg.Counter("alem_http_panics_total",
			"Handler panics contained by the recover middleware."),
	}
	reg.GaugeFunc("alem_http_in_flight_requests",
		"Requests currently being served.",
		func() float64 { return float64(m.inFlight.Load()) })
	// The match path runs candidate generation per request; expose the
	// process-wide index build/ingest and filter-funnel counters on the
	// same scrape.
	blocking.RegisterMetrics(reg)
	// Labeling-cost totals from batch oracles (batch calls, answer mix,
	// microdollars billed) ride the same scrape.
	oracle.RegisterMetrics(reg)
	return m
}

func (m *metrics) observe(route string, code int, seconds float64) {
	m.requests.With(route, strconv.Itoa(code)).Inc()
	m.latency.With(route).Observe(seconds)
}
