package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/alem/alem/internal/blocking"
	"github.com/alem/alem/internal/core"
	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/linear"
	"github.com/alem/alem/internal/match"
	"github.com/alem/alem/internal/model"
)

// beerArtifact trains an SVM on the beer dataset once and shares the
// resulting artifact (and some labeled vectors) across tests.
var (
	artOnce sync.Once
	artSVM  *model.Artifact
	artVecs []feature.Vector
)

func beerArtifact(t *testing.T) (*model.Artifact, []feature.Vector) {
	t.Helper()
	artOnce.Do(func() {
		d, err := dataset.Load("beer", 1.0, 21)
		if err != nil {
			panic(err)
		}
		res, err := blocking.Generate(context.Background(),
			blocking.NewCandidateIndex(d, blocking.IndexOptions{}))
		if err != nil {
			panic(err)
		}
		ext := feature.NewExtractor(d.Left.Schema)
		X := ext.ExtractPairs(d, res.Pairs)
		y := make([]bool, len(res.Pairs))
		for i, p := range res.Pairs {
			y[i] = d.IsMatch(p)
		}
		svm := linear.NewSVM(21)
		svm.Train(X, y)
		var buf bytes.Buffer
		if err := model.Save(&buf, svm, model.Meta{
			Schema: d.Left.Schema, BlockThreshold: d.BlockThreshold, Dataset: "beer",
		}); err != nil {
			panic(err)
		}
		artSVM, err = model.Load(&buf)
		if err != nil {
			panic(err)
		}
		artVecs = X
	})
	return artSVM, artVecs
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	art, _ := beerArtifact(t)
	s := New(art, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" || body["model"] != "linear-svm" {
		t.Errorf("healthz body %v", body)
	}
}

func TestScoreHandler(t *testing.T) {
	art, X := beerArtifact(t)
	_, ts := newTestServer(t, Config{})
	req := scoreRequest{Vectors: [][]float64{X[0], X[1], X[2]}}
	resp, raw := postJSON(t, ts.URL+"/v1/score", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score status %d: %s", resp.StatusCode, raw)
	}
	var out scoreResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Scores) != 3 || len(out.Matches) != 3 {
		t.Fatalf("score response %+v", out)
	}
	for i := 0; i < 3; i++ {
		want := match.Score(art.Learner, X[i])
		if diff := out.Scores[i] - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("score %d = %v, want %v", i, out.Scores[i], want)
		}
		if out.Matches[i] != art.Learner.Predict(X[i]) {
			t.Errorf("match %d = %v, want %v", i, out.Matches[i], art.Learner.Predict(X[i]))
		}
	}
}

func TestScoreMalformed(t *testing.T) {
	art, _ := beerArtifact(t)
	_, ts := newTestServer(t, Config{})

	resp, err := http.Post(ts.URL+"/v1/score", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status %d, want 400", resp.StatusCode)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/score", scoreRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty vectors status %d, want 400", resp.StatusCode)
	}

	resp, raw := postJSON(t, ts.URL+"/v1/score", scoreRequest{Vectors: [][]float64{{1, 2}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("wrong-dim status %d, want 400", resp.StatusCode)
	}
	if !bytes.Contains(raw, []byte(fmt.Sprintf("expects %d", art.Dim))) {
		t.Errorf("wrong-dim error %s does not name the model dim", raw)
	}

	// Wrong method on a POST route.
	resp, err = http.Get(ts.URL + "/v1/score")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/score status %d, want 405", resp.StatusCode)
	}
}

func tableToJSON(tbl *dataset.Table) tableJSON {
	out := tableJSON{Name: tbl.Name, Schema: tbl.Schema, Rows: make([]rowJSON, len(tbl.Rows))}
	for i, r := range tbl.Rows {
		out.Rows[i] = rowJSON{ID: r.ID, Values: r.Values}
	}
	return out
}

func TestMatchHandler(t *testing.T) {
	art, _ := beerArtifact(t)
	_, ts := newTestServer(t, Config{})
	fresh, err := dataset.Load("beer", 1.0, 22)
	if err != nil {
		t.Fatal(err)
	}
	req := matchRequest{Left: tableToJSON(fresh.Left), Right: tableToJSON(fresh.Right)}
	resp, raw := postJSON(t, ts.URL+"/v1/match", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match status %d: %s", resp.StatusCode, raw)
	}
	var out matchResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Candidates == 0 || len(out.Pairs) == 0 {
		t.Fatalf("match response predicted %d of %d candidates", len(out.Pairs), out.Candidates)
	}
	for _, p := range out.Pairs {
		if p.LeftID == "" || p.RightID == "" || p.Confidence < 0 || p.Confidence > 1 {
			t.Fatalf("bad pair %+v", p)
		}
	}
	_ = art
}

func TestMatchSchemaMismatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	bad := tableJSON{Schema: []string{"not", "the", "schema"},
		Rows: []rowJSON{{ID: "x", Values: []string{"a", "b", "c"}}}}
	resp, raw := postJSON(t, ts.URL+"/v1/match", matchRequest{Left: bad, Right: bad})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("schema mismatch status %d, want 400: %s", resp.StatusCode, raw)
	}

	// Row arity must match the schema.
	art, _ := beerArtifact(t)
	short := tableJSON{Schema: art.Meta.Schema, Rows: []rowJSON{{ID: "x", Values: []string{"only-one"}}}}
	resp, _ = postJSON(t, ts.URL+"/v1/match", matchRequest{Left: short, Right: short})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("short row status %d, want 400", resp.StatusCode)
	}
}

// slowLearner stalls every prediction; deadline and drain tests use it
// to hold requests in flight deterministically.
type slowLearner struct {
	delay time.Duration
	dim   int
}

func (s slowLearner) Name() string { return "slow" }
func (s slowLearner) Train(X []feature.Vector, y []bool) {
}
func (s slowLearner) Predict(x feature.Vector) bool {
	time.Sleep(s.delay)
	return true
}
func (s slowLearner) PredictAll(X []feature.Vector) []bool {
	out := make([]bool, len(X))
	for i := range X {
		out[i] = s.Predict(X[i])
	}
	return out
}
func (s slowLearner) Dim() int { return s.dim }

func slowArtifact(delay time.Duration) *model.Artifact {
	return &model.Artifact{
		Kind:    "slow",
		Learner: slowLearner{delay: delay, dim: 3},
		Meta:    model.Meta{Schema: []string{"a"}},
		Dim:     3,
	}
}

func TestScoreDeadlineExceeded(t *testing.T) {
	s := New(slowArtifact(300*time.Millisecond), Config{RequestTimeout: 30 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	resp, raw := postJSON(t, ts.URL+"/v1/score", scoreRequest{Vectors: [][]float64{{1, 2, 3}}})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline status %d, want 504: %s", resp.StatusCode, raw)
	}
	if s.met.timeouts.Value() == 0 {
		t.Error("timeout counter not incremented")
	}
}

// TestConcurrentScore drives 64 concurrent score requests through the
// batching pool; run under -race this is the server's concurrency
// soundness check.
func TestConcurrentScore(t *testing.T) {
	art, X := beerArtifact(t)
	_, ts := newTestServer(t, Config{Workers: 4, MaxBatch: 32, Linger: time.Millisecond})
	want := match.Score(art.Learner, X[0])

	const clients = 64
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			raw, _ := json.Marshal(scoreRequest{Vectors: [][]float64{X[0], X[1]}})
			resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			var out scoreResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			if len(out.Scores) != 2 {
				errs <- fmt.Errorf("got %d scores", len(out.Scores))
				return
			}
			if diff := out.Scores[0] - want; diff > 1e-12 || diff < -1e-12 {
				errs <- fmt.Errorf("score %v, want %v", out.Scores[0], want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// gatedLearner blocks every prediction on an explicit gate: started is
// closed when the first prediction enters the learner, and predictions
// finish only once release is closed. Drain tests coordinate on these
// channels instead of wall-clock sleeps, so they hold on 1-CPU
// containers where "sleep long enough" margins routinely flake.
type gatedLearner struct {
	dim     int
	once    *sync.Once
	started chan struct{}
	release chan struct{}
}

func newGatedLearner(dim int) gatedLearner {
	return gatedLearner{
		dim:     dim,
		once:    &sync.Once{},
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (g gatedLearner) Name() string                       { return "gated" }
func (g gatedLearner) Train(X []feature.Vector, y []bool) {}
func (g gatedLearner) Predict(x feature.Vector) bool {
	g.once.Do(func() { close(g.started) })
	<-g.release
	return true
}
func (g gatedLearner) PredictAll(X []feature.Vector) []bool {
	out := make([]bool, len(X))
	for i := range X {
		out[i] = g.Predict(X[i])
	}
	return out
}
func (g gatedLearner) Dim() int { return g.dim }

// TestShutdownDrain holds a request in flight at the learner, triggers
// shutdown while it is provably mid-work, and verifies the request
// completes before ListenAndServe returns and that the server refuses
// work afterwards. Every step synchronizes on a channel — request at
// learner, drain begun, learner released — so there is no timing margin
// to mis-tune.
func TestShutdownDrain(t *testing.T) {
	gl := newGatedLearner(3)
	drainStarted := make(chan struct{})
	s := New(&model.Artifact{
		Kind:    "gated",
		Learner: gl,
		Meta:    model.Meta{Schema: []string{"a"}},
		Dim:     3,
	}, Config{
		RequestTimeout: 5 * time.Second, DrainTimeout: 5 * time.Second, Linger: -1,
	}, core.ObserverFunc(func(e core.Event) {
		if _, ok := e.(DrainStart); ok {
			close(drainStarted)
		}
	}))
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.ListenAndServe(ctx) }()
	<-s.Ready()
	base := "http://" + s.Addr()

	type result struct {
		status int
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		raw, _ := json.Marshal(scoreRequest{Vectors: [][]float64{{1, 2, 3}}})
		resp, err := http.Post(base+"/v1/score", "application/json", bytes.NewReader(raw))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- result{status: resp.StatusCode}
	}()

	// The request is at the learner; pull the plug, and only let the
	// learner finish once the drain has actually begun.
	<-gl.started
	cancel()
	<-drainStarted
	close(gl.release)

	res := <-inflight
	if res.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("in-flight request status %d during drain, want 200", res.status)
	}
	if err := <-served; err != nil {
		t.Fatalf("ListenAndServe returned %v after drain", err)
	}
	// The drained server must not accept new work.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, X := beerArtifact(t)
	s, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/score", scoreRequest{Vectors: [][]float64{X[0]}})
	fresh, err := dataset.Load("beer", 1.0, 23)
	if err != nil {
		t.Fatal(err)
	}
	postJSON(t, ts.URL+"/v1/match", matchRequest{Left: tableToJSON(fresh.Left), Right: tableToJSON(fresh.Right)})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, series := range []string{
		`alem_http_requests_total{route="/v1/score",code="200"} 1`,
		`alem_http_request_duration_seconds_bucket{route="/v1/match",le="+Inf"} 1`,
		`alem_http_request_duration_seconds_count{route="/v1/score"} 1`,
		"alem_http_in_flight_requests 1", // the /metrics request itself
		"alem_score_requests_total 1",
		"alem_score_batches_total 1",
		"alem_score_vectors_total 1",
		"alem_matcher_extractor_reuse_misses_total 1",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("metrics output missing %q\n%s", series, body)
		}
	}
	_ = s
}

// TestMetricsNamesStable pins the full scrape vocabulary: every metric
// family the hand-rolled renderer used to emit must survive the
// migration onto the internal/obs registry with its name and TYPE
// unchanged — dashboards and alert rules depend on these strings.
func TestMetricsNamesStable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	for _, typeLine := range []string{
		"# TYPE alem_http_requests_total counter",
		"# TYPE alem_http_request_duration_seconds histogram",
		"# TYPE alem_http_in_flight_requests gauge",
		"# TYPE alem_http_requests_rejected_total counter",
		"# TYPE alem_http_request_timeouts_total counter",
		"# TYPE alem_http_requests_shed_total counter",
		"# TYPE alem_http_requests_tenant_limited_total counter",
		"# TYPE alem_http_panics_total counter",
		"# TYPE alem_breaker_state gauge",
		"# TYPE alem_breaker_opens_total counter",
		"# TYPE alem_models_loaded gauge",
		"# TYPE alem_model_swaps_total counter",
		"# TYPE alem_model_swap_failures_total counter",
		"# TYPE alem_score_requests_total counter",
		"# TYPE alem_score_batches_total counter",
		"# TYPE alem_score_vectors_total counter",
		"# TYPE alem_score_batch_reuse_rate gauge",
		"# TYPE alem_matcher_extractor_reuse_hits_total counter",
		"# TYPE alem_matcher_extractor_reuse_misses_total counter",
		"# TYPE alem_blocking_index_builds_total counter",
		"# TYPE alem_blocking_index_adds_total counter",
		"# TYPE alem_blocking_index_postings_total counter",
		"# TYPE alem_blocking_candidates_probed_total counter",
		"# TYPE alem_blocking_size_filter_skipped_total counter",
		"# TYPE alem_blocking_pairs_verified_total counter",
		"# TYPE alem_blocking_pairs_kept_total counter",
		"# TYPE alem_oracle_cost_batches_total counter",
		"# TYPE alem_oracle_cost_labels_total counter",
		"# TYPE alem_oracle_cost_abstains_total counter",
		"# TYPE alem_oracle_cost_failures_total counter",
		"# TYPE alem_oracle_cost_microdollars_total counter",
	} {
		if !strings.Contains(body, typeLine+"\n") {
			t.Errorf("metrics output missing %q", typeLine)
		}
	}
}

// TestPprofOptIn: /debug/pprof is absent by default and served (bypassing
// the instrumentation middleware) when Config.EnablePprof is set.
func TestPprofOptIn(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without opt-in: status %d, want 404", resp.StatusCode)
	}

	s, on := newTestServer(t, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with opt-in: status %d, want 200", resp.StatusCode)
	}
	// The debug route must not leak into request metrics.
	mresp, mbody := metricsText(t, on.URL+"/metrics")
	mresp.Body.Close()
	if strings.Contains(mbody, "/debug/pprof") {
		t.Error("pprof requests were counted by the request metrics")
	}
	_ = s
}
