package serve

// Overload-protection tests: circuit breaker, load shedding, panic
// containment and degraded health reporting. The chaos-flavored ones
// carry Chaos in their names so `go test -run Chaos ./...` picks them up
// alongside the core engine's kill/resume suite.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/model"
	"github.com/alem/alem/internal/resilience"
)

// panicLearner blows up on every prediction — the pathological model the
// containment and breaker paths exist for.
type panicLearner struct{ dim int }

func (p panicLearner) Name() string                   { return "panic" }
func (p panicLearner) Train([]feature.Vector, []bool) {}
func (p panicLearner) Predict(feature.Vector) bool    { panic("model exploded") }
func (p panicLearner) PredictAll(X []feature.Vector) []bool {
	panic("model exploded")
}
func (p panicLearner) Dim() int { return p.dim }

// probPanicLearner scores cleanly but panics in Predict: scoring happens
// in the pool worker, the panic fires in the handler goroutine while
// assembling the response — exercising the recover middleware rather
// than the worker's containment.
type probPanicLearner struct{ dim int }

func (p probPanicLearner) Name() string                   { return "prob-panic" }
func (p probPanicLearner) Train([]feature.Vector, []bool) {}
func (p probPanicLearner) Predict(feature.Vector) bool    { panic("predict exploded") }
func (p probPanicLearner) PredictAll(X []feature.Vector) []bool {
	out := make([]bool, len(X))
	return out
}
func (p probPanicLearner) Prob(feature.Vector) float64 { return 0.5 }
func (p probPanicLearner) Dim() int                    { return p.dim }

func artifactFor(l interface {
	Name() string
	Train([]feature.Vector, []bool)
	Predict(feature.Vector) bool
	PredictAll([]feature.Vector) []bool
	Dim() int
}) *model.Artifact {
	return &model.Artifact{
		Kind:    model.Kind(l.Name()),
		Learner: l,
		Meta:    model.Meta{Schema: []string{"a"}},
		Dim:     3,
	}
}

func scoreOnce(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	return postJSON(t, url+"/v1/score", scoreRequest{Vectors: [][]float64{{1, 2, 3}}})
}

// TestChaosWorkerPanicContained pins the worker containment path: a
// learner that panics while scoring fails its own request with 500 and
// leaves the server able to answer the next request — the process does
// not die with the worker.
func TestChaosWorkerPanicContained(t *testing.T) {
	s := New(artifactFor(panicLearner{dim: 3}), Config{Linger: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	for i := 0; i < 3; i++ {
		resp, raw := scoreOnce(t, ts.URL)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panicking score %d: status %d, want 500: %s", i, resp.StatusCode, raw)
		}
		if !strings.Contains(string(raw), "panic") {
			t.Errorf("panicking score %d: body %q does not mention the panic", i, raw)
		}
	}
	// The server is still alive and serving non-model routes.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz after worker panics: %v", err)
	}
	resp.Body.Close()
}

// TestChaosHandlerPanicRecovered pins the recover middleware: a panic in
// the handler goroutine itself turns into a 500 with the panic counter
// and breaker fed, not a torn connection.
func TestChaosHandlerPanicRecovered(t *testing.T) {
	s := New(artifactFor(probPanicLearner{dim: 3}), Config{Linger: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	resp, raw := scoreOnce(t, ts.URL)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", resp.StatusCode, raw)
	}
	if s.met.panics.Value() != 1 {
		t.Errorf("panic counter = %d, want 1", s.met.panics.Value())
	}
	// The panic is visible on /metrics.
	mresp, mraw := metricsText(t, ts.URL)
	mresp.Body.Close()
	if !strings.Contains(mraw, "alem_http_panics_total 1") {
		t.Errorf("/metrics missing panic counter:\n%s", grepLines(mraw, "panic"))
	}
}

// waitUntil polls cond until it holds or the deadline passes. It is
// the deflaked replacement for wall-clock sleeps: on 1-CPU containers
// a fixed sleep races the scheduler, while polling an observable
// condition cannot.
func waitUntil(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func metricsText(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(raw)
}

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

func healthzBody(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body
}

// TestChaosBreakerOpensShedsAndRecovers drives the full breaker arc: a
// panicking model trips it after BreakerThreshold consecutive failures,
// open-circuit requests shed instantly with 429 + Retry-After while
// /healthz reports degraded, and after the cooldown a healthy probe
// closes it again.
func TestChaosBreakerOpensShedsAndRecovers(t *testing.T) {
	s, ts := newTestServer(t, Config{
		BreakerThreshold: 3, BreakerCooldown: 50 * time.Millisecond, Linger: -1,
	})

	// Trip the breaker the way production would: consecutive model
	// failures. Feeding Record directly keeps the test deterministic.
	for i := 0; i < 3; i++ {
		s.models.activeBreaker().Record(errors.New("model failure"))
	}

	// Both model routes shed with 429 and a positive Retry-After, and do
	// so without touching the model.
	for _, route := range []string{"/v1/score", "/v1/match"} {
		var resp *http.Response
		var raw []byte
		if route == "/v1/score" {
			resp, raw = scoreOnce(t, ts.URL)
		} else {
			resp, raw = postJSON(t, ts.URL+route, matchRequest{})
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s with open breaker: status %d, want 429: %s", route, resp.StatusCode, raw)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || ra < 1 {
			t.Errorf("%s Retry-After = %q, want a positive integer", route, resp.Header.Get("Retry-After"))
		}
	}
	if body := healthzBody(t, ts.URL); body["status"] != "degraded" || body["breaker"] != "open" {
		t.Errorf("healthz with open breaker = %v, want degraded/open", body)
	}
	mresp, mraw := metricsText(t, ts.URL)
	mresp.Body.Close()
	if !strings.Contains(mraw, "alem_breaker_state 1") {
		t.Errorf("/metrics breaker gauge:\n%s", grepLines(mraw, "breaker"))
	}
	if !strings.Contains(mraw, "alem_breaker_opens_total 1") {
		t.Errorf("/metrics breaker opens:\n%s", grepLines(mraw, "breaker"))
	}
	if !strings.Contains(mraw, "alem_http_requests_shed_total 2") {
		t.Errorf("/metrics shed counter:\n%s", grepLines(mraw, "shed"))
	}

	// Cooldown expires; the healthy model answers the probe and the
	// circuit closes. Polling the breaker's own clock instead of sleeping
	// a fixed margin keeps this robust on slow 1-CPU containers.
	waitUntil(t, 5*time.Second, func() bool { return s.models.activeBreaker().RetryAfter() == 0 }, "breaker cooldown")
	_, X := beerArtifact(t)
	resp, raw := postJSON(t, ts.URL+"/v1/score", scoreRequest{Vectors: [][]float64{X[0]}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe after cooldown: status %d, want 200: %s", resp.StatusCode, raw)
	}
	if body := healthzBody(t, ts.URL); body["status"] != "ok" || body["breaker"] != "closed" {
		t.Errorf("healthz after recovery = %v, want ok/closed", body)
	}
}

// TestChaosClientErrorProbeDoesNotWedgeBreaker pins the probe-leak fix
// end-to-end: when the half-open probe slot goes to a request that dies
// on a client error (bad JSON — an outcome that says nothing about the
// model), the probe must be released, a later healthy request must be
// admitted as a fresh probe, and its success must close the circuit.
// Before the fix, the unsettled probe shed every request until restart.
func TestChaosClientErrorProbeDoesNotWedgeBreaker(t *testing.T) {
	s, ts := newTestServer(t, Config{
		BreakerThreshold: 1, BreakerCooldown: 10 * time.Millisecond, Linger: -1,
	})
	s.models.activeBreaker().Record(errors.New("model failure"))
	waitUntil(t, 5*time.Second, func() bool { return s.models.activeBreaker().RetryAfter() == 0 }, "breaker cooldown")

	// The probe slot goes to a malformed request.
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed probe request: status %d, want 400", resp.StatusCode)
	}

	// The next healthy request must get the freed probe slot, not a 429.
	_, X := beerArtifact(t)
	okResp, raw := postJSON(t, ts.URL+"/v1/score", scoreRequest{Vectors: [][]float64{X[0]}})
	if okResp.StatusCode != http.StatusOK {
		t.Fatalf("request after client-error probe: status %d, want 200 (breaker wedged?): %s",
			okResp.StatusCode, raw)
	}
	if body := healthzBody(t, ts.URL); body["breaker"] != "closed" {
		t.Errorf("healthz breaker = %v after successful probe, want closed", body["breaker"])
	}
}

// TestPanicOnNonModelRouteLeavesBreakerAlone: panics outside match/score
// are counted but must not trip the model circuit breaker — a bug in
// /healthz says nothing about the model and must not shed healthy
// traffic.
func TestPanicOnNonModelRouteLeavesBreakerAlone(t *testing.T) {
	s := New(artifactFor(panicLearner{dim: 3}), Config{BreakerThreshold: 1, Linger: -1})
	t.Cleanup(s.Close)
	h := s.instrument(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("route exploded")
	}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking /healthz: status %d, want 500", rec.Code)
	}
	if s.met.panics.Value() != 1 {
		t.Errorf("panic counter = %d, want 1", s.met.panics.Value())
	}
	if state := s.models.activeBreaker().State(); state != resilience.BreakerClosed {
		t.Fatalf("breaker %v after non-model panic, want closed", state)
	}

	// The same panic on a model route still feeds the breaker.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/score", strings.NewReader("{}")))
	if state := s.models.activeBreaker().State(); state != resilience.BreakerOpen {
		t.Fatalf("breaker %v after model-route panic at threshold 1, want open", state)
	}
}

// TestChaosBreakerOpenUnderLoadNeverHangs is the acceptance check for
// overload protection: with the breaker open, a burst of concurrent
// clients must all get fast 429s — no request may hang waiting on the
// dead model.
func TestChaosBreakerOpenUnderLoadNeverHangs(t *testing.T) {
	s, ts := newTestServer(t, Config{
		BreakerThreshold: 1, BreakerCooldown: time.Hour, Workers: 2, Linger: -1,
	})
	s.models.activeBreaker().Record(errors.New("model failure"))

	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			raw, _ := json.Marshal(scoreRequest{Vectors: [][]float64{{1, 2, 3}}})
			cl := &http.Client{Timeout: 5 * time.Second}
			resp, err := cl.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusTooManyRequests {
				errs <- fmt.Errorf("status %d, want 429", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("shedding a 32-client burst took %s; open-breaker rejects must be fast", elapsed)
	}
	if s.met.shed.Value() != clients {
		t.Errorf("shed counter = %d, want %d", s.met.shed.Value(), clients)
	}
}

// TestChaosShedWatermark pins queue-depth load shedding without racing
// the scheduler: the single worker is held at the learner by a gate and
// batches never coalesce (MaxBatch 1), so the stages downstream of the
// intake queue hold at most three jobs and the queue itself at most
// QueueDepth — posting more than that total MUST shed by pigeonhole,
// no matter how the posts interleave. Sheds answer immediately (the
// gate never holds them), so the test waits for one, then opens the
// gate and verifies every admitted request completes.
func TestChaosShedWatermark(t *testing.T) {
	gl := newGatedLearner(3)
	s := New(artifactFor(gl), Config{
		Workers: 1, MaxBatch: 1, QueueDepth: 8, ShedWatermark: 1, Linger: -1,
		RequestTimeout: 20 * time.Second,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	// Registered after ts/s cleanup so it runs first: the drain in
	// s.Close needs the gate open.
	t.Cleanup(func() {
		select {
		case <-gl.release:
		default:
			close(gl.release)
		}
	})

	type outcome struct {
		code       int
		retryAfter int
		reason     string
		body       string
	}
	// 13 posts > 3 in-flight stages + 8 queue slots: at least one sheds.
	const total = 13
	results := make(chan outcome, total)
	post := func() {
		raw, _ := json.Marshal(scoreRequest{Vectors: [][]float64{{1, 2, 3}}})
		resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(raw))
		if err != nil {
			results <- outcome{code: -1, body: err.Error()}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		ra, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		var eresp errorResponse
		json.Unmarshal(body, &eresp)
		results <- outcome{code: resp.StatusCode, retryAfter: ra, reason: eresp.Reason, body: string(body)}
	}

	go post()
	<-gl.started // the worker is now provably inside the learner
	for i := 1; i < total; i++ {
		go post()
		time.Sleep(2 * time.Millisecond) // let each submit land before the next checks
	}

	var sheds, served []outcome
	record := func(r outcome) {
		if r.code == http.StatusTooManyRequests {
			sheds = append(sheds, r)
		} else {
			served = append(served, r)
		}
	}
	deadline := time.After(15 * time.Second)
	for len(sheds) == 0 {
		select {
		case r := <-results:
			record(r)
		case <-deadline:
			t.Fatal("no request shed despite queue over watermark")
		}
	}

	// Open the gate: every admitted request completes normally.
	close(gl.release)
	for len(sheds)+len(served) < total {
		select {
		case r := <-results:
			record(r)
		case <-time.After(15 * time.Second):
			t.Fatal("requests unanswered after gate release")
		}
	}
	for _, r := range served {
		if r.code != http.StatusOK {
			t.Errorf("admitted request finished %d, want 200: %s", r.code, r.body)
		}
	}
	for _, r := range sheds {
		if r.retryAfter < 1 {
			t.Errorf("shed Retry-After = %d, want a positive integer", r.retryAfter)
		}
		if r.reason != ShedReasonShed {
			t.Errorf("shed reason = %q, want %q (body %s)", r.reason, ShedReasonShed, r.body)
		}
	}
	if got := s.met.shed.Value(); got != int64(len(sheds)) {
		t.Errorf("shed counter = %d, want %d", got, len(sheds))
	}
}

// TestChaosDrainWithBreakerOpen runs graceful shutdown while the breaker
// is open: the drain must complete cleanly (no deadlock between the
// shedding fast-path and the pool drain) and report degraded until the
// end.
func TestChaosDrainWithBreakerOpen(t *testing.T) {
	s := New(slowArtifact(50*time.Millisecond), Config{
		DrainTimeout: 5 * time.Second, BreakerThreshold: 1, BreakerCooldown: time.Hour, Linger: -1,
	})
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.ListenAndServe(ctx) }()
	<-s.Ready()
	base := "http://" + s.Addr()

	s.models.activeBreaker().Record(errors.New("model failure"))
	resp, raw := postJSON(t, base+"/v1/score", scoreRequest{Vectors: [][]float64{{1, 2, 3}}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("pre-drain shed: status %d, want 429: %s", resp.StatusCode, raw)
	}
	if body := healthzBody(t, base); body["status"] != "degraded" {
		t.Fatalf("healthz = %v, want degraded with open breaker", body)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("drain with open breaker returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain with open breaker deadlocked")
	}
}
