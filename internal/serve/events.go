package serve

import (
	"fmt"
	"time"

	"github.com/alem/alem/internal/core"
)

// The serve layer reports through the same typed event stream the
// Session engine uses: observers (diag.EventLog, custom collectors)
// receive these alongside training events, so one log shows a model's
// whole life from labeling to serving. Each type embeds
// core.ExternalEvent to join the vocabulary and implements EventLine for
// diag's one-line rendering.

// RequestDone is emitted after every HTTP request, successful or not.
type RequestDone struct {
	core.ExternalEvent
	Method  string
	Route   string
	Status  int
	Bytes   int
	Elapsed time.Duration
	Remote  string
}

// EventLine renders the request for diag.EventLog.
func (e RequestDone) EventLine() string {
	return fmt.Sprintf("http %-4s %-12s %d %6dB in %-10s from %s",
		e.Method, e.Route, e.Status, e.Bytes, e.Elapsed.Round(time.Microsecond), e.Remote)
}

// ServerStart is emitted once the listener is bound.
type ServerStart struct {
	core.ExternalEvent
	Addr  string
	Model string
	Dim   int
}

// EventLine renders the startup line for diag.EventLog.
func (e ServerStart) EventLine() string {
	return fmt.Sprintf("serve start      addr=%s model=%s dim=%d", e.Addr, e.Model, e.Dim)
}

// DrainStart is emitted when shutdown begins: the listener has closed
// and in-flight requests are being drained.
type DrainStart struct {
	core.ExternalEvent
	InFlight int
}

// EventLine renders the drain announcement for diag.EventLog.
func (e DrainStart) EventLine() string {
	return fmt.Sprintf("serve drain      in_flight=%d", e.InFlight)
}

// ServerStop is emitted when shutdown completes.
type ServerStop struct {
	core.ExternalEvent
	Requests int64
	Uptime   time.Duration
}

// EventLine renders the shutdown line for diag.EventLog.
func (e ServerStop) EventLine() string {
	return fmt.Sprintf("serve stop       requests=%d uptime=%s", e.Requests, e.Uptime.Round(time.Millisecond))
}

// ModelPublished is emitted when a new model version enters the
// registry (validated, pool spun up, not yet serving the default
// alias).
type ModelPublished struct {
	core.ExternalEvent
	ID   string
	Kind string
	Dim  int
}

// EventLine renders the publish line for diag.EventLog.
func (e ModelPublished) EventLine() string {
	return fmt.Sprintf("model publish    id=%s kind=%s dim=%d", e.ID, e.Kind, e.Dim)
}

// ModelActivated is emitted when the default alias flips to a new
// version; Prev is the version it flipped away from ("" at boot).
type ModelActivated struct {
	core.ExternalEvent
	ID   string
	Prev string
}

// EventLine renders the activation line for diag.EventLog.
func (e ModelActivated) EventLine() string {
	prev := e.Prev
	if prev == "" {
		prev = "(none)"
	}
	return fmt.Sprintf("model activate   id=%s prev=%s", e.ID, prev)
}

// ModelSwapFailed is emitted when a publish is rejected — the offered
// artifact failed validation. The serving version is untouched; the
// server reports degraded until a subsequent successful activation.
type ModelSwapFailed struct {
	core.ExternalEvent
	ID     string
	Reason string
}

// EventLine renders the rejected-swap line for diag.EventLog.
func (e ModelSwapFailed) EventLine() string {
	return fmt.Sprintf("model swap-fail  id=%s reason=%s", e.ID, e.Reason)
}
