package serve

// Admission tests: the per-tenant token-bucket layer and the contract
// that every 429 — tenant limit, watermark shed, open breaker — is
// answered consistently with a Retry-After header and a JSON body
// naming the reason.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"github.com/alem/alem/internal/feature"
)

// shed429 asserts one admission layer's rejection shape: status 429, a
// positive integer Retry-After, and a body naming reason.
func shed429(t *testing.T, resp *http.Response, raw []byte, reason string) {
	t.Helper()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, raw)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	var eresp errorResponse
	if err := json.Unmarshal(raw, &eresp); err != nil {
		t.Fatalf("429 body is not JSON: %s", raw)
	}
	if eresp.Reason != reason {
		t.Errorf("reason = %q, want %q (body %s)", eresp.Reason, reason, raw)
	}
	if eresp.Error == "" {
		t.Error("429 body has an empty error message")
	}
}

// TestShedResponsesConsistent is the regression test for the
// inconsistent-429 fix: all three admission layers must answer the same
// way, distinguished only by the reason field.
func TestShedResponsesConsistent(t *testing.T) {
	t.Run("tenant", func(t *testing.T) {
		_, X := beerArtifact(t)
		s, ts := newTestServer(t, Config{
			TenantRate: 0.001, TenantBurst: 1, Linger: -1,
		})
		resp, raw := postJSON(t, ts.URL+"/v1/score", scoreRequest{Vectors: [][]float64{X[0]}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("first request within burst: %d: %s", resp.StatusCode, raw)
		}
		resp, raw = postJSON(t, ts.URL+"/v1/score", scoreRequest{Vectors: [][]float64{X[0]}})
		shed429(t, resp, raw, ShedReasonTenant)
		if got := s.met.tenant.Value(); got != 1 {
			t.Errorf("tenant-limited counter = %d, want 1", got)
		}
		if got := s.met.shed.Value(); got != 1 {
			t.Errorf("shed counter = %d, want 1 (tenant 429s count as sheds)", got)
		}
	})

	t.Run("shed", func(t *testing.T) {
		gl := newGatedLearner(3)
		s := New(artifactFor(gl), Config{
			Workers: 1, MaxBatch: 1, QueueDepth: 8, ShedWatermark: 1, Linger: -1,
		})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			s.Close()
		})
		t.Cleanup(func() {
			select {
			case <-gl.release:
			default:
				close(gl.release)
			}
		})
		// Build queue depth directly on the active version's pool: the
		// gate holds the single worker, MaxBatch 1 defeats coalescing, so
		// the fourth job must sit in the intake queue.
		pool := s.models.current.Load().pool
		for i := 0; i < 4; i++ {
			j := &scoreJob{ctx: context.Background(), vecs: []feature.Vector{{1, 2, 3}}, out: make(chan scoreResult, 1)}
			if err := pool.submit(j); err != nil {
				t.Fatal(err)
			}
		}
		waitUntil(t, 5*time.Second, func() bool { return pool.depth() >= 1 }, "score queue backlog")
		resp, raw := postJSON(t, ts.URL+"/v1/score", scoreRequest{Vectors: [][]float64{{1, 2, 3}}})
		shed429(t, resp, raw, ShedReasonShed)
	})

	t.Run("breaker", func(t *testing.T) {
		_, X := beerArtifact(t)
		s, ts := newTestServer(t, Config{BreakerThreshold: 1, BreakerCooldown: time.Hour, Linger: -1})
		s.models.activeBreaker().Record(errors.New("model failure"))
		resp, raw := postJSON(t, ts.URL+"/v1/score", scoreRequest{Vectors: [][]float64{X[0]}})
		shed429(t, resp, raw, ShedReasonBreaker)
	})
}

// TestChaosTenantAdmissionIsolation: one tenant burning through its
// bucket degrades alone — other tenants and the anonymous pool keep
// being served at full rate.
func TestChaosTenantAdmissionIsolation(t *testing.T) {
	_, X := beerArtifact(t)
	s, ts := newTestServer(t, Config{
		TenantRate: 0.001, TenantBurst: 2, Linger: -1,
	})
	score := func(tenant string) (*http.Response, []byte) {
		headers := map[string]string{}
		if tenant != "" {
			headers["X-Alem-Tenant"] = tenant
		}
		raw, _ := json.Marshal(scoreRequest{Vectors: [][]float64{X[0]}})
		return doJSON(t, http.MethodPost, ts.URL+"/v1/score", raw, headers)
	}

	// The hot tenant exhausts its burst of 2 and degrades to 429s.
	for i := 0; i < 2; i++ {
		if resp, raw := score("hot"); resp.StatusCode != http.StatusOK {
			t.Fatalf("hot tenant request %d: %d: %s", i, resp.StatusCode, raw)
		}
	}
	resp, raw := score("hot")
	shed429(t, resp, raw, ShedReasonTenant)

	// Everyone else is unaffected — including the anonymous bucket and
	// the ?tenant= query spelling.
	if resp, raw := score("calm"); resp.StatusCode != http.StatusOK {
		t.Fatalf("calm tenant starved by hot one: %d: %s", resp.StatusCode, raw)
	}
	if resp, raw := score(""); resp.StatusCode != http.StatusOK {
		t.Fatalf("anonymous traffic starved by hot tenant: %d: %s", resp.StatusCode, raw)
	}
	qraw, _ := json.Marshal(scoreRequest{Vectors: [][]float64{X[0]}})
	if resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/score?tenant=query-spelled", qraw, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("query-spelled tenant: %d: %s", resp.StatusCode, raw)
	}

	// Tenant admission is layered above the model routes only: /healthz
	// and /metrics never consult the buckets.
	if body := healthzBody(t, ts.URL); body["status"] != "ok" {
		t.Errorf("healthz = %v, want ok (admission must not gate health)", body)
	}
	if got := s.met.tenant.Value(); got != 1 {
		t.Errorf("tenant-limited counter = %d, want 1", got)
	}
}
