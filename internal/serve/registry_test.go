package serve

// Registry tests: versioned publish/activate/remove semantics, admin
// HTTP routes, per-model routing, and the two hot-swap chaos
// guarantees — a swap under load loses zero requests, and a swap to a
// corrupt artifact never evicts the serving version.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/alem/alem/internal/core"
	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/model"
)

// beerArtifactBytes re-serializes the shared beer artifact so HTTP
// publish tests have a valid wire body.
func beerArtifactBytes(t *testing.T) []byte {
	t.Helper()
	art, _ := beerArtifact(t)
	var buf bytes.Buffer
	if err := model.Save(&buf, art.Learner, art.Meta); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// doJSON issues a request with optional headers and returns status plus
// decoded body.
func doJSON(t *testing.T, method, url string, body []byte, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func TestRegistryPublishActivateRemove(t *testing.T) {
	art, _ := beerArtifact(t)
	reg := newRegistry(Config{Linger: -1}, nil)
	t.Cleanup(reg.Close)

	if _, _, err := reg.acquire(""); !errors.Is(err, ErrNoActiveModel) {
		t.Fatalf("acquire on empty registry = %v, want ErrNoActiveModel", err)
	}
	if err := reg.Publish("v1", art); err != nil {
		t.Fatal(err)
	}
	if err := reg.Publish("v2", art); err != nil {
		t.Fatal(err)
	}
	if reg.Current() != "" || reg.Len() != 2 {
		t.Fatalf("before activation: current %q len %d, want \"\" and 2", reg.Current(), reg.Len())
	}

	prev, err := reg.Activate("v1")
	if err != nil || prev != "" {
		t.Fatalf("first Activate = (%q, %v), want (\"\", nil)", prev, err)
	}
	e, release, err := reg.acquire(DefaultAlias)
	if err != nil || e.id != "v1" {
		t.Fatalf("default alias resolved (%v, %v), want v1", e, err)
	}
	release()
	e, release, err = reg.acquire("v2")
	if err != nil || e.id != "v2" {
		t.Fatalf("explicit id resolved (%v, %v), want v2", e, err)
	}
	release()
	if _, _, err := reg.acquire("nope"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("acquire unknown = %v, want ErrUnknownModel", err)
	}

	if prev, err = reg.Activate("v2"); err != nil || prev != "v1" {
		t.Fatalf("second Activate = (%q, %v), want (v1, nil)", prev, err)
	}
	if err := reg.Remove("v2"); err == nil {
		t.Fatal("Remove accepted the active version")
	}
	if _, err := reg.Activate("nope"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("Activate unknown = %v, want ErrUnknownModel", err)
	}
	if err := reg.Remove("v1"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Remove("v1"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("second Remove = %v, want ErrUnknownModel", err)
	}

	infos := reg.List()
	if len(infos) != 1 || infos[0].ID != "v2" || !infos[0].Active {
		t.Fatalf("List after removal = %+v, want one active v2", infos)
	}
}

func TestRegistryRejectsBadPublishes(t *testing.T) {
	art, _ := beerArtifact(t)
	reg := newRegistry(Config{Linger: -1}, nil)
	t.Cleanup(reg.Close)

	bad := map[string]func() error{
		"empty id":      func() error { return reg.Publish("", art) },
		"default alias": func() error { return reg.Publish(DefaultAlias, art) },
		"path id":       func() error { return reg.Publish("a/b", art) },
		"whitespace id": func() error { return reg.Publish("a b", art) },
		"nil artifact":  func() error { return reg.Publish("v9", nil) },
	}
	for name, publish := range bad {
		if err := publish(); !errors.Is(err, ErrSwapRejected) {
			t.Errorf("%s: err = %v, want ErrSwapRejected", name, err)
		}
	}
	if err := reg.Publish("v1", art); err != nil {
		t.Fatal(err)
	}
	if err := reg.Publish("v1", art); !errors.Is(err, ErrSwapRejected) {
		t.Fatalf("duplicate publish = %v, want ErrSwapRejected", err)
	}
	if reg.LastSwapError() == nil {
		t.Fatal("rejected publishes left no swap error")
	}
	if got := reg.swapFailures.Load(); got != int64(len(bad))+1 {
		t.Errorf("swap failures = %d, want %d", got, len(bad)+1)
	}

	// A garbage artifact through the wire path carries both sentinels:
	// the registry's rejection and the loader's diagnosis.
	if _, err := reg.PublishReader("v2", strings.NewReader("{torn")); !errors.Is(err, ErrSwapRejected) {
		t.Fatalf("garbage PublishReader = %v, want ErrSwapRejected", err)
	}

	// Success clears the degraded flag only on activation.
	if reg.LastSwapError() == nil {
		t.Fatal("swap error cleared before any activation")
	}
	if _, err := reg.Activate("v1"); err != nil {
		t.Fatal(err)
	}
	if err := reg.LastSwapError(); err != nil {
		t.Fatalf("swap error = %v after successful activation, want nil", err)
	}
}

// TestRegistryRemoveWaitsForInFlight pins the drain half of zero-loss
// swaps: a removed version's pool stays alive until the last request
// pinning it releases.
func TestRegistryRemoveWaitsForInFlight(t *testing.T) {
	reg := newRegistry(Config{Workers: 1, Linger: -1}, nil)
	t.Cleanup(reg.Close)
	if err := reg.Publish("old", artifactFor(slowLearner{dim: 3})); err != nil {
		t.Fatal(err)
	}
	if err := reg.Publish("new", artifactFor(slowLearner{dim: 3})); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Activate("new"); err != nil {
		t.Fatal(err)
	}

	e, release, err := reg.acquire("old")
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Remove("old"); err != nil {
		t.Fatal(err)
	}
	// The holder's pool must still accept and finish work.
	j := &scoreJob{ctx: context.Background(), vecs: []feature.Vector{{1, 2, 3}}, out: make(chan scoreResult, 1)}
	if err := e.pool.submit(j); err != nil {
		t.Fatalf("pool refused work while pinned by an in-flight request: %v", err)
	}
	if res := <-j.out; res.err != nil {
		t.Fatalf("pinned pool failed the job: %v", res.err)
	}

	release()
	// With the pin gone the background drain closes the pool.
	waitUntil(t, 5*time.Second, func() bool {
		probe := &scoreJob{ctx: context.Background(), vecs: []feature.Vector{{1, 2, 3}}, out: make(chan scoreResult, 1)}
		return errors.Is(e.pool.submit(probe), ErrDraining)
	}, "removed version's pool drain")
}

func TestRegistryLoadDir(t *testing.T) {
	dir := t.TempDir()
	good := beerArtifactBytes(t)
	for name, content := range map[string][]byte{
		"alpha.json": good,
		"bad.json":   []byte("{torn artifact"),
		"gamma.json": good,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	reg := newRegistry(Config{Linger: -1}, nil)
	t.Cleanup(reg.Close)
	loaded, err := reg.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 || loaded[0] != "alpha" || loaded[1] != "gamma" {
		t.Fatalf("LoadDir loaded %v, want [alpha gamma]", loaded)
	}
	// Fail-soft: the corrupt file is recorded, not fatal.
	if reg.LastSwapError() == nil {
		t.Error("corrupt artifact in models dir left no swap error")
	}
	if reg.Len() != 2 {
		t.Errorf("registry holds %d versions, want 2", reg.Len())
	}
}

// TestModelRouting drives per-request version selection: the
// X-Alem-Model header (or ?model=) routes to a specific version, the
// default alias follows activation, and unknown ids answer 404.
func TestModelRouting(t *testing.T) {
	art, X := beerArtifact(t)
	s := New(art, Config{Linger: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	// A second version with a different dimensionality makes routing
	// observable: vectors valid for one are rejected by the other.
	if err := s.Models().Publish("tiny", artifactFor(slowLearner{dim: 3})); err != nil {
		t.Fatal(err)
	}

	beerVec, _ := json.Marshal(scoreRequest{Vectors: [][]float64{X[0]}})
	tinyVec, _ := json.Marshal(scoreRequest{Vectors: [][]float64{{1, 2, 3}}})

	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/score", beerVec, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default alias score: %d: %s", resp.StatusCode, raw)
	}
	resp, raw = doJSON(t, http.MethodPost, ts.URL+"/v1/score", tinyVec,
		map[string]string{"X-Alem-Model": "tiny"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("header-routed score: %d: %s", resp.StatusCode, raw)
	}
	resp, raw = doJSON(t, http.MethodPost, ts.URL+"/v1/score?model=tiny", tinyVec, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query-routed score: %d: %s", resp.StatusCode, raw)
	}
	// Routing is real: the tiny version rejects beer-dimensional vectors.
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/score", beerVec,
		map[string]string{"X-Alem-Model": "tiny"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-dim routed score: %d, want 400", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/score", tinyVec,
		map[string]string{"X-Alem-Model": "nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: %d, want 404", resp.StatusCode)
	}
}

// TestNoActiveModelServing: a NewMulti server with nothing activated is
// alive but degraded — model routes 503, /healthz degraded, /metrics up.
func TestNoActiveModelServing(t *testing.T) {
	s := NewMulti(Config{Linger: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	resp, raw := scoreOnce(t, ts.URL)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("score with no model: %d, want 503: %s", resp.StatusCode, raw)
	}
	if body := healthzBody(t, ts.URL); body["status"] != "degraded" {
		t.Errorf("healthz = %v, want degraded with no active model", body)
	}
	mresp, _ := metricsText(t, ts.URL)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Errorf("/metrics = %d with no model, want 200", mresp.StatusCode)
	}
}

// TestAdminRoutesGated: the mutating registry routes exist only with
// EnableAdmin; the read-only listing is always mounted.
func TestAdminRoutesGated(t *testing.T) {
	art, _ := beerArtifact(t)
	s := New(art, Config{Linger: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	resp, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/models", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/models: %d: %s", resp.StatusCode, raw)
	}
	var listing modelsResponse
	if err := json.Unmarshal(raw, &listing); err != nil {
		t.Fatal(err)
	}
	if listing.Active != BootVersion || len(listing.Models) != 1 {
		t.Fatalf("listing = %+v, want active %s with one version", listing, BootVersion)
	}

	for _, probe := range []struct {
		method, path string
	}{
		{http.MethodPost, "/v1/models?id=v2"},
		{http.MethodPost, "/v1/models/v1/activate"},
		{http.MethodDelete, "/v1/models/v1"},
	} {
		resp, _ := doJSON(t, probe.method, ts.URL+probe.path, beerArtifactBytes(t), nil)
		if resp.StatusCode != http.StatusMethodNotAllowed && resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s without admin: %d, want 404/405", probe.method, probe.path, resp.StatusCode)
		}
	}
}

// TestAdminPublishActivateRemoveCycle walks the full admin lifecycle
// over HTTP, including ModelsDir persistence.
func TestAdminPublishActivateRemoveCycle(t *testing.T) {
	art, X := beerArtifact(t)
	dir := t.TempDir()
	s := New(art, Config{EnableAdmin: true, ModelsDir: dir, Linger: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	// Publish v2 without activating: it is listed but not serving.
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/models?id=v2", beerArtifactBytes(t), nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("publish v2: %d: %s", resp.StatusCode, raw)
	}
	var pub publishResponse
	if err := json.Unmarshal(raw, &pub); err != nil {
		t.Fatal(err)
	}
	if pub.ID != "v2" || pub.Activated || pub.PersistError != "" {
		t.Fatalf("publish response = %+v", pub)
	}
	if _, err := os.Stat(filepath.Join(dir, "v2.json")); err != nil {
		t.Fatalf("published artifact not persisted: %v", err)
	}
	if s.Models().Current() != BootVersion {
		t.Fatalf("publish without activate moved the alias to %q", s.Models().Current())
	}

	// Activate v2, then the boot version can be removed.
	resp, raw = doJSON(t, http.MethodPost, ts.URL+"/v1/models/v2/activate", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("activate v2: %d: %s", resp.StatusCode, raw)
	}
	if s.Models().Current() != "v2" {
		t.Fatalf("alias = %q after activate, want v2", s.Models().Current())
	}
	resp, raw = doJSON(t, http.MethodDelete, ts.URL+"/v1/models/v2", nil, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("delete active version: %d, want 409: %s", resp.StatusCode, raw)
	}
	resp, raw = doJSON(t, http.MethodDelete, ts.URL+"/v1/models/"+BootVersion, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete retired version: %d: %s", resp.StatusCode, raw)
	}
	resp, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/models/"+BootVersion, nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete unknown version: %d, want 404", resp.StatusCode)
	}

	// The swapped-in version serves.
	vec, _ := json.Marshal(scoreRequest{Vectors: [][]float64{X[0]}})
	resp, raw = doJSON(t, http.MethodPost, ts.URL+"/v1/score", vec, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score after full cycle: %d: %s", resp.StatusCode, raw)
	}

	// A fresh registry reloads the persisted fleet.
	reg := newRegistry(Config{Linger: -1}, nil)
	t.Cleanup(reg.Close)
	loaded, err := reg.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0] != "v2" {
		t.Fatalf("restart LoadDir = %v, want [v2]", loaded)
	}
}

// TestChaosHotSwapUnderLoadZeroFailures is the tentpole acceptance
// test: sustained traffic rides through a publish+activate hot swap
// with zero failed requests — every response is 200 before, during and
// after the flip, and the alias lands on the new version.
func TestChaosHotSwapUnderLoadZeroFailures(t *testing.T) {
	art, X := beerArtifact(t)
	s := New(art, Config{EnableAdmin: true, Linger: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	var served, failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	vec, _ := json.Marshal(scoreRequest{Vectors: [][]float64{X[0]}})
	const clients = 4
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(vec))
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					served.Add(1)
				} else {
					failed.Add(1)
					t.Errorf("request failed with %d during swap window", resp.StatusCode)
				}
			}
		}()
	}

	// Traffic is provably flowing, then the swap lands mid-stream.
	waitUntil(t, 10*time.Second, func() bool { return served.Load() >= 5 }, "pre-swap traffic")
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/models?id=v2&activate=true", beerArtifactBytes(t), nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("mid-traffic publish: %d: %s", resp.StatusCode, raw)
	}
	if s.Models().Current() != "v2" {
		t.Fatalf("alias = %q after swap, want v2", s.Models().Current())
	}
	// The old version retires under the same load; its in-flight work
	// drains on its own pool.
	atSwap := served.Load()
	resp, raw = doJSON(t, http.MethodDelete, ts.URL+"/v1/models/"+BootVersion, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retire %s mid-traffic: %d: %s", BootVersion, resp.StatusCode, raw)
	}
	waitUntil(t, 10*time.Second, func() bool { return served.Load() >= atSwap+5 }, "post-swap traffic")
	close(stop)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d requests failed across the swap; hot swap must lose zero", failed.Load())
	}
	if body := healthzBody(t, ts.URL); body["status"] != "ok" || body["active"] != "v2" {
		t.Errorf("healthz after swap = %v, want ok/v2", body)
	}
	mresp, mraw := metricsText(t, ts.URL)
	mresp.Body.Close()
	if !strings.Contains(mraw, "alem_model_swaps_total 2") { // boot activation + hot swap
		t.Errorf("swap counter:\n%s", grepLines(mraw, "swap"))
	}
}

// TestChaosSwapToCorruptArtifactKeepsServing is the degraded-mode
// acceptance test: a swap offered a truncated artifact is rejected with
// a typed error, the prior version never stops serving, /healthz turns
// degraded (but stays 200 — degraded is not dead), and the next good
// swap clears the condition.
func TestChaosSwapToCorruptArtifactKeepsServing(t *testing.T) {
	art, X := beerArtifact(t)
	s := New(art, Config{EnableAdmin: true, Linger: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	good := beerArtifactBytes(t)
	vec, _ := json.Marshal(scoreRequest{Vectors: [][]float64{X[0]}})

	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/models?id=v2&activate=true", good[:len(good)/2], nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt publish: %d, want 400: %s", resp.StatusCode, raw)
	}
	var eresp errorResponse
	if err := json.Unmarshal(raw, &eresp); err != nil || !strings.Contains(eresp.Error, "invalid model artifact") {
		t.Errorf("corrupt publish body = %s, want the loader's typed diagnosis", raw)
	}
	if err := s.Models().LastSwapError(); !errors.Is(err, ErrSwapRejected) || !errors.Is(err, model.ErrInvalidArtifact) {
		t.Errorf("recorded swap error = %v, want ErrSwapRejected wrapping ErrInvalidArtifact", err)
	}

	// The failed swap evicted nothing: v1 serves, healthz is degraded
	// but the endpoint itself stays 200.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d while degraded, want 200 (degraded is not dead)", hresp.StatusCode)
	}
	body := healthzBody(t, ts.URL)
	if body["status"] != "degraded" || body["active"] != BootVersion {
		t.Fatalf("healthz after corrupt swap = %v, want degraded with %s active", body, BootVersion)
	}
	if _, ok := body["last_swap_error"]; !ok {
		t.Error("healthz omits last_swap_error while degraded")
	}
	resp, raw = doJSON(t, http.MethodPost, ts.URL+"/v1/score", vec, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score after corrupt swap: %d, want 200 (prior version must keep serving): %s",
			resp.StatusCode, raw)
	}
	mresp, mraw := metricsText(t, ts.URL)
	mresp.Body.Close()
	if !strings.Contains(mraw, "alem_model_swap_failures_total 1") {
		t.Errorf("swap failure counter:\n%s", grepLines(mraw, "swap"))
	}

	// A good swap clears the degraded condition.
	resp, raw = doJSON(t, http.MethodPost, ts.URL+"/v1/models?id=v2&activate=true", good, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("recovery publish: %d: %s", resp.StatusCode, raw)
	}
	if body := healthzBody(t, ts.URL); body["status"] != "ok" || body["active"] != "v2" {
		t.Errorf("healthz after recovery = %v, want ok/v2", body)
	}
}

// TestRegistryEventsEmitted pins the registry's lifecycle vocabulary
// and its EventLine rendering.
func TestRegistryEventsEmitted(t *testing.T) {
	art, _ := beerArtifact(t)
	var mu sync.Mutex
	var lines []string
	reg := newRegistry(Config{Linger: -1}, func(e core.Event) {
		if le, ok := e.(interface{ EventLine() string }); ok {
			mu.Lock()
			lines = append(lines, le.EventLine())
			mu.Unlock()
		}
	})
	t.Cleanup(reg.Close)

	if err := reg.Publish("v1", art); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Activate("v1"); err != nil {
		t.Fatal(err)
	}
	reg.PublishReader("v2", strings.NewReader("garbage"))

	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 3 {
		t.Fatalf("events = %v, want publish/activate/swap-fail", lines)
	}
	for i, want := range []string{"model publish", "model activate", "model swap-fail"} {
		if !strings.HasPrefix(lines[i], want) {
			t.Errorf("event %d = %q, want prefix %q", i, lines[i], want)
		}
	}
	if !strings.Contains(lines[1], "prev=(none)") {
		t.Errorf("first activation %q should render prev=(none)", lines[1])
	}
}
