package serve

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/alem/alem/internal/core"
	"github.com/alem/alem/internal/match"
	"github.com/alem/alem/internal/model"
	"github.com/alem/alem/internal/resilience"
)

// The registry is the zero-downtime half of the serving layer: before
// it, almserve loaded exactly one artifact at boot and had to be killed
// to change it — every model update was an outage. Now models are
// versioned entries in a Registry, each with its own batching pool and
// circuit breaker, and "the model" /v1/match and /v1/score serve is an
// atomic pointer to the active entry. A swap is Publish (validate the
// new artifact, spin up its pool) then Activate (one pointer flip): new
// requests land on the new version the instant the flip commits, while
// requests already holding the old entry drain on its own pool —
// nothing is torn down under them, so a swap under load loses zero
// requests. A swap that fails validation changes nothing except the
// registry's degraded flag: the prior version keeps serving, mirroring
// the candidate index's "a cancelled rebuild keeps the old index" rule.

// Registry errors.
var (
	// ErrSwapRejected wraps every failed publish: the offered artifact
	// did not validate (truncated, garbage, drifted pipeline) or the
	// version id was unusable. The serving version is untouched.
	ErrSwapRejected = errors.New("serve: model swap rejected")
	// ErrNoActiveModel is returned when the default alias resolves to
	// nothing: the registry holds no activated version yet.
	ErrNoActiveModel = errors.New("serve: no active model")
	// ErrUnknownModel is returned when a request names a version id the
	// registry does not hold.
	ErrUnknownModel = errors.New("serve: unknown model version")
)

// DefaultAlias is the model id that resolves to the currently active
// version; requests that name no model use it implicitly.
const DefaultAlias = "default"

// modelEntry is one loaded version: the artifact plus the serving
// machinery dedicated to it. Each version gets its own batching pool —
// batches never mix learners, and an old version's in-flight batches
// drain on its own workers while the new version takes fresh traffic —
// and its own breaker, so a sick canary version sheds without
// condemning a healthy one.
type modelEntry struct {
	id       string
	art      *model.Artifact
	matcher  *match.Matcher
	pool     *scorePool
	breaker  *resilience.Breaker
	inflight atomic.Int64
}

// ModelInfo is one registry entry's public state, served by
// GET /v1/models and embedded per model in /healthz.
type ModelInfo struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Dim      int    `json:"dim"`
	Active   bool   `json:"active"`
	Breaker  string `json:"breaker"`
	InFlight int64  `json:"in_flight"`
}

// Registry is a versioned model store with zero-downtime activation.
// Create one through NewMulti (or New, which seeds it with one version)
// and reach it with (*Server).Models; it is safe for concurrent use and
// every mutation is also reachable over HTTP via the admin routes.
type Registry struct {
	cfg  Config
	emit func(core.Event)

	current atomic.Pointer[modelEntry]

	mu       sync.Mutex
	versions map[string]*modelEntry
	swapErr  error // last rejected swap; nil after a successful one
	closed   bool

	// Monotonic counters behind /metrics. Retired pool totals are folded
	// into the retired* accumulators when a version is removed so the
	// scrape-time sums never go backwards.
	swaps          atomic.Int64
	swapFailures   atomic.Int64
	retiredJobs    atomic.Int64
	retiredBatches atomic.Int64
	retiredVectors atomic.Int64
	retiredOpens   atomic.Int64
	drains         sync.WaitGroup
}

// newRegistry builds an empty registry serving with cfg's pool and
// breaker sizing. emit receives the registry's lifecycle events
// (ModelPublished, ModelActivated, ModelSwapFailed); nil disables them.
func newRegistry(cfg Config, emit func(core.Event)) *Registry {
	if emit == nil {
		emit = func(core.Event) {}
	}
	return &Registry{
		cfg:      cfg.withDefaults(),
		emit:     emit,
		versions: make(map[string]*modelEntry),
	}
}

// validID rejects version ids that would break routing or the on-disk
// layout: empty, the reserved default alias, path separators and
// whitespace.
func validID(id string) error {
	if id == "" {
		return fmt.Errorf("empty model id")
	}
	if id == DefaultAlias {
		return fmt.Errorf("model id %q is the reserved default alias", DefaultAlias)
	}
	if strings.ContainsAny(id, "/\\ \t\n") {
		return fmt.Errorf("model id %q contains path separators or whitespace", id)
	}
	return nil
}

// Publish validates and stores art as version id, ready to activate.
// It never touches the active pointer: publishing a bad artifact (or a
// duplicate id) is a rejected swap — the error wraps ErrSwapRejected,
// the failure is recorded for /healthz, and the serving version is
// untouched.
func (reg *Registry) Publish(id string, art *model.Artifact) error {
	if err := reg.publish(id, art); err != nil {
		reg.recordSwapFailure(id, err)
		return err
	}
	reg.emit(ModelPublished{ID: id, Kind: string(art.Kind), Dim: art.Dim})
	return nil
}

func (reg *Registry) publish(id string, art *model.Artifact) error {
	if err := validID(id); err != nil {
		return fmt.Errorf("%w: %v", ErrSwapRejected, err)
	}
	if art == nil || art.Learner == nil {
		return fmt.Errorf("%w: nil artifact", ErrSwapRejected)
	}
	e := &modelEntry{
		id:      id,
		art:     art,
		matcher: art.Matcher(),
		breaker: resilience.NewBreaker(resilience.BreakerConfig{
			FailureThreshold: reg.cfg.BreakerThreshold,
			Cooldown:         reg.cfg.BreakerCooldown,
		}),
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.closed {
		return fmt.Errorf("%w: registry is closed", ErrSwapRejected)
	}
	if _, dup := reg.versions[id]; dup {
		return fmt.Errorf("%w: version %q already published (remove it first)", ErrSwapRejected, id)
	}
	// The pool spins up only once the entry is definitely going in: a
	// rejected publish must leak no worker goroutines.
	e.pool = newScorePool(art.Learner, reg.cfg.Workers, reg.cfg.MaxBatch, reg.cfg.QueueDepth, reg.cfg.Linger)
	reg.versions[id] = e
	return nil
}

// PublishReader decodes, validates and publishes an artifact from r —
// the admin POST /v1/models path. A truncated or garbage body is a
// rejected swap (the model loader's typed ErrInvalidArtifact rides
// inside the returned ErrSwapRejected chain); nothing is applied.
func (reg *Registry) PublishReader(id string, r io.Reader) (*model.Artifact, error) {
	art, err := model.Load(r)
	if err != nil {
		err = fmt.Errorf("%w: %w", ErrSwapRejected, err)
		reg.recordSwapFailure(id, err)
		return nil, err
	}
	if err := reg.Publish(id, art); err != nil {
		return nil, err
	}
	return art, nil
}

// Activate flips the default alias to version id with one atomic
// pointer store: requests that resolved the alias before the flip
// finish on the previous version's own pool, requests after it land on
// the new one, and no request observes a torn state in between. A
// successful activation clears the registry's degraded flag. Activating
// an unknown id changes nothing.
func (reg *Registry) Activate(id string) (prev string, err error) {
	reg.mu.Lock()
	e, ok := reg.versions[id]
	if !ok {
		reg.mu.Unlock()
		return "", fmt.Errorf("%w: %q", ErrUnknownModel, id)
	}
	old := reg.current.Swap(e)
	reg.swapErr = nil
	reg.mu.Unlock()
	reg.swaps.Add(1)
	if old != nil {
		prev = old.id
	}
	if old != e {
		reg.emit(ModelActivated{ID: id, Prev: prev})
	}
	return prev, nil
}

// recordSwapFailure notes a rejected publish for /healthz and /metrics.
func (reg *Registry) recordSwapFailure(id string, err error) {
	reg.mu.Lock()
	reg.swapErr = err
	reg.mu.Unlock()
	reg.swapFailures.Add(1)
	reg.emit(ModelSwapFailed{ID: id, Reason: err.Error()})
}

// Remove retires a non-active version: it disappears from routing
// immediately, then a background drain waits for its in-flight requests
// to finish before closing its pool. Removing the active version is an
// error — activate a replacement first.
func (reg *Registry) Remove(id string) error {
	reg.mu.Lock()
	e, ok := reg.versions[id]
	if !ok {
		reg.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownModel, id)
	}
	if reg.current.Load() == e {
		reg.mu.Unlock()
		return fmt.Errorf("serve: version %q is active; activate a replacement before removing it", id)
	}
	delete(reg.versions, id)
	reg.drains.Add(1)
	reg.mu.Unlock()

	go func() {
		defer reg.drains.Done()
		// No new request can acquire the entry (it left the map under the
		// lock); wait out the ones that already hold it.
		for e.inflight.Load() > 0 {
			time.Sleep(time.Millisecond)
		}
		e.pool.close()
		jobs, batches, vecs := e.pool.totals()
		reg.retiredJobs.Add(jobs)
		reg.retiredBatches.Add(batches)
		reg.retiredVectors.Add(vecs)
		reg.retiredOpens.Add(e.breaker.Opens())
	}()
	return nil
}

// LoadDir publishes every *.json artifact in dir (version id = file
// stem, lexical order) without activating any. Robustness over
// strictness: a file that fails validation is recorded as a rejected
// swap — /healthz turns degraded — and skipped, so one corrupt artifact
// in the fleet directory cannot hold every healthy model hostage at
// boot. Returns the ids published.
func (reg *Registry) LoadDir(dir string) ([]string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("serve: scanning models dir %s: %w", dir, err)
	}
	sort.Strings(names)
	var loaded []string
	for _, name := range names {
		id := strings.TrimSuffix(filepath.Base(name), ".json")
		f, err := os.Open(name)
		if err != nil {
			reg.recordSwapFailure(id, fmt.Errorf("%w: %v", ErrSwapRejected, err))
			continue
		}
		_, err = reg.PublishReader(id, f)
		f.Close()
		if err != nil {
			continue // PublishReader already recorded the failure
		}
		loaded = append(loaded, id)
	}
	return loaded, nil
}

// acquire resolves id ("" or DefaultAlias → the active version) and
// pins the entry against removal for the caller's lifetime; release
// must be called exactly once. The refcount is what lets a swap drain
// instead of drop: a request that resolved the old version keeps a
// live pool until it releases.
func (reg *Registry) acquire(id string) (*modelEntry, func(), error) {
	if id == "" || id == DefaultAlias {
		for {
			e := reg.current.Load()
			if e == nil {
				return nil, nil, ErrNoActiveModel
			}
			// Pin under the lock only if the version is still registered: a
			// concurrent Activate+Remove pair could otherwise close the pool
			// between the alias load and the refcount bump. Inflight bumps
			// happen only while the entry is in the map, so Remove's drain
			// (which deletes first) can never miss a holder.
			reg.mu.Lock()
			if reg.versions[e.id] == e {
				e.inflight.Add(1)
				reg.mu.Unlock()
				return e, releaseOnce(e), nil
			}
			reg.mu.Unlock()
			// The alias moved on while we resolved it; try again.
		}
	}
	reg.mu.Lock()
	e, ok := reg.versions[id]
	if !ok {
		reg.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownModel, id)
	}
	e.inflight.Add(1)
	reg.mu.Unlock()
	return e, releaseOnce(e), nil
}

// releaseOnce returns the idempotent unpin for an acquired entry.
func releaseOnce(e *modelEntry) func() {
	var once sync.Once
	return func() { once.Do(func() { e.inflight.Add(-1) }) }
}

// Current reports the active version id ("" when none is activated).
func (reg *Registry) Current() string {
	if e := reg.current.Load(); e != nil {
		return e.id
	}
	return ""
}

// Len reports how many versions the registry holds.
func (reg *Registry) Len() int {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	return len(reg.versions)
}

// LastSwapError reports the most recent rejected swap, nil after a
// successful Activate. While non-nil the server's /healthz is degraded.
func (reg *Registry) LastSwapError() error {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	return reg.swapErr
}

// List reports every version sorted by id.
func (reg *Registry) List() []ModelInfo {
	active := reg.current.Load()
	reg.mu.Lock()
	out := make([]ModelInfo, 0, len(reg.versions))
	for _, e := range reg.versions {
		out = append(out, ModelInfo{
			ID:       e.id,
			Kind:     string(e.art.Kind),
			Dim:      e.art.Dim,
			Active:   e == active,
			Breaker:  e.breaker.State().String(),
			InFlight: e.inflight.Load(),
		})
	}
	reg.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Close drains and closes every version's pool, waiting for Remove
// drains already in flight. The registry rejects publishes afterwards.
func (reg *Registry) Close() {
	reg.mu.Lock()
	if reg.closed {
		reg.mu.Unlock()
		return
	}
	reg.closed = true
	entries := make([]*modelEntry, 0, len(reg.versions))
	for _, e := range reg.versions {
		entries = append(entries, e)
	}
	reg.mu.Unlock()
	for _, e := range entries {
		e.pool.close()
	}
	reg.drains.Wait()
}

// activeBreaker is the breaker a model-route panic feeds when the
// handler died before resolving a version; nil with no active model.
func (reg *Registry) activeBreaker() *resilience.Breaker {
	if e := reg.current.Load(); e != nil {
		return e.breaker
	}
	return nil
}

// poolTotals sums the batching-pool counters across live versions plus
// everything already folded in from retired ones — the monotone series
// /metrics scrapes.
func (reg *Registry) poolTotals() (jobs, batches, vectors int64) {
	jobs, batches, vectors = reg.retiredJobs.Load(), reg.retiredBatches.Load(), reg.retiredVectors.Load()
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, e := range reg.versions {
		j, b, v := e.pool.totals()
		jobs, batches, vectors = jobs+j, batches+b, vectors+v
	}
	return jobs, batches, vectors
}

// breakerOpens sums breaker trips across live and retired versions.
func (reg *Registry) breakerOpens() int64 {
	total := reg.retiredOpens.Load()
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, e := range reg.versions {
		total += e.breaker.Opens()
	}
	return total
}

// extractorReuse sums matcher extractor-cache hits and misses across
// live versions.
func (reg *Registry) extractorReuse() (hits, misses int64) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, e := range reg.versions {
		h, m := e.matcher.ExtractorReuse()
		hits += int64(h)
		misses += int64(m)
	}
	return hits, misses
}
