package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableCSVRoundTrip(t *testing.T) {
	tbl := &Table{
		Name:   "t",
		Schema: []string{"name", "price"},
		Rows: []Record{
			{ID: "L0", Values: []string{"sonixx speaker", "19.99"}},
			{ID: "L1", Values: []string{"with, comma", ""}},
		},
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(got.Rows))
	}
	for i := range tbl.Rows {
		if got.Rows[i].ID != tbl.Rows[i].ID {
			t.Errorf("row %d id = %q, want %q", i, got.Rows[i].ID, tbl.Rows[i].ID)
		}
		for j := range tbl.Schema {
			if got.Rows[i].Values[j] != tbl.Rows[i].Values[j] {
				t.Errorf("row %d col %d = %q, want %q",
					i, j, got.Rows[i].Values[j], tbl.Rows[i].Values[j])
			}
		}
	}
}

func TestReadCSVRejectsMissingID(t *testing.T) {
	if _, err := ReadCSV("bad", strings.NewReader("name,price\nx,1\n")); err == nil {
		t.Error("ReadCSV accepted a table without an id column")
	}
}

func TestTableValue(t *testing.T) {
	tbl := &Table{Schema: []string{"a", "b"}, Rows: []Record{{Values: []string{"x", "y"}}}}
	if v := tbl.Value(0, "b"); v != "y" {
		t.Errorf("Value(0,b) = %q, want y", v)
	}
	if v := tbl.Value(0, "missing"); v != "" {
		t.Errorf("Value(0,missing) = %q, want empty", v)
	}
}

func TestDatasetTruth(t *testing.T) {
	l := &Table{Rows: make([]Record, 3)}
	r := &Table{Rows: make([]Record, 3)}
	d := NewDataset("x", l, r, []PairKey{{L: 0, R: 0}, {L: 1, R: 2}}, 0.2)
	if !d.IsMatch(PairKey{L: 0, R: 0}) || !d.IsMatch(PairKey{L: 1, R: 2}) {
		t.Error("declared matches not reported as matches")
	}
	if d.IsMatch(PairKey{L: 0, R: 1}) {
		t.Error("undeclared pair reported as match")
	}
	if d.NumMatches() != 2 {
		t.Errorf("NumMatches = %d, want 2", d.NumMatches())
	}
	if d.TotalPairs() != 9 {
		t.Errorf("TotalPairs = %d, want 9", d.TotalPairs())
	}
	if got := len(d.Matches()); got != 2 {
		t.Errorf("len(Matches) = %d, want 2", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("beer")
	a := Generate(p.Config(1.0), 99)
	b := Generate(p.Config(1.0), 99)
	if len(a.Left.Rows) != len(b.Left.Rows) || len(a.Right.Rows) != len(b.Right.Rows) {
		t.Fatal("table sizes differ across identical seeds")
	}
	for i := range a.Left.Rows {
		for j := range a.Left.Schema {
			if a.Left.Rows[i].Values[j] != b.Left.Rows[i].Values[j] {
				t.Fatalf("left row %d col %d differs across identical seeds", i, j)
			}
		}
	}
	c := Generate(p.Config(1.0), 100)
	same := true
	for i := range a.Left.Rows {
		if i >= len(c.Left.Rows) {
			same = false
			break
		}
		if a.Left.Rows[i].Values[0] != c.Left.Rows[i].Values[0] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical left tables")
	}
}

func TestGenerateMatchStructure(t *testing.T) {
	p, _ := ProfileByName("abt-buy")
	cfg := p.Config(0.1)
	d := Generate(cfg, 7)
	// 1-1 datasets: #matches == #shared entities.
	if d.NumMatches() != cfg.NumEntities {
		t.Errorf("matches = %d, want %d (1-1 dataset)", d.NumMatches(), cfg.NumEntities)
	}
	if len(d.Left.Rows) != cfg.NumEntities+cfg.LeftOnly {
		t.Errorf("left rows = %d, want %d", len(d.Left.Rows), cfg.NumEntities+cfg.LeftOnly)
	}
	for _, m := range d.Matches() {
		if m.L < 0 || m.L >= len(d.Left.Rows) || m.R < 0 || m.R >= len(d.Right.Rows) {
			t.Fatalf("match %v out of range", m)
		}
	}
}

func TestGenerateDedupClusters(t *testing.T) {
	p, _ := ProfileByName("cora")
	cfg := p.Config(0.05)
	d := Generate(cfg, 7)
	// Duplicate clusters: strictly more matches than entities.
	if d.NumMatches() <= cfg.NumEntities {
		t.Errorf("cora matches = %d, want > %d entities (dup clusters)",
			d.NumMatches(), cfg.NumEntities)
	}
	// Renditions per side within [min,max] overall bounds.
	minRows := cfg.NumEntities*cfg.LeftDups[0] + cfg.LeftOnly
	maxRows := cfg.NumEntities*cfg.LeftDups[1] + cfg.LeftOnly
	if n := len(d.Left.Rows); n < minRows || n > maxRows {
		t.Errorf("left rows = %d, want in [%d,%d]", n, minRows, maxRows)
	}
}

func TestGenerateSchemasMatchProfiles(t *testing.T) {
	for _, p := range Profiles() {
		cfg := p.Config(0.02)
		d := Generate(cfg, 3)
		if len(d.Left.Schema) != len(p.Paper.MatchedColumns) {
			t.Errorf("%s: schema width %d, want %d (Table 1 matched columns)",
				p.Name, len(d.Left.Schema), len(p.Paper.MatchedColumns))
		}
		for i, c := range p.Paper.MatchedColumns {
			if d.Left.Schema[i] != c {
				t.Errorf("%s: schema[%d] = %q, want %q", p.Name, i, d.Left.Schema[i], c)
			}
		}
		for _, r := range d.Left.Rows {
			if len(r.Values) != len(d.Left.Schema) {
				t.Fatalf("%s: row width %d != schema width %d", p.Name, len(r.Values), len(d.Left.Schema))
			}
		}
	}
}

func TestLoadUnknownProfile(t *testing.T) {
	if _, err := Load("no-such-dataset", 1, 1); err == nil {
		t.Error("Load accepted unknown profile")
	}
}

func TestProfilesSortedAndComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 10 {
		t.Fatalf("%d profiles, want 10 (Table 1's nine + social-media)", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Name >= ps[i].Name {
			t.Errorf("profiles not sorted: %q >= %q", ps[i-1].Name, ps[i].Name)
		}
	}
	for _, want := range []string{"abt-buy", "amazon-google", "dblp-acm",
		"dblp-scholar", "cora", "walmart-amazon", "amazon-bestbuy", "beer",
		"baby-products", "social-media"} {
		if _, ok := ProfileByName(want); !ok {
			t.Errorf("missing profile %q", want)
		}
	}
}

func TestMatchesSurviveRendering(t *testing.T) {
	// A matched pair must stay textually closer than a random pair, or the
	// whole EM task degenerates. Check mean Jaccard separation.
	d, err := Load("dblp-acm", 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	var matchSim, randSim float64
	matches := d.Matches()
	for _, m := range matches {
		l, r := d.PairText(m)
		matchSim += jaccardText(l, r)
		// random pair with same left
		rr := (m.R + 7) % len(d.Right.Rows)
		l2, r2 := d.PairText(PairKey{L: m.L, R: rr})
		randSim += jaccardText(l2, r2)
	}
	matchSim /= float64(len(matches))
	randSim /= float64(len(matches))
	if matchSim <= randSim+0.2 {
		t.Errorf("match similarity %.3f not clearly above random %.3f", matchSim, randSim)
	}
}

func jaccardText(a, b string) float64 {
	ta := strings.Fields(strings.ToLower(a))
	tb := strings.Fields(strings.ToLower(b))
	sa := map[string]struct{}{}
	for _, x := range ta {
		sa[x] = struct{}{}
	}
	sb := map[string]struct{}{}
	for _, x := range tb {
		sb[x] = struct{}{}
	}
	inter := 0
	for x := range sa {
		if _, ok := sb[x]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
