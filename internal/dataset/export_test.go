package dataset

import (
	"os"
	"path/filepath"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	orig, err := Load("beer", 1.0, 13)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.Export(dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"left.csv", "right.csv", "matches.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	got, err := Import("beer", dir, orig.BlockThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Left.Rows) != len(orig.Left.Rows) || len(got.Right.Rows) != len(orig.Right.Rows) {
		t.Fatalf("table sizes differ after round trip")
	}
	if got.NumMatches() != orig.NumMatches() {
		t.Fatalf("matches = %d, want %d", got.NumMatches(), orig.NumMatches())
	}
	for _, m := range orig.Matches() {
		if !got.IsMatch(m) {
			t.Fatalf("match %v lost in round trip", m)
		}
	}
	for i := range orig.Left.Rows {
		for j := range orig.Left.Schema {
			if got.Left.Rows[i].Values[j] != orig.Left.Rows[i].Values[j] {
				t.Fatalf("left row %d col %d differs", i, j)
			}
		}
	}
}

func TestImportRejectsDanglingMatch(t *testing.T) {
	dir := t.TempDir()
	d, err := Load("beer", 0.3, 13)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Export(dir); err != nil {
		t.Fatal(err)
	}
	// Corrupt matches.csv with an unknown id.
	path := filepath.Join(dir, "matches.csv")
	if err := os.WriteFile(path, []byte("left_id,right_id\nL0,R0\nL999999,R0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Import("beer", dir, 0.16); err == nil {
		t.Error("Import accepted a match referencing a missing record")
	}
}

func TestImportMissingDir(t *testing.T) {
	if _, err := Import("x", "/nonexistent/path", 0.2); err == nil {
		t.Error("Import accepted a missing directory")
	}
}
