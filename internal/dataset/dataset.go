// Package dataset models the tabular entity-matching inputs of the
// benchmark and synthesizes stand-ins for the ten datasets of the paper
// (Table 1 plus the §6.3.1 social-media dataset).
//
// The real datasets (Abt-Buy, DBLP-ACM, ...) cannot be downloaded in this
// offline build, so each is replaced by a generated dataset with the same
// schema, approximate post-blocking candidate count and class skew — see
// DESIGN.md "Substitutions" for why this preserves the behaviours under
// study. Generation is fully deterministic given a seed.
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Record is one row of a table. Values align with the table schema; an
// empty string is a null (the feature extractor scores nulls as 0, §3).
type Record struct {
	ID     string
	Values []string
}

// Table is a named relation with a flat string schema.
type Table struct {
	Name   string
	Schema []string
	Rows   []Record
}

// NumRows returns the number of records in the table.
func (t *Table) NumRows() int { return len(t.Rows) }

// Value returns row i's value for the named attribute, or "" if absent.
func (t *Table) Value(i int, attr string) string {
	for j, a := range t.Schema {
		if a == attr {
			return t.Rows[i].Values[j]
		}
	}
	return ""
}

// WriteCSV serializes the table with an id column followed by the schema
// columns, so generated datasets can be inspected or reused outside Go.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"id"}, t.Schema...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(t.Schema)+1)
	for _, r := range t.Rows {
		row[0] = r.ID
		copy(row[1:], r.Values)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table previously written by WriteCSV.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading %s header: %w", name, err)
	}
	if len(header) < 2 || header[0] != "id" {
		return nil, fmt.Errorf("dataset: %s: want leading id column, got %v", name, header)
	}
	t := &Table{Name: name, Schema: header[1:]}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading %s: %w", name, err)
		}
		t.Rows = append(t.Rows, Record{ID: rec[0], Values: rec[1:]})
	}
	return t, nil
}

// PairKey identifies a candidate pair by row indices into the left and
// right tables.
type PairKey struct{ L, R int }

// Dataset is a two-table EM instance with generator-side ground truth.
// For deduplication datasets (Cora) Left and Right hold the same logical
// collection split in two, matching how the paper pairs records.
type Dataset struct {
	Name  string
	Left  *Table
	Right *Table
	// truth holds the matching pairs. Pairs absent from the map are
	// non-matches.
	truth map[PairKey]bool
	// BlockThreshold is the offline token-Jaccard threshold the paper's
	// pipeline applies to this dataset (§6: 0.1875 / 0.12 / 0.16).
	BlockThreshold float64
}

// NewDataset builds a Dataset from tables and the set of matching pairs.
func NewDataset(name string, left, right *Table, matches []PairKey, blockThreshold float64) *Dataset {
	truth := make(map[PairKey]bool, len(matches))
	for _, m := range matches {
		truth[m] = true
	}
	return &Dataset{Name: name, Left: left, Right: right, truth: truth, BlockThreshold: blockThreshold}
}

// IsMatch reports the ground-truth label of a pair. It stands in for the
// labeled ground truth the paper's perfect Oracle consults.
func (d *Dataset) IsMatch(p PairKey) bool { return d.truth[p] }

// NumMatches returns the total number of matching pairs in the truth.
func (d *Dataset) NumMatches() int { return len(d.truth) }

// Matches returns all matching pairs (order unspecified).
func (d *Dataset) Matches() []PairKey {
	out := make([]PairKey, 0, len(d.truth))
	for k := range d.truth {
		out = append(out, k)
	}
	return out
}

// TotalPairs returns the size of the Cartesian product |Left| × |Right|,
// the "#Total Pairs" column of Table 1.
func (d *Dataset) TotalPairs() int { return len(d.Left.Rows) * len(d.Right.Rows) }

// PairText concatenates all attribute values of both records of a pair,
// used by the offline blocking step's tokenizer.
func (d *Dataset) PairText(p PairKey) (string, string) {
	return strings.Join(d.Left.Rows[p.L].Values, " "), strings.Join(d.Right.Rows[p.R].Values, " ")
}
