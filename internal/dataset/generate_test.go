package dataset

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestGenValueKinds(t *testing.T) {
	cfg := Config{Attrs: []AttrSpec{
		{Name: "words", Kind: KindWords, Vocab: []string{"a", "b", "c"}, MinWords: 2, MaxWords: 4},
		{Name: "cat", Kind: KindCategorical, Vocab: []string{"x", "y"}},
		{Name: "names", Kind: KindNames, MinNames: 2, MaxNames: 2},
		{Name: "num", Kind: KindNumeric, Lo: 1, Hi: 2},
		{Name: "model", Kind: KindModelNo},
		{Name: "year", Kind: KindYear, Lo: 2000, Hi: 2001},
		{Name: "email", Kind: KindEmail, DeriveFrom: 2},
		{Name: "url", Kind: KindURL, DeriveFrom: 2},
		{Name: "flag", Kind: KindBool},
		{Name: "dims", Kind: KindDims},
	}, NumEntities: 50, BlockThreshold: 0.2}
	d := Generate(cfg, 5)
	for _, row := range d.Left.Rows[:20] {
		words := strings.Fields(row.Values[0])
		if len(words) < 1 || len(words) > 4 {
			t.Errorf("words value %q outside bounds", row.Values[0])
		}
		if row.Values[1] != "x" && row.Values[1] != "y" {
			t.Errorf("categorical value %q not in vocab", row.Values[1])
		}
		if names := strings.Split(row.Values[2], ", "); len(names) != 2 {
			t.Errorf("names value %q should have 2 names", row.Values[2])
		}
		if !strings.Contains(row.Values[6], "@") {
			t.Errorf("email %q missing @", row.Values[6])
		}
		if !strings.HasPrefix(row.Values[7], "www.") {
			t.Errorf("url %q missing www prefix", row.Values[7])
		}
		if row.Values[8] != "yes" && row.Values[8] != "no" {
			t.Errorf("bool value %q", row.Values[8])
		}
		if !strings.Contains(row.Values[9], "inches") {
			t.Errorf("dims value %q", row.Values[9])
		}
		if !strings.Contains(row.Values[4], "-") {
			t.Errorf("model value %q missing separator", row.Values[4])
		}
		y := row.Values[5]
		if y != "2000" && y != "2001" {
			t.Errorf("year %q outside [2000,2001]", y)
		}
	}
}

func TestEmailDerivedFromName(t *testing.T) {
	cfg := Config{Attrs: []AttrSpec{
		{Name: "name", Kind: KindNames, MinNames: 1, MaxNames: 1},
		{Name: "email", Kind: KindEmail, DeriveFrom: 0},
	}, NumEntities: 30, BlockThreshold: 0.2}
	d := Generate(cfg, 9)
	derived := 0
	for _, row := range d.Left.Rows {
		name := strings.Fields(row.Values[0])
		if len(name) == 0 || row.Values[1] == "" {
			continue
		}
		local := strings.SplitN(row.Values[1], "@", 2)[0]
		// Perturbation may typo the email, so only require a majority of
		// rows to carry a recognizably derived local part.
		if strings.Contains(local, name[0][:min(3, len(name[0]))]) {
			derived++
		}
	}
	if derived < len(d.Left.Rows)/2 {
		t.Errorf("only %d/%d emails look derived from the name", derived, len(d.Left.Rows))
	}
}

func TestGenerateQuickProperties(t *testing.T) {
	p, _ := ProfileByName("beer")
	prop := func(seed int64) bool {
		d := Generate(p.Config(0.2), seed)
		// Every row has schema width; every match index is valid.
		for _, tb := range []*Table{d.Left, d.Right} {
			for _, row := range tb.Rows {
				if len(row.Values) != len(tb.Schema) {
					return false
				}
			}
		}
		for _, m := range d.Matches() {
			if m.L < 0 || m.L >= len(d.Left.Rows) || m.R < 0 || m.R >= len(d.Right.Rows) {
				return false
			}
		}
		return d.NumMatches() > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestModalRenditionsAreBimodal(t *testing.T) {
	// On a modal dataset, right-side renditions should show two modes:
	// name-preserved-with-null-description and the reverse. Measure null
	// rates of the two modal attributes.
	p, _ := ProfileByName("abt-buy")
	cfg := p.Config(0.3)
	d := Generate(cfg, 12)
	nullName, nullDesc := 0, 0
	for _, m := range d.Matches() {
		row := d.Right.Rows[m.R]
		if row.Values[0] == "" {
			nullName++
		}
		if row.Values[1] == "" {
			nullDesc++
		}
	}
	n := d.NumMatches()
	// Each attr is destroyed in ~half the renditions with null 0.55, so
	// null rates land near 27% each; require a loose band.
	if rate := float64(nullName) / float64(n); rate < 0.1 || rate > 0.5 {
		t.Errorf("name null rate %.2f outside bimodal band", rate)
	}
	if rate := float64(nullDesc) / float64(n); rate < 0.15 || rate > 0.6 {
		t.Errorf("description null rate %.2f outside bimodal band", rate)
	}
}

func TestConfigValidateAcceptsAllProfiles(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Config(1.0).Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestConfigValidateRejections(t *testing.T) {
	base := func() Config {
		return Config{
			Name: "x",
			Attrs: []AttrSpec{
				{Name: "a", Kind: KindWords, Vocab: []string{"w"}, MinWords: 1, MaxWords: 2},
			},
			NumEntities: 5, BlockThreshold: 0.2,
		}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no name", func(c *Config) { c.Name = "" }},
		{"no attrs", func(c *Config) { c.Attrs = nil }},
		{"zero entities", func(c *Config) { c.NumEntities = 0 }},
		{"unnamed attr", func(c *Config) { c.Attrs[0].Name = "" }},
		{"duplicate attr", func(c *Config) {
			c.Attrs = append(c.Attrs, AttrSpec{Name: "a", Kind: KindBool})
		}},
		{"empty vocab", func(c *Config) { c.Attrs[0].Vocab = nil }},
		{"bad word range", func(c *Config) { c.Attrs[0].MaxWords = 0 }},
		{"bad numeric range", func(c *Config) {
			c.Attrs = append(c.Attrs, AttrSpec{Name: "n", Kind: KindNumeric, Lo: 5, Hi: 5})
		}},
		{"self-derived email", func(c *Config) {
			c.Attrs = append(c.Attrs, AttrSpec{Name: "e", Kind: KindEmail, DeriveFrom: 1})
		}},
		{"null rate 1", func(c *Config) { c.Attrs[0].NullRate = 1 }},
		{"modal out of range", func(c *Config) { c.Modal = true; c.ModalAttrs = [2]int{0, 5} }},
		{"modal same attr", func(c *Config) { c.Modal = true; c.ModalAttrs = [2]int{0, 0} }},
		{"bad threshold", func(c *Config) { c.BlockThreshold = 0 }},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid config", tc.name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Errorf("base config rejected: %v", err)
	}
}
