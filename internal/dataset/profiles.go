package dataset

import (
	"fmt"
	"math"
	"sort"
)

// PaperStats records the Table 1 row (and §6.3.1 description) of the real
// dataset each profile stands in for, so experiment output can print
// paper-vs-measured side by side.
type PaperStats struct {
	MatchedColumns    []string
	TotalPairs        float64 // paper's Cartesian product size
	PostBlockingPairs int
	ClassSkew         float64
}

// Profile couples a generator Config factory with the corresponding
// paper statistics. Scale multiplies entity counts: scale 1.0 targets the
// paper's post-blocking size, smaller scales keep unit tests fast.
type Profile struct {
	Name   string
	Paper  PaperStats
	Config func(scale float64) Config
}

// scaleInt scales a count, keeping at least 1.
func scaleInt(n int, scale float64) int {
	v := int(math.Round(float64(n) * scale))
	if v < 1 {
		v = 1
	}
	return v
}

// Perturbation presets by dataset difficulty. The hard product datasets
// (Abt-Buy, Amazon-Google, Walmart-Amazon, Baby) distort matching pairs
// heavily; the publication datasets are cleaner, matching the F1 bands the
// paper reports per dataset (Table 2).
var (
	lightPerturb = Perturbation{Typo: 0.02, TokenDrop: 0.05, Abbrev: 0.10, Null: 0.02, NumJitter: 0.01, Reorder: 0.10}
	midPerturb   = Perturbation{Typo: 0.05, TokenDrop: 0.15, Abbrev: 0.35, Null: 0.06, NumJitter: 0.04, Reorder: 0.25}
	hardPerturb  = Perturbation{Typo: 0.09, TokenDrop: 0.28, Abbrev: 0.40, Null: 0.12, NumJitter: 0.10, Reorder: 0.35}
)

// productAttrs builds the common product-domain attribute specs.
func productNameSpec(themeFrac float64) AttrSpec {
	return AttrSpec{
		Name: "name", Kind: KindWords, Vocab: productNameX,
		MinWords: 4, MaxWords: 7, ThemeFrac: themeFrac,
	}
}

func descriptionSpec(themeFrac, nullRate float64) AttrSpec {
	return AttrSpec{
		Name: "description", Kind: KindWords, Vocab: descWordsX,
		MinWords: 8, MaxWords: 18, ThemeFrac: themeFrac, NullRate: nullRate,
	}
}

// renamed returns a copy of spec with a different column name, so shared
// spec builders can serve schemas whose columns differ only in name.
func renamed(spec AttrSpec, name string) AttrSpec {
	spec.Name = name
	return spec
}

func titleSpec(themeFrac float64) AttrSpec {
	return AttrSpec{
		Name: "title", Kind: KindWords, Vocab: topicWordsX,
		MinWords: 5, MaxWords: 9, ThemeFrac: themeFrac,
	}
}

// profiles is the registry of the ten datasets. Family sizes, theme
// fractions and blocking thresholds were calibrated empirically (see
// calibrate_test.go) so post-blocking candidate counts and class skews
// land near Table 1.
var profiles = []Profile{
	{
		Name: "abt-buy",
		Paper: PaperStats{
			MatchedColumns:    []string{"name", "description", "price"},
			TotalPairs:        1.18e6,
			PostBlockingPairs: 8682,
			ClassSkew:         0.12,
		},
		Config: func(scale float64) Config {
			return Config{
				Name: "abt-buy",
				Attrs: []AttrSpec{
					productNameSpec(0.85),
					descriptionSpec(0.8, 0.25),
					{Name: "price", Kind: KindNumeric, Lo: 20, Hi: 900, NullRate: 0.3, Shared: true},
				},
				NumEntities:    scaleInt(1040, scale),
				FamilySize:     14,
				ThemeSize:      4,
				Modal:          true,
				ModalAttrs:     [2]int{0, 1},
				LeftOnly:       scaleInt(230, scale),
				RightOnly:      scaleInt(230, scale),
				LeftPerturb:    lightPerturb,
				RightPerturb:   hardPerturb,
				BlockThreshold: 0.1875,
			}
		},
	},
	{
		Name: "amazon-google",
		Paper: PaperStats{
			MatchedColumns:    []string{"name", "description", "manufacturer", "price"},
			TotalPairs:        4.39e6,
			PostBlockingPairs: 14294,
			ClassSkew:         0.09,
		},
		Config: func(scale float64) Config {
			return Config{
				Name: "amazon-google",
				Attrs: []AttrSpec{
					productNameSpec(0.85),
					descriptionSpec(0.8, 0.35),
					{Name: "manufacturer", Kind: KindCategorical, Vocab: brands, Shared: true, NullRate: 0.2},
					{Name: "price", Kind: KindNumeric, Lo: 5, Hi: 600, NullRate: 0.35, Shared: true},
				},
				NumEntities:    scaleInt(1290, scale),
				FamilySize:     9,
				ThemeSize:      4,
				Modal:          true,
				ModalAttrs:     [2]int{0, 1},
				LeftOnly:       scaleInt(150, scale),
				RightOnly:      scaleInt(150, scale),
				LeftPerturb:    lightPerturb,
				RightPerturb:   hardPerturb,
				BlockThreshold: 0.12,
			}
		},
	},
	{
		Name: "dblp-acm",
		Paper: PaperStats{
			MatchedColumns:    []string{"title", "authors", "venue", "year"},
			TotalPairs:        6e6,
			PostBlockingPairs: 11194,
			ClassSkew:         0.198,
		},
		Config: func(scale float64) Config {
			return Config{
				Name: "dblp-acm",
				Attrs: []AttrSpec{
					titleSpec(0.6),
					{Name: "authors", Kind: KindNames, MinNames: 1, MaxNames: 4},
					{Name: "venue", Kind: KindCategorical, Vocab: venues, Shared: true},
					{Name: "year", Kind: KindYear, Lo: 1994, Hi: 2012, Shared: true},
				},
				NumEntities:    scaleInt(2220, scale),
				FamilySize:     7,
				ThemeSize:      5,
				LeftOnly:       scaleInt(150, scale),
				RightOnly:      scaleInt(150, scale),
				LeftPerturb:    lightPerturb,
				RightPerturb:   lightPerturb,
				BlockThreshold: 0.1875,
			}
		},
	},
	{
		Name: "dblp-scholar",
		Paper: PaperStats{
			MatchedColumns:    []string{"title", "authors", "venue", "year"},
			TotalPairs:        168e6,
			PostBlockingPairs: 49042,
			ClassSkew:         0.109,
		},
		Config: func(scale float64) Config {
			return Config{
				Name: "dblp-scholar",
				Attrs: []AttrSpec{
					titleSpec(0.6),
					{Name: "authors", Kind: KindNames, MinNames: 1, MaxNames: 4},
					{Name: "venue", Kind: KindCategorical, Vocab: venues, Shared: true, NullRate: 0.15},
					{Name: "year", Kind: KindYear, Lo: 1990, Hi: 2012, Shared: true, NullRate: 0.25},
				},
				NumEntities:    scaleInt(5340, scale),
				FamilySize:     14,
				ThemeSize:      5,
				LeftOnly:       scaleInt(400, scale),
				RightOnly:      scaleInt(400, scale),
				LeftPerturb:    lightPerturb,
				RightPerturb:   midPerturb,
				BlockThreshold: 0.1875,
			}
		},
	},
	{
		Name: "cora",
		Paper: PaperStats{
			MatchedColumns: []string{"author", "title", "venue", "address",
				"publisher", "editor", "date", "vol", "pgs"},
			TotalPairs:        0.97e6,
			PostBlockingPairs: 114525,
			ClassSkew:         0.124,
		},
		Config: func(scale float64) Config {
			return Config{
				Name: "cora",
				Attrs: []AttrSpec{
					{Name: "author", Kind: KindNames, MinNames: 1, MaxNames: 3},
					titleSpec(0.7),
					{Name: "venue", Kind: KindCategorical, Vocab: venues, Shared: true, NullRate: 0.2},
					{Name: "address", Kind: KindCategorical, Vocab: cities, NullRate: 0.5},
					{Name: "publisher", Kind: KindCategorical, Vocab: breweryWords, NullRate: 0.6},
					{Name: "editor", Kind: KindNames, MinNames: 1, MaxNames: 2, NullRate: 0.7},
					{Name: "date", Kind: KindYear, Lo: 1985, Hi: 2000, NullRate: 0.2},
					{Name: "vol", Kind: KindNumeric, Lo: 1, Hi: 40, NullRate: 0.5},
					{Name: "pgs", Kind: KindNumeric, Lo: 1, Hi: 600, NullRate: 0.4},
				},
				// Duplicate clusters: ~3 renditions per side, so each
				// entity yields ~9 matching pairs (Cora is a dedup set).
				NumEntities:    scaleInt(1580, scale),
				FamilySize:     16,
				ThemeSize:      4,
				LeftDups:       [2]int{2, 4},
				RightDups:      [2]int{2, 4},
				LeftOnly:       scaleInt(300, scale),
				RightOnly:      scaleInt(300, scale),
				LeftPerturb:    midPerturb,
				RightPerturb:   midPerturb,
				BlockThreshold: 0.13,
			}
		},
	},
	{
		Name: "walmart-amazon",
		Paper: PaperStats{
			MatchedColumns: []string{"brand", "modelno", "title", "price",
				"dimensions", "shipweight", "orig_longdescr", "shortdescr",
				"longdescr", "groupname"},
			TotalPairs:        56.37e6,
			PostBlockingPairs: 13843,
			ClassSkew:         0.083,
		},
		Config: func(scale float64) Config {
			return Config{
				Name: "walmart-amazon",
				Attrs: []AttrSpec{
					{Name: "brand", Kind: KindCategorical, Vocab: brands, Shared: true},
					{Name: "modelno", Kind: KindModelNo, NullRate: 0.2},
					renamed(productNameSpec(0.85), "title"),
					{Name: "price", Kind: KindNumeric, Lo: 5, Hi: 800, NullRate: 0.2, Shared: true},
					{Name: "dimensions", Kind: KindDims, NullRate: 0.5},
					{Name: "shipweight", Kind: KindNumeric, Lo: 0.2, Hi: 60, NullRate: 0.4},
					renamed(descriptionSpec(0.8, 0.45), "orig_longdescr"),
					{Name: "shortdescr", Kind: KindWords, Vocab: descWordsX, MinWords: 4, MaxWords: 8, ThemeFrac: 0.55, NullRate: 0.4},
					{Name: "longdescr", Kind: KindWords, Vocab: descWordsX, MinWords: 10, MaxWords: 22, ThemeFrac: 0.55, NullRate: 0.5},
					{Name: "groupname", Kind: KindCategorical, Vocab: productNouns, Shared: true, NullRate: 0.2},
				},
				NumEntities:    scaleInt(1150, scale),
				FamilySize:     10,
				ThemeSize:      4,
				Modal:          true,
				ModalAttrs:     [2]int{2, 6},
				LeftOnly:       scaleInt(120, scale),
				RightOnly:      scaleInt(120, scale),
				LeftPerturb:    lightPerturb,
				RightPerturb:   hardPerturb,
				BlockThreshold: 0.13,
			}
		},
	},
	{
		Name: "amazon-bestbuy",
		Paper: PaperStats{
			MatchedColumns:    []string{"brand", "title", "price", "features"},
			TotalPairs:        21.29e6,
			PostBlockingPairs: 395,
			ClassSkew:         0.147,
		},
		Config: func(scale float64) Config {
			return Config{
				Name: "amazon-bestbuy",
				Attrs: []AttrSpec{
					{Name: "brand", Kind: KindCategorical, Vocab: brands, Shared: true},
					renamed(productNameSpec(0.75), "title"),
					{Name: "price", Kind: KindNumeric, Lo: 20, Hi: 1500, NullRate: 0.2},
					renamed(descriptionSpec(0.6, 0.3), "features"),
				},
				NumEntities:    scaleInt(58, scale),
				FamilySize:     8,
				ThemeSize:      6,
				LeftOnly:       scaleInt(25, scale),
				RightOnly:      scaleInt(25, scale),
				LeftPerturb:    lightPerturb,
				RightPerturb:   midPerturb,
				BlockThreshold: 0.16,
			}
		},
	},
	{
		Name: "beer",
		Paper: PaperStats{
			MatchedColumns:    []string{"beer_name", "brew_factory_name", "style", "ABV"},
			TotalPairs:        13.03e6,
			PostBlockingPairs: 450,
			ClassSkew:         0.151,
		},
		Config: func(scale float64) Config {
			nameVocab := append(append([]string{}, breweryWords...), beerStyles...)
			return Config{
				Name: "beer",
				Attrs: []AttrSpec{
					{Name: "beer_name", Kind: KindWords, Vocab: nameVocab, MinWords: 2, MaxWords: 4, ThemeFrac: 0.7},
					{Name: "brew_factory_name", Kind: KindWords, Vocab: breweryWords, MinWords: 2, MaxWords: 3, ThemeFrac: 0.7},
					{Name: "style", Kind: KindCategorical, Vocab: beerStyles, Shared: true},
					{Name: "ABV", Kind: KindNumeric, Lo: 3.5, Hi: 13, NullRate: 0.15},
				},
				NumEntities:    scaleInt(68, scale),
				FamilySize:     4,
				LeftOnly:       scaleInt(8, scale),
				RightOnly:      scaleInt(8, scale),
				LeftPerturb:    lightPerturb,
				RightPerturb:   midPerturb,
				BlockThreshold: 0.16,
			}
		},
	},
	{
		Name: "baby-products",
		Paper: PaperStats{
			MatchedColumns: []string{"title", "price", "is_discounted",
				"category", "company_struct", "company_free", "brand",
				"weight", "length", "width", "height", "fabrics", "colors",
				"materials"},
			TotalPairs:        54.5e6,
			PostBlockingPairs: 400,
			ClassSkew:         0.27,
		},
		Config: func(scale float64) Config {
			return Config{
				Name: "baby-products",
				Attrs: []AttrSpec{
					renamed(productNameSpec(0.75), "title"),
					{Name: "price", Kind: KindNumeric, Lo: 5, Hi: 400, NullRate: 0.15},
					{Name: "is_discounted", Kind: KindBool},
					{Name: "category", Kind: KindCategorical, Vocab: babyCategories, Shared: true},
					{Name: "company_struct", Kind: KindCategorical, Vocab: brands, Shared: true},
					{Name: "company_free", Kind: KindCategorical, Vocab: brands, NullRate: 0.4},
					{Name: "brand", Kind: KindCategorical, Vocab: brands, Shared: true, NullRate: 0.2},
					{Name: "weight", Kind: KindNumeric, Lo: 0.5, Hi: 50, NullRate: 0.4},
					{Name: "length", Kind: KindNumeric, Lo: 5, Hi: 50, NullRate: 0.5},
					{Name: "width", Kind: KindNumeric, Lo: 5, Hi: 40, NullRate: 0.5},
					{Name: "height", Kind: KindNumeric, Lo: 5, Hi: 60, NullRate: 0.5},
					{Name: "fabrics", Kind: KindCategorical, Vocab: fabrics, NullRate: 0.5},
					{Name: "colors", Kind: KindCategorical, Vocab: colors, NullRate: 0.3},
					{Name: "materials", Kind: KindCategorical, Vocab: materials, NullRate: 0.5},
				},
				NumEntities:    scaleInt(108, scale),
				FamilySize:     6,
				ThemeSize:      6,
				LeftOnly:       scaleInt(40, scale),
				RightOnly:      scaleInt(40, scale),
				LeftPerturb:    lightPerturb,
				RightPerturb:   hardPerturb,
				BlockThreshold: 0.16,
			}
		},
	},
	{
		Name: "social-media",
		Paper: PaperStats{
			MatchedColumns: []string{"name", "location", "email",
				"occupation", "gender", "homepage"},
			// §6.3.1: 467,761 employee records × 50M profiles; no ground
			// truth. Generated at a laptop scale with hidden truth used
			// only to emulate expert rule validation.
			TotalPairs:        467761 * 50e6,
			PostBlockingPairs: 0, // not reported in the paper
			ClassSkew:         0,
		},
		Config: func(scale float64) Config {
			nameVocab := append(append([]string{}, firstNames...), lastNames...)
			return Config{
				Name: "social-media",
				Attrs: []AttrSpec{
					{Name: "name", Kind: KindWords, Vocab: nameVocab, MinWords: 2, MaxWords: 3, ThemeFrac: 0.5},
					{Name: "location", Kind: KindCategorical, Vocab: cities, Shared: true},
					{Name: "email", Kind: KindEmail, DeriveFrom: 0, NullRate: 0.3},
					{Name: "occupation", Kind: KindCategorical, Vocab: occupations, Shared: true, NullRate: 0.25},
					{Name: "gender", Kind: KindCategorical, Vocab: []string{"male", "female"}},
					{Name: "homepage", Kind: KindURL, DeriveFrom: 0, NullRate: 0.5},
				},
				NumEntities:    scaleInt(600, scale),
				FamilySize:     8,
				LeftOnly:       scaleInt(80, scale),
				RightOnly:      scaleInt(80, scale),
				LeftPerturb:    lightPerturb,
				RightPerturb:   midPerturb,
				BlockThreshold: 0.28,
			}
		},
	},
}

// Profiles returns the registry of dataset profiles in a stable order.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ProfileByName looks up a profile; the boolean reports whether it exists.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Load generates the named dataset at the given scale and seed.
func Load(name string, scale float64, seed int64) (*Dataset, error) {
	p, ok := ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("dataset: unknown profile %q", name)
	}
	cfg := p.Config(scale)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return Generate(cfg, seed), nil
}
