package dataset

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Kind classifies an attribute for generation and perturbation purposes.
type Kind int

// Attribute kinds.
const (
	KindWords       Kind = iota // free text assembled from a vocabulary
	KindCategorical             // single vocabulary entry
	KindNames                   // comma-separated person names
	KindNumeric                 // float in [Lo, Hi]
	KindModelNo                 // alphanumeric identifier
	KindYear                    // integer year
	KindEmail                   // derived from a KindNames attribute
	KindURL                     // derived from a KindNames attribute
	KindBool                    // yes / no
	KindDims                    // WxHxD style dimensions
)

// AttrSpec declares one generated attribute.
type AttrSpec struct {
	Name               string
	Kind               Kind
	Vocab              []string // for KindWords / KindCategorical
	MinWords, MaxWords int      // for KindWords
	MinNames, MaxNames int      // for KindNames
	Lo, Hi             float64  // for KindNumeric / KindYear
	Shared             bool     // value is shared across a hard-negative family
	NullRate           float64  // canonical (generation-side) missing rate
	DeriveFrom         int      // source attr index for KindEmail / KindURL
	ThemeFrac          float64  // for KindWords: fraction drawn from the family theme
}

// Config declares a synthetic EM dataset. See profiles.go for the ten
// instances mirroring the paper's datasets.
type Config struct {
	Name        string
	Attrs       []AttrSpec
	NumEntities int // entities present in both tables (sources of matches)
	// FamilySize groups entities into hard-negative families that share
	// the Shared attributes and a description theme; 1 disables families.
	FamilySize int
	// LeftOnly / RightOnly are distractor entities rendered on one side
	// only. They join existing families, so they survive blocking and
	// dilute the class skew without creating matches.
	LeftOnly, RightOnly int
	// LeftDups / RightDups give the min..max number of renditions of each
	// shared entity per side; [1,1] yields a clean 1-1 matching, larger
	// ranges yield Cora-style duplicate clusters.
	LeftDups, RightDups [2]int
	// LeftPerturb / RightPerturb distort each rendition. The left table
	// is conventionally the cleaner source.
	LeftPerturb, RightPerturb Perturbation
	// BlockThreshold is the paper's offline Jaccard threshold (§6).
	BlockThreshold float64
	// ThemeSize is the number of vocabulary words in each family's
	// description theme (0 = default 15).
	ThemeSize int
	// ModalAttrs, when set to two attribute indices [a, b], makes the
	// right-side rendition of each matching entity bimodal: half the
	// renditions keep attribute a intact while destroying attribute b,
	// the other half do the reverse. Matches then occupy two disjoint
	// corners of similarity space with the hard-negative families in
	// between — the non-linear structure that lets tree ensembles pull
	// far ahead of linear classifiers on the paper's product datasets.
	ModalAttrs [2]int
	// Modal enables ModalAttrs (so [2]int{0, 1} remains expressible).
	Modal bool
}

// entity is a canonical row: values aligned with Config.Attrs.
type entity []string

// family groups entities sharing Shared attr values and per-attribute word
// themes.
type family struct {
	shared entity     // only Shared positions are set
	themes [][]string // per-attr sub-vocabulary for KindWords attrs (nil if unthemed)
}

// Generate synthesizes a Dataset from a Config, deterministically in the
// seed.
func Generate(cfg Config, seed int64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	if cfg.FamilySize <= 0 {
		cfg.FamilySize = 1
	}
	if cfg.LeftDups == [2]int{} {
		cfg.LeftDups = [2]int{1, 1}
	}
	if cfg.RightDups == [2]int{} {
		cfg.RightDups = [2]int{1, 1}
	}
	themeSize := cfg.ThemeSize
	if themeSize == 0 {
		themeSize = 15
	}

	numFamilies := (cfg.NumEntities + cfg.FamilySize - 1) / cfg.FamilySize
	families := make([]family, numFamilies)
	for i := range families {
		families[i] = newFamily(r, cfg, themeSize)
	}

	schema := make([]string, len(cfg.Attrs))
	for i, a := range cfg.Attrs {
		schema[i] = a.Name
	}
	left := &Table{Name: cfg.Name + "_left", Schema: schema}
	right := &Table{Name: cfg.Name + "_right", Schema: schema}
	var matches []PairKey

	uniform := func(p Perturbation) func(int) Perturbation {
		return func(int) Perturbation { return p }
	}
	addLeft := func(rec entity, pf func(int) Perturbation) int {
		id := fmt.Sprintf("L%d", len(left.Rows))
		left.Rows = append(left.Rows, render(r, cfg, rec, pf, id))
		return len(left.Rows) - 1
	}
	addRight := func(rec entity, pf func(int) Perturbation) int {
		id := fmt.Sprintf("R%d", len(right.Rows))
		right.Rows = append(right.Rows, render(r, cfg, rec, pf, id))
		return len(right.Rows) - 1
	}
	// modalPerturb builds the per-attribute perturbation of one bimodal
	// rendition: one modal attribute stays near-clean, the other is
	// destroyed (heavy perturbation plus a high null rate).
	modalPerturb := func(base Perturbation, mode int) func(int) Perturbation {
		keep, destroy := cfg.ModalAttrs[0], cfg.ModalAttrs[1]
		if mode == 1 {
			keep, destroy = destroy, keep
		}
		heavy := base.scale(2.5)
		heavy.Null = 0.55
		light := base.scale(0.3)
		return func(i int) Perturbation {
			switch i {
			case keep:
				return light
			case destroy:
				return heavy
			default:
				return base
			}
		}
	}

	// Shared entities: every left rendition matches every right rendition.
	for e := 0; e < cfg.NumEntities; e++ {
		fam := families[e%numFamilies]
		ent := newEntity(r, cfg, fam)
		nl := randRange(r, cfg.LeftDups)
		nr := randRange(r, cfg.RightDups)
		lIdx := make([]int, 0, nl)
		for i := 0; i < nl; i++ {
			lIdx = append(lIdx, addLeft(ent, uniform(cfg.LeftPerturb)))
		}
		for i := 0; i < nr; i++ {
			pf := uniform(cfg.RightPerturb)
			if cfg.Modal {
				pf = modalPerturb(cfg.RightPerturb, r.Intn(2))
			}
			ri := addRight(ent, pf)
			for _, li := range lIdx {
				matches = append(matches, PairKey{L: li, R: ri})
			}
		}
	}
	// One-sided distractors join random families.
	for e := 0; e < cfg.LeftOnly; e++ {
		fam := families[r.Intn(numFamilies)]
		addLeft(newEntity(r, cfg, fam), uniform(cfg.LeftPerturb))
	}
	for e := 0; e < cfg.RightOnly; e++ {
		fam := families[r.Intn(numFamilies)]
		addRight(newEntity(r, cfg, fam), uniform(cfg.RightPerturb))
	}

	return NewDataset(cfg.Name, left, right, matches, cfg.BlockThreshold)
}

// newFamily draws shared attribute values and a description theme.
func newFamily(r *rand.Rand, cfg Config, themeSize int) family {
	f := family{shared: make(entity, len(cfg.Attrs))}
	for i, a := range cfg.Attrs {
		if a.Shared {
			f.shared[i] = genValue(r, i, a, nil, nil)
		}
	}
	// Each themed KindWords attribute gets its own family sub-vocabulary.
	f.themes = make([][]string, len(cfg.Attrs))
	for i, a := range cfg.Attrs {
		if a.Kind != KindWords || a.ThemeFrac <= 0 {
			continue
		}
		theme := make([]string, 0, themeSize)
		for j := 0; j < themeSize; j++ {
			theme = append(theme, a.Vocab[r.Intn(len(a.Vocab))])
		}
		f.themes[i] = theme
	}
	return f
}

// newEntity draws canonical values for one entity within a family.
func newEntity(r *rand.Rand, cfg Config, fam family) entity {
	ent := make(entity, len(cfg.Attrs))
	for i, a := range cfg.Attrs {
		if a.Shared {
			ent[i] = fam.shared[i]
			continue
		}
		if a.NullRate > 0 && r.Float64() < a.NullRate {
			continue
		}
		ent[i] = genValue(r, i, a, ent, fam.themes[i])
	}
	return ent
}

// genValue synthesizes one canonical attribute value.
func genValue(r *rand.Rand, idx int, a AttrSpec, ent entity, theme []string) string {
	switch a.Kind {
	case KindWords:
		n := a.MinWords
		if a.MaxWords > a.MinWords {
			n += r.Intn(a.MaxWords - a.MinWords + 1)
		}
		words := make([]string, 0, n)
		for i := 0; i < n; i++ {
			if theme != nil && r.Float64() < a.ThemeFrac {
				words = append(words, theme[r.Intn(len(theme))])
			} else {
				words = append(words, a.Vocab[r.Intn(len(a.Vocab))])
			}
		}
		return strings.Join(words, " ")
	case KindCategorical:
		return a.Vocab[r.Intn(len(a.Vocab))]
	case KindNames:
		n := a.MinNames
		if a.MaxNames > a.MinNames {
			n += r.Intn(a.MaxNames - a.MinNames + 1)
		}
		names := make([]string, 0, n)
		for i := 0; i < n; i++ {
			names = append(names, firstNames[r.Intn(len(firstNames))]+" "+lastNames[r.Intn(len(lastNames))])
		}
		return strings.Join(names, ", ")
	case KindNumeric:
		return strconv.FormatFloat(a.Lo+r.Float64()*(a.Hi-a.Lo), 'f', 2, 64)
	case KindModelNo:
		letters := make([]byte, 2)
		for i := range letters {
			letters[i] = byte('a' + r.Intn(26))
		}
		return fmt.Sprintf("%s-%04d", strings.ToUpper(string(letters)), r.Intn(10000))
	case KindYear:
		lo, hi := int(a.Lo), int(a.Hi)
		if hi <= lo {
			lo, hi = 1980, 2019
		}
		return strconv.Itoa(lo + r.Intn(hi-lo+1))
	case KindEmail:
		src := ""
		if ent != nil {
			src = ent[a.DeriveFrom]
		}
		name := strings.Split(src, ", ")[0]
		name = strings.ToLower(strings.ReplaceAll(name, " ", "."))
		if name == "" {
			name = "user" + strconv.Itoa(r.Intn(100000))
		}
		return name + "@" + emailDomains[r.Intn(len(emailDomains))]
	case KindURL:
		src := ""
		if ent != nil {
			src = ent[a.DeriveFrom]
		}
		name := strings.Split(src, ", ")[0]
		name = strings.ToLower(strings.ReplaceAll(name, " ", "-"))
		if name == "" {
			name = "user" + strconv.Itoa(r.Intn(100000))
		}
		return "www.example.test/" + name
	case KindBool:
		if r.Intn(2) == 0 {
			return "yes"
		}
		return "no"
	case KindDims:
		return fmt.Sprintf("%.1f x %.1f x %.1f inches",
			1+r.Float64()*30, 1+r.Float64()*30, 1+r.Float64()*30)
	}
	return ""
}

// render produces a Record rendition of an entity; pf supplies the
// perturbation for each attribute index.
func render(r *rand.Rand, cfg Config, ent entity, pf func(int) Perturbation, id string) Record {
	vals := make([]string, len(ent))
	for i, v := range ent {
		if v == "" {
			continue
		}
		p := pf(i)
		if r.Float64() < p.Null {
			continue
		}
		switch cfg.Attrs[i].Kind {
		case KindNumeric:
			vals[i] = perturbNumeric(r, v, p)
		case KindNames:
			vals[i] = perturbNames(r, v, p)
		case KindModelNo:
			vals[i] = perturbModelNo(r, v, p)
		case KindCategorical:
			vals[i] = perturbCategorical(r, v, p)
		case KindYear, KindBool:
			vals[i] = v // identifiers too short to usefully perturb
		default:
			vals[i] = perturbText(r, v, p)
		}
	}
	return Record{ID: id, Values: vals}
}

func randRange(r *rand.Rand, rng [2]int) int {
	if rng[1] <= rng[0] {
		return rng[0]
	}
	return rng[0] + r.Intn(rng[1]-rng[0]+1)
}

// Validate reports configuration errors a driver would otherwise hit as
// panics deep in generation: empty schemas, vocabulary-less attributes,
// bad ranges and dangling derivations.
func (cfg Config) Validate() error {
	if cfg.Name == "" {
		return fmt.Errorf("dataset: config has no name")
	}
	if len(cfg.Attrs) == 0 {
		return fmt.Errorf("dataset %s: no attributes", cfg.Name)
	}
	if cfg.NumEntities < 1 {
		return fmt.Errorf("dataset %s: NumEntities = %d, want >= 1", cfg.Name, cfg.NumEntities)
	}
	seen := map[string]bool{}
	for i, a := range cfg.Attrs {
		if a.Name == "" {
			return fmt.Errorf("dataset %s: attr %d has no name", cfg.Name, i)
		}
		if seen[a.Name] {
			return fmt.Errorf("dataset %s: duplicate attr %q", cfg.Name, a.Name)
		}
		seen[a.Name] = true
		switch a.Kind {
		case KindWords:
			if len(a.Vocab) == 0 {
				return fmt.Errorf("dataset %s: words attr %q has no vocabulary", cfg.Name, a.Name)
			}
			if a.MinWords < 1 || a.MaxWords < a.MinWords {
				return fmt.Errorf("dataset %s: attr %q word range [%d,%d] invalid",
					cfg.Name, a.Name, a.MinWords, a.MaxWords)
			}
		case KindCategorical:
			if len(a.Vocab) == 0 {
				return fmt.Errorf("dataset %s: categorical attr %q has no vocabulary", cfg.Name, a.Name)
			}
		case KindNames:
			if a.MinNames < 1 || a.MaxNames < a.MinNames {
				return fmt.Errorf("dataset %s: attr %q name range [%d,%d] invalid",
					cfg.Name, a.Name, a.MinNames, a.MaxNames)
			}
		case KindNumeric:
			if a.Hi <= a.Lo {
				return fmt.Errorf("dataset %s: numeric attr %q range [%g,%g] invalid",
					cfg.Name, a.Name, a.Lo, a.Hi)
			}
		case KindEmail, KindURL:
			if a.DeriveFrom < 0 || a.DeriveFrom >= len(cfg.Attrs) || a.DeriveFrom == i {
				return fmt.Errorf("dataset %s: attr %q derives from invalid index %d",
					cfg.Name, a.Name, a.DeriveFrom)
			}
		}
		if a.NullRate < 0 || a.NullRate >= 1 {
			return fmt.Errorf("dataset %s: attr %q null rate %g outside [0,1)", cfg.Name, a.Name, a.NullRate)
		}
	}
	if cfg.Modal {
		for _, m := range cfg.ModalAttrs {
			if m < 0 || m >= len(cfg.Attrs) {
				return fmt.Errorf("dataset %s: modal attr index %d out of range", cfg.Name, m)
			}
		}
		if cfg.ModalAttrs[0] == cfg.ModalAttrs[1] {
			return fmt.Errorf("dataset %s: modal attrs must differ", cfg.Name)
		}
	}
	if cfg.BlockThreshold <= 0 || cfg.BlockThreshold > 1 {
		return fmt.Errorf("dataset %s: block threshold %g outside (0,1]", cfg.Name, cfg.BlockThreshold)
	}
	return nil
}
