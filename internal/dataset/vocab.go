package dataset

// Embedded vocabularies used by the synthetic dataset generators. The lists
// are intentionally domain-typical: shared brand/venue/style tokens are what
// make blocked non-match pairs look ambiguous, which is the property the
// active-learning selectors are exercised on.

var brands = []string{
	"sonixx", "technova", "veltron", "acura", "brightline", "omnicore",
	"zenwave", "pixelforge", "duratech", "maxtor", "lumina", "quantix",
	"nordika", "silverton", "apexon", "clearview", "vortexa", "helioz",
	"primex", "stratos", "kinetix", "auralis", "fusion", "polarix",
	"nimbus", "celesta", "tritonix", "movado", "electra", "dynamo",
	"krypton", "solaris", "vantage", "meridian", "optimus", "radiant",
	"spectra", "titanix", "ultraline", "westport", "xenova", "zephyr",
}

var productNouns = []string{
	"speaker", "camera", "headphones", "keyboard", "monitor", "printer",
	"router", "tablet", "charger", "adapter", "projector", "scanner",
	"microphone", "turntable", "amplifier", "subwoofer", "receiver",
	"soundbar", "webcam", "drive", "mouse", "dock", "enclosure", "antenna",
	"telephone", "shredder", "calculator", "radio", "television", "recorder",
	"player", "console", "cartridge", "battery", "cable", "case", "stand",
	"mount", "remote", "lens", "tripod", "flash", "filter",
}

var adjectives = []string{
	"wireless", "portable", "digital", "compact", "professional", "premium",
	"ultra", "slim", "rugged", "waterproof", "bluetooth", "optical",
	"ergonomic", "adjustable", "rechargeable", "foldable", "universal",
	"heavy-duty", "lightweight", "high-speed", "noise-canceling", "smart",
	"cordless", "stereo", "hd", "4k", "dual", "mini", "deluxe", "classic",
}

var descWords = []string{
	"features", "design", "includes", "quality", "performance", "system",
	"technology", "display", "control", "power", "audio", "video", "sound",
	"color", "black", "white", "silver", "series", "model", "edition",
	"warranty", "capacity", "storage", "memory", "speed", "resolution",
	"connectivity", "compatible", "input", "output", "port", "usb", "hdmi",
	"battery", "hours", "range", "wireless", "remote", "included", "easy",
	"setup", "installation", "durable", "lightweight", "compact", "home",
	"office", "travel", "outdoor", "indoor", "protection", "advanced",
	"enhanced", "superior", "optimal", "maximum", "standard", "original",
}

var firstNames = []string{
	"james", "mary", "john", "patricia", "robert", "jennifer", "michael",
	"linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
	"joseph", "jessica", "thomas", "sarah", "charles", "karen", "wei",
	"ananya", "carlos", "fatima", "hiroshi", "ingrid", "jorge", "katarina",
	"luca", "mei", "nikolai", "oliver", "priya", "quentin", "rosa", "stefan",
	"tomas", "ursula", "viktor", "wanda", "xavier", "yuki", "zoltan", "amara",
	"boris", "celine", "dmitri", "elena", "felix", "greta",
}

var lastNames = []string{
	"smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
	"davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
	"wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
	"lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
	"ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
	"wright", "scott", "torres", "nguyen", "hill", "flores", "green",
	"adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
	"carter", "roberts", "kowalski", "petrov", "tanaka", "mueller", "rossi",
	"silva", "kim", "chen", "yamamoto", "novak",
}

var cities = []string{
	"portland", "seattle", "austin", "denver", "boston", "chicago",
	"atlanta", "phoenix", "dallas", "miami", "toronto", "vancouver",
	"london", "berlin", "munich", "zurich", "amsterdam", "stockholm",
	"helsinki", "dublin", "madrid", "lisbon", "milan", "vienna", "prague",
	"warsaw", "tokyo", "osaka", "seoul", "singapore", "sydney", "melbourne",
	"bangalore", "mumbai", "sao-paulo", "mexico-city",
}

var venues = []string{
	"sigmod conference", "vldb", "icde", "edbt", "cikm", "kdd", "icml",
	"neurips", "acl", "emnlp", "www conference", "wsdm", "icdt", "pods",
	"ssdbm", "dasfaa", "icdm", "sdm", "ecml", "aaai", "ijcai", "uai",
	"colt", "sigir", "recsys", "jmlr", "tods", "tkde", "vldb journal",
	"information systems",
}

var topicWords = []string{
	"learning", "entity", "matching", "database", "query", "optimization",
	"distributed", "parallel", "indexing", "transaction", "streaming",
	"graph", "mining", "classification", "clustering", "regression",
	"neural", "network", "deep", "active", "supervised", "probabilistic",
	"scalable", "efficient", "adaptive", "incremental", "approximate",
	"semantic", "schema", "integration", "cleaning", "deduplication",
	"record", "linkage", "crowdsourcing", "sampling", "estimation",
	"evaluation", "benchmark", "framework", "system", "engine", "storage",
	"memory", "cache", "concurrency", "recovery", "replication", "consensus",
}

var beerStyles = []string{
	"american ipa", "imperial stout", "pale ale", "pilsner", "hefeweizen",
	"porter", "amber ale", "brown ale", "saison", "lambic", "dubbel",
	"tripel", "barleywine", "kolsch", "gose", "witbier", "bock", "doppelbock",
	"altbier", "cream ale", "blonde ale", "red ale", "black lager",
	"session ipa", "double ipa",
}

var breweryWords = []string{
	"stone", "river", "mountain", "valley", "harbor", "iron", "copper",
	"golden", "black", "white", "wolf", "bear", "eagle", "fox", "raven",
	"oak", "pine", "cedar", "anchor", "crown", "royal", "old", "new",
	"north", "south", "grand", "union", "liberty", "frontier", "pioneer",
}

var occupations = []string{
	"software engineer", "data scientist", "product manager", "accountant",
	"teacher", "nurse", "architect", "electrician", "consultant", "analyst",
	"designer", "researcher", "technician", "developer", "administrator",
	"director", "specialist", "coordinator", "supervisor", "manager",
	"scientist", "writer", "editor", "translator", "economist",
}

var emailDomains = []string{
	"example.com", "mail.test", "corp.example", "inbox.test",
	"post.example", "web.test",
}

var babyCategories = []string{
	"strollers", "car seats", "cribs", "high chairs", "baby monitors",
	"diaper bags", "play yards", "bouncers", "swings", "carriers",
	"bath tubs", "safety gates", "changing tables", "gliders", "bassinets",
}

var colors = []string{
	"red", "blue", "green", "yellow", "pink", "purple", "orange", "gray",
	"black", "white", "teal", "navy", "beige", "ivory", "lavender", "mint",
	"coral", "turquoise", "charcoal", "cream",
}

var fabrics = []string{
	"cotton", "polyester", "fleece", "linen", "wool", "bamboo", "muslin",
	"jersey", "flannel", "velour", "terry", "satin", "chenille", "microfiber",
}

var materials = []string{
	"plastic", "aluminum", "steel", "wood", "foam", "rubber", "silicone",
	"fabric", "mesh", "leather", "vinyl", "polycarbonate",
}

// expandVocab derives an n-word vocabulary from a curated base list by
// crossing it with suffixes. Small vocabularies make *random* record pairs
// share tokens, which floods low-Jaccard blocking with cross-family
// candidates; expansion keeps chance overlap negligible so the family
// themes control which non-matches survive blocking.
func expandVocab(base []string, n int) []string {
	suffixes := []string{"", "s", "er", "ing", "ed", "ix", "on", "ia", "or",
		"al", "an", "ic", "um", "us", "ette", "ford"}
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for k := 0; len(out) < n && k < len(suffixes); k++ {
		for _, w := range base {
			v := w + suffixes[k]
			if _, ok := seen[v]; ok {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// Expanded vocabularies used by the large-dataset profiles.
var (
	descWordsX   = expandVocab(descWords, 600)
	topicWordsX  = expandVocab(topicWords, 450)
	productNameX = expandVocab(append(append(append([]string{}, brands...), productNouns...), adjectives...), 600)
)
