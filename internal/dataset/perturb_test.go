package dataset

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestTypoTokenAlwaysReturnsSomething(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	prop := func(s string) bool {
		out := typoToken(r, s)
		// One edit changes length by at most 1.
		d := len([]rune(out)) - len([]rune(s))
		return d >= -1 && d <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPerturbTextZeroRatesIsIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var zero Perturbation
	for _, s := range []string{"hello world", "a", "one two three four"} {
		if got := perturbText(r, s, zero); got != s {
			t.Errorf("zero perturbation changed %q to %q", s, got)
		}
	}
}

func TestPerturbTextNeverEmpty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	p := Perturbation{TokenDrop: 0.99, Typo: 0.5, Reorder: 0.5}
	for i := 0; i < 200; i++ {
		if got := perturbText(r, "alpha beta gamma", p); strings.TrimSpace(got) == "" {
			t.Fatal("perturbText produced an empty value from non-empty input")
		}
	}
}

func TestPerturbTextDropsTokens(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p := Perturbation{TokenDrop: 0.5}
	shorter := 0
	for i := 0; i < 100; i++ {
		got := perturbText(r, "a b c d e f g h", p)
		if len(strings.Fields(got)) < 8 {
			shorter++
		}
	}
	if shorter < 90 {
		t.Errorf("TokenDrop=0.5 shortened only %d/100 renditions", shorter)
	}
}

func TestPerturbNamesAbbreviates(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	p := Perturbation{Abbrev: 1.0}
	got := perturbNames(r, "james smith, mary johnson", p)
	if !strings.Contains(got, "j. smith") && !strings.Contains(got, "smith j.") {
		t.Errorf("Abbrev=1 did not abbreviate first names: %q", got)
	}
}

func TestPerturbNumericJitterBounded(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	p := Perturbation{NumJitter: 0.1}
	for i := 0; i < 200; i++ {
		got := perturbNumeric(r, "100.00", p)
		clean := strings.TrimPrefix(got, "$")
		v, err := strconv.ParseFloat(clean, 64)
		if err != nil {
			t.Fatalf("perturbNumeric produced non-numeric %q", got)
		}
		if v < 89.9 || v > 110.1 {
			t.Errorf("jittered value %v outside ±10%% of 100", v)
		}
	}
}

func TestPerturbNumericNonNumericFallsBack(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	if got := perturbNumeric(r, "call for price", Perturbation{}); got == "" {
		t.Error("non-numeric input perturbed to empty")
	}
}

func TestPerturbModelNo(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := Perturbation{Abbrev: 1.0}
	if got := perturbModelNo(r, "AB-1234", p); strings.Contains(got, "-") {
		t.Errorf("Abbrev=1 kept separator: %q", got)
	}
	if got := perturbModelNo(r, "", p); got != "" {
		t.Errorf("empty model perturbed to %q", got)
	}
}

func TestPerturbationScale(t *testing.T) {
	p := Perturbation{Typo: 0.5, TokenDrop: 0.8, NumJitter: 0.2}
	s := p.scale(2)
	if s.Typo != 1.0 {
		t.Errorf("scaled Typo = %v, want clamped 1.0", s.Typo)
	}
	if s.TokenDrop != 1.0 {
		t.Errorf("scaled TokenDrop = %v, want clamped 1.0", s.TokenDrop)
	}
	if s.NumJitter != 0.4 {
		t.Errorf("scaled NumJitter = %v, want 0.4 (unclamped)", s.NumJitter)
	}
	half := p.scale(0.5)
	if half.Typo != 0.25 {
		t.Errorf("half Typo = %v, want 0.25", half.Typo)
	}
}

func TestExpandVocab(t *testing.T) {
	base := []string{"alpha", "beta", "gamma"}
	v := expandVocab(base, 10)
	if len(v) != 10 {
		t.Fatalf("len = %d, want 10", len(v))
	}
	seen := map[string]struct{}{}
	for _, w := range v {
		if _, dup := seen[w]; dup {
			t.Errorf("duplicate word %q", w)
		}
		seen[w] = struct{}{}
	}
	// First words are the base list itself.
	for i, w := range base {
		if v[i] != w {
			t.Errorf("v[%d] = %q, want %q", i, v[i], w)
		}
	}
}
