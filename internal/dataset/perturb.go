package dataset

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Perturbation controls how a canonical entity value is distorted when a
// record rendition is produced. Rates are probabilities in [0,1];
// NumJitter is a relative magnitude. Higher values make a dataset harder:
// matching pairs drift apart in feature space while hard-negative family
// members stay close, which is exactly the ambiguity region active
// learning has to explore.
type Perturbation struct {
	Typo      float64 // per-token probability of one character edit
	TokenDrop float64 // per-token probability of deletion
	Abbrev    float64 // per-value probability of abbreviation
	Null      float64 // per-value probability of replacing with null
	NumJitter float64 // relative jitter applied to numeric values
	Reorder   float64 // per-value probability of token reordering
}

// scale returns a copy of p with all rates multiplied by f (clamped to 1).
func (p Perturbation) scale(f float64) Perturbation {
	c := func(x float64) float64 {
		x *= f
		if x > 1 {
			return 1
		}
		return x
	}
	return Perturbation{
		Typo: c(p.Typo), TokenDrop: c(p.TokenDrop), Abbrev: c(p.Abbrev),
		Null: c(p.Null), NumJitter: p.NumJitter * f, Reorder: c(p.Reorder),
	}
}

// typoToken applies one random character edit (substitute, delete, insert
// or transpose) to a token.
func typoToken(r *rand.Rand, tok string) string {
	runes := []rune(tok)
	if len(runes) == 0 {
		return tok
	}
	pos := r.Intn(len(runes))
	letter := rune('a' + r.Intn(26))
	switch r.Intn(4) {
	case 0: // substitute
		runes[pos] = letter
	case 1: // delete
		runes = append(runes[:pos], runes[pos+1:]...)
	case 2: // insert
		runes = append(runes[:pos], append([]rune{letter}, runes[pos:]...)...)
	default: // transpose adjacent
		if pos+1 < len(runes) {
			runes[pos], runes[pos+1] = runes[pos+1], runes[pos]
		} else {
			runes[pos] = letter
		}
	}
	return string(runes)
}

// perturbText applies token drop, typos and reordering to a free-text
// value.
func perturbText(r *rand.Rand, s string, p Perturbation) string {
	if s == "" {
		return s
	}
	tokens := strings.Fields(s)
	out := tokens[:0]
	for _, tok := range tokens {
		if len(tokens) > 1 && r.Float64() < p.TokenDrop {
			continue
		}
		if r.Float64() < p.Typo {
			tok = typoToken(r, tok)
		}
		out = append(out, tok)
	}
	if len(out) == 0 {
		out = tokens[:1]
	}
	if len(out) > 1 && r.Float64() < p.Reorder {
		i := r.Intn(len(out) - 1)
		out[i], out[i+1] = out[i+1], out[i]
	}
	return strings.Join(out, " ")
}

// perturbCategorical abbreviates or typos a single categorical value.
func perturbCategorical(r *rand.Rand, s string, p Perturbation) string {
	if s == "" {
		return s
	}
	if r.Float64() < p.Abbrev {
		words := strings.Fields(s)
		for i, w := range words {
			if len(w) > 4 {
				words[i] = w[:3] + "."
			}
		}
		return strings.Join(words, " ")
	}
	return perturbText(r, s, p)
}

// perturbNames abbreviates first names to initials, drops a trailing name
// and reorders, emulating citation-style author variation.
func perturbNames(r *rand.Rand, s string, p Perturbation) string {
	if s == "" {
		return s
	}
	names := strings.Split(s, ", ")
	if len(names) > 1 && r.Float64() < p.TokenDrop {
		names = names[:len(names)-1]
	}
	for i, n := range names {
		parts := strings.Fields(n)
		if len(parts) == 2 {
			if r.Float64() < p.Abbrev {
				parts[0] = parts[0][:1] + "."
			}
			if r.Float64() < p.Reorder {
				parts[0], parts[1] = parts[1], parts[0]
			}
		}
		for j, w := range parts {
			if r.Float64() < p.Typo {
				parts[j] = typoToken(r, w)
			}
		}
		names[i] = strings.Join(parts, " ")
	}
	if len(names) > 1 && r.Float64() < p.Reorder {
		names[0], names[len(names)-1] = names[len(names)-1], names[0]
	}
	return strings.Join(names, ", ")
}

// perturbNumeric jitters a numeric value and occasionally reformats it.
func perturbNumeric(r *rand.Rand, s string, p Perturbation) string {
	clean := strings.TrimPrefix(s, "$")
	v, err := strconv.ParseFloat(clean, 64)
	if err != nil {
		return perturbText(r, s, p)
	}
	if p.NumJitter > 0 {
		v *= 1 + (r.Float64()*2-1)*p.NumJitter
	}
	switch r.Intn(3) {
	case 0:
		return fmt.Sprintf("$%.2f", v)
	case 1:
		return fmt.Sprintf("%.0f", v)
	default:
		return strconv.FormatFloat(v, 'f', 2, 64)
	}
}

// perturbModelNo removes separators, changes case style or typos a model
// number — the identifier-noise typical of product feeds.
func perturbModelNo(r *rand.Rand, s string, p Perturbation) string {
	if s == "" {
		return s
	}
	if r.Float64() < p.Abbrev {
		s = strings.ReplaceAll(s, "-", "")
	}
	if r.Float64() < p.Typo {
		s = typoToken(r, s)
	}
	return s
}
