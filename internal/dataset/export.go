package dataset

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Export writes the dataset to dir as three CSV files — left.csv,
// right.csv (id + schema columns) and matches.csv (left_id, right_id) —
// the interchange layout used by the Magellan data repository the paper
// draws its datasets from. The directory is created if needed.
func (d *Dataset) Export(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: creating %s: %w", dir, err)
	}
	if err := writeTable(filepath.Join(dir, "left.csv"), d.Left); err != nil {
		return err
	}
	if err := writeTable(filepath.Join(dir, "right.csv"), d.Right); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "matches.csv"))
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"left_id", "right_id"}); err != nil {
		return err
	}
	matches := d.Matches()
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].L != matches[j].L {
			return matches[i].L < matches[j].L
		}
		return matches[i].R < matches[j].R
	})
	for _, m := range matches {
		if err := w.Write([]string{d.Left.Rows[m.L].ID, d.Right.Rows[m.R].ID}); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func writeTable(path string, t *Table) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return t.WriteCSV(f)
}

// Import reads a dataset previously written by Export. The blocking
// threshold is not stored in the CSV layout and must be supplied.
func Import(name, dir string, blockThreshold float64) (*Dataset, error) {
	left, err := readTable(name+"_left", filepath.Join(dir, "left.csv"))
	if err != nil {
		return nil, err
	}
	right, err := readTable(name+"_right", filepath.Join(dir, "right.csv"))
	if err != nil {
		return nil, err
	}
	leftIdx := make(map[string]int, len(left.Rows))
	for i, r := range left.Rows {
		leftIdx[r.ID] = i
	}
	rightIdx := make(map[string]int, len(right.Rows))
	for i, r := range right.Rows {
		rightIdx[r.ID] = i
	}

	f, err := os.Open(filepath.Join(dir, "matches.csv"))
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	rd := csv.NewReader(f)
	rows, err := rd.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading matches: %w", err)
	}
	var matches []PairKey
	for i, row := range rows {
		if i == 0 {
			continue // header
		}
		li, ok := leftIdx[row[0]]
		if !ok {
			return nil, fmt.Errorf("dataset: matches.csv row %d references unknown left id %q", i, row[0])
		}
		ri, ok := rightIdx[row[1]]
		if !ok {
			return nil, fmt.Errorf("dataset: matches.csv row %d references unknown right id %q", i, row[1])
		}
		matches = append(matches, PairKey{L: li, R: ri})
	}
	return NewDataset(name, left, right, matches, blockThreshold), nil
}

func readTable(name, path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadCSV(name, f)
}
