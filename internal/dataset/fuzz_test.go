package dataset

import (
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes to the table importer — the entry
// point user-supplied files hit first (almatch -mode apply, Import).
// Malformed input must come back as an error, never a panic, and a
// successful parse must return a structurally sound table: a non-empty
// schema and every row as wide as that schema, the invariant the
// feature extractor indexes by without re-checking.
func FuzzReadCSV(f *testing.F) {
	f.Add("id,name,city\n1,alice,berlin\n2,bob,paris\n")
	f.Add("id,name\n\"unterminated,quote\n")
	f.Add("name,city\n1,2\n") // no leading id column
	f.Add("id\n1\n")          // id only, schema empty
	f.Add("id,a,b\n1,x\n")    // ragged row
	f.Add("\xef\xbb\xbfid,a\n1,x\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		tab, err := ReadCSV("fuzz", strings.NewReader(data))
		if err != nil {
			return
		}
		if len(tab.Schema) == 0 {
			t.Fatal("ReadCSV succeeded with an empty schema")
		}
		for i, row := range tab.Rows {
			if len(row.Values) != len(tab.Schema) {
				t.Fatalf("row %d has %d values for %d schema attributes",
					i, len(row.Values), len(tab.Schema))
			}
		}
	})
}
