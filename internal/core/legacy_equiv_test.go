package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/interp"
	"github.com/alem/alem/internal/rules"
	"github.com/alem/alem/internal/tree"
)

// This file pins the Scorer×Picker refactor against the PRE-REFACTOR
// selector implementations, frozen verbatim below as legacy* types. For
// every paper selector, at worker counts {0,1,2,8} and pool sizes on
// both sides of the parallel cutoff, the composition behind the exported
// type must produce a bit-identical batch AND leave the counted RNG at
// the identical draw position. The RNG position is part of the contract:
// Snapshot/Restore replays a run by draw count, so a composition that
// picked the same batch with different draws would still corrupt
// resumed runs.
//
// The frozen code is intentionally copy-pasted, not shared: sharing
// would make the test tautological. Do not "clean it up" to call the
// current implementations.

// legacyRandom is the pre-refactor Random.Select.
type legacyRandom struct{}

func (legacyRandom) Name() string { return "legacy-random" }

func (legacyRandom) Select(ctx *SelectContext, k int) []int {
	start := time.Now()
	defer func() { ctx.Score = time.Since(start) }()
	n := len(ctx.Unlabeled)
	if n <= k {
		return append([]int(nil), ctx.Unlabeled...)
	}
	perm := ctx.Rand.Perm(n)[:k]
	out := make([]int, 0, k)
	for _, i := range perm {
		out = append(out, ctx.Unlabeled[i])
	}
	return out
}

// legacyQBC is the pre-refactor QBC.Select.
type legacyQBC struct {
	B          int
	Factory    Factory
	UseEntropy bool
}

func (legacyQBC) Name() string { return "legacy-qbc" }

func (q legacyQBC) Select(ctx *SelectContext, k int) []int {
	if q.B <= 0 || q.Factory == nil || len(ctx.LabeledIdx) == 0 {
		return nil
	}
	start := time.Now()
	if ctx.Cancelled() {
		ctx.CommitteeCreate = time.Since(start)
		return nil
	}
	n := len(ctx.LabeledIdx)
	resamples := make([][]int, q.B)
	seeds := make([]int64, q.B)
	for b := 0; b < q.B; b++ {
		draws := make([]int, n)
		for i := range draws {
			draws[i] = ctx.Rand.Intn(n)
		}
		resamples[b] = draws
		seeds[b] = ctx.Rand.Int63()
	}
	committee := make([]Learner, q.B)
	if err := parallelFor(ctx.Ctx, q.B, ctx.Workers, 2, func(b int) {
		X := make([]feature.Vector, 0, n)
		y := make([]bool, 0, n)
		for _, j := range resamples[b] {
			X = append(X, ctx.Pool.X[ctx.LabeledIdx[j]])
			y = append(y, ctx.Labels[j])
		}
		m := q.Factory(seeds[b])
		m.Train(X, y)
		committee[b] = m
	}); err != nil {
		ctx.CommitteeCreate = time.Since(start)
		return nil
	}
	ctx.CommitteeCreate = time.Since(start)

	start = time.Now()
	variance := make([]float64, len(ctx.Unlabeled))
	if err := parallelFor(ctx.Ctx, len(ctx.Unlabeled), ctx.Workers, parallelCutoff, func(j int) {
		pos := 0
		for _, m := range committee {
			if m.Predict(ctx.Pool.X[ctx.Unlabeled[j]]) {
				pos++
			}
		}
		p := float64(pos) / float64(q.B)
		if q.UseEntropy {
			variance[j] = legacyBinaryEntropy(p)
		} else {
			variance[j] = p * (1 - p)
		}
	}); err != nil {
		ctx.Score = time.Since(start)
		return nil
	}
	picked := legacyVariancePick(ctx.Rand, ctx.Unlabeled, variance, k)
	ctx.Score = time.Since(start)
	return picked
}

func legacyBinaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

func legacyVariancePick(r *rand.Rand, unlabeled []int, variance []float64, k int) []int {
	order := r.Perm(len(unlabeled))
	sort.SliceStable(order, func(a, b int) bool {
		return variance[order[a]] > variance[order[b]]
	})
	if k > len(order) {
		k = len(order)
	}
	out := make([]int, 0, k)
	for _, oi := range order[:k] {
		out = append(out, unlabeled[oi])
	}
	return out
}

type legacyScored struct {
	idx int
	m   float64
}

func legacySmallestMargins(s []legacyScored, k int) []int {
	sort.Slice(s, func(a, b int) bool {
		if s[a].m != s[b].m {
			return s[a].m < s[b].m
		}
		return s[a].idx < s[b].idx
	})
	if k > len(s) {
		k = len(s)
	}
	out := make([]int, 0, k)
	for _, x := range s[:k] {
		out = append(out, x.idx)
	}
	return out
}

// legacyMargin is the pre-refactor Margin.Select.
type legacyMargin struct{}

func (legacyMargin) Name() string { return "legacy-margin" }

func (legacyMargin) Select(ctx *SelectContext, k int) []int {
	ml, ok := ctx.Learner.(MarginLearner)
	if !ok {
		return nil
	}
	start := time.Now()
	defer func() { ctx.Score = time.Since(start) }()
	s := make([]legacyScored, len(ctx.Unlabeled))
	if err := parallelFor(ctx.Ctx, len(ctx.Unlabeled), ctx.Workers, parallelCutoff, func(j int) {
		i := ctx.Unlabeled[j]
		s[j] = legacyScored{i, math.Abs(ml.Margin(ctx.Pool.X[i]))}
	}); err != nil {
		return nil
	}
	return legacySmallestMargins(s, k)
}

// legacyBlockedMargin is the pre-refactor BlockedMargin.Select.
type legacyBlockedMargin struct {
	TopK int
}

func (legacyBlockedMargin) Name() string { return "legacy-margin-blocked" }

func (bm legacyBlockedMargin) Select(ctx *SelectContext, k int) []int {
	wl, ok := ctx.Learner.(WeightedLinear)
	if !ok {
		return nil
	}
	start := time.Now()
	defer func() { ctx.Score = time.Since(start) }()
	w := wl.Weights()
	if len(w) == 0 {
		return legacyRandom{}.Select(ctx, k)
	}
	topK := bm.TopK
	if topK <= 0 || topK > len(w) {
		topK = len(w)
	}
	dims := legacyTopWeightDims(w, topK)

	margins := make([]float64, len(ctx.Unlabeled))
	if err := parallelFor(ctx.Ctx, len(ctx.Unlabeled), ctx.Workers, parallelCutoff, func(j int) {
		x := ctx.Pool.X[ctx.Unlabeled[j]]
		for _, d := range dims {
			if x[d] != 0 {
				margins[j] = math.Abs(wl.Margin(x))
				return
			}
		}
		margins[j] = blockedSentinel
	}); err != nil {
		return nil
	}
	var s []legacyScored
	for j, i := range ctx.Unlabeled {
		if margins[j] != blockedSentinel {
			s = append(s, legacyScored{i, margins[j]})
		}
	}
	if len(s) == 0 {
		return legacyMargin{}.Select(ctx, k)
	}
	return legacySmallestMargins(s, k)
}

func legacyTopWeightDims(w []float64, k int) []int {
	idx := make([]int, len(w))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(w[idx[a]]) > math.Abs(w[idx[b]])
	})
	return idx[:k]
}

func legacyVoteVariance(ctx *SelectContext, vl VoteLearner, candidates []int) ([]float64, error) {
	variance := make([]float64, len(candidates))
	err := parallelFor(ctx.Ctx, len(candidates), ctx.Workers, parallelCutoff, func(j int) {
		pos, total := vl.Votes(ctx.Pool.X[candidates[j]])
		if total == 0 {
			return
		}
		p := float64(pos) / float64(total)
		variance[j] = p * (1 - p)
	})
	return variance, err
}

// legacyForestQBC is the pre-refactor ForestQBC.Select.
type legacyForestQBC struct{}

func (legacyForestQBC) Name() string { return "legacy-forest-qbc" }

func (legacyForestQBC) Select(ctx *SelectContext, k int) []int {
	vl, ok := ctx.Learner.(VoteLearner)
	if !ok {
		return nil
	}
	start := time.Now()
	defer func() { ctx.Score = time.Since(start) }()
	variance, err := legacyVoteVariance(ctx, vl, ctx.Unlabeled)
	if err != nil {
		return nil
	}
	return legacyVariancePick(ctx.Rand, ctx.Unlabeled, variance, k)
}

// legacyBlockedForestQBC is the pre-refactor BlockedForestQBC.Select.
type legacyBlockedForestQBC struct {
	TargetRecall float64
}

func (legacyBlockedForestQBC) Name() string { return "legacy-forest-qbc-blocked" }

func (bf legacyBlockedForestQBC) Select(ctx *SelectContext, k int) []int {
	vl, ok := ctx.Learner.(VoteLearner)
	if !ok {
		return nil
	}
	forest, ok := ctx.Learner.(*tree.Forest)
	if !ok {
		return legacyForestQBC{}.Select(ctx, k)
	}
	target := bf.TargetRecall
	if target <= 0 {
		target = 0.95
	}
	start := time.Now()
	defer func() { ctx.Score = time.Since(start) }()

	X := make([][]float64, len(ctx.LabeledIdx))
	for j, i := range ctx.LabeledIdx {
		X[j] = ctx.Pool.X[i]
	}
	dnf := interp.MineBlockingDNF(forest, X, ctx.Labels, target)

	candidates := ctx.Unlabeled
	if len(dnf) > 0 {
		pruned := make([]int, 0, len(ctx.Unlabeled))
		for _, i := range ctx.Unlabeled {
			if interp.EvalDNF(dnf, ctx.Pool.X[i]) {
				pruned = append(pruned, i)
			}
		}
		if len(pruned) >= k {
			candidates = pruned
		}
	}
	variance, err := legacyVoteVariance(ctx, vl, candidates)
	if err != nil {
		return nil
	}
	return legacyVariancePick(ctx.Rand, candidates, variance, k)
}

// legacyIWAL is the pre-refactor IWAL.Select.
type legacyIWAL struct {
	PMin float64
}

func (legacyIWAL) Name() string { return "legacy-iwal" }

func (iw legacyIWAL) Select(ctx *SelectContext, k int) []int {
	ml, ok := ctx.Learner.(MarginLearner)
	if !ok {
		return nil
	}
	pmin := iw.PMin
	if pmin <= 0 {
		pmin = 0.1
	}
	start := time.Now()
	defer func() { ctx.Score = time.Since(start) }()

	margins := make([]float64, len(ctx.Unlabeled))
	if err := parallelFor(ctx.Ctx, len(ctx.Unlabeled), ctx.Workers, parallelCutoff, func(j int) {
		margins[j] = math.Abs(ml.Margin(ctx.Pool.X[ctx.Unlabeled[j]]))
	}); err != nil {
		return nil
	}
	maxM := 0.0
	for _, m := range margins {
		if m > maxM {
			maxM = m
		}
	}
	if maxM == 0 {
		maxM = 1
	}
	out := make([]int, 0, k)
	for n, j := range ctx.Rand.Perm(len(ctx.Unlabeled)) {
		if len(out) == k {
			break
		}
		if n%cancelCheckStride == 0 && ctx.Cancelled() {
			return nil
		}
		ambiguity := 1 - margins[j]/maxM
		p := pmin + (1-pmin)*ambiguity
		if ctx.Rand.Float64() < p {
			out = append(out, ctx.Unlabeled[j])
		}
	}
	return out
}

// legacyLFPLFN is the pre-refactor LFPLFN.Select, including the
// pre-refactor rules.Model.SelectLFPLFNCancel body (frozen here because
// the rules method itself was re-based on RankLFPLFN), rebuilt on the
// exported rules.Model surface (Predict, Rules).
type legacyLFPLFN struct{}

func (legacyLFPLFN) Name() string { return "legacy-lfp-lfn" }

func (legacyLFPLFN) Select(ctx *SelectContext, k int) []int {
	m, ok := ctx.Learner.(*rules.Model)
	if !ok {
		return nil
	}
	start := time.Now()
	defer func() { ctx.Score = time.Since(start) }()
	return legacySelectLFPLFN(m, ctx.Pool.X, ctx.Unlabeled, k, ctx.Cancelled)
}

func legacySelectLFPLFN(m *rules.Model, X []feature.Vector, unlabeled []int, k int, cancelled func() bool) []int {
	if len(m.Rules()) == 0 || k <= 0 {
		return nil
	}
	simScore := func(x feature.Vector) float64 {
		if len(x) == 0 {
			return 0
		}
		s := 0.0
		for _, v := range x {
			if v >= 0.5 {
				s++
			}
		}
		return s / float64(len(x))
	}
	coveredByRuleMinus := func(x feature.Vector) bool {
		for _, r := range m.Rules() {
			if len(r.Atoms) < 2 {
				continue
			}
			for drop := range r.Atoms {
				ok := true
				for j, a := range r.Atoms {
					if j == drop {
						continue
					}
					if x[a] < 0.5 {
						ok = false
						break
					}
				}
				if ok {
					return true
				}
			}
		}
		return false
	}
	sortScored := func(s []legacyScored, asc bool) {
		sort.Slice(s, func(i, j int) bool {
			if s[i].m != s[j].m {
				if asc {
					return s[i].m < s[j].m
				}
				return s[i].m > s[j].m
			}
			return s[i].idx < s[j].idx
		})
	}
	var lfps, lfns []legacyScored
	for n, i := range unlabeled {
		if cancelled != nil && n%cancelCheckStride == 0 && cancelled() {
			return nil
		}
		x := X[i]
		if m.Predict(x) {
			lfps = append(lfps, legacyScored{i, simScore(x)})
			continue
		}
		if coveredByRuleMinus(x) {
			lfns = append(lfns, legacyScored{i, simScore(x)})
		}
	}
	sortScored(lfps, true)
	sortScored(lfns, false)
	out := make([]int, 0, k)
	for li, fi := 0, 0; len(out) < k && (li < len(lfps) || fi < len(lfns)); {
		if li < len(lfps) {
			out = append(out, lfps[li].idx)
			li++
		}
		if len(out) < k && fi < len(lfns) {
			out = append(out, lfns[fi].idx)
			fi++
		}
	}
	return out
}

// ---- the equivalence assertions ----

// TestCompositionEquivalence is the refactor's acceptance gate: every
// paper selector, expressed as a Scorer×Picker composition behind its
// exported type, must match its frozen pre-refactor implementation —
// same batch, same counted-RNG position — at worker counts {0,1,2,8}
// and pool sizes on both sides of the parallel cutoff.
func TestCompositionEquivalence(t *testing.T) {
	for _, size := range []int{parallelCutoff / 2, 2*parallelCutoff + 33} {
		st := newSelectorSetup(t, size+60, int64(size)+7)
		cases := []struct {
			name    string
			current Selector
			legacy  Selector
			learner Learner
		}{
			{"random", Random{}, legacyRandom{}, st.svm},
			{"qbc", QBC{B: 7, Factory: svmFactory}, legacyQBC{B: 7, Factory: svmFactory}, st.svm},
			{"qbc-entropy", QBC{B: 5, Factory: svmFactory, UseEntropy: true},
				legacyQBC{B: 5, Factory: svmFactory, UseEntropy: true}, st.svm},
			{"margin", Margin{}, legacyMargin{}, st.svm},
			{"margin-blocked", BlockedMargin{TopK: 3}, legacyBlockedMargin{TopK: 3}, st.svm},
			{"margin-blocked-alldims", BlockedMargin{}, legacyBlockedMargin{}, st.svm},
			{"forest-qbc", ForestQBC{}, legacyForestQBC{}, st.forest},
			{"forest-qbc-blocked", BlockedForestQBC{}, legacyBlockedForestQBC{}, st.forest},
			{"iwal", IWAL{}, legacyIWAL{}, st.svm},
			{"iwal-pmin", IWAL{PMin: 0.3}, legacyIWAL{PMin: 0.3}, st.svm},
		}
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/size=%d", tc.name, size), func(t *testing.T) {
				for _, workers := range []int{0, 1, 2, 8} {
					wantBatch, want63, want64 := st.run(tc.legacy, tc.learner, workers, 10, 321)
					gotBatch, got63, got64 := st.run(tc.current, tc.learner, workers, 10, 321)
					if len(wantBatch) == 0 {
						t.Fatalf("workers=%d: legacy %s selected nothing", workers, tc.legacy.Name())
					}
					assertSameSelection(t, workers, gotBatch, wantBatch, got63, want63, got64, want64)
				}
			})
		}
	}
}

// TestCompositionEquivalenceLFPLFN covers the rule learner separately:
// it needs a Boolean pool and a trained DNF. The composition ranks the
// FULL interleave and top-k's it; the frozen legacy caps at k inside the
// interleave — prefix stability makes them identical for every k,
// checked here across batch sizes including ones past the LFP/LFN
// supply.
func TestCompositionEquivalenceLFPLFN(t *testing.T) {
	X, truth := boolVectors(420, 15)
	pool := NewPoolFromVectors(X, truth)
	ext := feature.NewBoolExtractor([]string{"a", "b", "c"})
	m := rules.NewModel(ext)
	var labeled []int
	var labels []bool
	for i := 0; i < 80; i++ {
		labeled = append(labeled, i)
		labels = append(labels, truth[i])
	}
	var trainX []feature.Vector
	for _, i := range labeled {
		trainX = append(trainX, X[i])
	}
	m.Train(trainX, labels)
	if len(m.Rules()) == 0 {
		t.Fatal("rule model learned no rules; pool generator broken")
	}
	var unlabeled []int
	for i := 80; i < pool.Len(); i++ {
		unlabeled = append(unlabeled, i)
	}
	st := &selectorSetup{pool: pool, labeled: labeled, labels: labels, unlabel: unlabeled}
	for _, k := range []int{1, 7, 10, 1000} {
		for _, workers := range []int{0, 1, 2, 8} {
			wantBatch, want63, want64 := st.run(legacyLFPLFN{}, m, workers, k, 99)
			gotBatch, got63, got64 := st.run(LFPLFN{}, m, workers, k, 99)
			if len(wantBatch) == 0 {
				t.Fatalf("k=%d: legacy LFP/LFN selected nothing", k)
			}
			assertSameSelection(t, workers, gotBatch, wantBatch, got63, want63, got64, want64)
		}
	}
}

// boolVectors generates the Boolean pool shape the rule learner trains
// on: one strongly informative atom plus noise, giving the learned DNF
// both LFPs and rule-minus LFNs to rank.
func boolVectors(n int, seed int64) ([]feature.Vector, []bool) {
	r := rand.New(rand.NewSource(seed))
	var X []feature.Vector
	var truth []bool
	for i := 0; i < n; i++ {
		match := r.Float64() < 0.3
		v := make(feature.Vector, 12)
		for j := range v {
			if r.Float64() < 0.2 {
				v[j] = 1
			}
		}
		if match {
			v[0] = 1
			if r.Float64() < 0.8 {
				v[1] = 1
			}
		} else {
			v[0] = 0
		}
		X = append(X, v)
		truth = append(truth, match)
	}
	return X, truth
}

func assertSameSelection(t *testing.T, workers int, gotBatch, wantBatch []int, got63, want63, got64, want64 uint64) {
	t.Helper()
	if got63 != want63 || got64 != want64 {
		t.Fatalf("workers=%d: RNG draws (%d,%d) differ from legacy (%d,%d)",
			workers, got63, got64, want63, want64)
	}
	if len(gotBatch) != len(wantBatch) {
		t.Fatalf("workers=%d: batch size %d vs legacy %d", workers, len(gotBatch), len(wantBatch))
	}
	for j := range gotBatch {
		if gotBatch[j] != wantBatch[j] {
			t.Fatalf("workers=%d: batch[%d] = %d, legacy picked %d",
				workers, j, gotBatch[j], wantBatch[j])
		}
	}
}
