package core

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/linear"
	"github.com/alem/alem/internal/neural"
	"github.com/alem/alem/internal/obs"
	"github.com/alem/alem/internal/tree"
)

// update regenerates the golden files under testdata/ instead of
// comparing against them:
//
//	go test ./internal/core/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current results")

// gridCell is one learner×selector combination's pinned outcome. F1 is
// a %.6f string so the golden file is insensitive to JSON float
// round-tripping and diffs read naturally.
type gridCell struct {
	Learner    string `json:"learner"`
	Selector   string `json:"selector"`
	F1         string `json:"f1"`
	Labels     int    `json:"labels"`
	Iterations int    `json:"iterations"`
	Reason     string `json:"reason"`
}

// TestGoldenRegressionGrid runs the tiny learner×selector matrix on a
// fixed-seed synthetic pool and pins every cell's final F1, label count,
// iteration count and stop reason against testdata/golden_grid.json.
// The engine promises bit-identical runs for a fixed seed — the same
// promise resume and parallel-scoring tests rely on — so any diff here
// is a behavioral change to the loop, a learner or a selector, caught at
// the moment it happens rather than in a benchmark regression later.
// Legitimate changes regenerate with -update and review the diff.
func TestGoldenRegressionGrid(t *testing.T) {
	const (
		poolSize = 400
		seed     = 77
		budget   = 80
	)
	type combo struct {
		learner  string
		selector string
		make     func() (Learner, Selector)
	}
	combos := []combo{
		{"svm", "margin", func() (Learner, Selector) { return linear.NewSVM(seed), Margin{} }},
		{"svm", "qbc", func() (Learner, Selector) { return linear.NewSVM(seed), QBC{B: 3, Factory: svmFactory} }},
		{"neural", "margin", func() (Learner, Selector) { return neural.NewNet(4, seed), Margin{} }},
		{"forest", "forest-qbc", func() (Learner, Selector) { return tree.NewForest(5, seed), ForestQBC{} }},
		{"forest", "random", func() (Learner, Selector) { return tree.NewForest(5, seed), Random{} }},
		// The two diversity-aware pickers, composed with margin scoring —
		// the same strategies -selector kcenter-margin/cluster-margin build.
		{"svm", "kcenter-margin", func() (Learner, Selector) {
			return linear.NewSVM(seed), ComposedSelector{ID: "kcenter-margin", Scorer: MarginScorer{}, Picker: KCenterPicker{}}
		}},
		{"svm", "cluster-margin", func() (Learner, Selector) {
			return linear.NewSVM(seed), ComposedSelector{ID: "cluster-margin", Scorer: MarginScorer{}, Picker: ScoredClusterPicker{}}
		}},
	}

	got := make([]gridCell, 0, len(combos))
	for _, c := range combos {
		pool := ambiguousPool(poolSize, seed)
		l, sel := c.make()
		res := Run(pool, l, sel, poolOracle(pool), Config{Seed: seed, MaxLabels: budget})
		if len(res.Curve) == 0 {
			t.Fatalf("%s/%s: no iterations ran", c.learner, c.selector)
		}
		final := res.Curve[len(res.Curve)-1]
		got = append(got, gridCell{
			Learner:    c.learner,
			Selector:   c.selector,
			F1:         fmt.Sprintf("%.6f", final.F1),
			Labels:     res.LabelsUsed,
			Iterations: len(res.Curve),
			Reason:     res.Reason.String(),
		})
	}

	goldenPath := filepath.Join("testdata", "golden_grid.json")
	if *update {
		writeGolden(t, goldenPath, got)
		return
	}
	var want []gridCell
	readGolden(t, goldenPath, &want)
	if !reflect.DeepEqual(got, want) {
		g, _ := json.MarshalIndent(got, "", "  ")
		w, _ := json.MarshalIndent(want, "", "  ")
		t.Errorf("grid drifted from golden (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", g, w)
	}
}

// ambiguousPool is a deliberately harder cousin of syntheticPool: the
// match and non-match similarity bands overlap, so no combination
// reaches a perfect F1 inside the grid's budget and every cell pins a
// distinct value — a quality regression moves the number instead of
// hiding behind a saturated 1.000000.
func ambiguousPool(n int, seed int64) *Pool {
	r := rand.New(rand.NewSource(seed))
	X := make([]feature.Vector, 0, n)
	truth := make([]bool, 0, n)
	for i := 0; i < n; i++ {
		match := r.Float64() < 0.25
		var base float64
		if match {
			base = 0.45 + r.Float64()*0.45
		} else {
			base = r.Float64() * 0.6
		}
		v := make(feature.Vector, 8)
		for j := range v {
			v[j] = clamp01(base + r.Float64()*0.3 - 0.15)
		}
		X = append(X, v)
		truth = append(truth, match)
	}
	return NewPoolFromVectors(X, truth)
}

// goldenSpan is the deterministic projection of one manifest span: wall
// times vary run to run, so the golden pins the structure — phase
// sequence, iteration numbering, and every label/batch/pool attribute.
type goldenSpan struct {
	Name      string             `json:"name"`
	Iteration int                `json:"iteration"`
	Attrs     map[string]float64 `json:"attrs"`
}

// TestGoldenTraceManifest drives one fixed-seed session through the
// trace observer and pins the resulting manifest shape: exactly one span
// per phase per iteration (seed once, label on every Oracle round), with
// the label accounting the attrs carry. Workers is forced to 1 so the
// golden is identical on any machine.
func TestGoldenTraceManifest(t *testing.T) {
	pool := syntheticPool(300, 24)
	s := mustSession(t, pool, linear.NewSVM(24), Margin{}, Config{Seed: 24, MaxLabels: 60, Workers: 1})
	tr := obs.NewTrace()
	s.AddObserver(NewTraceObserver(tr))
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	got := make([]goldenSpan, len(spans))
	for i, sp := range spans {
		got[i] = goldenSpan{Name: sp.Name, Iteration: sp.Iteration, Attrs: sp.Attrs}
	}

	goldenPath := filepath.Join("testdata", "golden_trace.json")
	if *update {
		writeGolden(t, goldenPath, got)
		return
	}
	var want []goldenSpan
	readGolden(t, goldenPath, &want)
	if !reflect.DeepEqual(got, want) {
		g, _ := json.MarshalIndent(got, "", "  ")
		w, _ := json.MarshalIndent(want, "", "  ")
		t.Errorf("trace manifest drifted from golden (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", g, w)
	}
}

func writeGolden(t *testing.T, path string, v any) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("golden rewritten: %s", path)
}

func readGolden(t *testing.T, path string, v any) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update): %v", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
}
