package core

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/alem/alem/internal/eval"
	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/linear"
	"github.com/alem/alem/internal/neural"
	"github.com/alem/alem/internal/obs"
	"github.com/alem/alem/internal/oracle"
	"github.com/alem/alem/internal/tree"
)

// update regenerates the golden files under testdata/ instead of
// comparing against them:
//
//	go test ./internal/core/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current results")

// gridCell is one learner×selector combination's pinned outcome. F1 is
// a %.6f string so the golden file is insensitive to JSON float
// round-tripping and diffs read naturally. The Oracle/Spent/Abstains
// triple is set only by the priced-oracle cells (omitted elsewhere, so
// the classic cells' bytes are unchanged).
type gridCell struct {
	Learner    string `json:"learner"`
	Selector   string `json:"selector"`
	F1         string `json:"f1"`
	Labels     int    `json:"labels"`
	Iterations int    `json:"iterations"`
	Reason     string `json:"reason"`
	Oracle     string `json:"oracle,omitempty"`
	Spent      string `json:"spent,omitempty"`
	Abstains   int    `json:"abstains,omitempty"`
}

// TestGoldenRegressionGrid runs the tiny learner×selector matrix on a
// fixed-seed synthetic pool and pins every cell's final F1, label count,
// iteration count and stop reason against testdata/golden_grid.json.
// The engine promises bit-identical runs for a fixed seed — the same
// promise resume and parallel-scoring tests rely on — so any diff here
// is a behavioral change to the loop, a learner or a selector, caught at
// the moment it happens rather than in a benchmark regression later.
// Legitimate changes regenerate with -update and review the diff.
func TestGoldenRegressionGrid(t *testing.T) {
	const (
		poolSize = 400
		seed     = 77
		budget   = 80
	)
	type combo struct {
		learner  string
		selector string
		make     func() (Learner, Selector)
	}
	combos := []combo{
		{"svm", "margin", func() (Learner, Selector) { return linear.NewSVM(seed), Margin{} }},
		{"svm", "qbc", func() (Learner, Selector) { return linear.NewSVM(seed), QBC{B: 3, Factory: svmFactory} }},
		{"neural", "margin", func() (Learner, Selector) { return neural.NewNet(4, seed), Margin{} }},
		{"forest", "forest-qbc", func() (Learner, Selector) { return tree.NewForest(5, seed), ForestQBC{} }},
		{"forest", "random", func() (Learner, Selector) { return tree.NewForest(5, seed), Random{} }},
		// The two diversity-aware pickers, composed with margin scoring —
		// the same strategies -selector kcenter-margin/cluster-margin build.
		{"svm", "kcenter-margin", func() (Learner, Selector) {
			return linear.NewSVM(seed), ComposedSelector{ID: "kcenter-margin", Scorer: MarginScorer{}, Picker: KCenterPicker{}}
		}},
		{"svm", "cluster-margin", func() (Learner, Selector) {
			return linear.NewSVM(seed), ComposedSelector{ID: "cluster-margin", Scorer: MarginScorer{}, Picker: ScoredClusterPicker{}}
		}},
	}

	got := make([]gridCell, 0, len(combos))
	for _, c := range combos {
		pool := ambiguousPool(poolSize, seed)
		l, sel := c.make()
		res := Run(pool, l, sel, poolOracle(pool), Config{Seed: seed, MaxLabels: budget})
		if len(res.Curve) == 0 {
			t.Fatalf("%s/%s: no iterations ran", c.learner, c.selector)
		}
		final := res.Curve[len(res.Curve)-1]
		got = append(got, gridCell{
			Learner:    c.learner,
			Selector:   c.selector,
			F1:         fmt.Sprintf("%.6f", final.F1),
			Labels:     res.LabelsUsed,
			Iterations: len(res.Curve),
			Reason:     res.Reason.String(),
		})
	}

	// Priced-oracle cells: a fixed-seed simulated LLM labeler with a fixed
	// price table, one cell dollar-capped (pinning StopBudgetExhausted and
	// the exact spend at the stop) and one uncapped (pinning the abstain
	// and spend accounting across a full label budget).
	pricedCells := []struct {
		oracle     string
		maxDollars float64
	}{
		{"llm-sim-capped", 0.10},
		{"llm-sim-uncapped", 0},
	}
	for _, pc := range pricedCells {
		pool := ambiguousPool(poolSize, seed)
		// NoiseRate stays low: this SVM is fragile to label noise on the
		// ambiguous pool (the legacy Noisy oracle collapses it to F1≈0 from
		// ~10% noise), and a saturated-zero cell would pin nothing.
		sim := oracle.NewSimulatedLLM(poolDataset(pool), oracle.LLMSimConfig{
			AbstainRate: 0.1,
			NoiseRate:   0.02,
			Price:       oracle.PriceTable{PerLabel: 0.002, PerAbstain: 0.0005},
		}, seed)
		s, err := NewBatchSession(pool, linear.NewSVM(seed), Margin{}, sim,
			Config{Seed: seed, MaxLabels: budget, MaxDollars: pc.maxDollars})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Curve) == 0 {
			t.Fatalf("%s: no iterations ran", pc.oracle)
		}
		final := res.Curve[len(res.Curve)-1]
		got = append(got, gridCell{
			Learner:    "svm",
			Selector:   "margin",
			F1:         fmt.Sprintf("%.6f", final.F1),
			Labels:     res.LabelsUsed,
			Iterations: len(res.Curve),
			Reason:     res.Reason.String(),
			Oracle:     pc.oracle,
			Spent:      fmt.Sprintf("%.4f", s.Ledger().Spent),
			Abstains:   s.Ledger().Abstains,
		})
	}

	goldenPath := filepath.Join("testdata", "golden_grid.json")
	if *update {
		writeGolden(t, goldenPath, got)
		return
	}
	var want []gridCell
	readGolden(t, goldenPath, &want)
	if !reflect.DeepEqual(got, want) {
		g, _ := json.MarshalIndent(got, "", "  ")
		w, _ := json.MarshalIndent(want, "", "  ")
		t.Errorf("grid drifted from golden (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", g, w)
	}
}

// ambiguousPool is a deliberately harder cousin of syntheticPool: the
// match and non-match similarity bands overlap, so no combination
// reaches a perfect F1 inside the grid's budget and every cell pins a
// distinct value — a quality regression moves the number instead of
// hiding behind a saturated 1.000000.
func ambiguousPool(n int, seed int64) *Pool {
	r := rand.New(rand.NewSource(seed))
	X := make([]feature.Vector, 0, n)
	truth := make([]bool, 0, n)
	for i := 0; i < n; i++ {
		match := r.Float64() < 0.25
		var base float64
		if match {
			base = 0.45 + r.Float64()*0.45
		} else {
			base = r.Float64() * 0.6
		}
		v := make(feature.Vector, 8)
		for j := range v {
			v[j] = clamp01(base + r.Float64()*0.3 - 0.15)
		}
		X = append(X, v)
		truth = append(truth, match)
	}
	return NewPoolFromVectors(X, truth)
}

// goldenSpan is the deterministic projection of one manifest span: wall
// times vary run to run, so the golden pins the structure — phase
// sequence, iteration numbering, and every label/batch/pool attribute.
type goldenSpan struct {
	Name      string             `json:"name"`
	Iteration int                `json:"iteration"`
	Attrs     map[string]float64 `json:"attrs"`
}

// TestGoldenTraceManifest drives one fixed-seed session through the
// trace observer and pins the resulting manifest shape: exactly one span
// per phase per iteration (seed once, label on every Oracle round), with
// the label accounting the attrs carry. Workers is forced to 1 so the
// golden is identical on any machine.
func TestGoldenTraceManifest(t *testing.T) {
	pool := syntheticPool(300, 24)
	s := mustSession(t, pool, linear.NewSVM(24), Margin{}, Config{Seed: 24, MaxLabels: 60, Workers: 1})
	tr := obs.NewTrace()
	s.AddObserver(NewTraceObserver(tr))
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	got := make([]goldenSpan, len(spans))
	for i, sp := range spans {
		got[i] = goldenSpan{Name: sp.Name, Iteration: sp.Iteration, Attrs: sp.Attrs}
	}

	goldenPath := filepath.Join("testdata", "golden_trace.json")
	if *update {
		writeGolden(t, goldenPath, got)
		return
	}
	var want []goldenSpan
	readGolden(t, goldenPath, &want)
	if !reflect.DeepEqual(got, want) {
		g, _ := json.MarshalIndent(got, "", "  ")
		w, _ := json.MarshalIndent(want, "", "  ")
		t.Errorf("trace manifest drifted from golden (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", g, w)
	}
}

// warmStartGolden pins the transfer warm-start protocol against a cold
// start on the same pool, seed and budget: the labels-to-convergence of
// each and the saving between them — the paper-style "how many labels
// does a pre-trained model buy you" number.
type warmStartGolden struct {
	ColdF1 string `json:"cold_f1"`
	WarmF1 string `json:"warm_f1"`
	// WarmInitialF1 is the transferred model's F1 before a single target
	// label was bought — what the transfer alone is worth.
	WarmInitialF1 string `json:"warm_initial_f1"`
	// ColdLabelsToTarget/WarmLabelsToTarget are the labels each run paid
	// before first reaching the target F1 (-1: never) — the direct
	// labels-to-quality comparison; LabelsSaved is their difference.
	ColdLabelsToTarget int `json:"cold_labels_to_target"`
	WarmLabelsToTarget int `json:"warm_labels_to_target"`
	LabelsSaved        int `json:"labels_saved"`
}

// TestGoldenWarmStartTransfer runs a cold and a warm-started session on
// the same fixed-seed pool (the warm learner pre-trained on a different
// synthetic pool, the transfer scenario) and pins both trajectories'
// convergence label counts and the saving.
func TestGoldenWarmStartTransfer(t *testing.T) {
	const seed, budget = 88, 80
	const targetF1 = 0.7

	cold := ambiguousPool(400, seed)
	coldRes := Run(cold, linear.NewSVM(seed), Margin{}, poolOracle(cold),
		Config{Seed: seed, MaxLabels: budget})

	warmPool := ambiguousPool(400, seed)
	ws := mustSession(t, warmPool, linear.NewSVM(seed), Margin{}, Config{Seed: seed, MaxLabels: budget})
	if err := ws.SetWarmStart(warmLearner(seed)); err != nil {
		t.Fatal(err)
	}
	warmRes, err := ws.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	labelsToTarget := func(c eval.Curve) int {
		for _, p := range c {
			if p.F1 >= targetF1 {
				return p.Labels
			}
		}
		return -1
	}
	coldTo := labelsToTarget(coldRes.Curve)
	warmTo := labelsToTarget(warmRes.Curve)
	got := warmStartGolden{
		ColdF1:             fmt.Sprintf("%.6f", coldRes.Curve.FinalF1()),
		WarmF1:             fmt.Sprintf("%.6f", warmRes.Curve.FinalF1()),
		WarmInitialF1:      fmt.Sprintf("%.6f", warmRes.Curve[0].F1),
		ColdLabelsToTarget: coldTo,
		WarmLabelsToTarget: warmTo,
		LabelsSaved:        coldTo - warmTo,
	}

	goldenPath := filepath.Join("testdata", "golden_warmstart.json")
	if *update {
		writeGolden(t, goldenPath, got)
		return
	}
	var want warmStartGolden
	readGolden(t, goldenPath, &want)
	if !reflect.DeepEqual(got, want) {
		g, _ := json.MarshalIndent(got, "", "  ")
		w, _ := json.MarshalIndent(want, "", "  ")
		t.Errorf("warm-start transfer drifted from golden (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", g, w)
	}
}

func writeGolden(t *testing.T, path string, v any) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("golden rewritten: %s", path)
}

func readGolden(t *testing.T, path string, v any) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update): %v", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
}
