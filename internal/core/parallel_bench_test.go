package core

import (
	"context"
	"math/rand"
	"testing"

	"github.com/alem/alem/internal/linear"
	"github.com/alem/alem/internal/tree"
)

// Serial/parallel pairs for every selection hot path ported onto the
// parallelFor substrate. The "serial" variant pins Workers=1 (the exact
// pre-port code path); "parallel" uses Workers=0, i.e. GOMAXPROCS, so
// the recorded speedup reflects the machine the benchmark ran on —
// scripts/bench_json.sh pairs them up and emits the ratio into
// BENCH_<n>.json together with the GOMAXPROCS it observed.

const benchPoolSize = 4096

func benchSetup(b *testing.B) *selectorSetup {
	b.Helper()
	pool := syntheticPool(benchPoolSize, 7)
	nLab := 60
	st := &selectorSetup{pool: pool}
	for i := 0; i < nLab; i++ {
		st.labeled = append(st.labeled, i)
		st.labels = append(st.labels, pool.Truth[i])
	}
	for i := nLab; i < benchPoolSize; i++ {
		st.unlabel = append(st.unlabel, i)
	}
	trainX, trainY := gatherTraining(pool, st.labeled, st.labels, nLab)
	st.svm = linear.NewSVM(7)
	st.svm.Train(trainX, trainY)
	st.forest = tree.NewForest(9, 7)
	st.forest.Train(trainX, trainY)
	return st
}

func benchSelect(b *testing.B, sel Selector, learner Learner, workers int) {
	b.Helper()
	st := benchSetup(b)
	src := rand.NewSource(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sctx := &SelectContext{
			Ctx:     context.Background(),
			Learner: learner, Pool: st.pool,
			LabeledIdx: st.labeled, Labels: st.labels,
			Unlabeled: st.unlabel, Rand: rand.New(src),
			Workers: workers,
		}
		if batch := sel.Select(sctx, 10); len(batch) == 0 {
			b.Fatal("empty batch")
		}
	}
}

// QBC committee training + vote-variance scoring — the tentpole's
// headline path (committee members train concurrently on pre-drawn
// bootstrap resamples).
func BenchmarkQBCSelect(b *testing.B) {
	sel := QBC{B: 10, Factory: svmFactory}
	st := benchSetup(b)
	b.Run("serial", func(b *testing.B) { benchSelect(b, sel, st.svm, 1) })
	b.Run("parallel", func(b *testing.B) { benchSelect(b, sel, st.svm, 0) })
}

// Margin scoring sweep over the unlabeled pool.
func BenchmarkMarginSelect(b *testing.B) {
	st := benchSetup(b)
	b.Run("serial", func(b *testing.B) { benchSelect(b, Margin{}, st.svm, 1) })
	b.Run("parallel", func(b *testing.B) { benchSelect(b, Margin{}, st.svm, 0) })
}

// Blocked margin: same sweep with the §5.1 dimension cutoff inline.
func BenchmarkBlockedMarginSelect(b *testing.B) {
	sel := BlockedMargin{TopK: 3}
	st := benchSetup(b)
	b.Run("serial", func(b *testing.B) { benchSelect(b, sel, st.svm, 1) })
	b.Run("parallel", func(b *testing.B) { benchSelect(b, sel, st.svm, 0) })
}

// ForestQBC: per-tree vote variance over the unlabeled pool.
func BenchmarkForestQBCSelect(b *testing.B) {
	st := benchSetup(b)
	b.Run("serial", func(b *testing.B) { benchSelect(b, ForestQBC{}, st.forest, 1) })
	b.Run("parallel", func(b *testing.B) { benchSelect(b, ForestQBC{}, st.forest, 0) })
}

// Greedy k-center picking over margin scores: k distance-update sweeps
// across the candidate set ride the substrate, one per pick.
func BenchmarkKCenterMarginSelect(b *testing.B) {
	sel := ComposedSelector{ID: "kcenter-margin", Scorer: MarginScorer{}, Picker: KCenterPicker{}}
	st := benchSetup(b)
	b.Run("serial", func(b *testing.B) { benchSelect(b, sel, st.svm, 1) })
	b.Run("parallel", func(b *testing.B) { benchSelect(b, sel, st.svm, 0) })
}

// Score-weighted cluster sampling over margin scores: the margin sweep
// parallelizes; the O((PoolMult·k)²) pairwise clustering and the serial
// RNG draws are the fixed cost the ratio exposes.
func BenchmarkClusterMarginSelect(b *testing.B) {
	sel := ComposedSelector{ID: "cluster-margin", Scorer: MarginScorer{}, Picker: ScoredClusterPicker{}}
	st := benchSetup(b)
	b.Run("serial", func(b *testing.B) { benchSelect(b, sel, st.svm, 1) })
	b.Run("parallel", func(b *testing.B) { benchSelect(b, sel, st.svm, 0) })
}

// Pooled prediction, the evaluation-phase hot path that predated the
// substrate and now rides on it.
func BenchmarkParallelPredict(b *testing.B) {
	st := benchSetup(b)
	idx := make([]int, benchPoolSize)
	for i := range idx {
		idx[i] = i
	}
	run := func(b *testing.B, workers int) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := parallelPredict(context.Background(), st.svm.Predict, st.pool, idx, workers); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, 0) })
}
