package core

import (
	"context"
	"math/rand"
	"time"

	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/oracle"
)

// EnsembleConfig configures the §5.2 active-ensemble enhancement: an
// ensemble of high-precision classifiers learned incrementally across
// active-learning iterations.
type EnsembleConfig struct {
	Config
	// Tau is the precision threshold a candidate must reach on the
	// Oracle-labeled examples it predicts as matches before it is
	// accepted into the ensemble (0.85 in the paper, uniformly).
	Tau float64
	// MinPositive is the minimum number of labeled predicted-matches
	// needed before the precision estimate is trusted.
	MinPositive int
	// Factory builds the candidate classifiers (linear SVMs in the
	// paper, but any margin-capable factory works — §5.2 notes the
	// enhancement applies to neural networks unchanged).
	Factory Factory
	// Selector scores the *uncovered* unlabeled pool; margin-based
	// selection in the paper (QBC's committee-creation cost is why the
	// paper confines ensembles to margin).
	Selector Selector
}

// EnsembleResult extends Result with the accepted classifier count that
// the paper annotates on Fig. 11 ("#AcceptedSVMs").
type EnsembleResult struct {
	Result
	Accepted int
}

// RunEnsemble executes active learning with an incrementally grown
// ensemble (Fig. 7): positives predicted by accepted classifiers are
// removed from both labeled and unlabeled pools, the next candidate is
// learned on the uncovered remainder, and the final prediction is the
// union of the accepted classifiers' (plus the current candidate's)
// positive predictions.
//
// RunEnsemble is a compatibility wrapper over RunEnsembleContext with a
// background context and no observers.
func RunEnsemble(pool *Pool, o oracle.Oracle, cfg EnsembleConfig) *EnsembleResult {
	res, err := RunEnsembleContext(context.Background(), pool, o, cfg)
	if err != nil {
		panic(err)
	}
	return res
}

// RunEnsembleContext is RunEnsemble with cancellation and the Session
// event stream: the context is checked at every phase boundary, inside
// parallel prediction and before every Oracle query; observers receive
// the same IterationStart/TrainDone/EvalDone/BatchSelected/RunEnd events
// a Session emits, plus CandidateAccepted when the §5.2 precision test
// admits a classifier. On cancellation the partial result is returned
// together with the context's error. (Checkpoint/resume is a base-Session
// capability; ensembles do not snapshot.)
//
// The ensemble loop shares its phase primitives — seed bootstrap, pooled
// prediction, point scoring, batch labeling — with the Session engine
// rather than duplicating the orchestration, and draws from the RNG in
// the same order as the pre-Session implementation.
func RunEnsembleContext(ctx context.Context, pool *Pool, o oracle.Oracle, cfg EnsembleConfig, observers ...Observer) (*EnsembleResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Config.Validate(); err != nil {
		return nil, err
	}
	cfg.Config = cfg.Config.withDefaults()
	if cfg.Tau == 0 {
		cfg.Tau = 0.85
	}
	if cfg.MinPositive == 0 {
		cfg.MinPositive = 3
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	emit := func(e Event) {
		for _, obs := range observers {
			obs.Observe(e)
		}
	}

	e := &ensembleRun{pool: pool, oracle: o, cfg: cfg, rng: r}
	res := &EnsembleResult{}
	finish := func(reason StopReason, err error) (*EnsembleResult, error) {
		res.LabelsUsed = e.totalLabels
		res.Reason = reason
		emit(RunEnd{Iterations: len(res.Curve), LabelsUsed: e.totalLabels, Reason: reason, Err: err})
		return res, err
	}

	if err := e.seed(ctx); err != nil {
		return finish(StopCancelled, err)
	}
	res.TestSize = len(e.testIdx)

	var accepted []Learner
	ensemblePredict := func(candidate Learner, x feature.Vector) bool {
		for _, m := range accepted {
			if m.Predict(x) {
				return true
			}
		}
		return candidate != nil && candidate.Predict(x)
	}

	for iter := 0; ; iter++ {
		emit(IterationStart{Iteration: iter, LabelsUsed: e.totalLabels, PoolRemaining: len(e.unlabeled)})
		if err := ctx.Err(); err != nil {
			return finish(StopCancelled, err)
		}

		// Train the candidate on the uncovered labeled remainder.
		trainX, trainY := gatherTraining(pool, e.labeled, e.labels, len(e.labeled))
		candidate := cfg.Factory(r.Int63())
		start := time.Now()
		if len(trainX) > 0 && bothClasses(trainY) {
			candidate.Train(trainX, trainY)
		} else {
			candidate = nil
		}
		trainTime := time.Since(start)
		emit(TrainDone{Iteration: iter, Labels: len(e.labeled), Elapsed: trainTime})
		if err := ctx.Err(); err != nil {
			return finish(StopCancelled, err)
		}

		// Evaluate the ensemble union on the test universe.
		cand := candidate
		evalStart := time.Now()
		pred, err := parallelPredict(ctx, func(x feature.Vector) bool {
			return ensemblePredict(cand, x)
		}, pool, e.testIdx, cfg.Workers)
		if err != nil {
			return finish(StopCancelled, err)
		}
		pt := evalPoint(pool, e.testIdx, pred, e.totalLabels, trainTime)
		emit(EvalDone{Iteration: iter, Point: pt, Elapsed: time.Since(evalStart)})

		var batch []int
		reason := StopNone
		switch {
		case e.totalLabels >= e.maxLabels:
			reason = StopBudget
		case len(e.unlabeled) == 0:
			reason = StopPoolExhausted
		case cfg.TargetF1 > 0 && pt.F1 >= cfg.TargetF1:
			reason = StopTargetF1
		case candidate == nil:
			reason = StopSelectorEmpty
		default:
			sctx := &SelectContext{
				Ctx:     ctx,
				Learner: candidate, Pool: pool,
				LabeledIdx: e.labeled, Labels: e.labels,
				Unlabeled: e.unlabeled, Rand: r,
				Workers: cfg.Workers,
			}
			k := min(cfg.BatchSize, e.maxLabels-e.totalLabels)
			batch = cfg.Selector.Select(sctx, k)
			pt.CommitteeCreateTime = sctx.CommitteeCreate
			pt.ScoreTime = sctx.Score
			if err := ctx.Err(); err != nil {
				return finish(StopCancelled, err)
			}
			if len(batch) == 0 {
				reason = StopSelectorEmpty
			}
		}
		if cfg.OnIteration != nil && candidate != nil {
			cfg.OnIteration(candidate, &pt)
		}
		res.Curve = append(res.Curve, pt)
		if reason != StopNone {
			return finish(reason, nil)
		}
		emit(BatchSelected{Iteration: iter, Batch: batch,
			CommitteeCreate: pt.CommitteeCreateTime, Score: pt.ScoreTime})

		// Label the batch.
		if err := e.labelBatch(ctx, batch); err != nil {
			return finish(StopCancelled, err)
		}

		// Acceptance test (§5.2): precision of the candidate over the
		// Oracle-labeled examples it predicts as matches.
		predPos, truePos := 0, 0
		for j, i := range e.labeled {
			if candidate.Predict(pool.X[i]) {
				predPos++
				if e.labels[j] {
					truePos++
				}
			}
		}
		if predPos >= cfg.MinPositive && float64(truePos)/float64(predPos) >= cfg.Tau {
			accepted = append(accepted, candidate)
			res.Accepted++
			emit(CandidateAccepted{Iteration: iter, Accepted: res.Accepted})
			// Remove the candidate's positive predictions from both
			// labeled and unlabeled pools (Fig. 7); the next classifier
			// is learned from the uncovered remainder.
			keptLabeled := e.labeled[:0]
			keptLabels := e.labels[:0]
			for j, i := range e.labeled {
				if candidate.Predict(pool.X[i]) {
					continue
				}
				keptLabeled = append(keptLabeled, i)
				keptLabels = append(keptLabels, e.labels[j])
			}
			e.labeled, e.labels = keptLabeled, keptLabels
			keptUn := e.unlabeled[:0]
			for _, i := range e.unlabeled {
				if candidate.Predict(pool.X[i]) {
					continue
				}
				keptUn = append(keptUn, i)
			}
			e.unlabeled = keptUn
		}
	}
}

// ensembleRun is the labeled-set bookkeeping of one ensemble run. Unlike
// the base Session, the cumulative label count is tracked separately from
// the labeled list, which shrinks when an accepted classifier covers part
// of it.
type ensembleRun struct {
	pool   *Pool
	oracle oracle.Oracle
	cfg    EnsembleConfig
	rng    *rand.Rand

	maxLabels   int
	testIdx     []int
	labeled     []int
	labels      []bool
	unlabeled   []int
	totalLabels int
}

// seed mirrors the Session seed phase: split the universe, draw the
// initial sample, and keep drawing budget-clamped batches until both
// classes are present.
func (e *ensembleRun) seed(ctx context.Context) error {
	all := e.rng.Perm(e.pool.Len())
	var universe []int
	switch e.cfg.Mode {
	case HeldOut:
		cut := int(float64(e.pool.Len()) * e.cfg.HoldoutFrac)
		e.testIdx, universe = all[:cut], all[cut:]
	default:
		e.testIdx = make([]int, e.pool.Len())
		for i := range e.testIdx {
			e.testIdx[i] = i
		}
		universe = all
	}
	e.maxLabels = e.cfg.MaxLabels
	if e.maxLabels <= 0 || e.maxLabels > len(universe) {
		e.maxLabels = len(universe)
	}
	e.labeled = make([]int, 0, e.maxLabels)
	e.labels = make([]bool, 0, e.maxLabels)
	e.unlabeled = append([]int(nil), universe...)

	if err := e.labelFront(ctx, min(e.cfg.SeedLabels, e.maxLabels)); err != nil {
		return err
	}
	for !bothClasses(e.labels) && len(e.unlabeled) > 0 && e.totalLabels < e.maxLabels {
		if err := e.labelFront(ctx, min(e.cfg.BatchSize, e.maxLabels-e.totalLabels)); err != nil {
			return err
		}
	}
	return nil
}

func (e *ensembleRun) labelFront(ctx context.Context, k int) error {
	if k > len(e.unlabeled) {
		k = len(e.unlabeled)
	}
	for j := 0; j < k; j++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		i := e.unlabeled[0]
		e.unlabeled = e.unlabeled[1:]
		e.labeled = append(e.labeled, i)
		e.labels = append(e.labels, e.oracle.Label(e.pool.Pairs[i]))
		e.totalLabels++
	}
	return nil
}

func (e *ensembleRun) labelBatch(ctx context.Context, batch []int) error {
	taken := 0
	var err error
	for _, i := range batch {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
			break
		}
		e.labeled = append(e.labeled, i)
		e.labels = append(e.labels, e.oracle.Label(e.pool.Pairs[i]))
		e.totalLabels++
		taken++
	}
	removeFromPool(&e.unlabeled, batch[:taken])
	return err
}
