package core

import (
	"math/rand"
	"time"

	"github.com/alem/alem/internal/eval"
	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/oracle"
)

// EnsembleConfig configures the §5.2 active-ensemble enhancement: an
// ensemble of high-precision classifiers learned incrementally across
// active-learning iterations.
type EnsembleConfig struct {
	Config
	// Tau is the precision threshold a candidate must reach on the
	// Oracle-labeled examples it predicts as matches before it is
	// accepted into the ensemble (0.85 in the paper, uniformly).
	Tau float64
	// MinPositive is the minimum number of labeled predicted-matches
	// needed before the precision estimate is trusted.
	MinPositive int
	// Factory builds the candidate classifiers (linear SVMs in the
	// paper, but any margin-capable factory works — §5.2 notes the
	// enhancement applies to neural networks unchanged).
	Factory Factory
	// Selector scores the *uncovered* unlabeled pool; margin-based
	// selection in the paper (QBC's committee-creation cost is why the
	// paper confines ensembles to margin).
	Selector Selector
}

// EnsembleResult extends Result with the accepted classifier count that
// the paper annotates on Fig. 11 ("#AcceptedSVMs").
type EnsembleResult struct {
	Result
	Accepted int
}

// RunEnsemble executes active learning with an incrementally grown
// ensemble (Fig. 7): positives predicted by accepted classifiers are
// removed from both labeled and unlabeled pools, the next candidate is
// learned on the uncovered remainder, and the final prediction is the
// union of the accepted classifiers' (plus the current candidate's)
// positive predictions.
func RunEnsemble(pool *Pool, o oracle.Oracle, cfg EnsembleConfig) *EnsembleResult {
	cfg.Config = cfg.Config.withDefaults()
	if cfg.Tau == 0 {
		cfg.Tau = 0.85
	}
	if cfg.MinPositive == 0 {
		cfg.MinPositive = 3
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	all := r.Perm(pool.Len())
	var testIdx, universe []int
	switch cfg.Mode {
	case HeldOut:
		cut := int(float64(pool.Len()) * cfg.HoldoutFrac)
		testIdx, universe = all[:cut], all[cut:]
	default:
		testIdx = make([]int, pool.Len())
		for i := range testIdx {
			testIdx[i] = i
		}
		universe = all
	}
	maxLabels := cfg.MaxLabels
	if maxLabels <= 0 || maxLabels > len(universe) {
		maxLabels = len(universe)
	}

	var accepted []Learner

	labeled := make([]int, 0, maxLabels)
	labels := make([]bool, 0, maxLabels)
	unlabeled := append([]int(nil), universe...)
	take := func(k int) []int {
		if k > len(unlabeled) {
			k = len(unlabeled)
		}
		out := unlabeled[:k]
		unlabeled = unlabeled[k:]
		return out
	}
	for _, i := range take(min(cfg.SeedLabels, maxLabels)) {
		labeled = append(labeled, i)
		labels = append(labels, o.Label(pool.Pairs[i]))
	}
	totalLabels := len(labeled)
	for !bothClasses(labels) && len(unlabeled) > 0 && totalLabels < maxLabels {
		for _, i := range take(cfg.BatchSize) {
			labeled = append(labeled, i)
			labels = append(labels, o.Label(pool.Pairs[i]))
			totalLabels++
		}
	}

	ensemblePredict := func(candidate Learner, x feature.Vector) bool {
		for _, m := range accepted {
			if m.Predict(x) {
				return true
			}
		}
		return candidate != nil && candidate.Predict(x)
	}

	res := &EnsembleResult{Result: Result{TestSize: len(testIdx)}}
	for {
		// Train the candidate on the uncovered labeled remainder.
		trainX := make([]feature.Vector, 0, len(labeled))
		trainY := make([]bool, 0, len(labeled))
		for j, i := range labeled {
			trainX = append(trainX, pool.X[i])
			trainY = append(trainY, labels[j])
		}
		candidate := cfg.Factory(r.Int63())
		start := time.Now()
		if len(trainX) > 0 && bothClasses(trainY) {
			candidate.Train(trainX, trainY)
		} else {
			candidate = nil
		}
		trainTime := time.Since(start)

		// Evaluate the ensemble union on the test universe.
		cand := candidate
		pred := parallelPredict(func(x feature.Vector) bool {
			return ensemblePredict(cand, x)
		}, pool, testIdx)
		truth := make([]bool, len(testIdx))
		for j, i := range testIdx {
			truth[j] = pool.Truth[i]
		}
		conf := eval.Evaluate(pred, truth)
		pt := eval.Point{
			Labels:    totalLabels,
			F1:        conf.F1(),
			Precision: conf.Precision(),
			Recall:    conf.Recall(),
			TrainTime: trainTime,
		}

		var batch []int
		done := totalLabels >= maxLabels || len(unlabeled) == 0 ||
			(cfg.TargetF1 > 0 && pt.F1 >= cfg.TargetF1) || candidate == nil
		if !done {
			ctx := &SelectContext{
				Learner: candidate, Pool: pool,
				LabeledIdx: labeled, Labels: labels,
				Unlabeled: unlabeled, Rand: r,
			}
			k := min(cfg.BatchSize, maxLabels-totalLabels)
			batch = cfg.Selector.Select(ctx, k)
			pt.CommitteeCreateTime = ctx.CommitteeCreate
			pt.ScoreTime = ctx.Score
			done = len(batch) == 0
		}
		if cfg.OnIteration != nil && candidate != nil {
			cfg.OnIteration(candidate, &pt)
		}
		res.Curve = append(res.Curve, pt)
		if done {
			break
		}

		// Label the batch.
		inBatch := make(map[int]struct{}, len(batch))
		for _, i := range batch {
			inBatch[i] = struct{}{}
			labeled = append(labeled, i)
			labels = append(labels, o.Label(pool.Pairs[i]))
			totalLabels++
		}
		next := unlabeled[:0]
		for _, i := range unlabeled {
			if _, ok := inBatch[i]; !ok {
				next = append(next, i)
			}
		}
		unlabeled = next

		// Acceptance test (§5.2): precision of the candidate over the
		// Oracle-labeled examples it predicts as matches.
		predPos, truePos := 0, 0
		for j, i := range labeled {
			if candidate.Predict(pool.X[i]) {
				predPos++
				if labels[j] {
					truePos++
				}
			}
		}
		if predPos >= cfg.MinPositive && float64(truePos)/float64(predPos) >= cfg.Tau {
			accepted = append(accepted, candidate)
			res.Accepted++
			// Remove the candidate's positive predictions from both
			// labeled and unlabeled pools (Fig. 7); the next classifier
			// is learned from the uncovered remainder.
			keptLabeled := labeled[:0]
			keptLabels := labels[:0]
			for j, i := range labeled {
				if candidate.Predict(pool.X[i]) {
					continue
				}
				keptLabeled = append(keptLabeled, i)
				keptLabels = append(keptLabels, labels[j])
			}
			labeled, labels = keptLabeled, keptLabels
			keptUn := unlabeled[:0]
			for _, i := range unlabeled {
				if candidate.Predict(pool.X[i]) {
					continue
				}
				keptUn = append(keptUn, i)
			}
			unlabeled = keptUn
		}
	}
	res.LabelsUsed = totalLabels
	return res
}
