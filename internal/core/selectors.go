package core

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/rules"
)

// SelectContext is everything a selector may consult: the trained model,
// the pool, the current labeled/unlabeled split, and an RNG for
// tie-breaking. Selectors write their latency breakdown into it, matching
// the §3 latency metric (committee creation vs example scoring).
type SelectContext struct {
	// Ctx, when non-nil, carries the run's cancellation signal. Slow
	// selectors (QBC's committee training, large scoring sweeps) should
	// poll Cancelled and bail out with a nil batch; the engine discards
	// the batch of a cancelled iteration, so a partial result is never
	// recorded.
	Ctx context.Context

	Learner    Learner
	Pool       *Pool
	LabeledIdx []int
	Labels     []bool // aligned with LabeledIdx
	Unlabeled  []int
	Rand       *rand.Rand

	// Workers caps the goroutines a selector may fan out for committee
	// training and pool scoring; <= 0 means one per CPU, 1 forces the
	// serial path. The engine fills it from Config.Workers. Every worker
	// count produces bit-identical batches and RNG draw counts: selectors
	// pre-draw all randomness from Rand before fanning out and only merge
	// deterministic per-example results afterwards.
	Workers int

	// Filled by Select.
	CommitteeCreate time.Duration
	Score           time.Duration
}

// Cancelled reports whether the run's context has been cancelled. It is
// nil-safe so selectors work unchanged when invoked without an engine
// (direct Select calls in tests pass no context).
func (ctx *SelectContext) Cancelled() bool {
	return ctx.Ctx != nil && ctx.Ctx.Err() != nil
}

// Selector is the example-selector component of Fig. 2. Select returns up
// to k pool indices drawn from ctx.Unlabeled; an empty result signals the
// selector has no informative examples left (rule learners terminate on
// this).
type Selector interface {
	Name() string
	Select(ctx *SelectContext, k int) []int
}

// Random selects a uniformly random batch. It is the example selector of
// supervised learning in the paper's active-vs-supervised comparisons
// (Figs. 16, 17): random selection plus retraining equals supervised
// learning on a growing random sample.
type Random struct{}

// Name implements Selector.
func (Random) Name() string { return "random" }

// Select implements Selector.
func (Random) Select(ctx *SelectContext, k int) []int {
	start := time.Now()
	defer func() { ctx.Score = time.Since(start) }()
	n := len(ctx.Unlabeled)
	if n <= k {
		return append([]int(nil), ctx.Unlabeled...)
	}
	perm := ctx.Rand.Perm(n)[:k]
	out := make([]int, 0, k)
	for _, i := range perm {
		out = append(out, ctx.Unlabeled[i])
	}
	return out
}

// QBC is learner-agnostic query-by-committee (§4.1, Mozafari et al.): B
// bootstrap resamples of the labeled data train B committee members via
// the factory; disagreement over an unlabeled example is the variance
// (P/C)(1−P/C) of its positive votes, and the highest-variance examples
// are selected (ties broken randomly).
type QBC struct {
	B       int
	Factory Factory
	// UseEntropy scores disagreement with vote entropy instead of the
	// variance the paper substitutes for it (§4.1: "in lieu of entropy,
	// we use variance"). For binary committees both are symmetric and
	// peak at an even split, so they induce the SAME ranking —
	// TestQBCEntropyEquivalentToVariance pins that equivalence, which is
	// why the substitution is harmless.
	UseEntropy bool
}

// Name implements Selector.
func (q QBC) Name() string { return "qbc" }

// Select implements Selector.
func (q QBC) Select(ctx *SelectContext, k int) []int {
	if q.B <= 0 || q.Factory == nil || len(ctx.LabeledIdx) == 0 {
		return nil
	}
	// Committee creation (timed separately; it dominates QBC latency and
	// grows with the labeled set, Fig. 10a-b). All bootstrap draws and
	// factory seeds come out of the shared RNG *before* the fan-out, in
	// the exact order the serial loop consumed them, so draw counts and
	// trained members are bit-identical for every worker count.
	start := time.Now()
	if ctx.Cancelled() {
		ctx.CommitteeCreate = time.Since(start)
		return nil
	}
	n := len(ctx.LabeledIdx)
	resamples := make([][]int, q.B)
	seeds := make([]int64, q.B)
	for b := 0; b < q.B; b++ {
		draws := make([]int, n)
		for i := range draws {
			draws[i] = ctx.Rand.Intn(n)
		}
		resamples[b] = draws
		seeds[b] = ctx.Rand.Int63()
	}
	committee := make([]Learner, q.B)
	if err := parallelFor(ctx.Ctx, q.B, ctx.Workers, 2, func(b int) {
		X := make([]feature.Vector, 0, n)
		y := make([]bool, 0, n)
		for _, j := range resamples[b] {
			X = append(X, ctx.Pool.X[ctx.LabeledIdx[j]])
			y = append(y, ctx.Labels[j])
		}
		m := q.Factory(seeds[b])
		m.Train(X, y)
		committee[b] = m
	}); err != nil {
		ctx.CommitteeCreate = time.Since(start)
		return nil
	}
	ctx.CommitteeCreate = time.Since(start)

	// Example scoring: committee variance over every unlabeled example,
	// each independent of the others.
	start = time.Now()
	variance := make([]float64, len(ctx.Unlabeled))
	if err := parallelFor(ctx.Ctx, len(ctx.Unlabeled), ctx.Workers, parallelCutoff, func(j int) {
		pos := 0
		for _, m := range committee {
			if m.Predict(ctx.Pool.X[ctx.Unlabeled[j]]) {
				pos++
			}
		}
		p := float64(pos) / float64(q.B)
		if q.UseEntropy {
			variance[j] = binaryEntropy(p)
		} else {
			variance[j] = p * (1 - p)
		}
	}); err != nil {
		ctx.Score = time.Since(start)
		return nil
	}
	picked := variancePick(ctx.Rand, ctx.Unlabeled, variance, k)
	ctx.Score = time.Since(start)
	return picked
}

// binaryEntropy is -p log p - (1-p) log(1-p), 0 at p ∈ {0, 1}.
func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// variancePick selects the k highest-variance indices with random
// tie-breaking: candidates are shuffled first, then stably sorted by
// variance, so equal-variance examples come out in random order (§4.1).
func variancePick(r *rand.Rand, unlabeled []int, variance []float64, k int) []int {
	order := r.Perm(len(unlabeled))
	sort.SliceStable(order, func(a, b int) bool {
		return variance[order[a]] > variance[order[b]]
	})
	if k > len(order) {
		k = len(order)
	}
	out := make([]int, 0, k)
	for _, oi := range order[:k] {
		out = append(out, unlabeled[oi])
	}
	return out
}

// Margin is learner-aware margin-based selection (§4.2): the unlabeled
// examples with the smallest |margin| — closest to the decision boundary —
// are the most ambiguous. Requires a MarginLearner; ties are broken by
// pool index, making margin more deterministic than QBC, as §4.2.1 notes.
type Margin struct{}

// Name implements Selector.
func (Margin) Name() string { return "margin" }

// Select implements Selector.
func (Margin) Select(ctx *SelectContext, k int) []int {
	ml, ok := ctx.Learner.(MarginLearner)
	if !ok {
		return nil
	}
	start := time.Now()
	defer func() { ctx.Score = time.Since(start) }()
	s := make([]scored, len(ctx.Unlabeled))
	if err := parallelFor(ctx.Ctx, len(ctx.Unlabeled), ctx.Workers, parallelCutoff, func(j int) {
		i := ctx.Unlabeled[j]
		s[j] = scored{i, math.Abs(ml.Margin(ctx.Pool.X[i]))}
	}); err != nil {
		return nil
	}
	return smallestMargins(s, k)
}

// scored pairs a pool index with its selection score.
type scored struct {
	idx int
	m   float64
}

// smallestMargins returns the indices of the k smallest scores, ties
// broken by pool index — the fully deterministic ordering §4.2.1 credits
// margin with. The (score, idx) key is a total order, so the result does
// not depend on the input's arrangement.
func smallestMargins(s []scored, k int) []int {
	sort.Slice(s, func(a, b int) bool {
		if s[a].m != s[b].m {
			return s[a].m < s[b].m
		}
		return s[a].idx < s[b].idx
	})
	if k > len(s) {
		k = len(s)
	}
	out := make([]int, 0, k)
	for _, x := range s[:k] {
		out = append(out, x.idx)
	}
	return out
}

// BlockedMargin is Margin with the §5.1 blocking-dimension optimization
// for linear classifiers: the TopK dimensions with the largest |weight|
// are the blocking dimensions; an unlabeled example whose blocking
// dimensions are all zero has margin ≈ |bias| — unambiguous — so its full
// dot product is skipped entirely. TopK = Dim degenerates to plain
// margin (the paper's "margin(188Dim)" baseline).
type BlockedMargin struct {
	TopK int
}

// Name implements Selector.
func (BlockedMargin) Name() string { return "margin-blocked" }

// Select implements Selector.
func (bm BlockedMargin) Select(ctx *SelectContext, k int) []int {
	wl, ok := ctx.Learner.(WeightedLinear)
	if !ok {
		return nil
	}
	start := time.Now()
	defer func() { ctx.Score = time.Since(start) }()
	w := wl.Weights()
	if len(w) == 0 {
		return Random{}.Select(ctx, k)
	}
	topK := bm.TopK
	if topK <= 0 || topK > len(w) {
		topK = len(w)
	}
	dims := topWeightDims(w, topK)

	// Score in parallel: an example whose blocking dimensions are all
	// zero records a sentinel instead of paying the dot product; the
	// survivors are collected serially in pool order afterwards, so the
	// result is identical at every worker count.
	margins := make([]float64, len(ctx.Unlabeled))
	if err := parallelFor(ctx.Ctx, len(ctx.Unlabeled), ctx.Workers, parallelCutoff, func(j int) {
		x := ctx.Pool.X[ctx.Unlabeled[j]]
		for _, d := range dims {
			if x[d] != 0 {
				margins[j] = math.Abs(wl.Margin(x))
				return
			}
		}
		margins[j] = blockedSentinel // margin == |bias|: pruned without the dot product
	}); err != nil {
		return nil
	}
	var s []scored
	for j, i := range ctx.Unlabeled {
		if margins[j] != blockedSentinel {
			s = append(s, scored{i, margins[j]})
		}
	}
	if len(s) == 0 {
		// Degenerate: everything pruned; fall back to plain margin.
		return Margin{}.Select(ctx, k)
	}
	return smallestMargins(s, k)
}

// blockedSentinel marks an example pruned by the blocking dimensions.
// Margins are non-negative, so a negative value can never collide.
const blockedSentinel = -1.0

// topWeightDims returns the indices of the k largest |w| entries.
func topWeightDims(w []float64, k int) []int {
	idx := make([]int, len(w))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(w[idx[a]]) > math.Abs(w[idx[b]])
	})
	return idx[:k]
}

// ForestQBC is learner-aware QBC for tree ensembles (§4.1.1): the random
// forest's own trees are the committee — built during training, so
// selection pays only the example-scoring cost. Variance is the same
// (P/C)(1−P/C) disagreement measure.
type ForestQBC struct{}

// Name implements Selector.
func (ForestQBC) Name() string { return "forest-qbc" }

// Select implements Selector.
func (ForestQBC) Select(ctx *SelectContext, k int) []int {
	vl, ok := ctx.Learner.(VoteLearner)
	if !ok {
		return nil
	}
	start := time.Now()
	defer func() { ctx.Score = time.Since(start) }()
	variance, err := voteVariance(ctx, vl, ctx.Unlabeled)
	if err != nil {
		return nil
	}
	return variancePick(ctx.Rand, ctx.Unlabeled, variance, k)
}

// voteVariance computes the (P/C)(1−P/C) disagreement of a vote committee
// over the candidate examples, fanning out across ctx.Workers.
func voteVariance(ctx *SelectContext, vl VoteLearner, candidates []int) ([]float64, error) {
	variance := make([]float64, len(candidates))
	err := parallelFor(ctx.Ctx, len(candidates), ctx.Workers, parallelCutoff, func(j int) {
		pos, total := vl.Votes(ctx.Pool.X[candidates[j]])
		if total == 0 {
			return
		}
		p := float64(pos) / float64(total)
		variance[j] = p * (1 - p)
	})
	return variance, err
}

// LFPLFN adapts the rule learner's Likely-False-Positive / Negative
// heuristic (§4.3) to the Selector interface. It is compatible only with
// rules.Model — the framework's way of recording that this selector has
// no other children in the Fig. 2 hierarchy.
type LFPLFN struct{}

// Name implements Selector.
func (LFPLFN) Name() string { return "lfp-lfn" }

// Select implements Selector. Scoring polls the run's cancellation
// signal on the standard stride, so rule-learner runs respond to
// SIGINT/deadlines like every other selector.
func (LFPLFN) Select(ctx *SelectContext, k int) []int {
	m, ok := ctx.Learner.(*rules.Model)
	if !ok {
		return nil
	}
	start := time.Now()
	defer func() { ctx.Score = time.Since(start) }()
	return m.SelectLFPLFNCancel(ctx.Pool.X, ctx.Unlabeled, k, ctx.Cancelled)
}
