package core

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/rules"
)

// SelectContext is everything a selector may consult: the trained model,
// the pool, the current labeled/unlabeled split, and an RNG for
// tie-breaking. Selectors write their latency breakdown into it, matching
// the §3 latency metric (committee creation vs example scoring).
type SelectContext struct {
	// Ctx, when non-nil, carries the run's cancellation signal. Slow
	// selectors (QBC's committee training, large scoring sweeps) should
	// poll Cancelled and bail out with a nil batch; the engine discards
	// the batch of a cancelled iteration, so a partial result is never
	// recorded.
	Ctx context.Context

	Learner    Learner
	Pool       *Pool
	LabeledIdx []int
	Labels     []bool // aligned with LabeledIdx
	Unlabeled  []int
	Rand       *rand.Rand

	// Filled by Select.
	CommitteeCreate time.Duration
	Score           time.Duration
}

// Cancelled reports whether the run's context has been cancelled. It is
// nil-safe so selectors work unchanged when invoked without an engine
// (direct Select calls in tests pass no context).
func (ctx *SelectContext) Cancelled() bool {
	return ctx.Ctx != nil && ctx.Ctx.Err() != nil
}

// Selector is the example-selector component of Fig. 2. Select returns up
// to k pool indices drawn from ctx.Unlabeled; an empty result signals the
// selector has no informative examples left (rule learners terminate on
// this).
type Selector interface {
	Name() string
	Select(ctx *SelectContext, k int) []int
}

// Random selects a uniformly random batch. It is the example selector of
// supervised learning in the paper's active-vs-supervised comparisons
// (Figs. 16, 17): random selection plus retraining equals supervised
// learning on a growing random sample.
type Random struct{}

// Name implements Selector.
func (Random) Name() string { return "random" }

// Select implements Selector.
func (Random) Select(ctx *SelectContext, k int) []int {
	start := time.Now()
	defer func() { ctx.Score = time.Since(start) }()
	n := len(ctx.Unlabeled)
	if n <= k {
		return append([]int(nil), ctx.Unlabeled...)
	}
	perm := ctx.Rand.Perm(n)[:k]
	out := make([]int, 0, k)
	for _, i := range perm {
		out = append(out, ctx.Unlabeled[i])
	}
	return out
}

// QBC is learner-agnostic query-by-committee (§4.1, Mozafari et al.): B
// bootstrap resamples of the labeled data train B committee members via
// the factory; disagreement over an unlabeled example is the variance
// (P/C)(1−P/C) of its positive votes, and the highest-variance examples
// are selected (ties broken randomly).
type QBC struct {
	B       int
	Factory Factory
	// UseEntropy scores disagreement with vote entropy instead of the
	// variance the paper substitutes for it (§4.1: "in lieu of entropy,
	// we use variance"). For binary committees both are symmetric and
	// peak at an even split, so they induce the SAME ranking —
	// TestQBCEntropyEquivalentToVariance pins that equivalence, which is
	// why the substitution is harmless.
	UseEntropy bool
}

// Name implements Selector.
func (q QBC) Name() string { return "qbc" }

// Select implements Selector.
func (q QBC) Select(ctx *SelectContext, k int) []int {
	if q.B <= 0 || q.Factory == nil || len(ctx.LabeledIdx) == 0 {
		return nil
	}
	// Committee creation (timed separately; it dominates QBC latency and
	// grows with the labeled set, Fig. 10a-b).
	start := time.Now()
	committee := make([]Learner, q.B)
	n := len(ctx.LabeledIdx)
	for b := 0; b < q.B; b++ {
		if ctx.Cancelled() {
			ctx.CommitteeCreate = time.Since(start)
			return nil
		}
		X := make([]feature.Vector, 0, n)
		y := make([]bool, 0, n)
		for i := 0; i < n; i++ {
			j := ctx.Rand.Intn(n)
			X = append(X, ctx.Pool.X[ctx.LabeledIdx[j]])
			y = append(y, ctx.Labels[j])
		}
		m := q.Factory(ctx.Rand.Int63())
		m.Train(X, y)
		committee[b] = m
	}
	ctx.CommitteeCreate = time.Since(start)

	// Example scoring: committee variance over every unlabeled example.
	start = time.Now()
	variance := make([]float64, len(ctx.Unlabeled))
	for j, i := range ctx.Unlabeled {
		if j%cancelCheckStride == 0 && ctx.Cancelled() {
			ctx.Score = time.Since(start)
			return nil
		}
		pos := 0
		for _, m := range committee {
			if m.Predict(ctx.Pool.X[i]) {
				pos++
			}
		}
		p := float64(pos) / float64(q.B)
		if q.UseEntropy {
			variance[j] = binaryEntropy(p)
		} else {
			variance[j] = p * (1 - p)
		}
	}
	picked := variancePick(ctx.Rand, ctx.Unlabeled, variance, k)
	ctx.Score = time.Since(start)
	return picked
}

// binaryEntropy is -p log p - (1-p) log(1-p), 0 at p ∈ {0, 1}.
func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// variancePick selects the k highest-variance indices with random
// tie-breaking: candidates are shuffled first, then stably sorted by
// variance, so equal-variance examples come out in random order (§4.1).
func variancePick(r *rand.Rand, unlabeled []int, variance []float64, k int) []int {
	order := r.Perm(len(unlabeled))
	sort.SliceStable(order, func(a, b int) bool {
		return variance[order[a]] > variance[order[b]]
	})
	if k > len(order) {
		k = len(order)
	}
	out := make([]int, 0, k)
	for _, oi := range order[:k] {
		out = append(out, unlabeled[oi])
	}
	return out
}

// Margin is learner-aware margin-based selection (§4.2): the unlabeled
// examples with the smallest |margin| — closest to the decision boundary —
// are the most ambiguous. Requires a MarginLearner; ties are broken by
// pool index, making margin more deterministic than QBC, as §4.2.1 notes.
type Margin struct{}

// Name implements Selector.
func (Margin) Name() string { return "margin" }

// Select implements Selector.
func (Margin) Select(ctx *SelectContext, k int) []int {
	ml, ok := ctx.Learner.(MarginLearner)
	if !ok {
		return nil
	}
	start := time.Now()
	defer func() { ctx.Score = time.Since(start) }()
	type scored struct {
		idx int
		m   float64
	}
	s := make([]scored, 0, len(ctx.Unlabeled))
	for _, i := range ctx.Unlabeled {
		s = append(s, scored{i, math.Abs(ml.Margin(ctx.Pool.X[i]))})
	}
	sort.Slice(s, func(a, b int) bool {
		if s[a].m != s[b].m {
			return s[a].m < s[b].m
		}
		return s[a].idx < s[b].idx
	})
	if k > len(s) {
		k = len(s)
	}
	out := make([]int, 0, k)
	for _, x := range s[:k] {
		out = append(out, x.idx)
	}
	return out
}

// BlockedMargin is Margin with the §5.1 blocking-dimension optimization
// for linear classifiers: the TopK dimensions with the largest |weight|
// are the blocking dimensions; an unlabeled example whose blocking
// dimensions are all zero has margin ≈ |bias| — unambiguous — so its full
// dot product is skipped entirely. TopK = Dim degenerates to plain
// margin (the paper's "margin(188Dim)" baseline).
type BlockedMargin struct {
	TopK int
}

// Name implements Selector.
func (BlockedMargin) Name() string { return "margin-blocked" }

// Select implements Selector.
func (bm BlockedMargin) Select(ctx *SelectContext, k int) []int {
	wl, ok := ctx.Learner.(WeightedLinear)
	if !ok {
		return nil
	}
	start := time.Now()
	defer func() { ctx.Score = time.Since(start) }()
	w := wl.Weights()
	if len(w) == 0 {
		return Random{}.Select(ctx, k)
	}
	topK := bm.TopK
	if topK <= 0 || topK > len(w) {
		topK = len(w)
	}
	dims := topWeightDims(w, topK)

	type scored struct {
		idx int
		m   float64
	}
	var s []scored
	for _, i := range ctx.Unlabeled {
		x := ctx.Pool.X[i]
		blocked := true
		for _, d := range dims {
			if x[d] != 0 {
				blocked = false
				break
			}
		}
		if blocked {
			continue // margin == |bias|: prune without the dot product
		}
		s = append(s, scored{i, math.Abs(wl.Margin(x))})
	}
	if len(s) == 0 {
		// Degenerate: everything pruned; fall back to plain margin.
		return Margin{}.Select(ctx, k)
	}
	sort.Slice(s, func(a, b int) bool {
		if s[a].m != s[b].m {
			return s[a].m < s[b].m
		}
		return s[a].idx < s[b].idx
	})
	if k > len(s) {
		k = len(s)
	}
	out := make([]int, 0, k)
	for _, x := range s[:k] {
		out = append(out, x.idx)
	}
	return out
}

// topWeightDims returns the indices of the k largest |w| entries.
func topWeightDims(w []float64, k int) []int {
	idx := make([]int, len(w))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(w[idx[a]]) > math.Abs(w[idx[b]])
	})
	return idx[:k]
}

// ForestQBC is learner-aware QBC for tree ensembles (§4.1.1): the random
// forest's own trees are the committee — built during training, so
// selection pays only the example-scoring cost. Variance is the same
// (P/C)(1−P/C) disagreement measure.
type ForestQBC struct{}

// Name implements Selector.
func (ForestQBC) Name() string { return "forest-qbc" }

// Select implements Selector.
func (ForestQBC) Select(ctx *SelectContext, k int) []int {
	vl, ok := ctx.Learner.(VoteLearner)
	if !ok {
		return nil
	}
	start := time.Now()
	defer func() { ctx.Score = time.Since(start) }()
	variance := make([]float64, len(ctx.Unlabeled))
	for j, i := range ctx.Unlabeled {
		pos, total := vl.Votes(ctx.Pool.X[i])
		if total == 0 {
			continue
		}
		p := float64(pos) / float64(total)
		variance[j] = p * (1 - p)
	}
	return variancePick(ctx.Rand, ctx.Unlabeled, variance, k)
}

// LFPLFN adapts the rule learner's Likely-False-Positive / Negative
// heuristic (§4.3) to the Selector interface. It is compatible only with
// rules.Model — the framework's way of recording that this selector has
// no other children in the Fig. 2 hierarchy.
type LFPLFN struct{}

// Name implements Selector.
func (LFPLFN) Name() string { return "lfp-lfn" }

// Select implements Selector.
func (LFPLFN) Select(ctx *SelectContext, k int) []int {
	m, ok := ctx.Learner.(*rules.Model)
	if !ok {
		return nil
	}
	start := time.Now()
	defer func() { ctx.Score = time.Since(start) }()
	return m.SelectLFPLFN(ctx.Pool.X, ctx.Unlabeled, k)
}
