package core

import (
	"context"
	"math"
	"math/rand"
	"time"

	"github.com/alem/alem/internal/rules"
)

// SelectContext is everything a selector may consult: the trained model,
// the pool, the current labeled/unlabeled split, and an RNG for
// tie-breaking. Selectors write their latency breakdown into it, matching
// the §3 latency metric (committee creation vs example scoring).
type SelectContext struct {
	// Ctx, when non-nil, carries the run's cancellation signal. Slow
	// selectors (QBC's committee training, large scoring sweeps) should
	// poll Cancelled and bail out with a nil batch; the engine discards
	// the batch of a cancelled iteration, so a partial result is never
	// recorded.
	Ctx context.Context

	Learner    Learner
	Pool       *Pool
	LabeledIdx []int
	Labels     []bool // aligned with LabeledIdx
	Unlabeled  []int
	Rand       *rand.Rand

	// Workers caps the goroutines a selector may fan out for committee
	// training and pool scoring; <= 0 means one per CPU, 1 forces the
	// serial path. The engine fills it from Config.Workers. Every worker
	// count produces bit-identical batches and RNG draw counts: selectors
	// pre-draw all randomness from Rand before fanning out and only merge
	// deterministic per-example results afterwards.
	Workers int

	// Filled by Select.
	CommitteeCreate time.Duration
	Score           time.Duration
}

// Cancelled reports whether the run's context has been cancelled. It is
// nil-safe so selectors work unchanged when invoked without an engine
// (direct Select calls in tests pass no context).
func (ctx *SelectContext) Cancelled() bool {
	return ctx.Ctx != nil && ctx.Ctx.Err() != nil
}

// Selector is the example-selector component of Fig. 2. Select returns up
// to k pool indices drawn from ctx.Unlabeled; an empty result signals the
// selector has no informative examples left (rule learners terminate on
// this).
//
// Every built-in selector is a Scorer×Picker composition (strategy.go)
// behind its exported type; the concrete types below are kept for
// API stability and for carrying their strategy parameters. Each exposes
// its decomposition via a Composition method, so callers can re-pair its
// informativeness measure with a different batch picker.
type Selector interface {
	Name() string
	Select(ctx *SelectContext, k int) []int
}

// Random selects a uniformly random batch. It is the example selector of
// supervised learning in the paper's active-vs-supervised comparisons
// (Figs. 16, 17): random selection plus retraining equals supervised
// learning on a growing random sample.
type Random struct{}

// Name implements Selector.
func (Random) Name() string { return "random" }

// Composition returns the selector's Scorer×Picker decomposition.
func (r Random) Composition() ComposedSelector {
	return ComposedSelector{ID: r.Name(), Scorer: UniformScorer{}, Picker: RandomPicker{}}
}

// Select implements Selector.
func (r Random) Select(ctx *SelectContext, k int) []int {
	return r.Composition().Select(ctx, k)
}

// QBC is learner-agnostic query-by-committee (§4.1, Mozafari et al.): B
// bootstrap resamples of the labeled data train B committee members via
// the factory; disagreement over an unlabeled example is the variance
// (P/C)(1−P/C) of its positive votes, and the highest-variance examples
// are selected (ties broken randomly).
type QBC struct {
	B       int
	Factory Factory
	// UseEntropy scores disagreement with vote entropy instead of the
	// variance the paper substitutes for it (§4.1: "in lieu of entropy,
	// we use variance"). For binary committees both are symmetric and
	// peak at an even split, so they induce the SAME ranking —
	// TestQBCEntropyEquivalentToVariance pins that equivalence, which is
	// why the substitution is harmless.
	UseEntropy bool
}

// Name implements Selector.
func (q QBC) Name() string { return "qbc" }

// Composition returns the selector's Scorer×Picker decomposition.
func (q QBC) Composition() ComposedSelector {
	return ComposedSelector{
		ID:     q.Name(),
		Scorer: QBCScorer{B: q.B, Factory: q.Factory, UseEntropy: q.UseEntropy},
		Picker: ShuffledTopPicker{},
	}
}

// Select implements Selector.
func (q QBC) Select(ctx *SelectContext, k int) []int {
	return q.Composition().Select(ctx, k)
}

// binaryEntropy is -p log p - (1-p) log(1-p), 0 at p ∈ {0, 1}.
func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// Margin is learner-aware margin-based selection (§4.2): the unlabeled
// examples with the smallest |margin| — closest to the decision boundary —
// are the most ambiguous. Requires a MarginLearner; ties are broken by
// pool index, making margin more deterministic than QBC, as §4.2.1 notes.
type Margin struct{}

// Name implements Selector.
func (Margin) Name() string { return "margin" }

// Composition returns the selector's Scorer×Picker decomposition.
func (m Margin) Composition() ComposedSelector {
	return ComposedSelector{ID: m.Name(), Scorer: MarginScorer{}, Picker: TopPicker{}}
}

// Select implements Selector.
func (m Margin) Select(ctx *SelectContext, k int) []int {
	return m.Composition().Select(ctx, k)
}

// BlockedMargin is Margin with the §5.1 blocking-dimension optimization
// for linear classifiers: the TopK dimensions with the largest |weight|
// are the blocking dimensions; an unlabeled example whose blocking
// dimensions are all zero has margin ≈ |bias| — unambiguous — so its full
// dot product is skipped entirely. TopK = Dim degenerates to plain
// margin (the paper's "margin(188Dim)" baseline).
type BlockedMargin struct {
	TopK int
}

// Name implements Selector.
func (BlockedMargin) Name() string { return "margin-blocked" }

// Composition returns the selector's Scorer×Picker decomposition.
func (bm BlockedMargin) Composition() ComposedSelector {
	return ComposedSelector{
		ID:     bm.Name(),
		Scorer: BlockedMarginScorer{TopK: bm.TopK},
		Picker: TopPicker{},
	}
}

// Select implements Selector.
func (bm BlockedMargin) Select(ctx *SelectContext, k int) []int {
	return bm.Composition().Select(ctx, k)
}

// ForestQBC is learner-aware QBC for tree ensembles (§4.1.1): the random
// forest's own trees are the committee — built during training, so
// selection pays only the example-scoring cost. Variance is the same
// (P/C)(1−P/C) disagreement measure.
type ForestQBC struct{}

// Name implements Selector.
func (ForestQBC) Name() string { return "forest-qbc" }

// Composition returns the selector's Scorer×Picker decomposition.
func (f ForestQBC) Composition() ComposedSelector {
	return ComposedSelector{ID: f.Name(), Scorer: VoteScorer{}, Picker: ShuffledTopPicker{}}
}

// Select implements Selector.
func (f ForestQBC) Select(ctx *SelectContext, k int) []int {
	return f.Composition().Select(ctx, k)
}

// LFPLFN adapts the rule learner's Likely-False-Positive / Negative
// heuristic (§4.3) to the Selector interface. It is compatible only with
// rules.Model — the framework's way of recording that this selector has
// no other children in the Fig. 2 hierarchy. Composing it with any other
// learner is a configuration error: CompatibleWith reports it as a typed
// *IncompatibleError, and session construction rejects it before the
// seed phase spends any label budget.
type LFPLFN struct{}

// Name implements Selector.
func (LFPLFN) Name() string { return "lfp-lfn" }

// Composition returns the selector's Scorer×Picker decomposition: the
// LFP/LFN interleave rank as the informativeness measure, picked
// deterministically (the interleave is prefix-stable, so top-k of the
// full ranking is exactly the §4.3 batch).
func (l LFPLFN) Composition() ComposedSelector {
	return ComposedSelector{ID: l.Name(), Scorer: LFPLFNScorer{}, Picker: TopPicker{}}
}

// Select implements Selector. Scoring polls the run's cancellation
// signal on the standard stride, so rule-learner runs respond to
// SIGINT/deadlines like every other selector.
func (l LFPLFN) Select(ctx *SelectContext, k int) []int {
	return l.Composition().Select(ctx, k)
}

// CompatibleWith implements LearnerChecker: LFP/LFN works only with the
// rule learner, whose DNF it relaxes to mine likely false negatives.
func (l LFPLFN) CompatibleWith(lr Learner) error {
	if _, ok := lr.(*rules.Model); ok {
		return nil
	}
	name := "<nil>"
	if lr != nil {
		name = lr.Name()
	}
	return &IncompatibleError{
		Selector: l.Name(),
		Learner:  name,
		Needs:    "the DNF rule learner (rules.Model), whose Rule-Minus relaxation mines likely false negatives",
	}
}
