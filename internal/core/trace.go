package core

import (
	"github.com/alem/alem/internal/obs"
)

// NewTraceObserver adapts an obs.Trace to the Session event stream:
// every PhaseDone event becomes one span, so a run driven with this
// observer attached produces a complete phase-level manifest — one span
// for the seed bootstrap, then train/evaluate/select per iteration and
// label per Oracle round. Other events pass through untouched, so the
// observer composes with progress printers and event logs.
func NewTraceObserver(tr *obs.Trace) Observer {
	return ObserverFunc(func(e Event) {
		pd, ok := e.(PhaseDone)
		if !ok {
			return
		}
		tr.Record(pd.Phase, pd.Iteration, pd.Elapsed, map[string]float64{
			"labels":         float64(pd.Labels),
			"labels_delta":   float64(pd.LabelsDelta),
			"batch":          float64(pd.Batch),
			"workers":        float64(pd.Workers),
			"pool_remaining": float64(pd.PoolRemaining),
		})
	})
}
