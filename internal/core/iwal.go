package core

import (
	"math"
	"time"
)

// IWAL is a simplified importance-weighted active learning selector
// (Beygelzimer, Dasgupta & Langford, ICML 2009), one of the alternative
// algorithms the paper's related work discusses (§2) and dismisses for
// EM because it "incurs excessive labels in practice". It is implemented
// here as an extension precisely so that claim can be measured: instead
// of deterministically taking the k most ambiguous examples, IWAL flips
// a biased coin per example with acceptance probability
//
//	p(x) = PMin + (1 − PMin) · ambiguity(x)
//
// where ambiguity is the learner's normalized inverse margin. Every
// example keeps a floor probability PMin, so label mass is spent on
// unambiguous pairs too — the source of the label overhead the paper
// refers to. (The full IWAL also importance-weights the training loss by
// 1/p; with the benchmark's retrain-from-scratch protocol the weights
// are dropped, which only makes the comparison more favorable to IWAL.)
type IWAL struct {
	// PMin is the floor acceptance probability (default 0.1).
	PMin float64
}

// Name implements Selector.
func (IWAL) Name() string { return "iwal" }

// Select implements Selector. It requires a MarginLearner.
func (iw IWAL) Select(ctx *SelectContext, k int) []int {
	ml, ok := ctx.Learner.(MarginLearner)
	if !ok {
		return nil
	}
	pmin := iw.PMin
	if pmin <= 0 {
		pmin = 0.1
	}
	start := time.Now()
	defer func() { ctx.Score = time.Since(start) }()

	// Normalize margins into [0,1] ambiguity scores. The margin sweep
	// fans out; the max reduction and the sequential rejection sampling
	// below (which draws from the shared RNG) stay serial.
	margins := make([]float64, len(ctx.Unlabeled))
	if err := parallelFor(ctx.Ctx, len(ctx.Unlabeled), ctx.Workers, parallelCutoff, func(j int) {
		margins[j] = math.Abs(ml.Margin(ctx.Pool.X[ctx.Unlabeled[j]]))
	}); err != nil {
		return nil
	}
	maxM := 0.0
	for _, m := range margins {
		if m > maxM {
			maxM = m
		}
	}
	if maxM == 0 {
		maxM = 1
	}
	// Rejection-sample in random order until k accepts (or the pool is
	// exhausted): each example is accepted with its own probability, so
	// low-information examples still consume label budget at rate PMin.
	out := make([]int, 0, k)
	for n, j := range ctx.Rand.Perm(len(ctx.Unlabeled)) {
		if len(out) == k {
			break
		}
		if n%cancelCheckStride == 0 && ctx.Cancelled() {
			return nil
		}
		ambiguity := 1 - margins[j]/maxM
		p := pmin + (1-pmin)*ambiguity
		if ctx.Rand.Float64() < p {
			out = append(out, ctx.Unlabeled[j])
		}
	}
	return out
}
