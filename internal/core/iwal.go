package core

// IWAL is a simplified importance-weighted active learning selector
// (Beygelzimer, Dasgupta & Langford, ICML 2009), one of the alternative
// algorithms the paper's related work discusses (§2) and dismisses for
// EM because it "incurs excessive labels in practice". It is implemented
// here as an extension precisely so that claim can be measured: instead
// of deterministically taking the k most ambiguous examples, IWAL flips
// a biased coin per example with acceptance probability
//
//	p(x) = PMin + (1 − PMin) · ambiguity(x)
//
// where ambiguity is the learner's normalized inverse margin. Every
// example keeps a floor probability PMin, so label mass is spent on
// unambiguous pairs too — the source of the label overhead the paper
// refers to. (The full IWAL also importance-weights the training loss by
// 1/p; with the benchmark's retrain-from-scratch protocol the weights
// are dropped, which only makes the comparison more favorable to IWAL.)
type IWAL struct {
	// PMin is the floor acceptance probability (default 0.1).
	PMin float64
}

// Name implements Selector.
func (IWAL) Name() string { return "iwal" }

// Composition returns the selector's Scorer×Picker decomposition:
// normalized-inverse-margin ambiguity scored in a parallel sweep,
// rejection-sampled serially in random order.
func (iw IWAL) Composition() ComposedSelector {
	return ComposedSelector{
		ID:     iw.Name(),
		Scorer: AmbiguityScorer{},
		Picker: AcceptanceSamplePicker{PMin: iw.PMin},
	}
}

// Select implements Selector. It requires a MarginLearner.
func (iw IWAL) Select(ctx *SelectContext, k int) []int {
	return iw.Composition().Select(ctx, k)
}
