package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/alem/alem/internal/eval"
	"github.com/alem/alem/internal/oracle"
	"github.com/alem/alem/internal/resilience"
)

// Snapshot is a serializable checkpoint of a Session: the labeled set,
// the RNG position (draw counters over the seeded source), the stability
// counters and the curve so far. A snapshot is always a consistent,
// resumable state; one taken between Step calls (or after a run cancelled
// at a phase boundary) is exact — Restore followed by Run produces the
// same curve the uninterrupted run would have — because
//
//   - the RNG is replayed draw-for-draw on the same seed,
//   - the learner is retrained on every historical labeled prefix (the
//     curve records each iteration's training-set size), reproducing both
//     its model state and its internal RNG position under the benchmark's
//     retrain-from-scratch protocol.
//
// The one exception is a run cancelled mid-way through labeling a batch:
// the already-paid Oracle labels are kept (they cost money; rolling them
// back would discard them), so the resumed run continues from a labeled
// set the uninterrupted run never had — a consistent but different
// trajectory. RestoreWithWAL closes even that gap: with a label WAL
// attached, the resumed run re-selects the same batch deterministically
// and consumes the paid-for labels from the WAL instead of re-querying,
// which puts it back on the uninterrupted trajectory exactly.
//
// The pool, learner, selector and Oracle are wiring, not state: Restore
// takes them as arguments. Pass a learner freshly constructed with the
// same constructor seed as the original. An Oracle implementing
// oracle.Stateful (Noisy does) has its random position captured in
// OracleDraws and replayed by Restore, so pass it freshly constructed
// with its original seed too; an oracle with hidden state that does not
// implement Stateful is outside the snapshot's scope, and resuming with
// one reproduces the labeled set but not future noise draws.
type Snapshot struct {
	// Config is the run's protocol with defaults applied. OnIteration is
	// a function and is not serialized; re-set it after Restore if used.
	Config Config `json:"config"`
	// Draws63 and Draws64 are the RNG draw counters.
	Draws63 uint64 `json:"draws63"`
	Draws64 uint64 `json:"draws64"`
	// OracleDraws is the oracle's own random position (0 when the oracle
	// exposes none — see oracle.Stateful).
	OracleDraws uint64 `json:"oracle_draws,omitempty"`
	// Seeded records whether the seed phase has run.
	Seeded    bool `json:"seeded"`
	Iteration int  `json:"iteration"`
	MaxLabels int  `json:"max_labels"`
	// TestIdx is the evaluation universe; Labeled/Labels/Unlabeled are
	// the labeled-set bookkeeping, in draw order.
	TestIdx   []int  `json:"test_idx"`
	Labeled   []int  `json:"labeled"`
	Labels    []bool `json:"labels"`
	Unlabeled []int  `json:"unlabeled"`
	// PrevPred and StableIters are the stability-stop counters.
	PrevPred    []bool `json:"prev_pred,omitempty"`
	StableIters int    `json:"stable_iters"`
	// Curve is the partial learning curve.
	Curve eval.Curve `json:"curve"`
	// Ledger is a batch session's cost accounting, omitted when trivial
	// (nothing spent, nothing abstained) so free batch sessions snapshot
	// byte-identically to classic ones; Restore derives the trivial
	// ledger from the labeled set.
	Ledger *CostLedger `json:"ledger,omitempty"`
	// AbstainCounts is the per-pending-pair billed-abstention tally the
	// starvation cutoff is checked against.
	AbstainCounts map[int]int `json:"abstain_counts,omitempty"`
}

// Snapshot captures the session's current state. Call between Step
// invocations (or after Run returned, cancelled or not) for an exact
// checkpoint; the receiver keeps running independently afterwards.
func (s *Session) Snapshot() *Snapshot {
	var oracleDraws uint64
	if s.stateful != nil {
		oracleDraws = s.stateful.Draws()
	}
	var ledger *CostLedger
	if s.batcher != nil && !s.ledger.trivial() {
		l := s.ledger
		ledger = &l
	}
	var abstains map[int]int
	if len(s.abstains) > 0 {
		abstains = make(map[int]int, len(s.abstains))
		for i, n := range s.abstains {
			abstains[i] = n
		}
	}
	return &Snapshot{
		Config:      s.cfg,
		Draws63:     s.src.n63,
		Draws64:     s.src.n64,
		OracleDraws: oracleDraws,
		Seeded:      s.seeded,
		Iteration:   s.iter,
		MaxLabels:   s.maxLabels,
		TestIdx:     append([]int(nil), s.testIdx...),
		Labeled:     append([]int(nil), s.labeled...),
		Labels:      append([]bool(nil), s.labels...),
		Unlabeled:   append([]int(nil), s.unlabeled...),
		PrevPred:    append([]bool(nil), s.prevPred...),
		StableIters:   s.stableIters,
		Curve:         append(eval.Curve(nil), s.res.Curve...),
		Ledger:        ledger,
		AbstainCounts: abstains,
	}
}

// Encode serializes the snapshot as JSON.
func (sn *Snapshot) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sn)
}

// ReadSnapshot deserializes a snapshot written by Encode. A truncated or
// empty file — the signature of a non-atomic write interrupted by a
// crash — is reported as such, pointing the operator at the intact
// previous checkpoint instead of a JSON syntax error.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var sn Snapshot
	if err := json.NewDecoder(r).Decode(&sn); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("core: snapshot is truncated or empty (interrupted write?): %w", err)
		}
		return nil, fmt.Errorf("core: reading snapshot: %w", err)
	}
	return &sn, nil
}

// Restore rebuilds a Session from a snapshot so an interrupted run can
// continue where it left off. The learner must be freshly constructed
// with the same constructor seed as the original run's; Restore replays
// every historical training on it (one per curve point, on the recorded
// labeled prefix), which reproduces the learner's model and internal RNG
// state exactly — see Snapshot for why the resumed curve is then
// identical to an uninterrupted run.
func Restore(pool *Pool, learner Learner, sel Selector, o oracle.Oracle, sn *Snapshot) (*Session, error) {
	return RestoreWithWAL(pool, learner, sel, resilience.Wrap(o), sn, nil)
}

// RestoreWithWAL rebuilds a Session from a snapshot plus the label WAL
// the crashed run was writing through (see LabelSink). WAL records up to
// the snapshot's labeled set are cross-checked against it; records past
// it — labels the dead process paid for after its last checkpoint — are
// cached, and the resumed run consumes them instead of re-querying the
// labeler. Because selection is deterministic (the RNG position and
// learner state are replayed exactly), the resumed run re-selects the
// same pairs the dead one did and the cached labels land on the same
// indices, making the resumed trajectory bit-identical to an
// uninterrupted run — provided no pair exhausted its retry budget before
// the checkpoint (see resilience.FaultyOracle).
//
// Attach the same WAL with SetLabelSink afterwards: its appends are
// idempotent, so the replayed grants no-op and fresh grants extend it.
func RestoreWithWAL(pool *Pool, learner Learner, sel Selector, fo resilience.FallibleOracle, sn *Snapshot, wal []resilience.LabelRecord) (*Session, error) {
	if err := sn.validate(pool); err != nil {
		return nil, err
	}
	s, err := NewFallibleSession(pool, learner, sel, fo, sn.Config)
	if err != nil {
		return nil, err
	}
	if err := restoreInto(s, pool, learner, sn, wal); err != nil {
		return nil, err
	}
	return s, nil
}

// RestoreBatchWithWAL is RestoreWithWAL for sessions built with
// NewBatchSession: the cost ledger and abstain tallies are restored
// alongside the labeled set, and WAL records past the checkpoint —
// including billed abstentions — are cached for consumption, so the
// resumed run re-charges exactly what the crashed one paid and never
// pays for an answer twice. Pass the batch oracle freshly constructed
// with its original seed; its per-pair attempt ordinals (when it
// implements oracle.PairAdvancer) are realigned from the WAL. A
// warm-start session additionally needs SetWarmStart re-attached before
// Step.
func RestoreBatchWithWAL(pool *Pool, learner Learner, sel Selector, bo oracle.BatchOracle, sn *Snapshot, wal []resilience.LabelRecord) (*Session, error) {
	if err := sn.validate(pool); err != nil {
		return nil, err
	}
	s, err := NewBatchSession(pool, learner, sel, bo, sn.Config)
	if err != nil {
		return nil, err
	}
	if err := restoreInto(s, pool, learner, sn, wal); err != nil {
		return nil, err
	}
	return s, nil
}

// restoreInto rebuilds a freshly constructed session's state from a
// snapshot plus the crashed run's WAL — the shared tail of
// RestoreWithWAL and RestoreBatchWithWAL.
func restoreInto(s *Session, pool *Pool, learner Learner, sn *Snapshot, wal []resilience.LabelRecord) error {
	if s.batcher != nil {
		if sn.Ledger != nil {
			s.ledger = *sn.Ledger
		} else {
			// A trivial ledger is omitted from snapshots; every labeled
			// pair was one acknowledged, unbilled answer.
			s.ledger = CostLedger{Answers: len(sn.Labeled), Labels: len(sn.Labeled)}
		}
		for i, n := range sn.AbstainCounts {
			s.abstains[i] = n
		}
	}
	if len(wal) > 0 {
		// Walk the WAL against the checkpoint's answer cursor: records at
		// or below it are already reflected in the snapshot (labels are
		// cross-checked against the labeled set, and both kinds realign a
		// per-pair-keyed oracle's attempt ordinals); records past it are
		// answers the dead process paid for after its last checkpoint,
		// cached here for consumption instead of re-querying.
		answersAt := len(sn.Labeled)
		if sn.Ledger != nil {
			answersAt = sn.Ledger.Answers
		}
		s.walLabels = make(map[int]walAnswer)
		s.walAbstains = make(map[int][]float64)
		labelOrd := 0
		for _, rec := range wal {
			if rec.Abstained() {
				if rec.Seq <= answersAt {
					if s.pairAdv != nil {
						s.pairAdv.AdvancePair(pool.Pairs[rec.Index], 1)
					}
					continue
				}
				s.walAbstains[rec.Index] = append(s.walAbstains[rec.Index], rec.Cost)
				continue
			}
			labelOrd++
			if rec.Seq <= answersAt {
				if sn.Labeled[labelOrd-1] != rec.Index || sn.Labels[labelOrd-1] != rec.Label {
					return fmt.Errorf("core: label WAL record %d (index %d) disagrees with snapshot",
						rec.Seq, rec.Index)
				}
				if s.pairAdv != nil {
					s.pairAdv.AdvancePair(pool.Pairs[rec.Index], 1)
				}
				continue
			}
			s.walLabels[rec.Index] = walAnswer{label: rec.Label, cost: rec.Cost}
		}
	}
	s.src.replay(sn.Draws63, sn.Draws64)
	if s.stateful != nil && sn.OracleDraws > 0 {
		s.stateful.Advance(sn.OracleDraws)
	}
	s.seeded = sn.Seeded
	s.iter = sn.Iteration
	s.maxLabels = sn.MaxLabels
	s.testIdx = append([]int(nil), sn.TestIdx...)
	s.labeled = append([]int(nil), sn.Labeled...)
	s.labels = append([]bool(nil), sn.Labels...)
	s.unlabeled = append([]int(nil), sn.Unlabeled...)
	s.prevPred = append([]bool(nil), sn.PrevPred...)
	s.stableIters = sn.StableIters
	s.res.Curve = append(eval.Curve(nil), sn.Curve...)
	s.res.TestSize = len(s.testIdx)

	// Replay historical trainings: iteration i trained on the first
	// Curve[i].Labels draws of the labeled set (labels are cumulative and
	// append-only, so the prefix is the exact historical training set).
	// Warm-start iterations whose prefix could not train (empty or
	// single-class — the warm learner served instead) are skipped, which
	// reproduces the live run's training history exactly.
	warmStart := sn.Config.WarmStartModel != ""
	for _, pt := range sn.Curve {
		if warmStart && !trainablePrefix(s.labels, pt.Labels) {
			continue
		}
		trainX, trainY := gatherTraining(pool, s.labeled, s.labels, pt.Labels)
		learner.Train(trainX, trainY)
	}
	return nil
}

// validate rejects snapshots that are internally inconsistent or do not
// fit the pool they are being restored against.
func (sn *Snapshot) validate(pool *Pool) error {
	if len(sn.Labeled) != len(sn.Labels) {
		return fmt.Errorf("core: snapshot labeled/labels length mismatch: %d vs %d",
			len(sn.Labeled), len(sn.Labels))
	}
	for _, idx := range [][]int{sn.Labeled, sn.Unlabeled, sn.TestIdx} {
		for _, i := range idx {
			if i < 0 || i >= pool.Len() {
				return fmt.Errorf("core: snapshot index %d outside pool of %d pairs", i, pool.Len())
			}
		}
	}
	for _, pt := range sn.Curve {
		if pt.Labels > len(sn.Labeled) {
			return fmt.Errorf("core: snapshot curve point trained on %d labels but only %d are recorded",
				pt.Labels, len(sn.Labeled))
		}
	}
	return nil
}
