package core

import (
	"time"

	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/eval"
)

// Event is one typed notification from a Session's event stream. The
// engine emits events at every phase boundary of the Fig. 1a loop, so a
// run can be observed in flight — live progress in the CLIs, event logs
// in diag, curve building in eval — without the observer having to poll
// or wrap the learner.
//
// The concrete event types are IterationStart, TrainDone, EvalDone,
// BatchSelected, CandidateAccepted and RunEnd.
type Event interface{ isEvent() }

// IterationStart marks the beginning of one train→evaluate→select→label
// iteration.
type IterationStart struct {
	// Iteration is the zero-based iteration index.
	Iteration int
	// LabelsUsed is the cumulative Oracle-label count entering the
	// iteration (the seed bootstrap included).
	LabelsUsed int
	// PoolRemaining is the number of still-unlabeled candidates.
	PoolRemaining int
}

// TrainDone marks the end of the train phase.
type TrainDone struct {
	Iteration int
	// Labels is the size of the cumulative training set.
	Labels int
	// Elapsed is the wall-clock training time.
	Elapsed time.Duration
}

// EvalDone marks the end of the evaluate phase. Point carries the
// iteration's quality metrics and training time; the selector's latency
// breakdown is not known yet and arrives with BatchSelected.
type EvalDone struct {
	Iteration int
	Point     eval.Point
	// Elapsed is the wall-clock evaluation (prediction) time, which the
	// recorded curve point does not carry.
	Elapsed time.Duration
}

// BatchSelected marks the end of the select phase. It is not emitted on
// the final iteration (a finished run selects nothing).
type BatchSelected struct {
	Iteration int
	// Batch holds the pool indices about to be sent to the Oracle.
	Batch []int
	// CommitteeCreate and Score are the selector's latency breakdown,
	// matching the §3 latency metric.
	CommitteeCreate time.Duration
	Score           time.Duration
}

// OracleFault reports one failed label query: the labeler (after any
// retry policy wrapped around it) gave up on the pair, which has been
// requeued at the back of the unlabeled pool. The iteration degrades
// gracefully — training proceeds on whatever was granted — so a fault is
// an observation, not a run error; a round of nothing but faults ends
// the run with StopOracleFailed instead.
type OracleFault struct {
	// Iteration is the iteration the fault occurred in (the current value
	// during the seed phase).
	Iteration int
	// Index is the pool index whose query failed; Pair is its record pair.
	Index int
	Pair  dataset.PairKey
	// Err is the labeler's error, typically wrapping
	// resilience.ErrOracleExhausted.
	Err error
}

// PhaseDone is the engine's span event: one per completed phase of the
// Fig. 1a loop — seed once, then train/evaluate/select every iteration
// and label on every iteration that queried the Oracle — carrying the
// phase's wall time, label accounting and parallelism. It is the raw
// material of a run manifest: core.NewTraceObserver collects PhaseDone
// events into an obs.Trace, which serializes to JSONL (`almatch
// -trace`, `albench -trace`) and summarizes under `aldiag -trace`.
//
// PhaseDone complements rather than replaces the legacy phase events
// (TrainDone, EvalDone, BatchSelected): those carry phase-specific
// payloads, PhaseDone is the uniform timing record.
type PhaseDone struct {
	// Phase is "seed", "train", "evaluate", "select" or "label".
	Phase string
	// Iteration is the zero-based iteration index, -1 for the seed phase
	// (it runs before the iteration loop).
	Iteration int
	// Elapsed is the phase's wall-clock duration.
	Elapsed time.Duration
	// Labels is the cumulative Oracle-label count after the phase.
	Labels int
	// LabelsDelta is how many labels the phase granted (seed and label
	// phases; 0 elsewhere).
	LabelsDelta int
	// Batch is the number of examples handled: the selected batch size
	// for select, the attempted batch for label, 0 elsewhere.
	Batch int
	// Workers is the resolved parallel worker count available to the
	// phase (Config.Workers with 0 resolved to GOMAXPROCS).
	Workers int
	// PoolRemaining is the unlabeled-pool size after the phase.
	PoolRemaining int
}

// OracleBatchDone marks the end of one batched labeling round against a
// BatchOracle: how many pairs were submitted, the answer mix that came
// back, and the money it cost. Rounds driven by the classic per-pair
// labeler path do not emit it.
type OracleBatchDone struct {
	// Iteration is the iteration the round ran in (the current value
	// during the seed phase).
	Iteration int
	// Pairs is how many pairs were submitted to the labeler this round
	// (cached WAL answers excluded — they cost nothing to re-consume).
	Pairs int
	// Answers is how many acknowledged answers (labels plus abstentions)
	// were applied this round, WAL-cached answers included.
	Answers int
	// Labels and Abstains split Answers by verdict; Failures counts
	// per-pair errors (requeued, unbilled).
	Labels   int
	Abstains int
	Failures int
	// Retired is how many pairs hit the abstain cutoff this round and
	// were removed from the pool for good.
	Retired int
	// Cost is the dollars billed this round; Spent is the session's
	// cumulative ledger total after the round.
	Cost  float64
	Spent float64
	// Elapsed is the round's wall-clock time.
	Elapsed time.Duration
}

// CandidateAccepted is emitted by ensemble runs (§5.2) when a candidate
// classifier passes the precision acceptance test.
type CandidateAccepted struct {
	Iteration int
	// Accepted is the ensemble size after this acceptance.
	Accepted int
}

// RunEnd marks the end of a run, successful or cancelled.
type RunEnd struct {
	// Iterations is the number of completed iterations (curve points).
	Iterations int
	LabelsUsed int
	Reason     StopReason
	// Err is the context error when Reason is StopCancelled, nil
	// otherwise.
	Err error
}

// ExternalEvent lets packages outside core extend the event vocabulary:
// embed it and the type satisfies Event, flowing through the same
// Observer plumbing (diag.EventLog renders such events via their
// EventLine method when they provide one). The serve layer's request
// events are the first use.
type ExternalEvent struct{}

func (ExternalEvent) isEvent() {}

func (IterationStart) isEvent()    {}
func (PhaseDone) isEvent()         {}
func (TrainDone) isEvent()         {}
func (EvalDone) isEvent()          {}
func (BatchSelected) isEvent()     {}
func (OracleFault) isEvent()       {}
func (OracleBatchDone) isEvent()   {}
func (CandidateAccepted) isEvent() {}
func (RunEnd) isEvent()            {}

// StopReason explains why a run terminated.
type StopReason int

const (
	// StopNone means the run has not terminated yet.
	StopNone StopReason = iota
	// StopBudget: the MaxLabels budget is exhausted.
	StopBudget
	// StopPoolExhausted: no unlabeled candidates remain.
	StopPoolExhausted
	// StopTargetF1: the evaluated F1 reached Config.TargetF1.
	StopTargetF1
	// StopStability: predictions churned below StabilityEpsilon for
	// StabilityWindow consecutive iterations.
	StopStability
	// StopSelectorEmpty: the selector returned no examples (rule
	// learners terminate this way).
	StopSelectorEmpty
	// StopCancelled: the run's context was cancelled or timed out.
	StopCancelled
	// StopOracleFailed: an entire labeling round failed — the labeler is
	// down or exhausted every retry budget — so continuing could only
	// spin. The run's error wraps ErrLabelingStalled.
	StopOracleFailed
	// StopBudgetExhausted: the Config.MaxDollars budget can no longer
	// afford another answer from the priced batch oracle. Distinct from
	// StopBudget (the label-count budget): a run can end with labels to
	// spare but no money, and vice versa.
	//
	// New reasons are appended here so serialized values stay stable.
	StopBudgetExhausted
)

// String implements fmt.Stringer.
func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "running"
	case StopBudget:
		return "label budget exhausted"
	case StopPoolExhausted:
		return "pool exhausted"
	case StopTargetF1:
		return "target F1 reached"
	case StopStability:
		return "predictions stable"
	case StopSelectorEmpty:
		return "selector returned no examples"
	case StopCancelled:
		return "cancelled"
	case StopOracleFailed:
		return "oracle failed"
	case StopBudgetExhausted:
		return "dollar budget exhausted"
	}
	return "unknown"
}

// Observer receives a Session's event stream. Observe is called
// synchronously from the engine goroutine, in phase order, so
// implementations see a consistent sequence but must return promptly.
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe implements Observer.
func (f ObserverFunc) Observe(e Event) { f(e) }

// NewCurveObserver adapts an eval.CurveBuilder to the event stream: every
// EvalDone point is appended to the builder, giving consumers a live
// quality curve while the run is still in flight. (The builder's points
// carry training time but not selector latencies, which are only known
// after BatchSelected; the Session's Result curve has both.)
func NewCurveObserver(b *eval.CurveBuilder) Observer {
	return ObserverFunc(func(e Event) {
		if ed, ok := e.(EvalDone); ok {
			b.Add(ed.Point)
		}
	})
}
