package core

import (
	"math/rand"
	"testing"

	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/linear"
	"github.com/alem/alem/internal/neural"
	"github.com/alem/alem/internal/oracle"
	"github.com/alem/alem/internal/rules"
	"github.com/alem/alem/internal/tree"
)

func TestRunMarginSVMImproves(t *testing.T) {
	pool := syntheticPool(600, 1)
	res := Run(pool, linear.NewSVM(1), Margin{}, poolOracle(pool), Config{
		Seed: 1, MaxLabels: 150,
	})
	if len(res.Curve) < 2 {
		t.Fatalf("curve too short: %d points", len(res.Curve))
	}
	if f := res.Curve.BestF1(); f < 0.8 {
		t.Errorf("best F1 = %.3f, want >= 0.8 on easy synthetic data", f)
	}
	if res.LabelsUsed > 150 {
		t.Errorf("labels used %d exceeds MaxLabels", res.LabelsUsed)
	}
}

func TestRunQBCSVM(t *testing.T) {
	pool := syntheticPool(400, 2)
	res := Run(pool, linear.NewSVM(2), QBC{B: 3, Factory: svmFactory}, poolOracle(pool), Config{
		Seed: 2, MaxLabels: 120,
	})
	if f := res.Curve.BestF1(); f < 0.8 {
		t.Errorf("QBC best F1 = %.3f, want >= 0.8", f)
	}
	// QBC must record committee creation time on at least one iteration.
	found := false
	for _, pt := range res.Curve {
		if pt.CommitteeCreateTime > 0 {
			found = true
		}
	}
	if !found {
		t.Error("QBC never recorded committee creation time")
	}
}

func TestRunForestQBC(t *testing.T) {
	pool := syntheticPool(400, 3)
	res := Run(pool, tree.NewForest(10, 3), ForestQBC{}, poolOracle(pool), Config{
		Seed: 3, MaxLabels: 120, TargetF1: 0.995,
	})
	if f := res.Curve.BestF1(); f < 0.9 {
		t.Errorf("forest best F1 = %.3f, want >= 0.9", f)
	}
	// Learner-aware committee: no committee creation time, only scoring.
	for _, pt := range res.Curve {
		if pt.CommitteeCreateTime != 0 {
			t.Fatal("forest QBC should have zero committee creation time")
		}
	}
}

func TestRunNeuralMargin(t *testing.T) {
	pool := syntheticPool(300, 4)
	n := neural.NewNet(8, 4)
	n.Epochs = 15 // keep the test fast
	res := Run(pool, n, Margin{}, poolOracle(pool), Config{Seed: 4, MaxLabels: 100})
	if f := res.Curve.BestF1(); f < 0.6 {
		t.Errorf("neural margin best F1 = %.3f, want >= 0.6", f)
	}
}

func TestRunTargetF1StopsEarly(t *testing.T) {
	pool := syntheticPool(500, 5)
	res := Run(pool, tree.NewForest(10, 5), ForestQBC{}, poolOracle(pool), Config{
		Seed: 5, TargetF1: 0.9,
	})
	if res.LabelsUsed >= pool.Len() {
		t.Error("run did not stop early despite reachable TargetF1")
	}
	if res.Curve.FinalF1() < 0.9 {
		t.Errorf("final F1 %.3f below target despite early stop", res.Curve.FinalF1())
	}
}

func TestRunHeldOutMode(t *testing.T) {
	pool := syntheticPool(500, 6)
	res := Run(pool, linear.NewSVM(6), Margin{}, poolOracle(pool), Config{
		Seed: 6, Mode: HeldOut, MaxLabels: 100,
	})
	want := pool.Len() / 5
	if res.TestSize != want {
		t.Errorf("held-out test size = %d, want %d (20%%)", res.TestSize, want)
	}
	if res.LabelsUsed > pool.Len()-want {
		t.Error("labeled examples drawn from the held-out test set")
	}
}

func TestRunLabelsMonotoneOnCurve(t *testing.T) {
	pool := syntheticPool(300, 7)
	res := Run(pool, linear.NewSVM(7), Margin{}, poolOracle(pool), Config{Seed: 7, MaxLabels: 90})
	for i := 1; i < len(res.Curve); i++ {
		if res.Curve[i].Labels <= res.Curve[i-1].Labels {
			t.Fatalf("labels not strictly increasing at %d: %d -> %d",
				i, res.Curve[i-1].Labels, res.Curve[i].Labels)
		}
	}
	if res.Curve[0].Labels < 30 {
		t.Errorf("first point labels = %d, want >= 30 (seed set)", res.Curve[0].Labels)
	}
}

func TestRunDeterministic(t *testing.T) {
	pool := syntheticPool(300, 8)
	a := Run(pool, linear.NewSVM(9), Margin{}, poolOracle(pool), Config{Seed: 9, MaxLabels: 80})
	b := Run(pool, linear.NewSVM(9), Margin{}, poolOracle(pool), Config{Seed: 9, MaxLabels: 80})
	if len(a.Curve) != len(b.Curve) {
		t.Fatal("curve lengths differ across identical runs")
	}
	for i := range a.Curve {
		if a.Curve[i].F1 != b.Curve[i].F1 || a.Curve[i].Labels != b.Curve[i].Labels {
			t.Fatalf("point %d differs across identical runs", i)
		}
	}
}

func TestBlockedMarginSelectsAmbiguous(t *testing.T) {
	pool := syntheticPool(500, 10)
	res := Run(pool, linear.NewSVM(10), BlockedMargin{TopK: 2}, poolOracle(pool), Config{
		Seed: 10, MaxLabels: 120,
	})
	if f := res.Curve.BestF1(); f < 0.75 {
		t.Errorf("blocked margin best F1 = %.3f, want >= 0.75", f)
	}
}

func TestBlockedMarginPrunesZeroDims(t *testing.T) {
	// Vectors where half the pool is all-zero on every dimension: those
	// must never be selected by the blocked margin.
	var X []feature.Vector
	var truth []bool
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			X = append(X, feature.Vector{0, 0, 0})
			truth = append(truth, false)
		} else {
			v := float64(i%10) / 10
			X = append(X, feature.Vector{v, v, v})
			truth = append(truth, v > 0.5)
		}
	}
	pool := NewPoolFromVectors(X, truth)
	svm := linear.NewSVM(11)
	// Train once on a mixed sample so weights exist.
	svm.Train([]feature.Vector{{0.9, 0.9, 0.9}, {0.1, 0.1, 0.1}}, []bool{true, false})
	ctx := &SelectContext{
		Learner: svm, Pool: pool,
		Unlabeled: seqInts(pool.Len()),
		Rand:      rand.New(rand.NewSource(1)),
	}
	sel := BlockedMargin{TopK: 1}.Select(ctx, 20)
	for _, i := range sel {
		if pool.X[i][0] == 0 && pool.X[i][1] == 0 && pool.X[i][2] == 0 {
			t.Fatalf("blocked margin selected an all-zero example %d", i)
		}
	}
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestMarginRequiresMarginLearner(t *testing.T) {
	pool := syntheticPool(100, 12)
	ctx := &SelectContext{
		Learner:   tree.NewForest(5, 1), // no Margin method
		Pool:      pool,
		Unlabeled: seqInts(pool.Len()),
		Rand:      rand.New(rand.NewSource(1)),
	}
	if got := (Margin{}).Select(ctx, 5); got != nil {
		t.Error("margin selector accepted a non-margin learner (Fig. 2 compatibility)")
	}
	if got := (ForestQBC{}).Select(ctx, 5); len(got) == 0 {
		t.Skip("forest untrained; acceptable")
	}
}

func TestLFPLFNRequiresRules(t *testing.T) {
	pool := syntheticPool(100, 13)
	ctx := &SelectContext{
		Learner:   linear.NewSVM(1),
		Pool:      pool,
		Unlabeled: seqInts(pool.Len()),
		Rand:      rand.New(rand.NewSource(1)),
	}
	if got := (LFPLFN{}).Select(ctx, 5); got != nil {
		t.Error("LFP/LFN selector accepted a non-rules learner")
	}
}

func TestRunRulesLFPLFNTerminates(t *testing.T) {
	// Boolean pool: one informative atom.
	var X []feature.Vector
	var truth []bool
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 300; i++ {
		match := r.Float64() < 0.3
		v := make(feature.Vector, 12)
		for j := range v {
			if r.Float64() < 0.2 {
				v[j] = 1
			}
		}
		if match {
			v[0] = 1
			if r.Float64() < 0.8 {
				v[1] = 1
			}
		} else {
			v[0] = 0
		}
		X = append(X, v)
		truth = append(truth, match)
	}
	pool := NewPoolFromVectors(X, truth)
	ext := feature.NewBoolExtractor([]string{"a", "b", "c", "d"})
	m := rules.NewModel(ext)
	res := Run(pool, m, LFPLFN{}, poolOracle(pool), Config{Seed: 14})
	// Rule learning must terminate early (no LFPs/LFNs) well before
	// exhausting the pool.
	if res.LabelsUsed >= pool.Len() {
		t.Error("rules run failed to terminate early")
	}
	if f := res.Curve.BestF1(); f < 0.7 {
		t.Errorf("rules best F1 = %.3f, want >= 0.7", f)
	}
}

func TestRunEnsembleAcceptsAndImproves(t *testing.T) {
	pool := syntheticPool(600, 15)
	res := RunEnsemble(pool, poolOracle(pool), EnsembleConfig{
		Config:   Config{Seed: 15, MaxLabels: 200},
		Factory:  svmFactory,
		Selector: Margin{},
	})
	if f := res.Curve.BestF1(); f < 0.8 {
		t.Errorf("ensemble best F1 = %.3f, want >= 0.8", f)
	}
	if res.Accepted < 1 {
		t.Error("ensemble accepted no classifiers on easy data")
	}
	if res.LabelsUsed > 200 {
		t.Errorf("labels used %d exceeds MaxLabels", res.LabelsUsed)
	}
}

func TestRunEnsembleDeterministic(t *testing.T) {
	pool := syntheticPool(300, 16)
	a := RunEnsemble(pool, poolOracle(pool), EnsembleConfig{
		Config: Config{Seed: 16, MaxLabels: 100}, Factory: svmFactory, Selector: Margin{},
	})
	b := RunEnsemble(pool, poolOracle(pool), EnsembleConfig{
		Config: Config{Seed: 16, MaxLabels: 100}, Factory: svmFactory, Selector: Margin{},
	})
	if a.Accepted != b.Accepted || len(a.Curve) != len(b.Curve) {
		t.Fatal("ensemble runs differ across identical seeds")
	}
}

func TestNoisyOracleDegradesQuality(t *testing.T) {
	// End-to-end: 40% label noise must hurt final F1 vs a perfect oracle.
	d, err := dataset.Load("beer", 1.0, 20)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(d)
	clean := Run(pool, tree.NewForest(10, 20), ForestQBC{}, oracle.NewPerfect(d), Config{
		Seed: 20, MaxLabels: 150,
	})
	noisy := Run(pool, tree.NewForest(10, 20), ForestQBC{}, oracle.NewNoisy(d, 0.4, 20), Config{
		Seed: 20, MaxLabels: 150,
	})
	if noisy.Curve.FinalF1() >= clean.Curve.FinalF1() {
		t.Errorf("40%% noise final F1 %.3f not below clean %.3f",
			noisy.Curve.FinalF1(), clean.Curve.FinalF1())
	}
}

func TestPoolFromDataset(t *testing.T) {
	d, err := dataset.Load("beer", 0.5, 21)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(d)
	if pool.Len() == 0 {
		t.Fatal("empty pool")
	}
	if len(pool.X[0]) != len(d.Left.Schema)*21 {
		t.Errorf("vector dim = %d, want %d", len(pool.X[0]), len(d.Left.Schema)*21)
	}
	if s := pool.Skew(); s <= 0 || s >= 1 {
		t.Errorf("skew = %v, want in (0,1)", s)
	}
	boolPool := NewBoolPool(d)
	if len(boolPool.X[0]) != len(d.Left.Schema)*30 {
		t.Errorf("bool dim = %d, want %d", len(boolPool.X[0]), len(d.Left.Schema)*30)
	}
	for _, v := range boolPool.X[0] {
		if v != 0 && v != 1 {
			t.Fatalf("bool pool has non-binary value %v", v)
		}
	}
}
