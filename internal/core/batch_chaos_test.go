package core

// Chaos tests for the costly-oracle path: a priced, abstaining simulated
// LLM labeler is killed mid-batch and resumed from Snapshot + WAL; the
// resumed run must reproduce the uninterrupted run's curve AND its cost
// ledger exactly — no answer charged twice, no acknowledged answer
// dropped. Run with `make chaos`.

import (
	"bytes"
	"context"
	"math"
	"path/filepath"
	"testing"

	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/linear"
	"github.com/alem/alem/internal/oracle"
	"github.com/alem/alem/internal/resilience"
)

// simPoolOracle builds a simulated LLM labeler over the pool's truth.
func simPoolOracle(p *Pool, cfg oracle.LLMSimConfig, seed int64) *oracle.SimulatedLLMOracle {
	return oracle.NewSimulatedLLM(poolDataset(p), cfg, seed)
}

// batchKillSwitch simulates a hard kill mid-batch: once `after` total
// answers have been acknowledged, it truncates the in-flight batch at
// the limit, cancels the run's context and reports the acknowledged
// prefix with context.Canceled — a process that died between billing one
// answer and receiving the next. Only the pairs actually answered reach
// the inner oracle, so its per-pair attempt state matches exactly what
// was acknowledged.
type batchKillSwitch struct {
	inner    oracle.BatchOracle
	after    int
	answered int
	kill     context.CancelFunc
}

func (k *batchKillSwitch) LabelBatch(ctx context.Context, pairs []dataset.PairKey) ([]oracle.Answer, error) {
	remain := k.after - k.answered
	if remain <= 0 {
		k.kill()
		return nil, context.Canceled
	}
	if len(pairs) <= remain {
		out, err := k.inner.LabelBatch(ctx, pairs)
		k.answered += len(out)
		return out, err
	}
	out, _ := k.inner.LabelBatch(ctx, pairs[:remain])
	k.answered += len(out)
	k.kill()
	return out, context.Canceled
}

func (k *batchKillSwitch) Queries() int      { return k.inner.Queries() }
func (k *batchKillSwitch) UnwrapOracle() any { return k.inner }

// TestChaosBatchKillResumeLedgerExact is the costly-oracle acceptance
// scenario: a priced run with ~15% abstentions and a dollar budget is
// killed mid-batch, resumed from the last checkpoint plus the WAL, and
// must reproduce the uninterrupted run's curve, stop reason and — to the
// cent — its cost ledger, while re-buying not a single answer the dead
// process paid for.
//
// FailRate stays 0: failed answers are not journaled (they are unbilled
// and carry no verdict), so per-pair attempt realignment across a resume
// is only guaranteed in their absence — the same documented precondition
// the per-pair chaos suite has for exhausted retries.
func TestChaosBatchKillResumeLedgerExact(t *testing.T) {
	pool := syntheticPool(600, 41)
	simCfg := oracle.LLMSimConfig{
		AbstainRate: 0.15,
		NoiseRate:   0.1,
		Price:       oracle.PriceTable{PerLabel: 0.002, PerAbstain: 0.0005},
	}
	const simSeed = 7
	cfg := Config{Seed: 41, MaxLabels: 200, MaxDollars: 0.16}

	// Reference: the uninterrupted priced run.
	refSim := simPoolOracle(pool, simCfg, simSeed)
	ref, err := NewBatchSession(pool, linear.NewSVM(41), Margin{}, refSim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ref.Reason() != StopBudgetExhausted {
		t.Fatalf("reference reason = %v, want StopBudgetExhausted (tune MaxDollars)", ref.Reason())
	}
	refLedger := ref.Ledger()
	if refLedger.Abstains == 0 {
		t.Fatal("reference run saw no abstentions; the scenario needs them")
	}
	if refLedger.Spent > cfg.MaxDollars+budgetEps {
		t.Fatalf("reference overspent: %.6f > %.6f", refLedger.Spent, cfg.MaxDollars)
	}

	// Victim: same seeds, checkpoint every step, WAL every answer, killed
	// mid-batch after 63 acknowledged answers.
	dir := t.TempDir()
	walPath := filepath.Join(dir, "answers.wal")
	wal, _, err := resilience.OpenLabelWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ks := &batchKillSwitch{inner: simPoolOracle(pool, simCfg, simSeed), after: 63, kill: cancel}
	victim, err := NewBatchSession(pool, linear.NewSVM(41), Margin{}, ks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if victim.maxCost != simCfg.Price.Max() {
		t.Fatalf("victim maxCost = %g, want %g discovered through the kill switch",
			victim.maxCost, simCfg.Price.Max())
	}
	victim.SetLabelSink(wal)
	var lastSnap bytes.Buffer
	if err := victim.Snapshot().Encode(&lastSnap); err != nil {
		t.Fatal(err)
	}
	for {
		done, err := victim.Step(ctx)
		if err != nil {
			break // the kill
		}
		if done {
			t.Fatal("victim finished before the kill fired")
		}
		lastSnap.Reset()
		if err := victim.Snapshot().Encode(&lastSnap); err != nil {
			t.Fatal(err)
		}
	}
	wal.Close()
	if victim.Reason() != StopCancelled {
		t.Fatalf("victim reason = %v, want StopCancelled", victim.Reason())
	}

	// Resume: fresh learner and fresh simulated oracle (same seed), last
	// checkpoint plus WAL replay.
	sn, err := ReadSnapshot(&lastSnap)
	if err != nil {
		t.Fatal(err)
	}
	wal2, records, err := resilience.OpenLabelWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if len(records) != 63 {
		t.Fatalf("WAL holds %d records, want the 63 answers acknowledged before the kill", len(records))
	}
	answersAt := len(sn.Labeled)
	if sn.Ledger != nil {
		answersAt = sn.Ledger.Answers
	}
	if len(records) <= answersAt {
		t.Fatalf("kill landed on an iteration boundary (%d WAL records, %d checkpointed answers); "+
			"the test needs post-checkpoint answers to exercise WAL replay", len(records), answersAt)
	}
	resSim := simPoolOracle(pool, simCfg, simSeed)
	resumed, err := RestoreBatchWithWAL(pool, linear.NewSVM(41), Margin{}, resSim, sn, records)
	if err != nil {
		t.Fatal(err)
	}
	resumed.SetLabelSink(wal2)
	resRes, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	curvesEqual(t, refRes.Curve, resRes.Curve)
	if refRes.LabelsUsed != resRes.LabelsUsed {
		t.Errorf("LabelsUsed differ: %d vs %d", refRes.LabelsUsed, resRes.LabelsUsed)
	}
	if resumed.Reason() != ref.Reason() {
		t.Errorf("reasons differ: %v vs %v", resumed.Reason(), ref.Reason())
	}
	// The ledger replays exactly: same answers, same split, same dollars.
	resLedger := resumed.Ledger()
	if resLedger.Answers != refLedger.Answers || resLedger.Labels != refLedger.Labels ||
		resLedger.Abstains != refLedger.Abstains {
		t.Errorf("ledger counts differ: %+v vs %+v", resLedger, refLedger)
	}
	if math.Abs(resLedger.Spent-refLedger.Spent) > budgetEps {
		t.Errorf("ledger spend differs: %.9f vs %.9f", resLedger.Spent, refLedger.Spent)
	}
	// Not one answer re-bought: the resumed oracle only paid for answers
	// the WAL did not already hold.
	if got, want := resSim.Queries(), refSim.Queries()-len(records); got != want {
		t.Errorf("resumed process paid %d oracle queries, want %d (WAL answers must not be re-bought)",
			got, want)
	}
	// The final WAL is the full run, contiguous, and its recorded costs
	// sum to exactly the ledger's spend — every charge durable, none
	// double-journaled.
	_, finalRecords, err := resilience.OpenLabelWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(finalRecords) != refLedger.Answers {
		t.Errorf("final WAL holds %d records, want %d (one per acknowledged answer)",
			len(finalRecords), refLedger.Answers)
	}
	var walSpent float64
	labels, abstains := 0, 0
	for _, rec := range finalRecords {
		walSpent += rec.Cost
		if rec.Abstained() {
			abstains++
		} else {
			labels++
		}
	}
	if labels != refLedger.Labels || abstains != refLedger.Abstains {
		t.Errorf("WAL verdict split %d/%d, want %d/%d", labels, abstains, refLedger.Labels, refLedger.Abstains)
	}
	if math.Abs(walSpent-refLedger.Spent) > budgetEps {
		t.Errorf("WAL costs sum to %.9f, ledger says %.9f (double charge or dropped answer)",
			walSpent, refLedger.Spent)
	}
}

// TestChaosBatchAllFailTerminates pins the no-spin guarantee on the
// batched path: a batch labeler whose every answer fails must end the
// run with StopOracleFailed wrapping ErrLabelingStalled.
func TestChaosBatchAllFailTerminates(t *testing.T) {
	pool := syntheticPool(200, 42)
	sim := simPoolOracle(pool, oracle.LLMSimConfig{FailRate: 1.0}, 3)
	s, err := NewBatchSession(pool, linear.NewSVM(42), Margin{}, sim, Config{Seed: 42, MaxLabels: 50})
	if err != nil {
		t.Fatal(err)
	}
	faults := 0
	s.AddObserver(ObserverFunc(func(e Event) {
		if _, ok := e.(OracleFault); ok {
			faults++
		}
	}))
	_, runErr := s.Run(context.Background())
	if runErr == nil {
		t.Fatal("run with an all-failing labeler reported no error")
	}
	if s.Reason() != StopOracleFailed {
		t.Errorf("reason = %v, want StopOracleFailed", s.Reason())
	}
	if faults == 0 {
		t.Error("no OracleFault events observed")
	}
	if sim.Queries() != 0 {
		t.Errorf("failed answers were billed: %d queries acknowledged", sim.Queries())
	}
}
