package core

import (
	"bytes"
	"context"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/alem/alem/internal/eval"
	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/linear"
)

// curvesEqual compares the deterministic fields of two curves (the
// latency fields are wall-clock and never comparable across runs).
func curvesEqual(t *testing.T, a, b eval.Curve) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("curve lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Labels != b[i].Labels || a[i].F1 != b[i].F1 ||
			a[i].Precision != b[i].Precision || a[i].Recall != b[i].Recall {
			t.Fatalf("curve point %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSessionMatchesRunWrapper(t *testing.T) {
	pool := syntheticPool(500, 11)
	cfg := Config{Seed: 11, MaxLabels: 120}

	viaRun := Run(pool, linear.NewSVM(11), Margin{}, poolOracle(pool), cfg)

	s, err := NewSession(pool, linear.NewSVM(11), Margin{}, poolOracle(pool), cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaSession, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	curvesEqual(t, viaRun.Curve, viaSession.Curve)
	if viaRun.LabelsUsed != viaSession.LabelsUsed {
		t.Errorf("LabelsUsed differ: %d vs %d", viaRun.LabelsUsed, viaSession.LabelsUsed)
	}
	if s.Reason() != StopBudget {
		t.Errorf("reason = %v, want StopBudget", s.Reason())
	}
}

func TestSessionCancelledMidRunReturnsPartialCurve(t *testing.T) {
	pool := syntheticPool(800, 12)
	s, err := NewSession(pool, linear.NewSVM(12), Margin{}, poolOracle(pool),
		Config{Seed: 12, MaxLabels: 200})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelAfter = 3
	evals := 0
	var endEvent *RunEnd
	s.AddObserver(ObserverFunc(func(e Event) {
		switch ev := e.(type) {
		case EvalDone:
			evals++
			if evals == cancelAfter {
				cancel()
			}
		case RunEnd:
			endEvent = &ev
		}
	}))

	before := runtime.NumGoroutine()
	res, err := s.Run(ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !s.Done() || s.Reason() != StopCancelled {
		t.Fatalf("done=%v reason=%v, want done with StopCancelled", s.Done(), s.Reason())
	}
	// The iteration cancelled mid-flight is discarded; everything before
	// it is kept.
	if len(res.Curve) != cancelAfter-1 {
		t.Errorf("partial curve has %d points, want %d", len(res.Curve), cancelAfter-1)
	}
	if endEvent == nil {
		t.Fatal("no RunEnd event emitted on cancellation")
	}
	if endEvent.Reason != StopCancelled || endEvent.Err != context.Canceled {
		t.Errorf("RunEnd = %+v, want StopCancelled/context.Canceled", *endEvent)
	}
	// No goroutine leak: parallel-prediction workers must all have
	// returned. Allow brief scheduler settling.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestSessionCancelledBeforeStart(t *testing.T) {
	pool := syntheticPool(300, 13)
	s, err := NewSession(pool, linear.NewSVM(13), Margin{}, poolOracle(pool),
		Config{Seed: 13, MaxLabels: 100})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := s.Run(ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.Curve) != 0 {
		t.Errorf("curve has %d points before any iteration ran", len(res.Curve))
	}
	// The seed phase was interrupted before any Oracle query.
	if res.LabelsUsed != 0 {
		t.Errorf("LabelsUsed = %d, want 0", res.LabelsUsed)
	}
}

func TestSessionStepAfterDoneIsNoop(t *testing.T) {
	pool := syntheticPool(200, 14)
	s, err := NewSession(pool, linear.NewSVM(14), Margin{}, poolOracle(pool),
		Config{Seed: 14, MaxLabels: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	n := len(s.Result().Curve)
	done, err := s.Step(context.Background())
	if !done || err != nil {
		t.Fatalf("Step after done = (%v, %v), want (true, nil)", done, err)
	}
	if len(s.Result().Curve) != n {
		t.Error("Step after done mutated the curve")
	}
}

// TestSnapshotRestoreIdenticalCurve is the resume-identity contract: run
// a few iterations, snapshot, serialize, restore against a FRESH learner
// with the same constructor seed, finish — the combined curve must be
// bit-identical to an uninterrupted run.
func TestSnapshotRestoreIdenticalCurve(t *testing.T) {
	cases := []struct {
		name string
		sel  func() Selector
	}{
		{"margin", func() Selector { return Margin{} }},
		{"qbc", func() Selector { return QBC{B: 4, Factory: svmFactory} }},
		{"iwal", func() Selector { return IWAL{} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pool := syntheticPool(500, 21)
			cfg := Config{Seed: 21, MaxLabels: 110}

			full, err := mustSession(t, pool, linear.NewSVM(21), tc.sel(), cfg).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			interrupted := mustSession(t, pool, linear.NewSVM(21), tc.sel(), cfg)
			for i := 0; i < 3; i++ {
				if done, err := interrupted.Step(context.Background()); done || err != nil {
					t.Fatalf("step %d ended early: done=%v err=%v", i, done, err)
				}
			}

			// Serialize and reload the checkpoint.
			var buf bytes.Buffer
			if err := interrupted.Snapshot().Encode(&buf); err != nil {
				t.Fatal(err)
			}
			sn, err := ReadSnapshot(&buf)
			if err != nil {
				t.Fatal(err)
			}

			resumed, err := Restore(pool, linear.NewSVM(21), tc.sel(), poolOracle(pool), sn)
			if err != nil {
				t.Fatal(err)
			}
			res, err := resumed.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			curvesEqual(t, full.Curve, res.Curve)
			if full.LabelsUsed != res.LabelsUsed {
				t.Errorf("LabelsUsed differ: %d vs %d", full.LabelsUsed, res.LabelsUsed)
			}
			if resumed.Reason() != StopBudget {
				t.Errorf("resumed reason = %v, want StopBudget", resumed.Reason())
			}
		})
	}
}

func TestSnapshotRejectsCorruptState(t *testing.T) {
	pool := syntheticPool(100, 22)
	s := mustSession(t, pool, linear.NewSVM(22), Margin{}, Config{Seed: 22, MaxLabels: 40})
	if _, err := s.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	base := s.Snapshot()

	corrupt := *base
	corrupt.Labels = corrupt.Labels[:len(corrupt.Labels)-1]
	if _, err := Restore(pool, linear.NewSVM(22), Margin{}, poolOracle(pool), &corrupt); err == nil {
		t.Error("Restore accepted mismatched labeled/labels lengths")
	}

	corrupt = *base
	corrupt.Labeled = append([]int(nil), corrupt.Labeled...)
	corrupt.Labeled[0] = pool.Len() + 5
	if _, err := Restore(pool, linear.NewSVM(22), Margin{}, poolOracle(pool), &corrupt); err == nil {
		t.Error("Restore accepted an out-of-range pool index")
	}

	corrupt = *base
	corrupt.Curve = append(eval.Curve(nil), corrupt.Curve...)
	corrupt.Curve[0].Labels = len(corrupt.Labeled) + 1
	if _, err := Restore(pool, linear.NewSVM(22), Margin{}, poolOracle(pool), &corrupt); err == nil {
		t.Error("Restore accepted a curve point trained on more labels than recorded")
	}
}

// TestSeedBootstrapRespectsBudget is the regression test for the seed
// overshoot: with a single-class pool the bootstrap keeps retrying for a
// second class, and each retry must be clamped to the remaining budget.
// The old loop drew full batches and could exceed MaxLabels by up to
// BatchSize-1 (here: 40 labels against a budget of 35).
func TestSeedBootstrapRespectsBudget(t *testing.T) {
	n := 200
	X := make([]feature.Vector, n)
	truth := make([]bool, n) // all negative: bothClasses never succeeds
	r := rand.New(rand.NewSource(23))
	for i := range X {
		v := make(feature.Vector, 4)
		for j := range v {
			v[j] = r.Float64()
		}
		X[i] = v
	}
	pool := NewPoolFromVectors(X, truth)
	res := Run(pool, linear.NewSVM(23), Margin{}, poolOracle(pool), Config{
		Seed: 23, SeedLabels: 30, BatchSize: 10, MaxLabels: 35,
	})
	if res.LabelsUsed != 35 {
		t.Errorf("LabelsUsed = %d, want exactly the 35-label budget", res.LabelsUsed)
	}
	if res.Reason != StopBudget {
		t.Errorf("reason = %v, want StopBudget", res.Reason)
	}
}

func TestSessionEventOrdering(t *testing.T) {
	pool := syntheticPool(300, 24)
	s := mustSession(t, pool, linear.NewSVM(24), Margin{}, Config{Seed: 24, MaxLabels: 60})
	var events []Event
	s.AddObserver(ObserverFunc(func(e Event) { events = append(events, e) }))
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	iters := len(s.Result().Curve)
	if iters == 0 {
		t.Fatal("no iterations ran")
	}
	// The seed bootstrap emits one PhaseDone(-1). Then per iteration:
	// IterationStart, TrainDone, PhaseDone(train), EvalDone,
	// PhaseDone(evaluate), PhaseDone(select); every iteration but the last
	// adds BatchSelected and PhaseDone(label). One RunEnd closes the
	// stream.
	want := 0
	expectPhase := func(name string, iter int) {
		t.Helper()
		if want >= len(events) {
			t.Fatalf("stream ended early before PhaseDone(%s) of iteration %d", name, iter)
		}
		pd, ok := events[want].(PhaseDone)
		if !ok || pd.Phase != name || pd.Iteration != iter {
			t.Fatalf("event %d is %T%+v, want PhaseDone(%s) of iteration %d", want, events[want], events[want], name, iter)
		}
		if pd.Workers < 1 {
			t.Fatalf("PhaseDone(%s) has unresolved Workers=%d", name, pd.Workers)
		}
		want++
	}
	expectPhase("seed", -1)
	for i := 0; i < iters; i++ {
		for _, typ := range []string{"start", "train", "phase:train", "eval", "phase:evaluate", "phase:select"} {
			if want >= len(events) {
				t.Fatalf("stream ended early at iteration %d (%s)", i, typ)
			}
			if phase, isPhase := strings.CutPrefix(typ, "phase:"); isPhase {
				expectPhase(phase, i)
				continue
			}
			var ok bool
			switch typ {
			case "start":
				var ev IterationStart
				ev, ok = events[want].(IterationStart)
				if ok && (ev.Iteration != i) {
					t.Fatalf("IterationStart #%d has Iteration=%d", i, ev.Iteration)
				}
			case "train":
				_, ok = events[want].(TrainDone)
			case "eval":
				_, ok = events[want].(EvalDone)
			}
			if !ok {
				t.Fatalf("event %d is %T, want %s of iteration %d", want, events[want], typ, i)
			}
			want++
		}
		if i < iters-1 {
			if _, ok := events[want].(BatchSelected); !ok {
				t.Fatalf("event %d is %T, want BatchSelected", want, events[want])
			}
			want++
			expectPhase("label", i)
		}
	}
	if _, ok := events[want].(RunEnd); !ok {
		t.Fatalf("event %d is %T, want RunEnd", want, events[want])
	}
	if want+1 != len(events) {
		t.Errorf("stream has %d events, want %d", len(events), want+1)
	}
}

func TestCurveObserverBuildsLiveCurve(t *testing.T) {
	pool := syntheticPool(300, 25)
	s := mustSession(t, pool, linear.NewSVM(25), Margin{}, Config{Seed: 25, MaxLabels: 60})
	var b eval.CurveBuilder
	s.AddObserver(NewCurveObserver(&b))
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	built := b.Curve()
	if len(built) != len(res.Curve) {
		t.Fatalf("builder curve has %d points, result has %d", len(built), len(res.Curve))
	}
	for i := range built {
		if built[i].F1 != res.Curve[i].F1 || built[i].Labels != res.Curve[i].Labels {
			t.Fatalf("builder point %d = %+v, result %+v", i, built[i], res.Curve[i])
		}
	}
}

func TestConfigValidate(t *testing.T) {
	valid := []Config{
		{},
		{SeedLabels: 30, BatchSize: 10, MaxLabels: 100},
		{TargetF1: 0.99, HoldoutFrac: 0.3, StabilityWindow: 5, StabilityEpsilon: 0.01},
	}
	for i, c := range valid {
		if err := c.Validate(); err != nil {
			t.Errorf("valid config %d rejected: %v", i, err)
		}
	}
	invalid := []Config{
		{SeedLabels: -1},
		{BatchSize: -2},
		{MaxLabels: -10},
		{TargetF1: -0.1},
		{TargetF1: 1.5},
		{HoldoutFrac: -0.2},
		{HoldoutFrac: 1.0},
		{StabilityWindow: -3},
		{StabilityEpsilon: -0.5},
		{StabilityEpsilon: 2},
	}
	for i, c := range invalid {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config %d accepted: %+v", i, c)
		}
	}
	if _, err := NewSession(syntheticPool(50, 1), linear.NewSVM(1), Margin{},
		poolOracle(syntheticPool(50, 1)), Config{HoldoutFrac: 1.0}); err == nil {
		t.Error("NewSession accepted an invalid config")
	}
}

// TestParallelPredictPathsAgree is the serial/parallel property test:
// for sizes straddling parallelPredictCutoff, the concurrent path must
// produce exactly the plain serial sweep.
func TestParallelPredictPathsAgree(t *testing.T) {
	svm := linear.NewSVM(26)
	pool := syntheticPool(2*parallelPredictCutoff+37, 26)
	svm.Train(pool.X[:120], pool.Truth[:120])

	for _, n := range []int{1, parallelPredictCutoff - 1, parallelPredictCutoff,
		parallelPredictCutoff + 1, pool.Len()} {
		idx := seqInts(n)
		got, err := parallelPredict(context.Background(), svm.Predict, pool, idx, 0)
		if err != nil {
			t.Fatal(err)
		}
		for j, i := range idx {
			if want := svm.Predict(pool.X[i]); got[j] != want {
				t.Fatalf("n=%d: prediction %d = %v, want %v", n, j, got[j], want)
			}
		}
	}
}

func TestParallelPredictCancelled(t *testing.T) {
	svm := linear.NewSVM(27)
	pool := syntheticPool(4*parallelPredictCutoff, 27)
	svm.Train(pool.X[:120], pool.Truth[:120])
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := parallelPredict(ctx, svm.Predict, pool, seqInts(pool.Len()), 0); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunEnsembleContextCancellation(t *testing.T) {
	pool := syntheticPool(600, 28)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trains := 0
	res, err := RunEnsembleContext(ctx, pool, poolOracle(pool), EnsembleConfig{
		Config:   Config{Seed: 28, MaxLabels: 300},
		Factory:  svmFactory,
		Selector: Margin{},
	}, ObserverFunc(func(e Event) {
		// Cancel during the second iteration's train phase: iteration 0
		// completes and its point must survive.
		if _, ok := e.(TrainDone); ok {
			trains++
			if trains == 2 {
				cancel()
			}
		}
	}))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Reason != StopCancelled {
		t.Fatalf("res = %+v, want partial result with StopCancelled", res)
	}
	if len(res.Curve) == 0 {
		t.Error("cancelled ensemble run lost its partial curve")
	}
}

// TestRunEnsembleMatchesWrapper pins that the context-aware rewrite draws
// from the RNG exactly like the wrapper path (same seed, same curve).
func TestRunEnsembleMatchesWrapper(t *testing.T) {
	pool := syntheticPool(400, 29)
	cfg := EnsembleConfig{
		Config:   Config{Seed: 29, MaxLabels: 100},
		Factory:  svmFactory,
		Selector: Margin{},
	}
	a := RunEnsemble(pool, poolOracle(pool), cfg)
	b, err := RunEnsembleContext(context.Background(), pool, poolOracle(pool), cfg)
	if err != nil {
		t.Fatal(err)
	}
	curvesEqual(t, a.Curve, b.Curve)
	if a.Accepted != b.Accepted || a.LabelsUsed != b.LabelsUsed {
		t.Errorf("accepted/labels differ: %d/%d vs %d/%d",
			a.Accepted, a.LabelsUsed, b.Accepted, b.LabelsUsed)
	}
}
