package core

// Shared test fixtures for the core package: the synthetic pool every
// engine test trains on, the throwaway oracle over its truth, and the
// session constructor with fatal-on-error ergonomics. Kept in one file
// so the scenario tests (run, session, snapshot, chaos, golden grid)
// build on identical data instead of drifting copies.

import (
	"math/rand"
	"testing"

	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/linear"
	"github.com/alem/alem/internal/oracle"
)

// syntheticPool builds a learnable pool: matches cluster near high
// similarity, non-matches near low, with an ambiguous band in between.
func syntheticPool(n int, seed int64) *Pool {
	r := rand.New(rand.NewSource(seed))
	X := make([]feature.Vector, 0, n)
	truth := make([]bool, 0, n)
	for i := 0; i < n; i++ {
		match := r.Float64() < 0.2
		var base float64
		if match {
			base = 0.7 + r.Float64()*0.3
		} else {
			base = r.Float64() * 0.45
		}
		v := make(feature.Vector, 8)
		for j := range v {
			v[j] = clamp01(base + r.Float64()*0.2 - 0.1)
		}
		X = append(X, v)
		truth = append(truth, match)
	}
	return NewPoolFromVectors(X, truth)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// poolDataset wraps a Pool's truth in a throwaway dataset so any
// dataset-backed oracle (perfect, noisy, simulated-LLM) can label it.
func poolDataset(p *Pool) *dataset.Dataset {
	l := &dataset.Table{Rows: make([]dataset.Record, p.Len())}
	rt := &dataset.Table{Rows: make([]dataset.Record, p.Len())}
	var matches []dataset.PairKey
	for i, t := range p.Truth {
		if t {
			matches = append(matches, p.Pairs[i])
		}
	}
	return dataset.NewDataset("pool", l, rt, matches, 0)
}

// poolOracle adapts a Pool's truth to the oracle interface.
func poolOracle(p *Pool) oracle.Oracle {
	return oracle.NewPerfect(poolDataset(p))
}

func svmFactory(seed int64) Learner { return linear.NewSVM(seed) }

// mustSession builds a Session over the pool's own truth oracle,
// failing the test on config errors.
func mustSession(t *testing.T, pool *Pool, l Learner, sel Selector, cfg Config) *Session {
	t.Helper()
	s, err := NewSession(pool, l, sel, poolOracle(pool), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
