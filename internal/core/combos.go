package core

import (
	"github.com/alem/alem/internal/bayes"
	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/linear"
	"github.com/alem/alem/internal/neural"
	"github.com/alem/alem/internal/rules"
	"github.com/alem/alem/internal/tree"
)

// Combo is one cell of the paper's Fig. 1b "4D view of unified active
// learning": a learner family crossed with an example selector, with the
// compatibility rule that the Fig. 2 class hierarchy encodes.
type Combo struct {
	LearnerFamily string
	SelectorName  string
	Compatible    bool
	// Reason explains an incompatibility ("margin needs a MarginLearner").
	Reason string
	// PaperEvaluated marks combinations the paper's §6 actually ran.
	PaperEvaluated bool
}

// learnerProbe pairs a family name with a representative instance used
// purely for interface checks.
type learnerProbe struct {
	family string
	mk     func() Learner
}

func allLearnerProbes() []learnerProbe {
	return []learnerProbe{
		{"linear (SVM)", func() Learner { return linear.NewSVM(0) }},
		{"non-convex non-linear (NN)", func() Learner { return neural.NewNet(8, 0) }},
		{"tree-based (random forest)", func() Learner { return tree.NewForest(5, 0) }},
		{"rule-based (monotone DNF)", func() Learner {
			return rules.NewModel(feature.NewBoolExtractor([]string{"a"}))
		}},
		{"naive Bayes (extension)", func() Learner { return bayes.New() }},
	}
}

// selectorProbe pairs a selector with its compatibility check.
type selectorProbe struct {
	name       string
	compatible func(l Learner) (bool, string)
	evaluated  func(family string) bool
}

func allSelectorProbes() []selectorProbe {
	isMargin := func(l Learner) (bool, string) {
		if _, ok := l.(MarginLearner); ok {
			return true, ""
		}
		return false, "margin selection needs a MarginLearner (|w·x+b| or affine output)"
	}
	isVote := func(l Learner) (bool, string) {
		if _, ok := l.(VoteLearner); ok {
			return true, ""
		}
		return false, "learner-aware QBC needs a VoteLearner (a committee grown during training)"
	}
	isRules := func(l Learner) (bool, string) {
		if _, ok := l.(*rules.Model); ok {
			return true, ""
		}
		return false, "LFP/LFN is devised only for the rule-based learner (§4.3)"
	}
	always := func(Learner) (bool, string) { return true, "" }
	return []selectorProbe{
		{"QBC (learner-agnostic)", always, func(f string) bool {
			return f != "naive Bayes (extension)"
		}},
		{"margin", isMargin, func(f string) bool {
			return f == "linear (SVM)" || f == "non-convex non-linear (NN)"
		}},
		{"margin+blocking (§5.1)", func(l Learner) (bool, string) {
			if _, ok := l.(WeightedLinear); ok {
				return true, ""
			}
			return false, "blocking dimensions need an exposed weight vector (WeightedLinear)"
		}, func(f string) bool { return f == "linear (SVM)" }},
		{"learner-aware QBC", isVote, func(f string) bool {
			return f == "tree-based (random forest)"
		}},
		{"LFP/LFN", isRules, func(f string) bool {
			return f == "rule-based (monotone DNF)"
		}},
		{"random (supervised)", always, func(f string) bool {
			return f == "tree-based (random forest)"
		}},
		{"IWAL (extension)", isMargin, func(string) bool { return false }},
	}
}

// Combinations enumerates the full learner × selector grid with
// compatibility determined by the actual interface assertions the
// framework runs on — the programmatic Fig. 1b/Fig. 2.
func Combinations() []Combo {
	var out []Combo
	for _, lp := range allLearnerProbes() {
		l := lp.mk()
		for _, sp := range allSelectorProbes() {
			ok, reason := sp.compatible(l)
			out = append(out, Combo{
				LearnerFamily:  lp.family,
				SelectorName:   sp.name,
				Compatible:     ok,
				Reason:         reason,
				PaperEvaluated: ok && sp.evaluated(lp.family),
			})
		}
	}
	return out
}
