package core

import (
	"context"
	"math/rand"
	"testing"

	"github.com/alem/alem/internal/eval"

	"github.com/alem/alem/internal/bayes"
	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/linear"
	"github.com/alem/alem/internal/neural"
	"github.com/alem/alem/internal/tree"
)

// countingOracle records every pair it is asked to label, so tests can
// assert the loop never queries the same pair twice (labels are
// cumulative; re-querying would inflate the #labels metric).
type countingOracle struct {
	pool    *Pool
	seen    map[dataset.PairKey]int
	queries int
}

func newCountingOracle(p *Pool) *countingOracle {
	return &countingOracle{pool: p, seen: map[dataset.PairKey]int{}}
}

func (o *countingOracle) Label(p dataset.PairKey) bool {
	o.queries++
	o.seen[p]++
	for i, q := range o.pool.Pairs {
		if q == p {
			return o.pool.Truth[i]
		}
	}
	return false
}

func (o *countingOracle) Queries() int { return o.queries }

func TestRunNeverRelabelsAPair(t *testing.T) {
	pool := syntheticPool(400, 21)
	o := newCountingOracle(pool)
	res := Run(pool, linear.NewSVM(21), Margin{}, o, Config{Seed: 21, MaxLabels: 150})
	for p, n := range o.seen {
		if n > 1 {
			t.Fatalf("pair %v labeled %d times", p, n)
		}
	}
	if o.queries != res.LabelsUsed {
		t.Errorf("oracle queries %d != labels used %d", o.queries, res.LabelsUsed)
	}
}

func TestEnsembleNeverRelabelsAPair(t *testing.T) {
	pool := syntheticPool(400, 22)
	o := newCountingOracle(pool)
	res := RunEnsemble(pool, o, EnsembleConfig{
		Config: Config{Seed: 22, MaxLabels: 150}, Factory: svmFactory, Selector: Margin{},
	})
	for p, n := range o.seen {
		if n > 1 {
			t.Fatalf("pair %v labeled %d times", p, n)
		}
	}
	if o.queries != res.LabelsUsed {
		t.Errorf("oracle queries %d != labels used %d", o.queries, res.LabelsUsed)
	}
}

func TestRunLabelBudgetRespectedByEverySelector(t *testing.T) {
	pool := syntheticPool(300, 23)
	selectors := []Selector{
		Margin{}, BlockedMargin{TopK: 2}, Random{},
		QBC{B: 3, Factory: svmFactory},
	}
	for _, sel := range selectors {
		o := newCountingOracle(pool)
		res := Run(pool, linear.NewSVM(23), sel, o, Config{Seed: 23, MaxLabels: 77})
		if res.LabelsUsed > 77 {
			t.Errorf("%s: labels used %d > budget 77", sel.Name(), res.LabelsUsed)
		}
	}
}

// TestNNActiveEnsemble exercises the §5.2 extension the paper describes
// but does not evaluate: active ensembles over neural networks, which
// the generic EnsembleConfig supports without modification.
func TestNNActiveEnsemble(t *testing.T) {
	pool := syntheticPool(400, 24)
	res := RunEnsemble(pool, poolOracle(pool), EnsembleConfig{
		Config: Config{Seed: 24, MaxLabels: 150},
		Factory: func(seed int64) Learner {
			n := neural.NewNet(8, seed)
			n.Epochs = 10
			return n
		},
		Selector: Margin{},
	})
	if res.Curve.BestF1() < 0.6 {
		t.Errorf("NN ensemble best F1 = %.3f, want >= 0.6", res.Curve.BestF1())
	}
}

// TestNaiveBayesPlugsIn verifies the Fig. 2 plug-and-play claim with a
// learner outside the paper's four families.
func TestNaiveBayesPlugsIn(t *testing.T) {
	pool := syntheticPool(400, 25)
	nbFactory := func(int64) Learner { return bayes.New() }
	for _, sel := range []Selector{Margin{}, QBC{B: 5, Factory: nbFactory}, Random{}} {
		res := Run(pool, bayes.New(), sel, poolOracle(pool), Config{Seed: 25, MaxLabels: 120})
		if res.Curve.BestF1() < 0.6 {
			t.Errorf("NB + %s best F1 = %.3f, want >= 0.6", sel.Name(), res.Curve.BestF1())
		}
	}
}

func TestSelectorsHandleDegenerateRequests(t *testing.T) {
	pool := syntheticPool(50, 26)
	svm := linear.NewSVM(26)
	svm.Train(pool.X[:10], pool.Truth[:10])
	ctx := func() *SelectContext {
		return &SelectContext{
			Learner: svm, Pool: pool,
			LabeledIdx: seqInts(10), Labels: pool.Truth[:10],
			Unlabeled: seqInts(50)[10:],
			Rand:      rand.New(rand.NewSource(1)),
		}
	}
	for _, sel := range []Selector{Margin{}, BlockedMargin{TopK: 1}, Random{}, QBC{B: 2, Factory: svmFactory}} {
		if got := sel.Select(ctx(), 0); len(got) != 0 {
			t.Errorf("%s: k=0 returned %d examples", sel.Name(), len(got))
		}
		if got := sel.Select(ctx(), 1000); len(got) > 40 {
			t.Errorf("%s: k>pool returned %d examples (> unlabeled size)", sel.Name(), len(got))
		}
	}
	// Empty unlabeled pool.
	empty := ctx()
	empty.Unlabeled = nil
	for _, sel := range []Selector{Margin{}, Random{}} {
		if got := sel.Select(empty, 5); len(got) != 0 {
			t.Errorf("%s: empty pool returned %v", sel.Name(), got)
		}
	}
}

func TestForestQBCVarianceTargetsDisagreement(t *testing.T) {
	// Train a forest, then check that selected examples have higher
	// committee variance than the average unselected example.
	pool := syntheticPool(500, 27)
	f := tree.NewForest(20, 27)
	f.Train(pool.X[:100], pool.Truth[:100])
	ctx := &SelectContext{
		Learner: f, Pool: pool,
		Unlabeled: seqInts(500)[100:],
		Rand:      rand.New(rand.NewSource(2)),
	}
	sel := ForestQBC{}.Select(ctx, 10)
	if len(sel) == 0 {
		t.Fatal("nothing selected")
	}
	variance := func(i int) float64 {
		pos, total := f.Votes(pool.X[i])
		p := float64(pos) / float64(total)
		return p * (1 - p)
	}
	var selVar float64
	for _, i := range sel {
		selVar += variance(i)
	}
	selVar /= float64(len(sel))
	var avgVar float64
	for _, i := range ctx.Unlabeled {
		avgVar += variance(i)
	}
	avgVar /= float64(len(ctx.Unlabeled))
	if selVar < avgVar {
		t.Errorf("selected variance %.4f below pool average %.4f", selVar, avgVar)
	}
}

func TestMarginSelectsSmallestMargins(t *testing.T) {
	pool := syntheticPool(300, 28)
	svm := linear.NewSVM(28)
	svm.Train(pool.X[:60], pool.Truth[:60])
	unlabeled := seqInts(300)[60:]
	ctx := &SelectContext{
		Learner: svm, Pool: pool, Unlabeled: unlabeled,
		Rand: rand.New(rand.NewSource(3)),
	}
	sel := Margin{}.Select(ctx, 5)
	maxSel := 0.0
	for _, i := range sel {
		if m := svm.Margin(pool.X[i]); m > maxSel {
			maxSel = m
		}
	}
	// No unselected example may have a strictly smaller margin than the
	// largest selected one.
	selSet := map[int]bool{}
	for _, i := range sel {
		selSet[i] = true
	}
	for _, i := range unlabeled {
		if selSet[i] {
			continue
		}
		if svm.Margin(pool.X[i]) < maxSel-1e-12 {
			t.Fatalf("unselected example %d has margin %.6f < selected max %.6f",
				i, svm.Margin(pool.X[i]), maxSel)
		}
	}
}

// featureVecDim guards against accidental dimension mismatches between
// extractor and pool construction.
func TestPoolVectorWidthsConsistent(t *testing.T) {
	pool := syntheticPool(50, 29)
	w := len(pool.X[0])
	for i, x := range pool.X {
		if len(x) != w {
			t.Fatalf("vector %d has width %d, want %d", i, len(x), w)
		}
	}
	_ = feature.Vector(nil) // keep the feature import honest
}

func TestRunTinyLabelBudget(t *testing.T) {
	// MaxLabels below the seed-set size: the run must clamp and terminate.
	pool := syntheticPool(200, 30)
	res := Run(pool, linear.NewSVM(30), Margin{}, poolOracle(pool), Config{
		Seed: 30, MaxLabels: 10,
	})
	if res.LabelsUsed > 10 {
		t.Errorf("labels used %d > budget 10", res.LabelsUsed)
	}
	if len(res.Curve) == 0 {
		t.Error("no curve points recorded")
	}
}

func TestRunOnIterationCalledPerPoint(t *testing.T) {
	pool := syntheticPool(200, 31)
	calls := 0
	res := Run(pool, linear.NewSVM(31), Margin{}, poolOracle(pool), Config{
		Seed: 31, MaxLabels: 60,
		OnIteration: func(l Learner, pt *eval.Point) {
			calls++
			pt.Depth = 7 // enrichment must land in the recorded point
		},
	})
	if calls != len(res.Curve) {
		t.Errorf("OnIteration called %d times for %d points", calls, len(res.Curve))
	}
	for _, p := range res.Curve {
		if p.Depth != 7 {
			t.Fatal("OnIteration enrichment lost")
		}
	}
}

func TestParallelPredictMatchesSequential(t *testing.T) {
	pool := syntheticPool(1000, 32)
	svm := linear.NewSVM(32)
	svm.Train(pool.X[:100], pool.Truth[:100])
	idx := seqInts(1000)
	par, err := parallelPredict(context.Background(), svm.Predict, pool, idx, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j, i := range idx {
		if par[j] != svm.Predict(pool.X[i]) {
			t.Fatalf("parallel prediction %d differs", j)
		}
	}
	// Small input takes the sequential path; same contract.
	small, err := parallelPredict(context.Background(), svm.Predict, pool, idx[:10], 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 10; j++ {
		if small[j] != svm.Predict(pool.X[j]) {
			t.Fatalf("sequential-path prediction %d differs", j)
		}
	}
}

// TestConcurrentRunsAreIndependent runs several AL loops concurrently on
// the same pool; with -race this catches any shared mutable state in
// learners, selectors or the pool.
func TestConcurrentRunsAreIndependent(t *testing.T) {
	pool := syntheticPool(300, 60)
	results := make([]*Result, 4)
	done := make(chan int, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			results[g] = Run(pool, linear.NewSVM(60), Margin{}, poolOracle(pool),
				Config{Seed: 60, MaxLabels: 80})
			done <- g
		}(g)
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	for g := 1; g < 4; g++ {
		if len(results[g].Curve) != len(results[0].Curve) {
			t.Fatal("concurrent same-seed runs diverged")
		}
		for i := range results[g].Curve {
			if results[g].Curve[i].F1 != results[0].Curve[i].F1 {
				t.Fatal("concurrent same-seed runs produced different curves")
			}
		}
	}
}

func TestStabilityStopTerminatesEarly(t *testing.T) {
	// An easy pool: the model stabilizes long before labels run out, so
	// the churn criterion should fire well before MaxLabels.
	pool := syntheticPool(800, 61)
	capped := Run(pool, tree.NewForest(10, 61), ForestQBC{}, poolOracle(pool), Config{
		Seed: 61, MaxLabels: 500,
	})
	stopped := Run(pool, tree.NewForest(10, 61), ForestQBC{}, poolOracle(pool), Config{
		Seed: 61, MaxLabels: 500, StabilityWindow: 3,
	})
	if stopped.LabelsUsed >= capped.LabelsUsed {
		t.Errorf("stability stop used %d labels, no fewer than the capped run's %d",
			stopped.LabelsUsed, capped.LabelsUsed)
	}
	// Quality must not collapse relative to the full run.
	if stopped.Curve.FinalF1() < capped.Curve.FinalF1()-0.1 {
		t.Errorf("stability-stopped F1 %.3f far below full run %.3f",
			stopped.Curve.FinalF1(), capped.Curve.FinalF1())
	}
}

func TestHeldOutFractionConfigurable(t *testing.T) {
	pool := syntheticPool(400, 62)
	res := Run(pool, linear.NewSVM(62), Margin{}, poolOracle(pool), Config{
		Seed: 62, Mode: HeldOut, HoldoutFrac: 0.5, MaxLabels: 60,
	})
	if res.TestSize != 200 {
		t.Errorf("50%% holdout test size = %d, want 200", res.TestSize)
	}
}

func TestStabilityEpsilonCustom(t *testing.T) {
	pool := syntheticPool(400, 63)
	// A huge epsilon treats everything as stable: stop after the window.
	res := Run(pool, linear.NewSVM(63), Margin{}, poolOracle(pool), Config{
		Seed: 63, StabilityWindow: 2, StabilityEpsilon: 1.0,
	})
	// Seed 30 + window 2 extra iterations at batch 10 ≈ 50-60 labels.
	if res.LabelsUsed > 80 {
		t.Errorf("epsilon=1 run used %d labels, want immediate stability stop", res.LabelsUsed)
	}
}

func TestCurveFieldsWellFormed(t *testing.T) {
	pool := syntheticPool(300, 64)
	res := Run(pool, linear.NewSVM(64), QBC{B: 3, Factory: svmFactory},
		poolOracle(pool), Config{Seed: 64, MaxLabels: 80})
	for i, p := range res.Curve {
		if p.F1 < 0 || p.F1 > 1 || p.Precision < 0 || p.Precision > 1 || p.Recall < 0 || p.Recall > 1 {
			t.Fatalf("point %d has out-of-range metrics: %+v", i, p)
		}
		if p.TrainTime < 0 || p.CommitteeCreateTime < 0 || p.ScoreTime < 0 {
			t.Fatalf("point %d has negative latency: %+v", i, p)
		}
		if p.Labels < 1 || p.Labels > pool.Len() {
			t.Fatalf("point %d labels %d outside [1,%d]", i, p.Labels, pool.Len())
		}
		// F1 must be consistent with precision/recall.
		if p.Precision+p.Recall > 0 {
			want := 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
			if diff := p.F1 - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("point %d F1 %v inconsistent with P/R %v/%v", i, p.F1, p.Precision, p.Recall)
			}
		}
	}
}
