package core

import (
	"context"
	"fmt"

	"github.com/alem/alem/internal/eval"
	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/oracle"
)

// EvalMode selects the train/test protocol (§6 "Train-Test Splits").
type EvalMode int

const (
	// Progressive evaluates every iteration's model on ALL post-blocking
	// pairs, labeled and unlabeled — the paper's progressive F1.
	Progressive EvalMode = iota
	// HeldOut uses the conventional supervised split: 80% of the pool is
	// the selection universe, 20% is a held-out test set (Figs. 16, 17).
	HeldOut
)

// Defaults substituted for zero-valued Config fields. A zero value means
// "unset, use the paper's setting" — Config cannot express a literal
// zero for these fields (a zero seed set, batch, holdout fraction or
// stability epsilon would be degenerate anyway; Validate documents the
// accepted ranges).
const (
	// DefaultSeedLabels is the paper's initial labeled sample (~30, §3).
	DefaultSeedLabels = 30
	// DefaultBatchSize is the paper's per-iteration batch (10, §6).
	DefaultBatchSize = 10
	// DefaultHoldoutFrac is the held-out fraction under HeldOut.
	DefaultHoldoutFrac = 0.2
	// DefaultStabilityEpsilon is the churn threshold when a
	// StabilityWindow is set.
	DefaultStabilityEpsilon = 0.002
	// DefaultAbstainCutoff is how many abstentions a batch oracle may
	// issue for one pair before the engine retires it from the pool
	// (resolved at use, not in withDefaults, so legacy snapshots keep
	// their exact bytes).
	DefaultAbstainCutoff = 3
)

// Config is the protocol of one active-learning run. Zero values pick the
// paper's settings (seed 30, batch 10); see the Default* constants and
// Validate for the accepted ranges.
type Config struct {
	// SeedLabels is the size of the initial labeled sample. 0 means
	// DefaultSeedLabels (30).
	SeedLabels int
	// BatchSize is the number of examples labeled per iteration. 0 means
	// DefaultBatchSize (10).
	BatchSize int
	// MaxLabels terminates the run after this many Oracle queries; 0
	// means the whole pool may be labeled (the noisy-Oracle criterion).
	MaxLabels int
	// TargetF1 terminates the run as soon as the evaluated F1 reaches it
	// (the perfect-Oracle criterion: near-perfect ≈ 0.99); 0 disables.
	TargetF1 float64
	// Mode chooses the evaluation protocol.
	Mode EvalMode
	// HoldoutFrac is the held-out fraction under HeldOut, in (0, 1).
	// 0 means DefaultHoldoutFrac (0.2).
	HoldoutFrac float64
	// Seed makes the run deterministic.
	Seed int64
	// OnIteration, if set, can enrich each recorded point (the
	// interpretability experiments attach #DNF atoms and tree depth).
	// New code should prefer a Session Observer, which subsumes it.
	// It is not serialized into Snapshots.
	OnIteration func(learner Learner, pt *eval.Point) `json:"-"`
	// StabilityWindow enables a ground-truth-free stopping criterion the
	// paper's §6.2 motivates ("the sweet spot in terms of when to
	// terminate active learning ... may differ across datasets"): stop
	// when the model's predictions over the pool have churned less than
	// StabilityEpsilon (fraction of flipped predictions) for this many
	// consecutive iterations. 0 disables.
	StabilityWindow int
	// StabilityEpsilon is the churn threshold, in (0, 1]. 0 means
	// DefaultStabilityEpsilon (0.002).
	StabilityEpsilon float64
	// MaxDollars terminates the run once the priced batch oracle's cost
	// ledger can no longer afford another answer (StopBudgetExhausted);
	// 0 disables dollar budgeting. It only applies to sessions built
	// with NewBatchSession over an oracle that reports a positive
	// MaxAnswerCost — per-pair and free oracles never spend.
	MaxDollars float64 `json:",omitempty"`
	// AbstainCutoff is how many times a batch oracle may abstain on one
	// pair before the engine retires the pair (removes it from the pool
	// without a label) instead of requeueing it — the starvation guard
	// that keeps a stubbornly-unsure labeler from pinning the same pair
	// forever. 0 means DefaultAbstainCutoff (3).
	AbstainCutoff int `json:",omitempty"`
	// WarmStartModel records the transfer warm-start protocol: when
	// non-empty, the session skips the seed bootstrap and drives
	// selection with a pre-trained learner (attached via SetWarmStart)
	// until the labeled set contains both classes, at which point the
	// usual retrain-from-scratch protocol takes over. CLIs store the
	// artifact path here; in-process callers get "inline". A snapshot of
	// a warm-started run carries the value, and Step refuses to run a
	// restored session whose warm learner was not re-attached.
	WarmStartModel string `json:",omitempty"`
	// Workers caps the goroutines used by the run's parallel hot paths:
	// evaluation prediction, selector scoring and QBC committee training.
	// 0 means one worker per CPU (runtime.GOMAXPROCS), resolved on the
	// machine doing the work; 1 forces the serial path. Workers is
	// machine tuning, not protocol — all shared randomness is pre-drawn
	// before any fan-out, so every worker count produces bit-identical
	// results — which is why it is excluded from Snapshots and
	// checkpoints stay portable across machines (a restored session
	// defaults to the restoring machine's CPU count).
	Workers int `json:"-"`
}

// Validate rejects configs whose fields are outside their documented
// ranges: negative counts, fractions outside [0, 1), a TargetF1 or
// StabilityEpsilon above 1. A zero value is always valid and means "use
// the default" (see the Default* constants); Validate is how a caller
// distinguishes a deliberate out-of-range value from an unset field.
func (c Config) Validate() error {
	switch {
	case c.SeedLabels < 0:
		return fmt.Errorf("core: Config.SeedLabels %d is negative", c.SeedLabels)
	case c.BatchSize < 0:
		return fmt.Errorf("core: Config.BatchSize %d is negative", c.BatchSize)
	case c.MaxLabels < 0:
		return fmt.Errorf("core: Config.MaxLabels %d is negative", c.MaxLabels)
	case c.TargetF1 < 0 || c.TargetF1 > 1:
		return fmt.Errorf("core: Config.TargetF1 %g outside [0, 1]", c.TargetF1)
	case c.HoldoutFrac < 0 || c.HoldoutFrac >= 1:
		return fmt.Errorf("core: Config.HoldoutFrac %g outside [0, 1)", c.HoldoutFrac)
	case c.StabilityWindow < 0:
		return fmt.Errorf("core: Config.StabilityWindow %d is negative", c.StabilityWindow)
	case c.StabilityEpsilon < 0 || c.StabilityEpsilon > 1:
		return fmt.Errorf("core: Config.StabilityEpsilon %g outside [0, 1]", c.StabilityEpsilon)
	case c.Workers < 0:
		return fmt.Errorf("core: Config.Workers %d is negative", c.Workers)
	case c.MaxDollars < 0:
		return fmt.Errorf("core: Config.MaxDollars %g is negative", c.MaxDollars)
	case c.AbstainCutoff < 0:
		return fmt.Errorf("core: Config.AbstainCutoff %d is negative", c.AbstainCutoff)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.SeedLabels == 0 {
		c.SeedLabels = DefaultSeedLabels
	}
	if c.BatchSize == 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.HoldoutFrac == 0 {
		c.HoldoutFrac = DefaultHoldoutFrac
	}
	if c.StabilityEpsilon == 0 {
		c.StabilityEpsilon = DefaultStabilityEpsilon
	}
	return c
}

// Result is the outcome of one run.
type Result struct {
	Curve      eval.Curve
	LabelsUsed int
	// TestSize is the number of pairs each curve point was evaluated on.
	TestSize int
	// Reason records why the run terminated (StopNone on results from
	// sources that predate the Session engine, e.g. deserialized data).
	Reason StopReason
}

// Run executes the active-learning loop of Fig. 1a: train on the
// cumulative labeled set, evaluate, select a batch with the example
// selector, query the Oracle, repeat. It terminates on TargetF1,
// MaxLabels, an empty selection (rule learners), stability, or pool
// exhaustion.
//
// Run is a compatibility wrapper over the Session engine and produces
// bit-identical curves to the pre-Session implementation; use a Session
// directly for cancellation, the event stream, or checkpoint/resume. It
// panics on an invalid Config (NewSession returns the error instead).
func Run(pool *Pool, learner Learner, sel Selector, o oracle.Oracle, cfg Config) *Result {
	s, err := NewSession(pool, learner, sel, o, cfg)
	if err != nil {
		panic(err)
	}
	res, _ := s.Run(context.Background())
	return res
}

// parallelPredictCutoff is the test-universe size below which parallel
// prediction is not worth the goroutine fan-out and the serial path is
// taken instead. It is the shared parallelCutoff of the fan-out
// substrate; the name survives for the tests and docs that predate it.
const parallelPredictCutoff = parallelCutoff

// parallelPredict evaluates predict over pool.X[idx...] with up to
// workers goroutines (<= 0 means one per CPU), preserving order. Learner
// Predict methods only read model state, so concurrent evaluation is
// safe. Cancelling ctx makes every worker stop within cancelCheckStride
// predictions; the partial output is discarded and ctx's error returned.
func parallelPredict(ctx context.Context, predict func(feature.Vector) bool, pool *Pool, idx []int, workers int) ([]bool, error) {
	out := make([]bool, len(idx))
	if err := parallelFor(ctx, len(idx), workers, parallelCutoff, func(j int) {
		out[j] = predict(pool.X[idx[j]])
	}); err != nil {
		return nil, err
	}
	return out, nil
}

func bothClasses(labels []bool) bool {
	if len(labels) == 0 {
		return false
	}
	first := labels[0]
	for _, l := range labels[1:] {
		if l != first {
			return true
		}
	}
	return false
}
