package core

import (
	"math/rand"
	"runtime"
	"sync"
	"time"

	"github.com/alem/alem/internal/eval"
	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/oracle"
)

// EvalMode selects the train/test protocol (§6 "Train-Test Splits").
type EvalMode int

const (
	// Progressive evaluates every iteration's model on ALL post-blocking
	// pairs, labeled and unlabeled — the paper's progressive F1.
	Progressive EvalMode = iota
	// HeldOut uses the conventional supervised split: 80% of the pool is
	// the selection universe, 20% is a held-out test set (Figs. 16, 17).
	HeldOut
)

// Config is the protocol of one active-learning run. Zero values pick the
// paper's settings (seed 30, batch 10).
type Config struct {
	// SeedLabels is the size of the initial labeled sample (~30, §3).
	SeedLabels int
	// BatchSize is the number of examples labeled per iteration (10, §6).
	BatchSize int
	// MaxLabels terminates the run after this many Oracle queries; 0
	// means the whole pool may be labeled (the noisy-Oracle criterion).
	MaxLabels int
	// TargetF1 terminates the run as soon as the evaluated F1 reaches it
	// (the perfect-Oracle criterion: near-perfect ≈ 0.99); 0 disables.
	TargetF1 float64
	// Mode chooses the evaluation protocol.
	Mode EvalMode
	// HoldoutFrac is the held-out fraction under HeldOut (default 0.2).
	HoldoutFrac float64
	// Seed makes the run deterministic.
	Seed int64
	// OnIteration, if set, can enrich each recorded point (the
	// interpretability experiments attach #DNF atoms and tree depth).
	OnIteration func(learner Learner, pt *eval.Point)
	// StabilityWindow enables a ground-truth-free stopping criterion the
	// paper's §6.2 motivates ("the sweet spot in terms of when to
	// terminate active learning ... may differ across datasets"): stop
	// when the model's predictions over the pool have churned less than
	// StabilityEpsilon (fraction of flipped predictions) for this many
	// consecutive iterations. 0 disables.
	StabilityWindow int
	// StabilityEpsilon is the churn threshold (default 0.002 when a
	// window is set).
	StabilityEpsilon float64
}

func (c Config) withDefaults() Config {
	if c.SeedLabels == 0 {
		c.SeedLabels = 30
	}
	if c.BatchSize == 0 {
		c.BatchSize = 10
	}
	if c.HoldoutFrac == 0 {
		c.HoldoutFrac = 0.2
	}
	return c
}

// Result is the outcome of one run.
type Result struct {
	Curve      eval.Curve
	LabelsUsed int
	// TestSize is the number of pairs each curve point was evaluated on.
	TestSize int
}

// Run executes the active-learning loop of Fig. 1a: train on the
// cumulative labeled set, evaluate, select a batch with the example
// selector, query the Oracle, repeat. It terminates on TargetF1,
// MaxLabels, an empty selection (rule learners), or pool exhaustion.
func Run(pool *Pool, learner Learner, sel Selector, o oracle.Oracle, cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))

	// Build the selection universe and the test set.
	all := r.Perm(pool.Len())
	var testIdx, universe []int
	switch cfg.Mode {
	case HeldOut:
		cut := int(float64(pool.Len()) * cfg.HoldoutFrac)
		testIdx, universe = all[:cut], all[cut:]
	default:
		testIdx = make([]int, pool.Len())
		for i := range testIdx {
			testIdx[i] = i
		}
		universe = all
	}
	maxLabels := cfg.MaxLabels
	if maxLabels <= 0 || maxLabels > len(universe) {
		maxLabels = len(universe)
	}

	// Initial seed sample. If a single class comes back, keep drawing
	// batches until both classes are present (a degenerate training set
	// cannot bootstrap any learner).
	labeled := make([]int, 0, maxLabels)
	labels := make([]bool, 0, maxLabels)
	unlabeled := append([]int(nil), universe...)
	take := func(k int) []int {
		if k > len(unlabeled) {
			k = len(unlabeled)
		}
		out := unlabeled[:k]
		unlabeled = unlabeled[k:]
		return out
	}
	for _, i := range take(min(cfg.SeedLabels, maxLabels)) {
		labeled = append(labeled, i)
		labels = append(labels, o.Label(pool.Pairs[i]))
	}
	for !bothClasses(labels) && len(unlabeled) > 0 && len(labeled) < maxLabels {
		for _, i := range take(cfg.BatchSize) {
			labeled = append(labeled, i)
			labels = append(labels, o.Label(pool.Pairs[i]))
		}
	}

	res := &Result{TestSize: len(testIdx)}
	var prevPred []bool
	stableIters := 0
	stabilityEps := cfg.StabilityEpsilon
	if stabilityEps == 0 {
		stabilityEps = 0.002
	}
	for {
		// Train on the cumulative labeled set (timed).
		trainX := make([]feature.Vector, len(labeled))
		trainY := make([]bool, len(labeled))
		for j, i := range labeled {
			trainX[j] = pool.X[i]
			trainY[j] = labels[j]
		}
		start := time.Now()
		learner.Train(trainX, trainY)
		trainTime := time.Since(start)

		// Evaluate on the test universe (prediction is read-only on every
		// learner, so it parallelizes safely).
		pred := parallelPredict(learner.Predict, pool, testIdx)
		truth := make([]bool, len(testIdx))
		for j, i := range testIdx {
			truth[j] = pool.Truth[i]
		}
		conf := eval.Evaluate(pred, truth)
		pt := eval.Point{
			Labels:    len(labeled),
			F1:        conf.F1(),
			Precision: conf.Precision(),
			Recall:    conf.Recall(),
			TrainTime: trainTime,
		}

		// Select the next batch (selector records its own latencies).
		ctx := &SelectContext{
			Learner: learner, Pool: pool,
			LabeledIdx: labeled, Labels: labels,
			Unlabeled: unlabeled, Rand: r,
		}
		// Ground-truth-free stability stop: track prediction churn.
		if cfg.StabilityWindow > 0 {
			if prevPred != nil {
				flips := 0
				for j := range pred {
					if pred[j] != prevPred[j] {
						flips++
					}
				}
				if float64(flips) <= stabilityEps*float64(len(pred)) {
					stableIters++
				} else {
					stableIters = 0
				}
			}
			prevPred = pred
		}

		var batch []int
		done := len(labeled) >= maxLabels || len(unlabeled) == 0 ||
			(cfg.TargetF1 > 0 && pt.F1 >= cfg.TargetF1) ||
			(cfg.StabilityWindow > 0 && stableIters >= cfg.StabilityWindow)
		if !done {
			k := min(cfg.BatchSize, maxLabels-len(labeled))
			batch = sel.Select(ctx, k)
			done = len(batch) == 0
		}
		pt.CommitteeCreateTime = ctx.CommitteeCreate
		pt.ScoreTime = ctx.Score
		if cfg.OnIteration != nil {
			cfg.OnIteration(learner, &pt)
		}
		res.Curve = append(res.Curve, pt)
		if done {
			break
		}

		// Query the Oracle and move the batch into the labeled set.
		inBatch := make(map[int]struct{}, len(batch))
		for _, i := range batch {
			inBatch[i] = struct{}{}
			labeled = append(labeled, i)
			labels = append(labels, o.Label(pool.Pairs[i]))
		}
		next := unlabeled[:0]
		for _, i := range unlabeled {
			if _, ok := inBatch[i]; !ok {
				next = append(next, i)
			}
		}
		unlabeled = next
	}
	res.LabelsUsed = len(labeled)
	return res
}

// parallelPredict evaluates predict over pool.X[idx...] with one worker
// per CPU, preserving order. Learner Predict methods only read model
// state, so concurrent evaluation is safe.
func parallelPredict(predict func(feature.Vector) bool, pool *Pool, idx []int) []bool {
	out := make([]bool, len(idx))
	nWorkers := runtime.GOMAXPROCS(0)
	if len(idx) < 256 || nWorkers == 1 {
		for j, i := range idx {
			out[j] = predict(pool.X[i])
		}
		return out
	}
	var wg sync.WaitGroup
	chunk := (len(idx) + nWorkers - 1) / nWorkers
	for w := 0; w < nWorkers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, len(idx))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for j := lo; j < hi; j++ {
				out[j] = predict(pool.X[idx[j]])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

func bothClasses(labels []bool) bool {
	if len(labels) == 0 {
		return false
	}
	first := labels[0]
	for _, l := range labels[1:] {
		if l != first {
			return true
		}
	}
	return false
}
