package core

// Transfer warm-start tests: a learner pre-trained on a different pool
// drives the first selections (no random seed bootstrap is bought), the
// session's own learner takes over once the labeled set contains both
// classes, and the whole protocol survives snapshot/resume.

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/alem/alem/internal/linear"
)

// warmLearner trains a fresh SVM on a source pool's full truth — the
// artifact a transfer run would load from disk.
func warmLearner(seed int64) Learner {
	src := syntheticPool(400, seed)
	l := linear.NewSVM(seed)
	l.Train(src.X, src.Truth)
	return l
}

func TestWarmStartSkipsBootstrapAndHandsOver(t *testing.T) {
	pool := ambiguousPool(400, 91)
	cfg := Config{Seed: 91, MaxLabels: 80}
	s := mustSession(t, pool, linear.NewSVM(91), Margin{}, cfg)
	if err := s.SetWarmStart(warmLearner(91)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) == 0 {
		t.Fatal("warm-start run produced no curve")
	}
	// No seed bootstrap: the first iteration evaluates before any label
	// was bought, where a cold run enters with the ~30-label seed sample.
	if res.Curve[0].Labels != 0 {
		t.Errorf("first curve point has %d labels, want 0 (bootstrap must be skipped)", res.Curve[0].Labels)
	}
	if s.Reason() != StopBudget {
		t.Errorf("reason = %v, want StopBudget", s.Reason())
	}
	if res.LabelsUsed != cfg.MaxLabels {
		t.Errorf("LabelsUsed = %d, want the full budget %d", res.LabelsUsed, cfg.MaxLabels)
	}
	// The handover happened: by the end the labeled set trains the
	// session's own learner.
	if s.useWarm() {
		t.Error("session still on the warm learner after a full budget of labels")
	}
	// The config records the protocol so snapshots carry it.
	if s.Snapshot().Config.WarmStartModel != "inline" {
		t.Errorf("snapshot WarmStartModel = %q, want \"inline\"", s.Snapshot().Config.WarmStartModel)
	}
}

// TestWarmStartResumeBitIdentical pins the checkpoint story: a warm-start
// run snapshotted mid-way and restored — with the warm learner
// re-attached — reproduces the uninterrupted run's curve exactly; the
// replay skips retraining on prefixes the warm learner served.
func TestWarmStartResumeBitIdentical(t *testing.T) {
	pool := ambiguousPool(400, 92)
	cfg := Config{Seed: 92, MaxLabels: 80}

	ref := mustSession(t, pool, linear.NewSVM(92), Margin{}, cfg)
	if err := ref.SetWarmStart(warmLearner(92)); err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	victim := mustSession(t, pool, linear.NewSVM(92), Margin{}, cfg)
	if err := victim.SetWarmStart(warmLearner(92)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if done, err := victim.Step(context.Background()); done || err != nil {
			t.Fatalf("step %d: done=%v err=%v", i, done, err)
		}
	}
	var buf bytes.Buffer
	if err := victim.Snapshot().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	sn, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := Restore(pool, linear.NewSVM(92), Margin{}, poolOracle(pool), sn)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.SetWarmStart(warmLearner(92)); err != nil {
		t.Fatal(err)
	}
	resRes, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	curvesEqual(t, refRes.Curve, resRes.Curve)
}

// TestWarmStartMissingLearnerRefusesToRun pins the restore guard: a
// snapshot that records a warm-start protocol cannot be driven without
// re-attaching the learner — silently falling back to a cold start would
// diverge from the recorded trajectory.
func TestWarmStartMissingLearnerRefusesToRun(t *testing.T) {
	pool := ambiguousPool(300, 93)
	s := mustSession(t, pool, linear.NewSVM(93), Margin{}, Config{Seed: 93, MaxLabels: 40})
	if err := s.SetWarmStart(warmLearner(93)); err != nil {
		t.Fatal(err)
	}
	if done, err := s.Step(context.Background()); done || err != nil {
		t.Fatalf("done=%v err=%v", done, err)
	}
	var buf bytes.Buffer
	if err := s.Snapshot().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	sn, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(pool, linear.NewSVM(93), Margin{}, poolOracle(pool), sn)
	if err != nil {
		t.Fatal(err)
	}
	done, err := restored.Step(context.Background())
	if !done || err == nil {
		t.Fatalf("Step without SetWarmStart: done=%v err=%v, want an error", done, err)
	}
	if !strings.Contains(err.Error(), "warm-start") {
		t.Errorf("error %q does not mention the missing warm-start learner", err)
	}
}

// TestSetWarmStartRejectsNil covers the constructor contract.
func TestSetWarmStartRejectsNil(t *testing.T) {
	pool := ambiguousPool(100, 94)
	s := mustSession(t, pool, linear.NewSVM(94), Margin{}, Config{Seed: 94, MaxLabels: 20})
	if err := s.SetWarmStart(nil); err == nil {
		t.Fatal("SetWarmStart(nil) accepted")
	}
}
