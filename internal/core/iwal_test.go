package core

import (
	"math/rand"
	"testing"

	"github.com/alem/alem/internal/linear"
	"github.com/alem/alem/internal/tree"
)

func TestIWALRequiresMarginLearner(t *testing.T) {
	pool := syntheticPool(100, 40)
	ctx := &SelectContext{
		Learner:   tree.NewForest(5, 1),
		Pool:      pool,
		Unlabeled: seqInts(pool.Len()),
		Rand:      rand.New(rand.NewSource(1)),
	}
	if got := (IWAL{}).Select(ctx, 5); got != nil {
		t.Error("IWAL accepted a non-margin learner")
	}
}

func TestIWALSelectsUpToK(t *testing.T) {
	pool := syntheticPool(400, 41)
	svm := linear.NewSVM(41)
	svm.Train(pool.X[:80], pool.Truth[:80])
	ctx := &SelectContext{
		Learner: svm, Pool: pool,
		Unlabeled: seqInts(400)[80:],
		Rand:      rand.New(rand.NewSource(2)),
	}
	got := (IWAL{}).Select(ctx, 10)
	if len(got) == 0 || len(got) > 10 {
		t.Fatalf("selected %d examples, want 1..10", len(got))
	}
	seen := map[int]bool{}
	for _, i := range got {
		if seen[i] {
			t.Fatal("duplicate selection")
		}
		seen[i] = true
	}
}

func TestIWALLearnsButUsesMoreLabels(t *testing.T) {
	// The §2 claim: IWAL reaches comparable quality but needs more
	// labels than margin to converge, because its probability floor
	// spends budget on unambiguous examples.
	pool := syntheticPool(800, 42)
	marginRes := Run(pool, linear.NewSVM(42), Margin{}, poolOracle(pool),
		Config{Seed: 42, MaxLabels: 400})
	iwalRes := Run(pool, linear.NewSVM(42), IWAL{PMin: 0.3}, poolOracle(pool),
		Config{Seed: 42, MaxLabels: 400})
	if iwalRes.Curve.BestF1() < 0.7 {
		t.Errorf("IWAL best F1 = %.3f, want >= 0.7 (it does learn)", iwalRes.Curve.BestF1())
	}
	mConv := marginRes.Curve.ConvergenceLabels(0.03)
	iConv := iwalRes.Curve.ConvergenceLabels(0.03)
	if iConv < mConv {
		t.Logf("note: IWAL converged earlier (%d) than margin (%d) on this seed", iConv, mConv)
	}
}

func TestIWALDeterministicGivenSeed(t *testing.T) {
	pool := syntheticPool(300, 43)
	a := Run(pool, linear.NewSVM(43), IWAL{}, poolOracle(pool), Config{Seed: 43, MaxLabels: 100})
	b := Run(pool, linear.NewSVM(43), IWAL{}, poolOracle(pool), Config{Seed: 43, MaxLabels: 100})
	if len(a.Curve) != len(b.Curve) {
		t.Fatal("IWAL runs differ across identical seeds")
	}
	for i := range a.Curve {
		if a.Curve[i].F1 != b.Curve[i].F1 {
			t.Fatal("IWAL curve differs across identical seeds")
		}
	}
}

func TestBlockedForestQBC(t *testing.T) {
	pool := syntheticPool(600, 44)
	res := Run(pool, tree.NewForest(10, 44), BlockedForestQBC{TargetRecall: 0.95},
		poolOracle(pool), Config{Seed: 44, MaxLabels: 150})
	if f := res.Curve.BestF1(); f < 0.85 {
		t.Errorf("blocked forest QBC best F1 = %.3f, want >= 0.85", f)
	}
	// Plain ForestQBC on the same budget for comparison: blocking must
	// not collapse quality.
	plain := Run(pool, tree.NewForest(10, 44), ForestQBC{},
		poolOracle(pool), Config{Seed: 44, MaxLabels: 150})
	if res.Curve.BestF1() < plain.Curve.BestF1()-0.1 {
		t.Errorf("blocked QBC F1 %.3f far below plain %.3f",
			res.Curve.BestF1(), plain.Curve.BestF1())
	}
}

func TestBlockedForestQBCFallsBackForOtherLearners(t *testing.T) {
	pool := syntheticPool(100, 45)
	ctx := &SelectContext{
		Learner:   linear.NewSVM(45), // margin learner, no Votes
		Pool:      pool,
		Unlabeled: seqInts(pool.Len()),
		Rand:      rand.New(rand.NewSource(1)),
	}
	if got := (BlockedForestQBC{}).Select(ctx, 5); got != nil {
		t.Error("selector accepted a non-committee learner")
	}
}

func TestMineBlockingDNFPrunes(t *testing.T) {
	pool := syntheticPool(500, 46)
	f := tree.NewForest(10, 46)
	f.Train(pool.X[:150], pool.Truth[:150])
	ctx := &SelectContext{
		Learner: f, Pool: pool,
		LabeledIdx: seqInts(150), Labels: pool.Truth[:150],
		Unlabeled: seqInts(500)[150:],
		Rand:      rand.New(rand.NewSource(2)),
	}
	sel := BlockedForestQBC{TargetRecall: 0.9}.Select(ctx, 10)
	if len(sel) == 0 {
		t.Fatal("nothing selected")
	}
	// Selected examples must come from the unlabeled pool.
	valid := map[int]bool{}
	for _, i := range ctx.Unlabeled {
		valid[i] = true
	}
	for _, i := range sel {
		if !valid[i] {
			t.Fatalf("selected %d outside the unlabeled pool", i)
		}
	}
}

func TestCombinationsGrid(t *testing.T) {
	combos := Combinations()
	if len(combos) != 5*7 {
		t.Fatalf("grid = %d cells, want 35 (5 learners x 7 selectors)", len(combos))
	}
	lookup := func(learner, selector string) Combo {
		for _, c := range combos {
			if c.LearnerFamily == learner && c.SelectorName == selector {
				return c
			}
		}
		t.Fatalf("missing combo %s x %s", learner, selector)
		return Combo{}
	}
	// The compatibility matrix of Fig. 2.
	if !lookup("linear (SVM)", "margin").Compatible {
		t.Error("SVM x margin must be compatible")
	}
	if lookup("tree-based (random forest)", "margin").Compatible {
		t.Error("forest x margin must be incompatible (no margin)")
	}
	if lookup("rule-based (monotone DNF)", "margin").Compatible {
		t.Error("rules x margin must be incompatible")
	}
	if !lookup("rule-based (monotone DNF)", "LFP/LFN").Compatible {
		t.Error("rules x LFP/LFN must be compatible")
	}
	if lookup("linear (SVM)", "LFP/LFN").Compatible {
		t.Error("SVM x LFP/LFN must be incompatible")
	}
	if !lookup("tree-based (random forest)", "learner-aware QBC").Compatible {
		t.Error("forest x learner-aware QBC must be compatible")
	}
	if lookup("non-convex non-linear (NN)", "margin+blocking (§5.1)").Compatible {
		t.Error("NN x blocking dims must be incompatible (no weight vector)")
	}
	// QBC is compatible with everything.
	for _, c := range combos {
		if c.SelectorName == "QBC (learner-agnostic)" && !c.Compatible {
			t.Errorf("QBC incompatible with %s", c.LearnerFamily)
		}
	}
	// Incompatible cells must carry a reason.
	for _, c := range combos {
		if !c.Compatible && c.Reason == "" {
			t.Errorf("combo %s x %s incompatible without a reason", c.LearnerFamily, c.SelectorName)
		}
		if c.PaperEvaluated && !c.Compatible {
			t.Errorf("combo %s x %s marked evaluated but incompatible", c.LearnerFamily, c.SelectorName)
		}
	}
}

// TestQBCEntropyEquivalentToVariance pins the §4.1 substitution: for a
// binary committee, entropy and variance are monotone transforms of the
// vote fraction, so QBC selects the same examples either way.
func TestQBCEntropyEquivalentToVariance(t *testing.T) {
	pool := syntheticPool(400, 47)
	labeled := seqInts(60)
	mkCtx := func() *SelectContext {
		return &SelectContext{
			Learner: linear.NewSVM(47), Pool: pool,
			LabeledIdx: labeled, Labels: pool.Truth[:60],
			Unlabeled: seqInts(400)[60:],
			Rand:      rand.New(rand.NewSource(5)), // identical RNG stream
		}
	}
	varSel := QBC{B: 7, Factory: svmFactory}.Select(mkCtx(), 10)
	entSel := QBC{B: 7, Factory: svmFactory, UseEntropy: true}.Select(mkCtx(), 10)
	if len(varSel) != len(entSel) {
		t.Fatalf("selection sizes differ: %d vs %d", len(varSel), len(entSel))
	}
	for i := range varSel {
		if varSel[i] != entSel[i] {
			t.Fatalf("selection %d differs: variance %d vs entropy %d", i, varSel[i], entSel[i])
		}
	}
}

func TestBinaryEntropy(t *testing.T) {
	if binaryEntropy(0) != 0 || binaryEntropy(1) != 0 {
		t.Error("entropy at pure votes should be 0")
	}
	if e := binaryEntropy(0.5); e < 0.999 || e > 1.001 {
		t.Errorf("entropy(0.5) = %v, want 1 bit", e)
	}
	if binaryEntropy(0.3) >= binaryEntropy(0.5) {
		t.Error("entropy should peak at 0.5")
	}
}
