package core

import (
	"context"
	"runtime"
	"sync"
)

// parallelCutoff is the work-item count below which a fine-grained sweep
// (per-example prediction or scoring) is not worth the goroutine fan-out
// and the serial path is taken instead. Coarse-grained work — training a
// whole committee member per item — passes cutoff 2 instead: there the
// per-item cost dwarfs the fan-out overhead at any size.
const parallelCutoff = 256

// cancelCheckStride bounds how many work items a worker processes between
// context checks, so cancellation latency stays small without paying a
// per-item context read.
const cancelCheckStride = 64

// workerCount resolves a configured worker count: zero or negative means
// "all available CPUs", resolved on the machine doing the work rather
// than the one that wrote the config, which is what keeps snapshots
// portable.
func workerCount(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// parallelFor runs body(j) for every j in [0, n) across at most workers
// goroutines, splitting the index space into contiguous chunks. It is the
// deterministic fan-out substrate every parallel hot path (evaluation
// prediction, selector scoring, QBC committee training) is built on:
// body(j) must depend only on j and on state that is read-only during the
// sweep, so the result is bit-identical for every worker count — all
// shared randomness must be pre-drawn before the call.
//
// Below cutoff items (or with one worker) the sweep runs serially on the
// calling goroutine with the same cancellation discipline. Cancelling ctx
// stops every worker within cancelCheckStride items; the partial output
// is then meaningless and the context's error is returned.
func parallelFor(ctx context.Context, n, workers, cutoff int, body func(j int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n < cutoff || workers == 1 {
		for j := 0; j < n; j++ {
			if j%cancelCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			body(j)
		}
		return nil
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, n)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for j := lo; j < hi; j++ {
				if (j-lo)%cancelCheckStride == 0 && ctx.Err() != nil {
					return
				}
				body(j)
			}
		}(lo, hi)
	}
	wg.Wait()
	return ctx.Err()
}
