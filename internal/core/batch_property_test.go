package core

// Property tests for the costly-oracle engine over a sweep of seeded
// abstain/fault/price mixes: whatever the mix, (1) no pair is ever asked
// to abstain past its cutoff, (2) the ledger never exceeds the dollar
// budget at any event boundary, and (3) the run terminates with a typed
// reason from the budget/fault vocabulary within a bounded step count.

import (
	"context"
	"fmt"
	"testing"

	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/linear"
	"github.com/alem/alem/internal/oracle"
)

// abstainAudit wraps a BatchOracle and tallies the abstentions delivered
// per pair — the oracle-side view the cutoff property is checked
// against: once the engine retires a pair it must never submit it again,
// so no pair's tally can pass the cutoff.
type abstainAudit struct {
	inner   oracle.BatchOracle
	perPair map[dataset.PairKey]int
}

func (a *abstainAudit) LabelBatch(ctx context.Context, pairs []dataset.PairKey) ([]oracle.Answer, error) {
	out, err := a.inner.LabelBatch(ctx, pairs)
	for i, ans := range out {
		if ans.Err == nil && ans.Verdict == oracle.VerdictAbstain {
			a.perPair[pairs[i]]++
		}
	}
	return out, err
}

func (a *abstainAudit) Queries() int      { return a.inner.Queries() }
func (a *abstainAudit) UnwrapOracle() any { return a.inner }

func TestBatchOracleBudgetAndAbstainProperties(t *testing.T) {
	type mix struct {
		abstain, fail float64
		maxDollars    float64
		cutoff        int
	}
	mixes := []mix{
		{abstain: 0, fail: 0, maxDollars: 0},
		{abstain: 0.3, fail: 0, maxDollars: 0},
		{abstain: 0.3, fail: 0, maxDollars: 0.05},
		{abstain: 0.6, fail: 0, maxDollars: 0.08, cutoff: 1},
		{abstain: 0.2, fail: 0.2, maxDollars: 0},
		{abstain: 0.4, fail: 0.1, maxDollars: 0.04, cutoff: 2},
		{abstain: 0, fail: 0.3, maxDollars: 0.1},
	}
	allowed := map[StopReason]bool{
		StopBudget:          true,
		StopBudgetExhausted: true,
		StopOracleFailed:    true,
	}
	for mi, m := range mixes {
		for _, seed := range []int64{1, 2, 3} {
			t.Run(fmt.Sprintf("mix=%d/seed=%d", mi, seed), func(t *testing.T) {
				pool := syntheticPool(300, seed)
				sim := simPoolOracle(pool, oracle.LLMSimConfig{
					AbstainRate: m.abstain,
					NoiseRate:   0.1,
					FailRate:    m.fail,
					Price:       oracle.PriceTable{PerLabel: 0.002, PerAbstain: 0.0005},
				}, seed*100+int64(mi))
				audit := &abstainAudit{inner: sim, perPair: map[dataset.PairKey]int{}}
				cfg := Config{
					Seed: seed, MaxLabels: 60,
					MaxDollars: m.maxDollars, AbstainCutoff: m.cutoff,
				}
				s, err := NewBatchSession(pool, linear.NewSVM(seed), Margin{}, audit, cfg)
				if err != nil {
					t.Fatal(err)
				}

				// Property 2: spent never exceeds the budget, checked at
				// every event the engine emits.
				s.AddObserver(ObserverFunc(func(Event) {
					if m.maxDollars > 0 && s.Ledger().Spent > m.maxDollars+budgetEps {
						t.Errorf("ledger overspent mid-run: %.9f > %.9f", s.Ledger().Spent, m.maxDollars)
					}
				}))

				// Property 3: bounded termination with a typed reason.
				const maxSteps = 500
				done := false
				for i := 0; i < maxSteps && !done; i++ {
					var err error
					done, err = s.Step(context.Background())
					if err != nil && s.Reason() != StopOracleFailed {
						t.Fatalf("step error outside the fault vocabulary: %v (reason %v)", err, s.Reason())
					}
				}
				if !done {
					t.Fatalf("run did not terminate within %d steps", maxSteps)
				}
				if !allowed[s.Reason()] {
					t.Errorf("terminated with reason %v, want one of StopBudget/StopBudgetExhausted/StopOracleFailed",
						s.Reason())
				}

				// Property 1: no pair was asked past its abstain cutoff.
				cutoff := m.cutoff
				if cutoff == 0 {
					cutoff = DefaultAbstainCutoff
				}
				for p, n := range audit.perPair {
					if n > cutoff {
						t.Errorf("pair (%d,%d) abstained %d times, cutoff is %d", p.L, p.R, n, cutoff)
					}
				}

				// Ledger internal consistency at the end of every run.
				led := s.Ledger()
				if led.Answers != led.Labels+led.Abstains {
					t.Errorf("ledger answers %d != labels %d + abstains %d", led.Answers, led.Labels, led.Abstains)
				}
				if led.Labels != s.Result().LabelsUsed {
					t.Errorf("ledger labels %d != LabelsUsed %d", led.Labels, s.Result().LabelsUsed)
				}
				if m.maxDollars > 0 && led.Spent > m.maxDollars+budgetEps {
					t.Errorf("final ledger overspent: %.9f > %.9f", led.Spent, m.maxDollars)
				}
			})
		}
	}
}
