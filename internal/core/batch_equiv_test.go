package core

// Equivalence pins for the batched engine path: a BatchOracle wrapper
// around a per-pair oracle must be indistinguishable from the classic
// per-pair path — same selected batches, same RNG draw positions, same
// snapshot bytes at every step, same WAL bytes — at every worker count.
// Run with `make equiv`.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/alem/alem/internal/linear"
	"github.com/alem/alem/internal/oracle"
	"github.com/alem/alem/internal/resilience"
)

// encodeTimeless serializes a snapshot with its wall-clock latency
// fields zeroed: timings are measurements, not protocol state, and they
// are the only snapshot bytes a bit-identical pair of runs may differ in.
func encodeTimeless(t *testing.T, sn *Snapshot, buf *bytes.Buffer) {
	t.Helper()
	for i := range sn.Curve {
		sn.Curve[i].TrainTime = 0
		sn.Curve[i].CommitteeCreateTime = 0
		sn.Curve[i].ScoreTime = 0
	}
	if err := sn.Encode(buf); err != nil {
		t.Fatal(err)
	}
}

// stepLockstep drives two sessions step-for-step, asserting identical
// done flags and byte-identical snapshots at every boundary.
func stepLockstep(t *testing.T, a, b *Session) {
	t.Helper()
	ctx := context.Background()
	for step := 0; ; step++ {
		aDone, aErr := a.Step(ctx)
		bDone, bErr := b.Step(ctx)
		if aErr != nil || bErr != nil {
			t.Fatalf("step %d: errs %v vs %v", step, aErr, bErr)
		}
		if aDone != bDone {
			t.Fatalf("step %d: done flags differ: %v vs %v", step, aDone, bDone)
		}
		var aSnap, bSnap bytes.Buffer
		encodeTimeless(t, a.Snapshot(), &aSnap)
		encodeTimeless(t, b.Snapshot(), &bSnap)
		if !bytes.Equal(aSnap.Bytes(), bSnap.Bytes()) {
			t.Fatalf("step %d: snapshots diverge\nlegacy:\n%s\nbatched:\n%s",
				step, aSnap.String(), bSnap.String())
		}
		if aDone {
			return
		}
	}
}

// TestBatchOracleEquivalenceBitIdentical pins the batched path against
// the classic per-pair path over a free, perfect oracle: batches of one
// LabelBatch call each, zero cost, zero abstentions — and bit-identical
// everything, under serial and parallel scoring alike.
func TestBatchOracleEquivalenceBitIdentical(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			pool := syntheticPool(500, 21)
			cfg := Config{Seed: 21, MaxLabels: 100, Workers: workers}
			dir := t.TempDir()

			legacyOra := poolOracle(pool)
			legacy, err := NewSession(pool, linear.NewSVM(21), Margin{}, legacyOra, cfg)
			if err != nil {
				t.Fatal(err)
			}
			batchOra := oracle.Batched(poolOracle(pool))
			batched, err := NewBatchSession(pool, linear.NewSVM(21), Margin{}, batchOra, cfg)
			if err != nil {
				t.Fatal(err)
			}

			var legacyWAL, batchedWAL *resilience.LabelWAL
			for _, w := range []struct {
				s    *Session
				wal  **resilience.LabelWAL
				name string
			}{{legacy, &legacyWAL, "legacy.wal"}, {batched, &batchedWAL, "batched.wal"}} {
				wal, _, err := resilience.OpenLabelWAL(filepath.Join(dir, w.name))
				if err != nil {
					t.Fatal(err)
				}
				defer wal.Close()
				w.s.SetLabelSink(wal)
				*w.wal = wal
			}

			var legacyBatches, batchedBatches [][]int
			legacy.AddObserver(ObserverFunc(func(e Event) {
				if bs, ok := e.(BatchSelected); ok {
					legacyBatches = append(legacyBatches, append([]int(nil), bs.Batch...))
				}
			}))
			batched.AddObserver(ObserverFunc(func(e Event) {
				if bs, ok := e.(BatchSelected); ok {
					batchedBatches = append(batchedBatches, append([]int(nil), bs.Batch...))
				}
			}))

			stepLockstep(t, legacy, batched)

			if legacy.src.n63 != batched.src.n63 || legacy.src.n64 != batched.src.n64 {
				t.Errorf("RNG draw positions diverge: (%d,%d) vs (%d,%d)",
					legacy.src.n63, legacy.src.n64, batched.src.n63, batched.src.n64)
			}
			if !reflect.DeepEqual(legacyBatches, batchedBatches) {
				t.Error("selected batches diverge between the per-pair and batched paths")
			}
			curvesEqual(t, legacy.Result().Curve, batched.Result().Curve)
			if legacy.Reason() != batched.Reason() {
				t.Errorf("reasons differ: %v vs %v", legacy.Reason(), batched.Reason())
			}
			if legacyOra.Queries() != batchOra.Queries() {
				t.Errorf("oracle queries differ: %d vs %d", legacyOra.Queries(), batchOra.Queries())
			}

			// The free adapter's ledger is trivial: all answers are labels,
			// nothing spent, nothing abstained.
			led := batched.Ledger()
			want := CostLedger{Labels: batched.Result().LabelsUsed, Answers: batched.Result().LabelsUsed}
			if led != want {
				t.Errorf("ledger = %+v, want %+v", led, want)
			}

			// Both WALs journaled the identical byte stream.
			lBytes, err := os.ReadFile(filepath.Join(dir, "legacy.wal"))
			if err != nil {
				t.Fatal(err)
			}
			bBytes, err := os.ReadFile(filepath.Join(dir, "batched.wal"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(lBytes, bBytes) {
				t.Error("WAL bytes diverge between the per-pair and batched paths")
			}
		})
	}
}

// TestBatchOracleEquivalenceNoisy repeats the pin over a Noisy oracle:
// the Batched adapter must consume the noise RNG at exactly the per-pair
// path's draw positions, so both runs flip the same labels.
func TestBatchOracleEquivalenceNoisy(t *testing.T) {
	pool := syntheticPool(500, 22)
	cfg := Config{Seed: 22, MaxLabels: 100}
	const noise, noiseSeed = 0.2, 13

	legacy, err := NewSession(pool, linear.NewSVM(22), Margin{}, noisyPoolOracle(pool, noise, noiseSeed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewBatchSession(pool, linear.NewSVM(22), Margin{},
		oracle.Batched(noisyPoolOracle(pool, noise, noiseSeed)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if batched.stateful == nil {
		t.Fatal("NewBatchSession did not discover the Noisy oracle's Stateful hook through the adapter")
	}
	stepLockstep(t, legacy, batched)
	curvesEqual(t, legacy.Result().Curve, batched.Result().Curve)
}
