package core

import (
	"context"
	"fmt"
	"time"

	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/oracle"
	"github.com/alem/alem/internal/resilience"
)

// budgetEps absorbs float accumulation error in dollar-budget checks so a
// run that can afford exactly its last answer is not stopped one short.
const budgetEps = 1e-9

// walAnswer is one label recovered from a WAL: the value the crashed run
// paid for and, for priced oracles, what it paid.
type walAnswer struct {
	label bool
	cost  float64
}

// CostLedger is a batch session's money and answer accounting. Spent is
// the cumulative dollars billed across the run; Answers counts every
// acknowledged response (labels plus abstentions — it is also the WAL
// sequence cursor for record-capable sinks); Labels and Abstains split
// it by verdict. Per-pair failures are never billed and never counted.
type CostLedger struct {
	Spent    float64 `json:"spent"`
	Answers  int     `json:"answers"`
	Labels   int     `json:"labels"`
	Abstains int     `json:"abstains"`
}

// trivial reports whether the ledger carries no information beyond the
// labeled set itself (no money spent, no abstentions), in which case a
// Snapshot omits it and Restore derives it — which keeps a free batch
// session's snapshot bytes identical to a classic session's.
func (l CostLedger) trivial() bool { return l.Spent == 0 && l.Abstains == 0 }

// Ledger returns the session's cost accounting (zero for sessions
// without a batch oracle).
func (s *Session) Ledger() CostLedger { return s.ledger }

// recordSink is the optional LabelSink extension batch sessions use to
// journal abstentions and per-answer costs. resilience.LabelWAL
// implements it.
type recordSink interface {
	AppendRecord(rec resilience.LabelRecord) error
}

// NewBatchSession is NewSession for costly batch labelers: labeling
// rounds go through one BatchOracle.LabelBatch call each, answers may
// abstain (requeued up to Config.AbstainCutoff, then retired from the
// pool), every answer's cost is accumulated into the session's
// CostLedger, and Config.MaxDollars bounds the total spend
// (StopBudgetExhausted). When the oracle chain exposes
// oracle.PairAdvancer or oracle.Stateful, the hooks are discovered here
// so Snapshot+WAL resume realigns the oracle's randomness.
func NewBatchSession(pool *Pool, learner Learner, sel Selector, bo oracle.BatchOracle, cfg Config) (*Session, error) {
	if bo == nil {
		return nil, fmt.Errorf("core: NewBatchSession requires a batch oracle")
	}
	s, err := NewFallibleSession(pool, learner, sel, nil, cfg)
	if err != nil {
		return nil, err
	}
	s.batcher = bo
	s.abstains = map[int]int{}
	if st, ok := resilience.StatefulOf(bo); ok {
		s.stateful = st
	}
	for o := any(bo); o != nil; {
		if pa, ok := o.(oracle.PairAdvancer); ok && s.pairAdv == nil {
			s.pairAdv = pa
		}
		if pr, ok := o.(oracle.Priced); ok && s.maxCost == 0 {
			s.maxCost = pr.MaxAnswerCost()
		}
		u, ok := o.(interface{ UnwrapOracle() any })
		if !ok {
			break
		}
		o = u.UnwrapOracle()
	}
	return s, nil
}

// SetWarmStart attaches a pre-trained learner for transfer warm-start:
// the session skips the random seed bootstrap and lets the warm learner
// drive evaluation and selection until the labeled set contains both
// classes, at which point the session's own learner takes over under the
// usual retrain-from-scratch protocol. The warm learner is never
// trained. Call before the first Step (and again after Restore — learner
// wiring is not serialized; Step refuses to run a warm-start session
// whose learner is missing).
func (s *Session) SetWarmStart(l Learner) error {
	if l == nil {
		return fmt.Errorf("core: SetWarmStart requires a non-nil learner")
	}
	s.warm = l
	if s.cfg.WarmStartModel == "" {
		s.cfg.WarmStartModel = "inline"
	}
	return nil
}

// useWarm reports whether the warm-start learner is still the active
// model: it hands over permanently once the labeled set can train the
// session's own learner (non-empty, both classes present).
func (s *Session) useWarm() bool {
	return s.warm != nil && !trainablePrefix(s.labels, len(s.labels))
}

// trainablePrefix reports whether the first n labels can train a
// learner: a non-empty set containing both classes.
func trainablePrefix(labels []bool, n int) bool {
	return n > 0 && bothClasses(labels[:n])
}

// activeLearner is the model driving evaluation and selection: the warm
// learner while warm-start is in effect, the session's own otherwise.
func (s *Session) activeLearner() Learner {
	if s.useWarm() {
		return s.warm
	}
	return s.learner
}

// abstainCutoff resolves Config.AbstainCutoff's default at use (not in
// withDefaults, so legacy snapshot bytes are unchanged).
func (s *Session) abstainCutoff() int {
	if s.cfg.AbstainCutoff > 0 {
		return s.cfg.AbstainCutoff
	}
	return DefaultAbstainCutoff
}

// budgetExhausted reports whether the dollar budget can no longer afford
// another answer at the oracle's worst-case price. Free oracles
// (MaxAnswerCost 0) never exhaust a budget.
func (s *Session) budgetExhausted() bool {
	return s.batcher != nil && s.cfg.MaxDollars > 0 && s.maxCost > 0 &&
		s.ledger.Spent+s.maxCost > s.cfg.MaxDollars+budgetEps
}

// journal durably records one acknowledged answer. A record-capable sink
// (resilience.LabelWAL) gets the full record with the answer-sequence
// cursor; a label-only sink gets the classic Append with the label
// ordinal (and cannot represent abstentions, which are skipped). An
// error is fatal to the run: an answer that cannot be made durable must
// not be paid for twice.
func (s *Session) journal(rec resilience.LabelRecord) error {
	if s.sink == nil {
		return nil
	}
	if rs, ok := s.sink.(recordSink); ok {
		if err := rs.AppendRecord(rec); err != nil {
			return fmt.Errorf("core: recording label in sink: %w", err)
		}
		return nil
	}
	if rec.Abstained() {
		return nil
	}
	if err := s.sink.Append(s.ledger.Labels, rec.Index, rec.Label); err != nil {
		return fmt.Errorf("core: recording label in sink: %w", err)
	}
	return nil
}

// applyGrant moves one answered pair into the labeled set, bills its
// cost and journals it.
func (s *Session) applyGrant(i int, lab bool, cost float64) error {
	s.labeled = append(s.labeled, i)
	s.labels = append(s.labels, lab)
	s.ledger.Answers++
	s.ledger.Labels++
	s.ledger.Spent += cost
	delete(s.abstains, i)
	return s.journal(resilience.LabelRecord{Seq: s.ledger.Answers, Index: i, Label: lab, Cost: cost})
}

// applyAbstain bills and journals one abstention and advances the pair's
// abstain count, reporting whether the pair just hit the cutoff and must
// be retired from the pool.
func (s *Session) applyAbstain(i int, cost float64) (retired bool, err error) {
	s.ledger.Answers++
	s.ledger.Abstains++
	s.ledger.Spent += cost
	s.abstains[i]++
	if err := s.journal(resilience.LabelRecord{
		Seq: s.ledger.Answers, Index: i, Verdict: "abstain", Cost: cost,
	}); err != nil {
		return false, err
	}
	if s.abstains[i] >= s.abstainCutoff() {
		delete(s.abstains, i)
		return true, nil
	}
	return false, nil
}

// advanceCached realigns the oracle's randomness past one answer a
// crashed run already received and this run consumed from the WAL cache:
// sequential-stream oracles (oracle.Stateful) skip one draw, per-pair
// keyed oracles (oracle.PairAdvancer) skip one attempt ordinal.
func (s *Session) advanceCached(i int) {
	if s.stateful != nil {
		s.stateful.Advance(1)
	}
	if s.pairAdv != nil {
		s.pairAdv.AdvancePair(s.pool.Pairs[i], 1)
	}
}

// labelBatchOracle is labelBatch for batch sessions: one LabelBatch call
// answers the whole round, answers may abstain or fail per pair, and
// every acknowledged answer is billed against the dollar budget.
//
// The walk is reservation-based: batch indices are admitted in order
// while the budget can still cover one worst-case answer each
// (unaffordable suffixes stay in the pool untouched — the next
// selectPhase stops the run with StopBudgetExhausted). WAL-cached
// answers from a crashed run are consumed instead of re-queried but
// still count against the reservation and re-charge their recorded
// costs, which keeps a resumed run's ledger identical to an
// uninterrupted one's.
func (s *Session) labelBatchOracle(ctx context.Context, batch []int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	start := time.Now()

	type pending struct {
		idx    int
		cached bool
	}
	limited := s.cfg.MaxDollars > 0 && s.maxCost > 0
	spentAtStart := s.ledger.Spent
	process := make([]pending, 0, len(batch))
	var live []dataset.PairKey
	for _, i := range batch {
		cached := len(s.walAbstains[i]) > 0
		if !cached {
			_, cached = s.walLabels[i]
		}
		if limited && spentAtStart+s.maxCost*float64(len(process)+1) > s.cfg.MaxDollars+budgetEps {
			continue
		}
		process = append(process, pending{idx: i, cached: cached})
		if !cached {
			live = append(live, s.pool.Pairs[i])
		}
	}

	var answers []oracle.Answer
	var batchErr error
	if len(live) > 0 {
		answers, batchErr = s.batcher.LabelBatch(ctx, live)
	}

	var (
		drop, requeue []int
		granted       int
		abstained     int
		retiredCount  int
		failures      int
		cachedUsed    int
		roundCost     float64
		cursor        int
		fatal         error
	)
apply:
	for _, p := range process {
		i := p.idx
		if p.cached {
			cachedUsed++
			s.advanceCached(i)
			if costs := s.walAbstains[i]; len(costs) > 0 {
				c := costs[0]
				if len(costs) == 1 {
					delete(s.walAbstains, i)
				} else {
					s.walAbstains[i] = costs[1:]
				}
				retired, err := s.applyAbstain(i, c)
				if err != nil {
					fatal = err
					break apply
				}
				roundCost += c
				abstained++
				if retired {
					drop = append(drop, i)
					retiredCount++
				} else {
					requeue = append(requeue, i)
				}
				continue
			}
			a := s.walLabels[i]
			delete(s.walLabels, i)
			if err := s.applyGrant(i, a.label, a.cost); err != nil {
				fatal = err
				break apply
			}
			roundCost += a.cost
			granted++
			drop = append(drop, i)
			continue
		}
		if cursor >= len(answers) {
			// The batch call died before answering this pair: abort on
			// cancellation (the acknowledged prefix stays applied),
			// otherwise requeue the unanswered remainder as faults.
			if batchErr != nil && ctx.Err() != nil {
				fatal = ctx.Err()
				break apply
			}
			err := batchErr
			if err == nil {
				err = fmt.Errorf("core: batch oracle answered %d of %d pairs", len(answers), len(live))
			}
			s.emit(OracleFault{Iteration: s.iter, Index: i, Pair: s.pool.Pairs[i], Err: err})
			failures++
			requeue = append(requeue, i)
			continue
		}
		a := answers[cursor]
		cursor++
		switch {
		case a.Err != nil:
			s.emit(OracleFault{Iteration: s.iter, Index: i, Pair: s.pool.Pairs[i], Err: a.Err})
			failures++
			requeue = append(requeue, i)
		case a.Verdict == oracle.VerdictAbstain:
			retired, err := s.applyAbstain(i, a.Cost)
			if err != nil {
				fatal = err
				break apply
			}
			roundCost += a.Cost
			abstained++
			if retired {
				drop = append(drop, i)
				retiredCount++
			} else {
				requeue = append(requeue, i)
			}
		default:
			if err := s.applyGrant(i, a.Verdict == oracle.VerdictMatch, a.Cost); err != nil {
				fatal = err
				break apply
			}
			roundCost += a.Cost
			granted++
			drop = append(drop, i)
		}
	}

	removeFromPool(&s.unlabeled, drop)
	if len(requeue) > 0 {
		removeFromPool(&s.unlabeled, requeue)
		s.unlabeled = append(s.unlabeled, requeue...)
	}
	if fatal != nil {
		return fatal
	}
	s.emit(OracleBatchDone{
		Iteration: s.iter,
		Pairs:     len(live),
		Answers:   granted + abstained,
		Labels:    granted,
		Abstains:  abstained,
		Failures:  failures,
		Retired:   retiredCount,
		Cost:      roundCost,
		Spent:     s.ledger.Spent,
		Elapsed:   time.Since(start),
	})
	if granted == 0 && abstained == 0 && cachedUsed == 0 && failures > 0 {
		return fmt.Errorf("%w: %d of %d queries failed", ErrLabelingStalled, failures, len(batch))
	}
	return nil
}
