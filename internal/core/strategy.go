package core

import (
	"errors"
	"fmt"
	"time"
)

// This file is the composable selection-strategy framework: the paper's
// fixed selector set decomposed, modAL-style, into two orthogonal pieces —
// an informativeness measure (Scorer) and a batch query strategy (Picker)
// — glued by ComposedSelector, which satisfies the existing Selector
// interface so the Session engine, ensembles, IWAL sweeps, snapshots and
// Config.Workers are untouched at the call site. Every paper selector
// (QBC, ForestQBC, Margin, BlockedMargin, LFP/LFN, BlockedForestQBC) is a
// composition behind its exported type, pinned bit-identical to the
// pre-refactor implementations by the Equivalence tests; new strategies
// (diversity-aware batch pickers, custom measures) are one piece each,
// not a whole Selector.

// ScoredSet is a Scorer's output: a candidate subset of the unlabeled
// pool together with aligned informativeness scores. Candidates may be a
// strict subset of SelectContext.Unlabeled (blocking scorers prune;
// LFP/LFN keeps only rule-suspicious pairs) and appear in the order the
// scorer ranked or scanned them.
//
// Score contract: HIGHER means MORE informative, uniformly — scorers
// built on "smaller is more ambiguous" quantities (margins) negate, so
// any Picker composes with any Scorer without direction flags.
type ScoredSet struct {
	Candidates []int
	Scores     []float64
}

// Scorer is the informativeness half of a selection strategy: it maps
// the unlabeled pool to per-candidate scores. Scorers run on the
// deterministic parallelFor substrate — all shared randomness must be
// drawn from ctx.Rand serially before any fan-out, so results and RNG
// draw positions are bit-identical at every Workers count.
//
// k is the batch size the composition will ultimately pick; most scorers
// ignore it, but pruning scorers use it to decide whether a pruned
// candidate set is still large enough to select from (BlockedForestQBC's
// fallback rule).
//
// Errors: a context error aborts the composition with a nil batch (the
// engine discards cancelled iterations); errNotApplicable reports a
// learner or configuration the scorer cannot serve; an errDelegate
// hands the whole selection to another Selector (degenerate-input
// fallbacks, e.g. BlockedMargin with an empty weight vector).
type Scorer interface {
	Name() string
	Score(ctx *SelectContext, k int) (*ScoredSet, error)
}

// Picker is the batch-query half of a selection strategy: given scored
// candidates it chooses up to k of them. Pickers own the selection-time
// randomness (shuffled tie-breaks, acceptance sampling, weighted cluster
// draws) and must draw it from ctx.Rand serially, so a composition's RNG
// position is a pure function of the pool state — the property Snapshot
// /Restore bit-identity rests on. A Picker may consult ctx.Pool.X for
// diversity terms (k-center, cluster sampling); it must not mutate
// anything reachable from ctx.
type Picker interface {
	Name() string
	Pick(ctx *SelectContext, set *ScoredSet, k int) []int
}

// ComposedSelector glues a Scorer to a Picker and satisfies Selector, so
// compositions drop into Session, ensembles and snapshots exactly like
// the concrete paper selectors they generalize.
type ComposedSelector struct {
	// ID overrides Name; empty means "<scorer>×<picker>". The registry
	// sets it so -selector names round-trip through diagnostics.
	ID     string
	Scorer Scorer
	Picker Picker
}

// Name implements Selector.
func (c ComposedSelector) Name() string {
	if c.ID != "" {
		return c.ID
	}
	return c.Scorer.Name() + "×" + c.Picker.Name()
}

// Select implements Selector: score, then pick. Timing mirrors the
// concrete selectors — ctx.CommitteeCreate is set by scorers that train
// committees, ctx.Score covers everything else (scoring sweep plus
// picking), matching the §3 latency breakdown.
func (c ComposedSelector) Select(ctx *SelectContext, k int) []int {
	start := time.Now()
	set, err := c.Scorer.Score(ctx, k)
	if err != nil {
		var d errDelegate
		if errors.As(err, &d) {
			return d.to.Select(ctx, k)
		}
		if !errors.Is(err, errNotApplicable) {
			// Cancellation (or any mid-score failure): account the time
			// spent, return no batch; the engine discards the iteration.
			ctx.Score = time.Since(start) - ctx.CommitteeCreate
		}
		return nil
	}
	picked := c.Picker.Pick(ctx, set, k)
	ctx.Score = time.Since(start) - ctx.CommitteeCreate
	return picked
}

// errNotApplicable reports a scorer that cannot serve the current
// learner or configuration (wrong interface, zero committee, no labeled
// data). The composition returns an empty batch, exactly as the concrete
// selectors did; construction-time validation (ValidateSelection) is how
// callers surface it as an error instead.
var errNotApplicable = errors.New("core: scorer not applicable to this learner or configuration")

// errDelegate asks the composition to hand the entire selection to
// another Selector — the escape hatch for degenerate-input fallbacks
// that change both halves of the strategy at once (BlockedMargin with no
// trained weights falls back to uniform random selection).
type errDelegate struct{ to Selector }

func (e errDelegate) Error() string { return "core: delegate selection to " + e.to.Name() }

// ---- construction-time compatibility validation ----

// ErrIncompatibleSelector is the sentinel every selector/learner
// incompatibility error wraps; test with errors.Is. The concrete type
// carrying the details is IncompatibleError.
var ErrIncompatibleSelector = errors.New("core: selector incompatible with learner")

// IncompatibleError reports a selector composed with a learner it cannot
// serve — e.g. LFP/LFN with anything but the rule learner (§4.3). It
// wraps ErrIncompatibleSelector and is returned by ValidateSelection and
// by NewSession/NewFallibleSession before any Oracle query is issued, so
// a misconfigured run fails at construction rather than terminating
// mid-run with a silent StopSelectorEmpty.
type IncompatibleError struct {
	// Selector and Learner name the mismatched pair.
	Selector string
	Learner  string
	// Needs describes the capability the selector requires ("a
	// rules.Model learner", "a MarginLearner").
	Needs string
}

// Error implements error.
func (e *IncompatibleError) Error() string {
	return fmt.Sprintf("core: selector %q is incompatible with learner %q: needs %s",
		e.Selector, e.Learner, e.Needs)
}

// Unwrap makes errors.Is(err, ErrIncompatibleSelector) hold.
func (e *IncompatibleError) Unwrap() error { return ErrIncompatibleSelector }

// LearnerChecker is implemented by selectors that can verify, up front,
// whether a learner satisfies their requirements. NewSession and
// NewFallibleSession consult it right after Config.Validate, so
// incompatibilities fail before the seed phase spends any label budget.
type LearnerChecker interface {
	// CompatibleWith returns nil when l satisfies the selector's
	// requirements, or an *IncompatibleError describing the mismatch.
	CompatibleWith(l Learner) error
}

// ValidateSelection checks a (learner, selector) pair the same way
// session construction does: selectors implementing LearnerChecker are
// asked; everything else is accepted (the run-time contract — an
// unserved selector returns an empty batch — still applies).
func ValidateSelection(l Learner, s Selector) error {
	if c, ok := s.(LearnerChecker); ok {
		return c.CompatibleWith(l)
	}
	return nil
}
