package core

import (
	"context"
	"math/rand"
	"time"

	"github.com/alem/alem/internal/eval"
	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/oracle"
)

// Session is the active-learning loop of Fig. 1a decomposed into explicit
// phases — seed, train, evaluate, select, label — with three cross-cutting
// capabilities the monolithic core.Run never had:
//
//   - cancellation: Run and Step honor a context.Context, checked at every
//     phase boundary, inside parallel prediction, before every Oracle
//     query, and (via SelectContext.Ctx) inside the slow selectors, so a
//     run aborts within one iteration without losing its partial curve;
//   - observation: a typed event stream (Observer) reports phase
//     transitions with per-phase timings while the run is in flight;
//   - checkpointing: Snapshot/Restore serialize the labeled set, RNG
//     position and stability counters so long runs survive restarts (see
//     snapshot.go).
//
// A Session produces bit-identical curves to the core.Run it replaces:
// the engine draws from the same RNG in the same order, and core.Run is
// now a thin wrapper over it.
//
// A Session is single-use: construct with NewSession (or Restore), drive
// with Run or Step, then read Result. It is not safe for concurrent use;
// run concurrent sessions instead (they share nothing).
type Session struct {
	pool    *Pool
	learner Learner
	sel     Selector
	oracle  oracle.Oracle
	cfg     Config

	src *countingSource
	rng *rand.Rand

	observers []Observer

	// Universe split and labeled-set bookkeeping, valid after the seed
	// phase.
	maxLabels int
	testIdx   []int
	labeled   []int
	labels    []bool
	unlabeled []int

	seeded      bool
	iter        int
	prevPred    []bool
	stableIters int

	res    *Result
	reason StopReason
	done   bool
	err    error
}

// NewSession validates the config and prepares a session. No Oracle
// queries are issued until the first Run or Step call (the seed phase is
// lazy), so construction is side-effect free.
func NewSession(pool *Pool, learner Learner, sel Selector, o oracle.Oracle, cfg Config) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	src := newCountingSource(cfg.Seed)
	return &Session{
		pool:    pool,
		learner: learner,
		sel:     sel,
		oracle:  o,
		cfg:     cfg,
		src:     src,
		rng:     rand.New(src),
		res:     &Result{},
	}, nil
}

// AddObserver subscribes obs to the session's event stream. Call before
// Run/Step; events already emitted are not replayed.
func (s *Session) AddObserver(obs ...Observer) {
	s.observers = append(s.observers, obs...)
}

func (s *Session) emit(e Event) {
	for _, o := range s.observers {
		o.Observe(e)
	}
}

// Result returns the run's (possibly partial) outcome. The curve holds
// one point per completed iteration; LabelsUsed is only set once the run
// has finished or been cancelled.
func (s *Session) Result() *Result { return s.res }

// Reason returns why the run stopped (StopNone while still running).
func (s *Session) Reason() StopReason { return s.reason }

// Done reports whether the run has terminated.
func (s *Session) Done() bool { return s.done }

// Run drives the session to completion: seed once, then iterate
// train→evaluate→select→label until a stopping criterion fires. On
// cancellation it returns the partial Result together with the context's
// error; the session remains snapshottable, so the curve is not lost.
func (s *Session) Run(ctx context.Context) (*Result, error) {
	for {
		done, err := s.Step(ctx)
		if done || err != nil {
			return s.res, err
		}
	}
}

// Step executes the seed phase if needed, then exactly one
// train→evaluate→select→label iteration. It returns done=true once a
// stopping criterion fires (calling Step again is a no-op). Snapshots
// taken between Step calls are exact checkpoints.
func (s *Session) Step(ctx context.Context) (bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.done {
		return true, s.err
	}
	if !s.seeded {
		if err := s.seedPhase(ctx); err != nil {
			return true, err
		}
	}

	s.emit(IterationStart{
		Iteration:     s.iter,
		LabelsUsed:    len(s.labeled),
		PoolRemaining: len(s.unlabeled),
	})
	if err := ctx.Err(); err != nil {
		return true, s.cancel(err)
	}

	trainTime := s.trainPhase()
	s.emit(TrainDone{Iteration: s.iter, Labels: len(s.labeled), Elapsed: trainTime})
	if err := ctx.Err(); err != nil {
		return true, s.cancel(err)
	}

	pt, pred, err := s.evalPhase(ctx, trainTime)
	if err != nil {
		return true, s.cancel(err)
	}

	// Ground-truth-free stability stop: track prediction churn.
	if s.cfg.StabilityWindow > 0 {
		if s.prevPred != nil {
			flips := 0
			for j := range pred {
				if pred[j] != s.prevPred[j] {
					flips++
				}
			}
			if float64(flips) <= s.cfg.StabilityEpsilon*float64(len(pred)) {
				s.stableIters++
			} else {
				s.stableIters = 0
			}
		}
		s.prevPred = pred
	}

	batch, reason := s.selectPhase(ctx, &pt)
	if err := ctx.Err(); err != nil {
		// Cancelled inside the selector: the iteration is incomplete, so
		// its point is not recorded.
		return true, s.cancel(err)
	}
	if s.cfg.OnIteration != nil {
		s.cfg.OnIteration(s.learner, &pt)
	}
	s.res.Curve = append(s.res.Curve, pt)
	if reason != StopNone {
		s.finish(reason, nil)
		return true, nil
	}
	s.emit(BatchSelected{
		Iteration:       s.iter,
		Batch:           batch,
		CommitteeCreate: pt.CommitteeCreateTime,
		Score:           pt.ScoreTime,
	})

	if err := s.labelPhase(ctx, batch); err != nil {
		return true, s.cancel(err)
	}
	s.iter++
	return false, nil
}

// seedPhase builds the selection universe and draws the initial labeled
// sample. If a single class comes back, it keeps drawing batches until
// both classes are present (a degenerate training set cannot bootstrap
// any learner); each extra draw is clamped to the remaining budget so the
// bootstrap can never overshoot MaxLabels.
func (s *Session) seedPhase(ctx context.Context) error {
	all := s.rng.Perm(s.pool.Len())
	var universe []int
	switch s.cfg.Mode {
	case HeldOut:
		cut := int(float64(s.pool.Len()) * s.cfg.HoldoutFrac)
		s.testIdx, universe = all[:cut], all[cut:]
	default:
		s.testIdx = make([]int, s.pool.Len())
		for i := range s.testIdx {
			s.testIdx[i] = i
		}
		universe = all
	}
	s.maxLabels = s.cfg.MaxLabels
	if s.maxLabels <= 0 || s.maxLabels > len(universe) {
		s.maxLabels = len(universe)
	}
	s.labeled = make([]int, 0, s.maxLabels)
	s.labels = make([]bool, 0, s.maxLabels)
	s.unlabeled = append([]int(nil), universe...)
	s.res.TestSize = len(s.testIdx)
	s.seeded = true

	if err := s.labelFront(ctx, min(s.cfg.SeedLabels, s.maxLabels)); err != nil {
		return s.cancel(err)
	}
	for !bothClasses(s.labels) && len(s.unlabeled) > 0 && len(s.labeled) < s.maxLabels {
		if err := s.labelFront(ctx, min(s.cfg.BatchSize, s.maxLabels-len(s.labeled))); err != nil {
			return s.cancel(err)
		}
	}
	return nil
}

// labelFront labels the next k unlabeled examples in universe order,
// checking the context before every Oracle query.
func (s *Session) labelFront(ctx context.Context, k int) error {
	if k > len(s.unlabeled) {
		k = len(s.unlabeled)
	}
	for j := 0; j < k; j++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		i := s.unlabeled[0]
		s.unlabeled = s.unlabeled[1:]
		s.labeled = append(s.labeled, i)
		s.labels = append(s.labels, s.oracle.Label(s.pool.Pairs[i]))
	}
	return nil
}

// trainPhase retrains the learner from scratch on the cumulative labeled
// set (the benchmark's retrain protocol) and returns the wall time.
func (s *Session) trainPhase() time.Duration {
	trainX, trainY := gatherTraining(s.pool, s.labeled, s.labels, len(s.labeled))
	start := time.Now()
	s.learner.Train(trainX, trainY)
	return time.Since(start)
}

// evalPhase predicts over the test universe in parallel and scores the
// confusion matrix.
func (s *Session) evalPhase(ctx context.Context, trainTime time.Duration) (eval.Point, []bool, error) {
	start := time.Now()
	pred, err := parallelPredict(ctx, s.learner.Predict, s.pool, s.testIdx)
	if err != nil {
		return eval.Point{}, nil, err
	}
	pt := evalPoint(s.pool, s.testIdx, pred, len(s.labeled), trainTime)
	s.emit(EvalDone{Iteration: s.iter, Point: pt, Elapsed: time.Since(start)})
	return pt, pred, nil
}

// selectPhase checks the stopping criteria and, if the run continues,
// asks the selector for the next batch. It writes the selector's latency
// breakdown into pt and returns the stop reason (StopNone to continue).
func (s *Session) selectPhase(ctx context.Context, pt *eval.Point) ([]int, StopReason) {
	sctx := &SelectContext{
		Ctx:     ctx,
		Learner: s.learner, Pool: s.pool,
		LabeledIdx: s.labeled, Labels: s.labels,
		Unlabeled: s.unlabeled, Rand: s.rng,
	}
	var batch []int
	reason := StopNone
	switch {
	case len(s.labeled) >= s.maxLabels:
		reason = StopBudget
	case len(s.unlabeled) == 0:
		reason = StopPoolExhausted
	case s.cfg.TargetF1 > 0 && pt.F1 >= s.cfg.TargetF1:
		reason = StopTargetF1
	case s.cfg.StabilityWindow > 0 && s.stableIters >= s.cfg.StabilityWindow:
		reason = StopStability
	default:
		k := min(s.cfg.BatchSize, s.maxLabels-len(s.labeled))
		batch = s.sel.Select(sctx, k)
		if len(batch) == 0 {
			reason = StopSelectorEmpty
		}
	}
	pt.CommitteeCreateTime = sctx.CommitteeCreate
	pt.ScoreTime = sctx.Score
	return batch, reason
}

// labelPhase queries the Oracle for the batch and moves it into the
// labeled set. The context is checked before every query; on
// cancellation the already-labeled prefix stays consistent (removed from
// the unlabeled pool) so the session remains snapshottable.
func (s *Session) labelPhase(ctx context.Context, batch []int) error {
	taken := 0
	var err error
	for _, i := range batch {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
			break
		}
		s.labeled = append(s.labeled, i)
		s.labels = append(s.labels, s.oracle.Label(s.pool.Pairs[i]))
		taken++
	}
	removeFromPool(&s.unlabeled, batch[:taken])
	return err
}

func (s *Session) finish(reason StopReason, err error) {
	s.done = true
	s.reason = reason
	s.err = err
	s.res.LabelsUsed = len(s.labeled)
	s.res.Reason = reason
	s.emit(RunEnd{
		Iterations: len(s.res.Curve),
		LabelsUsed: s.res.LabelsUsed,
		Reason:     reason,
		Err:        err,
	})
}

func (s *Session) cancel(err error) error {
	s.finish(StopCancelled, err)
	return err
}

// ---- shared phase helpers (used by Session and RunEnsemble) ----

// gatherTraining copies the labeled set's vectors and labels into
// training slices. n caps the prefix taken (Restore replays historical
// prefixes; live phases pass len(labeled)).
func gatherTraining(pool *Pool, labeled []int, labels []bool, n int) ([]feature.Vector, []bool) {
	trainX := make([]feature.Vector, n)
	trainY := make([]bool, n)
	for j := 0; j < n; j++ {
		trainX[j] = pool.X[labeled[j]]
		trainY[j] = labels[j]
	}
	return trainX, trainY
}

// evalPoint scores predictions over the test universe into a curve point.
func evalPoint(pool *Pool, testIdx []int, pred []bool, labels int, trainTime time.Duration) eval.Point {
	truth := make([]bool, len(testIdx))
	for j, i := range testIdx {
		truth[j] = pool.Truth[i]
	}
	conf := eval.Evaluate(pred, truth)
	return eval.Point{
		Labels:    labels,
		F1:        conf.F1(),
		Precision: conf.Precision(),
		Recall:    conf.Recall(),
		TrainTime: trainTime,
	}
}

// removeFromPool deletes the batch's indices from the unlabeled pool,
// preserving order.
func removeFromPool(unlabeled *[]int, batch []int) {
	if len(batch) == 0 {
		return
	}
	inBatch := make(map[int]struct{}, len(batch))
	for _, i := range batch {
		inBatch[i] = struct{}{}
	}
	next := (*unlabeled)[:0]
	for _, i := range *unlabeled {
		if _, ok := inBatch[i]; !ok {
			next = append(next, i)
		}
	}
	*unlabeled = next
}

// ---- serializable RNG ----

// countingSource wraps the standard math/rand source with draw counters,
// making the RNG position serializable: a Snapshot records how many
// values were drawn, and Restore replays that many draws on a fresh
// source with the same seed. Every draw advances the underlying state
// exactly once, so the replayed source is state-identical — and because
// the wrapped source is rand.NewSource itself, Session runs are
// bit-identical to the old core.Run.
type countingSource struct {
	src      rand.Source64
	n63, n64 uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: asSource64(rand.NewSource(seed))}
}

// Int63 implements rand.Source.
func (c *countingSource) Int63() int64 {
	c.n63++
	return c.src.Int63()
}

// Uint64 implements rand.Source64.
func (c *countingSource) Uint64() uint64 {
	c.n64++
	return c.src.Uint64()
}

// Seed implements rand.Source.
func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n63, c.n64 = 0, 0
}

// replay advances a freshly seeded source to a snapshotted position. The
// final state depends only on the number of draws of each kind, not on
// how they were interleaved.
func (c *countingSource) replay(n63, n64 uint64) {
	for i := uint64(0); i < n63; i++ {
		c.src.Int63()
	}
	for i := uint64(0); i < n64; i++ {
		c.src.Uint64()
	}
	c.n63, c.n64 = n63, n64
}

// asSource64 upgrades a rand.Source to rand.Source64. rand.NewSource has
// returned a Source64 since Go 1.8; the shim covers hypothetical plain
// sources.
func asSource64(src rand.Source) rand.Source64 {
	if s64, ok := src.(rand.Source64); ok {
		return s64
	}
	return int63Source{src}
}

type int63Source struct{ rand.Source }

func (s int63Source) Uint64() uint64 {
	return uint64(s.Int63())>>31 | uint64(s.Int63())<<32
}
