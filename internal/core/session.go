package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/alem/alem/internal/eval"
	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/oracle"
	"github.com/alem/alem/internal/resilience"
)

// ErrLabelingStalled is returned by Step (and wrapped into the Result's
// error) when an entire labeling round failed — every query in the batch
// errored and not one label was granted. It separates "the labeler is
// down" (StopOracleFailed) from ordinary cancellation, and stops the
// engine from spinning on a dead Oracle forever.
var ErrLabelingStalled = errors.New("core: labeling stalled, no query in the round succeeded")

// LabelSink receives every granted label, in grant order, before the
// engine considers the label applied. resilience.LabelWAL implements it;
// wiring one in with SetLabelSink makes each paid-for label durable the
// moment it is granted, which is what lets Snapshot + WAL replay resume
// a killed run without re-paying (or re-randomizing) any label.
type LabelSink interface {
	// Append durably records that the seq-th granted label (1-based) was
	// for pool index with the given value. An error is fatal to the run:
	// a label that cannot be made durable must not be trained on.
	Append(seq, index int, label bool) error
}

// Session is the active-learning loop of Fig. 1a decomposed into explicit
// phases — seed, train, evaluate, select, label — with three cross-cutting
// capabilities the monolithic core.Run never had:
//
//   - cancellation: Run and Step honor a context.Context, checked at every
//     phase boundary, inside parallel prediction, before every Oracle
//     query, and (via SelectContext.Ctx) inside the slow selectors, so a
//     run aborts within one iteration without losing its partial curve;
//   - observation: a typed event stream (Observer) reports phase
//     transitions with per-phase timings while the run is in flight;
//   - checkpointing: Snapshot/Restore serialize the labeled set, RNG
//     position and stability counters so long runs survive restarts (see
//     snapshot.go).
//
// A Session produces bit-identical curves to the core.Run it replaces:
// the engine draws from the same RNG in the same order, and core.Run is
// now a thin wrapper over it.
//
// A Session is single-use: construct with NewSession (or Restore), drive
// with Run or Step, then read Result. It is not safe for concurrent use;
// run concurrent sessions instead (they share nothing).
type Session struct {
	pool    *Pool
	learner Learner
	sel     Selector
	labeler resilience.FallibleOracle
	cfg     Config

	// stateful is the oracle's RNG-state hook when the wrapped oracle
	// implements oracle.Stateful (Noisy does), discovered once at
	// construction; nil otherwise.
	stateful oracle.Stateful
	// sink, when set, durably records every granted label (see LabelSink).
	sink LabelSink
	// walLabels caches labels recovered from a WAL during RestoreWithWAL:
	// pool index → granted label (and, for priced oracles, the cost the
	// crashed run paid). labelOne and the batch path consume from here
	// before querying the labeler, so a resumed run never re-pays for a
	// label the crashed run already bought.
	walLabels map[int]walAnswer
	// walAbstains caches billed abstentions recovered from a WAL, pool
	// index → recorded costs in answer order. The batch path consumes
	// them FIFO on re-selection, re-charging the ledger exactly what the
	// crashed run paid without re-querying the labeler.
	walAbstains map[int][]float64

	// batcher, when non-nil, replaces the per-pair labeler: labeling
	// rounds go through one LabelBatch call and the costly-oracle
	// machinery in costly.go (ledger, abstain requeue, dollar budget).
	batcher oracle.BatchOracle
	// maxCost is the batcher's per-answer cost ceiling (0 for free
	// oracles), the unit the dollar budget is checked against.
	maxCost float64
	// pairAdv is the batcher's per-pair ordinal realignment hook, when it
	// implements oracle.PairAdvancer (the simulated LLM oracle does).
	pairAdv oracle.PairAdvancer
	// ledger is the session's cost accounting; see CostLedger.
	ledger CostLedger
	// abstains counts billed abstentions per still-pending pool index;
	// a pair reaching the abstain cutoff is retired from the pool.
	abstains map[int]int
	// warm is the transfer warm-start learner (see SetWarmStart): it
	// drives evaluation and selection until the labeled set can train
	// the session's own learner, and is itself never trained.
	warm Learner

	src *countingSource
	rng *rand.Rand

	observers []Observer

	// Universe split and labeled-set bookkeeping, valid after the seed
	// phase.
	maxLabels int
	testIdx   []int
	labeled   []int
	labels    []bool
	unlabeled []int

	seeded      bool
	iter        int
	prevPred    []bool
	stableIters int

	res    *Result
	reason StopReason
	done   bool
	err    error
}

// NewSession validates the config and prepares a session. No Oracle
// queries are issued until the first Run or Step call (the seed phase is
// lazy), so construction is side-effect free.
func NewSession(pool *Pool, learner Learner, sel Selector, o oracle.Oracle, cfg Config) (*Session, error) {
	return NewFallibleSession(pool, learner, sel, resilience.Wrap(o), cfg)
}

// NewFallibleSession is NewSession for labelers that can fail: a
// FallibleOracle (typically a resilience.Retrier over a remote or
// fault-injected labeler). Failed label queries degrade gracefully — the
// pair is requeued at the back of the unlabeled pool and surfaced as an
// OracleFault event — and only a round in which every query fails stops
// the run (StopOracleFailed).
func NewFallibleSession(pool *Pool, learner Learner, sel Selector, fo resilience.FallibleOracle, cfg Config) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Same pre-seed validation path as Config.Validate: a selector that
	// declares learner requirements (LearnerChecker) is checked here, so
	// e.g. LFP/LFN composed with a non-rule learner fails with a typed
	// *IncompatibleError at construction instead of terminating mid-run
	// with an inscrutable StopSelectorEmpty.
	if err := ValidateSelection(learner, sel); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	src := newCountingSource(cfg.Seed)
	s := &Session{
		pool:    pool,
		learner: learner,
		sel:     sel,
		labeler: fo,
		cfg:     cfg,
		src:     src,
		rng:     rand.New(src),
		res:     &Result{},
	}
	if st, ok := resilience.StatefulOf(fo); ok {
		s.stateful = st
	}
	return s, nil
}

// SetLabelSink wires a durable label log (typically a
// resilience.LabelWAL) into the session. Call before Run/Step; labels
// granted earlier are not re-sent. Appends are idempotent on a WAL, so
// attaching the same WAL a resumed run was restored from is safe.
func (s *Session) SetLabelSink(sink LabelSink) { s.sink = sink }

// AddObserver subscribes obs to the session's event stream. Call before
// Run/Step; events already emitted are not replayed.
func (s *Session) AddObserver(obs ...Observer) {
	s.observers = append(s.observers, obs...)
}

func (s *Session) emit(e Event) {
	for _, o := range s.observers {
		o.Observe(e)
	}
}

// Result returns the run's (possibly partial) outcome. The curve holds
// one point per completed iteration; LabelsUsed is only set once the run
// has finished or been cancelled.
func (s *Session) Result() *Result { return s.res }

// Reason returns why the run stopped (StopNone while still running).
func (s *Session) Reason() StopReason { return s.reason }

// Done reports whether the run has terminated.
func (s *Session) Done() bool { return s.done }

// Run drives the session to completion: seed once, then iterate
// train→evaluate→select→label until a stopping criterion fires. On
// cancellation it returns the partial Result together with the context's
// error; the session remains snapshottable, so the curve is not lost.
func (s *Session) Run(ctx context.Context) (*Result, error) {
	for {
		done, err := s.Step(ctx)
		if done || err != nil {
			return s.res, err
		}
	}
}

// Step executes the seed phase if needed, then exactly one
// train→evaluate→select→label iteration. It returns done=true once a
// stopping criterion fires (calling Step again is a no-op). Snapshots
// taken between Step calls are exact checkpoints.
func (s *Session) Step(ctx context.Context) (bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.done {
		return true, s.err
	}
	if s.cfg.WarmStartModel != "" && s.warm == nil {
		return true, s.cancel(fmt.Errorf(
			"core: config records warm-start %q but no learner is attached (call SetWarmStart before Step)",
			s.cfg.WarmStartModel))
	}
	if !s.seeded {
		start := time.Now()
		if err := s.seedPhase(ctx); err != nil {
			return true, err
		}
		s.emit(PhaseDone{
			Phase: "seed", Iteration: -1, Elapsed: time.Since(start),
			Labels: len(s.labeled), LabelsDelta: len(s.labeled),
			Workers: workerCount(s.cfg.Workers), PoolRemaining: len(s.unlabeled),
		})
	}

	s.emit(IterationStart{
		Iteration:     s.iter,
		LabelsUsed:    len(s.labeled),
		PoolRemaining: len(s.unlabeled),
	})
	if err := ctx.Err(); err != nil {
		return true, s.cancel(err)
	}

	trainTime := s.trainPhase()
	s.emit(TrainDone{Iteration: s.iter, Labels: len(s.labeled), Elapsed: trainTime})
	s.emit(PhaseDone{
		Phase: "train", Iteration: s.iter, Elapsed: trainTime,
		Labels: len(s.labeled), Workers: 1, PoolRemaining: len(s.unlabeled),
	})
	if err := ctx.Err(); err != nil {
		return true, s.cancel(err)
	}

	pt, pred, err := s.evalPhase(ctx, trainTime)
	if err != nil {
		return true, s.cancel(err)
	}
	if s.batcher != nil {
		pt.Spent = s.ledger.Spent
	}

	// Ground-truth-free stability stop: track prediction churn.
	if s.cfg.StabilityWindow > 0 {
		if s.prevPred != nil {
			flips := 0
			for j := range pred {
				if pred[j] != s.prevPred[j] {
					flips++
				}
			}
			if float64(flips) <= s.cfg.StabilityEpsilon*float64(len(pred)) {
				s.stableIters++
			} else {
				s.stableIters = 0
			}
		}
		s.prevPred = pred
	}

	selStart := time.Now()
	batch, reason := s.selectPhase(ctx, &pt)
	if err := ctx.Err(); err != nil {
		// Cancelled inside the selector: the iteration is incomplete, so
		// its point is not recorded.
		return true, s.cancel(err)
	}
	s.emit(PhaseDone{
		Phase: "select", Iteration: s.iter, Elapsed: time.Since(selStart),
		Labels: len(s.labeled), Batch: len(batch),
		Workers: workerCount(s.cfg.Workers), PoolRemaining: len(s.unlabeled),
	})
	if s.cfg.OnIteration != nil {
		s.cfg.OnIteration(s.learner, &pt)
	}
	s.res.Curve = append(s.res.Curve, pt)
	if reason != StopNone {
		s.finish(reason, nil)
		return true, nil
	}
	s.emit(BatchSelected{
		Iteration:       s.iter,
		Batch:           batch,
		CommitteeCreate: pt.CommitteeCreateTime,
		Score:           pt.ScoreTime,
	})

	labStart := time.Now()
	before := len(s.labeled)
	if err := s.labelPhase(ctx, batch); err != nil {
		return true, s.failLabeling(err)
	}
	s.emit(PhaseDone{
		Phase: "label", Iteration: s.iter, Elapsed: time.Since(labStart),
		Labels: len(s.labeled), LabelsDelta: len(s.labeled) - before,
		Batch: len(batch), Workers: 1, PoolRemaining: len(s.unlabeled),
	})
	s.iter++
	return false, nil
}

// failLabeling terminates the run for a labeling error, separating a
// stalled labeler (StopOracleFailed) from cancellation and sink faults.
func (s *Session) failLabeling(err error) error {
	if errors.Is(err, ErrLabelingStalled) {
		s.finish(StopOracleFailed, err)
		return err
	}
	return s.cancel(err)
}

// seedPhase builds the selection universe and draws the initial labeled
// sample. If a single class comes back, it keeps drawing batches until
// both classes are present (a degenerate training set cannot bootstrap
// any learner); each extra draw is clamped to the remaining budget so the
// bootstrap can never overshoot MaxLabels.
func (s *Session) seedPhase(ctx context.Context) error {
	all := s.rng.Perm(s.pool.Len())
	var universe []int
	switch s.cfg.Mode {
	case HeldOut:
		cut := int(float64(s.pool.Len()) * s.cfg.HoldoutFrac)
		s.testIdx, universe = all[:cut], all[cut:]
	default:
		s.testIdx = make([]int, s.pool.Len())
		for i := range s.testIdx {
			s.testIdx[i] = i
		}
		universe = all
	}
	s.maxLabels = s.cfg.MaxLabels
	if s.maxLabels <= 0 || s.maxLabels > len(universe) {
		s.maxLabels = len(universe)
	}
	s.labeled = make([]int, 0, s.maxLabels)
	s.labels = make([]bool, 0, s.maxLabels)
	s.unlabeled = append([]int(nil), universe...)
	s.res.TestSize = len(s.testIdx)
	s.seeded = true

	if s.warm != nil {
		// Transfer warm-start: the pre-trained learner drives the first
		// selections, so no random bootstrap sample is bought. The
		// universe split and RNG position above are unchanged.
		return nil
	}
	if err := s.labelFront(ctx, min(s.cfg.SeedLabels, s.maxLabels)); err != nil {
		return s.failLabeling(err)
	}
	for !bothClasses(s.labels) && len(s.unlabeled) > 0 && len(s.labeled) < s.maxLabels &&
		!s.budgetExhausted() {
		if err := s.labelFront(ctx, min(s.cfg.BatchSize, s.maxLabels-len(s.labeled))); err != nil {
			return s.failLabeling(err)
		}
	}
	return nil
}

// labelFront labels the next k unlabeled examples in universe order,
// checking the context before every Oracle query.
func (s *Session) labelFront(ctx context.Context, k int) error {
	if k > len(s.unlabeled) {
		k = len(s.unlabeled)
	}
	return s.labelBatch(ctx, append([]int(nil), s.unlabeled[:k]...))
}

// labelOne resolves one pool index to a label: from the WAL cache when a
// resumed run already paid for it (advancing a stateful oracle's RNG past
// the draw the crashed run consumed), otherwise by querying the labeler.
func (s *Session) labelOne(ctx context.Context, i int) (bool, error) {
	if a, ok := s.walLabels[i]; ok {
		delete(s.walLabels, i)
		if s.stateful != nil {
			s.stateful.Advance(1)
		}
		return a.label, nil
	}
	return s.labeler.Label(ctx, s.pool.Pairs[i])
}

// labelBatch queries the labeler for each index in batch, degrading
// gracefully under faults: granted labels move into the labeled set (and
// the sink, when one is attached); failed indices are requeued at the
// back of the unlabeled pool so the run trains on what it got and comes
// back to them later; a context error stops immediately, leaving the
// unattempted remainder in place. A round in which every query failed
// returns ErrLabelingStalled — training on nothing new would loop
// forever against a dead labeler.
func (s *Session) labelBatch(ctx context.Context, batch []int) error {
	if s.batcher != nil {
		return s.labelBatchOracle(ctx, batch)
	}
	granted := make([]int, 0, len(batch))
	var failed []int
	var fatal error
	for _, i := range batch {
		if fatal = ctx.Err(); fatal != nil {
			break
		}
		lab, err := s.labelOne(ctx, i)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				fatal = cerr
				break
			}
			s.emit(OracleFault{Iteration: s.iter, Index: i, Pair: s.pool.Pairs[i], Err: err})
			failed = append(failed, i)
			continue
		}
		s.labeled = append(s.labeled, i)
		s.labels = append(s.labels, lab)
		granted = append(granted, i)
		if s.sink != nil {
			if serr := s.sink.Append(len(s.labeled), i, lab); serr != nil {
				fatal = fmt.Errorf("core: recording label in sink: %w", serr)
				break
			}
		}
	}
	removeFromPool(&s.unlabeled, granted)
	if len(failed) > 0 {
		removeFromPool(&s.unlabeled, failed)
		s.unlabeled = append(s.unlabeled, failed...)
	}
	if fatal != nil {
		return fatal
	}
	if len(granted) == 0 && len(failed) > 0 {
		return fmt.Errorf("%w: %d of %d queries failed", ErrLabelingStalled, len(failed), len(batch))
	}
	return nil
}

// trainPhase retrains the learner from scratch on the cumulative labeled
// set (the benchmark's retrain protocol) and returns the wall time.
// While a warm-start session's labeled set cannot train (empty or
// single-class), the phase is skipped — the warm learner serves as the
// model and is never trained, which keeps snapshot replay trivially
// deterministic.
func (s *Session) trainPhase() time.Duration {
	if s.useWarm() {
		return 0
	}
	trainX, trainY := gatherTraining(s.pool, s.labeled, s.labels, len(s.labeled))
	start := time.Now()
	s.learner.Train(trainX, trainY)
	return time.Since(start)
}

// evalPhase predicts over the test universe in parallel and scores the
// confusion matrix.
func (s *Session) evalPhase(ctx context.Context, trainTime time.Duration) (eval.Point, []bool, error) {
	start := time.Now()
	pred, err := parallelPredict(ctx, s.activeLearner().Predict, s.pool, s.testIdx, s.cfg.Workers)
	if err != nil {
		return eval.Point{}, nil, err
	}
	pt := evalPoint(s.pool, s.testIdx, pred, len(s.labeled), trainTime)
	elapsed := time.Since(start)
	s.emit(EvalDone{Iteration: s.iter, Point: pt, Elapsed: elapsed})
	s.emit(PhaseDone{
		Phase: "evaluate", Iteration: s.iter, Elapsed: elapsed,
		Labels: len(s.labeled), Workers: workerCount(s.cfg.Workers),
		PoolRemaining: len(s.unlabeled),
	})
	return pt, pred, nil
}

// selectPhase checks the stopping criteria and, if the run continues,
// asks the selector for the next batch. It writes the selector's latency
// breakdown into pt and returns the stop reason (StopNone to continue).
func (s *Session) selectPhase(ctx context.Context, pt *eval.Point) ([]int, StopReason) {
	sctx := &SelectContext{
		Ctx:     ctx,
		Learner: s.activeLearner(), Pool: s.pool,
		LabeledIdx: s.labeled, Labels: s.labels,
		Unlabeled: s.unlabeled, Rand: s.rng,
		Workers: s.cfg.Workers,
	}
	var batch []int
	reason := StopNone
	switch {
	case len(s.labeled) >= s.maxLabels:
		reason = StopBudget
	case s.budgetExhausted():
		reason = StopBudgetExhausted
	case len(s.unlabeled) == 0:
		reason = StopPoolExhausted
	case s.cfg.TargetF1 > 0 && pt.F1 >= s.cfg.TargetF1:
		reason = StopTargetF1
	case s.cfg.StabilityWindow > 0 && s.stableIters >= s.cfg.StabilityWindow:
		reason = StopStability
	default:
		k := min(s.cfg.BatchSize, s.maxLabels-len(s.labeled))
		batch = s.sel.Select(sctx, k)
		switch {
		case len(batch) == 0 && ctx.Err() != nil:
			// The selector bailed out because the run was cancelled
			// mid-select, not because it ran out of informative examples;
			// reporting StopSelectorEmpty here would let a cancelled run
			// masquerade as a normal termination.
			reason = StopCancelled
		case len(batch) == 0:
			reason = StopSelectorEmpty
		}
	}
	pt.CommitteeCreateTime = sctx.CommitteeCreate
	pt.ScoreTime = sctx.Score
	return batch, reason
}

// labelPhase queries the Oracle for the batch and moves it into the
// labeled set. The context is checked before every query; on
// cancellation the already-labeled prefix stays consistent (removed from
// the unlabeled pool) so the session remains snapshottable. Individual
// query failures requeue the pair instead of aborting — see labelBatch.
func (s *Session) labelPhase(ctx context.Context, batch []int) error {
	return s.labelBatch(ctx, batch)
}

func (s *Session) finish(reason StopReason, err error) {
	s.done = true
	s.reason = reason
	s.err = err
	s.res.LabelsUsed = len(s.labeled)
	s.res.Reason = reason
	s.emit(RunEnd{
		Iterations: len(s.res.Curve),
		LabelsUsed: s.res.LabelsUsed,
		Reason:     reason,
		Err:        err,
	})
}

func (s *Session) cancel(err error) error {
	s.finish(StopCancelled, err)
	return err
}

// ---- shared phase helpers (used by Session and RunEnsemble) ----

// gatherTraining copies the labeled set's vectors and labels into
// training slices. n caps the prefix taken (Restore replays historical
// prefixes; live phases pass len(labeled)).
func gatherTraining(pool *Pool, labeled []int, labels []bool, n int) ([]feature.Vector, []bool) {
	trainX := make([]feature.Vector, n)
	trainY := make([]bool, n)
	for j := 0; j < n; j++ {
		trainX[j] = pool.X[labeled[j]]
		trainY[j] = labels[j]
	}
	return trainX, trainY
}

// evalPoint scores predictions over the test universe into a curve point.
func evalPoint(pool *Pool, testIdx []int, pred []bool, labels int, trainTime time.Duration) eval.Point {
	truth := make([]bool, len(testIdx))
	for j, i := range testIdx {
		truth[j] = pool.Truth[i]
	}
	conf := eval.Evaluate(pred, truth)
	return eval.Point{
		Labels:    labels,
		F1:        conf.F1(),
		Precision: conf.Precision(),
		Recall:    conf.Recall(),
		TrainTime: trainTime,
	}
}

// removeFromPool deletes the batch's indices from the unlabeled pool,
// preserving order.
func removeFromPool(unlabeled *[]int, batch []int) {
	if len(batch) == 0 {
		return
	}
	inBatch := make(map[int]struct{}, len(batch))
	for _, i := range batch {
		inBatch[i] = struct{}{}
	}
	next := (*unlabeled)[:0]
	for _, i := range *unlabeled {
		if _, ok := inBatch[i]; !ok {
			next = append(next, i)
		}
	}
	*unlabeled = next
}

// ---- serializable RNG ----

// countingSource wraps the standard math/rand source with draw counters,
// making the RNG position serializable: a Snapshot records how many
// values were drawn, and Restore replays that many draws on a fresh
// source with the same seed. Every draw advances the underlying state
// exactly once, so the replayed source is state-identical — and because
// the wrapped source is rand.NewSource itself, Session runs are
// bit-identical to the old core.Run.
type countingSource struct {
	src      rand.Source64
	n63, n64 uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: asSource64(rand.NewSource(seed))}
}

// Int63 implements rand.Source.
func (c *countingSource) Int63() int64 {
	c.n63++
	return c.src.Int63()
}

// Uint64 implements rand.Source64.
func (c *countingSource) Uint64() uint64 {
	c.n64++
	return c.src.Uint64()
}

// Seed implements rand.Source.
func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n63, c.n64 = 0, 0
}

// replay advances a freshly seeded source to a snapshotted position. The
// final state depends only on the number of draws of each kind, not on
// how they were interleaved.
func (c *countingSource) replay(n63, n64 uint64) {
	for i := uint64(0); i < n63; i++ {
		c.src.Int63()
	}
	for i := uint64(0); i < n64; i++ {
		c.src.Uint64()
	}
	c.n63, c.n64 = n63, n64
}

// asSource64 upgrades a rand.Source to rand.Source64. rand.NewSource has
// returned a Source64 since Go 1.8; the shim covers hypothetical plain
// sources.
func asSource64(src rand.Source) rand.Source64 {
	if s64, ok := src.(rand.Source64); ok {
		return s64
	}
	return int63Source{src}
}

type int63Source struct{ rand.Source }

func (s int63Source) Uint64() uint64 {
	return uint64(s.Int63())>>31 | uint64(s.Int63())<<32
}
