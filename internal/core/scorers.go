package core

import (
	"math"
	"sort"
	"time"

	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/interp"
	"github.com/alem/alem/internal/rules"
	"github.com/alem/alem/internal/tree"
)

// The built-in informativeness measures, one per paper selector family.
// Each scorer reproduces its pre-refactor selector's computation exactly
// — same arithmetic, same parallelFor fan-out, same serial pre-draw of
// all randomness — so the compositions in selectors.go are bit-identical
// to the concrete implementations they replaced (pinned by the
// Equivalence tests at worker counts {0,1,2,8}).

// QBCScorer is learner-agnostic query-by-committee disagreement (§4.1):
// B bootstrap resamples of the labeled data train B committee members via
// the factory; a candidate's score is the variance (P/C)(1−P/C) of its
// positive votes (or vote entropy — same ranking for binary committees).
// All bootstrap draws and factory seeds come out of ctx.Rand serially
// before the committee fan-out, in the exact order the serial loop
// consumed them.
type QBCScorer struct {
	B          int
	Factory    Factory
	UseEntropy bool
}

// Name implements Scorer.
func (q QBCScorer) Name() string { return "qbc-variance" }

// Score implements Scorer. Committee creation is timed into
// ctx.CommitteeCreate (it dominates QBC latency, Fig. 10a-b).
func (q QBCScorer) Score(ctx *SelectContext, _ int) (*ScoredSet, error) {
	if q.B <= 0 || q.Factory == nil || len(ctx.LabeledIdx) == 0 {
		return nil, errNotApplicable
	}
	start := time.Now()
	if ctx.Cancelled() {
		ctx.CommitteeCreate = time.Since(start)
		return nil, ctx.Ctx.Err()
	}
	n := len(ctx.LabeledIdx)
	resamples := make([][]int, q.B)
	seeds := make([]int64, q.B)
	for b := 0; b < q.B; b++ {
		draws := make([]int, n)
		for i := range draws {
			draws[i] = ctx.Rand.Intn(n)
		}
		resamples[b] = draws
		seeds[b] = ctx.Rand.Int63()
	}
	committee := make([]Learner, q.B)
	if err := parallelFor(ctx.Ctx, q.B, ctx.Workers, 2, func(b int) {
		X := make([]feature.Vector, 0, n)
		y := make([]bool, 0, n)
		for _, j := range resamples[b] {
			X = append(X, ctx.Pool.X[ctx.LabeledIdx[j]])
			y = append(y, ctx.Labels[j])
		}
		m := q.Factory(seeds[b])
		m.Train(X, y)
		committee[b] = m
	}); err != nil {
		ctx.CommitteeCreate = time.Since(start)
		return nil, err
	}
	ctx.CommitteeCreate = time.Since(start)

	variance := make([]float64, len(ctx.Unlabeled))
	if err := parallelFor(ctx.Ctx, len(ctx.Unlabeled), ctx.Workers, parallelCutoff, func(j int) {
		pos := 0
		for _, m := range committee {
			if m.Predict(ctx.Pool.X[ctx.Unlabeled[j]]) {
				pos++
			}
		}
		p := float64(pos) / float64(q.B)
		if q.UseEntropy {
			variance[j] = binaryEntropy(p)
		} else {
			variance[j] = p * (1 - p)
		}
	}); err != nil {
		return nil, err
	}
	return &ScoredSet{Candidates: ctx.Unlabeled, Scores: variance}, nil
}

// MarginScorer is learner-aware ambiguity for margin classifiers (§4.2):
// score is the NEGATED |margin|, so the smallest-margin (most ambiguous)
// candidates score highest under the uniform higher-is-better contract.
// Requires a MarginLearner.
type MarginScorer struct{}

// Name implements Scorer.
func (MarginScorer) Name() string { return "margin" }

// Score implements Scorer.
func (MarginScorer) Score(ctx *SelectContext, _ int) (*ScoredSet, error) {
	ml, ok := ctx.Learner.(MarginLearner)
	if !ok {
		return nil, errNotApplicable
	}
	return marginScores(ctx, ml)
}

// marginScores is the shared |margin| sweep (negated into scores),
// fanned out on the standard substrate. BlockedMarginScorer reuses it
// for its everything-pruned fallback.
func marginScores(ctx *SelectContext, ml MarginLearner) (*ScoredSet, error) {
	scores := make([]float64, len(ctx.Unlabeled))
	if err := parallelFor(ctx.Ctx, len(ctx.Unlabeled), ctx.Workers, parallelCutoff, func(j int) {
		scores[j] = -math.Abs(ml.Margin(ctx.Pool.X[ctx.Unlabeled[j]]))
	}); err != nil {
		return nil, err
	}
	return &ScoredSet{Candidates: ctx.Unlabeled, Scores: scores}, nil
}

// BlockedMarginScorer is MarginScorer with the §5.1 blocking-dimension
// optimization for linear classifiers: a candidate whose TopK
// largest-|weight| dimensions are all zero has margin ≈ |bias| —
// unambiguous — so it is pruned from the candidate set without paying
// the dot product. Requires a WeightedLinear learner; with an empty
// weight vector it delegates to uniform random selection, and when
// pruning removes everything it falls back to the full margin sweep.
type BlockedMarginScorer struct {
	TopK int
}

// Name implements Scorer.
func (BlockedMarginScorer) Name() string { return "margin-blocked" }

// Score implements Scorer.
func (bm BlockedMarginScorer) Score(ctx *SelectContext, _ int) (*ScoredSet, error) {
	wl, ok := ctx.Learner.(WeightedLinear)
	if !ok {
		return nil, errNotApplicable
	}
	w := wl.Weights()
	if len(w) == 0 {
		return nil, errDelegate{to: Random{}}
	}
	topK := bm.TopK
	if topK <= 0 || topK > len(w) {
		topK = len(w)
	}
	dims := topWeightDims(w, topK)

	// Score in parallel: an example whose blocking dimensions are all
	// zero records a sentinel instead of paying the dot product; the
	// survivors are collected serially in pool order afterwards, so the
	// result is identical at every worker count.
	margins := make([]float64, len(ctx.Unlabeled))
	if err := parallelFor(ctx.Ctx, len(ctx.Unlabeled), ctx.Workers, parallelCutoff, func(j int) {
		x := ctx.Pool.X[ctx.Unlabeled[j]]
		for _, d := range dims {
			if x[d] != 0 {
				margins[j] = math.Abs(wl.Margin(x))
				return
			}
		}
		margins[j] = blockedSentinel // margin == |bias|: pruned without the dot product
	}); err != nil {
		return nil, err
	}
	var cands []int
	var scores []float64
	for j, i := range ctx.Unlabeled {
		if margins[j] != blockedSentinel {
			cands = append(cands, i)
			scores = append(scores, -margins[j])
		}
	}
	if len(cands) == 0 {
		// Degenerate: everything pruned; fall back to the full sweep.
		return marginScores(ctx, wl)
	}
	return &ScoredSet{Candidates: cands, Scores: scores}, nil
}

// blockedSentinel marks an example pruned by the blocking dimensions.
// Margins are non-negative, so a negative value can never collide.
const blockedSentinel = -1.0

// topWeightDims returns the indices of the k largest |w| entries.
func topWeightDims(w []float64, k int) []int {
	idx := make([]int, len(w))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(w[idx[a]]) > math.Abs(w[idx[b]])
	})
	return idx[:k]
}

// VoteScorer is learner-aware QBC disagreement for committee learners
// (§4.1.1): the learner's own ensemble (a random forest's trees) votes,
// and the score is the (P/C)(1−P/C) variance — selection pays only the
// example-scoring cost since the committee was built during training.
// Requires a VoteLearner.
type VoteScorer struct{}

// Name implements Scorer.
func (VoteScorer) Name() string { return "vote-variance" }

// Score implements Scorer.
func (VoteScorer) Score(ctx *SelectContext, _ int) (*ScoredSet, error) {
	vl, ok := ctx.Learner.(VoteLearner)
	if !ok {
		return nil, errNotApplicable
	}
	variance, err := voteVariance(ctx, vl, ctx.Unlabeled)
	if err != nil {
		return nil, err
	}
	return &ScoredSet{Candidates: ctx.Unlabeled, Scores: variance}, nil
}

// BlockedVoteScorer is VoteScorer behind the §5 mined-DNF blocking
// sketch for tree learners: a high-recall blocking DNF mined from the
// forest's own trees (the Corleone idea) prunes uncovered candidates
// before any tree votes. Pruning only sticks when at least k candidates
// survive — the ambiguous region must stay selectable. A VoteLearner
// that is not a *tree.Forest gets the plain unblocked scoring.
type BlockedVoteScorer struct {
	// TargetRecall is the labeled-positive coverage the mined DNF must
	// reach (default 0.95).
	TargetRecall float64
}

// Name implements Scorer.
func (BlockedVoteScorer) Name() string { return "vote-variance-blocked" }

// Score implements Scorer.
func (bf BlockedVoteScorer) Score(ctx *SelectContext, k int) (*ScoredSet, error) {
	vl, ok := ctx.Learner.(VoteLearner)
	if !ok {
		return nil, errNotApplicable
	}
	candidates := ctx.Unlabeled
	if forest, ok := ctx.Learner.(*tree.Forest); ok {
		target := bf.TargetRecall
		if target <= 0 {
			target = 0.95
		}
		// Mine the blocking DNF on the labeled data.
		X := make([][]float64, len(ctx.LabeledIdx))
		for j, i := range ctx.LabeledIdx {
			X[j] = ctx.Pool.X[i]
		}
		dnf := interp.MineBlockingDNF(forest, X, ctx.Labels, target)
		if len(dnf) > 0 {
			pruned := make([]int, 0, len(ctx.Unlabeled))
			for _, i := range ctx.Unlabeled {
				if interp.EvalDNF(dnf, ctx.Pool.X[i]) {
					pruned = append(pruned, i)
				}
			}
			if len(pruned) >= k {
				candidates = pruned
			}
		}
	}
	variance, err := voteVariance(ctx, vl, candidates)
	if err != nil {
		return nil, err
	}
	return &ScoredSet{Candidates: candidates, Scores: variance}, nil
}

// voteVariance computes the (P/C)(1−P/C) disagreement of a vote committee
// over the candidate examples, fanning out across ctx.Workers.
func voteVariance(ctx *SelectContext, vl VoteLearner, candidates []int) ([]float64, error) {
	variance := make([]float64, len(candidates))
	err := parallelFor(ctx.Ctx, len(candidates), ctx.Workers, parallelCutoff, func(j int) {
		pos, total := vl.Votes(ctx.Pool.X[candidates[j]])
		if total == 0 {
			return
		}
		p := float64(pos) / float64(total)
		variance[j] = p * (1 - p)
	})
	return variance, err
}

// LFPLFNScorer is the rule learner's Likely-False-Positive / Negative
// heuristic (§4.3) as an informativeness measure: candidates are the
// rule-suspicious pairs (DNF-covered with low feature similarity, or
// Rule-Minus-covered with high similarity), ranked by the paper's
// LFP/LFN interleaving; score −r for interleave rank r, so the standard
// deterministic picker reproduces the original batch exactly. Requires
// the rules.Model learner — the Fig. 2 leaf this selector hangs off.
type LFPLFNScorer struct{}

// Name implements Scorer.
func (LFPLFNScorer) Name() string { return "lfp-lfn" }

// Score implements Scorer. Scoring polls the run's cancellation signal
// on the standard stride, so rule-learner runs respond to
// SIGINT/deadlines like every other selector.
func (LFPLFNScorer) Score(ctx *SelectContext, k int) (*ScoredSet, error) {
	m, ok := ctx.Learner.(*rules.Model)
	if !ok {
		return nil, errNotApplicable
	}
	if k <= 0 {
		return nil, errNotApplicable
	}
	rank, ok := m.RankLFPLFN(ctx.Pool.X, ctx.Unlabeled, ctx.Cancelled)
	if !ok {
		if err := ctx.Ctx.Err(); err != nil {
			return nil, err
		}
		return nil, errNotApplicable
	}
	scores := make([]float64, len(rank))
	for r := range rank {
		scores[r] = -float64(r)
	}
	return &ScoredSet{Candidates: rank, Scores: scores}, nil
}

// AmbiguityScorer is the IWAL informativeness measure: margins
// normalized into [0,1] ambiguity, 1 at the decision boundary, 0 at the
// pool's largest margin. Composed with AcceptanceSamplePicker it is the
// simplified importance-weighted selector (Beygelzimer et al., §2);
// composed with a deterministic or diversity picker it is a normalized
// margin measure. Requires a MarginLearner.
type AmbiguityScorer struct{}

// Name implements Scorer.
func (AmbiguityScorer) Name() string { return "ambiguity" }

// Score implements Scorer.
func (AmbiguityScorer) Score(ctx *SelectContext, _ int) (*ScoredSet, error) {
	ml, ok := ctx.Learner.(MarginLearner)
	if !ok {
		return nil, errNotApplicable
	}
	margins := make([]float64, len(ctx.Unlabeled))
	if err := parallelFor(ctx.Ctx, len(ctx.Unlabeled), ctx.Workers, parallelCutoff, func(j int) {
		margins[j] = math.Abs(ml.Margin(ctx.Pool.X[ctx.Unlabeled[j]]))
	}); err != nil {
		return nil, err
	}
	maxM := 0.0
	for _, m := range margins {
		if m > maxM {
			maxM = m
		}
	}
	if maxM == 0 {
		maxM = 1
	}
	for j := range margins {
		margins[j] = 1 - margins[j]/maxM
	}
	return &ScoredSet{Candidates: ctx.Unlabeled, Scores: margins}, nil
}

// UniformScorer assigns every candidate the same zero score — the
// measure half of uniform random selection (supervised baseline). It
// draws nothing from the RNG; the randomness, if any, belongs to the
// picker.
type UniformScorer struct{}

// Name implements Scorer.
func (UniformScorer) Name() string { return "uniform" }

// Score implements Scorer.
func (UniformScorer) Score(ctx *SelectContext, _ int) (*ScoredSet, error) {
	return &ScoredSet{Candidates: ctx.Unlabeled, Scores: make([]float64, len(ctx.Unlabeled))}, nil
}
