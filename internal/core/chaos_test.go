package core

// Chaos tests: seeded fault injection plus a mid-run kill, asserting the
// Snapshot + label-WAL resume path reproduces the uninterrupted run
// bit-for-bit. Run in isolation with `go test -race -run Chaos ./...`.

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/linear"
	"github.com/alem/alem/internal/oracle"
	"github.com/alem/alem/internal/resilience"
)

// chaosLabeler builds the fault chain used by the chaos tests: a Retrier
// over a seeded FaultyOracle over the pool's perfect oracle. Identical
// seeds build an identically-behaving chain, which is what the
// bit-identity assertions lean on.
func chaosLabeler(pool *Pool, rate float64, seed int64) (*resilience.Retrier, *resilience.FaultyOracle) {
	faulty := resilience.NewFaultyOracle(resilience.Wrap(poolOracle(pool)),
		resilience.FaultConfig{TransientRate: rate}, seed)
	retrier := resilience.NewRetrier(faulty, resilience.RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   time.Nanosecond,
		Sleep:       func(time.Duration) {}, // no real sleeping in tests
	}, seed)
	return retrier, faulty
}

// killSwitch simulates a hard process kill: after `after` label requests
// it cancels the run's context and answers nothing further, like a
// process that died between paying for one label and requesting the next.
type killSwitch struct {
	inner resilience.FallibleOracle
	after int
	calls int
	kill  context.CancelFunc
}

func (k *killSwitch) Label(ctx context.Context, p dataset.PairKey) (bool, error) {
	k.calls++
	if k.calls > k.after {
		k.kill()
		return false, context.Canceled
	}
	return k.inner.Label(ctx, p)
}

func (k *killSwitch) Queries() int      { return k.inner.Queries() }
func (k *killSwitch) UnwrapOracle() any { return k.inner }

// TestChaosKillResumeBitIdentical is the acceptance scenario: a run with
// ~30% transient oracle failures is killed mid-iteration, then resumed
// from the last checkpoint plus the label WAL, and must converge to the
// exact curve, F1 trajectory and label count of an uninterrupted run —
// without re-paying for any label the dead process already bought.
func TestChaosKillResumeBitIdentical(t *testing.T) {
	pool := syntheticPool(600, 31)
	cfg := Config{Seed: 31, MaxLabels: 120}
	const faultRate, faultSeed = 0.3, 77

	// Reference: the uninterrupted faulty run.
	refLabeler, refFaulty := chaosLabeler(pool, faultRate, faultSeed)
	ref, err := NewFallibleSession(pool, linear.NewSVM(31), Margin{}, refLabeler, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if refFaulty.Injected() == 0 || float64(refFaulty.Injected()) < 0.2*float64(refFaulty.Calls()) {
		t.Fatalf("fault injector too tame: %d faults in %d attempts, want >= 20%%",
			refFaulty.Injected(), refFaulty.Calls())
	}
	// Bit-identity across a resume holds only when no pair exhausted its
	// retry budget before the checkpoint; this seed satisfies it.
	if refLabeler.Exhausted() != 0 {
		t.Fatalf("reference run exhausted %d retry budgets; pick a tamer seed", refLabeler.Exhausted())
	}
	refQueries := refLabeler.Queries()

	// Chaos run: same seeds, checkpointing each iteration to lastSnap and
	// every granted label to a WAL, killed after 63 label grants.
	dir := t.TempDir()
	walPath := filepath.Join(dir, "labels.wal")
	wal, _, err := resilience.OpenLabelWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	victimLabeler, _ := chaosLabeler(pool, faultRate, faultSeed)
	ks := &killSwitch{inner: victimLabeler, after: 63, kill: cancel}
	victim, err := NewFallibleSession(pool, linear.NewSVM(31), Margin{}, ks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	victim.SetLabelSink(wal)
	var lastSnap bytes.Buffer
	if err := victim.Snapshot().Encode(&lastSnap); err != nil {
		t.Fatal(err)
	}
	for {
		done, err := victim.Step(ctx)
		if err != nil {
			break // the kill
		}
		if done {
			t.Fatal("victim finished before the kill fired")
		}
		lastSnap.Reset()
		if err := victim.Snapshot().Encode(&lastSnap); err != nil {
			t.Fatal(err)
		}
	}
	wal.Close()
	if victim.Reason() != StopCancelled {
		t.Fatalf("victim reason = %v, want StopCancelled", victim.Reason())
	}
	if victimLabeler.Exhausted() != 0 {
		t.Fatalf("victim run exhausted %d retry budgets before the kill", victimLabeler.Exhausted())
	}

	// Resume: fresh learner, fresh fault chain (same seeds), last
	// checkpoint plus WAL replay.
	sn, err := ReadSnapshot(&lastSnap)
	if err != nil {
		t.Fatal(err)
	}
	wal2, records, err := resilience.OpenLabelWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if len(records) != 63 {
		t.Fatalf("WAL holds %d records, want the 63 labels granted before the kill", len(records))
	}
	if len(records) <= len(sn.Labeled) {
		t.Fatalf("kill landed on an iteration boundary (%d WAL records, %d snapshotted); "+
			"the test needs post-checkpoint grants to exercise WAL replay",
			len(records), len(sn.Labeled))
	}
	resLabeler, _ := chaosLabeler(pool, faultRate, faultSeed)
	resumed, err := RestoreWithWAL(pool, linear.NewSVM(31), Margin{}, resLabeler, sn, records)
	if err != nil {
		t.Fatal(err)
	}
	resumed.SetLabelSink(wal2)
	resRes, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	curvesEqual(t, refRes.Curve, resRes.Curve)
	if refRes.LabelsUsed != resRes.LabelsUsed {
		t.Errorf("LabelsUsed differ: %d vs %d", refRes.LabelsUsed, resRes.LabelsUsed)
	}
	if resumed.Reason() != ref.Reason() {
		t.Errorf("reasons differ: %v vs %v", resumed.Reason(), ref.Reason())
	}
	// No label is paid for twice: the resumed process only queries for
	// labels the WAL does not already hold.
	if got, want := resLabeler.Queries(), refQueries-len(records); got != want {
		t.Errorf("resumed process paid %d oracle queries, want %d (WAL labels must not be re-bought)",
			got, want)
	}
	// The WAL now holds the full run, still contiguous.
	if wal2.LastSeq() != refRes.LabelsUsed {
		t.Errorf("final WAL seq = %d, want %d", wal2.LastSeq(), refRes.LabelsUsed)
	}
}

// TestChaosStallTerminates pins the no-spin guarantee: a labeler that is
// hard-down (every attempt fails) must end the run with StopOracleFailed
// and an ErrLabelingStalled error instead of looping forever, and each
// failed pair must surface as an OracleFault event.
func TestChaosStallTerminates(t *testing.T) {
	pool := syntheticPool(200, 32)
	faulty := resilience.NewFaultyOracle(resilience.Wrap(poolOracle(pool)),
		resilience.FaultConfig{TransientRate: 1.0}, 5)
	retrier := resilience.NewRetrier(faulty, resilience.RetryPolicy{
		MaxAttempts: 2, BaseDelay: time.Nanosecond, Sleep: func(time.Duration) {},
	}, 5)
	s, err := NewFallibleSession(pool, linear.NewSVM(32), Margin{}, retrier,
		Config{Seed: 32, MaxLabels: 50})
	if err != nil {
		t.Fatal(err)
	}
	faults := 0
	s.AddObserver(ObserverFunc(func(e Event) {
		if f, ok := e.(OracleFault); ok {
			faults++
			if !errors.Is(f.Err, resilience.ErrOracleExhausted) {
				t.Errorf("fault err = %v, want ErrOracleExhausted", f.Err)
			}
		}
	}))
	done := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = s.Run(context.Background())
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run with a dead labeler did not terminate")
	}
	if !errors.Is(runErr, ErrLabelingStalled) {
		t.Fatalf("err = %v, want ErrLabelingStalled", runErr)
	}
	if s.Reason() != StopOracleFailed {
		t.Errorf("reason = %v, want StopOracleFailed", s.Reason())
	}
	if faults == 0 {
		t.Error("no OracleFault events observed")
	}
	if len(s.Result().Curve) != 0 {
		t.Errorf("a run that never labeled produced %d curve points", len(s.Result().Curve))
	}
}

// TestChaosPartialRoundDegradesGracefully checks the middle ground: when
// some queries in a round fail terminally, the iteration trains on what
// was granted and the failed pairs are requeued, not dropped — the run
// still reaches its label budget.
func TestChaosPartialRoundDegradesGracefully(t *testing.T) {
	pool := syntheticPool(400, 33)
	// No retrier: every injected fault is terminal at the session level,
	// so ~20% of queries fail outright and must be requeued.
	faulty := resilience.NewFaultyOracle(resilience.Wrap(poolOracle(pool)),
		resilience.FaultConfig{TransientRate: 0.2}, 9)
	s, err := NewFallibleSession(pool, linear.NewSVM(33), Margin{}, faulty,
		Config{Seed: 33, MaxLabels: 80})
	if err != nil {
		t.Fatal(err)
	}
	faults := 0
	s.AddObserver(ObserverFunc(func(e Event) {
		if _, ok := e.(OracleFault); ok {
			faults++
		}
	}))
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s.Reason() != StopBudget {
		t.Fatalf("reason = %v, want StopBudget (faults must not end a healthy run)", s.Reason())
	}
	if res.LabelsUsed != 80 {
		t.Errorf("LabelsUsed = %d, want the full budget of 80", res.LabelsUsed)
	}
	if faults == 0 {
		t.Error("expected some OracleFault events at 20% terminal failure rate")
	}
}

// noisyPoolOracle mirrors poolOracle but with label noise, for the
// Stateful snapshot/restore coverage.
func noisyPoolOracle(p *Pool, noise float64, seed int64) *oracle.Noisy {
	l := &dataset.Table{Rows: make([]dataset.Record, p.Len())}
	rt := &dataset.Table{Rows: make([]dataset.Record, p.Len())}
	var matches []dataset.PairKey
	for i, t := range p.Truth {
		if t {
			matches = append(matches, p.Pairs[i])
		}
	}
	return oracle.NewNoisy(dataset.NewDataset("pool", l, rt, matches, 0), noise, seed)
}

// TestChaosNoisyOracleSnapshotResume pins the oracle.Stateful capture: a
// run against a Noisy oracle, snapshotted mid-way and resumed with a
// freshly seeded Noisy oracle, must reproduce the uninterrupted curve —
// the snapshot's OracleDraws realigns the noise RNG.
func TestChaosNoisyOracleSnapshotResume(t *testing.T) {
	pool := syntheticPool(500, 34)
	cfg := Config{Seed: 34, MaxLabels: 100}
	const noise, noiseSeed = 0.2, 13

	ref, err := NewSession(pool, linear.NewSVM(34), Margin{}, noisyPoolOracle(pool, noise, noiseSeed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	interrupted, err := NewSession(pool, linear.NewSVM(34), Margin{}, noisyPoolOracle(pool, noise, noiseSeed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if done, err := interrupted.Step(context.Background()); done || err != nil {
			t.Fatalf("step %d: done=%v err=%v", i, done, err)
		}
	}
	sn := interrupted.Snapshot()
	if sn.OracleDraws == 0 {
		t.Fatal("snapshot did not capture the Noisy oracle's draw count")
	}

	resumed, err := Restore(pool, linear.NewSVM(34), Margin{}, noisyPoolOracle(pool, noise, noiseSeed), sn)
	if err != nil {
		t.Fatal(err)
	}
	resRes, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	curvesEqual(t, refRes.Curve, resRes.Curve)
}

// TestReadSnapshotRejectsTruncated covers the crash-safety contract of
// checkpoint files: a partially written snapshot must be reported as
// truncated, not as an opaque JSON error or (worse) decoded as valid.
func TestReadSnapshotRejectsTruncated(t *testing.T) {
	pool := syntheticPool(100, 35)
	s := mustSession(t, pool, linear.NewSVM(35), Margin{}, Config{Seed: 35, MaxLabels: 30})
	if _, err := s.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	if err := s.Snapshot().Encode(&full); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"half-written", full.Bytes()[:full.Len()/2]},
	} {
		_, err := ReadSnapshot(bytes.NewReader(tc.data))
		if err == nil {
			t.Fatalf("%s snapshot accepted", tc.name)
		}
		if !strings.Contains(err.Error(), "truncated") {
			t.Errorf("%s snapshot error %q does not say truncated", tc.name, err)
		}
	}

	// The intact snapshot still round-trips.
	if _, err := ReadSnapshot(bytes.NewReader(full.Bytes())); err != nil {
		t.Errorf("intact snapshot rejected: %v", err)
	}
}
