// Package core is the active-learning framework itself (§3): the learner
// and example-selector abstractions of Fig. 2 — expressed as Go interfaces
// rather than class inheritance — the active-learning loop that ties
// learner, selector, Oracle and evaluator together, and the two §5
// enhancements (blocking dimensions and active ensembles).
package core

import (
	"github.com/alem/alem/internal/feature"
)

// Learner is the base "learner" of the framework (Fig. 2): anything that
// can be retrained from scratch on the cumulative labeled set and queried
// for labels. linear.SVM, neural.Net, tree.Forest and rules.Model satisfy
// it structurally.
type Learner interface {
	Name() string
	Train(X []feature.Vector, y []bool)
	Predict(x feature.Vector) bool
	PredictAll(X []feature.Vector) []bool
}

// MarginLearner is a learner exposing a confidence margin — linear
// classifiers (|w·x+b|, §4.2.1) and the neural network (affine output
// magnitude, §4.2.2). Margin-based selection requires it; this is how the
// framework records that margin is incompatible with forests and rules.
type MarginLearner interface {
	Learner
	Margin(x feature.Vector) float64
}

// VoteLearner is a learner that *is* a committee in a learner-aware way:
// random forests, whose trees vote (§4.1.1). Learner-aware QBC requires
// it.
type VoteLearner interface {
	Learner
	Votes(x feature.Vector) (pos, total int)
}

// WeightedLinear exposes the weight vector and bias of a linear model.
// The §5.1 blocking-dimension optimization requires it to find the top-K
// |weight| dimensions.
type WeightedLinear interface {
	MarginLearner
	Weights() []float64
	Bias() float64
}

// Factory creates a fresh untrained learner from a seed. Learner-agnostic
// QBC uses it to build bootstrap committees (§4.1); passing a factory
// rather than cloning keeps the committee construction fully decoupled
// from the learner in use, per Mozafari et al.
type Factory func(seed int64) Learner
