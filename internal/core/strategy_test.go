package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/alem/alem/internal/feature"
	"github.com/alem/alem/internal/linear"
	"github.com/alem/alem/internal/rules"
	"github.com/alem/alem/internal/tree"
)

// composable is how the registry-completeness tests reach a selector's
// Scorer×Picker decomposition: every exported paper selector exposes
// Composition(), and the recombinations ARE compositions.
type composable interface {
	Composition() ComposedSelector
}

func compositionOf(t *testing.T, name string, sel Selector) ComposedSelector {
	t.Helper()
	if comp, ok := sel.(ComposedSelector); ok {
		return comp
	}
	c, ok := sel.(composable)
	if !ok {
		t.Fatalf("%s: selector %T is neither a ComposedSelector nor exposes Composition()", name, sel)
	}
	return c.Composition()
}

// TestRegistryCoversExportedSelectors pins the registry as the single
// construction path: every exported paper selector is registered under
// its own Name(), and the registry entry round-trips that name.
func TestRegistryCoversExportedSelectors(t *testing.T) {
	exported := []Selector{
		Random{}, QBC{}, Margin{}, BlockedMargin{}, ForestQBC{},
		BlockedForestQBC{}, LFPLFN{}, IWAL{},
	}
	for _, sel := range exported {
		spec, ok := LookupSelector(sel.Name())
		if !ok {
			t.Errorf("exported selector %q is not registered", sel.Name())
			continue
		}
		if got := spec.New(SelectorParams{}).Name(); got != sel.Name() {
			t.Errorf("registry entry %q constructs a selector named %q", spec.Name, got)
		}
	}
}

// TestRegistryCoversExportedPieces asserts every exported Scorer and
// Picker is reachable through at least one registry entry's composition —
// a new piece that nobody can select from the CLI is a registration bug.
func TestRegistryCoversExportedPieces(t *testing.T) {
	pickers := map[string]bool{}
	scorers := map[string]bool{}
	for _, spec := range Selectors() {
		comp := compositionOf(t, spec.Name, spec.New(SelectorParams{}))
		scorers[comp.Scorer.Name()] = true
		pickers[comp.Picker.Name()] = true
	}
	for _, p := range []Picker{
		TopPicker{}, ShuffledTopPicker{}, RandomPicker{},
		AcceptanceSamplePicker{}, KCenterPicker{}, ScoredClusterPicker{},
	} {
		if !pickers[p.Name()] {
			t.Errorf("picker %q is not reachable from any registry entry", p.Name())
		}
	}
	for _, s := range []Scorer{
		UniformScorer{}, QBCScorer{}, MarginScorer{}, BlockedMarginScorer{},
		VoteScorer{}, BlockedVoteScorer{}, LFPLFNScorer{}, AmbiguityScorer{},
	} {
		if !scorers[s.Name()] {
			t.Errorf("scorer %q is not reachable from any registry entry", s.Name())
		}
	}
}

// TestRegistryEntriesRunOneIteration constructs every registered
// strategy, pairs it with a learner satisfying its Needs declaration,
// and drives one full session iteration (seed → train → evaluate →
// select → label). A registry entry that validates but cannot complete a
// step — or whose Needs string no longer matches reality — fails here.
func TestRegistryEntriesRunOneIteration(t *testing.T) {
	const seed = 29
	for _, spec := range Selectors() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			var (
				pool    *Pool
				learner Learner
			)
			switch spec.Needs {
			case "VoteLearner":
				pool = syntheticPool(300, seed)
				learner = tree.NewForest(5, seed)
			case "rules.Model":
				X, truth := boolVectors(300, seed)
				pool = NewPoolFromVectors(X, truth)
				learner = rules.NewModel(feature.NewBoolExtractor([]string{"a", "b", "c"}))
			default:
				// "", MarginLearner, WeightedLinear: the SVM serves all three.
				pool = syntheticPool(300, seed)
				learner = linear.NewSVM(seed)
			}
			sel, err := NewSelector(spec.Name, SelectorParams{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if err := ValidateSelection(learner, sel); err != nil {
				t.Fatalf("registry's own Needs pairing rejected: %v", err)
			}
			s := mustSession(t, pool, learner, sel, Config{Seed: seed, MaxLabels: 60})
			if _, err := s.Step(context.Background()); err != nil {
				t.Fatalf("first iteration: %v", err)
			}
			if len(s.Result().Curve) == 0 {
				t.Fatal("no evaluation point after one Step")
			}
		})
	}
}

// TestNewSelectorUnknownName pins the CLI typo experience: the error
// carries the full registered list so the fix is attached.
func TestNewSelectorUnknownName(t *testing.T) {
	_, err := NewSelector("kcentre-margin", SelectorParams{})
	if err == nil {
		t.Fatal("unknown selector name constructed")
	}
	for _, want := range []string{"kcentre-margin", "kcenter-margin", "lfp-lfn"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestSessionRejectsIncompatiblePair pins satellite behavior: composing
// LFP/LFN with a non-rule learner fails at session construction with the
// typed error — before the seed phase spends any label budget — and the
// compatible pairing passes the same gate.
func TestSessionRejectsIncompatiblePair(t *testing.T) {
	pool := syntheticPool(200, 9)
	_, err := NewSession(pool, linear.NewSVM(9), LFPLFN{}, poolOracle(pool), Config{Seed: 9, MaxLabels: 40})
	if err == nil {
		t.Fatal("session constructed with LFP/LFN over an SVM")
	}
	if !errors.Is(err, ErrIncompatibleSelector) {
		t.Errorf("err = %v, want errors.Is(ErrIncompatibleSelector)", err)
	}
	var ie *IncompatibleError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %T, want *IncompatibleError", err)
	}
	if ie.Selector != "lfp-lfn" || ie.Learner == "" || ie.Needs == "" {
		t.Errorf("error details incomplete: %+v", ie)
	}
	if err := ValidateSelection(rules.NewModel(feature.NewBoolExtractor([]string{"a"})), LFPLFN{}); err != nil {
		t.Errorf("rule learner rejected by its own selector: %v", err)
	}
}

// ---- the diversity-aware pickers ----

func pickCtx(seed int64, X []feature.Vector, truth []bool) (*SelectContext, *countingSource) {
	src := newCountingSource(seed)
	return &SelectContext{
		Ctx:  context.Background(),
		Pool: NewPoolFromVectors(X, truth),
		Rand: rand.New(src),
	}, src
}

// TestKCenterPickerSpreadsBatch checks the greedy core-set geometry on a
// handcrafted pool: two tight neighborhoods, and k=2 must take the
// highest-scoring seed plus the FARTHEST point — not the second-best
// score sitting 0.1 away from the seed. Also pins that the picker is
// RNG-free and that an undersized candidate set is returned as-is.
func TestKCenterPickerSpreadsBatch(t *testing.T) {
	X := []feature.Vector{{0, 0}, {0.1, 0}, {5, 5}, {5, 5.1}}
	sctx, src := pickCtx(1, X, []bool{false, false, true, true})
	set := &ScoredSet{Candidates: []int{0, 1, 2, 3}, Scores: []float64{1.0, 0.9, 0.8, 0.7}}
	got := KCenterPicker{}.Pick(sctx, set, 2)
	if want := []int{0, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("k-center batch = %v, want %v (seed + farthest)", got, want)
	}
	if src.n63 != 0 || src.n64 != 0 {
		t.Errorf("k-center drew (%d,%d) from the RNG; it must be RNG-free", src.n63, src.n64)
	}
	if got := (KCenterPicker{}).Pick(sctx, set, 10); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("n<=k batch = %v, want the whole candidate set in order", got)
	}
}

// TestScoredClusterPickerCoversClusters: three near-duplicates hold the
// top three scores, one distant point trails. Pure top-k would spend
// both picks on the duplicate cluster; cluster sampling must cover both
// neighborhoods. Same seed ⇒ same batch (the only randomness is the
// serial within-cluster draws).
func TestScoredClusterPickerCoversClusters(t *testing.T) {
	X := []feature.Vector{{0, 0}, {0.05, 0}, {0, 0.05}, {5, 5}}
	truth := []bool{false, false, false, true}
	set := &ScoredSet{Candidates: []int{0, 1, 2, 3}, Scores: []float64{1.0, 0.99, 0.98, 0.5}}

	sctx, _ := pickCtx(7, X, truth)
	got := ScoredClusterPicker{}.Pick(sctx, set, 2)
	if len(got) != 2 {
		t.Fatalf("batch = %v, want 2 picks", got)
	}
	var near, far bool
	for _, i := range got {
		if i == 3 {
			far = true
		} else {
			near = true
		}
	}
	if !near || !far {
		t.Errorf("batch %v does not cover both clusters ({0,1,2} and {3})", got)
	}

	sctx2, _ := pickCtx(7, X, truth)
	if again := (ScoredClusterPicker{}).Pick(sctx2, set, 2); !reflect.DeepEqual(again, got) {
		t.Errorf("same seed produced %v then %v", got, again)
	}
}

// TestDiversityPickersWorkerInvariant extends the serial-vs-parallel
// equivalence pin to the two new pickers composed with both scorer
// families: identical batches AND identical RNG draw positions at every
// worker count, on both sides of the parallel cutoff.
func TestDiversityPickersWorkerInvariant(t *testing.T) {
	for _, size := range []int{parallelCutoff / 2, 2*parallelCutoff + 11} {
		st := newSelectorSetup(t, size+60, int64(size)+3)
		cases := []struct {
			name    string
			sel     Selector
			learner Learner
		}{
			{"kcenter-margin", ComposedSelector{Scorer: MarginScorer{}, Picker: KCenterPicker{}}, st.svm},
			{"cluster-margin", ComposedSelector{Scorer: MarginScorer{}, Picker: ScoredClusterPicker{}}, st.svm},
			{"kcenter-qbc", ComposedSelector{Scorer: VoteScorer{}, Picker: KCenterPicker{}}, st.forest},
			{"cluster-qbc", ComposedSelector{Scorer: VoteScorer{}, Picker: ScoredClusterPicker{}}, st.forest},
		}
		for _, tc := range cases {
			tc := tc
			t.Run(tc.name, func(t *testing.T) {
				wantBatch, want63, want64 := st.run(tc.sel, tc.learner, 0, 10, 55)
				if len(wantBatch) == 0 {
					t.Fatal("serial run selected nothing")
				}
				for _, workers := range []int{1, 2, 8} {
					gotBatch, got63, got64 := st.run(tc.sel, tc.learner, workers, 10, 55)
					assertSameSelection(t, workers, gotBatch, wantBatch, got63, want63, got64, want64)
				}
			})
		}
	}
}
