package core

import (
	"math"
	"math/rand"
	"sort"

	"github.com/alem/alem/internal/cluster"
	"github.com/alem/alem/internal/feature"
)

// The built-in batch query strategies. The first four reproduce the
// picking halves of the paper selectors exactly (deterministic top-k,
// shuffled top-k, uniform, IWAL acceptance sampling); KCenterPicker and
// ScoredClusterPicker are the diversity-aware strategies pure
// uncertainty lacks — they trade a little per-example informativeness
// for batches that cover the ambiguous region instead of piling onto
// one near-duplicate neighborhood.

// TopPicker deterministically takes the k highest-scoring candidates,
// ties broken by lower pool index — the fully deterministic ordering
// §4.2.1 credits margin selection with. It draws nothing from the RNG.
type TopPicker struct{}

// Name implements Picker.
func (TopPicker) Name() string { return "top" }

// Pick implements Picker.
func (TopPicker) Pick(_ *SelectContext, set *ScoredSet, k int) []int {
	s := make([]scored, len(set.Candidates))
	for j, i := range set.Candidates {
		s[j] = scored{i, -set.Scores[j]}
	}
	return smallestMargins(s, k)
}

// ShuffledTopPicker takes the k highest-scoring candidates with RANDOM
// tie-breaking: one Perm over the candidates, then a stable sort by
// score, so equal-score candidates come out in shuffled order (§4.1's
// committee-variance tie-break). Exactly one Perm(len candidates)) is
// drawn regardless of k.
type ShuffledTopPicker struct{}

// Name implements Picker.
func (ShuffledTopPicker) Name() string { return "shuffled-top" }

// Pick implements Picker.
func (ShuffledTopPicker) Pick(ctx *SelectContext, set *ScoredSet, k int) []int {
	return variancePick(ctx.Rand, set.Candidates, set.Scores, k)
}

// RandomPicker ignores scores and samples k candidates uniformly — the
// picking half of the supervised baseline. When the candidate set
// already fits the batch it is returned as-is with NO RNG draw
// (preserving the legacy Random draw-count contract); otherwise exactly
// one Perm is consumed.
type RandomPicker struct{}

// Name implements Picker.
func (RandomPicker) Name() string { return "uniform-sample" }

// Pick implements Picker.
func (RandomPicker) Pick(ctx *SelectContext, set *ScoredSet, k int) []int {
	n := len(set.Candidates)
	if n <= k {
		return append([]int(nil), set.Candidates...)
	}
	perm := ctx.Rand.Perm(n)[:k]
	out := make([]int, 0, k)
	for _, i := range perm {
		out = append(out, set.Candidates[i])
	}
	return out
}

// AcceptanceSamplePicker is IWAL's rejection sampler: candidates are
// visited in random order and accepted with probability
//
//	p = PMin + (1 − PMin) · score
//
// (scores must lie in [0,1]; AmbiguityScorer's contract), until k
// accepts or the pool is exhausted. One Perm plus one Float64 per
// visited candidate are drawn, in visit order.
type AcceptanceSamplePicker struct {
	// PMin is the floor acceptance probability (default 0.1).
	PMin float64
}

// Name implements Picker.
func (AcceptanceSamplePicker) Name() string { return "acceptance-sample" }

// Pick implements Picker.
func (ap AcceptanceSamplePicker) Pick(ctx *SelectContext, set *ScoredSet, k int) []int {
	pmin := ap.PMin
	if pmin <= 0 {
		pmin = 0.1
	}
	out := make([]int, 0, k)
	for n, j := range ctx.Rand.Perm(len(set.Candidates)) {
		if len(out) == k {
			break
		}
		if n%cancelCheckStride == 0 && ctx.Cancelled() {
			return nil
		}
		p := pmin + (1-pmin)*set.Scores[j]
		if ctx.Rand.Float64() < p {
			out = append(out, set.Candidates[j])
		}
	}
	return out
}

// KCenterPicker is greedy k-center (core-set) batch selection: the
// first pick is the highest-scoring candidate, and each subsequent pick
// is the candidate farthest (in feature space) from everything already
// picked — max-min distance, the 2-approximation greedy of the core-set
// approach to batch AL (Sener & Savarese). Ties break by higher score,
// then lower pool index. The batch therefore spreads across the
// candidate set instead of clustering on near-duplicate pairs, which is
// where pure uncertainty wastes labels (Han & Li).
//
// It draws nothing from the RNG; the distance-update sweep after each
// pick fans out across ctx.Workers on the deterministic substrate, so
// batches are bit-identical at every worker count.
type KCenterPicker struct{}

// Name implements Picker.
func (KCenterPicker) Name() string { return "kcenter" }

// Pick implements Picker.
func (KCenterPicker) Pick(ctx *SelectContext, set *ScoredSet, k int) []int {
	n := len(set.Candidates)
	if k <= 0 || n == 0 {
		return nil
	}
	if n <= k {
		return append([]int(nil), set.Candidates...)
	}
	first := 0
	for j := 1; j < n; j++ {
		if set.Scores[j] > set.Scores[first] ||
			(set.Scores[j] == set.Scores[first] && set.Candidates[j] < set.Candidates[first]) {
			first = j
		}
	}
	out := make([]int, 0, k)
	chosen := make([]bool, n)
	minDist := make([]float64, n)
	for j := range minDist {
		minDist[j] = math.Inf(1)
	}
	cur := first
	for {
		chosen[cur] = true
		out = append(out, set.Candidates[cur])
		if len(out) == k {
			return out
		}
		// Fold the newest center into every candidate's distance-to-batch.
		// Only minDist[j] for unchosen j is written, each j by exactly one
		// worker; the serial argmax below merges them deterministically.
		cx := ctx.Pool.X[set.Candidates[cur]]
		if err := parallelFor(ctx.Ctx, n, ctx.Workers, parallelCutoff, func(j int) {
			if chosen[j] {
				return
			}
			if d := sqDist(cx, ctx.Pool.X[set.Candidates[j]]); d < minDist[j] {
				minDist[j] = d
			}
		}); err != nil {
			return nil
		}
		next := -1
		for j := 0; j < n; j++ {
			if chosen[j] {
				continue
			}
			if next < 0 || minDist[j] > minDist[next] ||
				(minDist[j] == minDist[next] &&
					(set.Scores[j] > set.Scores[next] ||
						(set.Scores[j] == set.Scores[next] && set.Candidates[j] < set.Candidates[next]))) {
				next = j
			}
		}
		if next < 0 {
			return out
		}
		cur = next
	}
}

// sqDist is squared Euclidean distance over the common prefix of two
// feature vectors (pool vectors share one extractor, so lengths match in
// practice).
func sqDist(a, b feature.Vector) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// ScoredClusterPicker is score-weighted cluster sampling: the top
// PoolMult·k candidates by score are grouped into feature-space
// clusters (single-link components under a distance threshold set at
// the LinkQuantile of the observed pairwise distances, via
// cluster.Components), and the batch is filled round-robin across
// clusters, sampling within each cluster with probability proportional
// to score rank. Near-duplicate ambiguous pairs land in one cluster and
// contribute one pick per round, so the batch covers distinct ambiguous
// neighborhoods instead of spending k labels on one.
//
// Clustering and ordering are fully deterministic; the only randomness
// is the within-cluster draws — exactly one Float64 from ctx.Rand per
// picked example, drawn serially, so RNG position stays a pure function
// of pool state at every worker count.
type ScoredClusterPicker struct {
	// PoolMult sizes the candidate pool at PoolMult·k (default 4),
	// capped at the scored set.
	PoolMult int
	// LinkQuantile in (0,1) picks the pairwise-distance quantile used as
	// the single-link threshold (default 0.25): smaller values mean
	// tighter clusters and more of them.
	LinkQuantile float64
}

// Name implements Picker.
func (ScoredClusterPicker) Name() string { return "cluster-sample" }

// Pick implements Picker.
func (cp ScoredClusterPicker) Pick(ctx *SelectContext, set *ScoredSet, k int) []int {
	n := len(set.Candidates)
	if k <= 0 || n == 0 {
		return nil
	}
	if n <= k {
		return append([]int(nil), set.Candidates...)
	}
	mult := cp.PoolMult
	if mult <= 0 {
		mult = 4
	}
	q := cp.LinkQuantile
	if q <= 0 || q >= 1 {
		q = 0.25
	}
	m := mult * k
	if m > n {
		m = n
	}

	// Candidate pool: top-m by score, ties by lower pool index.
	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool {
		ja, jb := order[a], order[b]
		if set.Scores[ja] != set.Scores[jb] {
			return set.Scores[ja] > set.Scores[jb]
		}
		return set.Candidates[ja] < set.Candidates[jb]
	})
	pool := order[:m]

	// Single-link components under the quantile distance threshold.
	var comps [][]int
	if m > 1 {
		dists := make([]float64, 0, m*(m-1)/2)
		for a := 0; a < m; a++ {
			for b := a + 1; b < m; b++ {
				dists = append(dists, sqDist(ctx.Pool.X[set.Candidates[pool[a]]], ctx.Pool.X[set.Candidates[pool[b]]]))
			}
		}
		sorted := append([]float64(nil), dists...)
		sort.Float64s(sorted)
		threshold := sorted[int(q*float64(len(sorted)-1))]
		var edges [][2]int
		di := 0
		for a := 0; a < m; a++ {
			for b := a + 1; b < m; b++ {
				if dists[di] <= threshold {
					edges = append(edges, [2]int{a, b})
				}
				di++
			}
		}
		comps = cluster.Components(m, edges)
	} else {
		comps = [][]int{{0}}
	}

	// Each component's members, best score first (ties by lower pool
	// index — pool is already in that order, so position in pool is the
	// rank). Components are visited in order of their best member.
	sort.Slice(comps, func(a, b int) bool { return comps[a][0] < comps[b][0] })

	// Round-robin across clusters; within a cluster, draw by rank-based
	// weight (1/(1+r) for its r-th best remaining member) — score-heavy
	// but scale-free, so it works under any scorer's score range.
	out := make([]int, 0, k)
	remaining := make([][]int, len(comps))
	for ci, members := range comps {
		remaining[ci] = append([]int(nil), members...)
	}
	for len(out) < k {
		pickedAny := false
		for ci := range remaining {
			if len(out) == k {
				break
			}
			mem := remaining[ci]
			if len(mem) == 0 {
				continue
			}
			total := 0.0
			for r := range mem {
				total += 1 / float64(1+r)
			}
			target := ctx.Rand.Float64() * total
			pick := len(mem) - 1
			acc := 0.0
			for r := range mem {
				acc += 1 / float64(1+r)
				if target < acc {
					pick = r
					break
				}
			}
			out = append(out, set.Candidates[pool[mem[pick]]])
			remaining[ci] = append(mem[:pick:pick], mem[pick+1:]...)
			pickedAny = true
		}
		if !pickedAny {
			break
		}
	}
	return out
}

// variancePick selects the k highest-variance indices with random
// tie-breaking: candidates are shuffled first, then stably sorted by
// variance, so equal-variance examples come out in random order (§4.1).
func variancePick(r *rand.Rand, unlabeled []int, variance []float64, k int) []int {
	order := r.Perm(len(unlabeled))
	sort.SliceStable(order, func(a, b int) bool {
		return variance[order[a]] > variance[order[b]]
	})
	if k > len(order) {
		k = len(order)
	}
	out := make([]int, 0, k)
	for _, oi := range order[:k] {
		out = append(out, unlabeled[oi])
	}
	return out
}

// scored pairs a pool index with its selection score.
type scored struct {
	idx int
	m   float64
}

// smallestMargins returns the indices of the k smallest scores, ties
// broken by pool index — the fully deterministic ordering §4.2.1 credits
// margin with. The (score, idx) key is a total order, so the result does
// not depend on the input's arrangement.
func smallestMargins(s []scored, k int) []int {
	sort.Slice(s, func(a, b int) bool {
		if s[a].m != s[b].m {
			return s[a].m < s[b].m
		}
		return s[a].idx < s[b].idx
	})
	if k > len(s) {
		k = len(s)
	}
	out := make([]int, 0, k)
	for _, x := range s[:k] {
		out = append(out, x.idx)
	}
	return out
}
