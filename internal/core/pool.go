package core

import (
	"context"
	"fmt"

	"github.com/alem/alem/internal/blocking"
	"github.com/alem/alem/internal/dataset"
	"github.com/alem/alem/internal/feature"
)

// Pool is the post-blocking candidate-pair universe one active-learning
// run operates on: feature vectors plus hidden ground truth. The truth is
// consulted only by the Oracle (possibly with noise) and by the evaluator;
// learners and selectors see vectors alone.
type Pool struct {
	Pairs []dataset.PairKey
	X     []feature.Vector
	Truth []bool
}

// blockCandidates runs the dataset through the indexed candidate
// generator under ctx.
func blockCandidates(ctx context.Context, d *dataset.Dataset) (*blocking.Result, error) {
	return blocking.Generate(ctx, blocking.NewCandidateIndex(d, blocking.IndexOptions{}))
}

// mustBlock is blockCandidates for the non-context constructors: under
// the background context generation cannot fail, so an error is a bug.
func mustBlock(d *dataset.Dataset) *blocking.Result {
	res, err := blockCandidates(context.Background(), d)
	if err != nil {
		panic(fmt.Sprintf("core: uncancellable blocking failed: %v", err))
	}
	return res
}

// NewPool blocks the dataset and featurizes the surviving candidate pairs
// with the standard 21-metric extractor.
func NewPool(d *dataset.Dataset) *Pool {
	res := mustBlock(d)
	return poolFrom(d, res.Pairs, feature.NewExtractor(d.Left.Schema).ExtractPairs(d, res.Pairs))
}

// NewPoolContext is NewPool with cancellable candidate generation; it
// returns the context's error if blocking is cut short.
func NewPoolContext(ctx context.Context, d *dataset.Dataset) (*Pool, error) {
	res, err := blockCandidates(ctx, d)
	if err != nil {
		return nil, err
	}
	return poolFrom(d, res.Pairs, feature.NewExtractor(d.Left.Schema).ExtractPairs(d, res.Pairs)), nil
}

// NewBoolPool is NewPool for the rule learner: Boolean atoms encoded as
// 0/1 float vectors.
func NewBoolPool(d *dataset.Dataset) *Pool {
	res := mustBlock(d)
	ext := feature.NewBoolExtractor(d.Left.Schema)
	bits := ext.ExtractPairs(d, res.Pairs)
	X := make([]feature.Vector, len(bits))
	for i, row := range bits {
		v := make(feature.Vector, len(row))
		for j, b := range row {
			if b {
				v[j] = 1
			}
		}
		X[i] = v
	}
	return poolFrom(d, res.Pairs, X)
}

// NewExtendedPool is NewPool with the extended 25-metric feature set
// (standard 21 plus TF-IDF cosine, SoftTFIDF, numeric similarity and
// generalized Jaccard, weighted over the dataset's own corpus).
func NewExtendedPool(d *dataset.Dataset) *Pool {
	res := mustBlock(d)
	ext := feature.NewExtendedExtractor(d.Left.Schema, feature.CorpusOf(d))
	return poolFrom(d, res.Pairs, ext.ExtractPairs(d, res.Pairs))
}

// NewPoolFromPairs featurizes an explicit pair list (used when one
// blocking pass feeds several pools, or in tests).
func NewPoolFromPairs(d *dataset.Dataset, pairs []dataset.PairKey) *Pool {
	ext := feature.NewExtractor(d.Left.Schema)
	return poolFrom(d, pairs, ext.ExtractPairs(d, pairs))
}

func poolFrom(d *dataset.Dataset, pairs []dataset.PairKey, X []feature.Vector) *Pool {
	truth := make([]bool, len(pairs))
	for i, p := range pairs {
		truth[i] = d.IsMatch(p)
	}
	return &Pool{Pairs: pairs, X: X, Truth: truth}
}

// NewPoolFromVectors builds a pool directly from vectors and labels,
// bypassing datasets entirely; unit tests and synthetic micro-benchmarks
// use it.
func NewPoolFromVectors(X []feature.Vector, truth []bool) *Pool {
	pairs := make([]dataset.PairKey, len(X))
	for i := range pairs {
		pairs[i] = dataset.PairKey{L: i, R: i}
	}
	return &Pool{Pairs: pairs, X: X, Truth: truth}
}

// Len returns the number of candidate pairs.
func (p *Pool) Len() int { return len(p.X) }

// Skew returns the fraction of true matches in the pool.
func (p *Pool) Skew() float64 {
	if p.Len() == 0 {
		return 0
	}
	m := 0
	for _, t := range p.Truth {
		if t {
			m++
		}
	}
	return float64(m) / float64(p.Len())
}
