package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/alem/alem/internal/linear"
)

// The selector registry: one table mapping every selection strategy the
// framework ships — the paper set and the Scorer×Picker recombinations —
// to a constructor and flag-help text. cmd/almatch, cmd/albench and the
// alem facade all resolve -selector names here, so adding a strategy is
// one registration, not three hand-written switches.

// SelectorParams carries the tunables a registry constructor may use.
// The zero value is fully usable: every field has a documented default.
type SelectorParams struct {
	// Seed seeds any learner factories the selector trains internally
	// (QBC committees).
	Seed int64
	// Committee is the committee size for learner-agnostic QBC
	// (default 10, the paper's evaluation setting).
	Committee int
	// Factory builds committee members for learner-agnostic QBC
	// (default: linear SVMs).
	Factory Factory
}

func (p SelectorParams) withDefaults() SelectorParams {
	if p.Committee <= 0 {
		p.Committee = 10
	}
	if p.Factory == nil {
		p.Factory = func(seed int64) Learner { return linear.NewSVM(seed) }
	}
	return p
}

// SelectorSpec describes one registered selection strategy.
type SelectorSpec struct {
	// Name is the -selector flag value.
	Name string
	// Description is the one-line help text -list-selectors prints.
	Description string
	// Needs names the learner capability the strategy requires, if any
	// ("MarginLearner"); empty means any learner works.
	Needs string
	// New constructs the selector.
	New func(p SelectorParams) Selector
}

// selectorRegistry is ordered: paper selectors first (the Fig. 2 set and
// the §5 blocking variants), then extensions, then the diversity-aware
// Scorer×Picker recombinations.
var selectorRegistry = []SelectorSpec{
	{
		Name:        "random",
		Description: "uniform random batches — the supervised-learning baseline (Figs. 16-17)",
		New:         func(SelectorParams) Selector { return Random{} },
	},
	{
		Name:        "qbc",
		Description: "learner-agnostic query-by-committee over bootstrap resamples (§4.1)",
		New: func(p SelectorParams) Selector {
			p = p.withDefaults()
			return QBC{B: p.Committee, Factory: p.Factory}
		},
	},
	{
		Name:        "margin",
		Description: "smallest |margin| — examples nearest the decision boundary (§4.2)",
		Needs:       "MarginLearner",
		New:         func(SelectorParams) Selector { return Margin{} },
	},
	{
		Name:        "margin-blocked",
		Description: "margin with §5.1 blocking dimensions pruning zero-weight-overlap pairs",
		Needs:       "WeightedLinear",
		New:         func(SelectorParams) Selector { return BlockedMargin{TopK: 1} },
	},
	{
		Name:        "forest-qbc",
		Description: "learner-aware QBC: the forest's own trees vote (§4.1.1)",
		Needs:       "VoteLearner",
		New:         func(SelectorParams) Selector { return ForestQBC{} },
	},
	{
		Name:        "forest-qbc-blocked",
		Description: "forest QBC behind a blocking DNF mined from the trees (§5)",
		Needs:       "VoteLearner",
		New:         func(SelectorParams) Selector { return BlockedForestQBC{} },
	},
	{
		Name:        "lfp-lfn",
		Description: "likely-false-positive/negative ranking for the rule learner (§4.3)",
		Needs:       "rules.Model",
		New:         func(SelectorParams) Selector { return LFPLFN{} },
	},
	{
		Name:        "iwal",
		Description: "importance-weighted rejection sampling with a PMin floor (§2 extension)",
		Needs:       "MarginLearner",
		New:         func(SelectorParams) Selector { return IWAL{} },
	},
	{
		Name:        "kcenter-margin",
		Description: "margin scores picked by greedy k-center — batches spread over the ambiguous region",
		Needs:       "MarginLearner",
		New: func(SelectorParams) Selector {
			return ComposedSelector{ID: "kcenter-margin", Scorer: MarginScorer{}, Picker: KCenterPicker{}}
		},
	},
	{
		Name:        "cluster-margin",
		Description: "margin scores sampled round-robin across feature-space clusters of near-duplicates",
		Needs:       "MarginLearner",
		New: func(SelectorParams) Selector {
			return ComposedSelector{ID: "cluster-margin", Scorer: MarginScorer{}, Picker: ScoredClusterPicker{}}
		},
	},
	{
		Name:        "kcenter-qbc",
		Description: "forest-vote disagreement picked by greedy k-center",
		Needs:       "VoteLearner",
		New: func(SelectorParams) Selector {
			return ComposedSelector{ID: "kcenter-qbc", Scorer: VoteScorer{}, Picker: KCenterPicker{}}
		},
	},
	{
		Name:        "cluster-qbc",
		Description: "forest-vote disagreement sampled round-robin across feature-space clusters",
		Needs:       "VoteLearner",
		New: func(SelectorParams) Selector {
			return ComposedSelector{ID: "cluster-qbc", Scorer: VoteScorer{}, Picker: ScoredClusterPicker{}}
		},
	},
}

// Selectors returns every registered strategy in registry order (paper
// set first, then extensions and recombinations). The slice is a copy.
func Selectors() []SelectorSpec {
	return append([]SelectorSpec(nil), selectorRegistry...)
}

// LookupSelector finds a registered strategy by -selector name.
func LookupSelector(name string) (SelectorSpec, bool) {
	for _, s := range selectorRegistry {
		if s.Name == name {
			return s, true
		}
	}
	return SelectorSpec{}, false
}

// NewSelector constructs a registered strategy by name. Unknown names
// error with the full list, so CLI typos fail with the fix attached.
func NewSelector(name string, p SelectorParams) (Selector, error) {
	spec, ok := LookupSelector(name)
	if !ok {
		names := make([]string, len(selectorRegistry))
		for i, s := range selectorRegistry {
			names[i] = s.Name
		}
		sort.Strings(names)
		return nil, fmt.Errorf("core: unknown selector %q (registered: %s)", name, strings.Join(names, ", "))
	}
	return spec.New(p), nil
}

// FormatSelectorList renders the registry as -list-selectors prints it:
// aligned name, requirement (if any), one-line description.
func FormatSelectorList() string {
	width := 0
	for _, s := range selectorRegistry {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	var sb strings.Builder
	for _, s := range selectorRegistry {
		fmt.Fprintf(&sb, "%-*s  %s", width, s.Name, s.Description)
		if s.Needs != "" {
			fmt.Fprintf(&sb, " (needs %s)", s.Needs)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
