package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"github.com/alem/alem/internal/eval"
	"github.com/alem/alem/internal/linear"
	"github.com/alem/alem/internal/tree"
)

// ---- the fan-out substrate itself ----

func TestParallelForMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, parallelCutoff - 1, parallelCutoff, 3*parallelCutoff + 17} {
		for _, workers := range []int{0, 1, 2, 7} {
			out := make([]int, n)
			if err := parallelFor(context.Background(), n, workers, parallelCutoff, func(j int) {
				out[j] = j * j
			}); err != nil {
				t.Fatal(err)
			}
			for j := range out {
				if out[j] != j*j {
					t.Fatalf("n=%d workers=%d: out[%d] = %d", n, workers, j, out[j])
				}
			}
		}
	}
}

func TestParallelForCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := parallelFor(ctx, 10*parallelCutoff, 4, parallelCutoff, func(j int) { ran.Add(1) })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Every worker stops within one cancellation stride.
	if got := ran.Load(); got > 4*cancelCheckStride {
		t.Errorf("%d items ran after cancellation, want <= %d", got, 4*cancelCheckStride)
	}
}

// ---- serial-vs-parallel selector equivalence ----

// selectorSetup trains the learners once per pool size and hands each
// subtest a fresh SelectContext factory whose RNG draw counts are
// observable.
type selectorSetup struct {
	pool    *Pool
	labeled []int
	labels  []bool
	unlabel []int
	svm     *linear.SVM
	forest  *tree.Forest
}

func newSelectorSetup(t *testing.T, poolSize int, seed int64) *selectorSetup {
	t.Helper()
	pool := syntheticPool(poolSize, seed)
	nLab := 60
	st := &selectorSetup{pool: pool}
	for i := 0; i < nLab; i++ {
		st.labeled = append(st.labeled, i)
		st.labels = append(st.labels, pool.Truth[i])
	}
	for i := nLab; i < poolSize; i++ {
		st.unlabel = append(st.unlabel, i)
	}
	trainX, trainY := gatherTraining(pool, st.labeled, st.labels, nLab)
	st.svm = linear.NewSVM(seed)
	st.svm.Train(trainX, trainY)
	st.forest = tree.NewForest(9, seed)
	st.forest.Train(trainX, trainY)
	return st
}

// run executes sel once with the given worker count over a fresh
// counted RNG and returns the batch plus the draw counters.
func (st *selectorSetup) run(sel Selector, learner Learner, workers, k int, seed int64) ([]int, uint64, uint64) {
	src := newCountingSource(seed)
	sctx := &SelectContext{
		Ctx:     context.Background(),
		Learner: learner, Pool: st.pool,
		LabeledIdx: st.labeled, Labels: st.labels,
		Unlabeled: st.unlabel, Rand: rand.New(src),
		Workers: workers,
	}
	batch := sel.Select(sctx, k)
	return batch, src.n63, src.n64
}

// TestSelectorsSerialParallelEquivalent pins the tentpole invariant: for
// every ported selector, every worker count produces the identical batch
// AND the identical counted-RNG position, at pool sizes on both sides of
// the parallel cutoff. This is what keeps Snapshot/Restore bit-identity
// independent of the machine's CPU count.
func TestSelectorsSerialParallelEquivalent(t *testing.T) {
	for _, size := range []int{parallelCutoff / 2, 3*parallelCutoff + 41} {
		st := newSelectorSetup(t, size+60, int64(size))
		cases := []struct {
			name    string
			sel     Selector
			learner Learner
		}{
			{"qbc", QBC{B: 7, Factory: svmFactory}, st.svm},
			{"qbc-entropy", QBC{B: 5, Factory: svmFactory, UseEntropy: true}, st.svm},
			{"margin", Margin{}, st.svm},
			{"margin-blocked", BlockedMargin{TopK: 3}, st.svm},
			{"forest-qbc", ForestQBC{}, st.forest},
			{"forest-qbc-blocked", BlockedForestQBC{}, st.forest},
			{"iwal", IWAL{}, st.svm},
			{"random", Random{}, st.svm},
		}
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/size=%d", tc.name, size), func(t *testing.T) {
				refBatch, ref63, ref64 := st.run(tc.sel, tc.learner, 1, 10, 99)
				if len(refBatch) == 0 {
					t.Fatalf("serial %s selected nothing", tc.sel.Name())
				}
				for _, workers := range []int{0, 2, 3, 8} {
					batch, n63, n64 := st.run(tc.sel, tc.learner, workers, 10, 99)
					if n63 != ref63 || n64 != ref64 {
						t.Fatalf("workers=%d: RNG draws (%d,%d) differ from serial (%d,%d)",
							workers, n63, n64, ref63, ref64)
					}
					if len(batch) != len(refBatch) {
						t.Fatalf("workers=%d: batch size %d vs serial %d", workers, len(batch), len(refBatch))
					}
					for j := range batch {
						if batch[j] != refBatch[j] {
							t.Fatalf("workers=%d: batch[%d] = %d, serial picked %d",
								workers, j, batch[j], refBatch[j])
						}
					}
				}
			})
		}
	}
}

// TestSessionBitIdenticalAcrossWorkerCounts runs the same QBC session at
// several worker counts and requires identical curves, labeled sets and
// byte-identical snapshots — Workers is machine tuning, never protocol.
// Wall-clock latency fields in the curve are zeroed before encoding:
// they measure the machine, not the run, and differ even between two
// serial executions.
func TestSessionBitIdenticalAcrossWorkerCounts(t *testing.T) {
	pool := syntheticPool(900, 83)
	runAt := func(workers int) (*Result, []byte) {
		s, err := NewSession(pool, linear.NewSVM(83), QBC{B: 5, Factory: svmFactory},
			poolOracle(pool), Config{Seed: 83, MaxLabels: 90, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		sn := s.Snapshot()
		for i := range sn.Curve {
			sn.Curve[i].TrainTime = 0
			sn.Curve[i].CommitteeCreateTime = 0
			sn.Curve[i].ScoreTime = 0
		}
		var buf bytes.Buffer
		if err := sn.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	refRes, refSnap := runAt(1)
	for _, workers := range []int{0, 2, 6} {
		res, snap := runAt(workers)
		curvesEqual(t, refRes.Curve, res.Curve)
		if res.LabelsUsed != refRes.LabelsUsed {
			t.Errorf("workers=%d: LabelsUsed %d vs %d", workers, res.LabelsUsed, refRes.LabelsUsed)
		}
		if !bytes.Equal(snap, refSnap) {
			t.Errorf("workers=%d: snapshot bytes differ from the serial run's", workers)
		}
	}
}

// TestSnapshotPortableAcrossWorkerCounts checkpoints a parallel run
// mid-flight and resumes it with the default worker count (as a
// different machine would): the stitched curve must equal the
// uninterrupted serial run's.
func TestSnapshotPortableAcrossWorkerCounts(t *testing.T) {
	pool := syntheticPool(800, 84)
	mkSession := func(workers int) *Session {
		s, err := NewSession(pool, linear.NewSVM(84), QBC{B: 5, Factory: svmFactory},
			poolOracle(pool), Config{Seed: 84, MaxLabels: 80, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ref, err := mkSession(1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	par := mkSession(6)
	for i := 0; i < 3; i++ {
		if done, err := par.Step(context.Background()); done || err != nil {
			t.Fatalf("parallel run finished early: done=%v err=%v", done, err)
		}
	}
	sn := par.Snapshot()
	restored, err := Restore(pool, linear.NewSVM(84), QBC{B: 5, Factory: svmFactory},
		poolOracle(pool), sn)
	if err != nil {
		t.Fatal(err)
	}
	res, err := restored.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	curvesEqual(t, ref.Curve, res.Curve)
	if res.LabelsUsed != ref.LabelsUsed {
		t.Errorf("resumed LabelsUsed %d vs uninterrupted %d", res.LabelsUsed, ref.LabelsUsed)
	}
}

// ---- cancel-vs-empty stop reason (regression) ----

// TestSelectPhaseDistinguishesCancelFromEmpty pins the selectPhase fix:
// a nil batch caused by a context cancelled mid-select must surface as
// StopCancelled, not be misreported as StopSelectorEmpty — before the
// fix a cancelled run could finish as a normal selector-exhausted stop.
func TestSelectPhaseDistinguishesCancelFromEmpty(t *testing.T) {
	pool := syntheticPool(500, 85)
	s, err := NewSession(pool, linear.NewSVM(85), Margin{}, poolOracle(pool),
		Config{Seed: 85, MaxLabels: 100})
	if err != nil {
		t.Fatal(err)
	}
	if done, err := s.Step(context.Background()); done || err != nil {
		t.Fatalf("first step: done=%v err=%v", done, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var pt eval.Point
	batch, reason := s.selectPhase(ctx, &pt)
	if len(batch) != 0 {
		t.Fatalf("cancelled selectPhase returned batch %v", batch)
	}
	if reason != StopCancelled {
		t.Fatalf("reason = %v, want StopCancelled (cancellation misreported as a normal stop)", reason)
	}
}

// cancellingSelector simulates SIGINT arriving while the selector is
// scoring: it cancels the run's own context mid-select and reports the
// nil batch the built-in selectors produce when Cancelled fires.
type cancellingSelector struct{ cancel context.CancelFunc }

func (cancellingSelector) Name() string { return "cancelling" }

func (c cancellingSelector) Select(ctx *SelectContext, k int) []int {
	c.cancel()
	return nil
}

func TestSessionCancelledMidSelectReportsStopCancelled(t *testing.T) {
	pool := syntheticPool(500, 86)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := NewSession(pool, linear.NewSVM(86), cancellingSelector{cancel},
		poolOracle(pool), Config{Seed: 86, MaxLabels: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Reason() != StopCancelled {
		t.Fatalf("reason = %v, want StopCancelled", s.Reason())
	}
}

// TestSelectorsReturnNilOnPreCancelledContext covers the slow selectors'
// cancellation paths, including the LFP/LFN stride added for the
// rule learner (which previously ignored cancellation entirely).
func TestSelectorsReturnNilOnPreCancelledContext(t *testing.T) {
	st := newSelectorSetup(t, 700, 87)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct {
		name    string
		sel     Selector
		learner Learner
	}{
		{"qbc", QBC{B: 5, Factory: svmFactory}, st.svm},
		{"margin", Margin{}, st.svm},
		{"margin-blocked", BlockedMargin{TopK: 3}, st.svm},
		{"forest-qbc", ForestQBC{}, st.forest},
		{"iwal", IWAL{}, st.svm},
	} {
		sctx := &SelectContext{
			Ctx:     ctx,
			Learner: tc.learner, Pool: st.pool,
			LabeledIdx: st.labeled, Labels: st.labels,
			Unlabeled: st.unlabel, Rand: rand.New(rand.NewSource(1)),
		}
		if batch := tc.sel.Select(sctx, 10); batch != nil {
			t.Errorf("%s: cancelled select returned %v, want nil", tc.name, batch)
		}
	}
}
