package core

// BlockedForestQBC is the §5 sketch the paper leaves unevaluated:
// blocking during example selection for tree-based learners. A
// high-recall blocking DNF is mined from the current forest's own trees
// (the Corleone idea, via interp.MineBlockingDNF) against the labeled
// data; unlabeled examples not covered by the DNF are pruned before the
// committee variance is computed, cutting scoring cost while keeping the
// ambiguous region intact.
type BlockedForestQBC struct {
	// TargetRecall is the labeled-positive coverage the mined DNF must
	// reach (default 0.95).
	TargetRecall float64
}

// Name implements Selector.
func (BlockedForestQBC) Name() string { return "forest-qbc-blocked" }

// Composition returns the selector's Scorer×Picker decomposition.
func (bf BlockedForestQBC) Composition() ComposedSelector {
	return ComposedSelector{
		ID:     bf.Name(),
		Scorer: BlockedVoteScorer{TargetRecall: bf.TargetRecall},
		Picker: ShuffledTopPicker{},
	}
}

// Select implements Selector. It requires a VoteLearner; when the
// learner is additionally a *tree.Forest, the blocking DNF is mined
// from its trees, otherwise scoring degrades to plain learner-aware QBC.
func (bf BlockedForestQBC) Select(ctx *SelectContext, k int) []int {
	return bf.Composition().Select(ctx, k)
}
