package core

import (
	"time"

	"github.com/alem/alem/internal/interp"
	"github.com/alem/alem/internal/tree"
)

// BlockedForestQBC is the §5 sketch the paper leaves unevaluated:
// blocking during example selection for tree-based learners. A
// high-recall blocking DNF is mined from the current forest's own trees
// (the Corleone idea, via interp.MineBlockingDNF) against the labeled
// data; unlabeled examples not covered by the DNF are pruned before the
// committee variance is computed, cutting scoring cost while keeping the
// ambiguous region intact.
type BlockedForestQBC struct {
	// TargetRecall is the labeled-positive coverage the mined DNF must
	// reach (default 0.95).
	TargetRecall float64
}

// Name implements Selector.
func (BlockedForestQBC) Name() string { return "forest-qbc-blocked" }

// Select implements Selector. It requires a VoteLearner that is a
// *tree.Forest (the DNF is mined from its trees).
func (bf BlockedForestQBC) Select(ctx *SelectContext, k int) []int {
	vl, ok := ctx.Learner.(VoteLearner)
	if !ok {
		return nil
	}
	forest, ok := ctx.Learner.(*tree.Forest)
	if !ok {
		// Any other committee learner: plain learner-aware QBC.
		return ForestQBC{}.Select(ctx, k)
	}
	target := bf.TargetRecall
	if target <= 0 {
		target = 0.95
	}
	start := time.Now()
	defer func() { ctx.Score = time.Since(start) }()

	// Mine the blocking DNF on the labeled data.
	X := make([][]float64, len(ctx.LabeledIdx))
	for j, i := range ctx.LabeledIdx {
		X[j] = ctx.Pool.X[i]
	}
	dnf := interp.MineBlockingDNF(forest, X, ctx.Labels, target)

	// Prune: only DNF-covered unlabeled examples get scored. The
	// blocking predicate itself is cheap (a handful of clauses) compared
	// to voting all trees.
	candidates := ctx.Unlabeled
	if len(dnf) > 0 {
		pruned := make([]int, 0, len(ctx.Unlabeled))
		for _, i := range ctx.Unlabeled {
			if interp.EvalDNF(dnf, ctx.Pool.X[i]) {
				pruned = append(pruned, i)
			}
		}
		// Ambiguous matches live near the positive region the DNF
		// covers; if pruning left too few candidates, fall back.
		if len(pruned) >= k {
			candidates = pruned
		}
	}
	variance, err := voteVariance(ctx, vl, candidates)
	if err != nil {
		return nil
	}
	return variancePick(ctx.Rand, candidates, variance, k)
}
