// Package tree implements the benchmark's tree-based learner (§4.1.1):
// CART-style random decision trees of unlimited depth that consider a
// random subset of log2(Dim+1) features at each split, assembled into a
// random forest — the Corleone settings the paper adopts. The forest's
// trees double as a learner-aware QBC committee: Votes exposes the
// per-tree label counts the variance selector needs.
package tree

import (
	"math"
	"math/rand"

	"github.com/alem/alem/internal/feature"
)

// Node is one decision-tree node. Exported so the interp package can walk
// trees to produce DNF formulae and depth statistics (§6.3).
type Node struct {
	// Leaf nodes predict Label; internal nodes route on Feature <= Threshold
	// to Left, else Right.
	Leaf      bool
	Label     bool
	Feature   int
	Threshold float64
	Left      *Node
	Right     *Node
}

// Tree is a single CART decision tree.
type Tree struct {
	Root *Node
}

// Predict classifies one vector.
func (t *Tree) Predict(x feature.Vector) bool {
	n := t.Root
	for !n.Leaf {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Label
}

// Depth returns the maximum root-to-leaf depth (a single leaf is depth 1).
func (t *Tree) Depth() int { return depth(t.Root) }

func depth(n *Node) int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	return 1 + max(depth(n.Left), depth(n.Right))
}

// growConfig carries the hyper-parameters down the recursive build.
type growConfig struct {
	maxFeatures int
	rand        *rand.Rand
	X           []feature.Vector
	y           []bool
}

// grow builds a tree on the row subset idx. Depth is unlimited; recursion
// stops only on pure nodes or when no split improves Gini impurity.
func grow(cfg *growConfig, idx []int) *Node {
	pos := 0
	for _, i := range idx {
		if cfg.y[i] {
			pos++
		}
	}
	if pos == 0 || pos == len(idx) {
		return &Node{Leaf: true, Label: pos > 0}
	}

	dim := len(cfg.X[0])
	bestGain := 0.0
	bestFeat, bestThresh := -1, 0.0
	parentImp := gini(pos, len(idx))

	// Random feature subset of size log2(Dim+1), per Corleone.
	feats := cfg.rand.Perm(dim)[:cfg.maxFeatures]
	for _, f := range feats {
		// Candidate thresholds: midpoints between distinct sorted values.
		vals := make([]float64, 0, len(idx))
		for _, i := range idx {
			vals = append(vals, cfg.X[i][f])
		}
		sortFloats(vals)
		prev := vals[0]
		for _, v := range vals[1:] {
			if v == prev {
				continue
			}
			th := (prev + v) / 2
			prev = v
			lp, ln, rp, rn := 0, 0, 0, 0
			for _, i := range idx {
				if cfg.X[i][f] <= th {
					if cfg.y[i] {
						lp++
					} else {
						ln++
					}
				} else {
					if cfg.y[i] {
						rp++
					} else {
						rn++
					}
				}
			}
			l, r := lp+ln, rp+rn
			if l == 0 || r == 0 {
				continue
			}
			w := float64(l) / float64(len(idx))
			childImp := w*gini(lp, l) + (1-w)*gini(rp, r)
			if gain := parentImp - childImp; gain > bestGain+1e-12 {
				bestGain, bestFeat, bestThresh = gain, f, th
			}
		}
	}
	if bestFeat < 0 {
		return &Node{Leaf: true, Label: 2*pos >= len(idx)}
	}
	var li, ri []int
	for _, i := range idx {
		if cfg.X[i][bestFeat] <= bestThresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	return &Node{
		Feature:   bestFeat,
		Threshold: bestThresh,
		Left:      grow(cfg, li),
		Right:     grow(cfg, ri),
	}
}

func gini(pos, n int) float64 {
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// sortFloats is an insertion/quick hybrid avoiding the sort package's
// interface overhead in the hot split loop.
func sortFloats(v []float64) {
	if len(v) < 24 {
		for i := 1; i < len(v); i++ {
			x := v[i]
			j := i - 1
			for j >= 0 && v[j] > x {
				v[j+1] = v[j]
				j--
			}
			v[j+1] = x
		}
		return
	}
	pivot := v[len(v)/2]
	lo, hi := 0, len(v)-1
	for lo <= hi {
		for v[lo] < pivot {
			lo++
		}
		for v[hi] > pivot {
			hi--
		}
		if lo <= hi {
			v[lo], v[hi] = v[hi], v[lo]
			lo++
			hi--
		}
	}
	sortFloats(v[:hi+1])
	sortFloats(v[lo:])
}

// Forest is a random forest of CART trees. Construct with NewForest.
type Forest struct {
	// NumTrees is the committee size (Corleone uses 10; the paper
	// parameterizes it as Trees(2/10/20)).
	NumTrees int
	// VoteThreshold is the fraction of positive votes required to
	// predict a match; 0 means majority (0.5). Lowering it trades
	// precision for recall under EM class skew.
	VoteThreshold float64

	trees []*Tree
	rand  *rand.Rand
}

// NewForest returns a forest with the given committee size.
func NewForest(numTrees int, seed int64) *Forest {
	if numTrees <= 0 {
		numTrees = 10
	}
	return &Forest{NumTrees: numTrees, rand: rand.New(rand.NewSource(seed))}
}

// Name implements the learner interface.
func (f *Forest) Name() string { return "random-forest" }

// Train grows NumTrees trees on bootstrap resamples of the labeled data,
// each split drawing log2(Dim+1) random features.
func (f *Forest) Train(X []feature.Vector, y []bool) {
	f.trees = nil
	if len(X) == 0 {
		return
	}
	dim := len(X[0])
	maxFeatures := int(math.Log2(float64(dim) + 1))
	if maxFeatures < 1 {
		maxFeatures = 1
	}
	if maxFeatures > dim {
		maxFeatures = dim
	}
	for t := 0; t < f.NumTrees; t++ {
		idx := make([]int, len(X))
		for i := range idx {
			idx[i] = f.rand.Intn(len(X))
		}
		cfg := &growConfig{maxFeatures: maxFeatures, rand: f.rand, X: X, y: y}
		f.trees = append(f.trees, &Tree{Root: grow(cfg, idx)})
	}
}

// Predict labels x as matching when the positive vote fraction exceeds
// VoteThreshold (majority by default).
func (f *Forest) Predict(x feature.Vector) bool {
	pos, total := f.Votes(x)
	if total == 0 {
		return false
	}
	th := f.VoteThreshold
	if th <= 0 {
		th = 0.5
	}
	return float64(pos)/float64(total) > th
}

// PredictAll classifies a batch.
func (f *Forest) PredictAll(X []feature.Vector) []bool {
	out := make([]bool, len(X))
	for i, x := range X {
		out[i] = f.Predict(x)
	}
	return out
}

// Votes returns how many trees label x as matching, out of how many. The
// learner-aware QBC selector computes its variance Pi/C·(1−Pi/C) from
// these counts (§4.1.1) — the forest's own trees are the committee, no
// bootstrap committee construction needed.
func (f *Forest) Votes(x feature.Vector) (pos, total int) {
	for _, t := range f.trees {
		if t.Predict(x) {
			pos++
		}
	}
	return pos, len(f.trees)
}

// Trees exposes the grown trees for interpretability analysis (§6.3).
func (f *Forest) Trees() []*Tree { return f.trees }

// Depth returns the maximum depth across the ensemble (Fig. 18b).
func (f *Forest) Depth() int {
	d := 0
	for _, t := range f.trees {
		d = max(d, t.Depth())
	}
	return d
}

// MinDim returns a lower bound on the feature dimensionality the forest
// was trained on: one past the largest feature index any split routes
// on. Trees do not record the full training width (a feature may simply
// never be split on), so deployment-time validation can only require the
// extractor to be at least this wide.
func (f *Forest) MinDim() int {
	d := 0
	for _, t := range f.trees {
		d = max(d, minDim(t.Root))
	}
	return d
}

func minDim(n *Node) int {
	if n == nil || n.Leaf {
		return 0
	}
	return max(n.Feature+1, minDim(n.Left), minDim(n.Right))
}

// Clone returns an untrained forest with the same size, threshold and a
// fresh RNG.
func (f *Forest) Clone(seed int64) *Forest {
	c := NewForest(f.NumTrees, seed)
	c.VoteThreshold = f.VoteThreshold
	return c
}
