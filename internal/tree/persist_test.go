package tree

import (
	"bytes"
	"strings"
	"testing"

	"github.com/alem/alem/internal/feature"
)

func TestForestSaveLoadRoundTrip(t *testing.T) {
	X, y := xorData(300, 51)
	f := NewForest(7, 51)
	f.Train(X, y)
	var buf bytes.Buffer
	if err := f.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Trees()) != 7 {
		t.Fatalf("loaded %d trees, want 7", len(got.Trees()))
	}
	for _, x := range X {
		if got.Predict(x) != f.Predict(x) {
			t.Fatalf("prediction differs after round trip on %v", x)
		}
		gp, gt := got.Votes(x)
		op, ot := f.Votes(x)
		if gp != op || gt != ot {
			t.Fatalf("votes differ after round trip: %d/%d vs %d/%d", gp, gt, op, ot)
		}
	}
	if got.Depth() != f.Depth() {
		t.Errorf("depth %d != original %d", got.Depth(), f.Depth())
	}
}

func TestForestLoadRejectsBrokenTree(t *testing.T) {
	// Internal node missing its right child.
	broken := `{"num_trees":1,"roots":[{"Leaf":false,"Feature":0,"Threshold":0.5,"Left":{"Leaf":true,"Label":true},"Right":null}]}`
	if _, err := LoadJSON(strings.NewReader(broken)); err == nil {
		t.Error("LoadJSON accepted a tree with a missing child")
	}
	if _, err := LoadJSON(strings.NewReader("{")); err == nil {
		t.Error("LoadJSON accepted truncated JSON")
	}
	if _, err := LoadJSON(strings.NewReader(`{"num_trees":1,"roots":[null]}`)); err == nil {
		t.Error("LoadJSON accepted a nil root")
	}
}

func TestForestSaveEmpty(t *testing.T) {
	var buf bytes.Buffer
	f := NewForest(3, 1)
	if err := f.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Predict(feature.Vector{1}) {
		t.Error("empty forest round trip should predict negative")
	}
}
