package tree

import (
	"encoding/json"
	"fmt"
	"io"
)

// forestState is the serialized form of a trained forest. Node is
// already an exported recursive struct, so trees serialize directly.
type forestState struct {
	NumTrees      int     `json:"num_trees"`
	VoteThreshold float64 `json:"vote_threshold,omitempty"`
	Roots         []*Node `json:"roots"`
}

// SaveJSON writes the trained forest structure for later reuse.
func (f *Forest) SaveJSON(w io.Writer) error {
	st := forestState{NumTrees: f.NumTrees, VoteThreshold: f.VoteThreshold,
		Roots: make([]*Node, 0, len(f.trees))}
	for _, t := range f.trees {
		st.Roots = append(st.Roots, t.Root)
	}
	if err := json.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("tree: encoding forest: %w", err)
	}
	return nil
}

// LoadJSON reads a forest written by SaveJSON.
func LoadJSON(r io.Reader) (*Forest, error) {
	var st forestState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("tree: decoding forest: %w", err)
	}
	f := NewForest(st.NumTrees, 0)
	f.VoteThreshold = st.VoteThreshold
	for _, root := range st.Roots {
		if err := validateNode(root); err != nil {
			return nil, fmt.Errorf("tree: decoding forest: %w", err)
		}
		f.trees = append(f.trees, &Tree{Root: root})
	}
	return f, nil
}

// validateNode rejects structurally broken trees (an internal node must
// have both children) so a corrupted file cannot panic Predict.
func validateNode(n *Node) error {
	if n == nil {
		return fmt.Errorf("nil node")
	}
	if n.Leaf {
		return nil
	}
	if n.Left == nil || n.Right == nil {
		return fmt.Errorf("internal node missing a child")
	}
	if err := validateNode(n.Left); err != nil {
		return err
	}
	return validateNode(n.Right)
}
