package tree

import (
	"math/rand"
	"testing"

	"github.com/alem/alem/internal/feature"
)

func xorData(n int, seed int64) ([]feature.Vector, []bool) {
	r := rand.New(rand.NewSource(seed))
	X := make([]feature.Vector, 0, n)
	y := make([]bool, 0, n)
	for i := 0; i < n; i++ {
		a, b := r.Intn(2), r.Intn(2)
		X = append(X, feature.Vector{float64(a) + r.Float64()*0.1, float64(b) + r.Float64()*0.1})
		y = append(y, a != b)
	}
	return X, y
}

func forestAccuracy(f *Forest, X []feature.Vector, y []bool) float64 {
	ok := 0
	for i, x := range X {
		if f.Predict(x) == y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(X))
}

func TestForestLearnsXOR(t *testing.T) {
	X, y := xorData(300, 1)
	f := NewForest(10, 1)
	f.Train(X, y)
	if acc := forestAccuracy(f, X, y); acc < 0.97 {
		t.Errorf("XOR accuracy %.3f, want >= 0.97", acc)
	}
}

func TestForestVotes(t *testing.T) {
	X, y := xorData(200, 2)
	f := NewForest(20, 2)
	f.Train(X, y)
	pos, total := f.Votes(feature.Vector{0.0, 1.0})
	if total != 20 {
		t.Fatalf("total votes = %d, want 20", total)
	}
	if pos < 15 {
		t.Errorf("clear positive got only %d/20 votes", pos)
	}
	pos, _ = f.Votes(feature.Vector{0.0, 0.0})
	if pos > 5 {
		t.Errorf("clear negative got %d/20 positive votes", pos)
	}
}

func TestForestPredictMatchesMajorityVote(t *testing.T) {
	X, y := xorData(150, 3)
	f := NewForest(11, 3)
	f.Train(X, y)
	for _, x := range X[:40] {
		pos, total := f.Votes(x)
		if got, want := f.Predict(x), 2*pos > total; got != want {
			t.Fatalf("Predict = %v but votes %d/%d", got, pos, total)
		}
	}
}

func TestForestUntrainedAndEmpty(t *testing.T) {
	f := NewForest(5, 1)
	if f.Predict(feature.Vector{1}) {
		t.Error("untrained forest should predict negative")
	}
	f.Train(nil, nil)
	if len(f.Trees()) != 0 {
		t.Error("training on empty data should leave no trees")
	}
	if f.Depth() != 0 {
		t.Error("empty forest depth should be 0")
	}
}

func TestForestPureClassShortCircuit(t *testing.T) {
	X := []feature.Vector{{0.1}, {0.2}, {0.3}}
	y := []bool{true, true, true}
	f := NewForest(3, 4)
	f.Train(X, y)
	if !f.Predict(feature.Vector{0.15}) {
		t.Error("pure positive training set should predict positive")
	}
	if f.Depth() != 1 {
		t.Errorf("pure class should grow leaf-only trees, depth = %d", f.Depth())
	}
}

func TestForestDeterministicGivenSeed(t *testing.T) {
	X, y := xorData(100, 5)
	a, b := NewForest(7, 9), NewForest(7, 9)
	a.Train(X, y)
	b.Train(X, y)
	for i := 0; i < 50; i++ {
		x := feature.Vector{float64(i%2) + 0.05, float64((i/2)%2) + 0.05}
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestTreeDepthGrowsWithComplexity(t *testing.T) {
	// Deeper structure needed for XOR than for a pure class.
	X, y := xorData(200, 6)
	f := NewForest(5, 6)
	f.Train(X, y)
	if f.Depth() < 2 {
		t.Errorf("XOR forest depth = %d, want >= 2", f.Depth())
	}
}

func TestSingleTreePredictPaths(t *testing.T) {
	// Hand-built stump: feature 0 <= 0.5 -> false else true.
	tr := &Tree{Root: &Node{
		Feature: 0, Threshold: 0.5,
		Left:  &Node{Leaf: true, Label: false},
		Right: &Node{Leaf: true, Label: true},
	}}
	if tr.Predict(feature.Vector{0.4}) {
		t.Error("0.4 should route left to false")
	}
	if !tr.Predict(feature.Vector{0.6}) {
		t.Error("0.6 should route right to true")
	}
	if tr.Depth() != 2 {
		t.Errorf("stump depth = %d, want 2", tr.Depth())
	}
}

func TestSortFloats(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(100)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.Float64()
		}
		sortFloats(v)
		for i := 1; i < len(v); i++ {
			if v[i-1] > v[i] {
				t.Fatalf("unsorted at %d: %v > %v", i, v[i-1], v[i])
			}
		}
	}
}

func TestForestHandlesDuplicateRows(t *testing.T) {
	// All identical vectors with conflicting labels must not loop forever.
	X := []feature.Vector{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}}
	y := []bool{true, false, true, false}
	f := NewForest(3, 8)
	f.Train(X, y)
	_ = f.Predict(feature.Vector{0.5, 0.5}) // any label is acceptable
}

func TestForestTreesAreDiverse(t *testing.T) {
	// Bootstrap + random feature subsets must yield non-identical trees;
	// otherwise QBC variance would always be zero.
	X, y := xorData(300, 9)
	f := NewForest(10, 9)
	f.Train(X, y)
	r := rand.New(rand.NewSource(10))
	diverse := false
	for probe := 0; probe < 200 && !diverse; probe++ {
		x := feature.Vector{r.Float64() * 1.1, r.Float64() * 1.1}
		pos, total := f.Votes(x)
		if pos != 0 && pos != total {
			diverse = true
		}
	}
	if !diverse {
		t.Error("all trees agree on every probe; committee carries no disagreement signal")
	}
}

func TestForestSplitsUseGainThreshold(t *testing.T) {
	// Pure-noise labels: trees may still grow (bootstrap makes noise look
	// structured) but training must terminate and predict deterministically.
	r := rand.New(rand.NewSource(11))
	var X []feature.Vector
	var y []bool
	for i := 0; i < 100; i++ {
		X = append(X, feature.Vector{r.Float64()})
		y = append(y, r.Intn(2) == 0)
	}
	f := NewForest(5, 11)
	f.Train(X, y)
	a := f.Predict(feature.Vector{0.5})
	if b := f.Predict(feature.Vector{0.5}); a != b {
		t.Error("prediction not deterministic")
	}
}

func TestForestVoteThreshold(t *testing.T) {
	X, y := xorData(200, 12)
	f := NewForest(20, 12)
	f.Train(X, y)
	// Find a probe with a split vote.
	r := rand.New(rand.NewSource(13))
	var probe feature.Vector
	var frac float64
	for i := 0; i < 500; i++ {
		x := feature.Vector{r.Float64() * 1.1, r.Float64() * 1.1}
		pos, total := f.Votes(x)
		p := float64(pos) / float64(total)
		if p > 0.2 && p < 0.5 {
			probe, frac = x, p
			break
		}
	}
	if probe == nil {
		t.Skip("no split-vote probe found")
	}
	if f.Predict(probe) {
		t.Fatalf("majority predict true at vote fraction %.2f", frac)
	}
	low := NewForest(20, 12)
	low.VoteThreshold = 0.15
	low.Train(X, y)
	// Retrained with the same seed: same trees, lower bar.
	if !low.Predict(probe) {
		t.Errorf("threshold 0.15 should flip a %.2f-fraction vote to positive", frac)
	}
	if c := low.Clone(1); c.VoteThreshold != 0.15 {
		t.Error("Clone lost VoteThreshold")
	}
}
